#!/usr/bin/env sh
# End-to-end flight-recorder smoke test: boot webiq-serve under the p30
# chaos profile with a tight admission queue and the flight recorder on,
# drive concurrent unified-build traffic until the circuit breakers trip,
# and require the incident pipeline to hold up end to end:
#
#   1. at least one diagnostic bundle is dumped (breaker-open trigger);
#   2. webiq-flight inspect renders it as an incident report;
#   3. the bundle's wide events account for every 5xx and shed the
#      admission/metrics layers counted;
#   4. a p99 trace exemplar from /stats resolves via /trace/{id}.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:8095}
# When OUT is set, the produced bundles and the rendered incident report
# are copied there before cleanup (CI uploads them as an artifact).
OUT=${OUT:-}
DIR=$(mktemp -d)
BUNDLES="$DIR/bundles"
SERVE_PID=""

cleanup() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "==> building webiq-serve and webiq-flight"
$GO build -o "$DIR/webiq-serve" ./cmd/webiq-serve
$GO build -o "$DIR/webiq-flight" ./cmd/webiq-flight

echo "==> booting webiq-serve with p30 chaos + flight recorder"
mkdir -p "$BUNDLES"
"$DIR/webiq-serve" -addr "$ADDR" \
	-faults p30 -fault-seed 7 \
	-max-inflight 2 -queue 2 \
	-flight-dir "$BUNDLES" -flight-triggers 'breaker,debounce=1s' \
	-flight-window 10m \
	>"$DIR/serve.log" 2>&1 &
SERVE_PID=$!

i=0
while ! curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "FAIL: /healthz not answering after 10s" >&2
		cat "$DIR/serve.log" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "FAIL: webiq-serve exited" >&2
		cat "$DIR/serve.log" >&2
		exit 1
	fi
	sleep 0.1
done

echo "==> driving concurrent chaos traffic"
round=0
while [ "$round" -lt 10 ]; do
	round=$((round + 1))
	# Collect the curl PIDs explicitly: a bare `wait` would also wait
	# for the backgrounded server, which never exits.
	PIDS=""
	for _ in 1 2 3 4 5 6 7 8; do
		curl -s -m 30 -o /dev/null "http://$ADDR/unified/airfare" &
		PIDS="$PIDS $!"
		curl -s -m 30 -o /dev/null "http://$ADDR/unified/book" &
		PIDS="$PIDS $!"
	done
	wait $PIDS || true
	# Stop as soon as a bundle landed.
	if ls "$BUNDLES"/flight-*.json >/dev/null 2>&1; then
		break
	fi
	sleep 0.3
done
sleep 1

echo "==> checking a bundle was produced"
BUNDLE=$(ls "$BUNDLES"/flight-*.json 2>/dev/null | head -n 1 || true)
if [ -z "$BUNDLE" ]; then
	echo "FAIL: no diagnostic bundle after $round rounds of chaos traffic" >&2
	curl -s "http://$ADDR/debug/flight" >&2 || true
	exit 1
fi
echo "bundle: $BUNDLE"
case "$BUNDLE" in
*breaker-open*) echo "breaker-open trigger confirmed" ;;
*) echo "note: bundle reason is $(basename "$BUNDLE") (breaker-only triggers were configured)" ;;
esac

echo "==> webiq-flight inspect renders the incident report"
"$DIR/webiq-flight" inspect -extract "$DIR/profs" "$BUNDLE" >"$DIR/report.txt"
grep -q '== Incident bundle:' "$DIR/report.txt" || {
	echo "FAIL: inspect did not render a report" >&2
	exit 1
}
grep -q -- '-- Runtime' "$DIR/report.txt" || {
	echo "FAIL: report has no runtime section" >&2
	exit 1
}
sed -n '1,14p' "$DIR/report.txt"

echo "==> wide events account for every 5xx and shed"
curl -fsS "http://$ADDR/debug/flight/snapshot" >/dev/null
LATEST=$(ls -t "$BUNDLES"/flight-*.json | head -n 1)
python3 - "$LATEST" "http://$ADDR" <<'EOF'
import json, sys, urllib.request

bundle = json.load(open(sys.argv[1]))
base = sys.argv[2]
metrics = urllib.request.urlopen(base + "/metrics").read().decode()

def counter_sum(name):
    total = 0.0
    for line in metrics.splitlines():
        if line.startswith(name):
            total += float(line.rsplit(" ", 1)[1])
    return int(total)

events = bundle.get("wide_events") or []
ev_5xx = sum(1 for e in events if e.get("status", 0) >= 500)
ev_shed = sum(1 for e in events if e.get("shed_reason"))
m_5xx = sum(
    int(float(l.rsplit(" ", 1)[1]))
    for l in metrics.splitlines()
    if l.startswith("webiq_http_requests_total") and 'class="5xx"' in l
)
m_shed = counter_sum("webiq_admission_shed_total")

# The bundle window covers the whole run (sheds never reach the metrics
# middleware, so 5xx counters exclude them).
if ev_shed != m_shed:
    sys.exit(f"FAIL: bundle has {ev_shed} shed events, admission counted {m_shed}")
if ev_5xx != m_5xx + m_shed:
    sys.exit(f"FAIL: bundle has {ev_5xx} 5xx events, metrics counted {m_5xx} 5xx + {m_shed} sheds")
print(f"accounted: {ev_5xx} 5xx wide events = {m_5xx} measured 5xx + {m_shed} sheds")
EOF

echo "==> p99 trace exemplar resolves via /trace/{id}"
TRACE=$(curl -fsS "http://$ADDR/stats" | python3 -c '
import json, sys
routes = json.load(sys.stdin)["routes"]
print(routes.get("unified", {}).get("p99_trace_id", ""))
')
if [ -z "$TRACE" ]; then
	echo "FAIL: /stats has no p99 trace exemplar for route unified" >&2
	exit 1
fi
curl -fsS "http://$ADDR/trace/$TRACE" >/dev/null || {
	echo "FAIL: exemplar trace $TRACE not resolvable via /trace/" >&2
	exit 1
}
echo "exemplar trace $TRACE resolved"

if [ -n "$OUT" ]; then
	mkdir -p "$OUT"
	cp "$BUNDLES"/flight-*.json "$DIR/report.txt" "$OUT/"
	echo "kept bundles + report in $OUT"
fi

echo "PASS: flight recorder produced an inspectable, accounted bundle"
