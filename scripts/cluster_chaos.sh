#!/usr/bin/env sh
# Cluster chaos harness: boot a 3-node replicated webiq-serve cluster
# from one snapshot, drive mixed load through two of the nodes, and
# kill the third — the primary for at least one domain's shard — in the
# middle of the run. The gate holds the fault-tolerance contract:
#
#   1. every domain stays servable through every surviving node
#      (webiq-loadgen's final all-domains pass);
#   2. the client-observed non-503 error rate stays within 1% — losing
#      a shard's primary must degrade to failover, not to errors;
#   3. at least one survivor dumps a breaker-open-peer-{victim} flight
#      bundle, so the incident is diagnosable after the fact.
#
# Modes (first argument):
#
#   smoke   (default) 10s of load, kill the victim mid-run. Fast enough
#           for CI; `make cluster-smoke`.
#   chaos   30s of load; the victim is first partitioned (SIGSTOP, so
#           its sockets hang instead of refusing — the nastier failure),
#           healed (SIGCONT), then killed outright. `make cluster-chaos`.
#
# Set OUT=dir to keep the flight bundles and the loadgen summary (CI
# uploads them as the incident artifact).
set -eu

GO=${GO:-go}
MODE=${1:-smoke}
HOST=127.0.0.1
P1=${P1:-8181}
P2=${P2:-8182}
P3=${P3:-8183}
OUT=${OUT:-}
DIR=$(mktemp -d)
PIDS=""

case "$MODE" in
smoke)
	DURATION=10s
	RPS=60
	P99=3s
	;;
chaos)
	DURATION=30s
	RPS=60
	P99=8s
	;;
*)
	echo "usage: $0 [smoke|chaos]" >&2
	exit 2
	;;
esac

cleanup() {
	for pid in $PIDS; do
		kill -CONT "$pid" 2>/dev/null || true
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "==> building webiq-serve, webiq-snapshot, webiq-loadgen"
$GO build -o "$DIR/webiq-serve" ./cmd/webiq-serve
$GO build -o "$DIR/webiq-snapshot" ./cmd/webiq-snapshot
$GO build -o "$DIR/webiq-loadgen" ./cmd/webiq-loadgen

echo "==> building the shared world snapshot"
"$DIR/webiq-snapshot" build -o "$DIR/world.snap" >/dev/null

PEERS="n1=http://$HOST:$P1,n2=http://$HOST:$P2,n3=http://$HOST:$P3"

# boot_node id port -> appends the node's PID to PIDS and records it in
# $DIR/pid.{id}. Every node boots from the same snapshot (instant
# replica warm-up), probes peers every 250ms, and runs the flight
# recorder with breaker triggers so a dead peer produces a bundle.
boot_node() {
	id=$1
	port=$2
	mkdir -p "$DIR/bundles-$id"
	"$DIR/webiq-serve" -addr "$HOST:$port" \
		-snapshot "$DIR/world.snap" \
		-peers "$PEERS" -node-id "$id" -replication 2 \
		-probe-interval 500ms -probe-timeout 250ms \
		-forward-timeout 1s \
		-flight-dir "$DIR/bundles-$id" -flight-triggers 'breaker,debounce=1s' \
		>"$DIR/serve-$id.log" 2>&1 &
	pid=$!
	PIDS="$PIDS $pid"
	echo "$pid" >"$DIR/pid.$id"
}

echo "==> booting 3-node cluster (replication 2)"
boot_node n1 "$P1"
boot_node n2 "$P2"
boot_node n3 "$P3"

for port in "$P1" "$P2" "$P3"; do
	i=0
	while ! curl -fsS "http://$HOST:$port/readyz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 150 ]; then
			echo "FAIL: node on :$port not ready after 15s" >&2
			cat "$DIR"/serve-*.log >&2
			exit 1
		fi
		sleep 0.1
	done
done
echo "all nodes ready"

echo "==> picking the victim: the primary of the airfare shard"
VICTIM=$(curl -fsS "http://$HOST:$P1/cluster/stats" | python3 -c '
import json, sys
print(json.load(sys.stdin)["cluster"]["owners"]["airfare"][0])
')
VICTIM_PID=$(cat "$DIR/pid.$VICTIM")
TARGETS=""
for pair in "n1=$P1" "n2=$P2" "n3=$P3"; do
	id=${pair%%=*}
	port=${pair#*=}
	if [ "$id" = "$VICTIM" ]; then
		VICTIM_PORT=$port
	else
		TARGETS="$TARGETS,http://$HOST:$port"
	fi
done
TARGETS=${TARGETS#,}
echo "victim: $VICTIM (pid $VICTIM_PID, :$VICTIM_PORT); load targets: $TARGETS"

echo "==> starting $DURATION of mixed load at $RPS rps"
"$DIR/webiq-loadgen" -targets "$TARGETS" \
	-rps "$RPS" -duration "$DURATION" \
	-p99 "$P99" -max-error-rate 0.01 \
	-json "$DIR/loadgen.json" >"$DIR/loadgen.log" 2>&1 &
LOADGEN_PID=$!

sleep 2
if [ "$MODE" = "chaos" ]; then
	echo "==> partitioning $VICTIM (SIGSTOP: sockets hang, probes time out)"
	kill -STOP "$VICTIM_PID"
	sleep 4
	echo "==> healing the partition (SIGCONT)"
	kill -CONT "$VICTIM_PID"
	sleep 3
fi
echo "==> killing $VICTIM outright (SIGKILL mid-load)"
kill -KILL "$VICTIM_PID" 2>/dev/null || true

if ! wait "$LOADGEN_PID"; then
	echo "FAIL: loadgen objectives violated with $VICTIM down" >&2
	cat "$DIR/loadgen.log" >&2
	cat "$DIR/loadgen.json" >&2 || true
	exit 1
fi
tail -n 1 "$DIR/loadgen.log"

echo "==> checking a survivor dumped a breaker-open-peer-$VICTIM bundle"
# The breaker trigger is debounced; give the recorder a beat to flush.
found=""
i=0
while [ -z "$found" ] && [ "$i" -lt 30 ]; do
	found=$(ls "$DIR"/bundles-*/flight-*breaker-open-peer-"$VICTIM"*.json 2>/dev/null | head -n 1 || true)
	[ -n "$found" ] || sleep 0.2
	i=$((i + 1))
done
if [ -z "$found" ]; then
	echo "FAIL: no breaker-open-peer-$VICTIM flight bundle on any survivor" >&2
	ls -l "$DIR"/bundles-*/ >&2 || true
	cat "$DIR"/serve-*.log >&2
	exit 1
fi
echo "bundle: $found"

echo "==> final sweep: every domain servable on every survivor"
for base in $(echo "$TARGETS" | tr ',' ' '); do
	for d in airfare auto book job realestate; do
		curl -fsS -o /dev/null "$base/unified/$d" || {
			echo "FAIL: $d not servable via $base after the kill" >&2
			exit 1
		}
	done
done

if [ -n "$OUT" ]; then
	mkdir -p "$OUT"
	cp "$DIR"/bundles-*/flight-*.json "$OUT/" 2>/dev/null || true
	cp "$DIR/loadgen.json" "$OUT/"
	echo "kept bundles + loadgen summary in $OUT"
fi

echo "PASS ($MODE): cluster survived losing $VICTIM — all domains servable, errors bounded, incident bundled"
