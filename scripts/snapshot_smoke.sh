#!/usr/bin/env sh
# End-to-end cold-start smoke test: build a world snapshot, verify it,
# boot webiq-serve from it, and require the instant-readiness contract —
# /readyz answers 200 with every domain ready before any request has
# triggered a build, and /unified/{domain} renders for each domain.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:8094}
DIR=$(mktemp -d)
SNAP="$DIR/world.snap"
SERVE_PID=""

cleanup() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "==> building snapshot"
$GO run ./cmd/webiq-snapshot build -o "$SNAP" -seed 1 -scale 1

echo "==> verifying snapshot"
$GO run ./cmd/webiq-snapshot verify "$SNAP"

echo "==> booting webiq-serve -snapshot"
$GO build -o "$DIR/webiq-serve" ./cmd/webiq-serve
"$DIR/webiq-serve" -addr "$ADDR" -snapshot "$SNAP" &
SERVE_PID=$!

# The server must come up ready almost immediately: poll briefly for the
# listener, then demand 200 on the first real /readyz answer.
i=0
while ! curl -fsS "http://$ADDR/readyz" >"$DIR/readyz.json" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "FAIL: /readyz not answering 200 after 5s" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "FAIL: webiq-serve exited" >&2
		exit 1
	fi
	sleep 0.1
done
cat "$DIR/readyz.json"
echo
# The response is pretty-printed; compact it before matching.
READYZ=$(tr -d ' \n\t' <"$DIR/readyz.json")
case "$READYZ" in
*'"ready":true'*) ;;
*)
	echo "FAIL: /readyz answered but not ready" >&2
	exit 1
	;;
esac

for dom in $(printf '%s' "$READYZ" | sed -e 's/.*"domains":{//' -e 's/}.*//' |
	tr ',' '\n' | cut -d'"' -f2); do
	echo "==> GET /unified/$dom"
	curl -fsS -o "$DIR/unified.html" "http://$ADDR/unified/$dom"
	grep -qi '<form' "$DIR/unified.html" || {
		echo "FAIL: /unified/$dom did not render a form" >&2
		exit 1
	}
done

echo "PASS: snapshot boot ready with all domains rendered"
