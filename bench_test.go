package webiq_test

// Benchmarks regenerating the paper's evaluation (one per table/figure)
// plus ablations for the design choices called out in DESIGN.md. Run
// with:
//
//	go test -bench=. -benchmem
//
// Absolute timings measure this reproduction, not the paper's testbed;
// per-component simulated overhead (Figure 8) is reported via custom
// metrics (simulated-minutes, queries).

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/experiments"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/nlp"
	"webiq/internal/schema"
	"webiq/internal/snapshot"
	"webiq/internal/surfaceweb"
	iq "webiq/internal/webiq"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() { benchEnv = experiments.NewEnv() })
	return benchEnv
}

// acquireDomain runs a full acquisition over a fresh dataset of the
// domain with the given components, returning the report. It queries
// the raw engine — the seed path every optimized variant is measured
// against.
func acquireDomain(env *experiments.Env, key string, comps iq.Components, cfg iq.Config) (*iq.Report, *schema.Dataset) {
	return acquireDomainOn(env.Engine, env, key, comps, cfg)
}

// acquireDomainOn is acquireDomain querying through se (e.g. a
// surfaceweb.CachedEngine wrapping the environment's engine).
func acquireDomainOn(se iq.SearchEngine, env *experiments.Env, key string, comps iq.Components, cfg iq.Config) (*iq.Report, *schema.Dataset) {
	dom := kb.DomainByKey(key)
	ds := dataset.Generate(dom, env.DataCfg)
	pool := deepweb.BuildPool(ds, dom, env.DeepCfg)
	v := iq.NewValidator(se, cfg)
	acq := iq.NewAcquirer(
		iq.NewSurface(se, v, cfg),
		iq.NewAttrDeep(pool, cfg),
		iq.NewAttrSurface(v, cfg),
		comps, cfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return env.Engine.VirtualTime(), env.Engine.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	return acq.AcquireAll(ds), ds
}

// BenchmarkPipeline measures the multi-condition acquisition pipeline —
// the workload of Table 1 and Figure 7, where one domain is re-acquired
// under several component configurations — on the seed path (raw
// engine, sequential validation) and on the optimized path (sharded
// query cache shared across conditions, 8 validation workers). The
// acquired instances are identical; only the cost changes.
func BenchmarkPipeline(b *testing.B) {
	conditions := []iq.Components{
		{Surface: true},
		{Surface: true, AttrDeep: true},
		iq.AllComponents(),
	}
	run := func(se iq.SearchEngine, env *experiments.Env, cfg iq.Config) {
		for _, comps := range conditions {
			acquireDomainOn(se, env, "book", comps, cfg)
		}
	}
	b.Run("seed", func(b *testing.B) {
		env := benchEnvironment(b)
		for i := 0; i < b.N; i++ {
			run(env.Engine, env, env.WebIQCfg)
		}
	})
	b.Run("cached-parallel", func(b *testing.B) {
		env := benchEnvironment(b)
		cfg := env.WebIQCfg
		cfg.Parallelism = 8
		cache := surfaceweb.NewCachedEngine(env.Engine, surfaceweb.DefaultCacheShards)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(cache, env, cfg)
		}
	})
	// The parallel-N suite pins GOMAXPROCS to N and runs the optimized
	// pipeline with N validation workers, reporting the multi-core
	// scaling curve: speedup over the N=1 run of the same invocation and
	// scaling efficiency (speedup/N, as a percentage). eff% at 8 cores is
	// gated in CI so a change that serializes the hot path — a new global
	// lock, a singleflight regression — fails the bench gate even when
	// single-core ns/op stays flat.
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("parallel-%d", n), func(b *testing.B) {
			env := benchEnvironment(b)
			old := runtime.GOMAXPROCS(n)
			defer runtime.GOMAXPROCS(old)
			cfg := env.WebIQCfg
			cfg.Parallelism = n
			cache := surfaceweb.NewCachedEngine(env.Engine, surfaceweb.DefaultCacheShards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(cache, env, cfg)
			}
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if n == 1 {
				parallelBaseNs.Store(&nsPerOp)
			}
			if base := parallelBaseNs.Load(); base != nil && *base > 0 && nsPerOp > 0 {
				speedup := *base / nsPerOp
				b.ReportMetric(speedup, "speedup")
				b.ReportMetric(100*speedup/float64(n), "eff%")
			}
		})
	}
}

// parallelBaseNs carries the parallel-1 ns/op of the current
// BenchmarkPipeline invocation to the higher-N sub-benchmarks, which
// report their speedup relative to it. Runs that filter out parallel-1
// simply omit the scaling metrics.
var parallelBaseNs atomic.Pointer[float64]

// BenchmarkColdStart measures time-to-ready from nothing: a full
// rebuild (corpus generation, indexing, and the whole acquisition +
// matching + unification pipeline for every domain) versus loading the
// same world from a binary snapshot, at the server's corpus scale and
// at 10x. The snapshot-load runs report xrebuild — how many times
// faster loading is than rebuilding in the same invocation — which the
// bench gate holds with a lower-is-worse bound, so a change that turns
// snapshot loading back into parsing fails CI. Run with -benchtime 1x:
// one iteration is a full cold start, and more only smooths noise.
func BenchmarkColdStart(b *testing.B) {
	for _, scale := range []float64{1, 10} {
		b.Run(fmt.Sprintf("rebuild-%gx", scale), func(b *testing.B) {
			var last *snapshot.World
			for i := 0; i < b.N; i++ {
				w, err := snapshot.BuildWorld(snapshot.BuildConfig{Seed: 1, Scale: scale})
				if err != nil {
					b.Fatal(err)
				}
				last = w
			}
			b.StopTimer()
			coldRebuildNs.Store(scale, float64(b.Elapsed().Nanoseconds())/float64(b.N))
			// Stash the built world's bytes so the load sub-benchmark
			// does not have to rebuild it untimed.
			if _, ok := coldSnapBytes.Load(scale); !ok {
				if raw, err := last.Bytes(); err == nil {
					coldSnapBytes.Store(scale, raw)
				}
			}
		})
		b.Run(fmt.Sprintf("snapshot-load-%gx", scale), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "world.snap")
			if err := os.WriteFile(path, coldWorldBytes(b, scale), 0o644); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := snapshot.Load(path)
				if err != nil {
					b.Fatal(err)
				}
				w.Close()
			}
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if v, ok := coldRebuildNs.Load(scale); ok && nsPerOp > 0 {
				b.ReportMetric(v.(float64)/nsPerOp, "xrebuild")
			}
		})
	}
}

// coldRebuildNs and coldSnapBytes carry the rebuild timing and the
// serialized world between BenchmarkColdStart sub-benchmarks (the
// parallelBaseNs pattern); runs that filter out the rebuild side just
// omit the xrebuild metric and build their own snapshot.
var (
	coldRebuildNs sync.Map // scale float64 -> ns/op float64
	coldSnapBytes sync.Map // scale float64 -> []byte
)

func coldWorldBytes(b *testing.B, scale float64) []byte {
	b.Helper()
	if raw, ok := coldSnapBytes.Load(scale); ok {
		return raw.([]byte)
	}
	w, err := snapshot.BuildWorld(snapshot.BuildConfig{Seed: 1, Scale: scale})
	if err != nil {
		b.Fatal(err)
	}
	raw, err := w.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	coldSnapBytes.Store(scale, raw)
	return raw
}

// BenchmarkTable1Acquisition regenerates Table 1's acquisition columns:
// per-domain instance acquisition with Surface and Surface+Deep.
func BenchmarkTable1Acquisition(b *testing.B) {
	env := benchEnvironment(b)
	for _, key := range []string{"airfare", "auto", "book", "job", "realestate"} {
		b.Run(key, func(b *testing.B) {
			var success float64
			for i := 0; i < b.N; i++ {
				rep, _ := acquireDomain(env, key, iq.Components{Surface: true, AttrDeep: true}, env.WebIQCfg)
				success = rep.SuccessRate()
			}
			b.ReportMetric(success, "success%")
		})
	}
}

// BenchmarkFig6Matching regenerates Figure 6: baseline vs WebIQ-enriched
// matching accuracy.
func BenchmarkFig6Matching(b *testing.B) {
	env := benchEnvironment(b)
	for _, key := range []string{"airfare", "auto", "book", "job", "realestate"} {
		b.Run(key, func(b *testing.B) {
			_, ds := acquireDomain(env, key, iq.AllComponents(), env.WebIQCfg)
			b.ResetTimer()
			var f1 float64
			for i := 0; i < b.N; i++ {
				res := matcher.New(matcher.Config{Alpha: .6, Beta: .4, Threshold: .1}).Match(ds)
				f1 = matcher.Evaluate(res.Pairs, ds.GoldPairs()).F1
			}
			b.ReportMetric(100*f1, "F1%")
		})
	}
}

// BenchmarkFig7Components regenerates Figure 7: acquisition+matching at
// each component configuration (averaged over the five domains inside
// one iteration for the "all" case; per-config sub-benchmarks).
func BenchmarkFig7Components(b *testing.B) {
	env := benchEnvironment(b)
	configs := map[string]iq.Components{
		"baseline":     {},
		"surface":      {Surface: true},
		"surface+deep": {Surface: true, AttrDeep: true},
		"all":          iq.AllComponents(),
	}
	for name, comps := range configs {
		b.Run(name, func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				_, ds := acquireDomain(env, "job", comps, env.WebIQCfg)
				res := matcher.New(matcher.DefaultConfig()).Match(ds)
				f1 = matcher.Evaluate(res.Pairs, ds.GoldPairs()).F1
			}
			b.ReportMetric(100*f1, "F1%")
		})
	}
}

// BenchmarkFig8Overhead regenerates Figure 8: the per-component
// simulated overhead of a full acquisition run, reported as custom
// metrics alongside the real wall time.
func BenchmarkFig8Overhead(b *testing.B) {
	env := benchEnvironment(b)
	for _, key := range []string{"airfare", "auto", "book", "job", "realestate"} {
		b.Run(key, func(b *testing.B) {
			var rep *iq.Report
			for i := 0; i < b.N; i++ {
				rep, _ = acquireDomain(env, key, iq.AllComponents(), env.WebIQCfg)
			}
			b.ReportMetric(rep.SurfaceTime.Minutes(), "surf-simmin")
			b.ReportMetric(rep.AttrSurfaceTime.Minutes(), "attrsurf-simmin")
			b.ReportMetric(rep.AttrDeepTime.Minutes(), "attrdeep-simmin")
			b.ReportMetric(float64(rep.SurfaceQueries+rep.AttrSurfaceQueries), "queries")
			b.ReportMetric(float64(rep.AttrDeepQueries), "probes")
		})
	}
}

// BenchmarkAblationOutlierPruning measures the ablation of the two-phase
// verification: without outlier removal, Web validation must score every
// raw candidate, inflating validation queries.
func BenchmarkAblationOutlierPruning(b *testing.B) {
	env := benchEnvironment(b)
	run := func(b *testing.B, skip bool) {
		cfg := env.WebIQCfg
		cfg.SkipOutlierRemoval = skip
		var queries int
		for i := 0; i < b.N; i++ {
			q0 := env.Engine.QueryCount()
			acquireDomain(env, "book", iq.Components{Surface: true}, cfg)
			queries = env.Engine.QueryCount() - q0
		}
		b.ReportMetric(float64(queries), "queries")
	}
	b.Run("with-outlier-removal", func(b *testing.B) { run(b, false) })
	b.Run("without-outlier-removal", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPMIvsHits compares PMI scoring against raw hit counts
// for validation (the popularity-bias ablation).
func BenchmarkAblationPMIvsHits(b *testing.B) {
	env := benchEnvironment(b)
	run := func(b *testing.B, raw bool) {
		cfg := env.WebIQCfg
		cfg.UseRawHitCounts = raw
		var success float64
		for i := 0; i < b.N; i++ {
			rep, _ := acquireDomain(env, "airfare", iq.Components{Surface: true}, cfg)
			success = rep.SuccessRate()
		}
		b.ReportMetric(success, "success%")
	}
	b.Run("pmi", func(b *testing.B) { run(b, false) })
	b.Run("raw-hits", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationProbeBudget measures the one-third rule's probe
// savings: probing every donor value versus the capped sample.
func BenchmarkAblationProbeBudget(b *testing.B) {
	env := benchEnvironment(b)
	run := func(b *testing.B, maxProbes int) {
		cfg := env.WebIQCfg
		cfg.MaxBorrowProbes = maxProbes
		var probes float64
		for i := 0; i < b.N; i++ {
			rep, _ := acquireDomain(env, "airfare", iq.Components{Surface: true, AttrDeep: true}, cfg)
			probes = float64(rep.AttrDeepQueries)
		}
		b.ReportMetric(probes, "probes")
	}
	b.Run("one-third-rule", func(b *testing.B) { run(b, 6) })
	b.Run("probe-everything", func(b *testing.B) { run(b, 0) })
}

// BenchmarkAblationDomainKeywords measures query narrowing: extraction
// queries with and without domain keywords.
func BenchmarkAblationDomainKeywords(b *testing.B) {
	env := benchEnvironment(b)
	run := func(b *testing.B, use bool) {
		cfg := env.WebIQCfg
		cfg.UseDomainKeywords = use
		var success float64
		for i := 0; i < b.N; i++ {
			rep, _ := acquireDomain(env, "book", iq.Components{Surface: true}, cfg)
			success = rep.SuccessRate()
		}
		b.ReportMetric(success, "success%")
	}
	b.Run("narrowed", func(b *testing.B) { run(b, true) })
	b.Run("bare-cues", func(b *testing.B) { run(b, false) })
}

// --- Micro-benchmarks of the substrates ---

// BenchmarkPOSTagging measures the Brill-style tagger on interface
// labels.
func BenchmarkPOSTagging(b *testing.B) {
	labels := []string{
		"Departure city", "From", "Class of service", "First name or last name",
		"Depart from", "Number of passengers",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nlp.AnalyzeLabel(labels[i%len(labels)])
	}
}

// BenchmarkSearchEngine measures phrase search over the full corpus.
func BenchmarkSearchEngine(b *testing.B) {
	env := benchEnvironment(b)
	queries := []string{
		`"airlines such as"`, `"authors such as" +book`, `"make honda"`,
		`"departure cities such as" +airfare`,
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.Engine.NumHits(queries[i%len(queries)])
	}
}

// BenchmarkMatcher measures a full clustering run on the airfare domain
// (the paper's largest).
func BenchmarkMatcher(b *testing.B) {
	env := benchEnvironment(b)
	ds := dataset.Generate(kb.DomainByKey("airfare"), env.DataCfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matcher.New(matcher.DefaultConfig()).Match(ds)
	}
}

// BenchmarkDeepProbe measures one source probe round trip.
func BenchmarkDeepProbe(b *testing.B) {
	env := benchEnvironment(b)
	dom := kb.DomainByKey("airfare")
	ds := dataset.Generate(dom, env.DataCfg)
	pool := deepweb.BuildPool(ds, dom, env.DeepCfg)
	attr := ds.AllAttributes()[0]
	src := pool.Source(attr.InterfaceID)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Probe(attr.ID, "Boston")
	}
}

// BenchmarkCorpusBuild measures constructing and indexing the synthetic
// Surface Web from scratch.
func BenchmarkCorpusBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := surfaceweb.NewEngine()
		surfaceweb.BuildCorpus(e, kb.Domains(), surfaceweb.DefaultCorpusConfig())
	}
}

// BenchmarkAblationLinkage compares clustering linkages on the enriched
// airfare dataset (the design choice behind the matcher).
func BenchmarkAblationLinkage(b *testing.B) {
	env := benchEnvironment(b)
	_, ds := acquireDomain(env, "airfare", iq.AllComponents(), env.WebIQCfg)
	gold := ds.GoldPairs()
	for _, l := range []matcher.Linkage{matcher.SingleLink, matcher.AverageLink, matcher.CompleteLink} {
		b.Run(l.String(), func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				res := matcher.New(matcher.Config{Alpha: .6, Beta: .4, Linkage: l}).Match(ds)
				f1 = matcher.Evaluate(res.Pairs, gold).F1
			}
			b.ReportMetric(100*f1, "F1%")
		})
	}
}

// BenchmarkAblationLabelOnly reruns matching with instances ignored
// (α=1, β=0) — IceQ's own comparative finding that instances greatly
// improve accuracy.
func BenchmarkAblationLabelOnly(b *testing.B) {
	env := benchEnvironment(b)
	_, ds := acquireDomain(env, "airfare", iq.AllComponents(), env.WebIQCfg)
	gold := ds.GoldPairs()
	configs := map[string]matcher.Config{
		"label-only":      {Alpha: 1, Beta: 0},
		"label+instances": {Alpha: .6, Beta: .4},
	}
	for name, cfg := range configs {
		b.Run(name, func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				res := matcher.New(cfg).Match(ds)
				f1 = matcher.Evaluate(res.Pairs, gold).F1
			}
			b.ReportMetric(100*f1, "F1%")
		})
	}
}

// BenchmarkParallelAcquisition measures the wall-clock effect of the
// concurrent Surface phase (results are identical to sequential).
func BenchmarkParallelAcquisition(b *testing.B) {
	env := benchEnvironment(b)
	for _, par := range []int{1, 4, 8} {
		cfg := env.WebIQCfg
		cfg.Parallelism = par
		b.Run(fmt.Sprintf("workers-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				acquireDomain(env, "book", iq.Components{Surface: true}, cfg)
			}
		})
	}
}

// BenchmarkAblationSurfaceForPredef quantifies the possibility the paper
// declines "to minimize overhead": running Surface discovery for
// predefined-value attributes too. The metrics show the extra queries
// against the accuracy effect.
func BenchmarkAblationSurfaceForPredef(b *testing.B) {
	env := benchEnvironment(b)
	run := func(b *testing.B, on bool) {
		cfg := env.WebIQCfg
		cfg.SurfaceForPredef = on
		var f1 float64
		var queries int
		for i := 0; i < b.N; i++ {
			q0 := env.Engine.QueryCount()
			_, ds := acquireDomain(env, "airfare", iq.AllComponents(), cfg)
			queries = env.Engine.QueryCount() - q0
			res := matcher.New(matcher.DefaultConfig()).Match(ds)
			f1 = matcher.Evaluate(res.Pairs, ds.GoldPairs()).F1
		}
		b.ReportMetric(100*f1, "F1%")
		b.ReportMetric(float64(queries), "queries")
	}
	b.Run("paper-scheme", func(b *testing.B) { run(b, false) })
	b.Run("surface-for-predef", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationAggregation compares global clustering against
// Wise-Integrator-style greedy per-pair matching on the enriched
// airfare dataset — isolating the aggregation strategy.
func BenchmarkAblationAggregation(b *testing.B) {
	env := benchEnvironment(b)
	_, ds := acquireDomain(env, "airfare", iq.AllComponents(), env.WebIQCfg)
	gold := ds.GoldPairs()
	b.Run("clustering", func(b *testing.B) {
		var f1 float64
		for i := 0; i < b.N; i++ {
			f1 = matcher.Evaluate(matcher.New(matcher.DefaultConfig()).Match(ds).Pairs, gold).F1
		}
		b.ReportMetric(100*f1, "F1%")
	})
	b.Run("greedy-pairwise", func(b *testing.B) {
		var f1 float64
		for i := 0; i < b.N; i++ {
			f1 = matcher.Evaluate(matcher.NewGreedyPairwise(matcher.DefaultConfig()).Match(ds).Pairs, gold).F1
		}
		b.ReportMetric(100*f1, "F1%")
	})
}
