// Command webiq-serve serves the simulated Deep Web over HTTP: browse
// the generated sources' query interfaces, submit probe searches against
// their backing tables, and view the unified interface WebIQ + matching
// produce per domain.
//
//	webiq-serve -addr :8080
//
// Then visit http://localhost:8080/ for the source index.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"webiq/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("webiq-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "random seed for all generators")
	flag.Parse()

	start := time.Now()
	srv := server.New(*seed)
	log.Printf("substrates ready in %v; listening on %s", time.Since(start).Round(time.Millisecond), *addr)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
