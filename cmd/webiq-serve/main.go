// Command webiq-serve serves the simulated Deep Web over HTTP: browse
// the generated sources' query interfaces, submit probe searches against
// their backing tables, and view the unified interface WebIQ + matching
// produce per domain.
//
//	webiq-serve -addr :8080
//
// Then visit http://localhost:8080/ for the source index. Metrics are
// exposed in Prometheus text format at /metrics; passing -pprof mounts
// the net/http/pprof profiling handlers under /debug/pprof/. Passing
// -flight-dir enables the flight recorder: wide-event capture plus
// anomaly-triggered diagnostic bundles (inspect them with
// webiq-flight), controlled by -flight-window and -flight-triggers.
//
// Passing -peers (with -node-id) joins the node to a cluster: domains
// are assigned to nodes by a consistent-hash ring with -replication
// owners each, peer health is probed over /readyz every
// -probe-interval, and requests for non-owned domains are forwarded to
// the primary with failover to replicas. Boot every node from the same
// -snapshot file for instant replica warm-up; /cluster/stats serves
// the aggregate view.
//
// On SIGINT or SIGTERM the server stops accepting connections and
// drains in-flight requests for up to the -drain duration before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webiq/internal/cluster"
	"webiq/internal/obs"
	"webiq/internal/resilience"
	"webiq/internal/server"
	"webiq/internal/snapshot"
)

// parsePeers parses the -peers flag: comma-separated id=baseURL pairs
// naming every cluster member, this node included.
func parsePeers(spec string) ([]cluster.Member, error) {
	var members []cluster.Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q, want id=http://host:port", part)
		}
		members = append(members, cluster.Member{ID: id, BaseURL: strings.TrimSuffix(url, "/")})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("-peers given but no members parsed")
	}
	return members, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("webiq-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "random seed for all generators")
	snapPath := flag.String("snapshot", "", "boot from a webiq-snapshot world file instead of rebuilding: every domain is ready immediately (the file's seed overrides -seed)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	drain := flag.Duration("drain", 10*time.Second, "how long to wait for in-flight requests on shutdown")
	slow := flag.Duration("slow", 0, "log requests at or above this duration as NDJSON lines (with trace IDs); 0 disables")
	slowLog := flag.String("slow-log", "", "write the slow-request NDJSON to this file (size-rotated) instead of stderr")
	slowLogMax := flag.Int64("slow-log-max-bytes", obs.DefRotateMaxBytes, "rotate the -slow-log file when it would exceed this size")
	slowLogKeep := flag.Int("slow-log-keep", obs.DefRotateKeep, "rotated -slow-log files to keep (file.1 .. file.N)")
	faults := flag.String("faults", "", "inject the named fault profile into the pipeline backends (p10, p30, latency2x, burst, malformed)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault-injection stream")
	maxInflight := flag.Int("max-inflight", 0, "bound concurrent requests (admission control); 0 disables")
	queue := flag.Int("queue", 16, "requests allowed to wait for an admission slot before shedding with 503")
	traceRetention := flag.Int("trace-retention", obs.DefTraceRetention, "per-trace FIFO store capacity for /trace/{id} lookups; 0 or negative disables the store")
	flightDir := flag.String("flight-dir", "", "enable the flight recorder: write anomaly-triggered diagnostic bundles to this directory")
	flightWindow := flag.Duration("flight-window", obs.DefFlightWindow, "how much recent wide-event history a diagnostic bundle includes")
	flightTriggers := flag.String("flight-triggers", "", "trigger rules for automatic bundles: comma-separated 5xx, slow=DUR, breaker, shed, p99=DUR[:MINCOUNT], debounce=DUR; empty means the defaults, 'none' disables (manual /debug/flight/snapshot only)")
	peers := flag.String("peers", "", "cluster members as comma-separated id=http://host:port pairs (this node included); empty runs single-node")
	nodeID := flag.String("node-id", "", "this node's ID within -peers (required with -peers)")
	replication := flag.Int("replication", 2, "how many nodes own each domain (primary + replicas)")
	probeInterval := flag.Duration("probe-interval", time.Second, "peer health-probe period")
	probeTimeout := flag.Duration("probe-timeout", 500*time.Millisecond, "per-peer health-probe timeout")
	forwardTimeout := flag.Duration("forward-timeout", 10*time.Second, "per-attempt timeout when forwarding a request to a peer (a partitioned peer must not hold a request hostage longer than this)")
	flag.Parse()

	var opts []server.Option
	if *faults != "" {
		prof, err := resilience.ProfileByName(*faults)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, server.WithFaultProfile(prof, *faultSeed))
		log.Printf("fault injection on: profile %s, seed %d", prof.Name, *faultSeed)
	}
	if *maxInflight > 0 {
		opts = append(opts, server.WithAdmission(server.AdmissionConfig{
			MaxInFlight: *maxInflight,
			MaxQueued:   *queue,
		}))
		log.Printf("admission control on: %d in flight, %d queued", *maxInflight, *queue)
	}
	if *peers != "" {
		members, err := parsePeers(*peers)
		if err != nil {
			log.Fatal(err)
		}
		if *nodeID == "" {
			log.Fatal("-peers requires -node-id")
		}
		found := false
		for _, m := range members {
			if m.ID == *nodeID {
				found = true
			}
		}
		if !found {
			log.Fatalf("-node-id %q not present in -peers", *nodeID)
		}
		opts = append(opts, server.WithCluster(cluster.Config{
			Self:          *nodeID,
			Members:       members,
			Replication:   *replication,
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			Forward: cluster.ForwarderOptions{
				Client: &http.Client{Timeout: *forwardTimeout},
			},
		}))
		log.Printf("cluster mode on: node %s, %d members, replication %d, probe every %v",
			*nodeID, len(members), *replication, *probeInterval)
	}
	if *traceRetention != obs.DefTraceRetention {
		opts = append(opts, server.WithTraceRetention(*traceRetention))
		log.Printf("trace retention: %d traces", *traceRetention)
	}
	if *flightDir != "" {
		triggers, err := obs.ParseTriggers(*flightTriggers)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			log.Fatal(err)
		}
		opts = append(opts, server.WithFlightRecorder(server.FlightConfig{
			Dir:      *flightDir,
			Window:   *flightWindow,
			Triggers: triggers,
		}))
		log.Printf("flight recorder on: bundles in %s, triggers %s, window %v", *flightDir, triggers, *flightWindow)
	}

	start := time.Now()
	var srv *server.Server
	if *snapPath != "" {
		world, err := snapshot.Load(*snapPath)
		if err != nil {
			log.Fatal(err)
		}
		srv, err = server.NewFromSnapshot(world, opts...)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded snapshot %s (seed %d, scale %g, %d docs) in %v; all domains ready",
			*snapPath, world.Meta.Seed, world.Meta.Scale, world.Meta.Docs,
			time.Since(start).Round(time.Millisecond))
	} else {
		srv = server.New(*seed, opts...)
	}
	srv.RecordStartup(time.Since(start))
	defer srv.Close()
	if *slow > 0 {
		if *slowLog != "" {
			rf, err := obs.OpenRotatingFile(*slowLog, *slowLogMax, *slowLogKeep)
			if err != nil {
				log.Fatal(err)
			}
			defer rf.Close()
			srv.SetSlowLog(rf, *slow)
			log.Printf("slow-request log: %s (rotate at %d bytes, keep %d)", *slowLog, *slowLogMax, *slowLogKeep)
		} else {
			srv.SetSlowLog(os.Stderr, *slow)
		}
	}

	var handler http.Handler = srv
	if *pprofFlag {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	log.Printf("substrates ready in %v; listening on %s", time.Since(start).Round(time.Millisecond), *addr)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills us
		log.Printf("signal received; draining for up to %v", *drain)
		// Flip /readyz to 503 and shed new arrivals before closing
		// listeners, so load balancers see us leave the rotation while
		// in-flight and queued requests finish inside the drain window.
		srv.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Printf("bye")
	}
}
