// Command webiq-flight inspects the diagnostic bundles the flight
// recorder dumps (webiq-serve -flight-dir):
//
//	webiq-flight list <dir>
//	webiq-flight inspect <bundle.json> [-extract dir]
//
// list shows the bundles in a directory, newest first. inspect renders
// one bundle as a human-readable incident report: what fired the
// trigger, what the runtime looked like, which requests ran in the
// window (and which failed or were shed), what was still in flight,
// which metrics moved since the previous dump, and the trace exemplars
// that link latency quantiles back to concrete traces. -extract writes
// the embedded pprof CPU/heap profiles out as .pprof files for `go tool
// pprof`.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"flag"

	"webiq/internal/obs"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  webiq-flight list    <dir>
  webiq-flight inspect <bundle.json> [-extract dir]
`)
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("webiq-flight: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		runList(os.Args[2:])
	case "inspect":
		runInspect(os.Args[2:])
	default:
		usage()
	}
}

func runList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	dir := fs.Arg(0)
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "flight-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		b, err := obs.ReadBundle(filepath.Join(dir, name))
		if err != nil {
			fmt.Printf("%-52s  (unreadable: %v)\n", name, err)
			continue
		}
		fmt.Printf("%-52s  reason=%-14s events=%-4d in_flight=%d\n",
			name, b.Reason, len(b.WideEvents), len(b.InFlight))
		n++
	}
	if n == 0 {
		fmt.Println("no bundles")
	}
}

func runInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	extract := fs.String("extract", "", "write embedded pprof profiles as .pprof files into this directory")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	b, err := obs.ReadBundle(path)
	if err != nil {
		log.Fatal(err)
	}
	report(b)
	if *extract != "" {
		extractProfiles(b, *extract, strings.TrimSuffix(filepath.Base(path), ".json"))
	}
}

func report(b *obs.Bundle) {
	fmt.Printf("== Incident bundle: %s ==\n", b.Reason)
	fmt.Printf("time          %s\n", b.Time)
	fmt.Printf("window        %.0fs of wide events (%d captured)\n", b.WindowSeconds, len(b.WideEvents))
	if b.TriggerTraceID != "" {
		fmt.Printf("trigger trace %s  (GET /trace/%s on the live server)\n", b.TriggerTraceID, b.TriggerTraceID)
	}
	if len(b.Identity) > 0 {
		keys := sortedKeys(b.Identity)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+b.Identity[k])
		}
		fmt.Printf("identity      %s\n", strings.Join(parts, " "))
	}

	if len(b.Runtime) > 0 {
		last := b.Runtime[len(b.Runtime)-1]
		fmt.Printf("\n-- Runtime (last of %d samples) --\n", len(b.Runtime))
		fmt.Printf("goroutines %d   heap in-use %s   heap alloc %s   sys %s\n",
			last.Goroutines, mb(last.HeapInuseBytes), mb(last.HeapAllocBytes), mb(last.SysBytes))
		fmt.Printf("gc pause p99 %v   gc runs %d   GOMAXPROCS %d\n",
			time.Duration(last.GCPauseP99NS), last.NumGC, last.GOMAXPROCS)
	}

	reportRequests(b.WideEvents)
	reportErrors(b.WideEvents)

	if len(b.InFlight) > 0 {
		fmt.Printf("\n-- In flight at dump time (%d) --\n", len(b.InFlight))
		for _, r := range b.InFlight {
			fmt.Printf("%-16s running %-12v trace %s\n", r.Name, time.Duration(r.RunningNS).Round(time.Millisecond), r.TraceID)
		}
	}

	if len(b.Exemplars) > 0 {
		fmt.Printf("\n-- p99 trace exemplars --\n")
		for _, k := range sortedExemplarKeys(b.Exemplars) {
			ex := b.Exemplars[k]
			fmt.Printf("%-44s %8.3fs  trace %s\n", k, ex.Value, ex.TraceID)
		}
	}

	reportDeltas(b.MetricsDelta)

	if len(b.Traces) > 0 {
		fmt.Printf("\n-- Captured span trees (%d) --\n", len(b.Traces))
		for _, td := range b.Traces {
			fmt.Printf("trace %s\n", td.TraceID)
			for _, n := range td.Spans {
				printSpan(n, 1)
			}
		}
	}

	fmt.Printf("\n-- Profiles --\n")
	fmt.Printf("cpu %s   heap %s", profSize(b.CPUProfile), profSize(b.HeapProfile))
	fmt.Printf("   (webiq-flight inspect -extract DIR writes .pprof files)\n")
}

// reportRequests prints the per-route request table.
func reportRequests(evs []obs.WideEvent) {
	if len(evs) == 0 {
		fmt.Printf("\n-- Requests --\nnone captured in the window\n")
		return
	}
	type agg struct {
		n, errs, sheds int
		worst          float64
	}
	routes := map[string]*agg{}
	for _, ev := range evs {
		a := routes[ev.Route]
		if a == nil {
			a = &agg{}
			routes[ev.Route] = a
		}
		a.n++
		if ev.Status >= 500 {
			a.errs++
		}
		if ev.ShedReason != "" {
			a.sheds++
		}
		if ev.Seconds > a.worst {
			a.worst = ev.Seconds
		}
	}
	fmt.Printf("\n-- Requests in window (%d) --\n", len(evs))
	fmt.Printf("%-14s %6s %6s %6s %10s\n", "route", "count", "5xx", "shed", "worst")
	for _, r := range sortedAggKeys(routes) {
		a := routes[r]
		fmt.Printf("%-14s %6d %6d %6d %9.3fs\n", r, a.n, a.errs, a.sheds, a.worst)
	}
}

// reportErrors lists the individual failed or shed requests with the
// trace IDs an operator follows next.
func reportErrors(evs []obs.WideEvent) {
	var bad []obs.WideEvent
	for _, ev := range evs {
		if ev.Status >= 500 || ev.ShedReason != "" || ev.Trigger != "" {
			bad = append(bad, ev)
		}
	}
	if len(bad) == 0 {
		return
	}
	fmt.Printf("\n-- Errors, sheds, and trigger hits (%d) --\n", len(bad))
	for _, ev := range bad {
		line := fmt.Sprintf("%s %d %s %s (%.3fs)",
			time.Unix(0, ev.TimeNS).UTC().Format("15:04:05.000"), ev.Status, ev.Method, ev.Path, ev.Seconds)
		if ev.ShedReason != "" {
			line += " shed=" + ev.ShedReason
		}
		if ev.Trigger != "" {
			line += " trigger=" + ev.Trigger
		}
		if ev.TraceID != "" {
			line += " trace=" + ev.TraceID
		}
		if ev.BreakerSearch != "" && ev.BreakerSearch != "closed" {
			line += " breaker_search=" + ev.BreakerSearch
		}
		if ev.BreakerDeep != "" && ev.BreakerDeep != "closed" {
			line += " breaker_deep=" + ev.BreakerDeep
		}
		fmt.Println(line)
	}
}

// reportDeltas prints the biggest metric movers since the last dump.
func reportDeltas(delta map[string]float64) {
	if len(delta) == 0 {
		return
	}
	type mover struct {
		k string
		v float64
	}
	movers := make([]mover, 0, len(delta))
	for k, v := range delta {
		movers = append(movers, mover{k, v})
	}
	sort.Slice(movers, func(i, j int) bool {
		ai, aj := movers[i].v, movers[j].v
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return movers[i].k < movers[j].k
	})
	const top = 15
	n := len(movers)
	if n > top {
		n = top
	}
	fmt.Printf("\n-- Metric movers since previous dump (top %d of %d) --\n", n, len(movers))
	for _, m := range movers[:n] {
		fmt.Printf("%+12.6g  %s\n", m.v, m.k)
	}
}

func printSpan(n *obs.SpanNode, depth int) {
	var label string
	if len(n.Labels) > 0 {
		parts := make([]string, 0, len(n.Labels))
		for _, k := range sortedKeys(n.Labels) {
			parts = append(parts, k+"="+n.Labels[k])
		}
		label = "  [" + strings.Join(parts, " ") + "]"
	}
	fmt.Printf("%s%-20s %v%s\n", strings.Repeat("  ", depth), n.Name,
		time.Duration(n.WallNS).Round(time.Microsecond), label)
	for _, c := range n.Children {
		printSpan(c, depth+1)
	}
}

func extractProfiles(b *obs.Bundle, dir, base string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(kind string, data []byte) {
		if len(data) == 0 {
			return
		}
		out := filepath.Join(dir, base+"-"+kind+".pprof")
		if err := os.WriteFile(out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", out, len(data))
	}
	write("cpu", b.CPUProfile)
	write("heap", b.HeapProfile)
}

func mb(n uint64) string {
	return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
}

func profSize(p []byte) string {
	if len(p) == 0 {
		return "absent"
	}
	return fmt.Sprintf("%d bytes", len(p))
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedExemplarKeys(m map[string]obs.Exemplar) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedAggKeys[V any](m map[string]*V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
