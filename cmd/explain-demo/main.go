// Command explain-demo is the provenance smoke test behind
// `make explain-demo`: it boots the HTTP server in-process on a
// loopback port, requests /unified/{domain}/explain (triggering the
// lazy acquisition+matching build), and asserts that the provenance
// payload is non-empty and that every unified-interface instance is
// attributed to a component with numeric evidence. It exits non-zero
// on any gap, printing what was missing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"webiq/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explain-demo: ")

	domain := flag.String("domain", "book", "domain to build and explain")
	seed := flag.Int64("seed", 1, "random seed for all generators")
	flag.Parse()

	start := time.Now()
	srv := server.New(*seed)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv); err != nil {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	log.Printf("server up on %s in %v", base, time.Since(start).Round(time.Millisecond))

	resp, err := http.Get(base + "/unified/" + *domain + "/explain")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET /unified/%s/explain: status %d", *domain, resp.StatusCode)
	}
	traceHeader := resp.Header.Get("X-Trace-ID")
	var payload server.ExplainPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		log.Fatal(err)
	}

	if len(payload.Attributes) == 0 {
		log.Fatal("empty provenance payload: no attributes explained")
	}
	if payload.Instances == 0 {
		log.Fatal("empty provenance payload: no instances explained")
	}
	if payload.Attributed != payload.Instances {
		for _, ea := range payload.Attributes {
			for _, inst := range ea.Instances {
				if inst.Verdict == "unattributed" {
					log.Printf("unattributed: %q (attr %s, from %s)", inst.Value, ea.Label, inst.SourceAttr)
				}
			}
		}
		log.Fatalf("provenance incomplete: %d of %d instances attributed", payload.Attributed, payload.Instances)
	}
	if payload.TraceID == "" {
		log.Fatal("payload carries no build trace ID")
	}

	// The build trace must be resolvable to a span tree.
	tresp, err := http.Get(base + "/trace/" + payload.TraceID)
	if err != nil {
		log.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		log.Fatalf("GET /trace/%s: status %d", payload.TraceID, tresp.StatusCode)
	}

	fmt.Printf("OK: %d attributes, %d/%d instances attributed; build trace %s (request trace %s)\n",
		len(payload.Attributes), payload.Attributed, payload.Instances, payload.TraceID, traceHeader)
}
