// Command webiq-bench regenerates every table and figure of the paper's
// evaluation section over the synthetic substrates:
//
//	webiq-bench -exp table1   # Table 1: dataset + acquisition success
//	webiq-bench -exp fig6     # Figure 6: matching accuracy
//	webiq-bench -exp fig7     # Figure 7: component contributions
//	webiq-bench -exp fig8     # Figure 8: overhead analysis
//	webiq-bench -exp all      # everything (default)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"webiq/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("webiq-bench: ")

	exp := flag.String("exp", "all", "experiment to run: table1, fig6, fig7, fig8, tausweep, seeds, or all")
	seed := flag.Int64("seed", 1, "random seed for all generators")
	seeds := flag.Int("seeds", 3, "number of seeds for -exp seeds")
	flag.Parse()

	start := time.Now()
	env := experiments.NewEnvWithSeed(*seed)
	fmt.Printf("Environment ready (%d corpus pages) in %v\n\n",
		env.Engine.NumDocs(), time.Since(start).Round(time.Millisecond))

	run := func(name string) {
		t0 := time.Now()
		switch name {
		case "table1":
			fmt.Println("== Table 1: dataset characteristics and instance-acquisition success ==")
			fmt.Println(experiments.RenderTable1(env.Table1()))
		case "fig6":
			fmt.Println("== Figure 6: matching accuracy (F-1 %) ==")
			fmt.Println(experiments.RenderFigure6(env.Figure6()))
		case "fig7":
			fmt.Println("== Figure 7: component contributions (F-1 %) ==")
			fmt.Println(experiments.RenderFigure7(env.Figure7()))
		case "fig8":
			fmt.Println("== Figure 8: overhead analysis (simulated minutes) ==")
			fmt.Println(experiments.RenderFigure8(env.Figure8()))
		case "tausweep":
			fmt.Println("== Threshold sensitivity (avg F-1 % across domains) ==")
			fmt.Println(experiments.RenderTauSweep(env.TauSweep(nil)))
		case "seeds":
			fmt.Printf("== Seed robustness (%d seeds) ==\n", *seeds)
			fmt.Println(experiments.RenderSeedSweep(experiments.SeedSweep(*seeds)))
		default:
			log.Fatalf("unknown experiment %q (want table1, fig6, fig7, fig8, tausweep, seeds, all)", name)
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "fig6", "fig7", "fig8"} {
			run(name)
		}
		return
	}
	run(*exp)
}
