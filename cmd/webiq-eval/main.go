// Command webiq-eval runs the matching-quality evaluation harness: the
// full pipeline over the paper's five domains plus a sweep of synthetic
// domains, scored per stage (Surface, Attr-Surface, Attr-Deep), on the
// final acquired instances, and on matcher merge accuracy — aggregated
// as mean/stddev across -runs seeds.
//
// Usage:
//
//	webiq-eval [-runs 3] [-seed 1] [-synth 20] [-domains airfare,auto]
//	           [-faults p10] [-tau 0.1] [-workers 4]
//	           [-json EVAL_quality.json] [-detail] [-metrics]
//	           [-baseline EVAL_quality.json] [-max-drop 0.02]
//
// With -baseline the command becomes the quality gate: it compares the
// fresh aggregates against the committed baseline and exits 1 if any
// stage's precision/recall/F1 mean dropped by more than -max-drop
// (default two points). Every reported number is explainable: per-domain
// trace IDs are printed, and the decision ledger behind them carries the
// same IDs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"webiq/internal/eval"
	"webiq/internal/obs"
	"webiq/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("webiq-eval: ")

	runs := flag.Int("runs", 1, "number of seeded repetitions (run i uses seed+i)")
	seed := flag.Int64("seed", 1, "base random seed")
	synthN := flag.Int("synth", 20, "number of synthetic sweep domains (0 disables the sweep)")
	domains := flag.String("domains", "", "comma-separated paper domain keys (empty = all five)")
	faults := flag.String("faults", "", "inject the named fault profile (p10, p30, latency2x, burst, malformed) into every run")
	tau := flag.Float64("tau", 0.1, "matcher clustering threshold")
	workers := flag.Int("workers", 0, "worker-pool size for acquisition and matcher (0 = sequential)")
	jsonOut := flag.String("json", "", "write the quality report (EVAL_quality.json format) to this file")
	detail := flag.Bool("detail", false, "include per-run, per-domain values in the JSON report")
	metricsDump := flag.Bool("metrics", false, "print the webiq_eval_* metrics snapshot (Prometheus text format) to stdout")
	baseline := flag.String("baseline", "", "gate against this committed quality report; exit 1 on regression")
	maxDrop := flag.Float64("max-drop", 0.02, "maximum tolerated mean drop of a gated component (absolute; 0.02 = two points)")
	quiet := flag.Bool("q", false, "suppress per-domain progress lines")
	flag.Parse()

	cfg := eval.RunConfig{
		Runs:         *runs,
		Seed:         *seed,
		FaultProfile: *faults,
		Tau:          *tau,
		Workers:      *workers,
	}
	if *domains != "" {
		for _, k := range strings.Split(*domains, ",") {
			cfg.Domains = append(cfg.Domains, strings.TrimSpace(k))
		}
	}
	if *synthN > 0 {
		cfg.Scenarios = synth.Sweep(*synthN, *seed)
	}
	if *metricsDump {
		cfg.Obs = obs.NewRegistry()
	}
	if !*quiet {
		cfg.Progress = func(run int, domain string) {
			fmt.Fprintf(os.Stderr, "run %d: %s\n", run, domain)
		}
	}

	res, err := eval.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := eval.NewQualityReport(cfg, res, *detail)

	printSummary(res)

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQuality report written to %s\n", *jsonOut)
	}
	if *metricsDump {
		fmt.Println("\n# webiq_eval_* metrics snapshot")
		cfg.Obs.WritePrometheus(os.Stdout)
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		base, err := eval.ReadQualityReport(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		regs := eval.Compare(base, report, *maxDrop)
		if len(regs) > 0 {
			fmt.Printf("\nQUALITY GATE FAILED vs %s (max drop %.3f):\n", *baseline, *maxDrop)
			for _, r := range regs {
				fmt.Printf("  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("\nQuality gate passed vs %s (max drop %.3f)\n", *baseline, *maxDrop)
	}
}

// printSummary renders the aggregate table: one row per metric, the
// standard components as mean±stddev.
func printSummary(res *eval.Result) {
	names := make([]string, 0, len(res.Aggregates))
	for name := range res.Aggregates {
		names = append(names, name)
	}
	sort.Strings(names)
	nDomains := 0
	if len(res.Runs) > 0 {
		nDomains = len(res.Runs[0].Domains)
	}
	fmt.Printf("Evaluation: %d run(s) x %d domain(s)\n\n", len(res.Runs), nDomains)
	fmt.Printf("%-14s %-16s %-16s %-16s\n", "metric", "precision", "recall", "f1")
	for _, name := range names {
		agg := res.Aggregates[name]
		if _, ok := agg["f1"]; !ok {
			continue
		}
		fmt.Printf("%-14s %-16s %-16s %-16s\n", name,
			cell(agg["precision"]), cell(agg["recall"]), cell(agg["f1"]))
	}
	if deg, ok := res.Aggregates["degradation"]; ok {
		fmt.Printf("\ndegradations (mean per run): total=%.1f\n", deg["n_total"].Mean)
	}
	if match, ok := res.Aggregates["match"]; ok {
		if ce, has := match["cluster_exact"]; has {
			fmt.Printf("exact unified-interface clusters: %.1f%%\n", 100*ce.Mean)
		}
	}
}

func cell(a eval.Aggregate) string {
	return fmt.Sprintf("%.3f±%.3f", a.Mean, a.Stddev)
}
