// Command webiq runs the full WebIQ pipeline on one domain: generate the
// domain's query interfaces, build the synthetic Surface Web and
// Deep-Web sources, acquire instances for every attribute, match the
// interfaces with the IceQ-style matcher, and report accuracy.
//
// Usage:
//
//	webiq -domain airfare [-seed 1] [-tau 0.1] [-components surface,deep,attr] [-json out.json] [-v]
//
// Observability:
//
//	-trace spans.ndjson   write the span log (one JSON object per span or
//	                      event) to a file; per-component span totals
//	                      reproduce the report's overhead numbers
//	-metrics              print the final metrics snapshot in Prometheus
//	                      text format to stdout after the run
//	-events               stream acquisition events to stderr as they
//	                      happen (one line per event)
//	-ledger out.ndjson    write the decision-provenance ledger (one JSON
//	                      object per pipeline decision) to a file
//	-explain <attr>       after the run, print every ledger decision
//	                      concerning the attribute (ID or exact label) —
//	                      the evidence behind each accepted instance
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/obs"
	"webiq/internal/resilience"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
	"webiq/internal/webiq"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("webiq: ")

	domainFlag := flag.String("domain", "airfare", "domain to run (airfare, auto, book, job, realestate)")
	seed := flag.Int64("seed", 1, "random seed for dataset and corpus generation")
	tau := flag.Float64("tau", 0.1, "clustering threshold for the matcher")
	components := flag.String("components", "surface,deep,attr", "comma-separated WebIQ components: surface, deep, attr (empty disables all)")
	jsonIn := flag.String("dataset", "", "load the dataset from this JSON file instead of generating it")
	jsonOut := flag.String("json", "", "write the acquired dataset as JSON to this file")
	verbose := flag.Bool("v", false, "print per-attribute acquisition outcomes")
	events := flag.Bool("events", false, "stream acquisition events to stderr as they happen")
	traceFile := flag.String("trace", "", "write the NDJSON span log to this file")
	metricsDump := flag.Bool("metrics", false, "print the final metrics snapshot (Prometheus text format) to stdout")
	ledgerFile := flag.String("ledger", "", "write the decision-provenance ledger as NDJSON to this file")
	explainAttr := flag.String("explain", "", "print the provenance decisions for this attribute (ID or exact label) after the run")
	learn := flag.Int("learn-tau", 0, "learn the threshold interactively with this question budget (0 = use -tau)")
	queryCache := flag.Bool("query-cache", true, "deduplicate repeated search-engine queries through the sharded query cache (results are identical; raw and deduplicated costs are both reported)")
	workers := flag.Int("workers", 0, "worker-pool size for the parallel acquisition phases and the matcher's similarity matrix (0 = sequential acquisition, GOMAXPROCS matcher)")
	faults := flag.String("faults", "", "inject the named fault profile into the pipeline backends (p10, p30, latency2x, burst, malformed); the run degrades gracefully and reports what it gave up")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault-injection stream")
	flag.Parse()

	dom := kb.DomainByKey(*domainFlag)
	if dom == nil {
		log.Fatalf("unknown domain %q (try airfare, auto, book, job, realestate)", *domainFlag)
	}

	comps, err := parseComponents(*components)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Building Surface-Web corpus and %s dataset (seed %d)...\n", dom.Key, *seed)
	engine := surfaceweb.NewEngine()
	corpusCfg := surfaceweb.DefaultCorpusConfig()
	corpusCfg.Seed = *seed
	surfaceweb.BuildCorpus(engine, kb.Domains(), corpusCfg)

	var ds *schema.Dataset
	if *jsonIn != "" {
		f, err := os.Open(*jsonIn)
		if err != nil {
			log.Fatal(err)
		}
		ds, err = schema.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if ds.Domain != dom.Key {
			log.Fatalf("dataset file is for domain %q, -domain is %q", ds.Domain, dom.Key)
		}
	} else {
		dataCfg := dataset.DefaultConfig()
		dataCfg.Seed = *seed
		ds = dataset.Generate(dom, dataCfg)
	}

	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = *seed
	pool := deepweb.BuildPool(ds, dom, deepCfg)

	st := ds.ComputeStats()
	fmt.Printf("Dataset: %d interfaces, %d attributes (%.1f per interface), %.1f%% attributes without instances\n",
		st.Interfaces, st.Attributes, st.AvgAttrs, st.PctAttrsNoInst)
	fmt.Printf("Corpus: %d pages indexed\n\n", engine.NumDocs())

	cfg := webiq.DefaultConfig()
	cfg.Parallelism = *workers
	var se webiq.SearchEngine = engine
	var cache *surfaceweb.CachedEngine
	if *queryCache {
		cache = surfaceweb.NewCachedEngine(engine, surfaceweb.DefaultCacheShards)
		se = cache
	}
	v := webiq.NewValidator(se, cfg)
	acq := webiq.NewAcquirer(
		webiq.NewSurface(se, v, cfg),
		webiq.NewAttrDeep(pool, cfg),
		webiq.NewAttrSurface(v, cfg),
		comps, cfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return engine.VirtualTime(), engine.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	if *faults != "" {
		prof, err := resilience.ProfileByName(*faults)
		if err != nil {
			log.Fatal(err)
		}
		inj := resilience.NewInjector(prof, *faultSeed)
		fe := resilience.NewEngineClient(
			resilience.FaultyEngine(resilience.AdaptEngine(se), inj),
			resilience.ClientOptions{Seed: *faultSeed})
		fs := resilience.NewSourceClient(
			resilience.FaultySource(resilience.ProbeFunc(func(ifcID, attrID, value string) (string, error) {
				src := pool.Source(ifcID)
				if src == nil {
					return "", resilience.ErrUnknownSource
				}
				return src.Probe(attrID, value), nil
			}), inj),
			resilience.ClientOptions{Seed: *faultSeed})
		acq.SetFallible(fe, fs)
		fmt.Printf("Fault injection on: profile %s, seed %d (retry + circuit breaker active)\n", prof.Name, *faultSeed)
	}

	var reg *obs.Registry
	if *metricsDump {
		reg = obs.NewRegistry()
		engine.Instrument(reg)
		if cache != nil {
			cache.Instrument(reg)
		}
		pool.Instrument(reg)
		acq.SetObserver(reg)
	}
	var spanFile *os.File
	var spans *obs.Tracer
	if *traceFile != "" {
		var err error
		spanFile, err = os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		spans = obs.NewTracer(spanFile)
		acq.SetSpanTracer(spans)
	}
	var ledger *obs.Ledger
	var ledgerOut *os.File
	if *ledgerFile != "" || *explainAttr != "" {
		if *ledgerFile != "" {
			var err error
			ledgerOut, err = os.Create(*ledgerFile)
			if err != nil {
				log.Fatal(err)
			}
			ledger = obs.NewLedger(ledgerOut)
		} else {
			ledger = obs.NewLedger(nil)
		}
		if reg != nil {
			ledger.Instrument(reg)
		}
		acq.SetLedger(ledger)
	}
	var tracers []webiq.Tracer
	if *events {
		tracers = append(tracers, webiq.NewLogTracer(os.Stderr))
	}
	if spans != nil {
		// Acquisition events also land in the span log as zero-duration
		// records, interleaved with the component spans.
		tracers = append(tracers, webiq.NewObsEventTracer(spans))
	}
	if len(tracers) > 0 {
		acq.SetTracer(webiq.MultiTracer(tracers...))
	}

	fmt.Println("Acquiring instances...")
	start := time.Now()
	rep := acq.AcquireAll(ds)
	fmt.Printf("Acquisition done in %v (wall); %d search queries (%.1f simulated minutes), %d deep probes (%.1f simulated minutes)\n",
		time.Since(start).Round(time.Millisecond),
		engine.QueryCount(), engine.VirtualTime().Minutes(),
		pool.QueryCount(), pool.VirtualTime().Minutes())
	if cache != nil {
		raw := cache.RawQueryCount()
		hitRate := 0.0
		if raw > 0 {
			hitRate = 100 * float64(cache.Hits()) / float64(raw)
		}
		fmt.Printf("Query cache: %d raw queries, %d answered from cache (%.1f%% hit rate); a cacheless client would have spent %.1f simulated minutes\n",
			raw, cache.Hits(), hitRate, cache.RawVirtualTime().Minutes())
	}
	fmt.Printf("Acquisition success rate on instance-less attributes: %.1f%%\n\n", rep.SuccessRate())
	if len(rep.Degradations) > 0 || rep.Interrupted != nil {
		counts := map[string]int{}
		for _, d := range rep.Degradations {
			counts[d.Stage+"/"+d.Reason]++
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("Degraded gracefully %d times:\n", len(rep.Degradations))
		for _, k := range keys {
			fmt.Printf("  %-32s %d\n", k, counts[k])
		}
		if rep.Interrupted != nil {
			fmt.Printf("  acquisition interrupted early: %v\n", rep.Interrupted)
		}
		fmt.Println()
	}

	if *verbose {
		for _, o := range rep.Outcomes {
			if o.HadInstances && o.Acquired == 0 {
				continue
			}
			fmt.Printf("  %-24s %-22q acquired=%-3d via=%v\n", o.AttrID, o.Label, o.Acquired, o.Methods)
		}
		fmt.Println()
	}

	if *learn > 0 {
		m := matcher.New(matcher.Config{Alpha: 0.6, Beta: 0.4})
		learned, asked := m.LearnThreshold(ds, matcher.GoldOracle(ds), *learn)
		fmt.Printf("Learned threshold tau=%.3f after %d oracle questions\n", learned, asked)
		*tau = learned
	}

	for _, th := range []float64{0, *tau} {
		mm := matcher.New(matcher.Config{Alpha: 0.6, Beta: 0.4, Threshold: th, Workers: *workers})
		mm.Instrument(reg)
		if th == *tau {
			// The ledger records the merges of the run that produces the
			// final result (the -tau run).
			mm.SetLedger(ledger)
		}
		res := mm.Match(ds)
		m := matcher.Evaluate(res.Pairs, ds.GoldPairs())
		fmt.Printf("Matching (tau=%.2f): P=%.3f R=%.3f F1=%.3f (%d clusters, %d pairs)\n",
			th, m.Precision, m.Recall, m.F1, len(res.Clusters), m.Predicted)
		if th == *tau && th == 0 {
			break
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := ds.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nAcquired dataset written to %s\n", *jsonOut)
	}

	if ledgerOut != nil {
		if err := ledgerOut.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nProvenance ledger written to %s (%d decisions)\n", *ledgerFile, ledger.Len())
	}
	if *explainAttr != "" {
		printExplain(ds, ledger, *explainAttr)
	}

	if spanFile != nil {
		if err := spanFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nSpan log written to %s:\n", *traceFile)
		for _, tot := range spans.TotalsByName() {
			fmt.Printf("  %-18s spans=%-4d wall=%-12v virtual=%-12v queries=%d\n",
				tot.Name, tot.Spans, tot.Wall.Round(time.Microsecond), tot.Virtual, tot.Queries)
		}
	}
	if reg != nil {
		fmt.Println("\n# Final metrics snapshot")
		reg.WritePrometheus(os.Stdout)
	}
}

// printExplain prints the provenance decisions concerning one
// attribute, identified by ID or exact (case-insensitive) label.
func printExplain(ds *schema.Dataset, ledger *obs.Ledger, attr string) {
	var ids []string
	for _, ifc := range ds.Interfaces {
		for _, a := range ifc.Attributes {
			if a.ID == attr || strings.EqualFold(a.Label, attr) {
				ids = append(ids, a.ID)
			}
		}
	}
	if len(ids) == 0 {
		fmt.Printf("\nNo attribute matches %q (use an attribute ID like airfare/if00/a0, or an exact label)\n", attr)
		return
	}
	for _, id := range ids {
		decisions := ledger.ByAttr(id)
		fmt.Printf("\nProvenance for %s (%d decisions):\n", id, len(decisions))
		for _, d := range decisions {
			line := fmt.Sprintf("  [%s] %s", d.Component, d.Verdict)
			if d.Value != "" {
				line += fmt.Sprintf(" %q", d.Value)
			}
			if d.OtherID != "" {
				line += " with " + d.OtherID
			}
			line += fmt.Sprintf(" score=%.3f", d.Score)
			if d.Threshold != 0 {
				line += fmt.Sprintf(" threshold=%.3f", d.Threshold)
			}
			if d.Component == "matcher" {
				line += fmt.Sprintf(" label_sim=%.3f dom_sim=%.3f merge_order=%d", d.LabelSim, d.DomSim, d.MergeOrder)
			}
			if d.Detail != "" {
				line += " (" + d.Detail + ")"
			}
			fmt.Println(line)
		}
	}
}

func parseComponents(s string) (webiq.Components, error) {
	var c webiq.Components
	if strings.TrimSpace(s) == "" {
		return c, nil
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "surface":
			c.Surface = true
		case "deep":
			c.AttrDeep = true
		case "attr":
			c.AttrSurface = true
		default:
			return c, fmt.Errorf("unknown component %q (want surface, deep, attr)", part)
		}
	}
	return c, nil
}
