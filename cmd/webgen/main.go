// Command webgen generates and inspects the synthetic substrates: the
// ICQ-style dataset, the Surface-Web corpus, and the synthetic
// evaluation scenarios swept by the quality harness.
//
//	webgen -list                                 # available modes and domains
//	webgen -what dataset -domain book            # dataset stats
//	webgen -what dataset -domain book -json d.json
//	webgen -what dataset -synth 5                # include synthetic sweep domains
//	webgen -what corpus                          # corpus stats
//	webgen -what corpus -query '"authors such as" +book'
//	webgen -what scenarios -synth 20             # the synthetic sweep table
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"webiq/internal/dataset"
	"webiq/internal/htmlform"
	"webiq/internal/kb"
	"webiq/internal/surfaceweb"
	"webiq/internal/synth"
)

// whats are the generation modes, with what each one produces.
var whats = []struct{ name, desc string }{
	{"dataset", "query-interface dataset statistics (per domain)"},
	{"corpus", "Surface-Web corpus statistics and ad-hoc queries"},
	{"form", "one rendered HTML query interface"},
	{"scenarios", "the synthetic evaluation sweep (internal/synth)"},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("webgen: ")

	what := flag.String("what", "dataset", "what to generate: dataset, corpus, form, or scenarios")
	domainFlag := flag.String("domain", "", "restrict to one domain (default: all)")
	seed := flag.Int64("seed", 1, "random seed")
	jsonOut := flag.String("json", "", "write generated dataset(s) as JSON to this file")
	query := flag.String("query", "", "with -what corpus: run this search query and show hits/snippets")
	scale := flag.Float64("scale", 1, "with -what corpus: multiply the page counts by this factor (e.g. 10 for a 10x corpus)")
	synthN := flag.Int("synth", 0, "include this many synthetic sweep domains (scenarios mode defaults to 20)")
	list := flag.Bool("list", false, "print the available modes and domains, then exit")
	flag.Parse()

	if *list {
		printList()
		return
	}
	if !knownWhat(*what) {
		log.Fatalf("unknown -what %q (want %s; see -list)", *what, whatNames())
	}
	if *scale <= 0 {
		log.Fatalf("-scale must be positive, got %g", *scale)
	}
	if *synthN == 0 && *what == "scenarios" {
		*synthN = 20
	}
	scenarios := synth.Sweep(*synthN, *seed)

	domains := kb.Domains()
	if *domainFlag != "" {
		d := lookupDomain(*domainFlag, scenarios)
		if d == nil {
			log.Fatalf("unknown domain %q (see -list; synthetic keys need a matching -synth count)", *domainFlag)
		}
		domains = []*kb.Domain{d}
	} else if *synthN > 0 {
		for _, sc := range scenarios {
			domains = append(domains, sc.Domain)
		}
	}

	switch *what {
	case "dataset":
		fmt.Printf("%-24s %5s %6s %9s %12s %12s\n",
			"Domain", "Ifcs", "Attrs", "Avg/Ifc", "IfcNoInst%", "AttrNoInst%")
		for _, d := range domains {
			cfg := datasetConfig(d, scenarios, *seed)
			ds := dataset.Generate(d, cfg)
			st := ds.ComputeStats()
			fmt.Printf("%-24s %5d %6d %9.1f %12.0f %12.1f\n",
				d.Key, st.Interfaces, st.Attributes, st.AvgAttrs,
				st.PctInterfacesNoInst, st.PctAttrsNoInst)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					log.Fatal(err)
				}
				if err := ds.WriteJSON(f); err != nil {
					log.Fatal(err)
				}
				f.Close()
				fmt.Printf("  -> %s\n", *jsonOut)
			}
		}
	case "corpus":
		engine := surfaceweb.NewEngine()
		cfg := surfaceweb.DefaultCorpusConfig().Scaled(*scale)
		cfg.Seed = *seed
		surfaceweb.BuildCorpus(engine, domains, cfg)
		fmt.Printf("Corpus: %d pages\n", engine.NumDocs())
		if *query != "" {
			fmt.Printf("NumHits(%s) = %d\n", *query, engine.NumHits(*query))
			for i, s := range engine.Search(*query, 5) {
				fmt.Printf("snippet %d (doc %d): %s\n", i+1, s.DocID, s.Text)
			}
		}
	case "form":
		cfg := datasetConfig(domains[0], scenarios, *seed)
		ds := dataset.Generate(domains[0], cfg)
		fmt.Print(htmlform.Render(ds.Interfaces[0]))
	case "scenarios":
		fmt.Printf("%-28s %8s %5s %-6s %3s %5s %4s %8s\n",
			"Domain", "Presence", "Noise", "Style", "Zip", "Units", "Ifcs", "Concepts")
		for _, sc := range scenarios {
			fmt.Printf("%-28s %7.0f%% %5d %-6s %3s %5s %4d %8d\n",
				sc.Domain.Key, sc.PresenceRate*100, sc.NoiseLevel, sc.Style,
				mark(sc.Ambiguous), mark(sc.Units), sc.Interfaces, len(sc.Domain.Concepts))
		}
	}
}

// knownWhat validates -what against the mode table.
func knownWhat(name string) bool {
	for _, w := range whats {
		if w.name == name {
			return true
		}
	}
	return false
}

func whatNames() string {
	names := make([]string, len(whats))
	for i, w := range whats {
		names[i] = w.name
	}
	return strings.Join(names, ", ")
}

// lookupDomain resolves a paper domain key or a synthetic sweep key.
func lookupDomain(key string, scenarios []*synth.Scenario) *kb.Domain {
	if d := kb.DomainByKey(key); d != nil {
		return d
	}
	for _, sc := range scenarios {
		if sc.Domain.Key == key {
			return sc.Domain
		}
	}
	return nil
}

// datasetConfig picks the scenario-specific configuration for synthetic
// domains and the paper default otherwise.
func datasetConfig(d *kb.Domain, scenarios []*synth.Scenario, seed int64) dataset.Config {
	for _, sc := range scenarios {
		if sc.Domain == d {
			return sc.DatasetConfig(seed)
		}
	}
	cfg := dataset.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

func mark(on bool) string {
	if on {
		return "yes"
	}
	return "-"
}

// printList answers -list: every generation mode and every known domain.
func printList() {
	fmt.Println("Modes (-what):")
	for _, w := range whats {
		fmt.Printf("  %-10s %s\n", w.name, w.desc)
	}
	fmt.Println("\nPaper domains (-domain):")
	keys := make([]string, 0, 5)
	for _, d := range kb.Domains() {
		keys = append(keys, d.Key)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s\n", k)
	}
	fmt.Println("\nSynthetic sweep domains (-synth N, keys for N=20):")
	for _, sc := range synth.Sweep(20, 1) {
		fmt.Printf("  %-28s %s\n", sc.Domain.Key, sc.Name)
	}
}
