// Command webgen generates and inspects the synthetic substrates: the
// ICQ-style dataset and the Surface-Web corpus.
//
//	webgen -what dataset -domain book            # dataset stats
//	webgen -what dataset -domain book -json d.json
//	webgen -what corpus                          # corpus stats
//	webgen -what corpus -query '"authors such as" +book'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"webiq/internal/dataset"
	"webiq/internal/htmlform"
	"webiq/internal/kb"
	"webiq/internal/surfaceweb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("webgen: ")

	what := flag.String("what", "dataset", "what to generate: dataset, corpus, or form")
	domainFlag := flag.String("domain", "", "restrict to one domain (default: all)")
	seed := flag.Int64("seed", 1, "random seed")
	jsonOut := flag.String("json", "", "write generated dataset(s) as JSON to this file")
	query := flag.String("query", "", "with -what corpus: run this search query and show hits/snippets")
	scale := flag.Float64("scale", 1, "with -what corpus: multiply the page counts by this factor (e.g. 10 for a 10x corpus)")
	flag.Parse()
	if *scale <= 0 {
		log.Fatalf("-scale must be positive, got %g", *scale)
	}

	domains := kb.Domains()
	if *domainFlag != "" {
		d := kb.DomainByKey(*domainFlag)
		if d == nil {
			log.Fatalf("unknown domain %q", *domainFlag)
		}
		domains = []*kb.Domain{d}
	}

	switch *what {
	case "dataset":
		cfg := dataset.DefaultConfig()
		cfg.Seed = *seed
		fmt.Printf("%-11s %5s %6s %9s %12s %12s\n",
			"Domain", "Ifcs", "Attrs", "Avg/Ifc", "IfcNoInst%", "AttrNoInst%")
		for _, d := range domains {
			ds := dataset.Generate(d, cfg)
			st := ds.ComputeStats()
			fmt.Printf("%-11s %5d %6d %9.1f %12.0f %12.1f\n",
				d.Key, st.Interfaces, st.Attributes, st.AvgAttrs,
				st.PctInterfacesNoInst, st.PctAttrsNoInst)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					log.Fatal(err)
				}
				if err := ds.WriteJSON(f); err != nil {
					log.Fatal(err)
				}
				f.Close()
				fmt.Printf("  -> %s\n", *jsonOut)
			}
		}
	case "corpus":
		engine := surfaceweb.NewEngine()
		cfg := surfaceweb.DefaultCorpusConfig()
		cfg.Seed = *seed
		surfaceweb.BuildCorpus(engine, domains, cfg)
		fmt.Printf("Corpus: %d pages\n", engine.NumDocs())
		if *query != "" {
			fmt.Printf("NumHits(%s) = %d\n", *query, engine.NumHits(*query))
			for i, s := range engine.Search(*query, 5) {
				fmt.Printf("snippet %d (doc %d): %s\n", i+1, s.DocID, s.Text)
			}
		}
	case "form":
		cfg := dataset.DefaultConfig()
		cfg.Seed = *seed
		ds := dataset.Generate(domains[0], cfg)
		fmt.Print(htmlform.Render(ds.Interfaces[0]))
	default:
		log.Fatalf("unknown -what %q (want dataset, corpus, or form)", *what)
	}
}
