// Command webiq-snapshot builds, verifies, and inspects binary world
// snapshots — the mmap-friendly files webiq-serve loads for instant
// cold start.
//
//	webiq-snapshot build  -o world.snap -seed 1 -scale 1
//	webiq-snapshot verify world.snap
//	webiq-snapshot info   world.snap
//
// build runs the full pipeline offline (corpus, datasets, deep-web
// pools, acquisition, matching, unification for every domain) and
// writes the result atomically. verify re-validates every checksum and
// structural invariant and prints what it found; info prints the header
// and section table without touching the bulk payloads. verify and
// info exit nonzero on any corruption.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"webiq/internal/snapshot"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  webiq-snapshot build  -o <path> [-seed N] [-scale X] [-json]
  webiq-snapshot verify <path> [-json]
  webiq-snapshot info   <path> [-json]
`)
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("webiq-snapshot: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		runBuild(os.Args[2:])
	case "verify":
		runVerify(os.Args[2:])
	case "info":
		runInfo(os.Args[2:])
	default:
		usage()
	}
}

func runBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "world.snap", "output path (written atomically via rename)")
	seed := fs.Int64("seed", 1, "random seed for all generators")
	scale := fs.Float64("scale", 1, "corpus size multiplier (1 = webiq-serve's size)")
	asJSON := fs.Bool("json", false, "print the build summary as JSON")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}

	start := time.Now()
	w, err := snapshot.BuildWorld(snapshot.BuildConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	built := time.Since(start)
	if err := w.Write(*out); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		printJSON(map[string]any{
			"path": *out, "bytes": st.Size(), "build_seconds": built.Seconds(), "meta": w.Meta,
		})
		return
	}
	log.Printf("built world in %v: %d docs, %d terms, %d postings, %d decisions across %d domains",
		built.Round(time.Millisecond), w.Meta.Docs, w.Meta.Terms, w.Meta.Postings,
		w.Meta.Decisions, len(w.Meta.Domains))
	log.Printf("wrote %s (%d bytes)", *out, st.Size())
}

func runVerify(args []string) {
	path, asJSON := pathArg("verify", args)
	start := time.Now()
	info, err := snapshot.Verify(path)
	if err != nil {
		log.Fatal(err)
	}
	if asJSON {
		printJSON(info)
		return
	}
	log.Printf("%s: OK in %v (every checksum and invariant verified)", path, time.Since(start).Round(time.Millisecond))
	printInfo(info)
}

func runInfo(args []string) {
	path, asJSON := pathArg("info", args)
	info, err := snapshot.Info(path)
	if err != nil {
		log.Fatal(err)
	}
	if asJSON {
		printJSON(info)
		return
	}
	printInfo(info)
}

// pathArg parses "<cmd> <path> [-json]" (flags may come first).
func pathArg(cmd string, args []string) (string, bool) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	return fs.Arg(0), *asJSON
}

func printInfo(info *snapshot.FileInfo) {
	m := info.Meta
	fmt.Printf("snapshot   %s (%d bytes, format v%d, fingerprint %#016x)\n",
		info.Path, info.Size, info.FormatVersion, info.Fingerprint)
	fmt.Printf("built with %s, seed %d, scale %g\n", m.GoVersion, m.Seed, m.Scale)
	fmt.Printf("contents   %d docs, %d terms, %d postings, %d decisions, %d domains\n",
		m.Docs, m.Terms, m.Postings, m.Decisions, len(m.Domains))
	fmt.Printf("%-20s %12s %12s  %s\n", "section", "offset", "bytes", "crc64")
	for _, s := range info.Sections {
		fmt.Printf("%-20s %12d %12d  %016x\n", s.Name, s.Off, s.Len, s.CRC)
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
