// Command webiq-loadgen drives a mixed read workload — source probe
// searches, unified-interface views, and provenance explains — against
// one or more webiq-serve nodes at a target request rate, then asserts
// service-level objectives over what it measured:
//
//	webiq-loadgen -targets http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	    -rps 100 -duration 30s -p99 500ms -max-error-rate 0.01
//
// Requests are spread round-robin-by-random across the targets, so
// against a cluster the generator sees whatever routing (forwarding,
// failover, local fallback) the nodes apply. Three verdicts gate the
// exit status:
//
//  1. the client-observed p99 latency stays within -p99 (0 disables);
//  2. the non-503 error rate stays within -max-error-rate — 503s are
//     counted separately as sheds, because admission control refusing
//     work under overload is policy, not failure;
//  3. after the run, every domain renders its unified interface through
//     every target (the all-domains-servable pass, the availability
//     contract the cluster chaos harness holds while killing nodes).
//
// The summary is printed as JSON (to stdout, or -json FILE); any
// violated objective is listed in "violations" and makes the exit
// status 1, so scripts can gate on the generator directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// result is one completed request as the client observed it.
type result struct {
	route   string
	status  int // 0 on transport error
	err     bool
	shed    bool
	latency time.Duration
}

// summary is the machine-readable run report.
type summary struct {
	Targets      []string        `json:"targets"`
	DurationSecs float64         `json:"duration_seconds"`
	TargetRPS    int             `json:"target_rps"`
	AchievedRPS  float64         `json:"achieved_rps"`
	Requests     int             `json:"requests"`
	OK           int             `json:"ok"`
	Shed         int             `json:"shed_503"`
	Errors       int             `json:"errors"`
	ErrorRate    float64         `json:"error_rate"`
	Routes       map[string]int  `json:"routes"`
	ServedBy     map[string]int  `json:"served_by,omitempty"`
	P50Ms        float64         `json:"p50_ms"`
	P90Ms        float64         `json:"p90_ms"`
	P99Ms        float64         `json:"p99_ms"`
	MaxMs        float64         `json:"max_ms"`
	Servable     map[string]bool `json:"domains_servable"`
	Violations   []string        `json:"violations"`
	ErrorSamples map[string]int  `json:"error_samples,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("webiq-loadgen: ")

	targetsFlag := flag.String("targets", "", "comma-separated base URLs of the nodes to load (required)")
	rps := flag.Int("rps", 50, "target request rate across all targets")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	domainsFlag := flag.String("domains", "airfare,auto,book,job,realestate", "domains to exercise")
	p99SLO := flag.Duration("p99", 0, "client-observed p99 latency objective; 0 disables")
	maxErrRate := flag.Float64("max-error-rate", 0.01, "bound on the non-503 error fraction")
	jsonPath := flag.String("json", "", "write the JSON summary to this file instead of stdout")
	seed := flag.Int64("seed", 1, "seed for the traffic mix")
	reqTimeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	concurrency := flag.Int("concurrency", 64, "bound on in-flight requests")
	flag.Parse()

	var targets []string
	for _, t := range strings.Split(*targetsFlag, ",") {
		if t = strings.TrimSuffix(strings.TrimSpace(t), "/"); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		log.Fatal("-targets is required")
	}
	domains := strings.Split(*domainsFlag, ",")

	client := &http.Client{Timeout: *reqTimeout}
	rng := rand.New(rand.NewSource(*seed))

	// Open-loop-ish generation: a ticker paces dispatch at the target
	// rate, a semaphore bounds in-flight work so a stalling cluster
	// degrades to a closed loop instead of an unbounded goroutine pile.
	var (
		mu       sync.Mutex
		results  []result
		servedBy = map[string]int{}
		errKinds = map[string]int{}
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, *concurrency)
	interval := time.Second / time.Duration(*rps)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(*duration)
	start := time.Now()

	log.Printf("driving %d rps across %d targets for %v", *rps, len(targets), *duration)
	for time.Now().Before(deadline) {
		<-ticker.C
		target := targets[rng.Intn(len(targets))]
		domain := domains[rng.Intn(len(domains))]
		route, path := pickRoute(rng, domain)
		select {
		case sem <- struct{}{}:
		default:
			// At the concurrency bound: count the skipped slot as shed
			// locally rather than queueing unbounded work.
			mu.Lock()
			results = append(results, result{route: route, shed: true})
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r := doRequest(client, target+path, route)
			mu.Lock()
			results = append(results, r.res)
			if r.servedBy != "" {
				servedBy[r.servedBy]++
			}
			if r.errKind != "" {
				errKinds[r.errKind]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := tally(targets, results, servedBy, errKinds, *rps, elapsed)

	// The all-domains-servable pass: after the load (and whatever node
	// deaths happened during it), every domain must still render its
	// unified interface through every surviving target.
	sum.Servable = map[string]bool{}
	for _, d := range domains {
		servable := true
		for _, t := range targets {
			if !unifiedOK(client, t, d) {
				servable = false
				sum.Violations = append(sum.Violations,
					fmt.Sprintf("domain %s not servable via %s", d, t))
			}
		}
		sum.Servable[d] = servable
	}

	if *p99SLO > 0 && sum.P99Ms > float64(p99SLO.Milliseconds()) {
		sum.Violations = append(sum.Violations,
			fmt.Sprintf("p99 %.1fms exceeds SLO %v", sum.P99Ms, *p99SLO))
	}
	if sum.ErrorRate > *maxErrRate {
		sum.Violations = append(sum.Violations,
			fmt.Sprintf("error rate %.4f exceeds bound %.4f", sum.ErrorRate, *maxErrRate))
	}

	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, '\n')
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("summary written to %s", *jsonPath)
	} else {
		os.Stdout.Write(out)
	}
	if len(sum.Violations) > 0 {
		log.Fatalf("FAIL: %d objective(s) violated: %s",
			len(sum.Violations), strings.Join(sum.Violations, "; "))
	}
	log.Printf("PASS: %d requests, %.1f rps achieved, p99 %.1fms, error rate %.4f",
		sum.Requests, sum.AchievedRPS, sum.P99Ms, sum.ErrorRate)
}

// pickRoute draws from the traffic mix: mostly cheap source probes,
// with unified views and provenance explains riding along.
func pickRoute(rng *rand.Rand, domain string) (route, path string) {
	switch p := rng.Float64(); {
	case p < 0.60:
		ifc := fmt.Sprintf("%s/if%02d", domain, rng.Intn(3))
		return "search", fmt.Sprintf("/source/%s/search?f0=a", ifc)
	case p < 0.90:
		return "unified", "/unified/" + domain
	default:
		return "explain", "/unified/" + domain + "/explain"
	}
}

type reqOutcome struct {
	res      result
	servedBy string
	errKind  string
}

// doRequest performs one request and classifies the outcome. A 404 on
// a probe route is an error (the interface must exist on every node);
// a 503 is a shed, the admission queue or a draining node saying "not
// now" — bounded separately from real failures.
func doRequest(client *http.Client, url, route string) reqOutcome {
	start := time.Now()
	resp, err := client.Get(url)
	lat := time.Since(start)
	out := reqOutcome{res: result{route: route, latency: lat}}
	if err != nil {
		out.res.err = true
		out.errKind = "transport"
		return out
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	out.res.status = resp.StatusCode
	out.servedBy = resp.Header.Get("X-WebIQ-Served-By")
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		out.res.shed = true
	case resp.StatusCode >= 400:
		out.res.err = true
		out.errKind = fmt.Sprintf("http-%d", resp.StatusCode)
	}
	return out
}

// unifiedOK is the servability check: GET /unified/{domain} with a few
// retries, because right after a node kill the first request may land
// inside a breaker's cooldown.
func unifiedOK(client *http.Client, target, domain string) bool {
	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), client.Timeout)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, target+"/unified/"+domain, nil)
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			cancel()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		} else {
			cancel()
		}
		time.Sleep(200 * time.Millisecond)
	}
	return false
}

// tally reduces the raw results to the summary report.
func tally(targets []string, results []result, servedBy, errKinds map[string]int, rps int, elapsed time.Duration) summary {
	sum := summary{
		Targets:      targets,
		DurationSecs: elapsed.Seconds(),
		TargetRPS:    rps,
		Requests:     len(results),
		Routes:       map[string]int{},
		ServedBy:     servedBy,
		ErrorSamples: errKinds,
		Violations:   []string{},
	}
	var lats []time.Duration
	for _, r := range results {
		sum.Routes[r.route]++
		switch {
		case r.shed:
			sum.Shed++
		case r.err:
			sum.Errors++
		default:
			sum.OK++
		}
		if !r.shed {
			lats = append(lats, r.latency)
		}
	}
	if elapsed > 0 {
		sum.AchievedRPS = float64(len(results)) / elapsed.Seconds()
	}
	if n := sum.OK + sum.Errors; n > 0 {
		sum.ErrorRate = float64(sum.Errors) / float64(n)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(lats)-1))
			return float64(lats[i]) / float64(time.Millisecond)
		}
		sum.P50Ms, sum.P90Ms, sum.P99Ms = q(0.50), q(0.90), q(0.99)
		sum.MaxMs = float64(lats[len(lats)-1]) / float64(time.Millisecond)
	}
	return sum
}
