package main

import (
	"strings"
	"testing"
)

func run(name string, iters int64, metrics map[string]float64) Run {
	return Run{Name: name, Iterations: iters, Metrics: metrics}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkPipeline/seed-8":     "BenchmarkPipeline/seed",
		"BenchmarkPipeline/seed-16":    "BenchmarkPipeline/seed",
		"BenchmarkPipeline/seed":       "BenchmarkPipeline/seed",
		"BenchmarkCorpusScale/x10-4":   "BenchmarkCorpusScale/x10",
		"BenchmarkCorpusScale/x10-ab":  "BenchmarkCorpusScale/x10-ab",
		"BenchmarkFoo-":                "BenchmarkFoo-",
		"BenchmarkScale/factor=1.5x-8": "BenchmarkScale/factor=1.5x",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseRegress(t *testing.T) {
	for in, want := range map[string]float64{"10%": 0.1, "0.1": 0.1, "25 %": 0.25, "0": 0} {
		got, err := parseRegress(in)
		if err != nil || got != want {
			t.Errorf("parseRegress(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "abc", "-5%"} {
		if _, err := parseRegress(in); err == nil {
			t.Errorf("parseRegress(%q): want error", in)
		}
	}
}

func specs(def float64, units ...string) []metricSpec {
	out := make([]metricSpec, 0, len(units))
	for _, u := range units {
		out = append(out, metricSpec{unit: u, threshold: def})
	}
	return out
}

func TestCompareReports(t *testing.T) {
	metrics := specs(0.1, "B/op", "allocs/op")
	old := Report{Runs: []Run{
		run("BenchmarkPipeline/seed-8", 3, map[string]float64{"ns/op": 1e9, "B/op": 1000, "allocs/op": 100}),
		run("BenchmarkPipeline/cached-parallel-8", 3, map[string]float64{"ns/op": 4e8, "B/op": 2000, "allocs/op": 200}),
	}}

	t.Run("pass within threshold", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/seed-16", 3, map[string]float64{"B/op": 1050, "allocs/op": 100}),
			run("BenchmarkPipeline/cached-parallel-16", 3, map[string]float64{"B/op": 1500, "allocs/op": 190}),
		}}
		var sb strings.Builder
		if !compareReports(&sb, old, new_, metrics) {
			t.Fatalf("want pass, got fail:\n%s", sb.String())
		}
	})

	t.Run("fail beyond threshold", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/seed-8", 3, map[string]float64{"B/op": 1200, "allocs/op": 100}),
			run("BenchmarkPipeline/cached-parallel-8", 3, map[string]float64{"B/op": 2000, "allocs/op": 200}),
		}}
		var sb strings.Builder
		if compareReports(&sb, old, new_, metrics) {
			t.Fatal("want fail on 20% B/op regression, got pass")
		}
		if !strings.Contains(sb.String(), "REGRESSION") {
			t.Errorf("output missing REGRESSION marker:\n%s", sb.String())
		}
	})

	t.Run("fail on missing run", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/seed-8", 3, map[string]float64{"B/op": 1000, "allocs/op": 100}),
		}}
		var sb strings.Builder
		if compareReports(&sb, old, new_, metrics) {
			t.Fatal("want fail when a baseline run is missing, got pass")
		}
	})

	t.Run("fail on missing metric", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/seed-8", 3, map[string]float64{"B/op": 1000}),
			run("BenchmarkPipeline/cached-parallel-8", 3, map[string]float64{"B/op": 2000, "allocs/op": 200}),
		}}
		var sb strings.Builder
		if compareReports(&sb, old, new_, metrics) {
			t.Fatal("want fail when a gated metric is dropped, got pass")
		}
	})

	t.Run("improvements never fail", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/seed-8", 3, map[string]float64{"B/op": 1, "allocs/op": 1}),
			run("BenchmarkPipeline/cached-parallel-8", 3, map[string]float64{"B/op": 1, "allocs/op": 1}),
		}}
		var sb strings.Builder
		if !compareReports(&sb, old, new_, specs(0, "B/op", "allocs/op")) {
			t.Fatalf("want pass on pure improvement even at 0 threshold:\n%s", sb.String())
		}
	})
}

func TestParseMetricSpecs(t *testing.T) {
	got, err := parseMetricSpecs("ns/op=25%, B/op ,allocs/op", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := []metricSpec{
		{unit: "ns/op", threshold: 0.25},
		{unit: "B/op", threshold: 0.1},
		{unit: "allocs/op", threshold: 0.1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d specs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"ns/op=abc", "=10%", "ns/op=-5%"} {
		if _, err := parseMetricSpecs(bad, 0.1); err == nil {
			t.Errorf("parseMetricSpecs(%q): want error", bad)
		}
	}
}

func TestCompareReportsPerMetricThresholds(t *testing.T) {
	// ns/op gated loose (25%), allocs/op tight (10%).
	metrics := []metricSpec{
		{unit: "ns/op", threshold: 0.25},
		{unit: "allocs/op", threshold: 0.1},
	}
	old := Report{Runs: []Run{
		run("BenchmarkPipeline/seed-8", 3, map[string]float64{"ns/op": 1000, "allocs/op": 100}),
	}}

	t.Run("wall-clock noise inside loose bound passes", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/seed-8", 3, map[string]float64{"ns/op": 1200, "allocs/op": 105}),
		}}
		var sb strings.Builder
		if !compareReports(&sb, old, new_, metrics) {
			t.Fatalf("+20%% ns/op should pass the 25%% bound:\n%s", sb.String())
		}
	})
	t.Run("wall-clock regression beyond loose bound fails", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/seed-8", 3, map[string]float64{"ns/op": 1300, "allocs/op": 100}),
		}}
		var sb strings.Builder
		if compareReports(&sb, old, new_, metrics) {
			t.Fatalf("+30%% ns/op must fail the 25%% bound:\n%s", sb.String())
		}
	})
	t.Run("alloc regression inside loose but beyond tight bound fails", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/seed-8", 3, map[string]float64{"ns/op": 1000, "allocs/op": 120}),
		}}
		var sb strings.Builder
		if compareReports(&sb, old, new_, metrics) {
			t.Fatalf("+20%% allocs/op must fail the 10%% bound:\n%s", sb.String())
		}
	})
}

func TestParseBenchText(t *testing.T) {
	rep, err := parseBenchText(`
goos: linux
BenchmarkPipeline/seed-8   3   980585804 ns/op   123456 B/op   4567 allocs/op
PASS
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(rep.Runs))
	}
	r := rep.Runs[0]
	if r.Name != "BenchmarkPipeline/seed-8" || r.Metrics["allocs/op"] != 4567 {
		t.Errorf("unexpected run: %+v", r)
	}
}

func TestCompareReportsNewRunsInformational(t *testing.T) {
	metrics := specs(0.1, "ns/op")
	old := Report{Runs: []Run{
		run("BenchmarkPipeline/seed-8", 3, map[string]float64{"ns/op": 1000}),
	}}
	new_ := Report{Runs: []Run{
		run("BenchmarkPipeline/seed-4", 3, map[string]float64{"ns/op": 1000}),
		run("BenchmarkPipeline/parallel-8-4", 3, map[string]float64{"ns/op": 500, "eff%": 80}),
		run("BenchmarkPipeline/parallel-16-4", 3, map[string]float64{"ns/op": 400, "eff%": 60}),
	}}
	var sb strings.Builder
	if !compareReports(&sb, old, new_, metrics) {
		t.Fatalf("runs new in the report must not fail the gate:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"NEW  BenchmarkPipeline/parallel-8", "NEW  BenchmarkPipeline/parallel-16"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NEW  BenchmarkPipeline/seed") {
		t.Errorf("matched run reported as NEW:\n%s", out)
	}
}

func TestParseMetricSpecsLowerWorse(t *testing.T) {
	got, err := parseMetricSpecs("ns/op=25%,<eff%=15%, <speedup ", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := []metricSpec{
		{unit: "ns/op", threshold: 0.25},
		{unit: "eff%", threshold: 0.15, lowerWorse: true},
		{unit: "speedup", threshold: 0.1, lowerWorse: true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d specs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := parseMetricSpecs("<", 0.1); err == nil {
		t.Error(`parseMetricSpecs("<"): want error for empty unit`)
	}
}

func TestCompareReportsLowerWorse(t *testing.T) {
	metrics := []metricSpec{{unit: "eff%", threshold: 0.15, lowerWorse: true}}
	old := Report{Runs: []Run{
		run("BenchmarkPipeline/parallel-8-8", 3, map[string]float64{"eff%": 80}),
	}}

	t.Run("drop inside threshold passes", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/parallel-8-4", 3, map[string]float64{"eff%": 72}),
		}}
		var sb strings.Builder
		if !compareReports(&sb, old, new_, metrics) {
			t.Fatalf("-10%% eff%% should pass the 15%% bound:\n%s", sb.String())
		}
	})
	t.Run("drop beyond threshold fails", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/parallel-8-4", 3, map[string]float64{"eff%": 60}),
		}}
		var sb strings.Builder
		if compareReports(&sb, old, new_, metrics) {
			t.Fatalf("-25%% eff%% must fail the 15%% bound:\n%s", sb.String())
		}
		if !strings.Contains(sb.String(), "REGRESSION") {
			t.Errorf("output missing REGRESSION marker:\n%s", sb.String())
		}
	})
	t.Run("rise never fails a lower-is-worse unit", func(t *testing.T) {
		new_ := Report{Runs: []Run{
			run("BenchmarkPipeline/parallel-8-4", 3, map[string]float64{"eff%": 200}),
		}}
		var sb strings.Builder
		if !compareReports(&sb, old, new_, metrics) {
			t.Fatalf("+150%% eff%% is an improvement, must pass:\n%s", sb.String())
		}
	})
}

// TestCompareReportsColdStart pins the cold-start gate conventions:
// BenchmarkColdStart runs are NEW-informational before the baseline is
// refreshed, and once committed, the snapshot-load advantage (xrebuild,
// lower is worse) is gated alongside ns/op without any unit-specific
// code in benchjson.
func TestCompareReportsColdStart(t *testing.T) {
	metrics := []metricSpec{
		{unit: "ns/op", threshold: 0.25},
		{unit: "xrebuild", threshold: 0.25, lowerWorse: true},
	}
	coldRuns := func(loadNs, xrebuild float64) []Run {
		return []Run{
			run("BenchmarkColdStart/rebuild-10x-8", 1, map[string]float64{"ns/op": 18e9}),
			run("BenchmarkColdStart/snapshot-load-10x-8", 1,
				map[string]float64{"ns/op": loadNs, "xrebuild": xrebuild}),
		}
	}

	t.Run("first run is NEW and informational", func(t *testing.T) {
		old := Report{Runs: []Run{
			run("BenchmarkPipeline/seed-8", 3, map[string]float64{"ns/op": 1000}),
		}}
		new_ := Report{Runs: append(
			[]Run{run("BenchmarkPipeline/seed-8", 3, map[string]float64{"ns/op": 1000})},
			coldRuns(1e8, 180)...,
		)}
		var sb strings.Builder
		if !compareReports(&sb, old, new_, metrics) {
			t.Fatalf("ColdStart runs absent from the baseline must not fail the gate:\n%s", sb.String())
		}
		if !strings.Contains(sb.String(), "NEW  BenchmarkColdStart/snapshot-load-10x") {
			t.Errorf("output missing NEW marker for the cold-start run:\n%s", sb.String())
		}
	})

	t.Run("xrebuild collapse fails once committed", func(t *testing.T) {
		old := Report{Runs: coldRuns(1e8, 180)}
		// Snapshot load got 3x slower: xrebuild collapses 180 -> 60.
		new_ := Report{Runs: coldRuns(3e8, 60)}
		var sb strings.Builder
		if compareReports(&sb, old, new_, metrics) {
			t.Fatalf("a 3x slower snapshot load must fail the xrebuild gate:\n%s", sb.String())
		}
		if !strings.Contains(sb.String(), "REGRESSION") {
			t.Errorf("output missing REGRESSION marker:\n%s", sb.String())
		}
	})

	t.Run("faster rebuild shrinking xrebuild within bound passes", func(t *testing.T) {
		old := Report{Runs: coldRuns(1e8, 180)}
		new_ := Report{Runs: coldRuns(1e8, 150)}
		var sb strings.Builder
		if !compareReports(&sb, old, new_, metrics) {
			t.Fatalf("-17%% xrebuild should pass the 25%% bound:\n%s", sb.String())
		}
	})
}
