// Command benchjson converts `go test -bench` text output on stdin into
// a stable JSON document, so benchmark runs can be committed and
// diffed. Each benchmark line becomes one record with its iteration
// count and every reported (value, unit) pair — standard units like
// ns/op and B/op as well as custom b.ReportMetric units.
//
// Usage:
//
//	go test -run='^$' -bench BenchmarkPipeline -benchmem . | benchjson > BENCH_pipeline.json
package main

import (
	"bufio"
	"encoding/json"
	"log"
	"os"
	"strconv"
	"strings"
)

// Run is the parsed form of one benchmark result line.
type Run struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document: the environment header go test prints
// plus every benchmark line, in input order.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Runs   []Run  `json:"runs"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	rep := Report{Runs: []Run{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			run, ok := parseBenchLine(line)
			if ok {
				rep.Runs = append(rep.Runs, run)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(rep.Runs) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   3   980585804 ns/op   123 B/op   45 allocs/op
//
// into a Run; value/unit pairs follow the iteration count.
func parseBenchLine(line string) (Run, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Run{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Run{}, false
	}
	run := Run{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Run{}, false
		}
		run.Metrics[fields[i+1]] = v
	}
	if len(run.Metrics) == 0 {
		return Run{}, false
	}
	return run, true
}
