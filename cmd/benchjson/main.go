// Command benchjson converts `go test -bench` text output on stdin into
// a stable JSON document, so benchmark runs can be committed and
// diffed. Each benchmark line becomes one record with its iteration
// count and every reported (value, unit) pair — standard units like
// ns/op and B/op as well as custom b.ReportMetric units.
//
// It also compares two such documents, failing when any watched metric
// regresses beyond a threshold — the perf-regression gate run by
// `make bench-gate`:
//
//	go test -run='^$' -bench BenchmarkPipeline -benchmem . | benchjson > BENCH_pipeline.json
//	benchjson -compare old.json new.json -max-regress 10%
//	benchjson -compare old.json new.json -metrics "ns/op=25%,B/op,allocs/op"
//	... | benchjson > new.json && benchjson -compare BENCH_pipeline.json new.json
//
// A -metrics entry may carry its own threshold after "=" (percentage or
// fraction), overriding the -max-regress default for that unit; that is
// how wall clock (ns/op, inherently noisier across machines) is gated
// at a looser 25% while allocation metrics stay tight. A unit prefixed
// with "<" gates in the other direction — lower is worse — for metrics
// like scaling efficiency ("<eff%=15%") where a drop, not a rise, is
// the regression.
//
// In compare mode the new file may be "-" to read JSON from stdin.
// Runs are matched by name with the trailing -<GOMAXPROCS> suffix
// stripped, so a gate run on an 8-core CI box compares against a
// baseline recorded on any other machine. A baseline run missing from
// the new report is an error; runs present only in the new report — a
// benchmark suite grew before its baseline was refreshed — are listed
// as "NEW" informationally and do not affect the verdict. Deltas beyond
// the threshold in a unit's worse direction on any -metrics unit exit
// nonzero.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Run is the parsed form of one benchmark result line.
type Run struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document: the environment header go test prints
// plus every benchmark line, in input order.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Runs   []Run  `json:"runs"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	compare := flag.Bool("compare", false, "compare two benchmark JSON files: benchjson -compare old.json new.json")
	maxRegress := flag.String("max-regress", "10%", "with -compare: default maximum allowed relative regression, as a percentage (10%) or fraction (0.1)")
	metricsFlag := flag.String("metrics", "ns/op,B/op,allocs/op", "with -compare: comma-separated metric units to gate on; a unit may carry its own threshold (ns/op=25%) overriding -max-regress")
	flag.Parse()

	if !*compare {
		if flag.NArg() != 0 {
			log.Fatalf("unexpected arguments %q (conversion mode reads stdin)", flag.Args())
		}
		convert()
		return
	}
	// Accept trailing flags after the two paths (`benchjson -compare
	// old.json new.json -max-regress 10%`): the flag package stops at
	// the first positional, so re-parse the remainder.
	if flag.NArg() > 2 {
		rest := flag.NewFlagSet("compare", flag.ExitOnError)
		maxRegress = rest.String("max-regress", *maxRegress, "maximum allowed relative regression")
		metricsFlag = rest.String("metrics", *metricsFlag, "comma-separated metric units to gate on")
		if err := rest.Parse(flag.Args()[2:]); err != nil || rest.NArg() != 0 {
			log.Fatal("usage: benchjson -compare old.json new.json [-max-regress 10%] [-metrics ns/op=25%,B/op,allocs/op]")
		}
	}
	if flag.NArg() < 2 {
		log.Fatal("usage: benchjson -compare old.json new.json (new.json may be - for stdin)")
	}
	threshold, err := parseRegress(*maxRegress)
	if err != nil {
		log.Fatal(err)
	}
	specs, err := parseMetricSpecs(*metricsFlag, threshold)
	if err != nil {
		log.Fatal(err)
	}
	if len(specs) == 0 {
		log.Fatal("-metrics must name at least one unit")
	}
	old, err := loadReport(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	new_, err := loadReport(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}
	if !compareReports(os.Stdout, old, new_, specs) {
		os.Exit(1)
	}
}

// convert is the original mode: bench text on stdin, JSON on stdout.
func convert() {
	rep, err := parseBenchOutput(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// parseBenchOutput reads `go test -bench` text output into a Report.
func parseBenchOutput(r io.Reader) (Report, error) {
	rep := Report{Runs: []Run{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			run, ok := parseBenchLine(line)
			if ok {
				rep.Runs = append(rep.Runs, run)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	if len(rep.Runs) == 0 {
		return Report{}, fmt.Errorf("no benchmark lines found in input")
	}
	return rep, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   3   980585804 ns/op   123 B/op   45 allocs/op
//
// into a Run; value/unit pairs follow the iteration count.
func parseBenchLine(line string) (Run, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Run{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Run{}, false
	}
	run := Run{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Run{}, false
		}
		run.Metrics[fields[i+1]] = v
	}
	if len(run.Metrics) == 0 {
		return Run{}, false
	}
	return run, true
}

// loadReport reads a benchmark JSON document; "-" means stdin, which
// accepts either an already-converted JSON report or raw `go test
// -bench` text, so the gate can pipe a fresh run straight in.
func loadReport(path string) (Report, error) {
	if path == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return Report{}, fmt.Errorf("stdin: %w", err)
		}
		var rep Report
		if jsonErr := json.Unmarshal(data, &rep); jsonErr == nil {
			return rep, nil
		}
		return parseBenchText(string(data))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// parseBenchText parses raw bench output held in a string.
func parseBenchText(s string) (Report, error) {
	rep := Report{Runs: []Run{}}
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Benchmark") {
			if run, ok := parseBenchLine(line); ok {
				rep.Runs = append(rep.Runs, run)
			}
		}
	}
	if len(rep.Runs) == 0 {
		return Report{}, fmt.Errorf("stdin: no benchmark runs found (neither JSON report nor bench text)")
	}
	return rep, nil
}

// parseRegress parses "10%" or "0.1" into a fraction.
func parseRegress(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimSuffix(s, "%")), 64)
	if err != nil {
		return 0, fmt.Errorf("bad -max-regress %q: %v", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("bad -max-regress %q: must be non-negative", s)
	}
	return v, nil
}

// metricSpec is one gated unit with its regression threshold. Wall
// clock (ns/op) is noisier than allocation counts across machines, so
// it typically rides with a looser per-unit threshold (ns/op=25%) while
// allocs/op and B/op stay at the tight default.
type metricSpec struct {
	unit      string
	threshold float64
	// lowerWorse flips the gated direction: the metric regresses by
	// DECREASING (scaling efficiency, throughput), so the gate fires on
	// drops beyond the threshold instead of rises.
	lowerWorse bool
}

// parseMetricSpecs parses the -metrics CSV. Each entry is a unit,
// optionally with its own threshold after "=": "ns/op=25%" gates ns/op
// at 25% while plain entries use the -max-regress default. A "<" prefix
// marks the unit lower-is-worse: "<eff%=15%" fails when eff% drops more
// than 15%.
func parseMetricSpecs(s string, def float64) ([]metricSpec, error) {
	var out []metricSpec
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m == "" {
			continue
		}
		unit, thr, has := strings.Cut(m, "=")
		spec := metricSpec{unit: strings.TrimSpace(unit), threshold: def}
		if strings.HasPrefix(spec.unit, "<") {
			spec.lowerWorse = true
			spec.unit = strings.TrimSpace(strings.TrimPrefix(spec.unit, "<"))
		}
		if has {
			v, err := parseRegress(thr)
			if err != nil {
				return nil, fmt.Errorf("bad -metrics entry %q: %v", m, err)
			}
			spec.threshold = v
		}
		if spec.unit == "" {
			return nil, fmt.Errorf("bad -metrics entry %q: empty unit", m)
		}
		out = append(out, spec)
	}
	return out, nil
}

// baseName strips the trailing -<GOMAXPROCS> suffix go test appends to
// parallel benchmark names, so runs match across machines with
// different core counts.
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// compareReports prints a per-metric delta table and reports whether
// the gate passes: every old run present in new, and no watched metric
// regressed — increased, or for lower-is-worse units decreased — by
// more than its spec's threshold. Metrics absent from a run (e.g.
// allocs/op without -benchmem) are skipped, but a metric present in old
// and missing in new fails — the gate must not pass because
// instrumentation was dropped. Runs present only in the new report are
// listed as NEW, informationally: a freshly added benchmark must not
// fail the gate before the baseline is refreshed to record it.
func compareReports(w io.Writer, old, new_ Report, specs []metricSpec) bool {
	newByName := map[string]Run{}
	for _, r := range new_.Runs {
		newByName[baseName(r.Name)] = r
	}
	oldNames := map[string]bool{}
	for _, r := range old.Runs {
		oldNames[baseName(r.Name)] = true
	}
	for _, r := range new_.Runs {
		if !oldNames[baseName(r.Name)] {
			fmt.Fprintf(w, "NEW  %s: not in baseline (informational)\n", baseName(r.Name))
		}
	}

	type row struct {
		name, metric     string
		oldV, newV, frac float64
		bad              bool
	}
	var rows []row
	ok := true
	for _, or := range old.Runs {
		name := baseName(or.Name)
		nr, found := newByName[name]
		if !found {
			fmt.Fprintf(w, "FAIL %s: missing from new report\n", name)
			ok = false
			continue
		}
		for _, spec := range specs {
			ov, hasOld := or.Metrics[spec.unit]
			if !hasOld {
				continue
			}
			nv, hasNew := nr.Metrics[spec.unit]
			if !hasNew {
				fmt.Fprintf(w, "FAIL %s %s: metric missing from new report\n", name, spec.unit)
				ok = false
				continue
			}
			var frac float64
			if ov != 0 {
				frac = (nv - ov) / ov
			} else if nv > 0 {
				frac = 1 // from zero to nonzero: treat as full regression
			}
			bad := frac > spec.threshold
			if spec.lowerWorse {
				bad = -frac > spec.threshold
			}
			if bad {
				ok = false
			}
			rows = append(rows, row{name, spec.unit, ov, nv, frac, bad})
		}
	}

	sort.SliceStable(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Fprintf(w, "%-40s %-10s %15s %15s %8s\n", "benchmark", "metric", "old", "new", "delta")
	for _, r := range rows {
		status := ""
		if r.bad {
			status = "  REGRESSION"
		}
		fmt.Fprintf(w, "%-40s %-10s %15.0f %15.0f %+7.1f%%%s\n",
			r.name, r.metric, r.oldV, r.newV, r.frac*100, status)
	}
	limits := make([]string, len(specs))
	for i, spec := range specs {
		dir := ""
		if spec.lowerWorse {
			dir = "<"
		}
		limits[i] = fmt.Sprintf("%s%s %.1f%%", dir, spec.unit, spec.threshold*100)
	}
	verdict := "PASS"
	if !ok {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "%s (max allowed regression: %s)\n", verdict, strings.Join(limits, ", "))
	return ok
}
