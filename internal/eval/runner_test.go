package eval

import (
	"strings"
	"testing"

	"webiq/internal/obs"
	"webiq/internal/synth"
)

// smallRun is one cheap evaluation: one paper domain, two synthetic
// sweep domains, one seed.
func smallRun(t *testing.T, mutate func(*RunConfig)) *Result {
	t.Helper()
	cfg := RunConfig{
		Domains:   []string{"airfare"},
		Scenarios: synth.Sweep(2, 1),
		Runs:      1,
		Seed:      1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunEndToEnd(t *testing.T) {
	res := smallRun(t, nil)

	if len(res.Runs) != 1 || len(res.Runs[0].Domains) != 3 {
		t.Fatalf("want 1 run x 3 domains, got %d x %d", len(res.Runs), len(res.Runs[0].Domains))
	}
	for _, dr := range res.Runs[0].Domains {
		if dr.TraceID == "" {
			t.Fatalf("domain %s has no trace ID — decisions are not explainable", dr.Domain)
		}
		if len(dr.Values) != 6 {
			t.Fatalf("domain %s scored %d metrics, want 6", dr.Domain, len(dr.Values))
		}
	}
	// The paper domain must come out non-synthetic, the sweep domains
	// synthetic.
	if res.Runs[0].Domains[0].Domain != "airfare" || res.Runs[0].Domains[0].Synthetic {
		t.Fatalf("first domain = %+v, want non-synthetic airfare", res.Runs[0].Domains[0])
	}
	if !res.Runs[0].Domains[1].Synthetic {
		t.Fatal("sweep domain not marked synthetic")
	}

	// The pipeline actually works: overall acquired quality is high.
	acq := res.Aggregates["acquired"]
	if acq["f1"].Mean < 0.7 {
		t.Fatalf("acquired F1 = %v, suspiciously low", acq["f1"].Mean)
	}
	if res.Aggregates["match"]["f1"].Mean < 0.7 {
		t.Fatalf("match F1 = %v, suspiciously low", res.Aggregates["match"]["f1"].Mean)
	}
	// Single run: stddev must be exactly zero.
	if acq["f1"].Stddev != 0 {
		t.Fatalf("single-run stddev = %v, want 0", acq["f1"].Stddev)
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	a := smallRun(t, nil)
	b := smallRun(t, nil)
	for name, agg := range a.Aggregates {
		for comp, v := range agg {
			if b.Aggregates[name][comp].Mean != v.Mean {
				t.Fatalf("%s/%s differs across identical runs: %v vs %v",
					name, comp, v.Mean, b.Aggregates[name][comp].Mean)
			}
		}
	}
}

func TestRunEmitsObsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	smallRun(t, func(cfg *RunConfig) { cfg.Obs = reg })

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{"webiq_eval_f1", "webiq_eval_precision", "webiq_eval_recall", `metric="surface"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownDomain(t *testing.T) {
	_, err := Run(RunConfig{Domains: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown domain error = %v", err)
	}
}

func TestRunWithFaultProfile(t *testing.T) {
	res := smallRun(t, func(cfg *RunConfig) {
		cfg.FaultProfile = "p30"
		cfg.Scenarios = nil // one domain is enough for the fault path
	})
	deg := res.Aggregates["degradation"]
	if deg["n_total"].Mean == 0 {
		t.Fatal("p30 fault profile produced zero degradations")
	}

	if _, err := Run(RunConfig{FaultProfile: "no-such-profile"}); err == nil {
		t.Fatal("unknown fault profile accepted")
	}
}
