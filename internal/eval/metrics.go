package eval

import (
	"fmt"
	"sort"
	"strings"

	"webiq/internal/matcher"
	"webiq/internal/obs"
	"webiq/internal/schema"
	iq "webiq/internal/webiq"
)

// Artifacts is everything one evaluated pipeline run produced for one
// domain — the inputs metrics compute over. The decision ledger is the
// load-bearing piece: per-stage scoring attributes every accepted
// instance to the component that accepted it, so a metric regression is
// explainable decision by decision (ByAttr / /unified/{domain}/explain).
type Artifacts struct {
	// Set is the domain's gold standard.
	Set *Set
	// Dataset is the dataset after acquisition (Acquired fields filled).
	Dataset *schema.Dataset
	// Report is the acquisition report (degradations, success rate).
	Report *iq.Report
	// Ledger carries every acceptance decision of the run.
	Ledger *obs.Ledger
	// Match is the matcher's result at the evaluation threshold.
	Match *matcher.Result
	// K is the acquisition target per attribute.
	K int
	// TraceID is the run's root trace, stamped into every decision.
	TraceID string
}

// Metric computes named scalar components ("precision", "recall",
// "f1", counts prefixed "n_") for one domain run and pools per-domain
// values into a run-level summary. Pooling is metric-specific: ratio
// metrics re-derive from summed counts (micro average) rather than
// averaging ratios.
type Metric interface {
	Name() string
	Compute(a *Artifacts) map[string]float64
	Pool(domainValues []map[string]float64) map[string]float64
}

// MetricRegistry is the pluggable metric set of an evaluation run.
type MetricRegistry struct {
	order  []string
	byName map[string]Metric
}

// NewMetricRegistry returns an empty registry.
func NewMetricRegistry() *MetricRegistry {
	return &MetricRegistry{byName: map[string]Metric{}}
}

// DefaultMetricRegistry returns the standard metric set: the three
// acquisition stages, the final acquired-instance quality, matcher
// merge accuracy, and degradation counts.
func DefaultMetricRegistry() *MetricRegistry {
	r := NewMetricRegistry()
	for _, m := range []Metric{
		StageMetric{Stage: "surface"},
		StageMetric{Stage: "attr-surface"},
		StageMetric{Stage: "attr-deep"},
		AcquiredMetric{},
		MatchMetric{},
		DegradationMetric{},
	} {
		if err := r.Register(m); err != nil {
			panic(err) // unreachable: default names are distinct
		}
	}
	return r
}

// Register adds a metric; duplicate names error.
func (r *MetricRegistry) Register(m Metric) error {
	if _, dup := r.byName[m.Name()]; dup {
		return fmt.Errorf("eval: metric %q already registered", m.Name())
	}
	r.byName[m.Name()] = m
	r.order = append(r.order, m.Name())
	return nil
}

// Metrics returns the registered metrics in registration order.
func (r *MetricRegistry) Metrics() []Metric {
	out := make([]Metric, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	return out
}

// Names returns the registered metric names in registration order.
func (r *MetricRegistry) Names() []string {
	return append([]string(nil), r.order...)
}

// --- Stage metrics ---

// StageMetric scores one acquisition stage from the decision ledger:
// precision over the stage's per-value accept decisions, recall against
// the gold vocabulary of the attributes the stage is responsible for,
// and F1. "Responsible" follows the Section-5 policy: surface and
// attr-deep serve initially instance-less attributes, attr-surface
// serves predefined-value ones; recall is only charged for findable
// attributes (non-findable failure is the expected outcome, per
// Table 1's ExpInst column) and capped at min(K, |gold vocabulary|)
// per attribute.
type StageMetric struct {
	// Stage is the ledger component: "surface", "attr-surface", or
	// "attr-deep".
	Stage string
}

// Name implements Metric.
func (m StageMetric) Name() string { return m.Stage }

// acceptedVerdicts are the ledger verdicts that put a value into
// Acquired. "degraded-accept" is the accept-with-flag fallback under
// fault injection; counting it keeps precision honest under faults.
func acceptedVerdict(v string) bool { return v == "accept" || v == "degraded-accept" }

// Compute implements Metric.
func (m StageMetric) Compute(a *Artifacts) map[string]float64 {
	// Distinct accepted values per attribute (a value can be accepted
	// twice: via two donors, or as a cached replay).
	acceptedBy := map[string]map[string]bool{}
	for _, d := range a.Ledger.Decisions() {
		if d.Component != m.Stage || !acceptedVerdict(d.Verdict) || d.Value == "" {
			continue
		}
		set := acceptedBy[d.AttrID]
		if set == nil {
			set = map[string]bool{}
			acceptedBy[d.AttrID] = set
		}
		set[strings.ToLower(d.Value)] = true
	}
	var accepted, correct, got, target float64
	for _, g := range a.Set.Attrs {
		vals := acceptedBy[g.AttrID]
		nCorrect := 0
		for v := range vals {
			accepted++
			if g.Correct(v) {
				correct++
				nCorrect++
			}
		}
		if m.responsible(&g) && g.Findable {
			t := a.K
			if g.Numeric == nil && len(g.Instances) < t {
				t = len(g.Instances)
			}
			if t > 0 {
				target += float64(t)
				got += float64(min(nCorrect, t))
			}
		}
	}
	return prf(correct, accepted, got, target)
}

// responsible reports whether the stage is expected to serve the
// attribute under the acquisition policy.
func (m StageMetric) responsible(g *AttrGold) bool {
	if m.Stage == "attr-surface" {
		return g.Predefined
	}
	return !g.Predefined
}

// Pool implements Metric (micro average across domains).
func (m StageMetric) Pool(vals []map[string]float64) map[string]float64 {
	return poolPRF(vals)
}

// --- Final acquired-instance quality ---

// AcquiredMetric scores the instances that actually landed on the
// attributes after the full policy ran: precision over every Acquired
// value, recall for initially instance-less findable attributes
// against min(K, |gold|), and the Table-1 acquisition success rate.
type AcquiredMetric struct{}

// Name implements Metric.
func (AcquiredMetric) Name() string { return "acquired" }

// Compute implements Metric.
func (AcquiredMetric) Compute(a *Artifacts) map[string]float64 {
	byID := map[string]*schema.Attribute{}
	for _, attr := range a.Dataset.AllAttributes() {
		byID[attr.ID] = attr
	}
	var accepted, correct, got, target float64
	for _, g := range a.Set.Attrs {
		attr := byID[g.AttrID]
		if attr == nil {
			continue
		}
		nCorrect := 0
		seen := map[string]bool{}
		for _, v := range attr.Acquired {
			f := strings.ToLower(v)
			if seen[f] {
				continue
			}
			seen[f] = true
			accepted++
			if g.Correct(v) {
				correct++
				nCorrect++
			}
		}
		if !g.Predefined && g.Findable {
			t := a.K
			if g.Numeric == nil && len(g.Instances) < t {
				t = len(g.Instances)
			}
			if t > 0 {
				target += float64(t)
				got += float64(min(nCorrect, t))
			}
		}
	}
	out := prf(correct, accepted, got, target)
	out["success_rate"] = a.Report.SuccessRate() / 100
	return out
}

// Pool implements Metric.
func (AcquiredMetric) Pool(vals []map[string]float64) map[string]float64 {
	out := poolPRF(vals)
	// Success rate has no count components; macro-average it.
	var sum float64
	n := 0
	for _, v := range vals {
		if sr, ok := v["success_rate"]; ok {
			sum += sr
			n++
		}
	}
	if n > 0 {
		out["success_rate"] = sum / float64(n)
	}
	return out
}

// --- Matcher merge accuracy ---

// MatchMetric scores the matcher against the expected merges: pairwise
// precision/recall/F1 (the paper's Section-6 measure) plus the fraction
// of expected unified-interface clusters reproduced exactly.
type MatchMetric struct{}

// Name implements Metric.
func (MatchMetric) Name() string { return "match" }

// Compute implements Metric.
func (MatchMetric) Compute(a *Artifacts) map[string]float64 {
	mm := matcher.Evaluate(a.Match.Pairs, a.Set.GoldPairSet())
	out := prf(float64(mm.Correct), float64(mm.Predicted), float64(mm.Correct), float64(mm.Gold))

	predicted := map[string]bool{}
	for _, cl := range a.Match.Clusters {
		if len(cl) >= 2 {
			predicted[clusterKey(cl)] = true
		}
	}
	exact := 0
	for _, cl := range a.Set.Clusters {
		if predicted[clusterKey(cl)] {
			exact++
		}
	}
	out["n_clusters_gold"] = float64(len(a.Set.Clusters))
	out["n_clusters_exact"] = float64(exact)
	if len(a.Set.Clusters) > 0 {
		out["cluster_exact"] = float64(exact) / float64(len(a.Set.Clusters))
	}
	return out
}

func clusterKey(ids []string) string {
	s := append([]string(nil), ids...)
	sort.Strings(s)
	return strings.Join(s, "\x00")
}

// Pool implements Metric.
func (MatchMetric) Pool(vals []map[string]float64) map[string]float64 {
	out := poolPRF(vals)
	var gold, exact float64
	for _, v := range vals {
		gold += v["n_clusters_gold"]
		exact += v["n_clusters_exact"]
	}
	out["n_clusters_gold"] = gold
	out["n_clusters_exact"] = exact
	if gold > 0 {
		out["cluster_exact"] = exact / gold
	}
	return out
}

// --- Degradation counts ---

// DegradationMetric counts the graceful-degradation events of the run
// by stage — zero without fault injection, the fault-profile
// degradation budget with it.
type DegradationMetric struct{}

// Name implements Metric.
func (DegradationMetric) Name() string { return "degradation" }

// Compute implements Metric.
func (DegradationMetric) Compute(a *Artifacts) map[string]float64 {
	out := map[string]float64{"n_total": float64(len(a.Report.Degradations))}
	for _, d := range a.Report.Degradations {
		out["n_"+d.Stage]++
	}
	return out
}

// Pool implements Metric (counts sum).
func (DegradationMetric) Pool(vals []map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for _, v := range vals {
		for k, x := range v {
			out[k] += x
		}
	}
	return out
}

// --- Shared helpers ---

// prf assembles the standard precision/recall/F1 component map from
// accept and recall counts. Counts ride along (n_ prefix) so pooling
// can micro-average.
func prf(correct, accepted, got, target float64) map[string]float64 {
	out := map[string]float64{
		"n_correct":  correct,
		"n_accepted": accepted,
		"n_got":      got,
		"n_target":   target,
	}
	p, r := 0.0, 0.0
	if accepted > 0 {
		p = correct / accepted
	}
	if target > 0 {
		r = got / target
	}
	out["precision"] = p
	out["recall"] = r
	if p+r > 0 {
		out["f1"] = 2 * p * r / (p + r)
	} else {
		out["f1"] = 0
	}
	return out
}

// poolPRF sums the count components across domains and re-derives
// precision/recall/F1 — the micro average, so big domains weigh more
// and tiny ones cannot swing the gate.
func poolPRF(vals []map[string]float64) map[string]float64 {
	var correct, accepted, got, target float64
	for _, v := range vals {
		correct += v["n_correct"]
		accepted += v["n_accepted"]
		got += v["n_got"]
		target += v["n_target"]
	}
	return prf(correct, accepted, got, target)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
