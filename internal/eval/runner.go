package eval

import (
	"context"
	"fmt"
	"math"
	"sort"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/obs"
	"webiq/internal/resilience"
	"webiq/internal/surfaceweb"
	"webiq/internal/synth"
	iq "webiq/internal/webiq"
)

// RunConfig configures an evaluation: which domains, how many seeded
// repetitions, and what to measure.
type RunConfig struct {
	// Domains are the paper (kb) domain keys to evaluate; nil means all
	// five.
	Domains []string
	// Scenarios are synthetic sweep domains (internal/synth) evaluated
	// alongside the paper ones.
	Scenarios []*synth.Scenario
	// Runs is the number of repetitions; run i uses seed Seed+i.
	// Defaults to 1.
	Runs int
	// Seed is the base seed.
	Seed int64
	// FaultProfile optionally injects the named resilience profile into
	// every run's backends.
	FaultProfile string
	// Tau is the matcher clustering threshold (paper default 0.1).
	Tau float64
	// Workers sizes the acquisition and matcher worker pools
	// (0 = sequential).
	Workers int
	// Registry is the metric set; nil means DefaultMetricRegistry.
	Registry *MetricRegistry
	// Obs, when set, receives webiq_eval_* gauges for the aggregate of
	// each metric component.
	Obs *obs.Registry
	// Progress, when set, is called once per evaluated domain run.
	Progress func(run int, domain string)
}

// DomainResult is one domain's scores within one run.
type DomainResult struct {
	Domain    string `json:"domain"`
	Synthetic bool   `json:"synthetic,omitempty"`
	// TraceID is the run's root trace: every ledger decision behind
	// these numbers carries it.
	TraceID string                        `json:"trace_id"`
	Values  map[string]map[string]float64 `json:"values"`
}

// RunResult is one seeded repetition: per-domain scores plus the pooled
// (micro-averaged) scores across all domains of the run.
type RunResult struct {
	Run     int                           `json:"run"`
	Seed    int64                         `json:"seed"`
	Domains []DomainResult                `json:"domains"`
	Pooled  map[string]map[string]float64 `json:"pooled"`
}

// Aggregate is the mean and population stddev of one metric component
// across runs.
type Aggregate struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
}

// Result is a full evaluation: every run plus per-metric aggregates of
// the pooled scores across runs.
type Result struct {
	Runs       []RunResult                     `json:"runs"`
	Aggregates map[string]map[string]Aggregate `json:"aggregates"`
}

// Run executes the evaluation. Each run rebuilds the corpus, datasets,
// and deep sources from its own seed, runs acquisition and matching per
// domain with a fresh ledger and a root trace span, and scores every
// registered metric. Pipeline behavior is identical to cmd/webiq with
// the same seed — evaluation only observes.
func Run(cfg RunConfig) (*Result, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.Tau == 0 {
		cfg.Tau = 0.1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = DefaultMetricRegistry()
	}
	paper, err := paperDomains(cfg.Domains)
	if err != nil {
		return nil, err
	}
	var profile *resilience.Profile
	if cfg.FaultProfile != "" {
		p, err := resilience.ProfileByName(cfg.FaultProfile)
		if err != nil {
			return nil, err
		}
		profile = &p
	}

	res := &Result{}
	for i := 0; i < cfg.Runs; i++ {
		rr, err := oneRun(&cfg, reg, paper, profile, i, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, *rr)
	}
	res.Aggregates = aggregate(reg, res.Runs)
	emitObs(cfg.Obs, res.Aggregates)
	return res, nil
}

// oneRun evaluates every domain once at the given seed.
func oneRun(cfg *RunConfig, reg *MetricRegistry, paper []*kb.Domain, profile *resilience.Profile, run int, seed int64) (*RunResult, error) {
	engine := surfaceweb.NewEngine()
	corpusCfg := surfaceweb.DefaultCorpusConfig()
	corpusCfg.Seed = seed
	if len(paper) > 0 {
		surfaceweb.BuildCorpus(engine, paper, corpusCfg)
	}
	// Synthetic domains get scenario-specific corpus noise; BuildCorpus
	// appends, so they share the one engine with the paper domains.
	for _, sc := range cfg.Scenarios {
		surfaceweb.BuildCorpus(engine, []*kb.Domain{sc.Domain}, sc.CorpusConfig(seed))
	}

	rr := &RunResult{Run: run, Seed: seed}
	perMetric := map[string][]map[string]float64{}

	evalDomain := func(dom *kb.Domain, dsCfg dataset.Config, synthetic bool) {
		if cfg.Progress != nil {
			cfg.Progress(run, dom.Key)
		}
		dr := evalOne(cfg, reg, engine, dom, dsCfg, profile, seed, synthetic)
		rr.Domains = append(rr.Domains, dr)
		for name, vals := range dr.Values {
			perMetric[name] = append(perMetric[name], vals)
		}
	}
	for _, dom := range paper {
		dsCfg := dataset.DefaultConfig()
		dsCfg.Seed = seed
		evalDomain(dom, dsCfg, false)
	}
	for _, sc := range cfg.Scenarios {
		evalDomain(sc.Domain, sc.DatasetConfig(seed), true)
	}

	rr.Pooled = map[string]map[string]float64{}
	for _, m := range reg.Metrics() {
		rr.Pooled[m.Name()] = m.Pool(perMetric[m.Name()])
	}
	return rr, nil
}

// evalOne runs the full pipeline on one domain and scores it.
func evalOne(cfg *RunConfig, reg *MetricRegistry, engine *surfaceweb.Engine, dom *kb.Domain, dsCfg dataset.Config, profile *resilience.Profile, seed int64, synthetic bool) DomainResult {
	ds := dataset.Generate(dom, dsCfg)
	set := BuildSet(ds, dom, synthetic)

	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = seed
	pool := deepweb.BuildPool(ds, dom, deepCfg)

	iqCfg := iq.DefaultConfig()
	iqCfg.Parallelism = cfg.Workers
	se := surfaceweb.NewCachedEngine(engine, surfaceweb.DefaultCacheShards)
	v := iq.NewValidator(se, iqCfg)
	acq := iq.NewAcquirer(
		iq.NewSurface(se, v, iqCfg),
		iq.NewAttrDeep(pool, iqCfg),
		iq.NewAttrSurface(v, iqCfg),
		iq.Components{Surface: true, AttrDeep: true, AttrSurface: true},
		iqCfg)
	if profile != nil {
		inj := resilience.NewInjector(*profile, seed)
		fe := resilience.NewEngineClient(
			resilience.FaultyEngine(resilience.AdaptEngine(se), inj),
			resilience.ClientOptions{Seed: seed})
		fs := resilience.NewSourceClient(
			resilience.FaultySource(resilience.ProbeFunc(func(ifcID, attrID, value string) (string, error) {
				src := pool.Source(ifcID)
				if src == nil {
					return "", resilience.ErrUnknownSource
				}
				return src.Probe(attrID, value), nil
			}), inj),
			resilience.ClientOptions{Seed: seed})
		acq.SetFallible(fe, fs)
	}

	ledger := obs.NewLedger(nil)
	acq.SetLedger(ledger)
	tracer := obs.NewTracer(nil)
	acq.SetSpanTracer(tracer)
	root := tracer.StartRoot("eval/" + dom.Key)
	traceID := root.TraceID()
	ctx := obs.WithSpan(context.Background(), root)

	rep := acq.AcquireAllCtx(ctx, ds)

	mm := matcher.New(matcher.Config{Alpha: 0.6, Beta: 0.4, Threshold: cfg.Tau, Workers: cfg.Workers})
	mm.SetLedger(ledger)
	match := mm.Match(ds)
	root.End()

	art := &Artifacts{
		Set:     set,
		Dataset: ds,
		Report:  rep,
		Ledger:  ledger,
		Match:   match,
		K:       iqCfg.K,
		TraceID: traceID,
	}
	dr := DomainResult{
		Domain:    dom.Key,
		Synthetic: synthetic,
		TraceID:   art.TraceID,
		Values:    map[string]map[string]float64{},
	}
	for _, m := range reg.Metrics() {
		dr.Values[m.Name()] = m.Compute(art)
	}
	return dr
}

// paperDomains resolves kb domain keys (nil → all five paper domains).
func paperDomains(keys []string) ([]*kb.Domain, error) {
	if keys == nil {
		return kb.Domains(), nil
	}
	var out []*kb.Domain
	for _, k := range keys {
		d := kb.DomainByKey(k)
		if d == nil {
			return nil, fmt.Errorf("eval: unknown domain %q", k)
		}
		out = append(out, d)
	}
	return out, nil
}

// aggregate computes mean/stddev of every pooled component across runs.
func aggregate(reg *MetricRegistry, runs []RunResult) map[string]map[string]Aggregate {
	out := map[string]map[string]Aggregate{}
	for _, name := range reg.Names() {
		comps := map[string][]float64{}
		for _, rr := range runs {
			for comp, v := range rr.Pooled[name] {
				comps[comp] = append(comps[comp], v)
			}
		}
		agg := map[string]Aggregate{}
		for comp, xs := range comps {
			agg[comp] = meanStddev(xs)
		}
		out[name] = agg
	}
	return out
}

func meanStddev(xs []float64) Aggregate {
	if len(xs) == 0 {
		return Aggregate{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	return Aggregate{Mean: mean, Stddev: math.Sqrt(sq / float64(len(xs)))}
}

// emitObs publishes the aggregate means as webiq_eval_* gauges:
// webiq_eval_<component>{metric="<name>"}. Ratio components only —
// counts stay in the JSON report.
func emitObs(reg *obs.Registry, aggs map[string]map[string]Aggregate) {
	if reg == nil {
		return
	}
	vecs := map[string]*obs.GaugeVec{}
	names := make([]string, 0, len(aggs))
	for name := range aggs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		comps := make([]string, 0, len(aggs[name]))
		for comp := range aggs[name] {
			comps = append(comps, comp)
		}
		sort.Strings(comps)
		for _, comp := range comps {
			vec := vecs[comp]
			if vec == nil {
				vec = reg.GaugeVec("webiq_eval_"+metricSafe(comp),
					"Evaluation aggregate (mean across runs) of the "+comp+" component.",
					"metric")
				vecs[comp] = vec
			}
			vec.With(name).Set(aggs[name][comp].Mean)
		}
	}
}

// metricSafe maps component names onto Prometheus metric name charset.
func metricSafe(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
