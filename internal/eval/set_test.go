package eval

import (
	"bytes"
	"path/filepath"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
)

func buildTestSet(t *testing.T) *Set {
	t.Helper()
	dom := kb.DomainByKey("airfare")
	if dom == nil {
		t.Fatal("airfare domain missing")
	}
	cfg := dataset.DefaultConfig()
	cfg.Seed = 7
	ds := dataset.Generate(dom, cfg)
	return BuildSet(ds, dom, false)
}

func TestBuildSetGold(t *testing.T) {
	set := buildTestSet(t)
	if set.ID != "airfare" || set.Domain != "airfare" {
		t.Fatalf("set identity = %q/%q, want airfare", set.ID, set.Domain)
	}
	if len(set.Attrs) == 0 {
		t.Fatal("no gold attributes")
	}
	if len(set.Clusters) == 0 || len(set.Pairs) == 0 {
		t.Fatalf("gold clusters/pairs empty: %d/%d", len(set.Clusters), len(set.Pairs))
	}
	var sawNumeric, sawVocab bool
	for i := range set.Attrs {
		g := &set.Attrs[i]
		if g.ConceptID == "" {
			t.Fatalf("attr %s has no concept ID", g.AttrID)
		}
		if g.Numeric != nil {
			sawNumeric = true
			continue
		}
		sawVocab = true
		if len(g.Instances) == 0 {
			t.Fatalf("string attr %s has empty gold vocabulary", g.AttrID)
		}
		// Gold instances must be self-consistent under Correct.
		if !g.Correct(g.Instances[0]) {
			t.Fatalf("gold instance %q rejected by its own attr", g.Instances[0])
		}
	}
	if !sawNumeric || !sawVocab {
		t.Fatalf("want both numeric and vocabulary gold, got numeric=%v vocab=%v", sawNumeric, sawVocab)
	}
}

func TestNumericGoldContains(t *testing.T) {
	ng := &NumericGold{Min: 100, Max: 1000, Step: 50, Monetary: true, Commas: true}
	for _, ok := range []string{"100", "$150", "1,000", "$1,000", " 500 "} {
		if !ng.Contains(ok) {
			t.Errorf("Contains(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"99", "1050", "125", "abc", "", "$"} {
		if ng.Contains(bad) {
			t.Errorf("Contains(%q) = true, want false", bad)
		}
	}
	dec := &NumericGold{Min: 995, Max: 9995, Step: 100, Decimals: 2}
	// Decimals=2 means rendered values carry two decimal places and the
	// bounds are in hundredths: 9.95 -> 995.
	if !dec.Contains("9.95") || !dec.Contains("10.95") {
		t.Error("decimal values inside the domain rejected")
	}
	if dec.Contains("9.90") {
		t.Error("off-step decimal accepted")
	}
}

func TestSetRoundTripAndManager(t *testing.T) {
	set := buildTestSet(t)

	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != set.ID || len(back.Attrs) != len(set.Attrs) ||
		len(back.Clusters) != len(set.Clusters) || len(back.Pairs) != len(set.Pairs) {
		t.Fatal("round-trip lost data")
	}
	if got, want := len(back.GoldPairSet()), len(set.Pairs); got != want {
		t.Fatalf("GoldPairSet size = %d, want %d", got, want)
	}

	dir := filepath.Join(t.TempDir(), "sets")
	m, err := NewSetManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(set); err != nil {
		t.Fatal(err)
	}
	ids, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "airfare" {
		t.Fatalf("List = %v, want [airfare]", ids)
	}
	loaded, err := m.Load("airfare")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.AttrByID(set.Attrs[0].AttrID) == nil {
		t.Fatal("loaded set lost attribute lookup")
	}
}
