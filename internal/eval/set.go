// Package eval is the matching-quality evaluation harness: eval sets
// on disk (per-domain gold labels), a pluggable metric registry
// (per-stage precision/recall/F1, matcher merge accuracy, degradation
// counts), multi-run aggregation across seeds, and the machine-readable
// quality report behind `make eval-gate`.
//
// It is the quality counterpart of the perf bench gate: where
// BENCH_pipeline.json catches allocation and wall-clock regressions,
// EVAL_quality.json catches a perf or scale PR silently wrecking
// Surface/Attr-Surface/Attr-Deep accuracy. Every eval run emits
// webiq_eval_* metrics through internal/obs and stamps trace IDs, so
// any false positive or negative is explainable through the decision
// ledger and /unified/{domain}/explain.
//
// The manager/registry/multi-run layering follows the
// EvalSetManager/MetricManager/WithNumRuns design of trpc-agent-go's
// evaluation framework (see SNIPPETS.md).
package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"webiq/internal/kb"
	"webiq/internal/schema"
)

// NumericGold describes membership in a numeric concept's value domain
// by rule rather than enumeration: predefined numeric instance lists
// are sampled per interface, so no fixed vocabulary covers every value
// a run may legitimately acquire.
type NumericGold struct {
	Min      int  `json:"min"`
	Max      int  `json:"max"`
	Step     int  `json:"step"`
	Monetary bool `json:"monetary,omitempty"`
	Commas   bool `json:"commas,omitempty"`
	Decimals int  `json:"decimals,omitempty"`
}

// Contains reports whether the rendered value belongs to the numeric
// domain: it parses (after stripping "$" and thousands separators) and
// falls on a step inside [Min, Max].
func (ng *NumericGold) Contains(v string) bool {
	s := strings.TrimSpace(v)
	s = strings.TrimPrefix(s, "$")
	s = strings.ReplaceAll(s, ",", "")
	if ng.Decimals > 0 {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return false
		}
		scale := 1
		for i := 0; i < ng.Decimals; i++ {
			scale *= 10
		}
		n := int(f*float64(scale) + 0.5)
		return ng.inRange(n)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return false
	}
	return ng.inRange(n)
}

func (ng *NumericGold) inRange(n int) bool {
	if n < ng.Min || n > ng.Max {
		return false
	}
	step := ng.Step
	if step <= 0 {
		step = 1
	}
	return (n-ng.Min)%step == 0
}

// AttrGold is the gold standard for one attribute: the instance
// vocabulary of its hidden concept (folded to lower case for string
// concepts, a membership rule for numeric ones) plus its concept ID for
// cluster scoring.
type AttrGold struct {
	AttrID      string `json:"attr_id"`
	InterfaceID string `json:"interface_id"`
	Label       string `json:"label"`
	ConceptID   string `json:"concept_id"`
	// Predefined is true when the attribute ships with a predefined
	// instance list (Step 2 of the acquisition policy applies).
	Predefined bool `json:"predefined,omitempty"`
	// Findable mirrors the concept: instances occur on the Surface Web.
	// Acquisition failure on non-findable attributes is expected, and
	// recall is not charged for them.
	Findable bool `json:"findable,omitempty"`
	// Instances is the folded gold vocabulary (string concepts).
	Instances []string `json:"instances,omitempty"`
	// Numeric replaces Instances for numeric concepts.
	Numeric *NumericGold `json:"numeric,omitempty"`
}

// Correct reports whether an acquired value is a gold instance of the
// attribute's concept.
func (g *AttrGold) Correct(value string) bool {
	if g.Numeric != nil {
		return g.Numeric.Contains(value)
	}
	f := strings.ToLower(value)
	for _, inst := range g.Instances {
		if inst == f {
			return true
		}
	}
	return false
}

// Set is the on-disk evaluation set of one domain: per-attribute gold
// instance vocabularies, the expected unified-interface clusters, and
// the expected matcher merges. Because interfaces and gold derive from
// the same concept layer, the set is exact by construction.
type Set struct {
	// ID names the set; by convention the domain key.
	ID string `json:"eval_set_id"`
	// Domain is the domain key the set evaluates.
	Domain string `json:"domain"`
	// Synthetic marks sweep-generated domains (internal/synth).
	Synthetic bool `json:"synthetic,omitempty"`
	// Attrs carries the gold standard per attribute.
	Attrs []AttrGold `json:"attrs"`
	// Clusters are the expected unified-interface clusters: attribute
	// IDs grouped by concept (groups of two or more).
	Clusters [][]string `json:"clusters"`
	// Pairs are the expected matcher merges implied by Clusters.
	Pairs []schema.MatchPair `json:"pairs"`
}

// AttrByID returns the gold record for one attribute, or nil.
func (s *Set) AttrByID(id string) *AttrGold {
	for i := range s.Attrs {
		if s.Attrs[i].AttrID == id {
			return &s.Attrs[i]
		}
	}
	return nil
}

// GoldPairSet returns the expected merges as a set.
func (s *Set) GoldPairSet() map[schema.MatchPair]bool {
	out := make(map[schema.MatchPair]bool, len(s.Pairs))
	for _, p := range s.Pairs {
		out[p] = true
	}
	return out
}

// BuildSet derives the evaluation set of a dataset from its domain's
// concept layer. It must be called on the freshly generated dataset
// (before acquisition mutates nothing relevant — gold depends only on
// concept vocabularies and the predefined lists).
func BuildSet(ds *schema.Dataset, dom *kb.Domain, synthetic bool) *Set {
	concepts := map[string]*kb.Concept{}
	for _, c := range dom.Concepts {
		concepts[c.ID] = c
	}
	set := &Set{ID: ds.Domain, Domain: ds.Domain, Synthetic: synthetic}
	for _, ifc := range ds.Interfaces {
		for _, a := range ifc.Attributes {
			g := AttrGold{
				AttrID:      a.ID,
				InterfaceID: a.InterfaceID,
				Label:       a.Label,
				ConceptID:   a.ConceptID,
				Predefined:  a.HasInstances(),
			}
			if c := concepts[a.ConceptID]; c != nil {
				g.Findable = c.Findable
				if c.Numeric != nil {
					g.Numeric = &NumericGold{
						Min: c.Numeric.Min, Max: c.Numeric.Max, Step: c.Numeric.Step,
						Monetary: c.Numeric.Monetary, Commas: c.Numeric.Commas,
						Decimals: c.Numeric.Decimals,
					}
				} else {
					seen := map[string]bool{}
					for _, v := range c.AllInstances() {
						f := strings.ToLower(v)
						if !seen[f] {
							seen[f] = true
							g.Instances = append(g.Instances, f)
						}
					}
					sort.Strings(g.Instances)
				}
			}
			set.Attrs = append(set.Attrs, g)
		}
	}
	set.Clusters = ds.GoldClusters()
	for p := range ds.GoldPairs() {
		set.Pairs = append(set.Pairs, p)
	}
	sort.Slice(set.Pairs, func(i, j int) bool {
		if set.Pairs[i].A != set.Pairs[j].A {
			return set.Pairs[i].A < set.Pairs[j].A
		}
		return set.Pairs[i].B < set.Pairs[j].B
	})
	return set
}

// WriteJSON serializes the set as indented JSON.
func (s *Set) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSet deserializes a set written by WriteJSON.
func ReadSet(r io.Reader) (*Set, error) {
	var s Set
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("decode eval set: %w", err)
	}
	return &s, nil
}

// SetManager persists evaluation sets on the local file system, one
// JSON file per set (<dir>/<id>.evalset.json) — the local EvalSet
// manager of the snippet design.
type SetManager struct {
	Dir string
}

// NewSetManager returns a manager rooted at dir, creating it if needed.
func NewSetManager(dir string) (*SetManager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eval set dir: %w", err)
	}
	return &SetManager{Dir: dir}, nil
}

func (m *SetManager) path(id string) string {
	return filepath.Join(m.Dir, id+".evalset.json")
}

// Save writes the set to its file.
func (m *SetManager) Save(s *Set) error {
	f, err := os.Create(m.path(s.ID))
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads one set by ID.
func (m *SetManager) Load(id string) (*Set, error) {
	f, err := os.Open(m.path(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSet(f)
}

// List returns the IDs of all stored sets, sorted.
func (m *SetManager) List() ([]string, error) {
	entries, err := os.ReadDir(m.Dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".evalset.json"); ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}
