package eval

import (
	"math"
	"testing"

	"webiq/internal/matcher"
	"webiq/internal/obs"
	"webiq/internal/schema"
	iq "webiq/internal/webiq"
)

// fixtureArtifacts builds a hand-crafted run: two attributes of the same
// concept ("city"), one findable instance-less (served by surface), one
// predefined (served by attr-surface). The ledger records two correct
// surface accepts and one wrong one.
func fixtureArtifacts() *Artifacts {
	set := &Set{
		ID: "fix", Domain: "fix",
		Attrs: []AttrGold{
			{AttrID: "a1", InterfaceID: "if0", Label: "City", ConceptID: "fix.city",
				Findable: true, Instances: []string{"boston", "chicago", "denver"}},
			{AttrID: "a2", InterfaceID: "if1", Label: "Town", ConceptID: "fix.city",
				Predefined: true, Findable: true, Instances: []string{"boston", "chicago", "denver"}},
		},
		Clusters: [][]string{{"a1", "a2"}},
		Pairs:    []schema.MatchPair{schema.NewMatchPair("a1", "a2")},
	}

	ledger := obs.NewLedger(nil)
	ledger.Record(obs.Decision{Component: "surface", Verdict: "accept", AttrID: "a1", Value: "Boston", Score: 0.9})
	ledger.Record(obs.Decision{Component: "surface", Verdict: "degraded-accept", AttrID: "a1", Value: "Chicago", Score: 0.8})
	ledger.Record(obs.Decision{Component: "surface", Verdict: "accept", AttrID: "a1", Value: "Banana", Score: 0.6})
	// Duplicate accept (cached replay) must not double-count.
	ledger.Record(obs.Decision{Component: "surface", Verdict: "accept", AttrID: "a1", Value: "boston", Score: 0.9})
	// Rejects never count.
	ledger.Record(obs.Decision{Component: "surface", Verdict: "reject", AttrID: "a1", Value: "Denver", Score: 0.1})

	ds := &schema.Dataset{Domain: "fix", Interfaces: []*schema.Interface{
		{ID: "if0", Attributes: []*schema.Attribute{
			{ID: "a1", InterfaceID: "if0", Label: "City", Acquired: []string{"Boston", "Chicago", "Banana"}},
		}},
		{ID: "if1", Attributes: []*schema.Attribute{
			{ID: "a2", InterfaceID: "if1", Label: "Town",
				Instances: []string{"Boston", "Chicago", "Denver"}},
		}},
	}}

	match := &matcher.Result{
		Clusters: [][]string{{"a1", "a2"}},
		Pairs:    map[schema.MatchPair]bool{schema.NewMatchPair("a1", "a2"): true},
	}
	rep := &iq.Report{
		Outcomes: []iq.Outcome{
			{AttrID: "a1", Acquired: 3, Success: true},
			{AttrID: "a2", HadInstances: true},
		},
		Degradations: []iq.Degradation{{Stage: "surface", Reason: "test"}},
	}
	return &Artifacts{
		Set: set, Dataset: ds, Report: rep, Ledger: ledger,
		Match: match, K: 3, TraceID: "t1",
	}
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestStageMetricFromLedger(t *testing.T) {
	art := fixtureArtifacts()
	vals := StageMetric{Stage: "surface"}.Compute(art)

	// 3 distinct accepted values (boston deduped), 2 correct.
	if vals["n_accepted"] != 3 || vals["n_correct"] != 2 {
		t.Fatalf("accepted/correct = %v/%v, want 3/2", vals["n_accepted"], vals["n_correct"])
	}
	if !near(vals["precision"], 2.0/3.0) {
		t.Fatalf("precision = %v, want 2/3", vals["precision"])
	}
	// Recall target: only a1 (instance-less, findable); min(K=3, |gold|=3).
	if vals["n_target"] != 3 || vals["n_got"] != 2 {
		t.Fatalf("target/got = %v/%v, want 3/2", vals["n_target"], vals["n_got"])
	}
	if !near(vals["recall"], 2.0/3.0) {
		t.Fatalf("recall = %v, want 2/3", vals["recall"])
	}

	// Attr-surface saw no decisions: zero accepted, recall charged on
	// the predefined a2.
	as := StageMetric{Stage: "attr-surface"}.Compute(art)
	if as["n_accepted"] != 0 || as["n_target"] != 3 || as["recall"] != 0 {
		t.Fatalf("attr-surface = %+v, want 0 accepted, target 3, recall 0", as)
	}
}

func TestAcquiredAndMatchMetrics(t *testing.T) {
	art := fixtureArtifacts()

	aq := AcquiredMetric{}.Compute(art)
	if aq["n_accepted"] != 3 || aq["n_correct"] != 2 {
		t.Fatalf("acquired accepted/correct = %v/%v, want 3/2", aq["n_accepted"], aq["n_correct"])
	}
	if aq["success_rate"] != 1 {
		t.Fatalf("success_rate = %v, want 1", aq["success_rate"])
	}

	mv := MatchMetric{}.Compute(art)
	if mv["precision"] != 1 || mv["recall"] != 1 || mv["f1"] != 1 {
		t.Fatalf("match P/R/F1 = %v/%v/%v, want 1/1/1", mv["precision"], mv["recall"], mv["f1"])
	}
	if mv["cluster_exact"] != 1 || mv["n_clusters_exact"] != 1 {
		t.Fatalf("cluster components = %+v, want exact 1/1", mv)
	}

	dg := DegradationMetric{}.Compute(art)
	if dg["n_total"] != 1 || dg["n_surface"] != 1 {
		t.Fatalf("degradation = %+v, want total 1, surface 1", dg)
	}
}

func TestPoolMicroAverage(t *testing.T) {
	m := StageMetric{Stage: "surface"}
	pooled := m.Pool([]map[string]float64{
		// Big domain: 90/100 correct, 90/100 recalled.
		{"n_correct": 90, "n_accepted": 100, "n_got": 90, "n_target": 100},
		// Tiny domain: 0/1 — must not drag the average to 0.5.
		{"n_correct": 0, "n_accepted": 1, "n_got": 0, "n_target": 1},
	})
	if !near(pooled["precision"], 90.0/101.0) {
		t.Fatalf("micro precision = %v, want 90/101", pooled["precision"])
	}
	if !near(pooled["recall"], 90.0/101.0) {
		t.Fatalf("micro recall = %v, want 90/101", pooled["recall"])
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewMetricRegistry()
	if err := r.Register(StageMetric{Stage: "surface"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(StageMetric{Stage: "surface"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	def := DefaultMetricRegistry()
	if got := len(def.Metrics()); got != 6 {
		t.Fatalf("default registry has %d metrics, want 6", got)
	}
}
