package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// QualityReport is the machine-readable output of an evaluation — the
// quality counterpart of BENCH_pipeline.json. The committed copy on
// main is the baseline `make eval-gate` compares against.
type QualityReport struct {
	// SchemaVersion guards the on-disk format.
	SchemaVersion int `json:"schema_version"`
	// Config echoes how the evaluation was produced.
	Config QualityConfig `json:"config"`
	// Aggregates are the pooled metric components, mean/stddev across
	// runs: metric name → component → aggregate.
	Aggregates map[string]map[string]Aggregate `json:"aggregates"`
	// Runs are the per-run, per-domain details (omitted in baselines to
	// keep the committed file reviewable; the gate only needs
	// Aggregates).
	Runs []RunResult `json:"runs,omitempty"`
}

// QualityConfig records the evaluation parameters inside the report.
type QualityConfig struct {
	Runs         int      `json:"runs"`
	Seed         int64    `json:"seed"`
	Domains      []string `json:"domains"`
	Synthetic    int      `json:"synthetic"`
	FaultProfile string   `json:"fault_profile,omitempty"`
	Tau          float64  `json:"tau"`
}

// QualitySchemaVersion is the current QualityReport format version.
const QualitySchemaVersion = 1

// NewQualityReport assembles a report from an evaluation result.
func NewQualityReport(cfg RunConfig, res *Result, detail bool) *QualityReport {
	qc := QualityConfig{
		Runs:         len(res.Runs),
		Seed:         cfg.Seed,
		Domains:      cfg.Domains,
		Synthetic:    len(cfg.Scenarios),
		FaultProfile: cfg.FaultProfile,
		Tau:          cfg.Tau,
	}
	if qc.Domains == nil {
		qc.Domains = []string{}
	}
	rep := &QualityReport{
		SchemaVersion: QualitySchemaVersion,
		Config:        qc,
		Aggregates:    res.Aggregates,
	}
	if detail {
		rep.Runs = res.Runs
	}
	return rep
}

// WriteJSON serializes the report as indented JSON.
func (q *QualityReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(q)
}

// ReadQualityReport deserializes a report written by WriteJSON.
func ReadQualityReport(r io.Reader) (*QualityReport, error) {
	var q QualityReport
	if err := json.NewDecoder(r).Decode(&q); err != nil {
		return nil, fmt.Errorf("decode quality report: %w", err)
	}
	if q.SchemaVersion != QualitySchemaVersion {
		return nil, fmt.Errorf("quality report schema version %d, want %d", q.SchemaVersion, QualitySchemaVersion)
	}
	return &q, nil
}

// Regression is one gated component that got worse beyond tolerance.
type Regression struct {
	Metric    string  `json:"metric"`
	Component string  `json:"component"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	Drop      float64 `json:"drop"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: baseline %.4f -> current %.4f (drop %.4f)",
		r.Metric, r.Component, r.Baseline, r.Current, r.Drop)
}

// GateComponents are the quality-bearing ratio components the gate
// watches. Counts and stddevs are informational; degradation totals are
// fault-profile dependent and not gated.
var GateComponents = []string{"precision", "recall", "f1"}

// Compare gates the current report against a baseline: any watched
// component whose mean dropped by more than maxDrop (absolute, e.g.
// 0.02 for two points) is a regression. Improvements and new metrics
// never fail the gate; a metric present in the baseline but missing now
// fails loudly, because silently losing a stage score is itself a
// regression.
func Compare(baseline, current *QualityReport, maxDrop float64) []Regression {
	var regs []Regression
	names := make([]string, 0, len(baseline.Aggregates))
	for name := range baseline.Aggregates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Aggregates[name]
		cur, ok := current.Aggregates[name]
		if !ok {
			for _, comp := range GateComponents {
				if b, has := base[comp]; has {
					regs = append(regs, Regression{
						Metric: name, Component: comp,
						Baseline: b.Mean, Current: 0, Drop: b.Mean,
					})
				}
			}
			continue
		}
		for _, comp := range GateComponents {
			b, has := base[comp]
			if !has {
				continue
			}
			c := cur[comp]
			if drop := b.Mean - c.Mean; drop > maxDrop {
				regs = append(regs, Regression{
					Metric: name, Component: comp,
					Baseline: b.Mean, Current: c.Mean, Drop: drop,
				})
			}
		}
	}
	return regs
}
