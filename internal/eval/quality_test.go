package eval

import (
	"bytes"
	"testing"
)

func testReport(f1 map[string]float64) *QualityReport {
	aggs := map[string]map[string]Aggregate{}
	for name, v := range f1 {
		aggs[name] = map[string]Aggregate{
			"precision": {Mean: v},
			"recall":    {Mean: v},
			"f1":        {Mean: v},
		}
	}
	return &QualityReport{
		SchemaVersion: QualitySchemaVersion,
		Config:        QualityConfig{Runs: 1, Seed: 1, Domains: []string{}},
		Aggregates:    aggs,
	}
}

func TestCompareGate(t *testing.T) {
	base := testReport(map[string]float64{"surface": 0.90, "attr-deep": 0.50})

	// Identical report: gate passes.
	if regs := Compare(base, testReport(map[string]float64{"surface": 0.90, "attr-deep": 0.50}), 0.02); len(regs) != 0 {
		t.Fatalf("identical report flagged: %v", regs)
	}
	// Drop within tolerance passes.
	if regs := Compare(base, testReport(map[string]float64{"surface": 0.885, "attr-deep": 0.50}), 0.02); len(regs) != 0 {
		t.Fatalf("1.5-point drop flagged at 2-point tolerance: %v", regs)
	}
	// A >2-point F1 drop on one stage fails the gate — the ISSUE's
	// demonstrable-failure requirement.
	regs := Compare(base, testReport(map[string]float64{"surface": 0.87, "attr-deep": 0.50}), 0.02)
	if len(regs) != 3 { // precision, recall, f1 all moved in the doctored report
		t.Fatalf("doctored 3-point drop produced %d regressions, want 3: %v", len(regs), regs)
	}
	if regs[0].Metric != "surface" {
		t.Fatalf("regression names metric %q, want surface", regs[0].Metric)
	}
	// Improvement never fails.
	if regs := Compare(base, testReport(map[string]float64{"surface": 0.99, "attr-deep": 0.60}), 0.02); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
	// A metric vanishing from the current report fails loudly.
	regs = Compare(base, testReport(map[string]float64{"surface": 0.90}), 0.02)
	if len(regs) != 3 {
		t.Fatalf("missing metric produced %d regressions, want 3: %v", len(regs), regs)
	}
}

func TestQualityReportRoundTrip(t *testing.T) {
	rep := testReport(map[string]float64{"surface": 0.9})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadQualityReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Aggregates["surface"]["f1"].Mean != 0.9 {
		t.Fatal("round-trip lost aggregates")
	}

	// Unknown schema versions are rejected.
	rep.SchemaVersion = 99
	buf.Reset()
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadQualityReport(&buf); err == nil {
		t.Fatal("schema version 99 accepted")
	}
}

func TestMeanStddev(t *testing.T) {
	a := meanStddev([]float64{1, 2, 3})
	if a.Mean != 2 {
		t.Fatalf("mean = %v, want 2", a.Mean)
	}
	if a.Stddev < 0.81 || a.Stddev > 0.82 { // sqrt(2/3)
		t.Fatalf("stddev = %v, want ~0.816", a.Stddev)
	}
	if z := meanStddev(nil); z.Mean != 0 || z.Stddev != 0 {
		t.Fatalf("empty = %+v, want zero", z)
	}
}
