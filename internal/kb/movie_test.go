package kb

import "testing"

func TestExtendedDomains(t *testing.T) {
	ext := ExtendedDomains()
	if len(ext) != 6 {
		t.Fatalf("extended domains = %d, want 6", len(ext))
	}
	if ext[5].Key != "movie" {
		t.Errorf("sixth domain = %q", ext[5].Key)
	}
	// Domains() must stay untouched by the extension.
	if len(Domains()) != 5 {
		t.Error("Domains() gained the extension domain")
	}
}

func TestMovieDomainInvariants(t *testing.T) {
	var movie *Domain
	for _, d := range ExtendedDomains() {
		if d.Key == "movie" {
			movie = d
		}
	}
	if movie == nil {
		t.Fatal("no movie domain")
	}
	if movie.EntityName == "" || movie.DomainKeyword == "" {
		t.Error("missing metadata")
	}
	for _, c := range movie.Concepts {
		if c.ID == "" || c.Domain != "movie" {
			t.Errorf("bad concept %+v", c)
		}
		if len(c.AllInstances()) == 0 {
			t.Errorf("concept %s has no instances", c.ID)
		}
	}
	// Genre has the regional label/instance correlation.
	g := movie.ConceptByName("genre")
	if g == nil || len(g.GroupLabels) != 2 || len(g.Groups) != 2 {
		t.Error("genre lacks group label correlation")
	}
}

func TestMovieGenreGroupsDisjoint(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range MovieGenresClassic {
		seen[g] = true
	}
	for _, g := range MovieGenresModern {
		if seen[g] {
			t.Errorf("genre %q in both groups", g)
		}
	}
}
