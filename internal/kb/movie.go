package kb

// The movie domain is an extension beyond the paper's five evaluation
// domains (Section 8 suggests transferring the techniques to new
// contexts). It exercises generality: none of the calibration work for
// the paper domains touches it, and the end-to-end pipeline must still
// acquire and match with no domain-specific code.

// MovieTitles are film titles.
var MovieTitles = []string{
	"The Godfather", "Casablanca", "Citizen Kane", "Vertigo",
	"Psycho", "Rear Window", "Sunset Boulevard", "Chinatown",
	"Taxi Driver", "Raging Bull", "Goodfellas", "The Shining",
	"Jaws", "Star Wars", "Blade Runner", "Alien", "The Matrix",
	"Pulp Fiction", "Fight Club", "Memento", "The Usual Suspects",
	"Fargo", "No Country for Old Men", "There Will Be Blood",
}

// MovieDirectors are film directors.
var MovieDirectors = []string{
	"Alfred Hitchcock", "Stanley Kubrick", "Martin Scorsese",
	"Francis Ford Coppola", "Steven Spielberg", "Ridley Scott",
	"Quentin Tarantino", "Joel Coen", "David Fincher",
	"Christopher Nolan", "Billy Wilder", "Orson Welles",
	"Akira Kurosawa", "Federico Fellini", "Ingmar Bergman",
	"Roman Polanski", "Sidney Lumet", "Robert Altman",
	"Woody Allen", "Sergio Leone",
}

// MovieActors are film actors.
var MovieActors = []string{
	"Marlon Brando", "Robert De Niro", "Al Pacino", "Jack Nicholson",
	"Meryl Streep", "Katharine Hepburn", "Humphrey Bogart",
	"James Stewart", "Cary Grant", "Audrey Hepburn", "Ingrid Bergman",
	"Tom Hanks", "Denzel Washington", "Morgan Freeman", "Jodie Foster",
	"Anthony Hopkins", "Gene Hackman", "Dustin Hoffman",
	"Frances McDormand", "Kevin Spacey",
}

// MovieGenres are film genres, split into two flavors for the
// label/instance correlation used by the other domains.
var MovieGenresClassic = []string{
	"Drama", "Comedy", "Western", "Film Noir", "Musical", "War",
	"Romance",
}

// MovieGenresModern lists the second genre flavor.
var MovieGenresModern = []string{
	"Action", "Thriller", "Horror", "Documentary", "Animation",
	"Crime", "Adventure",
}

// MovieStudios are production studios.
var MovieStudios = []string{
	"Warner Brothers", "Paramount", "Universal", "Columbia",
	"United Artists", "MGM", "Twentieth Century Fox", "Miramax",
	"New Line", "DreamWorks",
}

// MovieRatings are MPAA ratings.
var MovieRatings = []string{"G", "PG", "PG-13", "R", "NC-17"}

// MovieFormats are distribution formats (2005-era).
var MovieFormats = []string{"DVD", "VHS", "Blu-ray", "Laserdisc"}

func movieDomain() *Domain {
	d := &Domain{
		Key:           "movie",
		DisplayName:   "Movie",
		EntityName:    "movie",
		DomainKeyword: "movies",
	}
	d.Concepts = []*Concept{
		{
			Name: "title", Type: String,
			Labels:   []LabelVariant{lv("Title", 3), lv("Movie title", 1), lv("Film title", 1)},
			Groups:   [][]string{MovieTitles},
			Presence: 1.0, PredefProb: 0.05, Findable: true, WebPresence: 0.95,
		},
		{
			Name: "director", Type: String,
			Labels:   []LabelVariant{lv("Director", 3), lv("Directed by", 1)},
			Groups:   [][]string{MovieDirectors},
			Presence: 0.9, PredefProb: 0.1, Findable: true, WebPresence: 1.0,
		},
		{
			Name: "actor", Type: String,
			Labels:   []LabelVariant{lv("Actor", 2), lv("Starring", 1), lv("Cast member", 1)},
			Groups:   [][]string{MovieActors},
			Presence: 0.7, PredefProb: 0.05, Findable: true, WebPresence: 0.95,
		},
		{
			Name: "genre", Type: String,
			Labels: []LabelVariant{lv("Genre", 3), lv("Category", 1)},
			GroupLabels: [][]LabelVariant{
				{lv("Genre", 4)},
				{lv("Category", 3)},
			},
			Groups:   [][]string{MovieGenresClassic, MovieGenresModern},
			Presence: 0.8, PredefProb: 0.8, Findable: true, WebPresence: 0.9,
		},
		{
			Name: "year", Type: Integer,
			Labels:   []LabelVariant{lv("Year", 2), lv("Release year", 2), lv("Released in", 1)},
			Numeric:  &NumericSpec{Min: 1940, Max: 2006, Step: 1},
			Presence: 0.7, PredefProb: 0.5, Findable: true, WebPresence: 0.7,
		},
		{
			Name: "rating", Type: String,
			Labels:   []LabelVariant{lv("Rating", 2), lv("MPAA rating", 1)},
			Groups:   [][]string{MovieRatings},
			Presence: 0.5, PredefProb: 0.85, Findable: true, WebPresence: 0.6,
		},
		{
			Name: "studio", Type: String,
			Labels:   []LabelVariant{lv("Studio", 2), lv("Production company", 1)},
			Groups:   [][]string{MovieStudios},
			Presence: 0.4, PredefProb: 0.3, Findable: true, WebPresence: 0.85,
		},
		{
			Name: "format", Type: String,
			Labels:   []LabelVariant{lv("Format", 2), lv("Media type", 1)},
			Groups:   [][]string{MovieFormats},
			Presence: 0.4, PredefProb: 0.85, Findable: true, WebPresence: 0.6,
		},
		{
			Name: "keyword", Type: String,
			Labels:   []LabelVariant{lv("Keywords", 2), lv("Keyword", 1)},
			Groups:   [][]string{NoiseWords},
			Presence: 0.3, PredefProb: 0.0, Findable: false, WebPresence: 0.05,
		},
	}
	finishDomain(d)
	return d
}

// ExtendedDomains returns the five evaluation domains plus the movie
// extension domain.
func ExtendedDomains() []*Domain {
	return append(Domains(), movieDomain())
}
