package kb

// This file defines the five evaluation domains. Presence values are
// calibrated so the expected attribute count per interface matches
// Table 1 (airfare 10.7, auto 5.1, book 5.4, job 4.6, realestate 6.5);
// PredefProb values are calibrated toward the paper's instance-less
// attribute rates; label-variant mixes reproduce the per-domain syntax
// difficulties Section 6 reports (prepositional/verb labels in airfare,
// the ambiguous "zip" in auto, measurement units in real estate, clean
// noun labels in book and job).

func lv(text string, w float64) LabelVariant { return LabelVariant{Text: text, Weight: w} }

// ISBNs is a small instance vocabulary of ISBN-10 strings.
var ISBNs = []string{
	"0394800013", "0451524934", "0061120081", "0743273567", "0140283293",
	"0316769487", "0060935464", "0452284244", "0399501487", "0679783261",
	"0142437204", "0486284735", "0553213369", "0141439513", "0486415864",
	"0812550706", "0345339681", "0618260307", "0064471047", "0590353403",
}

// ZipCodes is a small instance vocabulary of 5-digit US postal codes.
var ZipCodes = []string{
	"02134", "60601", "10001", "90210", "94103", "98101", "80202",
	"30303", "33131", "75201", "77002", "85001", "19103", "48226",
	"55401", "97201", "92101", "78701", "32801", "89101",
}

func airfareDomain() *Domain {
	d := &Domain{
		Key:           "airfare",
		DisplayName:   "Airfare",
		EntityName:    "flight",
		DomainKeyword: "airfare",
	}
	d.Concepts = []*Concept{
		{
			Name: "origin city", Type: String,
			Labels: []LabelVariant{
				lv("From", 5), lv("Leaving from", 3), lv("Depart from", 3),
				lv("From city", 2), lv("Departure city", 2), lv("Origin", 1),
			},
			Groups:   [][]string{CitiesNA, CitiesEU},
			Presence: 1.0, PredefProb: 0.3, Findable: true, WebPresence: 0.95,
		},
		{
			Name: "destination city", Type: String,
			Labels: []LabelVariant{
				lv("To", 5), lv("Going to", 3), lv("Arrival city", 2),
				lv("Destination city", 2), lv("Destination", 2), lv("To city", 1),
			},
			Groups:   [][]string{CitiesNA, CitiesEU},
			Presence: 1.0, PredefProb: 0.3, Findable: true, WebPresence: 0.95,
		},
		{
			Name: "departure date", Type: Date,
			Labels: []LabelVariant{
				lv("Departing on", 3), lv("Depart", 2), lv("Departure date", 2),
				lv("Departure on", 1), lv("Departure", 1),
			},
			Groups:   [][]string{Months, MonthAbbrevs},
			Presence: 1.0, PredefProb: 0.55, Findable: true, WebPresence: 0.8,
		},
		{
			Name: "return date", Type: Date,
			Labels: []LabelVariant{
				lv("Returning on", 3), lv("Return", 3), lv("Return date", 2),
				lv("Return on", 1),
			},
			Groups:   [][]string{Months, MonthAbbrevs},
			Presence: 1.0, PredefProb: 0.55, Findable: true, WebPresence: 0.8,
		},
		{
			Name: "passengers", Type: Integer,
			Labels: []LabelVariant{
				lv("Passengers", 2), lv("Number of passengers", 2),
				lv("Adults", 2), lv("Travelers", 1),
			},
			Numeric:  &NumericSpec{Min: 1, Max: 6, Step: 1},
			Presence: 1.0, PredefProb: 0.8, Findable: true, WebPresence: 0.5,
		},
		{
			Name: "children", Type: Integer,
			Labels: []LabelVariant{
				lv("Children", 2), lv("Number of children", 1),
			},
			Numeric:  &NumericSpec{Min: 0, Max: 4, Step: 1},
			Presence: 1.0, PredefProb: 0.8, Findable: true, WebPresence: 0.4,
		},
		{
			Name: "cabin class", Type: String,
			Labels: []LabelVariant{
				lv("Class of service", 2), lv("Class", 2), lv("Cabin", 1),
				lv("Service class", 1), lv("Cabin class", 1),
			},
			Groups:   [][]string{CabinClasses},
			Presence: 1.0, PredefProb: 0.85, Findable: true, WebPresence: 0.9,
		},
		{
			Name: "airline", Type: String,
			Labels: []LabelVariant{
				lv("Airline", 3), lv("Carrier", 2), lv("Preferred airline", 1),
				lv("Airline preference", 1),
			},
			// NA-flavored sources say "Airline", EU-flavored ones say
			// "Carrier" — the paper's A5/B3 example.
			GroupLabels: [][]LabelVariant{
				{lv("Airline", 4), lv("Preferred airline", 1), lv("Airline preference", 1)},
				{lv("Carrier", 5)},
			},
			Groups:   [][]string{AirlinesNA, AirlinesEU},
			Presence: 1.0, PredefProb: 0.45, Findable: true, WebPresence: 1.0,
		},
		{
			Name: "trip type", Type: String,
			Labels: []LabelVariant{
				lv("Trip type", 2), lv("Type of trip", 1),
				lv("Round trip or one way", 1),
			},
			Groups:   [][]string{TripTypes},
			Presence: 1.0, PredefProb: 0.9, Findable: true, WebPresence: 0.6,
		},
		{
			Name: "departure time", Type: String,
			Labels: []LabelVariant{
				lv("Departure time", 2), lv("Time", 1), lv("Preferred time", 1),
			},
			Groups:   [][]string{DepartureTimes},
			Presence: 0.9, PredefProb: 0.8, Findable: true, WebPresence: 0.5,
		},
		{
			Name: "airport", Type: String,
			Labels: []LabelVariant{
				lv("Airport", 1), lv("From airport", 1), lv("Nearby airport", 1),
			},
			Groups:   [][]string{AirportCodes},
			Presence: 0.5, PredefProb: 0.3, Findable: true, WebPresence: 0.7,
		},
		{
			Name: "infants", Type: Integer,
			Labels: []LabelVariant{
				lv("Infants", 1), lv("Number of infants", 1),
			},
			Numeric:  &NumericSpec{Min: 0, Max: 2, Step: 1},
			Presence: 0.3, PredefProb: 0.8, Findable: true, WebPresence: 0.3,
		},
	}
	finishDomain(d)
	return d
}

func autoDomain() *Domain {
	d := &Domain{
		Key:           "auto",
		DisplayName:   "Auto",
		EntityName:    "car",
		DomainKeyword: "used cars",
	}
	d.Concepts = []*Concept{
		{
			Name: "make", Type: String,
			Labels: []LabelVariant{
				lv("Make", 3), lv("Makes", 1), lv("Manufacturer", 1),
				lv("Brand", 1),
			},
			GroupLabels: [][]LabelVariant{
				{lv("Make", 4), lv("Makes", 1)},
				{lv("Manufacturer", 3), lv("Brand", 2)},
			},
			Groups:   [][]string{CarMakesDomestic, CarMakesImport},
			Presence: 1.0, PredefProb: 0.6, Findable: true, WebPresence: 1.0,
		},
		{
			Name: "model", Type: String,
			Labels:   []LabelVariant{lv("Model", 3)},
			Groups:   [][]string{CarModels},
			Presence: 0.9, PredefProb: 0.25, Findable: true, WebPresence: 0.9,
		},
		{
			Name: "price", Type: Monetary,
			Labels: []LabelVariant{
				lv("Price", 2), lv("Max price", 2), lv("Price range", 2),
				lv("Up to", 2), lv("Maximum price", 1),
			},
			Numeric:  &NumericSpec{Min: 2000, Max: 60000, Step: 500, Monetary: true},
			Presence: 0.8, PredefProb: 0.5, Findable: true, WebPresence: 0.8,
		},
		{
			Name: "year", Type: Integer,
			Labels: []LabelVariant{
				lv("Year", 2), lv("Newer than", 2), lv("Min year", 1),
				lv("Model year", 1),
			},
			Numeric:  &NumericSpec{Min: 1985, Max: 2006, Step: 1},
			Presence: 0.7, PredefProb: 0.6, Findable: true, WebPresence: 0.7,
		},
		{
			Name: "mileage", Type: Integer,
			Labels: []LabelVariant{
				lv("Mileage", 2), lv("Max mileage", 1), lv("Miles", 1),
			},
			Numeric:  &NumericSpec{Min: 10000, Max: 150000, Step: 5000, Commas: true},
			Presence: 0.5, PredefProb: 0.4, Findable: true, WebPresence: 0.08,
		},
		{
			Name: "zip", Type: String,
			Labels: []LabelVariant{
				lv("Zip", 2), lv("Zip code", 2), lv("Near zip", 1),
			},
			Groups:   [][]string{ZipCodes},
			Presence: 0.8, PredefProb: 0.0, Findable: true, WebPresence: 0.02,
		},
		{
			Name: "color", Type: String,
			Labels:   []LabelVariant{lv("Color", 2), lv("Exterior color", 1)},
			Groups:   [][]string{CarColors},
			Presence: 0.2, PredefProb: 0.8, Findable: true, WebPresence: 0.8,
		},
		{
			Name: "body style", Type: String,
			Labels: []LabelVariant{
				lv("Body style", 2), lv("Style", 1), lv("Body type", 1),
			},
			Groups:   [][]string{BodyStyles},
			Presence: 0.3, PredefProb: 0.8, Findable: true, WebPresence: 0.7,
		},
		{
			Name: "condition", Type: String,
			Labels:   []LabelVariant{lv("Condition", 1), lv("New or used", 1)},
			Groups:   [][]string{CarConditions},
			Presence: 0.2, PredefProb: 0.9, Findable: true, WebPresence: 0.5,
		},
	}
	finishDomain(d)
	return d
}

func bookDomain() *Domain {
	d := &Domain{
		Key:           "book",
		DisplayName:   "Book",
		EntityName:    "book",
		DomainKeyword: "book",
	}
	d.Concepts = []*Concept{
		{
			Name: "title", Type: String,
			Labels:   []LabelVariant{lv("Title", 3), lv("Book title", 1)},
			Groups:   [][]string{BookTitles},
			Presence: 1.0, PredefProb: 0.1, Findable: true, WebPresence: 0.95,
		},
		{
			Name: "author", Type: String,
			Labels: []LabelVariant{
				lv("Author", 3), lv("Writer", 2), lv("Author name", 1),
			},
			Groups:   [][]string{BookAuthors},
			Presence: 1.0, PredefProb: 0.25, Findable: true, WebPresence: 1.0,
		},
		{
			Name: "keyword", Type: String,
			Labels: []LabelVariant{
				lv("Keywords", 2), lv("Keyword", 1),
			},
			Groups:   [][]string{NoiseWords},
			Presence: 0.15, PredefProb: 0.0, Findable: false, WebPresence: 0.05,
		},
		{
			Name: "publisher", Type: String,
			Labels:   []LabelVariant{lv("Publisher", 3)},
			Groups:   [][]string{BookPublishers},
			Presence: 0.8, PredefProb: 0.6, Findable: true, WebPresence: 1.0,
		},
		{
			Name: "isbn", Type: String,
			Labels:   []LabelVariant{lv("ISBN", 3)},
			Groups:   [][]string{ISBNs},
			Presence: 0.6, PredefProb: 0.0, Findable: true, WebPresence: 0.55,
		},
		{
			Name: "category", Type: String,
			Labels: []LabelVariant{
				lv("Category", 2), lv("Subject", 2), lv("Genre", 1),
			},
			GroupLabels: [][]LabelVariant{
				{lv("Category", 3), lv("Genre", 2)},
				{lv("Subject", 5)},
			},
			Groups:   [][]string{BookCategoriesFiction, BookCategoriesNonfiction},
			Presence: 0.8, PredefProb: 0.75, Findable: true, WebPresence: 0.9,
		},
		{
			Name: "format", Type: String,
			Labels:   []LabelVariant{lv("Format", 2), lv("Binding", 1)},
			Groups:   [][]string{BookFormats},
			Presence: 0.5, PredefProb: 0.9, Findable: true, WebPresence: 0.8,
		},
		{
			Name: "price", Type: Monetary,
			Labels:   []LabelVariant{lv("Price", 1), lv("Price range", 1)},
			Numeric:  &NumericSpec{Min: 5, Max: 150, Step: 5, Monetary: true},
			Presence: 0.4, PredefProb: 0.6, Findable: true, WebPresence: 0.6,
		},
		{
			Name: "language", Type: String,
			Labels:   []LabelVariant{lv("Language", 1)},
			Groups:   [][]string{BookLanguages},
			Presence: 0.3, PredefProb: 0.85, Findable: true, WebPresence: 0.8,
		},
	}
	finishDomain(d)
	return d
}

func jobDomain() *Domain {
	d := &Domain{
		Key:           "job",
		DisplayName:   "Job",
		EntityName:    "job",
		DomainKeyword: "jobs",
	}
	d.Concepts = []*Concept{
		{
			Name: "keyword", Type: String,
			Labels: []LabelVariant{
				lv("Keywords", 2), lv("Keyword", 1), lv("Search keywords", 1),
			},
			Groups:   [][]string{NoiseWords},
			Presence: 0.9, PredefProb: 0.0, Findable: false, WebPresence: 0.05,
		},
		{
			Name: "category", Type: String,
			Labels: []LabelVariant{
				lv("Job category", 2), lv("Category", 1), lv("Occupation", 1),
				lv("Type of job", 1), lv("Job type", 1),
			},
			GroupLabels: [][]LabelVariant{
				{lv("Job category", 2), lv("Category", 1), lv("Job type", 1)},
				{lv("Occupation", 3), lv("Type of job", 1)},
			},
			Groups:   [][]string{JobCategoriesOffice, JobCategoriesField},
			Presence: 0.8, PredefProb: 0.45, Findable: true, WebPresence: 0.95,
		},
		{
			Name: "city", Type: String,
			Labels:   []LabelVariant{lv("City", 3), lv("Location", 2)},
			Groups:   [][]string{CitiesNA},
			Presence: 0.9, PredefProb: 0.0, Findable: true, WebPresence: 0.9,
		},
		{
			Name: "state", Type: String,
			Labels:   []LabelVariant{lv("State", 3)},
			Groups:   [][]string{USStates},
			Presence: 0.7, PredefProb: 0.75, Findable: true, WebPresence: 0.9,
		},
		{
			Name: "company", Type: String,
			Labels: []LabelVariant{
				lv("Company", 2), lv("Company name", 2), lv("Employer", 1),
			},
			Groups:   [][]string{Companies},
			Presence: 0.6, PredefProb: 0.05, Findable: true, WebPresence: 0.95,
		},
		{
			Name: "salary", Type: Monetary,
			Labels: []LabelVariant{
				lv("Salary", 2), lv("Annual salary", 1), lv("Minimum salary", 1),
			},
			Numeric:  &NumericSpec{Min: 20000, Max: 150000, Step: 5000, Monetary: true},
			Presence: 0.4, PredefProb: 0.25, Findable: true, WebPresence: 0.6,
		},
		{
			Name: "employment type", Type: String,
			Labels: []LabelVariant{
				lv("Employment type", 1), lv("Full time or part time", 1),
			},
			Groups:   [][]string{EmploymentTypes},
			Presence: 0.3, PredefProb: 0.8, Findable: true, WebPresence: 0.6,
		},
	}
	finishDomain(d)
	return d
}

func realestateDomain() *Domain {
	d := &Domain{
		Key:           "realestate",
		DisplayName:   "RealEst",
		EntityName:    "home",
		DomainKeyword: "real estate",
	}
	d.Concepts = []*Concept{
		{
			Name: "city", Type: String,
			Labels: []LabelVariant{
				lv("City", 2), lv("Location", 2), lv("Located in", 2),
				lv("City or zip", 1),
			},
			Groups:   [][]string{CitiesNA},
			Presence: 1.0, PredefProb: 0.15, Findable: true, WebPresence: 0.9,
		},
		{
			Name: "state", Type: String,
			Labels:   []LabelVariant{lv("State", 2)},
			Groups:   [][]string{USStates},
			Presence: 0.8, PredefProb: 0.75, Findable: true, WebPresence: 0.9,
		},
		{
			Name: "min price", Type: Monetary,
			Labels: []LabelVariant{
				lv("Min price", 2), lv("Minimum price", 1), lv("Price from", 1),
			},
			Numeric:  &NumericSpec{Min: 50000, Max: 500000, Step: 25000, Monetary: true},
			Presence: 0.8, PredefProb: 0.6, Findable: true, WebPresence: 0.7,
		},
		{
			Name: "max price", Type: Monetary,
			Labels: []LabelVariant{
				lv("Max price", 2), lv("Maximum price", 1), lv("Price to", 1),
			},
			Numeric:  &NumericSpec{Min: 100000, Max: 900000, Step: 25000, Monetary: true},
			Presence: 0.8, PredefProb: 0.6, Findable: true, WebPresence: 0.7,
		},
		{
			Name: "bedrooms", Type: Integer,
			Labels: []LabelVariant{
				lv("Bedrooms", 3), lv("Beds", 1), lv("Number of bedrooms", 1),
			},
			Numeric:  &NumericSpec{Min: 1, Max: 6, Step: 1},
			Presence: 0.9, PredefProb: 0.8, Findable: true, WebPresence: 0.7,
		},
		{
			Name: "bathrooms", Type: Integer,
			Labels:   []LabelVariant{lv("Bathrooms", 2), lv("Baths", 1)},
			Numeric:  &NumericSpec{Min: 1, Max: 4, Step: 1},
			Presence: 0.7, PredefProb: 0.8, Findable: true, WebPresence: 0.7,
		},
		{
			Name: "property type", Type: String,
			Labels: []LabelVariant{
				lv("Property type", 2), lv("Home type", 1), lv("Type of home", 1),
			},
			GroupLabels: [][]LabelVariant{
				{lv("Property type", 3), lv("Home type", 1)},
				{lv("Home style", 3)},
			},
			Groups:   [][]string{PropertyTypesResidential, PropertyTypesOther},
			Presence: 0.7, PredefProb: 0.8, Findable: true, WebPresence: 0.85,
		},
		{
			Name: "square feet", Type: Integer,
			Labels: []LabelVariant{
				lv("Square feet", 2), lv("Min square feet", 1),
			},
			Numeric:  &NumericSpec{Min: 500, Max: 5000, Step: 100, Commas: true},
			Presence: 0.4, PredefProb: 0.3, Findable: false, WebPresence: 0.08,
		},
		{
			Name: "acreage", Type: Real,
			Labels:   []LabelVariant{lv("Acreage", 1), lv("Lot size", 1)},
			Numeric:  &NumericSpec{Min: 1, Max: 100, Step: 1, Decimals: 1},
			Presence: 0.2, PredefProb: 0.2, Findable: false, WebPresence: 0.08,
		},
		{
			Name: "zip", Type: String,
			Labels:   []LabelVariant{lv("Zip code", 1), lv("Zip", 1)},
			Groups:   [][]string{ZipCodes},
			Presence: 0.2, PredefProb: 0.0, Findable: false, WebPresence: 0.05,
		},
	}
	finishDomain(d)
	return d
}

// finishDomain fills in the derived Concept fields (ID and Domain).
func finishDomain(d *Domain) {
	for _, c := range d.Concepts {
		c.Domain = d.Key
		c.ID = d.Key + "." + conceptKey(c.Name)
	}
}

func conceptKey(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		b := name[i]
		if b == ' ' {
			out = append(out, '_')
		} else {
			out = append(out, b)
		}
	}
	return string(out)
}

// Domains returns the five evaluation domains, freshly constructed (so
// callers may not mutate shared state across uses).
func Domains() []*Domain {
	return []*Domain{
		airfareDomain(), autoDomain(), bookDomain(), jobDomain(),
		realestateDomain(),
	}
}

// DomainByKey returns the named domain, or nil.
func DomainByKey(key string) *Domain {
	for _, d := range Domains() {
		if d.Key == key {
			return d
		}
	}
	return nil
}
