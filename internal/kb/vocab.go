package kb

// Shared entity vocabularies used across domain definitions and by the
// Surface-Web corpus generator. Lists are intentionally sizable: the
// redundancy-based extraction that WebIQ borrows from AskMSR/Mulder needs
// many distinct instances appearing in many distinct pages.

// CitiesNA are North-American cities (used by airfare origin/destination,
// job locations, and real-estate locations).
var CitiesNA = []string{
	"Boston", "Chicago", "New York", "Los Angeles", "San Francisco",
	"Seattle", "Denver", "Atlanta", "Miami", "Dallas", "Houston",
	"Phoenix", "Philadelphia", "Detroit", "Minneapolis", "Portland",
	"San Diego", "Austin", "Orlando", "Las Vegas", "Toronto", "Montreal",
	"Vancouver", "Calgary", "Baltimore", "Charlotte", "Columbus",
	"Indianapolis", "Memphis", "Nashville", "Pittsburgh", "Sacramento",
	"Cleveland", "Kansas City", "Tampa", "St Louis", "Cincinnati",
	"Milwaukee", "Raleigh", "Salt Lake City",
}

// CitiesEU are European cities, the second regional group for travel
// concepts.
var CitiesEU = []string{
	"London", "Paris", "Rome", "Madrid", "Berlin", "Amsterdam", "Dublin",
	"Vienna", "Prague", "Brussels", "Lisbon", "Athens", "Munich",
	"Barcelona", "Milan", "Zurich", "Geneva", "Copenhagen", "Stockholm",
	"Oslo", "Helsinki", "Warsaw", "Budapest", "Frankfurt", "Manchester",
	"Edinburgh", "Glasgow", "Nice", "Venice", "Florence",
}

// AirportCodes are major airport codes.
var AirportCodes = []string{
	"LAX", "ORD", "JFK", "SFO", "BOS", "SEA", "DEN", "ATL", "MIA", "DFW",
	"IAH", "PHX", "PHL", "DTW", "MSP", "LHR", "CDG", "FRA", "AMS", "MAD",
}

// AirlinesNA are North-American airlines (the paper's example regional
// group for attribute A5 = Airline).
var AirlinesNA = []string{
	"Air Canada", "American", "Delta", "United", "Continental",
	"Northwest", "US Airways", "Southwest", "Alaska", "JetBlue",
	"America West", "Frontier", "AirTran", "Spirit", "Hawaiian",
	"WestJet", "Midwest",
}

// AirlinesEU are European airlines (the group for B3 = Carrier).
var AirlinesEU = []string{
	"Aer Lingus", "British Airways", "Lufthansa", "Air France", "KLM",
	"Iberia", "Alitalia", "Swiss", "Austrian", "SAS", "Finnair",
	"Ryanair", "EasyJet", "Virgin Atlantic", "TAP Portugal", "LOT Polish",
	"Olympic",
}

// CabinClasses are the predefined classes of service.
var CabinClasses = []string{"Economy", "Premium Economy", "Business", "First Class"}

// TripTypes are the predefined trip types.
var TripTypes = []string{"Round Trip", "One Way", "Multi City"}

// DepartureTimes are predefined departure-time windows.
var DepartureTimes = []string{"Morning", "Afternoon", "Evening", "Anytime"}

// Months are the calendar months (date instance vocabulary). Both full
// and abbreviated forms occur on interfaces; the abbreviated forms are
// listed separately.
var Months = []string{
	"January", "February", "March", "April", "May", "June", "July",
	"August", "September", "October", "November", "December",
}

// MonthAbbrevs are the abbreviated month forms ("Jan" in Figure 1).
var MonthAbbrevs = []string{
	"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct",
	"Nov", "Dec",
}

// CarMakes are vehicle makes.
var CarMakes = []string{
	"Honda", "Toyota", "Ford", "Chevrolet", "Nissan", "BMW", "Mercedes-Benz",
	"Volkswagen", "Audi", "Mazda", "Subaru", "Hyundai", "Kia", "Jeep",
	"Dodge", "Chrysler", "Volvo", "Lexus", "Acura", "Infiniti", "Mitsubishi",
	"Porsche", "Saturn", "Pontiac", "Buick", "Cadillac", "Lincoln", "GMC",
}

// CarMakesImport and CarMakesDomestic partition CarMakes into the two
// regional flavors used for label/instance correlation.
var CarMakesImport = []string{
	"Honda", "Toyota", "Nissan", "BMW", "Mercedes-Benz", "Volkswagen",
	"Audi", "Mazda", "Subaru", "Hyundai", "Kia", "Volvo", "Lexus",
	"Acura", "Infiniti", "Mitsubishi", "Porsche",
}

// CarMakesDomestic lists US makes.
var CarMakesDomestic = []string{
	"Ford", "Chevrolet", "Jeep", "Dodge", "Chrysler", "Saturn",
	"Pontiac", "Buick", "Cadillac", "Lincoln", "GMC",
}

// CarModels are vehicle models (across makes).
var CarModels = []string{
	"Accord", "Civic", "Camry", "Corolla", "Mustang", "Explorer", "F-150",
	"Taurus", "Malibu", "Impala", "Altima", "Maxima", "Sentra", "Passat",
	"Jetta", "Golf", "Outback", "Forester", "Elantra", "Sonata", "Wrangler",
	"Cherokee", "Ram", "Odyssey", "Pilot", "Highlander", "RAV4", "Pathfinder",
}

// CarColors are exterior colors.
var CarColors = []string{
	"Black", "White", "Silver", "Red", "Blue", "Green", "Gray", "Gold",
	"Beige", "Brown", "Yellow", "Orange",
}

// BodyStyles are vehicle body styles.
var BodyStyles = []string{
	"Sedan", "Coupe", "Convertible", "Hatchback", "Wagon", "SUV",
	"Pickup Truck", "Minivan",
}

// CarConditions are vehicle condition options.
var CarConditions = []string{"New", "Used", "Certified Pre-Owned"}

// BookAuthors are book authors (given-name surname pairs).
var BookAuthors = []string{
	"Stephen King", "John Grisham", "Tom Clancy", "Michael Crichton",
	"Danielle Steel", "Agatha Christie", "Ernest Hemingway", "Mark Twain",
	"Jane Austen", "Charles Dickens", "George Orwell", "Isaac Asimov",
	"Ray Bradbury", "Kurt Vonnegut", "Toni Morrison", "Maya Angelou",
	"John Steinbeck", "William Faulkner", "Harper Lee", "J K Rowling",
	"Dan Brown", "Anne Rice", "James Patterson", "Nora Roberts",
	"Dean Koontz", "Mary Higgins Clark",
}

// BookPublishers are publishing houses.
var BookPublishers = []string{
	"Random House", "Penguin", "HarperCollins", "Simon and Schuster",
	"Macmillan", "Scholastic", "Houghton Mifflin", "Oxford University Press",
	"Cambridge University Press", "Vintage", "Bantam", "Doubleday",
	"Knopf", "Norton", "Wiley",
}

// BookTitles are book titles.
var BookTitles = []string{
	"The Great Gatsby", "To Kill a Mockingbird", "Pride and Prejudice",
	"The Catcher in the Rye", "The Grapes of Wrath", "Brave New World",
	"Fahrenheit 451", "Animal Farm", "Lord of the Flies", "Jane Eyre",
	"Wuthering Heights", "Great Expectations", "Oliver Twist",
	"David Copperfield", "Moby Dick", "War and Peace", "Anna Karenina",
	"Crime and Punishment", "The Odyssey", "The Iliad", "Don Quixote",
	"Les Miserables", "A Tale of Two Cities", "The Scarlet Letter",
}

// BookCategories are book subjects/genres.
var BookCategories = []string{
	"Fiction", "Nonfiction", "Mystery", "Romance", "Science Fiction",
	"Fantasy", "Biography", "History", "Travel", "Cooking", "Business",
	"Computers", "Health", "Poetry", "Drama", "Religion", "Philosophy",
	"Self Help", "Reference", "Children",
}

// BookCategoriesFiction and BookCategoriesNonfiction partition
// BookCategories for label/instance correlation.
var BookCategoriesFiction = []string{
	"Fiction", "Mystery", "Romance", "Science Fiction", "Fantasy",
	"Poetry", "Drama", "Children",
}

// BookCategoriesNonfiction lists the nonfiction subjects.
var BookCategoriesNonfiction = []string{
	"Nonfiction", "Biography", "History", "Travel", "Cooking",
	"Business", "Computers", "Health", "Religion", "Philosophy",
	"Self Help", "Reference",
}

// BookFormats are binding formats.
var BookFormats = []string{
	"Hardcover", "Paperback", "Audio CD", "Audio Cassette", "Mass Market Paperback",
}

// BookLanguages are publication languages.
var BookLanguages = []string{
	"English", "Spanish", "French", "German", "Italian", "Portuguese",
	"Chinese", "Japanese", "Russian",
}

// JobCategories are occupation categories.
var JobCategories = []string{
	"Accounting", "Engineering", "Marketing", "Sales", "Education",
	"Healthcare", "Finance", "Legal", "Manufacturing", "Construction",
	"Retail", "Hospitality", "Transportation", "Administrative",
	"Consulting", "Insurance", "Banking", "Telecommunications",
	"Biotechnology", "Pharmaceutical", "Government", "Nonprofit",
}

// JobCategoriesOffice and JobCategoriesField partition JobCategories
// for label/instance correlation.
var JobCategoriesOffice = []string{
	"Accounting", "Engineering", "Marketing", "Sales", "Finance",
	"Legal", "Consulting", "Banking", "Insurance", "Telecommunications",
	"Government",
}

// JobCategoriesField lists the remaining occupation categories.
var JobCategoriesField = []string{
	"Education", "Healthcare", "Manufacturing", "Construction", "Retail",
	"Hospitality", "Transportation", "Administrative", "Biotechnology",
	"Pharmaceutical", "Nonprofit",
}

// Companies are employer names.
var Companies = []string{
	"Microsoft", "IBM", "Intel", "Oracle", "Cisco", "Dell", "Apple",
	"Motorola", "Boeing", "General Electric", "General Motors",
	"Procter and Gamble", "Johnson and Johnson", "Pfizer", "Merck",
	"Citigroup", "Bank of America", "Wells Fargo", "Goldman Sachs",
	"Morgan Stanley", "American Express", "Walmart", "Target",
	"Home Depot", "FedEx", "UPS", "Verizon", "Sprint",
}

// EmploymentTypes are predefined job types.
var EmploymentTypes = []string{
	"Full Time", "Part Time", "Contract", "Temporary", "Internship",
}

// EducationLevels are predefined degree requirements.
var EducationLevels = []string{
	"High School", "Associate Degree", "Bachelor Degree", "Master Degree",
	"Doctorate",
}

// USStates are the US state names.
var USStates = []string{
	"Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
	"Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
	"Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
	"Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
	"Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
	"New Hampshire", "New Jersey", "New Mexico", "New York",
	"North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
	"Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
	"Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
	"West Virginia", "Wisconsin", "Wyoming",
}

// PropertyTypes are real-estate property types.
var PropertyTypes = []string{
	"Single Family Home", "Condo", "Townhouse", "Multi Family",
	"Mobile Home", "Land", "Farm", "Apartment",
}

// PropertyTypesResidential and PropertyTypesOther partition
// PropertyTypes for label/instance correlation.
var PropertyTypesResidential = []string{
	"Single Family Home", "Condo", "Townhouse", "Apartment",
}

// PropertyTypesOther lists the remaining property types.
var PropertyTypesOther = []string{
	"Multi Family", "Mobile Home", "Land", "Farm",
}

// Neighborhoods are real-estate neighborhood names.
var Neighborhoods = []string{
	"Downtown", "Midtown", "Uptown", "Lakeview", "Riverside", "Hillcrest",
	"Oakwood", "Maplewood", "Brookside", "Westside", "Eastside",
	"Northgate", "Southpark", "Greenfield", "Fairview", "Parkside",
}

// FirstNames and LastNames combine into person names for noise pages and
// personal attributes.
var FirstNames = []string{
	"James", "Mary", "Robert", "Patricia", "Michael", "Linda", "David",
	"Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah",
	"Charles", "Karen", "Daniel", "Nancy", "Matthew", "Lisa",
}

// LastNames are common surnames.
var LastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Wilson", "Anderson", "Taylor",
	"Thomas", "Moore", "Jackson", "Martin", "Lee", "Thompson", "White",
}

// NoiseWords pad noise sentences in the synthetic corpus.
var NoiseWords = []string{
	"information", "service", "online", "welcome", "contact", "about",
	"help", "customer", "support", "account", "special", "today",
	"quality", "guarantee", "shipping", "delivery", "order", "member",
	"review", "rating", "popular", "featured", "network", "system",
	"resource", "center", "guide", "directory", "update", "news",
}
