package kb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDomainsComplete(t *testing.T) {
	ds := Domains()
	if len(ds) != 5 {
		t.Fatalf("got %d domains, want 5", len(ds))
	}
	keys := map[string]bool{}
	for _, d := range ds {
		if keys[d.Key] {
			t.Errorf("duplicate domain key %q", d.Key)
		}
		keys[d.Key] = true
		if d.EntityName == "" || d.DomainKeyword == "" || d.DisplayName == "" {
			t.Errorf("domain %q missing metadata: %+v", d.Key, d)
		}
		if len(d.Concepts) == 0 {
			t.Errorf("domain %q has no concepts", d.Key)
		}
	}
	for _, want := range []string{"airfare", "auto", "book", "job", "realestate"} {
		if !keys[want] {
			t.Errorf("missing domain %q", want)
		}
	}
}

func TestConceptInvariants(t *testing.T) {
	for _, d := range Domains() {
		seen := map[string]bool{}
		for _, c := range d.Concepts {
			if c.ID == "" || !strings.HasPrefix(c.ID, d.Key+".") {
				t.Errorf("concept %q has bad ID %q", c.Name, c.ID)
			}
			if seen[c.ID] {
				t.Errorf("duplicate concept ID %q", c.ID)
			}
			seen[c.ID] = true
			if c.Domain != d.Key {
				t.Errorf("concept %q domain = %q, want %q", c.ID, c.Domain, d.Key)
			}
			if len(c.Labels) == 0 {
				t.Errorf("concept %q has no labels", c.ID)
			}
			for _, l := range c.Labels {
				if l.Text == "" || l.Weight <= 0 {
					t.Errorf("concept %q has bad label variant %+v", c.ID, l)
				}
			}
			if c.Presence <= 0 || c.Presence > 1 {
				t.Errorf("concept %q presence %v out of range", c.ID, c.Presence)
			}
			if c.PredefProb < 0 || c.PredefProb > 1 {
				t.Errorf("concept %q predef prob %v out of range", c.ID, c.PredefProb)
			}
			if c.WebPresence < 0 || c.WebPresence > 1 {
				t.Errorf("concept %q web presence %v out of range", c.ID, c.WebPresence)
			}
			if (c.Numeric == nil) == (len(c.Groups) == 0) {
				t.Errorf("concept %q must have exactly one of Groups or Numeric", c.ID)
			}
			if got := c.AllInstances(); len(got) == 0 {
				t.Errorf("concept %q has no instances", c.ID)
			}
		}
	}
}

func TestExpectedAttrCounts(t *testing.T) {
	// Expected attributes per interface (sum of presences) should track
	// Table 1's #Attr column within a modest tolerance.
	want := map[string]float64{
		"airfare": 10.7, "auto": 5.1, "book": 5.4, "job": 4.6, "realestate": 6.5,
	}
	for _, d := range Domains() {
		var sum float64
		for _, c := range d.Concepts {
			sum += c.Presence
		}
		w := want[d.Key]
		if sum < w-0.8 || sum > w+0.8 {
			t.Errorf("domain %q expected attrs = %.2f, want about %.1f", d.Key, sum, w)
		}
	}
}

func TestAirlineRegionalGroups(t *testing.T) {
	d := DomainByKey("airfare")
	c := d.ConceptByName("airline")
	if c == nil {
		t.Fatal("no airline concept")
	}
	if len(c.Groups) != 2 {
		t.Fatalf("airline groups = %d, want 2 (NA/EU)", len(c.Groups))
	}
	na, eu := c.Groups[0], c.Groups[1]
	inNA := map[string]bool{}
	for _, a := range na {
		inNA[a] = true
	}
	for _, a := range eu {
		if inNA[a] {
			t.Errorf("airline %q in both regional groups", a)
		}
	}
}

func TestNumericSpecRender(t *testing.T) {
	cases := []struct {
		spec NumericSpec
		v    int
		want string
	}{
		{NumericSpec{Monetary: true}, 15200, "$15,200"},
		{NumericSpec{Commas: true}, 50000, "50,000"},
		{NumericSpec{}, 1998, "1998"},
		{NumericSpec{Decimals: 1}, 25, "2.5"},
		{NumericSpec{Monetary: true}, 500, "$500"},
		{NumericSpec{Commas: true}, 1234567, "1,234,567"},
	}
	for _, c := range cases {
		if got := c.spec.Render(c.v); got != c.want {
			t.Errorf("Render(%d) with %+v = %q, want %q", c.v, c.spec, got, c.want)
		}
	}
}

func TestNumericSpecSample(t *testing.T) {
	spec := NumericSpec{Min: 1, Max: 6, Step: 1}
	rng := rand.New(rand.NewSource(1))
	got := spec.Sample(rng, 10)
	if len(got) != 6 {
		t.Errorf("Sample clamped to range size: got %d values, want 6", len(got))
	}
	seen := map[string]bool{}
	for _, v := range got {
		if seen[v] {
			t.Errorf("duplicate sample %q", v)
		}
		seen[v] = true
	}
}

func TestNumericSampleDeterministic(t *testing.T) {
	spec := NumericSpec{Min: 2000, Max: 60000, Step: 500, Monetary: true}
	a := spec.Sample(rand.New(rand.NewSource(7)), 10)
	b := spec.Sample(rand.New(rand.NewSource(7)), 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample not deterministic: %v vs %v", a, b)
		}
	}
}

func TestGroupThousandsProperty(t *testing.T) {
	f := func(n uint32) bool {
		s := groupThousands(itoa(int(n)))
		// Removing commas must recover the original digits.
		return strings.ReplaceAll(s, ",", "") == itoa(int(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestTypeString(t *testing.T) {
	types := []Type{String, Integer, Real, Monetary, Date}
	seen := map[string]bool{}
	for _, ty := range types {
		s := ty.String()
		if s == "" || seen[s] {
			t.Errorf("type %d string %q empty or duplicate", ty, s)
		}
		seen[s] = true
	}
	if Type(99).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestDomainByKey(t *testing.T) {
	if DomainByKey("airfare") == nil {
		t.Error("airfare not found")
	}
	if DomainByKey("nope") != nil {
		t.Error("unknown domain should be nil")
	}
}

func TestUnfindableConceptsExist(t *testing.T) {
	// Table 1's ExpInst column is below 100% for book, job, realestate:
	// those domains must contain unfindable concepts.
	for _, key := range []string{"job", "realestate"} {
		d := DomainByKey(key)
		found := false
		for _, c := range d.Concepts {
			if !c.Findable {
				found = true
			}
		}
		if !found {
			t.Errorf("domain %q has no unfindable concepts", key)
		}
	}
	// Airfare and auto are 100% findable.
	for _, key := range []string{"airfare", "auto"} {
		d := DomainByKey(key)
		for _, c := range d.Concepts {
			if !c.Findable {
				t.Errorf("domain %q concept %q should be findable", key, c.ID)
			}
		}
	}
}

func TestVocabularyListsUnique(t *testing.T) {
	lists := map[string][]string{
		"CitiesNA": CitiesNA, "CitiesEU": CitiesEU, "AirlinesNA": AirlinesNA,
		"AirlinesEU": AirlinesEU, "CarMakes": CarMakes, "CarModels": CarModels,
		"BookAuthors": BookAuthors, "BookPublishers": BookPublishers,
		"BookTitles": BookTitles, "JobCategories": JobCategories,
		"Companies": Companies, "USStates": USStates, "ZipCodes": ZipCodes,
		"ISBNs": ISBNs, "MovieTitles": MovieTitles, "MovieDirectors": MovieDirectors,
	}
	for name, list := range lists {
		seen := map[string]bool{}
		for _, v := range list {
			if v == "" {
				t.Errorf("%s contains an empty entry", name)
			}
			if seen[v] {
				t.Errorf("%s contains duplicate %q", name, v)
			}
			seen[v] = true
		}
		if len(list) < 5 {
			t.Errorf("%s has only %d entries", name, len(list))
		}
	}
}

func TestRegionalGroupsCoverParents(t *testing.T) {
	// The split groups partition their parent lists.
	checks := []struct {
		name   string
		parent []string
		parts  [][]string
	}{
		{"CarMakes", CarMakes, [][]string{CarMakesDomestic, CarMakesImport}},
		{"BookCategories", BookCategories, [][]string{BookCategoriesFiction, BookCategoriesNonfiction}},
		{"JobCategories", JobCategories, [][]string{JobCategoriesOffice, JobCategoriesField}},
		{"PropertyTypes", PropertyTypes, [][]string{PropertyTypesResidential, PropertyTypesOther}},
	}
	for _, c := range checks {
		inParts := map[string]int{}
		for _, part := range c.parts {
			for _, v := range part {
				inParts[v]++
			}
		}
		for _, v := range c.parent {
			if inParts[v] != 1 {
				t.Errorf("%s: %q appears %d times across split groups, want exactly 1", c.name, v, inParts[v])
			}
		}
	}
}
