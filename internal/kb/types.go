// Package kb defines the domain knowledge bases behind the synthetic
// reconstruction of the ICQ dataset: for each of the five evaluation
// domains (airfare, automobile, book, job, real estate) it enumerates the
// semantic attribute concepts, their label variants, their instance
// vocabularies, and the statistical knobs used to calibrate the dataset
// to Table 1 of the paper.
//
// The same concept layer backs all three substrates: the dataset
// generator derives query interfaces (and gold matches) from concepts,
// the Surface-Web corpus generator plants concept instances in web pages,
// and the Deep-Web sources build their backing tables from concept
// vocabularies.
package kb

import (
	"fmt"
	"math/rand"
	"strconv"
)

// Type is the value type of an attribute domain, matching the type
// inventory IceQ's domain-similarity measure distinguishes.
type Type int

const (
	String Type = iota
	Integer
	Real
	Monetary
	Date
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Integer:
		return "integer"
	case Real:
		return "real"
	case Monetary:
		return "monetary"
	case Date:
		return "date"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// NumericSpec describes how to render instances of a numeric concept.
type NumericSpec struct {
	Min, Max int  // inclusive value range
	Step     int  // granularity of generated values
	Monetary bool // render with "$" and thousands separators
	Commas   bool // render with thousands separators (non-monetary)
	Decimals int  // number of decimal places (Real concepts)
}

// Render formats value v according to the spec.
func (ns NumericSpec) Render(v int) string {
	if ns.Decimals > 0 {
		scale := 1
		for i := 0; i < ns.Decimals; i++ {
			scale *= 10
		}
		return strconv.FormatFloat(float64(v)/float64(scale), 'f', ns.Decimals, 64)
	}
	s := strconv.Itoa(v)
	if ns.Monetary || ns.Commas {
		s = groupThousands(s)
	}
	if ns.Monetary {
		s = "$" + s
	}
	return s
}

// Sample returns n distinct rendered values drawn uniformly from the
// spec's range using rng.
func (ns NumericSpec) Sample(rng *rand.Rand, n int) []string {
	steps := (ns.Max-ns.Min)/max(1, ns.Step) + 1
	if n > steps {
		n = steps
	}
	seen := make(map[int]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		v := ns.Min + rng.Intn(steps)*max(1, ns.Step)
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, ns.Render(v))
	}
	return out
}

func groupThousands(s string) string {
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg, s = true, s[1:]
	}
	if len(s) <= 3 {
		if neg {
			return "-" + s
		}
		return s
	}
	var out []byte
	lead := len(s) % 3
	if lead > 0 {
		out = append(out, s[:lead]...)
	}
	for i := lead; i < len(s); i += 3 {
		if len(out) > 0 {
			out = append(out, ',')
		}
		out = append(out, s[i:i+3]...)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}

// LabelVariant is one way interfaces label a concept, with a relative
// selection weight.
type LabelVariant struct {
	Text   string
	Weight float64
}

// Concept is a semantic attribute class within a domain. Two interface
// attributes match (gold standard) iff they derive from the same concept.
type Concept struct {
	// ID is the globally unique concept identifier, "domain.name".
	ID string
	// Domain is the domain key ("airfare", "auto", "book", "job",
	// "realestate").
	Domain string
	// Name is the canonical human-readable concept name ("departure
	// city").
	Name string
	// Type is the value type of the concept's instance domain.
	Type Type
	// Labels are the label variants interfaces use for this concept,
	// with selection weights. The dataset generator picks one per
	// interface. Variants deliberately span syntactic forms (noun
	// phrases, prepositional phrases, verb phrases, bare prepositions)
	// to reproduce the per-domain extraction difficulties Section 6
	// reports.
	Labels []LabelVariant
	// GroupLabels, when non-nil, overrides Labels per instance group: an
	// interface whose regional bias is group g draws its label from
	// GroupLabels[g]. This reproduces the paper's motivating example
	// where NA-flavored sources say "Airline" while EU-flavored sources
	// say "Carrier" — matching attributes with disjoint labels AND
	// dissimilar instances.
	GroupLabels [][]LabelVariant
	// Groups are the instance vocabulary, partitioned into regional (or
	// otherwise disjoint-flavored) groups. An interface with predefined
	// instances lists values drawn mostly from one group, reproducing the
	// "North-American vs European airlines" dissimilarity the paper
	// motivates with. String-typed concepts only.
	Groups [][]string
	// Numeric is non-nil for numeric concepts and replaces Groups.
	Numeric *NumericSpec
	// Presence is the probability the concept appears as an attribute on
	// a given interface of its domain.
	Presence float64
	// PredefProb is the probability that an interface exposes the
	// attribute with a predefined instance list (a selection box) rather
	// than a free-text input.
	PredefProb float64
	// Findable reports whether instances of this concept can reasonably
	// be found on the (Surface) Web. Generic attributes (keyword,
	// description) and personal ones (buyer id) are not findable; this
	// drives Table 1's ExpInst column.
	Findable bool
	// WebPresence in [0,1] scales how densely the synthetic corpus plants
	// extraction-pattern sentences for the concept. Concepts the paper
	// singles out as hard (measurement units, ambiguous "zip") get low
	// values.
	WebPresence float64
}

// AllInstances returns the concept's full instance vocabulary, flattening
// groups. Numeric concepts return a representative rendered sample that is
// deterministic in the concept ID.
func (c *Concept) AllInstances() []string {
	if c.Numeric != nil {
		rng := rand.New(rand.NewSource(int64(hashString(c.ID))))
		return c.Numeric.Sample(rng, 20)
	}
	var out []string
	for _, g := range c.Groups {
		out = append(out, g...)
	}
	return out
}

// IsNumeric reports whether the concept has a numeric instance domain.
func (c *Concept) IsNumeric() bool { return c.Numeric != nil }

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Domain is one of the five evaluation domains.
type Domain struct {
	// Key is the machine name ("airfare").
	Key string
	// DisplayName is the paper's name for the domain ("Airfare").
	DisplayName string
	// EntityName is the real-world entity the domain's interfaces query
	// ("flight", "car", "book", "job", "home"); used as the object name O
	// in singleton extraction patterns and as a domain keyword.
	EntityName string
	// DomainKeyword is the name of the domain used to narrow extraction
	// queries ("real estate" for the realestate domain).
	DomainKeyword string
	// Concepts are the attribute concepts of the domain.
	Concepts []*Concept
}

// ConceptByName returns the domain's concept with the given short name,
// or nil.
func (d *Domain) ConceptByName(name string) *Concept {
	for _, c := range d.Concepts {
		if c.Name == name {
			return c
		}
	}
	return nil
}
