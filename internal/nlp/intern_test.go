package nlp

import (
	"fmt"
	"sync"
	"testing"
)

func TestTermTableBasic(t *testing.T) {
	tab := NewTermTable()
	if tab.Len() != 0 {
		t.Fatalf("empty table Len = %d, want 0", tab.Len())
	}
	a := tab.Intern("city")
	b := tab.Intern("state")
	if a == b {
		t.Fatalf("distinct terms share id %d", a)
	}
	if got := tab.Intern("city"); got != a {
		t.Errorf("re-intern(city) = %d, want %d", got, a)
	}
	if got := tab.InternBytes([]byte("state")); got != b {
		t.Errorf("InternBytes(state) = %d, want %d", got, b)
	}
	if got, ok := tab.Lookup("city"); !ok || got != a {
		t.Errorf("Lookup(city) = %d,%v, want %d,true", got, ok, a)
	}
	if _, ok := tab.Lookup("zip"); ok {
		t.Error("Lookup(zip) reported ok for an unseen term")
	}
	if got, ok := tab.LookupBytes([]byte("state")); !ok || got != b {
		t.Errorf("LookupBytes(state) = %d,%v, want %d,true", got, ok, b)
	}
	if tab.Term(a) != "city" || tab.Term(b) != "state" {
		t.Errorf("Term round-trip: got %q,%q", tab.Term(a), tab.Term(b))
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
}

func TestTermTableDenseIDs(t *testing.T) {
	tab := NewTermTable()
	for i := 0; i < 100; i++ {
		id := tab.Intern(fmt.Sprintf("term-%d", i))
		if id != uint32(i) {
			t.Fatalf("Intern #%d assigned id %d; ids must be dense in first-seen order", i, id)
		}
	}
}

func TestTermTableConcurrent(t *testing.T) {
	tab := NewTermTable()
	const goroutines = 8
	const terms = 200
	var wg sync.WaitGroup
	ids := make([][]uint32, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]uint32, terms)
			for i := 0; i < terms; i++ {
				// Every goroutine interns the same term set, half via
				// the byte-slice path.
				s := fmt.Sprintf("w%03d", i)
				if g%2 == 0 {
					ids[g][i] = tab.Intern(s)
				} else {
					ids[g][i] = tab.InternBytes([]byte(s))
				}
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() != terms {
		t.Fatalf("Len = %d, want %d", tab.Len(), terms)
	}
	for g := 1; g < goroutines; g++ {
		for i := 0; i < terms; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got id %d for term %d, goroutine 0 got %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
	for i := 0; i < terms; i++ {
		want := fmt.Sprintf("w%03d", i)
		if got := tab.Term(ids[0][i]); got != want {
			t.Fatalf("Term(%d) = %q, want %q", ids[0][i], got, want)
		}
	}
}

func TestTermTableLookupBytesNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	tab := NewTermTable()
	tab.Intern("departure")
	buf := []byte("departure")
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := tab.LookupBytes(buf); !ok {
			t.Fatal("lookup miss")
		}
		if id := tab.InternBytes(buf); id != 0 {
			t.Fatalf("id = %d", id)
		}
	})
	if allocs != 0 {
		t.Errorf("LookupBytes/InternBytes hit path allocates %.1f objects/op, want 0", allocs)
	}
}
