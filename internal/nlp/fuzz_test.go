package nlp

import "testing"

// Fuzz targets: parsers must never panic and must maintain their basic
// invariants on arbitrary input. (Run with `go test -fuzz FuzzTokenize`;
// seed corpus runs as part of normal tests.)

func FuzzTokenize(f *testing.F) {
	for _, s := range []string{
		"Departure city", "$15,200 and other prices", "a<b>&c",
		"From: Boston, Chicago, and LAX.", "日本語 mixed テキスト 3.5",
		"first-class o'hare -", "...", "$", "-$5", "1,2,3",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		prev := -1
		for _, tok := range toks {
			if tok.Text == "" {
				t.Fatalf("empty token in %q", s)
			}
			if tok.Pos <= prev {
				t.Fatalf("non-monotonic offsets in %q", s)
			}
			prev = tok.Pos
			if tok.Pos < 0 || tok.Pos >= len(s) {
				t.Fatalf("offset %d out of range for %q", tok.Pos, s)
			}
		}
	})
}

func FuzzAnalyzeLabel(f *testing.F) {
	for _, s := range []string{
		"From city", "Depart from", "First name or last name",
		"Class of service", "", ":::", "to to to", "123 456",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ls := AnalyzeLabel(s)
		// Every returned NP must have a valid head.
		for _, np := range ls.NPs {
			if np.Head < 0 || np.Head >= len(np.Tokens) {
				t.Fatalf("NP head %d out of range (%d tokens) for %q", np.Head, len(np.Tokens), s)
			}
			if np.Text() == "" {
				t.Fatalf("empty NP for %q", s)
			}
			_ = np.Plural()
		}
	})
}

func FuzzPluralizeSingularize(f *testing.F) {
	for _, s := range []string{"city", "bus", "children", "Series", "x", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// Must not panic; outputs must not explode in size.
		p := Pluralize(s)
		q := Singularize(p)
		if len(p) > len(s)+4 {
			t.Fatalf("Pluralize(%q) = %q grew too much", s, p)
		}
		_ = q
	})
}
