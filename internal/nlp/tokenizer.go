// Package nlp provides the shallow natural-language processing substrate
// used by WebIQ: tokenization, rule-based part-of-speech tagging in the
// style of Brill's tagger, noun-phrase chunking by pattern matching over
// POS tags, and English inflection helpers.
//
// The package is deliberately small and deterministic. WebIQ only needs
// shallow analysis of short attribute labels (e.g. "Departure city",
// "From city", "Class of service") and of simple snippet sentences, so a
// lexicon-plus-transformation-rules tagger is both faithful to the paper
// (which uses Brill's tagger) and adequate for the task.
package nlp

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token at the lexical level, before POS tagging.
type Kind int

const (
	// Word is an alphabetic token, possibly with internal hyphens or
	// apostrophes ("don't", "twin-engine").
	Word Kind = iota
	// Number is a numeric token: integers, reals, and monetary values
	// ("42", "3.14", "$15,200").
	Number
	// Punct is a punctuation token (",", ".", ":", "(", ...).
	Punct
)

// Token is a lexical token with its original and normalized text.
type Token struct {
	Text string // original text as it appeared
	Norm string // lower-cased text
	Kind Kind
	Pos  int // byte offset of the token in the input
}

// IsCapitalized reports whether the token's first rune is an upper-case
// letter. Capitalization is one of the outlier-detection statistics and a
// hint for proper-noun tagging.
func (t Token) IsCapitalized() bool {
	for _, r := range t.Text {
		return unicode.IsUpper(r)
	}
	return false
}

// TokenScanner yields the tokens of a string one at a time, without
// allocating a token slice. It is the iterator form of Tokenize — the
// hot paths (indexing, snippet tagging, word extraction) scan instead
// of materializing []Token:
//
//	var sc TokenScanner
//	for sc.Reset(text); sc.Scan(); {
//		t := sc.Token()
//		...
//	}
//
// Each token's Text and Norm are substrings of the input; the only
// per-token allocation is the lower-casing of a Word token that
// actually contains upper-case letters (strings.ToLower returns its
// input unchanged otherwise).
type TokenScanner struct {
	text string
	i    int
	tok  Token
}

// Reset points the scanner at text and rewinds it.
func (sc *TokenScanner) Reset(text string) {
	sc.text = text
	sc.i = 0
	sc.tok = Token{}
}

// Token returns the token found by the last successful Scan.
func (sc *TokenScanner) Token() Token { return sc.tok }

// Scan advances to the next token, reporting whether one was found.
//
// Rules (shared with Tokenize):
//   - A word is a maximal run of letters, with embedded hyphens or
//     apostrophes joining letter runs ("first-class", "o'hare").
//   - A number is a maximal run of digits with optional leading '$',
//     embedded commas as thousands separators, and one decimal point
//     ("$15,200", "3.5").
//   - Everything else that is not whitespace becomes a single-rune
//     punctuation token.
func (sc *TokenScanner) Scan() bool {
	text := sc.text
	// Work directly on byte offsets so Pos always indexes the original
	// string, even for invalid UTF-8 (which decodes as U+FFFD but must
	// advance by its true encoded width).
	runeAt := func(i int) (rune, int) {
		if c := text[i]; c < utf8.RuneSelf {
			return rune(c), 1
		}
		return utf8.DecodeRuneInString(text[i:])
	}
	i := sc.i
	for i < len(text) {
		r, w := runeAt(i)
		switch {
		case unicode.IsSpace(r):
			i += w
		case unicode.IsLetter(r):
			start := i
			j := i
			for j < len(text) {
				rj, wj := runeAt(j)
				if unicode.IsLetter(rj) {
					j += wj
					continue
				}
				// Join hyphens/apostrophes flanked by letters.
				if (rj == '-' || rj == '\'') && j+wj < len(text) {
					rn, wn := runeAt(j + wj)
					if unicode.IsLetter(rn) {
						j += wj + wn
						continue
					}
				}
				break
			}
			tok := text[start:j]
			sc.tok = Token{Text: tok, Norm: strings.ToLower(tok), Kind: Word, Pos: start}
			sc.i = j
			return true
		case unicode.IsDigit(r) || (r == '$' && i+w < len(text) && isDigitAt(text, i+w)):
			start := i
			j := i
			if text[j] == '$' {
				j++
			}
			seenDot := false
			for j < len(text) {
				rj, wj := runeAt(j)
				if unicode.IsDigit(rj) {
					j += wj
					continue
				}
				if rj == ',' && j+wj < len(text) && isDigitAt(text, j+wj) {
					j += wj // the digit is consumed on the next iteration
					continue
				}
				if rj == '.' && !seenDot && j+wj < len(text) && isDigitAt(text, j+wj) {
					seenDot = true
					j += wj
					continue
				}
				break
			}
			tok := text[start:j]
			sc.tok = Token{Text: tok, Norm: tok, Kind: Number, Pos: start}
			sc.i = j
			return true
		default:
			sc.tok = Token{Text: text[i : i+w], Norm: text[i : i+w], Kind: Punct, Pos: i}
			sc.i = i + w
			return true
		}
	}
	sc.i = i
	return false
}

// Tokenize splits text into word, number, and punctuation tokens,
// following TokenScanner's rules. Callers that only iterate should use
// a TokenScanner directly and skip the slice.
func Tokenize(text string) []Token {
	var tokens []Token
	var sc TokenScanner
	for sc.Reset(text); sc.Scan(); {
		tokens = append(tokens, sc.Token())
	}
	return tokens
}

// isDigitAt reports whether the rune starting at byte i is a digit.
func isDigitAt(s string, i int) bool {
	r, _ := utf8.DecodeRuneInString(s[i:])
	return unicode.IsDigit(r)
}

// Words returns only the word and number tokens of text, normalized to
// lower case. It is the common pre-processing step for similarity
// computation and indexing.
func Words(text string) []string {
	return AppendWords(nil, text)
}

// AppendWords appends the word and number norms of text to dst —
// equivalent to append(dst, Words(text)...) without materializing the
// intermediate token slice.
func AppendWords(dst []string, text string) []string {
	var sc TokenScanner
	for sc.Reset(text); sc.Scan(); {
		if t := sc.Token(); t.Kind != Punct {
			dst = append(dst, t.Norm)
		}
	}
	return dst
}

// Sentences splits text into sentences on '.', '!', '?' boundaries,
// keeping abbreviations with a trailing digit or single letter intact
// well enough for snippet processing.
func Sentences(text string) []string {
	var out []string
	var b strings.Builder
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		b.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			// Don't split "3.5" or "U.S." style internals.
			if i+1 < len(runes) && !unicode.IsSpace(runes[i+1]) {
				continue
			}
			s := strings.TrimSpace(b.String())
			if s != "" {
				out = append(out, s)
			}
			b.Reset()
		}
	}
	if s := strings.TrimSpace(b.String()); s != "" {
		out = append(out, s)
	}
	return out
}
