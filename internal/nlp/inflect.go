package nlp

import "strings"

// irregularPlurals maps singular forms to irregular plurals. The reverse
// map is derived at init time for Singularize.
var irregularPlurals = map[string]string{
	"person":      "people",
	"man":         "men",
	"woman":       "women",
	"child":       "children",
	"foot":        "feet",
	"tooth":       "teeth",
	"goose":       "geese",
	"mouse":       "mice",
	"datum":       "data",
	"medium":      "media",
	"index":       "indices",
	"matrix":      "matrices",
	"analysis":    "analyses",
	"basis":       "bases",
	"criterion":   "criteria",
	"phenomenon":  "phenomena",
	"life":        "lives",
	"leaf":        "leaves",
	"shelf":       "shelves",
	"half":        "halves",
	"wife":        "wives",
	"knife":       "knives",
	"salesperson": "salespeople",
	"bus":         "buses",
	"gas":         "gases",
}

// invariantNouns have identical singular and plural forms.
var invariantNouns = map[string]bool{
	"series": true, "species": true, "aircraft": true, "equipment": true,
	"information": true, "news": true, "staff": true, "fish": true,
	"deer": true, "sheep": true, "software": true, "real estate": true,
	"feet": true, // "square feet" is already plural in measurement labels
}

var irregularSingulars map[string]string

func init() {
	irregularSingulars = make(map[string]string, len(irregularPlurals))
	for s, p := range irregularPlurals {
		irregularSingulars[p] = s
	}
}

func isVowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// Pluralize returns the English plural of a (lower-case) noun or noun
// phrase. For multi-word phrases the head noun — the last word — is
// pluralized, which is the behaviour the paper's extraction patterns need
// ("departure city" -> "departure cities").
func Pluralize(noun string) string {
	noun = strings.TrimSpace(noun)
	if noun == "" {
		return noun
	}
	if i := strings.LastIndexByte(noun, ' '); i >= 0 {
		return noun[:i+1] + Pluralize(noun[i+1:])
	}
	lower := strings.ToLower(noun)
	if invariantNouns[lower] {
		return noun
	}
	if p, ok := irregularPlurals[lower]; ok {
		return p
	}
	switch {
	case strings.HasSuffix(lower, "s"), strings.HasSuffix(lower, "x"),
		strings.HasSuffix(lower, "z"), strings.HasSuffix(lower, "ch"),
		strings.HasSuffix(lower, "sh"):
		return noun + "es"
	case strings.HasSuffix(lower, "y") && len(lower) > 1 && !isVowel(lower[len(lower)-2]):
		return noun[:len(noun)-1] + "ies"
	case strings.HasSuffix(lower, "o") && len(lower) > 1 && !isVowel(lower[len(lower)-2]):
		// tomato -> tomatoes; but common -o loanwords take -s (photo, auto).
		switch lower {
		case "photo", "auto", "piano", "memo", "zero", "pro", "condo", "studio", "radio", "video", "logo":
			return noun + "s"
		}
		return noun + "es"
	default:
		return noun + "s"
	}
}

// Singularize returns the singular of an English plural noun or noun
// phrase (last word only for phrases). Words that do not look plural are
// returned unchanged.
func Singularize(noun string) string {
	noun = strings.TrimSpace(noun)
	if noun == "" {
		return noun
	}
	if i := strings.LastIndexByte(noun, ' '); i >= 0 {
		return noun[:i+1] + Singularize(noun[i+1:])
	}
	lower := strings.ToLower(noun)
	if invariantNouns[lower] {
		return noun
	}
	if s, ok := irregularSingulars[lower]; ok {
		return s
	}
	switch {
	case strings.HasSuffix(lower, "ies") && len(lower) > 3:
		return noun[:len(noun)-3] + "y"
	case strings.HasSuffix(lower, "ves") && len(lower) > 3:
		return noun[:len(noun)-3] + "f"
	case strings.HasSuffix(lower, "xes"), strings.HasSuffix(lower, "ches"),
		strings.HasSuffix(lower, "shes"), strings.HasSuffix(lower, "sses"),
		strings.HasSuffix(lower, "zes"), strings.HasSuffix(lower, "oes"):
		return noun[:len(noun)-2]
	case strings.HasSuffix(lower, "ss"), strings.HasSuffix(lower, "us"),
		strings.HasSuffix(lower, "is"):
		// class, status, basis — not plural -s.
		return noun
	case strings.HasSuffix(lower, "s") && len(lower) > 1:
		return noun[:len(noun)-1]
	default:
		return noun
	}
}

// LooksPlural reports whether a word is plausibly an English plural.
func LooksPlural(word string) bool {
	lower := strings.ToLower(word)
	if _, ok := irregularSingulars[lower]; ok {
		return true
	}
	if invariantNouns[lower] {
		return true
	}
	if strings.HasSuffix(lower, "ss") || strings.HasSuffix(lower, "us") || strings.HasSuffix(lower, "is") {
		return false
	}
	return strings.HasSuffix(lower, "s")
}
