package nlp

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTermTableFreeze(t *testing.T) {
	tab := NewTermTable()
	city := tab.Intern("city")
	state := tab.Intern("state")
	if tab.Frozen() {
		t.Fatal("fresh table reports frozen")
	}
	tab.Freeze()
	if !tab.Frozen() {
		t.Fatal("Freeze did not mark the table frozen")
	}
	if got := tab.Intern("city"); got != city {
		t.Errorf("frozen Intern(city) = %d, want %d", got, city)
	}
	if got := tab.InternBytes([]byte("state")); got != state {
		t.Errorf("frozen InternBytes(state) = %d, want %d", got, state)
	}
	if got := tab.Intern("zip"); got != NoTerm {
		t.Errorf("frozen Intern of unknown term = %d, want NoTerm", got)
	}
	if got := tab.InternBytes([]byte("zip")); got != NoTerm {
		t.Errorf("frozen InternBytes of unknown term = %d, want NoTerm", got)
	}
	if tab.Len() != 2 {
		t.Errorf("frozen table grew: Len = %d, want 2", tab.Len())
	}
	if _, ok := tab.Lookup("zip"); ok {
		t.Error("frozen Lookup(zip) reported ok after a sentinel Intern")
	}
	if got, ok := tab.Lookup("city"); !ok || got != city {
		t.Errorf("frozen Lookup(city) = %d,%v, want %d,true", got, ok, city)
	}
	if got := tab.Term(state); got != "state" {
		t.Errorf("frozen Term(%d) = %q, want state", state, got)
	}
}

// TestTermTableFrozenConcurrentReaders hammers a frozen table from many
// goroutines — known and unknown terms through every read entry point —
// under the race detector: the frozen read path takes no lock, so any
// latent mutation after Freeze would be reported as a race.
func TestTermTableFrozenConcurrentReaders(t *testing.T) {
	tab := NewTermTable()
	const terms = 300
	for i := 0; i < terms; i++ {
		tab.Intern(fmt.Sprintf("w%03d", i))
	}
	tab.Freeze()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < terms; i++ {
				s := fmt.Sprintf("w%03d", i)
				if id := tab.Intern(s); id != uint32(i) {
					t.Errorf("Intern(%s) = %d, want %d", s, id, i)
					return
				}
				if id := tab.InternBytes([]byte(s)); id != uint32(i) {
					t.Errorf("InternBytes(%s) = %d, want %d", s, id, i)
					return
				}
				if got := tab.Term(uint32(i)); got != s {
					t.Errorf("Term(%d) = %q, want %q", i, got, s)
					return
				}
				unknown := fmt.Sprintf("zz%d-%d", g, i)
				if id := tab.Intern(unknown); id != NoTerm {
					t.Errorf("Intern(%s) = %d, want NoTerm", unknown, id)
					return
				}
				if _, ok := tab.Lookup(unknown); ok {
					t.Errorf("Lookup(%s) ok on frozen table", unknown)
					return
				}
				if tab.Len() != terms {
					t.Errorf("Len = %d, want %d", tab.Len(), terms)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestTermTableFreezeRace races Freeze against writers: after Freeze
// returns, the table must never grow, and every writer must have gotten
// either a real ID (interned before the freeze won) or NoTerm.
func TestTermTableFreezeRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		tab := NewTermTable()
		tab.Intern("seed")
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					tab.Intern(fmt.Sprintf("r%d-g%d-%d", round, g, i))
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tab.Freeze()
		}()
		close(start)
		wg.Wait()
		n := tab.Len()
		if got := tab.Intern("post-freeze"); got != NoTerm {
			t.Fatalf("round %d: post-freeze Intern = %d, want NoTerm", round, got)
		}
		if tab.Len() != n {
			t.Fatalf("round %d: table grew after freeze: %d -> %d", round, n, tab.Len())
		}
	}
}

func TestTermTableFlattenRoundTrip(t *testing.T) {
	tab := NewTermTable()
	words := []string{"city", "state", "zip", "departure", ""}
	for _, w := range words {
		tab.Intern(w)
	}
	tab.Intern("late") // beyond the persisted prefix

	offsets, blob := tab.Flatten(len(words))
	if len(offsets) != len(words)+1 {
		t.Fatalf("Flatten offsets len = %d, want %d", len(offsets), len(words)+1)
	}
	ft, err := NewFrozenTermTable(offsets, string(blob))
	if err != nil {
		t.Fatalf("NewFrozenTermTable: %v", err)
	}
	if !ft.Frozen() {
		t.Fatal("reconstructed table not frozen")
	}
	if ft.Len() != len(words) {
		t.Fatalf("reconstructed Len = %d, want %d", ft.Len(), len(words))
	}
	for i, w := range words {
		if got := ft.Term(uint32(i)); got != w {
			t.Errorf("Term(%d) = %q, want %q", i, got, w)
		}
		if id, ok := ft.Lookup(w); !ok || id != uint32(i) {
			t.Errorf("Lookup(%q) = %d,%v, want %d,true", w, id, ok, i)
		}
	}
	if got := ft.Intern("late"); got != NoTerm {
		t.Errorf("Intern of unpersisted term = %d, want NoTerm", got)
	}

	all, allBlob := tab.Flatten(-1)
	if len(all) != tab.Len()+1 {
		t.Fatalf("Flatten(-1) offsets len = %d, want %d", len(all), tab.Len()+1)
	}
	if _, err := NewFrozenTermTable(all, string(allBlob)); err != nil {
		t.Fatalf("NewFrozenTermTable(all): %v", err)
	}
}

func TestNewFrozenTermTableRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		offsets []uint32
		blob    string
	}{
		{"empty offsets", nil, ""},
		{"nonzero first", []uint32{1, 2}, "ab"},
		{"short final", []uint32{0, 1}, "ab"},
		{"long final", []uint32{0, 3}, "ab"},
		{"non-monotonic", []uint32{0, 2, 1, 3}, "abc"},
		{"duplicate terms", []uint32{0, 1, 2}, "aa"},
	}
	for _, tc := range cases {
		if _, err := NewFrozenTermTable(tc.offsets, tc.blob); err == nil {
			t.Errorf("%s: NewFrozenTermTable accepted malformed input", tc.name)
		} else if !strings.Contains(err.Error(), "frozen term table") {
			t.Errorf("%s: unhelpful error %v", tc.name, err)
		}
	}
}
