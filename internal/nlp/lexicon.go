package nlp

// Tag is a part-of-speech tag. We use a compact subset of the Penn
// Treebank tag set — everything the label-syntax analysis and snippet
// chunking in WebIQ require.
type Tag string

// The tag inventory.
const (
	DT  Tag = "DT"  // determiner: the, a, any
	NN  Tag = "NN"  // noun, singular
	NNS Tag = "NNS" // noun, plural
	NNP Tag = "NNP" // proper noun
	JJ  Tag = "JJ"  // adjective
	IN  Tag = "IN"  // preposition
	CC  Tag = "CC"  // coordinating conjunction
	VB  Tag = "VB"  // verb, base form
	VBZ Tag = "VBZ" // verb, 3rd person singular present
	VBG Tag = "VBG" // verb, gerund
	VBN Tag = "VBN" // verb, past participle
	VBD Tag = "VBD" // verb, past tense
	CD  Tag = "CD"  // cardinal number
	RB  Tag = "RB"  // adverb
	TO  Tag = "TO"  // "to"
	PRP Tag = "PRP" // pronoun
	SYM Tag = "SYM" // symbol / punctuation
	WDT Tag = "WDT" // wh-determiner: which, what
)

// IsNoun reports whether the tag denotes a noun of any kind.
func (t Tag) IsNoun() bool { return t == NN || t == NNS || t == NNP }

// IsVerb reports whether the tag denotes a verb form.
func (t Tag) IsVerb() bool {
	switch t {
	case VB, VBZ, VBG, VBN, VBD:
		return true
	}
	return false
}

// lexicon maps a lower-cased word to its admissible tags, most likely
// first. The tagger's initial pass assigns the first tag; contextual
// transformation rules may switch to one of the later tags.
//
// The vocabulary covers the function words of English plus the open-class
// words that occur in interface labels and in the synthetic Surface-Web
// corpus. Unknown words are handled by morphological heuristics in the
// tagger.
var lexicon = map[string][]Tag{
	// Determiners.
	"the": {DT}, "a": {DT}, "an": {DT}, "any": {DT}, "all": {DT},
	"each": {DT}, "every": {DT}, "some": {DT}, "no": {DT}, "this": {DT},
	"these": {DT}, "that": {DT, IN}, "those": {DT},

	// Prepositions.
	"from": {IN}, "of": {IN}, "in": {IN}, "on": {IN}, "at": {IN},
	"by": {IN}, "with": {IN}, "within": {IN}, "near": {IN}, "between": {IN},
	"under": {IN}, "over": {IN}, "per": {IN}, "for": {IN}, "as": {IN},
	"into": {IN}, "through": {IN}, "during": {IN}, "before": {IN},
	"after": {IN}, "since": {IN}, "until": {IN}, "about": {IN, RB},
	"via": {IN}, "above": {IN}, "below": {IN},

	// "to" gets its own tag; it behaves as a preposition in labels
	// ("to city") and as an infinitive marker before verbs.
	"to": {TO},

	// Conjunctions.
	"and": {CC}, "or": {CC}, "but": {CC}, "nor": {CC},

	// Pronouns and wh-words.
	"i": {PRP}, "you": {PRP}, "we": {PRP}, "it": {PRP}, "they": {PRP},
	"your": {PRP}, "my": {PRP}, "our": {PRP}, "their": {PRP}, "its": {PRP},
	"which": {WDT}, "what": {WDT}, "where": {WDT}, "when": {WDT},

	// Copulas and auxiliaries.
	"is": {VBZ}, "are": {VBZ}, "was": {VBD}, "were": {VBD}, "be": {VB},
	"been": {VBN}, "being": {VBG}, "has": {VBZ}, "have": {VB},
	"had": {VBD}, "do": {VB}, "does": {VBZ}, "did": {VBD},
	"can": {VB}, "will": {VB}, "would": {VB}, "may": {VB}, "must": {VB},
	"should": {VB},

	// Verbs common in interface labels and corpus sentences.
	"depart": {VB}, "departing": {VBG}, "departs": {VBZ},
	"arrive": {VB}, "arriving": {VBG}, "arrives": {VBZ},
	"leave": {VB}, "leaving": {VBG}, "go": {VB}, "going": {VBG},
	"travel": {VB, NN}, "traveling": {VBG},
	"fly": {VB}, "flying": {VBG}, "flies": {VBZ},
	"search": {VB, NN}, "find": {VB}, "browse": {VB}, "enter": {VB},
	"select": {VB}, "choose": {VB}, "pick": {VB}, "sort": {VB, NN},
	"show": {VB}, "list": {VB, NN}, "view": {VB, NN}, "get": {VB},
	"buy": {VB}, "sell": {VB}, "rent": {VB, NN}, "offer": {VB, NN},
	"offers": {VBZ, NNS}, "offered": {VBN},
	"include": {VB}, "includes": {VBZ}, "including": {VBG},
	"located": {VBN}, "situated": {VBN}, "operated": {VBN},
	"published": {VBN}, "written": {VBN}, "serves": {VBZ},
	"serve": {VB}, "flights": {NNS}, "flight": {NN},
	"looking": {VBG}, "specify": {VB}, "provide": {VB},
	"posted": {VBN}, "updated": {VBN}, "required": {VBN, JJ},
	"wanted": {VBN}, "needed": {VBN},

	// Adjectives common in labels.
	"first": {JJ}, "last": {JJ}, "new": {JJ}, "used": {JJ, VBN},
	"min": {JJ}, "max": {JJ}, "minimum": {JJ, NN}, "maximum": {JJ, NN},
	"low": {JJ}, "high": {JJ}, "lowest": {JJ}, "highest": {JJ},
	"full": {JJ}, "part": {NN, JJ}, "one": {CD}, "round": {JJ, NN},
	"economy": {NN}, "business": {NN}, "main": {JJ}, "other": {JJ},
	"such": {JJ}, "many": {JJ}, "more": {JJ}, "most": {JJ},
	"several": {JJ}, "various": {JJ}, "popular": {JJ}, "major": {JJ},
	"available": {JJ}, "local": {JJ}, "nearby": {JJ}, "total": {JJ, NN},
	"square": {JJ, NN}, "annual": {JJ}, "monthly": {JJ}, "hourly": {JJ},
	"early": {JJ}, "late": {JJ}, "great": {JJ}, "good": {JJ},
	"best": {JJ}, "top": {JJ, NN}, "cheap": {JJ}, "direct": {JJ},
	"nonstop": {JJ}, "international": {JJ}, "domestic": {JJ},
	"certified": {JJ, VBN}, "preferred": {JJ, VBN},

	// Adverbs.
	"not": {RB}, "only": {RB}, "also": {RB}, "here": {RB},
	"there": {RB}, "now": {RB}, "very": {RB}, "well": {RB},
	"often": {RB}, "usually": {RB}, "typically": {RB},

	// Nouns that look like verbs or are otherwise ambiguous in labels.
	// "return" and "check" are noun modifiers in labels ("return date",
	// "check in") but verbs after "to" — contextual rules handle the flip.
	"return": {NN, VB}, "check": {NN, VB}, "stop": {NN, VB},
	"stops": {NNS, VBZ}, "make": {NN, VB}, "model": {NN},
	"type": {NN, VB}, "state": {NN, VB}, "name": {NN, VB},
	"price": {NN, VB}, "title": {NN}, "zip": {NN}, "code": {NN},
	"city": {NN}, "cities": {NNS}, "date": {NN}, "dates": {NNS},
	"time": {NN}, "times": {NNS}, "airline": {NN}, "airlines": {NNS},
	"carrier": {NN}, "carriers": {NNS}, "airport": {NN}, "airports": {NNS},
	"passenger": {NN}, "passengers": {NNS}, "adult": {NN}, "adults": {NNS},
	"child": {NN}, "children": {NNS}, "infant": {NN}, "infants": {NNS},
	"class": {NN}, "classes": {NNS}, "service": {NN}, "services": {NNS},
	"cabin": {NN}, "trip": {NN}, "trips": {NNS}, "fare": {NN},
	"fares": {NNS}, "ticket": {NN}, "tickets": {NNS},
	"destination": {NN}, "destinations": {NNS}, "origin": {NN},
	"departure": {NN}, "departures": {NNS}, "arrival": {NN},
	"month": {NN}, "months": {NNS}, "day": {NN}, "days": {NNS},
	"year": {NN}, "years": {NNS},
	"car": {NN}, "cars": {NNS}, "vehicle": {NN}, "vehicles": {NNS},
	"makes": {NNS, VBZ}, "models": {NNS}, "mileage": {NN}, "miles": {NNS},
	"mile": {NN}, "color": {NN}, "colors": {NNS}, "body": {NN},
	"style": {NN}, "styles": {NNS}, "condition": {NN}, "engine": {NN},
	"transmission": {NN}, "dealer": {NN}, "dealers": {NNS},
	"book": {NN, VB}, "books": {NNS}, "author": {NN}, "authors": {NNS},
	"publisher": {NN}, "publishers": {NNS}, "isbn": {NN},
	"keyword": {NN}, "keywords": {NNS}, "subject": {NN},
	"subjects": {NNS}, "category": {NN}, "categories": {NNS},
	"format": {NN}, "formats": {NNS}, "edition": {NN}, "editions": {NNS},
	"language": {NN}, "languages": {NNS}, "genre": {NN}, "genres": {NNS},
	"job": {NN}, "jobs": {NNS}, "company": {NN}, "companies": {NNS},
	"employer": {NN}, "employers": {NNS}, "salary": {NN},
	"salaries": {NNS}, "industry": {NN}, "industries": {NNS},
	"position": {NN}, "positions": {NNS}, "occupation": {NN},
	"occupations": {NNS}, "skill": {NN}, "skills": {NNS},
	"experience": {NN}, "education": {NN}, "degree": {NN},
	"degrees": {NNS}, "location": {NN}, "locations": {NNS},
	"description": {NN}, "field": {NN}, "fields": {NNS},
	"home": {NN}, "homes": {NNS}, "house": {NN}, "houses": {NNS},
	"property": {NN}, "properties": {NNS}, "bedroom": {NN},
	"bedrooms": {NNS}, "bathroom": {NN}, "bathrooms": {NNS},
	"bath": {NN}, "baths": {NNS}, "bed": {NN}, "beds": {NNS},
	"acreage": {NN}, "acre": {NN}, "acres": {NNS}, "feet": {NNS},
	"foot": {NN}, "lot": {NN}, "size": {NN}, "area": {NN},
	"neighborhood": {NN}, "county": {NN}, "counties": {NNS},
	"agent": {NN}, "agents": {NNS}, "listing": {NN}, "listings": {NNS},
	"number": {NN}, "numbers": {NNS}, "range": {NN}, "ranges": {NNS},
	"amount": {NN}, "value": {NN}, "values": {NNS}, "option": {NN},
	"options": {NNS}, "status": {NN}, "level": {NN}, "levels": {NNS},
	"country": {NN}, "countries": {NNS}, "region": {NN},
	"regions": {NNS}, "address": {NN}, "email": {NN}, "phone": {NN},
	"seller": {NN}, "sellers": {NNS}, "buyer": {NN}, "buyers": {NNS},
	"reference": {NN}, "id": {NN}, "person": {NN}, "people": {NNS},
	"variety": {NN}, "example": {NN}, "examples": {NNS},
	"bookstore": {NN}, "store": {NN}, "stores": {NNS}, "site": {NN},
	"web": {NN}, "website": {NN}, "page": {NN}, "pages": {NNS},
	"world": {NN}, "unit": {NN}, "units": {NNS},
}

// LookupTags returns the admissible tags for a word, or nil if the word
// is not in the lexicon.
func LookupTags(word string) []Tag {
	return lexicon[word]
}

// InLexicon reports whether word (lower-cased) has a lexicon entry.
func InLexicon(word string) bool {
	_, ok := lexicon[word]
	return ok
}

// allowsTag reports whether the lexicon permits tag for word; unknown
// words permit any tag.
func allowsTag(word string, tag Tag) bool {
	tags, ok := lexicon[word]
	if !ok {
		return true
	}
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}
