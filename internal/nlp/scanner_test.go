package nlp

import (
	"reflect"
	"testing"
)

var scannerInputs = []string{
	"",
	"   ",
	"Departure city",
	"Class of service:",
	"first-class and o'hare",
	"$15,200 or 3.5 miles (one-way)",
	"cities such as Boston, Chicago, and LAX.",
	"München–Köln costs €42",
	"bad\xffutf8 still advances",
	"a, b; c",
	"don't split 'quoted' words",
	"1,000,000 passengers",
}

func TestTokenScannerMatchesTokenize(t *testing.T) {
	for _, in := range scannerInputs {
		want := Tokenize(in)
		var got []Token
		var sc TokenScanner
		for sc.Reset(in); sc.Scan(); {
			got = append(got, sc.Token())
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("TokenScanner(%q) = %v, Tokenize = %v", in, got, want)
		}
		if sc.Scan() {
			t.Errorf("Scan after exhaustion returned true for %q", in)
		}
	}
}

func TestTagAppendMatchesTag(t *testing.T) {
	var tg Tagger
	buf := make([]TaggedToken, 0, 16)
	for _, in := range scannerInputs {
		want := tg.Tag(in)
		buf = tg.TagAppend(buf[:0], in)
		if len(buf) != len(want) {
			t.Fatalf("TagAppend(%q) len %d, Tag len %d", in, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Errorf("TagAppend(%q)[%d] = %+v, want %+v", in, i, buf[i], want[i])
			}
		}
	}
}

func TestTagAppendIsolatesContext(t *testing.T) {
	// A trailing "to" in the buffer must not trigger the TO->VB rule on
	// the first token of the next text.
	var tg Tagger
	buf := tg.TagAppend(nil, "to")
	mark := len(buf)
	buf = tg.TagAppend(buf, "return flight")
	want := tg.Tag("return flight")
	if !reflect.DeepEqual(buf[mark:], want) {
		t.Errorf("appended window %+v, want %+v (context leaked across TagAppend calls)", buf[mark:], want)
	}
}
