package nlp

import "strings"

// PhraseForm classifies the syntactic form of an attribute label, per the
// shallow analysis of Section 2.1 of the paper.
type PhraseForm int

const (
	// FormNounPhrase: "Departure city", "Type of job".
	FormNounPhrase PhraseForm = iota
	// FormPrepPhrase: a preposition followed by a noun phrase — "From
	// city". The NP after the preposition is used for extraction.
	FormPrepPhrase
	// FormNPConjunction: noun phrases joined by and/or — "First name or
	// last name". Extraction is repeated for each NP.
	FormNPConjunction
	// FormVerbPhrase: "Depart from". No reliable extraction query can be
	// formed.
	FormVerbPhrase
	// FormBarePreposition: "From", "To". No noun phrase at all.
	FormBarePreposition
	// FormOther: anything else (sentences, fragments without nouns).
	FormOther
)

// String returns a human-readable form name.
func (f PhraseForm) String() string {
	switch f {
	case FormNounPhrase:
		return "noun-phrase"
	case FormPrepPhrase:
		return "prepositional-phrase"
	case FormNPConjunction:
		return "np-conjunction"
	case FormVerbPhrase:
		return "verb-phrase"
	case FormBarePreposition:
		return "bare-preposition"
	default:
		return "other"
	}
}

// NounPhrase is a chunked noun phrase. Head is the index (into Tokens) of
// the head noun — the noun that gets pluralized when forming extraction
// queries ("class of service" -> "classes of service").
type NounPhrase struct {
	Tokens []TaggedToken
	Head   int
}

// Text returns the normalized (lower-cased, space-joined) phrase text.
func (np NounPhrase) Text() string {
	parts := make([]string, len(np.Tokens))
	for i, t := range np.Tokens {
		parts[i] = t.Norm
	}
	return strings.Join(parts, " ")
}

// HeadWord returns the normalized head noun.
func (np NounPhrase) HeadWord() string {
	if np.Head < 0 || np.Head >= len(np.Tokens) {
		return ""
	}
	return np.Tokens[np.Head].Norm
}

// Plural returns the phrase with its head noun pluralized, e.g.
// "departure city" -> "departure cities", "class of service" ->
// "classes of service". Heads that are already plural are left alone.
func (np NounPhrase) Plural() string {
	parts := make([]string, len(np.Tokens))
	for i, t := range np.Tokens {
		if i == np.Head && t.Tag != NNS && t.Tag != "NNPS" {
			parts[i] = Pluralize(t.Norm)
		} else {
			parts[i] = t.Norm
		}
	}
	return strings.Join(parts, " ")
}

// LabelSyntax is the result of analyzing an attribute label.
type LabelSyntax struct {
	Form   PhraseForm
	Tagged []TaggedToken
	// NPs holds the noun phrase(s) to use for query formulation: one for
	// FormNounPhrase and FormPrepPhrase, one per conjunct for
	// FormNPConjunction, none for the remaining forms.
	NPs []NounPhrase
}

// AnalyzeLabel performs the shallow syntactic analysis of Section 2.1:
// POS-tag the label, then match the tag sequence against the patterns for
// noun phrase, prepositional phrase, and noun-phrase conjunction.
func AnalyzeLabel(label string) LabelSyntax {
	var tg Tagger
	tagged := tg.Tag(label)
	// Strip trailing punctuation (":" etc.) common in form labels.
	for len(tagged) > 0 && tagged[len(tagged)-1].Kind == Punct {
		tagged = tagged[:len(tagged)-1]
	}
	ls := LabelSyntax{Form: FormOther, Tagged: tagged}
	if len(tagged) == 0 {
		return ls
	}

	// Bare preposition(s): "From", "To", "Near".
	if allPreps(tagged) {
		ls.Form = FormBarePreposition
		return ls
	}

	// Prepositional phrase: preposition followed by a noun phrase
	// ("From city", "Within miles of zip").
	if tagged[0].Tag == IN || tagged[0].Tag == TO {
		if np, end := matchNP(tagged, 1); end == len(tagged) {
			ls.Form = FormPrepPhrase
			ls.NPs = []NounPhrase{np}
			return ls
		}
	}

	// Verb phrase: a leading verb ("Depart from", "Search jobs",
	// "Going to").
	if tagged[0].Tag.IsVerb() {
		ls.Form = FormVerbPhrase
		return ls
	}

	// Noun phrase conjunction: NP (CC NP)+ — "First name or last name".
	if nps, ok := matchNPConjunction(tagged); ok && len(nps) > 1 {
		ls.Form = FormNPConjunction
		ls.NPs = nps
		return ls
	}

	// Plain noun phrase spanning the whole label.
	if np, end := matchNP(tagged, 0); end == len(tagged) {
		ls.Form = FormNounPhrase
		ls.NPs = []NounPhrase{np}
		return ls
	}

	// Fall back: if the label contains any noun phrase, expose the first
	// one so extraction can still be attempted (e.g. "Enter departure
	// city" after an imperative verb).
	for i := range tagged {
		if np, end := matchNP(tagged, i); end > i && containsNoun(np.Tokens) {
			ls.NPs = []NounPhrase{np}
			break
		}
	}
	return ls
}

func allPreps(tt []TaggedToken) bool {
	for _, t := range tt {
		if t.Tag != IN && t.Tag != TO && t.Tag != SYM {
			return false
		}
	}
	return true
}

func containsNoun(tt []TaggedToken) bool {
	for _, t := range tt {
		if t.Tag.IsNoun() {
			return true
		}
	}
	return false
}

// matchNP matches the paper's noun-phrase pattern starting at index
// start: optional determiner, optional modifiers (adjectives, nouns,
// gerunds, cardinals), a head noun, and an optional prepositional-phrase
// post-modifier whose object is itself a simple NP. It returns the
// matched phrase and the index just past it; end == start means no match.
func matchNP(tt []TaggedToken, start int) (NounPhrase, int) {
	i := start
	if i < len(tt) && tt[i].Tag == DT {
		i++
	}
	// Modifiers + head: a run of JJ/NN/NNS/NNP/VBG/VBN/CD ending at the
	// last noun in the run.
	runStart := i
	for i < len(tt) && isNPWord(tt[i].Tag) {
		i++
	}
	// The head is the last noun in [runStart, i).
	head := -1
	for j := i - 1; j >= runStart; j-- {
		if tt[j].Tag.IsNoun() {
			head = j
			break
		}
	}
	if head < 0 {
		return NounPhrase{}, start
	}
	// Trim trailing non-noun modifiers after the head ("city new" cannot
	// happen with our pattern since head is last noun; trailing JJ/CD are
	// excluded from the phrase).
	end := head + 1
	np := NounPhrase{Tokens: tt[start:end], Head: head - start}

	// Optional PP post-modifier: IN + simple NP ("class of service",
	// "type of job", "number of passengers").
	if end < len(tt) && (tt[end].Tag == IN || tt[end].Tag == TO) {
		if inner, innerEnd := matchSimpleNP(tt, end+1); innerEnd > end+1 {
			_ = inner
			np = NounPhrase{Tokens: tt[start:innerEnd], Head: head - start}
			end = innerEnd
		}
	}
	return np, end
}

// matchSimpleNP matches determiner + modifiers + head noun with no PP
// recursion.
func matchSimpleNP(tt []TaggedToken, start int) (NounPhrase, int) {
	i := start
	if i < len(tt) && tt[i].Tag == DT {
		i++
	}
	runStart := i
	for i < len(tt) && isNPWord(tt[i].Tag) {
		i++
	}
	head := -1
	for j := i - 1; j >= runStart; j-- {
		if tt[j].Tag.IsNoun() {
			head = j
			break
		}
	}
	if head < 0 {
		return NounPhrase{}, start
	}
	end := head + 1
	return NounPhrase{Tokens: tt[start:end], Head: head - start}, end
}

func isNPWord(t Tag) bool {
	switch t {
	case JJ, NN, NNS, NNP, VBG, VBN, CD:
		return true
	}
	return false
}

// matchNPConjunction matches NP (CC NP)+ covering the whole input.
func matchNPConjunction(tt []TaggedToken) ([]NounPhrase, bool) {
	var nps []NounPhrase
	i := 0
	for {
		np, end := matchSimpleNP(tt, i)
		if end == i {
			return nil, false
		}
		nps = append(nps, np)
		i = end
		if i == len(tt) {
			return nps, true
		}
		if tt[i].Tag != CC && !(tt[i].Kind == Punct && tt[i].Norm == ",") {
			return nil, false
		}
		i++
		// Allow ", and".
		if i < len(tt) && tt[i].Tag == CC {
			i++
		}
	}
}

// ExtractNPList extracts the comma/conjunction-separated list of simple
// noun phrases starting at index start in the tagged sequence. It is the
// completion extractor for set extraction patterns ("... such as Boston,
// Chicago, and LAX"). Extraction stops at the first token that is neither
// part of a simple NP nor a list separator, or at end of sentence.
func ExtractNPList(tt []TaggedToken, start int) []string {
	var out []string
	i := start
	for i < len(tt) {
		np, end := matchEntityNP(tt, i)
		if end == i {
			break
		}
		out = append(out, np)
		i = end
		// Separators: "," / "and" / "or" / ", and".
		sep := false
		if i < len(tt) && tt[i].Kind == Punct && tt[i].Norm == "," {
			i++
			sep = true
		}
		if i < len(tt) && tt[i].Tag == CC {
			i++
			sep = true
		}
		if !sep {
			break
		}
	}
	return out
}

// matchEntityNP matches an entity-like NP in a snippet completion: a run
// of proper nouns, nouns, adjectives and cardinals, preserving original
// casing ("Air Canada", "New York", "LAX", "1995"). A leading determiner
// ("other") ends the list instead, because "and other airlines" closes
// Hearst pattern s4.
func matchEntityNP(tt []TaggedToken, start int) (string, int) {
	i := start
	if i < len(tt) && (tt[i].Tag == DT || tt[i].Norm == "other") {
		return "", start
	}
	var parts []string
	for i < len(tt) {
		t := tt[i]
		if t.Kind == Number || isNPWord(t.Tag) {
			// "such", "other", "many" are list-closing modifiers, not
			// entity words.
			if t.Norm == "such" || t.Norm == "other" || t.Norm == "many" || t.Norm == "more" {
				break
			}
			parts = append(parts, t.Text)
			i++
			continue
		}
		break
	}
	if len(parts) == 0 {
		return "", start
	}
	return strings.Join(parts, " "), i
}
