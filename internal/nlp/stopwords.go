package nlp

// stopwords is the stop list used when turning labels into word vectors
// for label similarity, and when filtering indexing noise.
// Note that "from" and "to" are deliberately NOT stopwords: on query
// interfaces they are the discriminative content of labels like "From"
// and "To city", and label similarity must see them.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "in": true,
	"on": true, "at": true, "by": true, "for": true,
	"with": true, "and": true, "or": true, "is": true,
	"are": true, "be": true, "as": true, "it": true, "its": true,
	"your": true, "please": true, "select": true, "enter": true,
	"choose": true, "any": true, "all": true,
}

// IsStopword reports whether the (lower-cased) word is on the stop list.
func IsStopword(w string) bool { return stopwords[w] }

// ContentWords returns the non-stopword word tokens of text, normalized.
func ContentWords(text string) []string {
	var out []string
	var sc TokenScanner
	for sc.Reset(text); sc.Scan(); {
		if t := sc.Token(); t.Kind != Punct && !IsStopword(t.Norm) {
			out = append(out, t.Norm)
		}
	}
	return out
}
