package nlp

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenizeWords(t *testing.T) {
	toks := Tokenize("Departure city")
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2: %+v", len(toks), toks)
	}
	if toks[0].Text != "Departure" || toks[0].Norm != "departure" {
		t.Errorf("token 0 = %+v", toks[0])
	}
	if toks[1].Norm != "city" {
		t.Errorf("token 1 = %+v", toks[1])
	}
}

func TestTokenizeHyphenApostrophe(t *testing.T) {
	toks := Tokenize("first-class o'hare")
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2: %+v", len(toks), toks)
	}
	if toks[0].Text != "first-class" {
		t.Errorf("token 0 = %q", toks[0].Text)
	}
	if toks[1].Text != "o'hare" {
		t.Errorf("token 1 = %q", toks[1].Text)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"$15,200", []string{"$15,200"}},
		{"3.14 is pi", []string{"3.14", "is", "pi"}},
		{"price: $9.99", []string{"price", ":", "$9.99"}},
		{"1995", []string{"1995"}},
		{"10,000 miles", []string{"10,000", "miles"}},
	}
	for _, c := range cases {
		var got []string
		for _, tok := range Tokenize(c.in) {
			got = append(got, tok.Text)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeNumberKind(t *testing.T) {
	toks := Tokenize("$15,200 price")
	if toks[0].Kind != Number {
		t.Errorf("$15,200 kind = %v, want Number", toks[0].Kind)
	}
	if toks[1].Kind != Word {
		t.Errorf("price kind = %v, want Word", toks[1].Kind)
	}
}

func TestTokenizePunctuation(t *testing.T) {
	toks := Tokenize("cities such as: Boston, Chicago.")
	var puncts int
	for _, tok := range toks {
		if tok.Kind == Punct {
			puncts++
		}
	}
	if puncts != 3 { // ":", ",", "."
		t.Errorf("got %d punct tokens, want 3: %+v", puncts, toks)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "from  Chicago"
	toks := Tokenize(text)
	for _, tok := range toks {
		if got := text[tok.Pos : tok.Pos+len(tok.Text)]; got != tok.Text {
			t.Errorf("offset %d: slice %q != token %q", tok.Pos, got, tok.Text)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("Tokenize(\"\") = %v", toks)
	}
	if toks := Tokenize("   \t\n "); len(toks) != 0 {
		t.Errorf("Tokenize(whitespace) = %v", toks)
	}
}

func TestWords(t *testing.T) {
	got := Words("From City: Boston!")
	want := []string{"from", "city", "boston"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("Airlines such as Delta fly here. Fares start at $99. Book now!")
	if len(got) != 3 {
		t.Fatalf("got %d sentences: %q", len(got), got)
	}
	if !strings.HasPrefix(got[1], "Fares") {
		t.Errorf("sentence 1 = %q", got[1])
	}
}

func TestSentencesKeepsDecimals(t *testing.T) {
	got := Sentences("The price is 3.5 dollars today.")
	if len(got) != 1 {
		t.Errorf("decimal split: got %d sentences %q", len(got), got)
	}
}

func TestIsCapitalized(t *testing.T) {
	if !(Token{Text: "Boston"}).IsCapitalized() {
		t.Error("Boston should be capitalized")
	}
	if (Token{Text: "boston"}).IsCapitalized() {
		t.Error("boston should not be capitalized")
	}
	if (Token{Text: ""}).IsCapitalized() {
		t.Error("empty token should not be capitalized")
	}
}

// Property: tokenizing never loses letter content — every letter in the
// input appears in some token.
func TestTokenizePreservesLetters(t *testing.T) {
	f := func(s string) bool {
		var inLetters, outLetters int
		for _, r := range s {
			if unicode.IsLetter(r) {
				inLetters++
			}
		}
		for _, tok := range Tokenize(s) {
			for _, r := range tok.Text {
				if unicode.IsLetter(r) {
					outLetters++
				}
			}
		}
		return inLetters == outLetters
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: token offsets are strictly increasing and in range.
func TestTokenizeOffsetsMonotonic(t *testing.T) {
	f := func(s string) bool {
		prev := -1
		for _, tok := range Tokenize(s) {
			if tok.Pos <= prev || tok.Pos >= len(s) && len(s) > 0 {
				return false
			}
			prev = tok.Pos
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
