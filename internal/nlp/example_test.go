package nlp_test

import (
	"fmt"

	"webiq/internal/nlp"
)

func ExampleAnalyzeLabel() {
	for _, label := range []string{"Departure city", "From", "Depart from", "Class of service"} {
		ls := nlp.AnalyzeLabel(label)
		fmt.Printf("%-18s %s\n", label, ls.Form)
	}
	// Output:
	// Departure city     noun-phrase
	// From               bare-preposition
	// Depart from        verb-phrase
	// Class of service   noun-phrase
}

func ExampleNounPhrase_Plural() {
	ls := nlp.AnalyzeLabel("Class of service")
	fmt.Println(ls.NPs[0].Plural())
	// Output:
	// classes of service
}

func ExampleTokenize() {
	for _, t := range nlp.Tokenize("Price: $15,200!") {
		fmt.Printf("%q %v\n", t.Text, t.Kind == nlp.Number)
	}
	// Output:
	// "Price" false
	// ":" false
	// "$15,200" true
	// "!" false
}

func ExamplePluralize() {
	fmt.Println(nlp.Pluralize("departure city"))
	fmt.Println(nlp.Pluralize("child"))
	// Output:
	// departure cities
	// children
}

func ExampleExtractNPList() {
	var tg nlp.Tagger
	tagged := tg.Tag("Boston, Chicago, and LAX are served.")
	fmt.Println(nlp.ExtractNPList(tagged, 0))
	// Output:
	// [Boston Chicago LAX]
}
