package nlp

import "testing"

const benchSentence = "Find cheap flights from departure cities such as Boston, " +
	"Chicago, and New York to over 1,200 destinations for $15,200 or less (one-way)."

const benchLabel = "Class of service"

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(benchSentence)
	}
}

func BenchmarkTokenScanner(b *testing.B) {
	b.ReportAllocs()
	var sc TokenScanner
	for i := 0; i < b.N; i++ {
		n := 0
		for sc.Reset(benchSentence); sc.Scan(); {
			n++
		}
		if n == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkWords(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Words(benchSentence)
	}
}

func BenchmarkTag(b *testing.B) {
	b.ReportAllocs()
	var tg Tagger
	for i := 0; i < b.N; i++ {
		tg.Tag(benchSentence)
	}
}

func BenchmarkTagAppend(b *testing.B) {
	b.ReportAllocs()
	var tg Tagger
	var buf []TaggedToken
	for i := 0; i < b.N; i++ {
		buf = tg.TagAppend(buf[:0], benchSentence)
	}
}

func BenchmarkAnalyzeLabel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AnalyzeLabel(benchLabel)
	}
}

func BenchmarkTermTableIntern(b *testing.B) {
	b.ReportAllocs()
	tab := NewTermTable()
	words := Words(benchSentence)
	for i := 0; i < b.N; i++ {
		for _, w := range words {
			tab.Intern(w)
		}
	}
}
