//go:build race

package nlp

// raceEnabled reports whether the race detector is on: its
// instrumentation adds allocations, so allocation-count assertions
// are skipped under -race.
const raceEnabled = true
