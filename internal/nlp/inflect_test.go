package nlp

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPluralize(t *testing.T) {
	cases := map[string]string{
		"city":           "cities",
		"author":         "authors",
		"class":          "classes",
		"child":          "children",
		"company":        "companies",
		"bus":            "buses",
		"box":            "boxes",
		"church":         "churches",
		"auto":           "autos",
		"tomato":         "tomatoes",
		"day":            "days",
		"departure city": "departure cities",
		"job category":   "job categories",
		"series":         "series",
		"person":         "people",
		"":               "",
	}
	for in, want := range cases {
		if got := Pluralize(in); got != want {
			t.Errorf("Pluralize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSingularize(t *testing.T) {
	cases := map[string]string{
		"cities":    "city",
		"authors":   "author",
		"classes":   "class",
		"children":  "child",
		"buses":     "bus",
		"companies": "company",
		"status":    "status",
		"class":     "class",
		"basis":     "basi", // -is guarded: "basis" keeps its form
		"series":    "series",
		"people":    "person",
		"days":      "day",
	}
	// Correct the -is expectation: Singularize must not strip "is".
	cases["basis"] = "basis"
	for in, want := range cases {
		if got := Singularize(in); got != want {
			t.Errorf("Singularize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPluralizeSingularizeRoundTrip(t *testing.T) {
	words := []string{
		"city", "author", "publisher", "company", "airline", "carrier",
		"passenger", "category", "box", "church", "day", "make", "model",
		"bedroom", "county", "skill", "position",
	}
	for _, w := range words {
		if got := Singularize(Pluralize(w)); got != w {
			t.Errorf("round trip %q -> %q -> %q", w, Pluralize(w), got)
		}
	}
}

func TestLooksPlural(t *testing.T) {
	for _, w := range []string{"cities", "authors", "children", "people", "series"} {
		if !LooksPlural(w) {
			t.Errorf("LooksPlural(%q) = false", w)
		}
	}
	for _, w := range []string{"city", "class", "status", "basis", "child"} {
		if LooksPlural(w) {
			t.Errorf("LooksPlural(%q) = true", w)
		}
	}
}

// Property: for lower-case alphabetic words, Pluralize output always
// LooksPlural (invariant nouns excepted by construction of the check).
func TestPluralizeProducesPlural(t *testing.T) {
	f := func(raw string) bool {
		w := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' {
				return r
			}
			return -1
		}, strings.ToLower(raw))
		if len(w) < 2 {
			return true
		}
		if invariantNouns[w] {
			return true
		}
		return LooksPlural(Pluralize(w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPluralizePreservesPhrasePrefix(t *testing.T) {
	got := Pluralize("type of job")
	// Head-of-phrase pluralization is the chunker's job; plain Pluralize
	// works on the last word.
	if got != "type of jobs" {
		t.Errorf("Pluralize(\"type of job\") = %q", got)
	}
}
