package nlp

import "strings"

// TaggedToken is a token together with its part-of-speech tag.
type TaggedToken struct {
	Token
	Tag Tag
}

// condKind enumerates the contextual conditions a transformation rule may
// test, following the rule templates of Brill's tagger.
type condKind int

const (
	condPrevTag condKind = iota
	condNextTag
	condPrevWord
	condNextWord
	condPrevTagIsVerb
	condNextTagIsNoun
)

// rule is a Brill-style contextual transformation: if a token currently
// carries From and the condition holds, retag it To — provided the
// lexicon admits To for that word.
type rule struct {
	From Tag
	To   Tag
	Cond condKind
	Arg  string // word or tag argument, depending on Cond
}

// contextualRules is the transformation-rule list applied in order, once,
// after initial tagging. The list is small because interface labels and
// corpus snippets are short, syntactically simple strings; each rule
// addresses an ambiguity class that actually occurs in that material.
var contextualRules = []rule{
	// "to depart", "to return": base verbs after the infinitive marker.
	{From: NN, To: VB, Cond: condPrevTag, Arg: string(TO)},
	// "return from", "check in": noun-lexicon words act as verbs before a
	// bare preposition at the start of a verb-phrase label only when they
	// head the phrase; handled by the chunker instead, so no rule here.

	// Verb forms acting as noun modifiers: "used cars", "preferred
	// airlines" keep VBN/JJ, but a base verb directly before a noun in a
	// label is a modifier ("search radius" stays NN via lexicon order).
	{From: VB, To: NN, Cond: condNextTagIsNoun},

	// "is located", "are offered": past participles after a copula.
	{From: VBD, To: VBN, Cond: condPrevTagIsVerb},

	// Determiner/preposition ambiguity of "that": preposition before a
	// determiner or pronoun ("that the ..."), determiner otherwise.
	{From: DT, To: IN, Cond: condNextTag, Arg: string(DT)},

	// "one way": cardinal before noun behaves as a modifier; keep CD —
	// the NP pattern accepts CD modifiers, so no rule needed.
}

// Tagger assigns part-of-speech tags using a lexicon for the initial pass
// and Brill-style contextual transformation rules for correction. The
// zero value is ready to use.
type Tagger struct{}

// Tag tokenizes text and returns the tagged tokens.
func (tg Tagger) Tag(text string) []TaggedToken {
	return tg.TagTokens(Tokenize(text))
}

// TagTokens tags an already-tokenized input.
func (tg Tagger) TagTokens(tokens []Token) []TaggedToken {
	out := make([]TaggedToken, len(tokens))
	for i, t := range tokens {
		out[i] = TaggedToken{Token: t, Tag: initialTag(t)}
	}
	applyRules(out)
	return out
}

// TagAppend tokenizes and tags text, appending the result to dst and
// returning the extended slice. It produces exactly the tokens Tag
// would, but reuses dst's capacity, so a caller tagging many snippets
// can hold one buffer and pass dst[:0] each time. Contextual rules see
// only the tokens of text, never earlier contents of dst.
func (tg Tagger) TagAppend(dst []TaggedToken, text string) []TaggedToken {
	start := len(dst)
	var sc TokenScanner
	for sc.Reset(text); sc.Scan(); {
		t := sc.Token()
		dst = append(dst, TaggedToken{Token: t, Tag: initialTag(t)})
	}
	applyRules(dst[start:])
	return dst
}

// initialTag assigns the most likely tag from the lexicon, falling back
// to morphological heuristics for unknown words.
func initialTag(t Token) Tag {
	switch t.Kind {
	case Number:
		return CD
	case Punct:
		return SYM
	}
	if tags := lexicon[t.Norm]; len(tags) > 0 {
		return tags[0]
	}
	return morphTag(t)
}

// morphTag guesses the tag of an out-of-lexicon word from its shape, in
// the manner of Brill's lexical rules.
func morphTag(t Token) Tag {
	w := t.Norm
	switch {
	case strings.HasSuffix(w, "ly") && len(w) > 3:
		return RB
	case strings.HasSuffix(w, "ing") && len(w) > 4:
		return VBG
	case strings.HasSuffix(w, "ed") && len(w) > 3:
		return VBN
	case strings.HasSuffix(w, "ous") || strings.HasSuffix(w, "ful") ||
		strings.HasSuffix(w, "ive") || strings.HasSuffix(w, "able") ||
		strings.HasSuffix(w, "ible") || strings.HasSuffix(w, "al") && len(w) > 4:
		return JJ
	case LooksPlural(w):
		return NNS
	case t.IsCapitalized():
		return NNP
	default:
		return NN
	}
}

// applyRules runs the contextual rules over the sequence in order.
func applyRules(tt []TaggedToken) {
	for i := range tt {
		for _, r := range contextualRules {
			if tt[i].Tag != r.From {
				continue
			}
			if !ruleMatches(tt, i, r) {
				continue
			}
			if tt[i].Kind == Word && !allowsTag(tt[i].Norm, r.To) {
				continue
			}
			tt[i].Tag = r.To
		}
	}
}

func ruleMatches(tt []TaggedToken, i int, r rule) bool {
	switch r.Cond {
	case condPrevTag:
		return i > 0 && tt[i-1].Tag == Tag(r.Arg)
	case condNextTag:
		return i+1 < len(tt) && tt[i+1].Tag == Tag(r.Arg)
	case condPrevWord:
		return i > 0 && tt[i-1].Norm == r.Arg
	case condNextWord:
		return i+1 < len(tt) && tt[i+1].Norm == r.Arg
	case condPrevTagIsVerb:
		return i > 0 && tt[i-1].Tag.IsVerb()
	case condNextTagIsNoun:
		return i+1 < len(tt) && tt[i+1].Tag.IsNoun()
	}
	return false
}
