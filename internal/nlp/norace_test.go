//go:build !race

package nlp

const raceEnabled = false
