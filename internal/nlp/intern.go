package nlp

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// NoTerm is the sentinel ID a frozen table returns for a term it has
// never interned. It is never assigned to a real term (a table refuses
// to grow that large), so lookups against an index treat it like any
// other absent term: no postings, matches nothing.
const NoTerm uint32 = ^uint32(0)

// TermTable interns token strings into dense uint32 term IDs. IDs are
// assigned in first-seen order starting at 0 and never change once
// assigned, so a table can be shared by an index and the queries
// compiled against it. The zero value is NOT ready to use; call
// NewTermTable.
//
// All methods are safe for concurrent use. The common case — looking up
// a term that is already interned — takes only a read lock, so parallel
// readers (query compilation, value folding across matcher workers) do
// not serialize on each other. A table that will never grow again can
// be frozen (see Freeze), after which every read is lock-free.
type TermTable struct {
	mu     sync.RWMutex
	ids    map[string]uint32
	terms  []string
	frozen atomic.Bool
}

// NewTermTable returns an empty table.
func NewTermTable() *TermTable {
	return &TermTable{ids: make(map[string]uint32)}
}

// NewFrozenTermTable reconstructs a frozen table from its flattened
// form (see Flatten): offsets[i]..offsets[i+1] spans term i in blob.
// Term strings are substrings of blob — no per-term copies — so a blob
// backed by a memory-mapped snapshot is served in place. The layout is
// validated; a malformed flattening is refused with an error, never a
// panic.
func NewFrozenTermTable(offsets []uint32, blob string) (*TermTable, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("nlp: frozen term table: empty offset table")
	}
	n := len(offsets) - 1
	if uint64(n) >= uint64(NoTerm) {
		return nil, fmt.Errorf("nlp: frozen term table: %d terms overflow the ID space", n)
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("nlp: frozen term table: first offset %d, want 0", offsets[0])
	}
	if uint64(offsets[n]) != uint64(len(blob)) {
		return nil, fmt.Errorf("nlp: frozen term table: final offset %d, want blob length %d", offsets[n], len(blob))
	}
	t := &TermTable{ids: make(map[string]uint32, n), terms: make([]string, n)}
	for i := 0; i < n; i++ {
		if offsets[i] > offsets[i+1] {
			return nil, fmt.Errorf("nlp: frozen term table: offsets not monotonic at term %d", i)
		}
		s := blob[offsets[i]:offsets[i+1]]
		if _, dup := t.ids[s]; dup {
			return nil, fmt.Errorf("nlp: frozen term table: duplicate term %q", s)
		}
		t.terms[i] = s
		t.ids[s] = uint32(i)
	}
	t.frozen.Store(true)
	return t, nil
}

// Flatten returns the table's persistent form: a dense offset table and
// a contiguous string blob, where offsets[i]..offsets[i+1] spans term i.
// limit caps how many terms are emitted (a table that grew past the
// state being persisted — query terms interned after an index was
// built — flattens only its first limit terms); limit < 0 means all.
func (t *TermTable) Flatten(limit int) (offsets []uint32, blob []byte) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.terms)
	if limit >= 0 && limit < n {
		n = limit
	}
	offsets = make([]uint32, n+1)
	total := 0
	for i := 0; i < n; i++ {
		total += len(t.terms[i])
	}
	blob = make([]byte, 0, total)
	for i := 0; i < n; i++ {
		offsets[i] = uint32(len(blob))
		blob = append(blob, t.terms[i]...)
	}
	offsets[n] = uint32(len(blob))
	return offsets, blob
}

// Freeze flips the table into its read-only mode: every subsequent read
// is lock-free, and Intern of a never-seen term returns NoTerm instead
// of growing the table. Freezing is irreversible and safe to race with
// concurrent Interns — a writer that slipped past the frozen check
// re-checks under the write lock, so no mutation lands after Freeze
// returns.
func (t *TermTable) Freeze() {
	t.mu.Lock()
	t.frozen.Store(true)
	t.mu.Unlock()
}

// Frozen reports whether the table has been frozen.
func (t *TermTable) Frozen() bool { return t.frozen.Load() }

// Intern returns the ID of s, assigning the next dense ID on first
// sight. On a frozen table an unknown term returns NoTerm.
func (t *TermTable) Intern(s string) uint32 {
	if t.frozen.Load() {
		if id, ok := t.ids[s]; ok {
			return id
		}
		return NoTerm
	}
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen.Load() {
		// Frozen while we were waiting for the write lock: behave like
		// the lock-free frozen path, never mutate.
		if id, ok := t.ids[s]; ok {
			return id
		}
		return NoTerm
	}
	if id, ok := t.ids[s]; ok {
		return id
	}
	id = uint32(len(t.terms))
	t.ids[s] = id
	t.terms = append(t.terms, s)
	return id
}

// InternBytes is Intern for a byte slice. When the term is already
// interned — the steady state — no string is allocated: the map lookup
// uses the compiler's zero-copy string(b) key optimization. Only a
// first sighting copies b into a new string. On a frozen table an
// unknown term returns NoTerm.
func (t *TermTable) InternBytes(b []byte) uint32 {
	if t.frozen.Load() {
		if id, ok := t.ids[string(b)]; ok {
			return id
		}
		return NoTerm
	}
	t.mu.RLock()
	id, ok := t.ids[string(b)]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen.Load() {
		if id, ok := t.ids[string(b)]; ok {
			return id
		}
		return NoTerm
	}
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	s := string(b)
	id = uint32(len(t.terms))
	t.ids[s] = id
	t.terms = append(t.terms, s)
	return id
}

// Lookup returns the ID of s without interning it. ok is false when s
// has never been interned.
func (t *TermTable) Lookup(s string) (id uint32, ok bool) {
	if t.frozen.Load() {
		id, ok = t.ids[s]
		return id, ok
	}
	t.mu.RLock()
	id, ok = t.ids[s]
	t.mu.RUnlock()
	return id, ok
}

// LookupBytes is Lookup for a byte slice; it never allocates.
func (t *TermTable) LookupBytes(b []byte) (id uint32, ok bool) {
	if t.frozen.Load() {
		id, ok = t.ids[string(b)]
		return id, ok
	}
	t.mu.RLock()
	id, ok = t.ids[string(b)]
	t.mu.RUnlock()
	return id, ok
}

// Term returns the string for an ID previously returned by Intern.
// It panics if id was never assigned, like an out-of-range slice index.
func (t *TermTable) Term(id uint32) string {
	if t.frozen.Load() {
		return t.terms[id]
	}
	t.mu.RLock()
	s := t.terms[id]
	t.mu.RUnlock()
	return s
}

// Len returns the number of distinct terms interned.
func (t *TermTable) Len() int {
	if t.frozen.Load() {
		return len(t.terms)
	}
	t.mu.RLock()
	n := len(t.terms)
	t.mu.RUnlock()
	return n
}
