package nlp

import "sync"

// TermTable interns token strings into dense uint32 term IDs. IDs are
// assigned in first-seen order starting at 0 and never change once
// assigned, so a table can be shared by an index and the queries
// compiled against it. The zero value is NOT ready to use; call
// NewTermTable.
//
// All methods are safe for concurrent use. The common case — looking up
// a term that is already interned — takes only a read lock, so parallel
// readers (query compilation, value folding across matcher workers) do
// not serialize on each other.
type TermTable struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	terms []string
}

// NewTermTable returns an empty table.
func NewTermTable() *TermTable {
	return &TermTable{ids: make(map[string]uint32)}
}

// Intern returns the ID of s, assigning the next dense ID on first
// sight.
func (t *TermTable) Intern(s string) uint32 {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id = uint32(len(t.terms))
	t.ids[s] = id
	t.terms = append(t.terms, s)
	return id
}

// InternBytes is Intern for a byte slice. When the term is already
// interned — the steady state — no string is allocated: the map lookup
// uses the compiler's zero-copy string(b) key optimization. Only a
// first sighting copies b into a new string.
func (t *TermTable) InternBytes(b []byte) uint32 {
	t.mu.RLock()
	id, ok := t.ids[string(b)]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	s := string(b)
	id = uint32(len(t.terms))
	t.ids[s] = id
	t.terms = append(t.terms, s)
	return id
}

// Lookup returns the ID of s without interning it. ok is false when s
// has never been interned.
func (t *TermTable) Lookup(s string) (id uint32, ok bool) {
	t.mu.RLock()
	id, ok = t.ids[s]
	t.mu.RUnlock()
	return id, ok
}

// LookupBytes is Lookup for a byte slice; it never allocates.
func (t *TermTable) LookupBytes(b []byte) (id uint32, ok bool) {
	t.mu.RLock()
	id, ok = t.ids[string(b)]
	t.mu.RUnlock()
	return id, ok
}

// Term returns the string for an ID previously returned by Intern.
// It panics if id was never assigned, like an out-of-range slice index.
func (t *TermTable) Term(id uint32) string {
	t.mu.RLock()
	s := t.terms[id]
	t.mu.RUnlock()
	return s
}

// Len returns the number of distinct terms interned.
func (t *TermTable) Len() int {
	t.mu.RLock()
	n := len(t.terms)
	t.mu.RUnlock()
	return n
}
