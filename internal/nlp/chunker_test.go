package nlp

import (
	"reflect"
	"testing"
)

func TestAnalyzeLabelNounPhrase(t *testing.T) {
	ls := AnalyzeLabel("Departure city")
	if ls.Form != FormNounPhrase {
		t.Fatalf("form = %v, want noun-phrase", ls.Form)
	}
	if len(ls.NPs) != 1 || ls.NPs[0].Text() != "departure city" {
		t.Fatalf("NPs = %+v", ls.NPs)
	}
	if ls.NPs[0].HeadWord() != "city" {
		t.Errorf("head = %q, want city", ls.NPs[0].HeadWord())
	}
	if ls.NPs[0].Plural() != "departure cities" {
		t.Errorf("plural = %q", ls.NPs[0].Plural())
	}
}

func TestAnalyzeLabelPPPostmodifier(t *testing.T) {
	ls := AnalyzeLabel("Class of service")
	if ls.Form != FormNounPhrase {
		t.Fatalf("form = %v, want noun-phrase", ls.Form)
	}
	np := ls.NPs[0]
	if np.Text() != "class of service" {
		t.Errorf("NP = %q", np.Text())
	}
	if np.HeadWord() != "class" {
		t.Errorf("head = %q, want class", np.HeadWord())
	}
	if np.Plural() != "classes of service" {
		t.Errorf("plural = %q, want classes of service", np.Plural())
	}
}

func TestAnalyzeLabelPrepPhrase(t *testing.T) {
	ls := AnalyzeLabel("From city")
	if ls.Form != FormPrepPhrase {
		t.Fatalf("form = %v, want prepositional-phrase", ls.Form)
	}
	if len(ls.NPs) != 1 || ls.NPs[0].Text() != "city" {
		t.Errorf("NPs = %+v", ls.NPs)
	}
}

func TestAnalyzeLabelBarePreposition(t *testing.T) {
	for _, label := range []string{"From", "To", "from:"} {
		ls := AnalyzeLabel(label)
		if ls.Form != FormBarePreposition {
			t.Errorf("AnalyzeLabel(%q).Form = %v, want bare-preposition", label, ls.Form)
		}
		if len(ls.NPs) != 0 {
			t.Errorf("AnalyzeLabel(%q) found NPs %+v", label, ls.NPs)
		}
	}
}

func TestAnalyzeLabelVerbPhrase(t *testing.T) {
	ls := AnalyzeLabel("Depart from")
	if ls.Form != FormVerbPhrase {
		t.Errorf("form = %v, want verb-phrase", ls.Form)
	}
}

func TestAnalyzeLabelConjunction(t *testing.T) {
	ls := AnalyzeLabel("First name or last name")
	if ls.Form != FormNPConjunction {
		t.Fatalf("form = %v, want np-conjunction", ls.Form)
	}
	var texts []string
	for _, np := range ls.NPs {
		texts = append(texts, np.Text())
	}
	want := []string{"first name", "last name"}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("NPs = %v, want %v", texts, want)
	}
}

func TestAnalyzeLabelTypeOfJob(t *testing.T) {
	ls := AnalyzeLabel("Type of job")
	if ls.Form != FormNounPhrase {
		t.Fatalf("form = %v", ls.Form)
	}
	if ls.NPs[0].Plural() != "types of job" {
		t.Errorf("plural = %q", ls.NPs[0].Plural())
	}
}

func TestAnalyzeLabelTrailingColon(t *testing.T) {
	ls := AnalyzeLabel("Airline:")
	if ls.Form != FormNounPhrase || ls.NPs[0].Text() != "airline" {
		t.Errorf("form=%v NPs=%+v", ls.Form, ls.NPs)
	}
}

func TestAnalyzeLabelEmpty(t *testing.T) {
	ls := AnalyzeLabel("")
	if ls.Form != FormOther || len(ls.NPs) != 0 {
		t.Errorf("empty label: %+v", ls)
	}
}

func TestAnalyzeLabelImperativeFallback(t *testing.T) {
	// A verb phrase with an embedded NP still exposes the NP for
	// best-effort extraction.
	ls := AnalyzeLabel("Depart from")
	if ls.Form != FormVerbPhrase {
		t.Fatalf("form = %v", ls.Form)
	}
}

func TestExtractNPList(t *testing.T) {
	var tg Tagger
	tt := tg.Tag("Boston, Chicago, and LAX. Other text follows.")
	got := ExtractNPList(tt, 0)
	want := []string{"Boston", "Chicago", "LAX"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractNPList = %v, want %v", got, want)
	}
}

func TestExtractNPListMultiword(t *testing.T) {
	var tg Tagger
	tt := tg.Tag("Air Canada, American and Delta serve this route")
	got := ExtractNPList(tt, 0)
	want := []string{"Air Canada", "American", "Delta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractNPList = %v, want %v", got, want)
	}
}

func TestExtractNPListStopsAtOther(t *testing.T) {
	var tg Tagger
	// Pattern s4: "NP1, ..., NPn, and other Ls" — "other airlines" must
	// not be extracted as an instance.
	tt := tg.Tag("Delta, United, and other airlines")
	got := ExtractNPList(tt, 0)
	want := []string{"Delta", "United"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractNPList = %v, want %v", got, want)
	}
}

func TestExtractNPListEmpty(t *testing.T) {
	var tg Tagger
	tt := tg.Tag("is from the")
	if got := ExtractNPList(tt, 0); len(got) != 0 {
		t.Errorf("ExtractNPList on non-NP text = %v", got)
	}
}

func TestPhraseFormString(t *testing.T) {
	forms := []PhraseForm{FormNounPhrase, FormPrepPhrase, FormNPConjunction,
		FormVerbPhrase, FormBarePreposition, FormOther}
	seen := map[string]bool{}
	for _, f := range forms {
		s := f.String()
		if s == "" || seen[s] {
			t.Errorf("form %d has bad/duplicate string %q", f, s)
		}
		seen[s] = true
	}
}
