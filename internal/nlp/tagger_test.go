package nlp

import "testing"

func tagsOf(text string) []Tag {
	var tg Tagger
	tt := tg.Tag(text)
	out := make([]Tag, len(tt))
	for i, t := range tt {
		out[i] = t.Tag
	}
	return out
}

func TestTagDepartureCity(t *testing.T) {
	got := tagsOf("Departure city")
	if len(got) != 2 || !got[0].IsNoun() || got[1] != NN {
		t.Errorf("tags = %v", got)
	}
}

func TestTagFromCity(t *testing.T) {
	got := tagsOf("From city")
	if got[0] != IN || got[1] != NN {
		t.Errorf("tags = %v, want [IN NN]", got)
	}
}

func TestTagDepartFrom(t *testing.T) {
	got := tagsOf("Depart from")
	if got[0] != VB || got[1] != IN {
		t.Errorf("tags = %v, want [VB IN]", got)
	}
}

func TestTagReturnDate(t *testing.T) {
	// "return" must act as a noun modifier before "date".
	got := tagsOf("Return date")
	if got[0] != NN || got[1] != NN {
		t.Errorf("tags = %v, want [NN NN]", got)
	}
}

func TestTagToReturn(t *testing.T) {
	// After infinitive "to", "return" is a verb.
	got := tagsOf("to return")
	if got[0] != TO || got[1] != VB {
		t.Errorf("tags = %v, want [TO VB]", got)
	}
}

func TestTagClassOfService(t *testing.T) {
	got := tagsOf("Class of service")
	want := []Tag{NN, IN, NN}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tags = %v, want %v", got, want)
			break
		}
	}
}

func TestTagConjunctionLabel(t *testing.T) {
	got := tagsOf("First name or last name")
	want := []Tag{JJ, NN, CC, JJ, NN}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tags = %v, want %v", got, want)
		}
	}
}

func TestTagNumbersAndPunct(t *testing.T) {
	got := tagsOf("price: $15,200")
	if got[0] != NN || got[1] != SYM || got[2] != CD {
		t.Errorf("tags = %v, want [NN SYM CD]", got)
	}
}

func TestTagUnknownCapitalized(t *testing.T) {
	got := tagsOf("Mitsubishi")
	if got[0] != NNP {
		t.Errorf("unknown capitalized word tagged %v, want NNP", got[0])
	}
}

func TestTagMorphology(t *testing.T) {
	cases := map[string]Tag{
		"quickly":    RB,
		"remodeling": VBG,
		"renovated":  VBN,
		"spacious":   JJ,
		"gadgets":    NNS,
		"widget":     NN,
	}
	for w, want := range cases {
		if got := tagsOf(w)[0]; got != want {
			t.Errorf("tag(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestTagCopulaSentence(t *testing.T) {
	got := tagsOf("the author of the book is")
	want := []Tag{DT, NN, IN, DT, NN, VBZ}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tags = %v, want %v", got, want)
		}
	}
}

func TestTagEmpty(t *testing.T) {
	if got := tagsOf(""); len(got) != 0 {
		t.Errorf("tags of empty = %v", got)
	}
}

func TestTagLexiconSecondaryAdmissibility(t *testing.T) {
	// A contextual rule can only retag to a tag the lexicon admits: "the
	// city is" must keep "city" a noun even after TO-like contexts.
	got := tagsOf("to city")
	if got[1] != NN {
		t.Errorf("to city = %v, want city NN (lexicon blocks VB)", got)
	}
}

func TestTagPrepositionInventory(t *testing.T) {
	for _, w := range []string{"from", "of", "in", "near", "within", "between", "per", "via"} {
		if got := tagsOf(w)[0]; got != IN {
			t.Errorf("tag(%q) = %v, want IN", w, got)
		}
	}
}

func TestTagConjunctions(t *testing.T) {
	got := tagsOf("make and model")
	if got[1] != CC {
		t.Errorf("tags = %v, want CC for and", got)
	}
}

func TestTagHyphenatedUnknown(t *testing.T) {
	got := tagsOf("well-maintained property")
	if len(got) != 2 {
		t.Fatalf("tags = %v", got)
	}
	if !got[1].IsNoun() {
		t.Errorf("property tagged %v", got[1])
	}
}

func TestTagIsNounIsVerbHelpers(t *testing.T) {
	if !NN.IsNoun() || !NNS.IsNoun() || !NNP.IsNoun() {
		t.Error("noun tags not recognized")
	}
	if JJ.IsNoun() || IN.IsNoun() {
		t.Error("non-nouns recognized as nouns")
	}
	for _, v := range []Tag{VB, VBZ, VBG, VBN, VBD} {
		if !v.IsVerb() {
			t.Errorf("%v not a verb", v)
		}
	}
	if NN.IsVerb() {
		t.Error("NN recognized as verb")
	}
}
