package unify

import (
	"strings"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/schema"
)

func smallResult() (*schema.Dataset, *matcher.Result) {
	ds := &schema.Dataset{
		Domain: "airfare",
		Interfaces: []*schema.Interface{
			{ID: "i0", Attributes: []*schema.Attribute{
				{ID: "i0/a", InterfaceID: "i0", Label: "Airline",
					Instances: []string{"Delta", "United"}},
				{ID: "i0/b", InterfaceID: "i0", Label: "From city"},
			}},
			{ID: "i1", Attributes: []*schema.Attribute{
				{ID: "i1/a", InterfaceID: "i1", Label: "Carrier",
					Instances: []string{"Aer Lingus", "delta"}},
				{ID: "i1/b", InterfaceID: "i1", Label: "From city",
					Acquired: []string{"Boston"}},
			}},
			{ID: "i2", Attributes: []*schema.Attribute{
				{ID: "i2/a", InterfaceID: "i2", Label: "Airline"},
			}},
		},
	}
	res := &matcher.Result{Clusters: [][]string{
		{"i0/a", "i1/a", "i2/a"},
		{"i0/b", "i1/b"},
	}}
	return ds, res
}

func TestBuildRepresentativeLabel(t *testing.T) {
	ds, res := smallResult()
	u := Build(ds, res)
	if len(u.Attributes) != 2 {
		t.Fatalf("attributes = %+v", u.Attributes)
	}
	// "Airline" occurs twice, "Carrier" once.
	if u.Attributes[0].Label != "Airline" {
		t.Errorf("label = %q, want Airline", u.Attributes[0].Label)
	}
}

func TestBuildInstanceUnionDedup(t *testing.T) {
	ds, res := smallResult()
	u := Build(ds, res)
	inst := u.Attributes[0].Instances
	// Delta appears in both sources (case-folded) and must appear once.
	count := 0
	for _, v := range inst {
		if strings.EqualFold(v, "delta") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("delta deduplication failed: %v", inst)
	}
	// Aer Lingus and United both survive.
	joined := strings.Join(inst, "|")
	if !strings.Contains(joined, "Aer Lingus") || !strings.Contains(joined, "United") {
		t.Errorf("union incomplete: %v", inst)
	}
}

func TestBuildAcquiredIncluded(t *testing.T) {
	ds, res := smallResult()
	u := Build(ds, res)
	city := u.Attributes[1]
	found := false
	for _, v := range city.Instances {
		if v == "Boston" {
			found = true
		}
	}
	if !found {
		t.Errorf("acquired instance missing from unified attribute: %v", city.Instances)
	}
}

func TestBuildCoverageOrdering(t *testing.T) {
	ds, res := smallResult()
	u := Build(ds, res)
	// Airline covers 3/3 interfaces, From city 2/3.
	if u.Attributes[0].Coverage <= u.Attributes[1].Coverage {
		t.Errorf("coverage ordering wrong: %+v", u.Attributes)
	}
	if u.Attributes[0].Coverage != 1.0 {
		t.Errorf("airline coverage = %v", u.Attributes[0].Coverage)
	}
}

func TestBuildFullDomain(t *testing.T) {
	dom := kb.DomainByKey("auto")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	res := matcher.New(matcher.DefaultConfig()).Match(ds)
	u := Build(ds, res)
	if len(u.Attributes) == 0 {
		t.Fatal("empty unified interface")
	}
	// The unified interface should be far smaller than the sum of source
	// attributes (that is the point) but at least as large as the
	// richest source interface.
	total := len(ds.AllAttributes())
	if len(u.Attributes) >= total/2 {
		t.Errorf("unified has %d attributes of %d total — matching did not consolidate", len(u.Attributes), total)
	}
	maxSrc := 0
	for _, ifc := range ds.Interfaces {
		if len(ifc.Attributes) > maxSrc {
			maxSrc = len(ifc.Attributes)
		}
	}
	if len(u.Attributes) < maxSrc {
		t.Errorf("unified has %d attributes, fewer than richest source (%d)", len(u.Attributes), maxSrc)
	}
	// Every source attribute is covered by exactly one unified attribute.
	covered := map[string]int{}
	for _, ua := range u.Attributes {
		for _, id := range ua.Members {
			covered[id]++
		}
	}
	for _, a := range ds.AllAttributes() {
		if covered[a.ID] != 1 {
			t.Errorf("attribute %s covered %d times", a.ID, covered[a.ID])
		}
	}
}

func TestAsInterface(t *testing.T) {
	ds, res := smallResult()
	u := Build(ds, res)
	ifc := u.AsInterface("unified")
	if len(ifc.Attributes) != len(u.Attributes) {
		t.Fatalf("attribute count mismatch")
	}
	seen := map[string]bool{}
	for _, a := range ifc.Attributes {
		if seen[a.ID] {
			t.Errorf("duplicate ID %s", a.ID)
		}
		seen[a.ID] = true
		if a.InterfaceID != "unified" {
			t.Errorf("attr %s has interface %s", a.ID, a.InterfaceID)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	u := Build(&schema.Dataset{}, &matcher.Result{})
	if len(u.Attributes) != 0 {
		t.Errorf("empty input gave %+v", u.Attributes)
	}
}

func TestRepresentativeLabelTieBreak(t *testing.T) {
	// Equal counts: lexicographically smaller label wins, for
	// determinism.
	got := representativeLabel(map[string]int{"Zeta": 1, "Alpha": 1})
	if got != "Alpha" {
		t.Errorf("tie-break label = %q, want Alpha", got)
	}
}

func TestAsInterfaceManyAttributes(t *testing.T) {
	u := &UnifiedInterface{Domain: "t"}
	for i := 0; i < 15; i++ {
		u.Attributes = append(u.Attributes, &UnifiedAttribute{Label: "L"})
	}
	ifc := u.AsInterface("u")
	seen := map[string]bool{}
	for _, a := range ifc.Attributes {
		if seen[a.ID] {
			t.Fatalf("duplicate ID %q with >10 attributes", a.ID)
		}
		seen[a.ID] = true
	}
}
