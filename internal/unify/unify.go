// Package unify builds a uniform query interface from matched source
// interfaces — the downstream step the paper's introduction motivates
// ("once the interfaces have been matched, approaches such as [27] can
// be employed to construct a uniform query interface").
//
// Given the matcher's clusters, each cluster becomes one unified
// attribute: its label is the most frequent source label (ties broken
// lexicographically), its instance list is the deduplicated union of the
// members' instances (predefined first, then acquired), and attributes
// are ordered by their average display position across sources so the
// unified interface looks like its constituents.
package unify

import (
	"sort"
	"strings"

	"webiq/internal/matcher"
	"webiq/internal/schema"
)

// UnifiedAttribute is one attribute of the uniform interface.
type UnifiedAttribute struct {
	// Label is the representative label.
	Label string
	// Members are the source attribute IDs merged into this attribute.
	Members []string
	// Instances is the deduplicated union of the members' instances.
	Instances []string
	// Coverage is the fraction of source interfaces contributing a
	// member.
	Coverage float64
	// position is the average display position (for ordering).
	position float64
}

// UnifiedInterface is the uniform query interface over all sources.
type UnifiedInterface struct {
	Domain     string
	Attributes []*UnifiedAttribute
}

// Build constructs the unified interface from a dataset and a matching
// result. Singleton clusters (attributes matched to nothing) are
// included with coverage 1/n, so no source capability is lost.
func Build(ds *schema.Dataset, res *matcher.Result) *UnifiedInterface {
	byID := map[string]*schema.Attribute{}
	position := map[string]int{}
	for _, ifc := range ds.Interfaces {
		for i, a := range ifc.Attributes {
			byID[a.ID] = a
			position[a.ID] = i
		}
	}
	n := len(ds.Interfaces)

	out := &UnifiedInterface{Domain: ds.Domain}
	for _, cluster := range res.Clusters {
		ua := &UnifiedAttribute{Members: append([]string(nil), cluster...)}
		labelCount := map[string]int{}
		ifaces := map[string]bool{}
		seen := map[string]bool{}
		var posSum float64
		// Union predefined instances first so the unified list leads
		// with source-vetted values.
		for pass := 0; pass < 2; pass++ {
			for _, id := range cluster {
				a := byID[id]
				if a == nil {
					continue
				}
				vals := a.Instances
				if pass == 1 {
					vals = a.Acquired
				}
				for _, v := range vals {
					f := strings.ToLower(v)
					if !seen[f] {
						seen[f] = true
						ua.Instances = append(ua.Instances, v)
					}
				}
			}
		}
		for _, id := range cluster {
			a := byID[id]
			if a == nil {
				continue
			}
			labelCount[a.Label]++
			ifaces[a.InterfaceID] = true
			posSum += float64(position[id])
		}
		if len(labelCount) == 0 {
			continue
		}
		ua.Label = representativeLabel(labelCount)
		if n > 0 {
			ua.Coverage = float64(len(ifaces)) / float64(n)
		}
		ua.position = posSum / float64(len(cluster))
		out.Attributes = append(out.Attributes, ua)
	}

	sort.SliceStable(out.Attributes, func(i, j int) bool {
		a, b := out.Attributes[i], out.Attributes[j]
		if a.Coverage != b.Coverage {
			return a.Coverage > b.Coverage
		}
		if a.position != b.position {
			return a.position < b.position
		}
		return a.Label < b.Label
	})
	return out
}

// representativeLabel picks the most frequent label, breaking ties
// lexicographically for determinism.
func representativeLabel(counts map[string]int) string {
	best, bestN := "", -1
	for l, n := range counts {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	return best
}

// AsInterface converts the unified interface into a schema.Interface so
// it can be rendered as HTML or used as a query target.
func (u *UnifiedInterface) AsInterface(id string) *schema.Interface {
	ifc := &schema.Interface{ID: id, Domain: u.Domain, Source: "unified-" + u.Domain}
	for i, ua := range u.Attributes {
		ifc.Attributes = append(ifc.Attributes, &schema.Attribute{
			ID:          ifcAttrID(id, i),
			InterfaceID: id,
			Label:       ua.Label,
			Instances:   ua.Instances,
		})
	}
	return ifc
}

func ifcAttrID(ifcID string, i int) string {
	const digits = "0123456789"
	if i < 10 {
		return ifcID + "/u" + digits[i:i+1]
	}
	return ifcID + "/u" + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}
