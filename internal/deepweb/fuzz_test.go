package deepweb

import (
	"strings"
	"testing"

	"webiq/internal/resilience"
)

// FuzzAnalyzeResponse feeds AnalyzeResponse arbitrary (often truncated
// or malformed) response pages. The fault injector substitutes exactly
// this kind of garbage for real probe pages, so the classifier must
// never panic on it, and the explicit-count heuristic must stay sane
// even when the count would overflow an int.
func FuzzAnalyzeResponse(f *testing.F) {
	for _, page := range resilience.MalformedPages {
		f.Add(page)
	}
	// Well-formed pages, so mutations also explore the success paths.
	f.Add("<html><body><p>Found 12 results</p><ul><li>a</li></ul></body></html>")
	f.Add("<html><body><p>No results found.</p></body></html>")
	f.Add("<html><body>Showing 1-10 of 40</body></html>")
	f.Add("found 0 results")

	f.Fuzz(func(t *testing.T, page string) {
		got := AnalyzeResponse(page)
		if again := AnalyzeResponse(page); again != got {
			t.Fatalf("AnalyzeResponse not deterministic: %v then %v", got, again)
		}
		p := strings.ToLower(page)
		if n, ok := resultCount(p); ok {
			if n < 0 {
				t.Fatalf("resultCount(%q) = %d, want >= 0", page, n)
			}
			if got != (n > 0) {
				t.Fatalf("AnalyzeResponse(%q) = %v, but explicit count %d should decide", page, got, n)
			}
		}
	})
}

// TestResultCountSaturates pins the overflow fix: absurd counts
// saturate instead of wrapping negative.
func TestResultCountSaturates(t *testing.T) {
	n, ok := resultCount("found 99999999999999999999 results")
	if !ok || n <= 0 {
		t.Fatalf("resultCount = %d, %v; want a large positive count", n, ok)
	}
	if !AnalyzeResponse("Found 99999999999999999999 results") {
		t.Fatal("a huge explicit count should classify as success")
	}
}
