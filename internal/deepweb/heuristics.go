package deepweb

import "strings"

// Response-analysis heuristics, a variant of those used by the
// hidden-Web crawler of Raghavan & Garcia-Molina that the paper cites:
// classify a response page as a successful submission or a failure.

// failurePhrases are indicator phrases of failed submissions.
var failurePhrases = []string{
	"no results", "no matches", "not found", "nothing found",
	"invalid", "error", "sorry", "try again", "please complete",
	"required field", "unknown field", "0 results",
}

// successPhrases are indicator phrases of successful submissions. Bare
// "found" is deliberately absent: "we found nothing" would match it.
var successPhrases = []string{
	"results matching", "showing", "displaying",
}

// AnalyzeResponse classifies a response page. The heuristics are, in
// order: (1) an explicit positive result count wins; (2) failure
// indicator phrases lose; (3) a page listing record structure (several
// list items) wins; (4) otherwise failure.
func AnalyzeResponse(page string) bool {
	p := strings.ToLower(page)

	// Heuristic 1: explicit result count.
	if n, ok := resultCount(p); ok {
		return n > 0
	}
	// Heuristic 2: failure phrases.
	for _, f := range failurePhrases {
		if strings.Contains(p, f) {
			return false
		}
	}
	// Heuristic 3: structural evidence of listed records.
	if strings.Count(p, "<li>") >= 1 {
		return true
	}
	// Heuristic 4: weak positive phrases.
	for _, s := range successPhrases {
		if strings.Contains(p, s) {
			return true
		}
	}
	return false
}

// resultCount extracts N from "found N results", if present.
func resultCount(p string) (int, bool) {
	idx := strings.Index(p, "found ")
	if idx < 0 {
		return 0, false
	}
	rest := p[idx+len("found "):]
	n := 0
	digits := 0
	for digits < len(rest) && rest[digits] >= '0' && rest[digits] <= '9' {
		// Saturate instead of overflowing: any count this large is
		// "many" for the success/failure call either way.
		if n < 1<<40 {
			n = n*10 + int(rest[digits]-'0')
		}
		digits++
	}
	if digits == 0 || !strings.HasPrefix(strings.TrimSpace(rest[digits:]), "result") {
		return 0, false
	}
	return n, true
}
