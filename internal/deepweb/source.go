// Package deepweb simulates Deep-Web data sources: each query interface
// of the dataset is backed by a relational table generated from the
// domain knowledge base. A probe sets one attribute to a candidate value
// (other attributes keep their defaults) and yields a response page that
// must be classified as success or failure by the response-analysis
// heuristics — exactly the observable Attr-Deep consumes.
package deepweb

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"webiq/internal/htmlform"
	"webiq/internal/kb"
	"webiq/internal/obs"
	"webiq/internal/schema"
)

// Config controls source construction.
type Config struct {
	// Seed drives table generation.
	Seed int64
	// Records is the backing-table size per source.
	Records int
	// PartialQueryProb is the probability a source accepts partial
	// queries (values left unspecified). The paper notes many — not all —
	// interfaces permit them; sources that do not reject every probe.
	PartialQueryProb float64
	// MinLatency/MaxLatency bound the simulated per-probe round trip.
	MinLatency, MaxLatency time.Duration
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Records:          300,
		PartialQueryProb: 0.9,
		MinLatency:       300 * time.Millisecond,
		MaxLatency:       1500 * time.Millisecond,
	}
}

// Source is one Deep-Web data source.
type Source struct {
	ifc *schema.Interface
	// concepts maps attribute ID to its generating concept.
	concepts map[string]*kb.Concept
	// table holds the backing records: attribute ID -> value.
	table []map[string]string
	// partialOK reports whether the source accepts partial queries.
	partialOK bool
	pool      *Pool
}

// Pool is the set of sources for a dataset, with shared probe
// accounting for the overhead experiment.
type Pool struct {
	mu          sync.Mutex
	sources     map[string]*Source
	cfg         Config
	queries     int
	virtualTime time.Duration

	// Optional metrics; nil-safe no-ops when Instrument was not called.
	mProbes  *obs.CounterVec // labelled by source interface ID
	mLatency *obs.Histogram
}

// Instrument registers the pool's metrics on r:
//
//	webiq_pool_probes_total{source}     probes served per source
//	webiq_pool_probe_virtual_seconds    per-probe simulated round trip
//
// Pools for several domains may share one registry: the families are
// registered once and the per-source label keeps them apart. Passing
// nil leaves the pool uninstrumented (the default).
func (p *Pool) Instrument(r *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mProbes = r.CounterVec("webiq_pool_probes_total", "Deep-Web probe queries served, by source.", "source")
	p.mLatency = r.Histogram("webiq_pool_probe_virtual_seconds", "Simulated per-probe round-trip latency in seconds.", nil)
}

// BuildPool constructs sources for every interface in the dataset.
func BuildPool(ds *schema.Dataset, dom *kb.Domain, cfg Config) *Pool {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(hash32(ds.Domain))))
	conceptByID := map[string]*kb.Concept{}
	for _, c := range dom.Concepts {
		conceptByID[c.ID] = c
	}
	p := &Pool{sources: map[string]*Source{}, cfg: cfg}
	for _, ifc := range ds.Interfaces {
		s := &Source{
			ifc:       ifc,
			concepts:  map[string]*kb.Concept{},
			partialOK: rng.Float64() < cfg.PartialQueryProb,
			pool:      p,
		}
		for _, a := range ifc.Attributes {
			s.concepts[a.ID] = conceptByID[a.ConceptID]
		}
		s.table = generateTable(ifc, s.concepts, cfg.Records, rng)
		p.sources[ifc.ID] = s
	}
	return p
}

// Source returns the source backing the given interface ID, or nil.
func (p *Pool) Source(interfaceID string) *Source {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sources[interfaceID]
}

// QueryCount returns the number of probes served across the pool.
func (p *Pool) QueryCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queries
}

// VirtualTime returns the accumulated simulated probe time.
func (p *Pool) VirtualTime() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.virtualTime
}

// ResetAccounting zeroes the probe counter and virtual clock.
func (p *Pool) ResetAccounting() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queries = 0
	p.virtualTime = 0
}

func (p *Pool) charge(sourceID, key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queries++
	lat := p.cfg.MinLatency
	if span := p.cfg.MaxLatency - p.cfg.MinLatency; span > 0 {
		lat += time.Duration(int64(hash32(key)) % int64(span))
	}
	p.virtualTime += lat
	p.mProbes.With(sourceID).Inc()
	p.mLatency.Observe(lat.Seconds())
}

// generateTable samples Records rows; each row assigns every attribute a
// value from its concept's full vocabulary (sources hold data well
// beyond what their interfaces show as predefined options).
func generateTable(ifc *schema.Interface, concepts map[string]*kb.Concept, n int, rng *rand.Rand) []map[string]string {
	rows := make([]map[string]string, n)
	// Pre-render numeric pools once per attribute.
	pools := map[string][]string{}
	for _, a := range ifc.Attributes {
		c := concepts[a.ID]
		if c == nil {
			continue
		}
		if c.Numeric != nil {
			pools[a.ID] = c.Numeric.Sample(rng, 50)
		} else {
			pools[a.ID] = c.AllInstances()
		}
	}
	for i := range rows {
		row := map[string]string{}
		for _, a := range ifc.Attributes {
			pool := pools[a.ID]
			if len(pool) == 0 {
				continue
			}
			row[a.ID] = pool[rng.Intn(len(pool))]
		}
		rows[i] = row
	}
	return rows
}

// Probe submits a query with the given attribute set to value and all
// other attributes left at their defaults (empty), returning the
// response page. It implements the "Formulate and Submit a Query" step
// of Section 4.
func (s *Source) Probe(attrID, value string) string {
	s.pool.charge(s.ifc.ID, s.ifc.ID+"|"+attrID+"|"+value)

	attr := s.ifc.AttributeByID(attrID)
	if attr == nil {
		return renderError("unknown field")
	}
	if !s.partialOK {
		return renderError("please complete all required fields before submitting")
	}
	// Predefined-value attributes reject values outside their list —
	// the reason Step 2 of Section 5 cannot use Attr-Deep for them.
	if attr.HasInstances() && !containsFold(attr.Instances, value) {
		return renderError("invalid selection for " + attr.Label)
	}
	matches := s.match(attrID, value)
	if len(matches) == 0 {
		return renderError("sorry, no results were found matching your search")
	}
	return s.renderResults(matches)
}

// match selects backing rows whose value for attrID matches the probe
// value. String attributes match case-insensitively; numeric attributes
// act as range filters accepting any parseable value within the
// concept's range.
func (s *Source) match(attrID, value string) []map[string]string {
	c := s.concepts[attrID]
	if c != nil && c.Numeric != nil {
		v, ok := parseNumber(value)
		if !ok {
			return nil
		}
		lo, hi := float64(c.Numeric.Min), float64(c.Numeric.Max)
		if c.Numeric.Decimals > 0 {
			scale := 1.0
			for i := 0; i < c.Numeric.Decimals; i++ {
				scale *= 10
			}
			lo, hi = lo/scale, hi/scale
		}
		if v < lo || v > hi {
			return nil
		}
		// A numeric filter inside the range selects roughly the rows at
		// or below the value (max-style filters dominate interfaces).
		var out []map[string]string
		for _, row := range s.table {
			rv, ok := parseNumber(row[attrID])
			if ok && rv <= v {
				out = append(out, row)
				if len(out) >= 10 {
					break
				}
			}
		}
		return out
	}
	want := strings.ToLower(strings.TrimSpace(value))
	if want == "" {
		return nil
	}
	var out []map[string]string
	for _, row := range s.table {
		if strings.ToLower(row[attrID]) == want {
			out = append(out, row)
			if len(out) >= 10 {
				break
			}
		}
	}
	return out
}

// renderResults renders a result page listing matched records.
func (s *Source) renderResults(rows []map[string]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><title>%s results</title><body>", s.ifc.Source)
	fmt.Fprintf(&b, "<p>Found %d results matching your search.</p><ul>", len(rows))
	for i, row := range rows {
		if i >= 5 {
			break
		}
		b.WriteString("<li>")
		for _, a := range s.ifc.Attributes {
			if v := row[a.ID]; v != "" {
				fmt.Fprintf(&b, "%s: %s; ", a.Label, v)
			}
		}
		b.WriteString("</li>")
	}
	b.WriteString("</ul></body></html>")
	return b.String()
}

var errorTemplates = []string{
	"<html><body><p>Error: %s.</p></body></html>",
	"<html><body><p>We are sorry: %s. Please try again.</p></body></html>",
	"<html><body><p>No results found. %s.</p></body></html>",
}

func renderError(msg string) string {
	return fmt.Sprintf(errorTemplates[int(hash32(msg))%len(errorTemplates)], msg)
}

// Interface returns the interface this source serves.
func (s *Source) Interface() *schema.Interface { return s.ifc }

// FormPage renders the source's query interface as the HTML form page a
// crawler would fetch; htmlform.Extract recovers the interface from it.
func (s *Source) FormPage() string { return htmlform.Render(s.ifc) }

// AcceptsPartialQueries reports whether the source tolerates unfilled
// attributes.
func (s *Source) AcceptsPartialQueries() bool { return s.partialOK }

func containsFold(list []string, v string) bool {
	for _, x := range list {
		if strings.EqualFold(x, v) {
			return true
		}
	}
	return false
}

func parseNumber(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "$")
	s = strings.ReplaceAll(s, ",", "")
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

func hash32(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
