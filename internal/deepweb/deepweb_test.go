package deepweb

import (
	"strings"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
	"webiq/internal/schema"
)

func buildTestPool(t *testing.T, domain string) (*Pool, *schema.Dataset) {
	t.Helper()
	dom := kb.DomainByKey(domain)
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	cfg := DefaultConfig()
	cfg.PartialQueryProb = 1.0 // deterministic acceptance for unit tests
	return BuildPool(ds, dom, cfg), ds
}

// findAttr returns an attribute of the given concept, preferring ones
// without predefined instances.
func findAttr(ds *schema.Dataset, conceptID string, wantPredef bool) *schema.Attribute {
	for _, a := range ds.AllAttributes() {
		if a.ConceptID == conceptID && a.HasInstances() == wantPredef {
			return a
		}
	}
	return nil
}

func TestProbeTrueInstanceSucceeds(t *testing.T) {
	pool, ds := buildTestPool(t, "airfare")
	a := findAttr(ds, "airfare.origin_city", false)
	if a == nil {
		t.Skip("no free-text origin city attribute in this dataset draw")
	}
	src := pool.Source(a.InterfaceID)
	// Probe several true cities; at least one must be in the table.
	ok := false
	for _, city := range []string{"Boston", "Chicago", "New York", "London", "Paris"} {
		if AnalyzeResponse(src.Probe(a.ID, city)) {
			ok = true
			break
		}
	}
	if !ok {
		t.Error("no true city probe succeeded")
	}
}

func TestProbeFalseInstanceFails(t *testing.T) {
	pool, ds := buildTestPool(t, "airfare")
	a := findAttr(ds, "airfare.origin_city", false)
	if a == nil {
		t.Skip("no free-text origin city attribute")
	}
	src := pool.Source(a.InterfaceID)
	// The paper's motivating example: from=January must fail where
	// from=Chicago succeeds.
	if AnalyzeResponse(src.Probe(a.ID, "January")) {
		t.Error("probe with month on a city field should fail")
	}
	if AnalyzeResponse(src.Probe(a.ID, "Economy")) {
		t.Error("probe with cabin class on a city field should fail")
	}
}

func TestProbePredefinedRejectsOutside(t *testing.T) {
	pool, ds := buildTestPool(t, "airfare")
	a := findAttr(ds, "airfare.cabin_class", true)
	if a == nil {
		t.Skip("no predefined cabin class attribute")
	}
	src := pool.Source(a.InterfaceID)
	if AnalyzeResponse(src.Probe(a.ID, "NotAClass")) {
		t.Error("predefined attribute accepted a value outside its list")
	}
	if !AnalyzeResponse(src.Probe(a.ID, a.Instances[0])) {
		t.Error("predefined attribute rejected its own listed value")
	}
}

func TestProbeNumericRange(t *testing.T) {
	pool, ds := buildTestPool(t, "auto")
	a := findAttr(ds, "auto.price", false)
	if a == nil {
		a = findAttr(ds, "auto.price", true)
	}
	if a == nil {
		t.Skip("no price attribute")
	}
	src := pool.Source(a.InterfaceID)
	if a.HasInstances() {
		if !AnalyzeResponse(src.Probe(a.ID, a.Instances[0])) {
			t.Error("listed price rejected")
		}
		return
	}
	if !AnalyzeResponse(src.Probe(a.ID, "$30,000")) {
		t.Error("in-range price probe failed")
	}
	if AnalyzeResponse(src.Probe(a.ID, "$9,000,000")) {
		t.Error("absurd price probe succeeded")
	}
	if AnalyzeResponse(src.Probe(a.ID, "Honda")) {
		t.Error("non-numeric probe on numeric field succeeded")
	}
}

func TestPartialQueryRejection(t *testing.T) {
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	cfg := DefaultConfig()
	cfg.PartialQueryProb = 0 // every source rejects partial queries
	pool := BuildPool(ds, dom, cfg)
	a := ds.AllAttributes()[0]
	src := pool.Source(a.InterfaceID)
	if AnalyzeResponse(src.Probe(a.ID, "anything")) {
		t.Error("source rejecting partial queries reported success")
	}
}

func TestProbeAccounting(t *testing.T) {
	pool, ds := buildTestPool(t, "job")
	pool.ResetAccounting()
	a := ds.AllAttributes()[0]
	src := pool.Source(a.InterfaceID)
	src.Probe(a.ID, "x")
	src.Probe(a.ID, "y")
	if got := pool.QueryCount(); got != 2 {
		t.Errorf("QueryCount = %d, want 2", got)
	}
	if pool.VirtualTime() <= 0 {
		t.Error("virtual time not charged")
	}
	pool.ResetAccounting()
	if pool.QueryCount() != 0 || pool.VirtualTime() != 0 {
		t.Error("ResetAccounting failed")
	}
}

func TestProbeUnknownAttr(t *testing.T) {
	pool, ds := buildTestPool(t, "job")
	src := pool.Source(ds.Interfaces[0].ID)
	if AnalyzeResponse(src.Probe("bogus/attr", "x")) {
		t.Error("unknown attribute probe succeeded")
	}
}

func TestAnalyzeResponse(t *testing.T) {
	cases := []struct {
		page string
		want bool
	}{
		{"<html><p>Found 7 results matching your search.</p><li>x</li></html>", true},
		{"<html><p>Found 0 results.</p></html>", false},
		{"<html><p>Sorry, no results were found.</p></html>", false},
		{"<html><p>Error: invalid selection.</p></html>", false},
		{"<html><li>record one</li><li>record two</li></html>", true},
		{"<html><p>Welcome to our site.</p></html>", false},
		{"<html><p>Showing matches below</p></html>", true},
	}
	for _, c := range cases {
		if got := AnalyzeResponse(c.page); got != c.want {
			t.Errorf("AnalyzeResponse(%q) = %v, want %v", c.page, got, c.want)
		}
	}
}

func TestResultPageListsLabels(t *testing.T) {
	pool, ds := buildTestPool(t, "book")
	a := findAttr(ds, "book.author", false)
	if a == nil {
		t.Skip("no free-text author attr")
	}
	src := pool.Source(a.InterfaceID)
	var page string
	for _, author := range kb.BookAuthors {
		page = src.Probe(a.ID, author)
		if AnalyzeResponse(page) {
			break
		}
	}
	if !AnalyzeResponse(page) {
		t.Fatal("no author probe succeeded")
	}
	if !strings.Contains(page, a.Label) {
		t.Errorf("result page does not echo attribute label %q", a.Label)
	}
}

func TestPoolDeterministic(t *testing.T) {
	p1, ds := buildTestPool(t, "auto")
	p2, _ := buildTestPool(t, "auto")
	a := ds.AllAttributes()[0]
	r1 := p1.Source(a.InterfaceID).Probe(a.ID, "Honda")
	r2 := p2.Source(a.InterfaceID).Probe(a.ID, "Honda")
	if r1 != r2 {
		t.Error("probes not deterministic across identically-seeded pools")
	}
}

func TestResultCountParsing(t *testing.T) {
	cases := []struct {
		page string
		want bool
	}{
		{"found 12 results", true},
		{"Found 1 result for you", true},
		{"found 0 results", false},
		{"we found nothing for you", false}, // no digits after "found "
		{"found n results", false},          // no digits
		{"found 5 cars", false},             // digits but not "result"
	}
	for _, c := range cases {
		if got := AnalyzeResponse(c.page); got != c.want {
			t.Errorf("AnalyzeResponse(%q) = %v, want %v", c.page, got, c.want)
		}
	}
}

func TestAnalyzeResponseEmpty(t *testing.T) {
	if AnalyzeResponse("") {
		t.Error("empty page classified as success")
	}
}

func TestProbeEmptyValue(t *testing.T) {
	pool, ds := buildTestPool(t, "book")
	a := ds.AllAttributes()[0]
	src := pool.Source(a.InterfaceID)
	if AnalyzeResponse(src.Probe(a.ID, "   ")) {
		t.Error("blank probe value reported success")
	}
}

func TestFormPageRoundTrips(t *testing.T) {
	pool, ds := buildTestPool(t, "auto")
	src := pool.Source(ds.Interfaces[0].ID)
	page := src.FormPage()
	if !strings.Contains(page, "<form") {
		t.Fatalf("form page malformed: %.120s", page)
	}
}
