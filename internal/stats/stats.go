// Package stats provides the small statistical toolkit shared by
// WebIQ's outlier detection (discordancy tests), the validation-based
// classifier (entropy / information gain), and the experiment harness
// (summary statistics).
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanStd returns the mean and population standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// LeaveOneOut returns, for index i, the mean and standard deviation of
// xs with xs[i] removed — the statistics behind the masking-resistant
// discordancy test. Sums are maintained incrementally so the whole
// sweep is O(n).
type LeaveOneOut struct {
	n          int
	sum, sumSq float64
	xs         []float64
}

// NewLeaveOneOut precomputes the sweep over xs. The slice is retained;
// callers must not mutate it while using the sweep.
func NewLeaveOneOut(xs []float64) *LeaveOneOut {
	l := &LeaveOneOut{n: len(xs), xs: xs}
	for _, x := range xs {
		l.sum += x
		l.sumSq += x * x
	}
	return l
}

// At returns the mean and standard deviation excluding index i. With
// fewer than two values the result is (0, 0).
func (l *LeaveOneOut) At(i int) (mean, std float64) {
	if l.n < 2 {
		return 0, 0
	}
	x := l.xs[i]
	m := (l.sum - x) / float64(l.n-1)
	variance := (l.sumSq-x*x)/float64(l.n-1) - m*m
	if variance < 0 {
		variance = 0
	}
	return m, math.Sqrt(variance)
}

// Entropy returns the binary entropy of a two-class distribution with
// the given counts, in bits.
func Entropy(pos, neg int) float64 {
	n := pos + neg
	if n == 0 || pos == 0 || neg == 0 {
		return 0
	}
	pp := float64(pos) / float64(n)
	pn := float64(neg) / float64(n)
	return -pp*math.Log2(pp) - pn*math.Log2(pn)
}

// InfoGainSplit finds the threshold over (value, positive) pairs that
// maximizes information gain, considering midpoints between adjacent
// distinct sorted values. It returns the best threshold and its gain;
// with fewer than two distinct values it returns the first value and a
// gain of zero.
func InfoGainSplit(values []float64, positive []bool) (threshold, gain float64) {
	n := len(values)
	if n == 0 {
		return 0, 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value: n is tiny (training sets of a handful of
	// examples).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && values[idx[j]] < values[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	totalPos := 0
	for _, p := range positive {
		if p {
			totalPos++
		}
	}
	base := Entropy(totalPos, n-totalPos)
	bestGain := math.Inf(-1)
	best := values[idx[0]]
	leftPos := 0
	for i := 0; i < n-1; i++ {
		if positive[idx[i]] {
			leftPos++
		}
		vi, vj := values[idx[i]], values[idx[i+1]]
		if vi == vj {
			continue
		}
		left := i + 1
		right := n - left
		g := base -
			(float64(left)/float64(n))*Entropy(leftPos, left-leftPos) -
			(float64(right)/float64(n))*Entropy(totalPos-leftPos, right-(totalPos-leftPos))
		if g > bestGain {
			bestGain = g
			// vi/2 + vj/2 rather than (vi+vj)/2: the sum can overflow
			// for extreme inputs.
			best = vi/2 + vj/2
		}
	}
	if math.IsInf(bestGain, -1) {
		return values[idx[0]], 0
	}
	return best, bestGain
}
