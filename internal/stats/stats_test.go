package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Errorf("mean/std = %v/%v, want 5/2", m, s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty MeanStd")
	}
}

func TestLeaveOneOut(t *testing.T) {
	xs := []float64{1, 2, 3, 100}
	l := NewLeaveOneOut(xs)
	m, s := l.At(3) // exclude the outlier
	if m != 2 {
		t.Errorf("mean = %v, want 2", m)
	}
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(s-want) > 1e-9 {
		t.Errorf("std = %v, want %v", s, want)
	}
}

func TestLeaveOneOutMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		// Bound magnitudes to avoid float cancellation noise.
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1000))
			}
		}
		if len(xs) < 2 {
			return true
		}
		l := NewLeaveOneOut(xs)
		for i := range xs {
			rest := make([]float64, 0, len(xs)-1)
			rest = append(rest, xs[:i]...)
			rest = append(rest, xs[i+1:]...)
			wm, ws := MeanStd(rest)
			gm, gs := l.At(i)
			if math.Abs(wm-gm) > 1e-6 || math.Abs(ws-gs) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeaveOneOutDegenerate(t *testing.T) {
	l := NewLeaveOneOut([]float64{5})
	if m, s := l.At(0); m != 0 || s != 0 {
		t.Errorf("single element: %v/%v", m, s)
	}
}

func TestEntropy(t *testing.T) {
	if e := Entropy(1, 1); math.Abs(e-1) > 1e-12 {
		t.Errorf("Entropy(1,1) = %v", e)
	}
	if Entropy(5, 0) != 0 || Entropy(0, 0) != 0 {
		t.Error("degenerate entropies should be 0")
	}
	// Entropy is symmetric.
	if Entropy(3, 7) != Entropy(7, 3) {
		t.Error("entropy not symmetric")
	}
}

func TestInfoGainSplitSeparable(t *testing.T) {
	th, gain := InfoGainSplit([]float64{.2, .4, .5, .8}, []bool{false, false, true, true})
	if math.Abs(th-0.45) > 1e-12 {
		t.Errorf("threshold = %v, want .45", th)
	}
	if math.Abs(gain-1) > 1e-12 {
		t.Errorf("gain = %v, want 1 (perfect split)", gain)
	}
}

func TestInfoGainSplitAllEqual(t *testing.T) {
	th, gain := InfoGainSplit([]float64{.3, .3, .3}, []bool{true, false, true})
	if th != .3 || gain != 0 {
		t.Errorf("degenerate split = %v/%v", th, gain)
	}
}

func TestInfoGainSplitEmpty(t *testing.T) {
	th, gain := InfoGainSplit(nil, nil)
	if th != 0 || gain != 0 {
		t.Errorf("empty split = %v/%v", th, gain)
	}
}

// Property: the returned gain is achievable and in [0, 1] for binary
// labels, and the threshold lies within the value range.
func TestInfoGainSplitBounds(t *testing.T) {
	f := func(raw []float64, labels []bool) bool {
		n := len(raw)
		if len(labels) < n {
			n = len(labels)
		}
		if n == 0 {
			return true
		}
		values := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			values[i] = v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		th, gain := InfoGainSplit(values, labels[:n])
		if gain < 0 || gain > 1+1e-9 {
			return false
		}
		return th >= lo-1e-9 && th <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
