package surfaceweb

import (
	"fmt"
	"sync"
	"testing"

	"webiq/internal/kb"
)

var (
	benchOnce   sync.Once
	benchEngine *Engine
)

// benchCorpusEngine builds the default experiment corpus once per
// process for the query-execution benchmarks.
func benchCorpusEngine(b *testing.B) *Engine {
	b.Helper()
	benchOnce.Do(func() {
		benchEngine = NewEngine()
		BuildCorpus(benchEngine, kb.Domains(), DefaultCorpusConfig())
	})
	return benchEngine
}

const (
	benchPhraseQuery  = `"book titles such as" +book`
	benchKeywordQuery = `+book +title +author`
)

func BenchmarkParseQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParseQuery(benchPhraseQuery)
	}
}

func BenchmarkCompile(b *testing.B) {
	e := benchCorpusEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Compile(benchPhraseQuery)
	}
}

func BenchmarkNumHits(b *testing.B) {
	for name, q := range map[string]string{"phrase": benchPhraseQuery, "keywords": benchKeywordQuery} {
		b.Run(name, func(b *testing.B) {
			e := benchCorpusEngine(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.NumHits(q)
			}
		})
	}
}

func BenchmarkNumHitsCompiled(b *testing.B) {
	e := benchCorpusEngine(b)
	cq := e.Compile(benchPhraseQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.NumHitsCompiled(cq, benchPhraseQuery)
	}
}

func BenchmarkSearch(b *testing.B) {
	e := benchCorpusEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(benchPhraseQuery, 8)
	}
}

// BenchmarkCorpusScale measures query execution against corpora scaled
// to multiples of the seed size, pinning how the term-ID hot path
// behaves as the simulated Web grows.
func BenchmarkCorpusScale(b *testing.B) {
	for _, factor := range []float64{1, 10} {
		b.Run(fmt.Sprintf("%gx", factor), func(b *testing.B) {
			e := NewEngine()
			BuildCorpus(e, kb.Domains(), DefaultCorpusConfig().Scaled(factor))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.NumHits(benchPhraseQuery)
				e.Search(benchKeywordQuery, 8)
			}
		})
	}
}
