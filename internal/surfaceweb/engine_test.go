package surfaceweb

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func newTestEngine() *Engine {
	e := NewEngine()
	e.Add("p0", "Departure cities such as Boston, Chicago, and LAX are served daily.")
	e.Add("p1", "Make: Honda. Model: Accord. Used cars for sale.")
	e.Add("p2", "Airlines such as Delta, United, and Air Canada fly from Boston.")
	e.Add("p3", "Random noise about online services and customer support.")
	e.Add("p4", "The author of the book is Mark Twain. Book title and isbn available.")
	return e
}

func TestParseQuery(t *testing.T) {
	q := ParseQuery(`"authors such as" +book +title +isbn`)
	if !reflect.DeepEqual(q.Phrase, []string{"authors", "such", "as"}) {
		t.Errorf("phrase = %v", q.Phrase)
	}
	if !reflect.DeepEqual(q.Required, []string{"book", "title", "isbn"}) {
		t.Errorf("required = %v", q.Required)
	}
}

func TestParseQueryBareTerms(t *testing.T) {
	q := ParseQuery(`make honda`)
	if len(q.Phrase) != 0 {
		t.Errorf("phrase = %v, want empty", q.Phrase)
	}
	if !reflect.DeepEqual(q.Required, []string{"make", "honda"}) {
		t.Errorf("required = %v", q.Required)
	}
}

func TestParseQueryOnlyPhrase(t *testing.T) {
	q := ParseQuery(`"departure cities such as"`)
	if !reflect.DeepEqual(q.Phrase, []string{"departure", "cities", "such", "as"}) {
		t.Errorf("phrase = %v", q.Phrase)
	}
	if len(q.Required) != 0 {
		t.Errorf("required = %v", q.Required)
	}
}

func TestNumHitsPhrase(t *testing.T) {
	e := newTestEngine()
	if got := e.NumHits(`"such as"`); got != 2 {
		t.Errorf(`NumHits("such as") = %d, want 2`, got)
	}
	if got := e.NumHits(`"departure cities such as"`); got != 1 {
		t.Errorf("NumHits = %d, want 1", got)
	}
	if got := e.NumHits(`"cities departure"`); got != 0 {
		t.Errorf("NumHits out-of-order phrase = %d, want 0", got)
	}
}

func TestNumHitsRequired(t *testing.T) {
	e := newTestEngine()
	if got := e.NumHits(`"such as" +boston`); got != 2 {
		t.Errorf("NumHits = %d, want 2 (p0 and p2 have phrase+boston)", got)
	}
	if got := e.NumHits(`"such as" +honda`); got != 0 {
		t.Errorf("NumHits = %d, want 0 (no doc has both)", got)
	}
	if got := e.NumHits(`boston`); got != 2 {
		t.Errorf("NumHits(boston) = %d, want 2", got)
	}
	if got := e.NumHits(`+nonexistentword`); got != 0 {
		t.Errorf("NumHits = %d, want 0", got)
	}
}

func TestNumHitsCaseInsensitive(t *testing.T) {
	e := newTestEngine()
	if e.NumHits(`"MAKE honda"`) != e.NumHits(`"make Honda"`) {
		t.Error("hit counts should be case insensitive")
	}
}

func TestPhraseAcrossPunctuation(t *testing.T) {
	// "Make: Honda" indexes as adjacent words, so the proximity
	// validation query "make honda" matches.
	e := newTestEngine()
	if got := e.NumHits(`"make honda"`); got != 1 {
		t.Errorf("NumHits = %d, want 1", got)
	}
}

func TestSearchSnippets(t *testing.T) {
	e := newTestEngine()
	snips := e.Search(`"such as"`, 10)
	if len(snips) != 2 {
		t.Fatalf("got %d snippets, want 2", len(snips))
	}
	if !strings.Contains(snips[0].Text, "such as") {
		t.Errorf("snippet %q lacks phrase", snips[0].Text)
	}
	if !strings.Contains(snips[0].Text, "Boston") {
		t.Errorf("snippet %q lacks completion", snips[0].Text)
	}
}

func TestSearchTopK(t *testing.T) {
	e := newTestEngine()
	snips := e.Search(`"such as"`, 1)
	if len(snips) != 1 {
		t.Errorf("got %d snippets, want 1", len(snips))
	}
}

func TestSearchNoMatch(t *testing.T) {
	e := newTestEngine()
	if snips := e.Search(`"zebras such as"`, 5); len(snips) != 0 {
		t.Errorf("got %v, want none", snips)
	}
}

func TestQueryAccounting(t *testing.T) {
	e := newTestEngine()
	e.ResetAccounting()
	e.NumHits("boston")
	e.Search(`"such as"`, 3)
	if got := e.QueryCount(); got != 2 {
		t.Errorf("QueryCount = %d, want 2", got)
	}
	vt := e.VirtualTime()
	if vt < 2*e.MinLatency || vt > 2*e.MaxLatency {
		t.Errorf("VirtualTime = %v out of [%v,%v]", vt, 2*e.MinLatency, 2*e.MaxLatency)
	}
	e.ResetAccounting()
	if e.QueryCount() != 0 || e.VirtualTime() != 0 {
		t.Error("ResetAccounting did not zero counters")
	}
}

func TestVirtualTimeDeterministic(t *testing.T) {
	a, b := newTestEngine(), newTestEngine()
	a.NumHits("boston")
	b.NumHits("boston")
	if a.VirtualTime() != b.VirtualTime() {
		t.Error("virtual latency should be deterministic per query")
	}
}

func TestFixedLatency(t *testing.T) {
	e := newTestEngine()
	e.MinLatency, e.MaxLatency = 200*time.Millisecond, 200*time.Millisecond
	e.ResetAccounting()
	e.NumHits("boston")
	if e.VirtualTime() != 200*time.Millisecond {
		t.Errorf("VirtualTime = %v, want 200ms", e.VirtualTime())
	}
}

func TestSnippetWindow(t *testing.T) {
	e := NewEngine()
	e.SnippetRadius = 2
	long := "alpha beta gamma delta epsilon zeta eta theta iota kappa lambda"
	e.Add("t", long)
	snips := e.Search(`"zeta eta"`, 1)
	if len(snips) != 1 {
		t.Fatal("no snippet")
	}
	want := "delta epsilon zeta eta theta iota"
	if snips[0].Text != want {
		t.Errorf("snippet = %q, want %q", snips[0].Text, want)
	}
}

func TestEmptyQueryNoMatch(t *testing.T) {
	e := newTestEngine()
	if got := e.NumHits(""); got != 0 {
		t.Errorf("NumHits(\"\") = %d, want 0", got)
	}
}

func TestSearchRankedByRelevance(t *testing.T) {
	e := NewEngine()
	weak := e.Add("weak", "Airlines such as Delta fly here.")
	strong := e.Add("strong", "Airlines such as Delta. Airlines such as United. Airlines such as American.")
	snips := e.Search(`"airlines such as"`, 2)
	if len(snips) != 2 {
		t.Fatalf("snippets = %d", len(snips))
	}
	if snips[0].DocID != strong {
		t.Errorf("first result = doc %d, want the higher-frequency doc %d", snips[0].DocID, strong)
	}
	if snips[1].DocID != weak {
		t.Errorf("second result = doc %d, want %d", snips[1].DocID, weak)
	}
}

func TestSearchRankTieBreaksByID(t *testing.T) {
	e := NewEngine()
	a := e.Add("a", "make honda for sale")
	b := e.Add("b", "make honda for sale")
	snips := e.Search(`"make honda"`, 2)
	if snips[0].DocID != a || snips[1].DocID != b {
		t.Errorf("tie-break order = %v, want [%d %d]", snips, a, b)
	}
}
