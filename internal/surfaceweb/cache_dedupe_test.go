package surfaceweb

import (
	"reflect"
	"testing"
)

// TestCachedEngineCanonicalDedupe pins the compiled-key behavior:
// queries that differ only in whitespace or '+' markers share one
// cache entry and one engine execution, while the raw view still
// accounts every logical query.
func TestCachedEngineCanonicalDedupe(t *testing.T) {
	e := NewEngine()
	e.Add("d1", "red apples and green apples")
	e.Add("d2", "green pears")
	c := NewCachedEngine(e, 4)

	e.ResetAccounting()
	variants := []string{"green apples", "green  apples", " green apples ", "+green +apples", "apples green"}
	want := c.NumHits(variants[0])
	for _, q := range variants[1:] {
		if got := c.NumHits(q); got != want {
			t.Errorf("NumHits(%q) = %d, want %d", q, got, want)
		}
	}
	if got := e.QueryCount(); got != 1 {
		t.Errorf("engine executed %d queries, want 1 (variants must dedupe)", got)
	}
	if c.Hits() != len(variants)-1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", c.Hits(), c.Misses(), len(variants)-1)
	}
	if c.RawQueryCount() != len(variants) {
		t.Errorf("raw query count = %d, want %d (every logical query accounted)", c.RawQueryCount(), len(variants))
	}
	// The raw virtual time is the sum over the raw strings, not the
	// canonical form: each variant is billed its own deterministic
	// latency.
	var wantRaw int64
	for _, q := range variants {
		wantRaw += int64(e.QueryLatency(q))
	}
	if got := int64(c.RawVirtualTime()); got != wantRaw {
		t.Errorf("raw virtual time = %d, want %d", got, wantRaw)
	}

	// Search dedupes on (compiled form, k) and returns equal results.
	s1 := c.Search(`"green apples"`, 3)
	s2 := c.Search(`  "green apples"`, 3)
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("search variants disagree: %+v vs %+v", s1, s2)
	}
	if c.Len() != 2 { // one numhits entry + one search entry per distinct (key,k)
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
	// Distinct k must not dedupe.
	c.Search(`"green apples"`, 1)
	if c.Len() != 3 {
		t.Errorf("cache holds %d entries after k=1 search, want 3", c.Len())
	}
}
