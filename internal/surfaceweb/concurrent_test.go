package surfaceweb

import (
	"sync"
	"testing"
	"time"

	"webiq/internal/obs"
)

// TestConcurrentQueryStress drives NumHits/Search/accessor traffic from
// many goroutines against one engine (and a cache over it). Run under
// -race it pins the lock-split design: the read path must never race
// with accounting, metrics, or snapshot reads.
func TestConcurrentQueryStress(t *testing.T) {
	e := cacheFixture()
	r := obs.NewRegistry()
	e.Instrument(r)
	c := NewCachedEngine(e, 4)
	c.Instrument(r)

	queries := []string{
		`"makes such as"`, `"authors such as"`, `"honda"`, `"toyota"`,
		`"makes such as" +honda`, `"authors such as" +king`, `"missing term xyzzy"`,
	}
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(g*7+i)%len(queries)]
				switch i % 4 {
				case 0:
					e.NumHits(q)
				case 1:
					e.Search(q, 3)
				case 2:
					c.NumHits(q)
				default:
					c.Search(q, 3)
				}
				if i%10 == 0 {
					e.QueryCount()
					e.VirtualTime()
					e.NumDocs()
					e.Vocabulary()
				}
			}
		}(g)
	}
	wg.Wait()

	// Every query the engine executed is visible in both accountings.
	direct := goroutines * 50 / 2 // cases 0 and 1 bypass the cache
	if got := e.QueryCount(); got < direct {
		t.Errorf("engine query count %d < %d direct queries", got, direct)
	}
	if e.VirtualTime() <= 0 {
		t.Error("virtual time not accumulated")
	}
}

// TestConcurrentAddAndQuery exercises writers (Add) against readers: the
// RWMutex must serialize indexing with queries without corrupting either.
func TestConcurrentAddAndQuery(t *testing.T) {
	e := cacheFixture()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			e.Add("extra", "makes such as Subaru and Mazda round out the lot this month")
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			e.NumHits(`"makes such as"`)
		}
	}()
	wg.Wait()
	if got := e.NumHits(`"makes such as" +subaru`); got != 50 {
		t.Errorf("after concurrent adds, subaru pages = %d, want 50", got)
	}
}

// TestResetAccountingKeepsMetrics pins the documented invariant: resetting
// the per-run accounting leaves the cumulative obs counters untouched, so
// metrics-vs-Report reconciliation must use per-run deltas, never the
// absolute counter values after a reset.
func TestResetAccountingKeepsMetrics(t *testing.T) {
	e := cacheFixture()
	r := obs.NewRegistry()
	e.Instrument(r)

	e.NumHits(`"makes such as"`)
	e.NumHits(`"honda"`)
	mQueries := r.Counter("webiq_engine_queries_total", "")
	mLatency := r.Histogram("webiq_engine_query_virtual_seconds", "", nil)
	if mQueries.Value() != 2 {
		t.Fatalf("metric counter = %v, want 2", mQueries.Value())
	}

	e.ResetAccounting()
	if e.QueryCount() != 0 || e.VirtualTime() != 0 {
		t.Errorf("per-run accounting not reset: %d, %v", e.QueryCount(), e.VirtualTime())
	}
	if mQueries.Value() != 2 {
		t.Errorf("obs counter reset to %v; must stay cumulative at 2", mQueries.Value())
	}
	if mLatency.Count() != 2 {
		t.Errorf("obs histogram reset to %d; must stay cumulative at 2", mLatency.Count())
	}

	// After the reset both views advance in lockstep again: the drift is
	// exactly the pre-reset totals.
	e.NumHits(`"toyota"`)
	if e.QueryCount() != 1 || mQueries.Value() != 3 {
		t.Errorf("post-reset: per-run %d (want 1), cumulative %v (want 3)",
			e.QueryCount(), mQueries.Value())
	}
	if drift := mLatency.Sum() - e.VirtualTime().Seconds(); drift <= 0 {
		t.Errorf("cumulative virtual seconds should exceed per-run after reset, drift=%v", drift)
	}
}

// TestQueryLatencyMatchesCharge pins QueryLatency as the exact amount a
// served query adds to the virtual clock (cache layers rely on it).
func TestQueryLatencyMatchesCharge(t *testing.T) {
	e := cacheFixture()
	e.ResetAccounting()
	q := `"authors such as" +king`
	e.NumHits(q)
	if got, want := e.VirtualTime(), e.QueryLatency(q); got != want {
		t.Errorf("charged %v, QueryLatency says %v", got, want)
	}
	if lat := e.QueryLatency(q); lat < e.MinLatency || lat >= e.MaxLatency {
		t.Errorf("latency %v outside [%v, %v)", lat, e.MinLatency, e.MaxLatency)
	}
	var _ time.Duration = e.QueryLatency(q)
}
