package surfaceweb

// Batched hit counting with roll-up posting intersection.
//
// WebIQ's PMI validation issues bursts of structurally related phrase
// queries: for one attribute with validation phrases V1..Vm and
// candidates x1..xk, the joint queries are "Vi xj" for every pair, plus
// "Vi" and "xj" alone. Scalar NumHits re-walks the first term's posting
// list for every one of those queries — for a common head word like
// "authors" that is the whole corpus slice of the term, k·m times over.
//
// NumHitsBatch answers the whole burst in one pass. Queries are
// processed in phrase-lexicographic order while a stack of prefix match
// frames is maintained: frame d holds every (doc, start) where the
// first d+1 phrase terms match. Two queries sharing a phrase prefix
// share the frames for that prefix, so "authors such as hemingway" and
// "authors such as updike" each cost one filter step over the
// already-intersected "authors such as" frame instead of a fresh walk
// of the "authors" postings. All working memory comes from a pooled
// per-batch scratch, so steady-state batches allocate only the result
// slice.

import (
	"sort"
	"sync"
)

// BatchQuery is one query of a batched hit-count request: the compiled
// query to answer and the raw string billed to the virtual clock (the
// same pair NumHitsCompiled takes).
type BatchQuery struct {
	CQ      CompiledQuery
	Charged string
}

// tokenHit is one surviving phrase-prefix match: the document and the
// token index where the prefix starts.
type tokenHit struct {
	doc, pos int32
}

// batchScratch is the pooled working set of one NumHitsBatch call: the
// sort permutation and the prefix-frame stack. Frames keep their
// capacity across batches, so a steady stream of validation batches
// reuses the same backing arrays.
type batchScratch struct {
	order  []int
	frames [][]tokenHit
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// NumHitsBatch compiles and answers many queries in one engine pass,
// returning the hit count of each query in input order. Accounting is
// identical to issuing the queries one by one: every query is charged
// its deterministic latency against the raw string.
func (e *Engine) NumHitsBatch(queries []string) []int {
	qs := make([]BatchQuery, len(queries))
	for i, q := range queries {
		qs[i] = BatchQuery{CQ: e.Compile(q), Charged: q}
	}
	return e.NumHitsBatchCompiled(qs)
}

// NumHitsBatchCompiled answers many already-compiled queries in one
// pass under a single read lock, sharing phrase-prefix intersection
// work across the batch (see the package comment above). Results are
// in input order and each equals what NumHitsCompiled would return for
// the same query.
func (e *Engine) NumHitsBatchCompiled(qs []BatchQuery) []int {
	out := make([]int, len(qs))
	if len(qs) == 0 {
		return out
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	for i := range qs {
		e.charge(qs[i].Charged)
	}

	if e.ro != nil {
		e.ro.numHitsBatchFrozen(qs, out)
		return out
	}

	sc := batchPool.Get().(*batchScratch)
	order := batchOrder(sc, qs)

	var prev []uint32 // phrase whose prefixes the frames currently hold
	depth := 0        // number of valid frames
	for oi, qi := range order {
		cq := &qs[qi].CQ
		p := cq.Phrase
		switch {
		case len(p) == 0:
			out[qi] = e.countScalarLocked(cq)
			continue
		case len(p) == 1 && len(cq.Required) == 0:
			// A one-word phrase matches every document carrying the
			// term: the count is the posting map's size, no walk needed.
			out[qi] = len(e.index[p[0]])
			continue
		}
		// Reuse the frames of the longest common prefix with the
		// previous framed query, then extend term by term.
		common := 0
		for common < depth && common < len(p) && common < len(prev) && prev[common] == p[common] {
			common++
		}
		if common == 0 {
			// Isolated phrase: when the next query in phrase order does
			// not share this phrase's head term either, the frames built
			// here would never be reused, and frame 0 materializes every
			// position of the head term while the scalar walk
			// short-circuits per document at the first phrase match. Use
			// the scalar path and leave the frame stack untouched —
			// sorted order guarantees the next query shares nothing with
			// the still-cached prev (lcp(prev, next) = min(lcp(prev, p),
			// lcp(p, next)) = 0), so the stale frames are never reused.
			shared := false
			if oi+1 < len(order) {
				np := qs[order[oi+1]].CQ.Phrase
				shared = len(np) > 0 && np[0] == p[0]
			}
			if !shared {
				out[qi] = e.countScalarLocked(cq)
				continue
			}
		}
		for d := common; d < len(p); d++ {
			for len(sc.frames) <= d {
				sc.frames = append(sc.frames, nil)
			}
			if d == 0 {
				frame := sc.frames[0][:0]
				for doc, positions := range e.index[p[0]] {
					for _, pos := range positions {
						frame = append(frame, tokenHit{doc: int32(doc), pos: int32(pos)})
					}
				}
				sc.frames[0] = frame
				continue
			}
			term := p[d]
			dst := sc.frames[d][:0]
			curDoc := int32(-1)
			var toks []docToken
			for _, h := range sc.frames[d-1] {
				if h.doc != curDoc {
					curDoc = h.doc
					toks = e.docs[int(h.doc)].tokens
				}
				if at := int(h.pos) + d; at < len(toks) && toks[at].term == term {
					dst = append(dst, h)
				}
			}
			sc.frames[d] = dst
		}
		prev, depth = p, len(p)
		out[qi] = e.countFrameLocked(sc.frames[len(p)-1], cq.Required)
	}
	batchPool.Put(sc)
	return out
}

// batchOrder fills sc.order with the batch's processing permutation:
// phrase-lexicographic order clusters shared prefixes so adjacent
// queries reuse the deepest common frame. The sort is stable in effect
// because ties are broken by input index.
func batchOrder(sc *batchScratch, qs []BatchQuery) []int {
	order := sc.order[:0]
	for i := range qs {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := qs[order[a]].CQ.Phrase, qs[order[b]].CQ.Phrase
		for i := 0; i < len(pa) && i < len(pb); i++ {
			if pa[i] != pb[i] {
				return pa[i] < pb[i]
			}
		}
		if len(pa) != len(pb) {
			return len(pa) < len(pb)
		}
		return order[a] < order[b]
	})
	sc.order = order
	return order
}

// countFrameLocked counts the distinct documents of a fully-extended
// phrase frame that also carry every required term. Hits for one
// document are contiguous (the frame is built doc by doc and filters
// preserve order), so distinct documents are doc-value transitions.
func (e *Engine) countFrameLocked(frame []tokenHit, required []uint32) int {
	if len(frame) == 0 {
		return 0
	}
	var lists []postings
	for _, term := range required {
		p, ok := e.index[term]
		if !ok {
			return 0
		}
		lists = append(lists, p)
	}
	n := 0
	curDoc := int32(-1)
docs:
	for _, h := range frame {
		if h.doc == curDoc {
			continue
		}
		curDoc = h.doc
		for _, p := range lists {
			if _, ok := p[int(h.doc)]; !ok {
				continue docs
			}
		}
		n++
	}
	return n
}

// countScalarLocked counts the documents matching a query with the
// scalar engine's own matcher — used for phraseless queries and for
// phrases whose frames no other query in the batch would reuse.
func (e *Engine) countScalarLocked(cq *CompiledQuery) int {
	sc := searchPool.Get().(*searchScratch)
	n := len(e.matchLocked(*cq, sc))
	searchPool.Put(sc)
	return n
}
