package surfaceweb

import (
	"bytes"
	"strings"
	"testing"

	"webiq/internal/kb"
)

func TestSnapshotRoundTrip(t *testing.T) {
	orig := NewEngine()
	orig.Add("t1", "Airlines such as Delta, United, and Air Canada fly daily.")
	orig.Add("t2", "Make: Honda. Model: Accord.")

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != orig.NumDocs() {
		t.Fatalf("docs = %d, want %d", loaded.NumDocs(), orig.NumDocs())
	}
	for _, q := range []string{`"airlines such as"`, `"make honda"`, `delta`} {
		if loaded.NumHits(q) != orig.NumHits(q) {
			t.Errorf("hit counts differ for %s after reload", q)
		}
	}
	snips := loaded.Search(`"airlines such as"`, 3)
	if len(snips) == 0 || !strings.Contains(snips[0].Text, "Delta") {
		t.Errorf("snippets lost after reload: %v", snips)
	}
}

func TestSnapshotFullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus snapshot is slow")
	}
	orig := NewEngine()
	BuildCorpus(orig, kb.Domains(), DefaultCorpusConfig())
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != orig.NumDocs() || loaded.Vocabulary() != orig.Vocabulary() {
		t.Errorf("reload mismatch: docs %d/%d vocab %d/%d",
			loaded.NumDocs(), orig.NumDocs(), loaded.Vocabulary(), orig.Vocabulary())
	}
}

func TestSnapshotBadData(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not a gob stream")); err == nil {
		t.Error("want error on garbage input")
	}
}

func TestSnapshotVersionCheck(t *testing.T) {
	var buf bytes.Buffer
	e := NewEngine()
	e.Add("t", "text")
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding with a bumped version constant
	// is awkward with gob; instead verify the happy-path version is
	// accepted and vocabulary survives.
	loaded, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Vocabulary() != 1 {
		t.Errorf("vocabulary = %d", loaded.Vocabulary())
	}
}

func TestTermFrequency(t *testing.T) {
	e := NewEngine()
	e.Add("a", "delta flies from boston")
	e.Add("b", "Delta and United")
	if got := e.TermFrequency("Delta"); got != 2 {
		t.Errorf("TermFrequency(Delta) = %d, want 2", got)
	}
	if got := e.TermFrequency("zzz"); got != 0 {
		t.Errorf("TermFrequency(zzz) = %d, want 0", got)
	}
	if got := e.TermFrequency(""); got != 0 {
		t.Errorf("TermFrequency(\"\") = %d", got)
	}
}
