package surfaceweb

import (
	"math/rand"
	"strings"
	"testing"

	"webiq/internal/nlp"
)

// naiveHits counts matching documents by scanning tokenized text — the
// specification the inverted index must agree with.
func naiveHits(docs []string, query string) int {
	q := ParseQuery(query)
	hits := 0
	for _, text := range docs {
		var words []string
		for _, tok := range nlp.Tokenize(text) {
			if tok.Kind != nlp.Punct {
				words = append(words, tok.Norm)
			}
		}
		if matchesNaive(words, q) {
			hits++
		}
	}
	return hits
}

func matchesNaive(words []string, q Query) bool {
	if len(q.Phrase) > 0 {
		found := false
	outer:
		for i := 0; i+len(q.Phrase) <= len(words); i++ {
			for j, w := range q.Phrase {
				if words[i+j] != w {
					continue outer
				}
			}
			found = true
			break
		}
		if !found {
			return false
		}
	} else if len(q.Required) == 0 {
		return false
	}
	for _, term := range q.Required {
		found := false
		for _, w := range words {
			if w == term {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestIndexAgreesWithNaiveScan cross-checks the inverted index against a
// brute-force scan over randomized documents and queries.
func TestIndexAgreesWithNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocab := []string{"delta", "united", "boston", "chicago", "airline",
		"such", "as", "make", "honda", "price", "city"}
	var docs []string
	e := NewEngine()
	for d := 0; d < 60; d++ {
		n := 3 + rng.Intn(10)
		words := make([]string, n)
		for i := range words {
			words[i] = vocab[rng.Intn(len(vocab))]
		}
		text := strings.Join(words, " ")
		docs = append(docs, text)
		e.Add("d", text)
	}
	queries := []string{
		`"airline delta"`, `"such as"`, `delta`, `+delta +boston`,
		`"make honda" +price`, `"delta united boston"`, `"city"`,
		`zzz`, `"zzz yyy"`,
	}
	// Randomized phrase queries too.
	for k := 0; k < 30; k++ {
		n := 1 + rng.Intn(3)
		var parts []string
		for i := 0; i < n; i++ {
			parts = append(parts, vocab[rng.Intn(len(vocab))])
		}
		q := `"` + strings.Join(parts, " ") + `"`
		if rng.Intn(2) == 0 {
			q += " +" + vocab[rng.Intn(len(vocab))]
		}
		queries = append(queries, q)
	}
	for _, q := range queries {
		want := naiveHits(docs, q)
		got := e.NumHits(q)
		if got != want {
			t.Errorf("NumHits(%s) = %d, naive scan = %d", q, got, want)
		}
	}
}

// TestSnippetsContainPhrase: every snippet returned for a phrase query
// contains the phrase (modulo case and punctuation).
func TestSnippetsContainPhrase(t *testing.T) {
	e := NewEngine()
	e.Add("a", "Airlines such as Delta, United, and Air Canada fly daily from Boston.")
	e.Add("b", "We list airlines such as Lufthansa for European routes.")
	for _, snip := range e.Search(`"airlines such as"`, 10) {
		var words []string
		for _, tok := range nlp.Tokenize(snip.Text) {
			if tok.Kind != nlp.Punct {
				words = append(words, tok.Norm)
			}
		}
		if !matchesNaive(words, Query{Phrase: []string{"airlines", "such", "as"}}) {
			t.Errorf("snippet %q lacks the phrase", snip.Text)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 50; i++ {
		e.Add("t", "airlines such as delta united boston chicago")
	}
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				e.NumHits(`"airlines such as" +delta`)
				e.Search(`delta`, 3)
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if e.QueryCount() != 8*200 {
		t.Errorf("query count = %d, want 1600", e.QueryCount())
	}
}
