package surfaceweb

import (
	"encoding/gob"
	"fmt"
	"io"

	"webiq/internal/nlp"
)

// Snapshot persistence: a built corpus + index can be written once and
// reloaded across processes, skipping regeneration. The snapshot stores
// the raw documents and rebuilds token positions on load, so format
// changes in the tokenizer cannot desynchronize index and text.

// snapshot is the gob wire format.
type snapshot struct {
	Version int
	Docs    []Document
}

// snapshotVersion guards against loading incompatible snapshots.
const snapshotVersion = 1

// WriteSnapshot serializes the engine's corpus.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	e.mu.RLock()
	var snap snapshot
	snap.Version = snapshotVersion
	if ro := e.ro; ro != nil {
		snap.Docs = make([]Document, 0, ro.numDocs)
		for id := 0; id < ro.numDocs; id++ {
			snap.Docs = append(snap.Docs, Document{ID: id, Title: ro.title(id), Text: ro.text(id)})
		}
	} else {
		snap.Docs = make([]Document, 0, len(e.docs))
		for id := 0; id < e.next; id++ {
			if d, ok := e.docs[id]; ok {
				snap.Docs = append(snap.Docs, d.doc)
			}
		}
	}
	e.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("surfaceweb: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads a corpus written by WriteSnapshot into a fresh
// engine, re-indexing the documents.
func ReadSnapshot(r io.Reader) (*Engine, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("surfaceweb: read snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("surfaceweb: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	e := NewEngine()
	for _, d := range snap.Docs {
		e.Add(d.Title, d.Text)
	}
	return e, nil
}

// Vocabulary returns the number of distinct indexed terms — a cheap
// sanity statistic for snapshots and corpus inspection.
func (e *Engine) Vocabulary() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.ro != nil {
		return e.ro.vocab
	}
	return len(e.index)
}

// TermFrequency returns how many documents contain the (normalized)
// term.
func (e *Engine) TermFrequency(term string) int {
	norm := ""
	if ws := nlp.Words(term); len(ws) > 0 {
		norm = ws[0]
	}
	id, ok := e.terms.Lookup(norm)
	if !ok {
		return 0
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.ro != nil {
		return e.ro.docCount(id)
	}
	return len(e.index[id])
}
