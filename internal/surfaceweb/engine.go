// Package surfaceweb simulates the Surface Web as WebIQ observes it: a
// corpus of pages behind a search-engine interface supporting phrase
// queries, required-keyword filters, hit counts, and result snippets —
// the four observables WebIQ's extraction and validation steps consume
// (the paper used the Google Web API).
//
// The package also accounts for query overhead: every query increments a
// counter and charges a deterministic per-query latency (the paper cites
// 0.1–0.5 s per Google query) to a virtual clock, which the Figure-8
// overhead experiment reads.
package surfaceweb

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webiq/internal/nlp"
	"webiq/internal/obs"
)

// Document is one Surface-Web page.
type Document struct {
	ID    int
	Title string
	Text  string
}

// Snippet is a search-result excerpt containing the matched phrase.
type Snippet struct {
	DocID int
	Text  string
}

// Query is a parsed search-engine query: an optional exact phrase (the
// double-quoted part) plus required keywords (the '+' terms). Bare terms
// are treated as required keywords too, matching how WebIQ uses the
// engine.
type Query struct {
	Phrase   []string
	Required []string
}

// ParseQuery parses the Google-style query syntax used in the paper:
//
//	"authors such as" +book +title +isbn
//
// Quoted segments are matched left to right; the first becomes the
// phrase and any further ones are demoted to required terms. An
// unmatched trailing quote is not a phrase delimiter — the text after
// it is treated as plain keywords. Everything outside complete quote
// pairs is split into fields, each stripped of one leading '+' and
// reduced to its word tokens.
func ParseQuery(q string) Query {
	var out Query
	var plain []string // unquoted chunks, processed after all phrases
	i := 0
	for {
		start := strings.IndexByte(q[i:], '"')
		if start < 0 {
			break
		}
		start += i
		end := strings.IndexByte(q[start+1:], '"')
		if end < 0 {
			break
		}
		phrase := q[start+1 : start+1+end]
		if len(out.Phrase) == 0 {
			out.Phrase = nlp.Words(phrase)
		} else {
			out.Required = nlp.AppendWords(out.Required, phrase)
		}
		if start > i {
			plain = append(plain, q[i:start])
		}
		i = start + 1 + end + 1
	}
	if i < len(q) {
		plain = append(plain, q[i:])
	}
	for _, chunk := range plain {
		for _, f := range strings.Fields(chunk) {
			f = strings.TrimPrefix(f, "+")
			out.Required = nlp.AppendWords(out.Required, f)
		}
	}
	return out
}

// CompiledQuery is a query resolved against an engine's term table:
// phrase and required terms as dense term IDs. Compiling once per
// logical query replaces every per-document string comparison in the
// match loop with an integer comparison. A CompiledQuery is only
// meaningful with the engine that produced it.
type CompiledQuery struct {
	Phrase   []uint32
	Required []uint32
}

// Key returns a canonical cache key for the compiled query: queries
// that differ only in whitespace, '+' prefixes, quoting of individual
// words, or required-term order ("a b" vs "a  b" vs "+b a") map to the
// same key. Required-term duplicates are preserved — they affect
// relevance scores — but their order is normalized by sorting; phrase
// order is significant and kept.
func (cq CompiledQuery) Key() string {
	return string(cq.AppendKey(nil))
}

// AppendKey appends the canonical cache key (see Key) to dst and
// returns the extended slice. Callers holding a reusable buffer avoid
// the per-probe key allocation Key incurs.
func (cq CompiledQuery) AppendKey(dst []byte) []byte {
	for _, id := range cq.Phrase {
		dst = strconv.AppendUint(dst, uint64(id), 10)
		dst = append(dst, ',')
	}
	dst = append(dst, '|')
	if len(cq.Required) > 0 {
		var stack [16]uint32
		req := stack[:0]
		if len(cq.Required) > len(stack) {
			req = make([]uint32, 0, len(cq.Required))
		}
		req = append(req, cq.Required...)
		sort.Slice(req, func(i, j int) bool { return req[i] < req[j] })
		for _, id := range req {
			dst = strconv.AppendUint(dst, uint64(id), 10)
			dst = append(dst, ',')
		}
	}
	return dst
}

// postings maps document ID to the token positions of a term.
type postings map[int][]int

// docToken is one indexed (non-punctuation) token of a document: its
// interned term and the byte span of the original text it covers. At
// 12 bytes it replaces the 40+-byte nlp.Token in the per-document
// arrays, and snippets are rebuilt from the spans without copying.
type docToken struct {
	term       uint32
	start, end uint32
}

// Engine is the in-memory search engine.
//
// The index is effectively immutable once the corpus is built, so the
// read path (NumHits, Search, and the other accessors) takes only a
// read lock and concurrent queriers never serialize on each other; Add
// takes the write lock. Query accounting lives in atomics so charging a
// query needs no exclusive section either.
type Engine struct {
	mu    sync.RWMutex
	terms *nlp.TermTable
	docs  map[int]*indexedDoc
	index map[uint32]postings
	next  int

	// ro, when non-nil, is the frozen flat-array storage the read path
	// serves from instead of the maps above (see freeze.go). It is set
	// only at construction (NewFrozenEngine) and never cleared.
	ro *FrozenIndex

	queries     atomic.Int64
	virtualTime atomic.Int64 // nanoseconds

	// Optional metrics; nil-safe no-ops when Instrument was not called.
	mQueries *obs.Counter
	mLatency *obs.Histogram
	mDocs    *obs.Gauge

	// Latency bounds for the simulated per-query retrieval time. Set
	// them before issuing queries: they are read without synchronization
	// on the query path.
	MinLatency, MaxLatency time.Duration
	// SnippetRadius is the number of tokens of context on each side of a
	// phrase match in a snippet.
	SnippetRadius int
}

// Instrument registers the engine's metrics on r:
//
//	webiq_engine_queries_total          search queries served
//	webiq_engine_query_virtual_seconds  per-query simulated latency
//	webiq_engine_corpus_docs            corpus size in pages
//
// Passing nil leaves the engine uninstrumented (the default).
func (e *Engine) Instrument(r *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mQueries = r.Counter("webiq_engine_queries_total", "Search-engine queries served.")
	e.mLatency = r.Histogram("webiq_engine_query_virtual_seconds", "Simulated per-query retrieval latency in seconds.", nil)
	e.mDocs = r.Gauge("webiq_engine_corpus_docs", "Pages indexed in the synthetic Surface-Web corpus.")
	e.mDocs.Set(float64(e.docCountLocked()))
}

// docCountLocked returns the corpus size; callers hold e.mu (either
// mode).
func (e *Engine) docCountLocked() int {
	if e.ro != nil {
		return e.ro.numDocs
	}
	return len(e.docs)
}

type indexedDoc struct {
	doc    Document
	tokens []docToken // word/number tokens only
}

// NewEngine returns an empty engine with the paper's latency range.
func NewEngine() *Engine {
	return &Engine{
		terms:         nlp.NewTermTable(),
		docs:          map[int]*indexedDoc{},
		index:         map[uint32]postings{},
		MinLatency:    100 * time.Millisecond,
		MaxLatency:    500 * time.Millisecond,
		SnippetRadius: 10,
	}
}

// Terms returns the engine's term table, shared with every query
// compiled against it.
func (e *Engine) Terms() *nlp.TermTable { return e.terms }

// Add indexes a document and returns its assigned ID. It panics on a
// frozen engine: snapshot-loaded corpora never grow, and silently
// dropping a document would desynchronize index and text.
func (e *Engine) Add(title, text string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ro != nil {
		panic("surfaceweb: Add on a frozen engine")
	}
	id := e.next
	e.next++
	var toks []docToken
	var sc nlp.TokenScanner
	for sc.Reset(text); sc.Scan(); {
		t := sc.Token()
		if t.Kind == nlp.Punct {
			continue
		}
		toks = append(toks, docToken{
			term:  e.terms.Intern(t.Norm),
			start: uint32(t.Pos),
			end:   uint32(t.Pos + len(t.Text)),
		})
	}
	e.docs[id] = &indexedDoc{doc: Document{ID: id, Title: title, Text: text}, tokens: toks}
	for pos, t := range toks {
		p := e.index[t.term]
		if p == nil {
			p = postings{}
			e.index[t.term] = p
		}
		p[id] = append(p[id], pos)
	}
	e.mDocs.Set(float64(len(e.docs)))
	return id
}

// NumDocs returns the corpus size.
func (e *Engine) NumDocs() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.docCountLocked()
}

// QueryCount returns the number of queries served so far.
func (e *Engine) QueryCount() int {
	return int(e.queries.Load())
}

// VirtualTime returns the accumulated simulated retrieval time.
func (e *Engine) VirtualTime() time.Duration {
	return time.Duration(e.virtualTime.Load())
}

// ResetAccounting zeroes the query counter and virtual clock.
//
// It deliberately does NOT reset the obs registry counters
// (webiq_engine_queries_total, webiq_engine_query_virtual_seconds):
// Prometheus counters are cumulative over the process lifetime and must
// stay monotonic for rate() to work, while QueryCount/VirtualTime are
// per-run accounting that experiments reset between conditions. After a
// reset the two therefore drift apart by exactly the pre-reset totals;
// reconcile them per run with clock deltas, as the Acquirer does.
func (e *Engine) ResetAccounting() {
	e.queries.Store(0)
	e.virtualTime.Store(0)
}

// QueryLatency returns the deterministic simulated latency of a query —
// the amount charge adds to the virtual clock when the query is served.
// Cache layers use it to account the virtual time a cache hit avoided.
func (e *Engine) QueryLatency(q string) time.Duration {
	lat := e.MinLatency
	if span := e.MaxLatency - e.MinLatency; span > 0 {
		lat += time.Duration(int64(hash32(q)) % int64(span))
	}
	return lat
}

// charge records one query and its simulated latency. The latency is
// deterministic in the query string so runs are reproducible. All
// updates are atomic: charge is called from the read-locked query path.
func (e *Engine) charge(q string) {
	e.queries.Add(1)
	lat := e.QueryLatency(q)
	e.virtualTime.Add(int64(lat))
	e.mQueries.Inc()
	e.mLatency.Observe(lat.Seconds())
}

// Compile parses query and resolves it against the term table. Query
// terms never seen by the index are interned too — they get IDs with no
// postings, so the compiled query correctly matches nothing.
func (e *Engine) Compile(query string) CompiledQuery {
	return e.CompileParsed(ParseQuery(query))
}

// CompileParsed resolves an already-parsed query against the term
// table.
func (e *Engine) CompileParsed(q Query) CompiledQuery {
	var cq CompiledQuery
	if len(q.Phrase) > 0 {
		cq.Phrase = make([]uint32, len(q.Phrase))
		for i, w := range q.Phrase {
			cq.Phrase[i] = e.terms.Intern(w)
		}
	}
	if len(q.Required) > 0 {
		cq.Required = make([]uint32, len(q.Required))
		for i, w := range q.Required {
			cq.Required[i] = e.terms.Intern(w)
		}
	}
	return cq
}

// NumHits returns the number of documents matching the query.
func (e *Engine) NumHits(query string) int {
	return e.NumHitsCompiled(e.Compile(query), query)
}

// NumHitsCompiled counts the documents matching an already-compiled
// query. charged is the raw query string the virtual clock is billed
// for — accounting is deterministic in it.
func (e *Engine) NumHitsCompiled(cq CompiledQuery, charged string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.charge(charged)
	if len(cq.Phrase) == 1 && len(cq.Required) == 0 {
		// A one-word phrase matches exactly the documents in the term's
		// posting list; counting them needs no position walk.
		if e.ro != nil {
			return e.ro.docCount(cq.Phrase[0])
		}
		return len(e.index[cq.Phrase[0]])
	}
	sc := searchPool.Get().(*searchScratch)
	var n int
	if e.ro != nil {
		n = len(e.ro.match(cq, sc))
	} else {
		n = len(e.matchLocked(cq, sc))
	}
	searchPool.Put(sc)
	return n
}

// Search returns up to k result snippets for the query, ranked by
// relevance: documents with more phrase occurrences and more required-
// term occurrences score higher, with document ID as a deterministic
// tie-break.
func (e *Engine) Search(query string, k int) []Snippet {
	return e.SearchCompiled(e.Compile(query), query, k)
}

// SearchCompiled is Search for an already-compiled query; charged is
// the raw query string billed to the virtual clock.
func (e *Engine) SearchCompiled(cq CompiledQuery, charged string, k int) []Snippet {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.charge(charged)
	ro := e.ro
	sc := searchPool.Get().(*searchScratch)
	var ids []int
	if ro != nil {
		ids = ro.match(cq, sc)
	} else {
		ids = e.matchLocked(cq, sc)
	}
	ranked := sc.ranked[:0]
	for _, id := range ids {
		var score int
		if ro != nil {
			score = ro.relevance(id, cq)
		} else {
			score = e.relevanceLocked(id, cq)
		}
		ranked = append(ranked, scoredDoc{id: id, score: score})
	}
	sc.ranked = ranked
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]Snippet, 0, len(ranked))
	for _, r := range ranked {
		var text string
		if ro != nil {
			text = ro.snippet(r.id, cq, e.SnippetRadius)
		} else {
			text = e.snippetLocked(r.id, cq)
		}
		out = append(out, Snippet{DocID: r.id, Text: text})
	}
	searchPool.Put(sc)
	return out
}

// scoredDoc pairs a matching document with its relevance score.
type scoredDoc struct {
	id    int
	score int
}

// termSpan is a posting-entry range of one term in a frozen index.
type termSpan struct{ lo, hi uint64 }

// searchScratch holds the per-query working set — the posting-list
// slice (mutable path) or span list (frozen path), matched IDs, and
// ranking buffer — pooled so steady-state query execution allocates
// only its result snippets.
type searchScratch struct {
	lists  []postings
	spans  []termSpan
	ids    []int
	ranked []scoredDoc
}

var searchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// relevanceLocked scores a matching document: phrase occurrences weigh
// 3, required-term occurrences weigh 1.
func (e *Engine) relevanceLocked(id int, cq CompiledQuery) int {
	score := 0
	if len(cq.Phrase) > 0 {
		d := e.docs[id]
		positions := e.index[cq.Phrase[0]][id]
	starts:
		for _, pos := range positions {
			if pos+len(cq.Phrase) > len(d.tokens) {
				continue
			}
			for j := 1; j < len(cq.Phrase); j++ {
				if d.tokens[pos+j].term != cq.Phrase[j] {
					continue starts
				}
			}
			score += 3
		}
	}
	for _, term := range cq.Required {
		score += len(e.index[term][id])
	}
	return score
}

// matchLocked returns the IDs of documents matching the compiled query,
// in sc.ids (unsorted — callers count or re-rank). Required terms are
// intersected directly against their posting lists, starting from the
// smallest list, so the working set never exceeds the rarest term's
// postings and no per-term candidate map is allocated.
func (e *Engine) matchLocked(cq CompiledQuery, sc *searchScratch) []int {
	lists := sc.lists[:0]
	sc.ids = sc.ids[:0]
	missing := false
	for _, term := range cq.Required {
		p, ok := e.index[term]
		if !ok {
			missing = true
			break
		}
		lists = append(lists, p)
	}
	sc.lists = lists
	if missing {
		return nil
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })

	inAll := func(id int, from int) bool {
		for _, p := range lists[from:] {
			if _, ok := p[id]; !ok {
				return false
			}
		}
		return true
	}

	ids := sc.ids
	switch {
	case len(cq.Phrase) > 0:
		first, ok := e.index[cq.Phrase[0]]
		if !ok {
			return nil
		}
		for id, positions := range first {
			if !phraseAt(e.docs[id].tokens, positions, cq.Phrase) {
				continue
			}
			if inAll(id, 0) {
				ids = append(ids, id)
			}
		}
	case len(lists) > 0:
		for id := range lists[0] {
			if inAll(id, 1) {
				ids = append(ids, id)
			}
		}
	}
	sc.ids = ids
	return ids
}

// phraseAt reports whether the phrase occurs in toks at any of the
// given start positions.
func phraseAt(toks []docToken, positions []int, phrase []uint32) bool {
starts:
	for _, pos := range positions {
		if pos+len(phrase) > len(toks) {
			continue
		}
		for j := 1; j < len(phrase); j++ {
			if toks[pos+j].term != phrase[j] {
				continue starts
			}
		}
		return true
	}
	return false
}

// snippetLocked builds the text window around the first phrase match (or
// the document head when the query has no phrase). The snippet is a
// substring of the stored document text — byte spans recorded at
// indexing time, no reconstruction or copying.
func (e *Engine) snippetLocked(id int, cq CompiledQuery) string {
	d := e.docs[id]
	start, end := 0, min(len(d.tokens), 2*e.SnippetRadius)
	if len(cq.Phrase) > 0 {
		if pos, ok := e.firstPhrasePosLocked(d, cq.Phrase); ok {
			start = max(0, pos-e.SnippetRadius)
			end = min(len(d.tokens), pos+len(cq.Phrase)+e.SnippetRadius)
		}
	}
	if start >= end {
		return ""
	}
	return d.doc.Text[d.tokens[start].start:d.tokens[end-1].end]
}

func (e *Engine) firstPhrasePosLocked(d *indexedDoc, phrase []uint32) (int, bool) {
	p, ok := e.index[phrase[0]]
	if !ok {
		return 0, false
	}
	positions := p[d.doc.ID]
starts:
	for _, pos := range positions {
		if pos+len(phrase) > len(d.tokens) {
			continue
		}
		for j := 1; j < len(phrase); j++ {
			if d.tokens[pos+j].term != phrase[j] {
				continue starts
			}
		}
		return pos, true
	}
	return 0, false
}

func hash32(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// hash32b is hash32 over a byte slice; the two agree on equal contents.
func hash32b(b []byte) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
