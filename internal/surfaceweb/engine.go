// Package surfaceweb simulates the Surface Web as WebIQ observes it: a
// corpus of pages behind a search-engine interface supporting phrase
// queries, required-keyword filters, hit counts, and result snippets —
// the four observables WebIQ's extraction and validation steps consume
// (the paper used the Google Web API).
//
// The package also accounts for query overhead: every query increments a
// counter and charges a deterministic per-query latency (the paper cites
// 0.1–0.5 s per Google query) to a virtual clock, which the Figure-8
// overhead experiment reads.
package surfaceweb

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webiq/internal/nlp"
	"webiq/internal/obs"
)

// Document is one Surface-Web page.
type Document struct {
	ID    int
	Title string
	Text  string
}

// Snippet is a search-result excerpt containing the matched phrase.
type Snippet struct {
	DocID int
	Text  string
}

// Query is a parsed search-engine query: an optional exact phrase (the
// double-quoted part) plus required keywords (the '+' terms). Bare terms
// are treated as required keywords too, matching how WebIQ uses the
// engine.
type Query struct {
	Phrase   []string
	Required []string
}

// ParseQuery parses the Google-style query syntax used in the paper:
//
//	"authors such as" +book +title +isbn
func ParseQuery(q string) Query {
	var out Query
	rest := q
	for {
		start := strings.IndexByte(rest, '"')
		if start < 0 {
			break
		}
		end := strings.IndexByte(rest[start+1:], '"')
		if end < 0 {
			break
		}
		phrase := rest[start+1 : start+1+end]
		if len(out.Phrase) == 0 {
			out.Phrase = nlp.Words(phrase)
		} else {
			// Additional phrases are demoted to required terms.
			out.Required = append(out.Required, nlp.Words(phrase)...)
		}
		rest = rest[:start] + " " + rest[start+1+end+1:]
	}
	for _, f := range strings.Fields(rest) {
		f = strings.TrimPrefix(f, "+")
		out.Required = append(out.Required, nlp.Words(f)...)
	}
	return out
}

// postings maps document ID to the token positions of a term.
type postings map[int][]int

// Engine is the in-memory search engine.
//
// The index is effectively immutable once the corpus is built, so the
// read path (NumHits, Search, and the other accessors) takes only a
// read lock and concurrent queriers never serialize on each other; Add
// takes the write lock. Query accounting lives in atomics so charging a
// query needs no exclusive section either.
type Engine struct {
	mu    sync.RWMutex
	docs  map[int]*indexedDoc
	index map[string]postings
	next  int

	queries     atomic.Int64
	virtualTime atomic.Int64 // nanoseconds

	// Optional metrics; nil-safe no-ops when Instrument was not called.
	mQueries *obs.Counter
	mLatency *obs.Histogram
	mDocs    *obs.Gauge

	// Latency bounds for the simulated per-query retrieval time. Set
	// them before issuing queries: they are read without synchronization
	// on the query path.
	MinLatency, MaxLatency time.Duration
	// SnippetRadius is the number of tokens of context on each side of a
	// phrase match in a snippet.
	SnippetRadius int
}

// Instrument registers the engine's metrics on r:
//
//	webiq_engine_queries_total          search queries served
//	webiq_engine_query_virtual_seconds  per-query simulated latency
//	webiq_engine_corpus_docs            corpus size in pages
//
// Passing nil leaves the engine uninstrumented (the default).
func (e *Engine) Instrument(r *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mQueries = r.Counter("webiq_engine_queries_total", "Search-engine queries served.")
	e.mLatency = r.Histogram("webiq_engine_query_virtual_seconds", "Simulated per-query retrieval latency in seconds.", nil)
	e.mDocs = r.Gauge("webiq_engine_corpus_docs", "Pages indexed in the synthetic Surface-Web corpus.")
	e.mDocs.Set(float64(len(e.docs)))
}

type indexedDoc struct {
	doc    Document
	tokens []nlp.Token // word/number tokens only
}

// NewEngine returns an empty engine with the paper's latency range.
func NewEngine() *Engine {
	return &Engine{
		docs:          map[int]*indexedDoc{},
		index:         map[string]postings{},
		MinLatency:    100 * time.Millisecond,
		MaxLatency:    500 * time.Millisecond,
		SnippetRadius: 10,
	}
}

// Add indexes a document and returns its assigned ID.
func (e *Engine) Add(title, text string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.next
	e.next++
	var toks []nlp.Token
	for _, t := range nlp.Tokenize(text) {
		if t.Kind != nlp.Punct {
			toks = append(toks, t)
		}
	}
	e.docs[id] = &indexedDoc{doc: Document{ID: id, Title: title, Text: text}, tokens: toks}
	for pos, t := range toks {
		p := e.index[t.Norm]
		if p == nil {
			p = postings{}
			e.index[t.Norm] = p
		}
		p[id] = append(p[id], pos)
	}
	e.mDocs.Set(float64(len(e.docs)))
	return id
}

// NumDocs returns the corpus size.
func (e *Engine) NumDocs() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.docs)
}

// QueryCount returns the number of queries served so far.
func (e *Engine) QueryCount() int {
	return int(e.queries.Load())
}

// VirtualTime returns the accumulated simulated retrieval time.
func (e *Engine) VirtualTime() time.Duration {
	return time.Duration(e.virtualTime.Load())
}

// ResetAccounting zeroes the query counter and virtual clock.
//
// It deliberately does NOT reset the obs registry counters
// (webiq_engine_queries_total, webiq_engine_query_virtual_seconds):
// Prometheus counters are cumulative over the process lifetime and must
// stay monotonic for rate() to work, while QueryCount/VirtualTime are
// per-run accounting that experiments reset between conditions. After a
// reset the two therefore drift apart by exactly the pre-reset totals;
// reconcile them per run with clock deltas, as the Acquirer does.
func (e *Engine) ResetAccounting() {
	e.queries.Store(0)
	e.virtualTime.Store(0)
}

// QueryLatency returns the deterministic simulated latency of a query —
// the amount charge adds to the virtual clock when the query is served.
// Cache layers use it to account the virtual time a cache hit avoided.
func (e *Engine) QueryLatency(q string) time.Duration {
	lat := e.MinLatency
	if span := e.MaxLatency - e.MinLatency; span > 0 {
		lat += time.Duration(int64(hash32(q)) % int64(span))
	}
	return lat
}

// charge records one query and its simulated latency. The latency is
// deterministic in the query string so runs are reproducible. All
// updates are atomic: charge is called from the read-locked query path.
func (e *Engine) charge(q string) {
	e.queries.Add(1)
	lat := e.QueryLatency(q)
	e.virtualTime.Add(int64(lat))
	e.mQueries.Inc()
	e.mLatency.Observe(lat.Seconds())
}

// NumHits returns the number of documents matching the query.
func (e *Engine) NumHits(query string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.charge(query)
	return len(e.matchLocked(ParseQuery(query)))
}

// Search returns up to k result snippets for the query, ranked by
// relevance: documents with more phrase occurrences and more required-
// term occurrences score higher, with document ID as a deterministic
// tie-break.
func (e *Engine) Search(query string, k int) []Snippet {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.charge(query)
	pq := ParseQuery(query)
	ids := e.matchLocked(pq)
	type scored struct {
		id    int
		score int
	}
	ranked := make([]scored, 0, len(ids))
	for _, id := range ids {
		ranked = append(ranked, scored{id: id, score: e.relevanceLocked(id, pq)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]Snippet, 0, len(ranked))
	for _, r := range ranked {
		out = append(out, Snippet{DocID: r.id, Text: e.snippetLocked(r.id, pq)})
	}
	return out
}

// relevanceLocked scores a matching document: phrase occurrences weigh
// 3, required-term occurrences weigh 1.
func (e *Engine) relevanceLocked(id int, q Query) int {
	score := 0
	if len(q.Phrase) > 0 {
		d := e.docs[id]
		positions := e.index[q.Phrase[0]][id]
	starts:
		for _, pos := range positions {
			if pos+len(q.Phrase) > len(d.tokens) {
				continue
			}
			for j := 1; j < len(q.Phrase); j++ {
				if d.tokens[pos+j].Norm != q.Phrase[j] {
					continue starts
				}
			}
			score += 3
		}
	}
	for _, term := range q.Required {
		score += len(e.index[term][id])
	}
	return score
}

// matchLocked returns the IDs of documents matching the parsed query.
// Required terms are intersected directly against their posting lists,
// starting from the smallest list, so the working set never exceeds the
// rarest term's postings and no per-term candidate map is allocated.
func (e *Engine) matchLocked(q Query) []int {
	lists := make([]postings, 0, len(q.Required))
	for _, term := range q.Required {
		p, ok := e.index[term]
		if !ok {
			return nil
		}
		lists = append(lists, p)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })

	inAll := func(id int, from int) bool {
		for _, p := range lists[from:] {
			if _, ok := p[id]; !ok {
				return false
			}
		}
		return true
	}

	var out []int
	switch {
	case len(q.Phrase) > 0:
		for id := range e.phraseDocsLocked(q.Phrase) {
			if inAll(id, 0) {
				out = append(out, id)
			}
		}
	case len(lists) > 0:
		for id := range lists[0] {
			if inAll(id, 1) {
				out = append(out, id)
			}
		}
	}
	return out
}

// phraseDocsLocked returns the documents containing the exact token
// sequence.
func (e *Engine) phraseDocsLocked(phrase []string) map[int]bool {
	out := map[int]bool{}
	first, ok := e.index[phrase[0]]
	if !ok {
		return out
	}
docs:
	for id, positions := range first {
		toks := e.docs[id].tokens
	starts:
		for _, pos := range positions {
			if pos+len(phrase) > len(toks) {
				continue
			}
			for j := 1; j < len(phrase); j++ {
				if toks[pos+j].Norm != phrase[j] {
					continue starts
				}
			}
			out[id] = true
			continue docs
		}
	}
	return out
}

// snippetLocked builds the text window around the first phrase match (or
// the document head when the query has no phrase).
func (e *Engine) snippetLocked(id int, q Query) string {
	d := e.docs[id]
	start, end := 0, min(len(d.tokens), 2*e.SnippetRadius)
	if len(q.Phrase) > 0 {
		if pos, ok := e.firstPhrasePosLocked(d, q.Phrase); ok {
			start = max(0, pos-e.SnippetRadius)
			end = min(len(d.tokens), pos+len(q.Phrase)+e.SnippetRadius)
		}
	}
	if start >= end {
		return ""
	}
	// Reconstruct the original text span, preserving punctuation between
	// the chosen tokens.
	from := d.tokens[start].Pos
	last := d.tokens[end-1]
	to := last.Pos + len(last.Text)
	return d.doc.Text[from:to]
}

func (e *Engine) firstPhrasePosLocked(d *indexedDoc, phrase []string) (int, bool) {
	p, ok := e.index[phrase[0]]
	if !ok {
		return 0, false
	}
	positions := p[d.doc.ID]
starts:
	for _, pos := range positions {
		if pos+len(phrase) > len(d.tokens) {
			continue
		}
		for j := 1; j < len(phrase); j++ {
			if d.tokens[pos+j].Norm != phrase[j] {
				continue starts
			}
		}
		return pos, true
	}
	return 0, false
}

func hash32(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
