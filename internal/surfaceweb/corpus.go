package surfaceweb

import (
	"math/rand"
	"strings"

	"webiq/internal/kb"
	"webiq/internal/nlp"
)

// CorpusConfig controls synthetic corpus generation.
type CorpusConfig struct {
	// Seed drives all random choices.
	Seed int64
	// PagesPerConcept is the base number of pattern pages generated for a
	// concept; it is scaled by the concept's WebPresence.
	PagesPerConcept int
	// NoisePages is the number of unrelated noise pages added per domain.
	NoisePages int
	// ConfusionRate is the probability a pattern page plants a value from
	// a different concept of the same domain — the Web's noise that the
	// verification phase must filter out.
	ConfusionRate float64
	// JunkRate is the probability a set-pattern list includes a junk
	// entry (an over-long phrase or an absurd numeric value) that outlier
	// detection should catch.
	JunkRate float64
}

// DefaultCorpusConfig returns the configuration used by the experiments.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Seed:            1,
		PagesPerConcept: 80,
		NoisePages:      150,
		ConfusionRate:   0.08,
		JunkRate:        0.10,
	}
}

// Scaled returns a copy of the configuration with the page counts
// multiplied by factor (rates and seed unchanged), for corpus-scaling
// experiments: Scaled(10) builds a corpus ~10x the seed size.
func (cfg CorpusConfig) Scaled(factor float64) CorpusConfig {
	out := cfg
	out.PagesPerConcept = int(float64(cfg.PagesPerConcept)*factor + 0.5)
	out.NoisePages = int(float64(cfg.NoisePages)*factor + 0.5)
	return out
}

// BuildCorpus populates the engine with synthetic Surface-Web pages for
// the given domains: redundant Hearst-pattern sentences, singleton
// pattern sentences, and attribute–value listings for every concept
// (scaled by its WebPresence), plus noise and confusion pages.
//
// The generator works from the concepts' label variants, so pages carry
// exactly the phrasings that extraction and validation queries — which
// are formulated from interface labels drawn from the same variants —
// will look for. That is the substitution for the real Web's redundancy.
func BuildCorpus(e *Engine, domains []*kb.Domain, cfg CorpusConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, d := range domains {
		buildDomainPages(e, d, cfg, rng)
		buildNoisePages(e, d, cfg, rng)
	}
}

// conceptPhrases returns the distinct noun phrases (with plurals) that
// label variants of the concept expose, via the same shallow analysis
// WebIQ applies to labels. Variants without noun phrases (bare
// prepositions, verb phrases) contribute nothing — so no pages support
// them, reproducing the airfare-domain extraction failures.
func conceptPhrases(c *kb.Concept) []nlp.NounPhrase {
	var out []nlp.NounPhrase
	seen := map[string]bool{}
	add := func(text string) {
		ls := nlp.AnalyzeLabel(text)
		if ls.Form != nlp.FormNounPhrase && ls.Form != nlp.FormPrepPhrase {
			return
		}
		for _, np := range ls.NPs {
			if t := np.Text(); !seen[t] {
				seen[t] = true
				out = append(out, np)
			}
		}
	}
	add(c.Name)
	for _, l := range c.Labels {
		add(l.Text)
	}
	return out
}

// conceptInfo caches a concept's derived phrases and instance pool
// during corpus generation.
type conceptInfo struct {
	c         *kb.Concept
	phrases   []nlp.NounPhrase
	instances []string
}

func buildDomainPages(e *Engine, d *kb.Domain, cfg CorpusConfig, rng *rand.Rand) {
	infos := make([]conceptInfo, 0, len(d.Concepts))
	for _, c := range d.Concepts {
		infos = append(infos, conceptInfo{c: c, phrases: conceptPhrases(c), instances: c.AllInstances()})
	}

	for ci, info := range infos {
		if len(info.phrases) == 0 || len(info.instances) == 0 {
			continue
		}
		pages := int(float64(cfg.PagesPerConcept)*info.c.WebPresence + 0.5)
		for p := 0; p < pages; p++ {
			np := info.phrases[rng.Intn(len(info.phrases))]
			values := sampleValues(info.instances, 4+rng.Intn(4), rng)

			// Confusion: swap one value for a different concept's value.
			if rng.Float64() < cfg.ConfusionRate && len(infos) > 1 {
				oj := rng.Intn(len(infos))
				if oj != ci && len(infos[oj].instances) > 0 {
					values[rng.Intn(len(values))] =
						infos[oj].instances[rng.Intn(len(infos[oj].instances))]
				}
			}
			// Junk: an over-long phrase outlier detection should remove.
			if rng.Float64() < cfg.JunkRate {
				values = append(values, junkPhrase(rng))
			}

			var b strings.Builder
			writePatternSentence(&b, np, d, values, rng)
			// A second pattern sentence with another phrase variant
			// raises per-variant redundancy, which the redundancy-based
			// extraction relies on.
			np2 := info.phrases[rng.Intn(len(info.phrases))]
			writePatternSentence(&b, np2, d, sampleValues(info.instances, 3, rng), rng)
			writeListingSentence(&b, info.c, values[0], infos, rng)
			writeContextWords(&b, d, infos, rng)
			e.Add(d.Key+" page", b.String())
		}
	}
}

// writePatternSentence emits one of the extraction-pattern sentences
// (Figure 4) for the noun phrase.
func writePatternSentence(b *strings.Builder, np nlp.NounPhrase, d *kb.Domain, values []string, rng *rand.Rand) {
	plural := np.Plural()
	singular := np.Text()
	list := joinList(values)
	// Set patterns, especially s1, dominate — matching their higher
	// productivity on the real Web.
	choice := []int{0, 0, 0, 1, 2, 2, 3, 4, 5, 6, 7}[rng.Intn(11)]
	switch choice {
	case 0: // s1: Ls such as NP1, ..., NPn
		b.WriteString(capitalize(plural) + " such as " + list + " are listed here. ")
	case 1: // s2: such Ls as NP1, ..., NPn
		b.WriteString("We cover such " + plural + " as " + list + ". ")
	case 2: // s3: Ls including NP1, ..., NPn
		b.WriteString(capitalize(plural) + " including " + list + " are available. ")
	case 3: // s4: NP1, ..., NPn, and other Ls
		b.WriteString(joinCommas(values) + ", and other " + plural + " can be found. ")
	case 4: // g1: the L of the O is NP
		b.WriteString("The " + singular + " of the " + d.EntityName + " is " + values[0] + ". ")
	case 5: // g2: the L is NP
		b.WriteString("The " + singular + " is " + values[0] + ". ")
	case 6: // g3: NP is the L of the O
		b.WriteString(values[0] + " is the " + singular + " of the " + d.EntityName + ". ")
	case 7: // g4: NP is the L
		b.WriteString(values[0] + " is the " + singular + ". ")
	}
	// Supporting sentences reinforce proximity co-occurrence for PMI
	// validation ("L x").
	for i := 0; i < 2 && i < len(values); i++ {
		b.WriteString(capitalize(singular) + " " + values[rng.Intn(len(values))] + " is popular. ")
	}
	// A single-instance Hearst sentence gives individual values
	// cue-phrase co-occurrence ("airlines such as Delta"), which the
	// cue-phrase validation patterns key on.
	b.WriteString(capitalize(plural) + " such as " + values[rng.Intn(len(values))] + " are typical. ")
}

// writeListingSentence emits a form-style attribute–value listing
// ("Make: Honda, Model: Accord"), the proximity context the paper's
// validation pattern "L x" keys on.
func writeListingSentence(b *strings.Builder, c *kb.Concept, value string, infos []conceptInfo, rng *rand.Rand) {
	label := c.Labels[rng.Intn(len(c.Labels))].Text
	b.WriteString(label + ": " + value + ". ")
	label2 := c.Labels[rng.Intn(len(c.Labels))].Text
	b.WriteString(label2 + ": " + value + ". ")
	// One sibling attribute-value pair for realism.
	if len(infos) > 1 {
		o := infos[rng.Intn(len(infos))]
		if o.c != c && len(o.instances) > 0 {
			b.WriteString(o.c.Labels[rng.Intn(len(o.c.Labels))].Text + ": " +
				o.instances[rng.Intn(len(o.instances))] + ". ")
		}
	}
}

// writeContextWords sprinkles the domain keyword, the entity name, and a
// few sibling-concept label words so that narrowed extraction queries
// ('+book +title +isbn') still match.
func writeContextWords(b *strings.Builder, d *kb.Domain, infos []conceptInfo, rng *rand.Rand) {
	b.WriteString(capitalize(d.DomainKeyword) + " " + d.EntityName + " information. ")
	for _, info := range infos {
		// Every label variant's head word may appear, so that narrowed
		// queries built from any variant of a sibling label can match.
		for _, l := range info.c.Labels {
			if rng.Float64() < 0.6 {
				words := nlp.ContentWords(l.Text)
				if len(words) > 0 {
					b.WriteString(words[len(words)-1] + " ")
				}
			}
		}
	}
	for i := 0; i < 3; i++ {
		b.WriteString(kb.NoiseWords[rng.Intn(len(kb.NoiseWords))] + " ")
	}
	b.WriteString(". ")
}

// buildNoisePages adds pages of unrelated chatter, including occasional
// spurious label-value juxtapositions across concepts (the Web noise
// that makes validation necessary).
func buildNoisePages(e *Engine, d *kb.Domain, cfg CorpusConfig, rng *rand.Rand) {
	for p := 0; p < cfg.NoisePages; p++ {
		var b strings.Builder
		for i := 0; i < 8; i++ {
			b.WriteString(kb.NoiseWords[rng.Intn(len(kb.NoiseWords))] + " ")
		}
		// Mention a random person and city to give generic tokens hits.
		b.WriteString(kb.FirstNames[rng.Intn(len(kb.FirstNames))] + " " +
			kb.LastNames[rng.Intn(len(kb.LastNames))] + " from " +
			kb.CitiesNA[rng.Intn(len(kb.CitiesNA))] + ". ")
		// Spurious cross-concept juxtaposition at the confusion rate.
		if rng.Float64() < cfg.ConfusionRate && len(d.Concepts) >= 2 {
			a := d.Concepts[rng.Intn(len(d.Concepts))]
			o := d.Concepts[rng.Intn(len(d.Concepts))]
			ov := o.AllInstances()
			if len(ov) > 0 {
				b.WriteString(a.Labels[0].Text + " " + ov[rng.Intn(len(ov))] + ". ")
			}
		}
		e.Add("noise page", b.String())
	}
}

func sampleValues(pool []string, n int, rng *rand.Rand) []string {
	if n > len(pool) {
		n = len(pool)
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

func junkPhrase(rng *rand.Rand) string {
	parts := make([]string, 6+rng.Intn(3))
	for i := range parts {
		parts[i] = kb.NoiseWords[rng.Intn(len(kb.NoiseWords))]
	}
	return strings.Join(parts, " ")
}

func joinList(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	case 2:
		return values[0] + " and " + values[1]
	default:
		return strings.Join(values[:len(values)-1], ", ") + ", and " + values[len(values)-1]
	}
}

func joinCommas(values []string) string {
	return strings.Join(values, ", ")
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
