package surfaceweb_test

import (
	"fmt"

	"webiq/internal/surfaceweb"
)

func ExampleEngine() {
	e := surfaceweb.NewEngine()
	e.Add("page", "Airlines such as Delta, United, and Air Canada fly from Boston daily.")
	e.Add("page", "Hotels in Boston are plentiful.")

	fmt.Println(e.NumHits(`"airlines such as"`))
	fmt.Println(e.NumHits(`boston`))
	fmt.Println(e.NumHits(`"airlines such as" +boston`))
	// Output:
	// 1
	// 2
	// 1
}

func ExampleParseQuery() {
	q := surfaceweb.ParseQuery(`"authors such as" +book +title`)
	fmt.Println(q.Phrase)
	fmt.Println(q.Required)
	// Output:
	// [authors such as]
	// [book title]
}
