package surfaceweb

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"webiq/internal/kb"
	"webiq/internal/nlp"
)

// freezeEngine extracts and wraps a frozen copy of e, failing the test
// on error.
func freezeEngine(t *testing.T, e *Engine, vocabLimit int) *Engine {
	t.Helper()
	fi, err := e.ExtractFrozen(vocabLimit)
	if err != nil {
		t.Fatalf("ExtractFrozen: %v", err)
	}
	return NewFrozenEngine(fi)
}

// TestFrozenEngineEquivalence pins the frozen read path against the
// mutable engine on the hand-crafted batch corpus: every public read —
// hit counts, batched hit counts, ranked search with snippets, corpus
// statistics, and query accounting — must agree exactly.
func TestFrozenEngineEquivalence(t *testing.T) {
	mut := batchTestEngine()
	fro := freezeEngine(t, batchTestEngine(), -1)
	queries := batchTestQueries()

	if got, want := fro.NumDocs(), mut.NumDocs(); got != want {
		t.Errorf("NumDocs: frozen %d, mutable %d", got, want)
	}
	if got, want := fro.Vocabulary(), mut.Vocabulary(); got != want {
		t.Errorf("Vocabulary: frozen %d, mutable %d", got, want)
	}
	for _, term := range []string{"authors", "hemingway", "zzz", "Novels", ""} {
		if got, want := fro.TermFrequency(term), mut.TermFrequency(term); got != want {
			t.Errorf("TermFrequency(%q): frozen %d, mutable %d", term, got, want)
		}
	}
	for _, q := range queries {
		if got, want := fro.NumHits(q), mut.NumHits(q); got != want {
			t.Errorf("NumHits(%q): frozen %d, mutable %d", q, got, want)
		}
		for _, k := range []int{0, 1, 3, 100} {
			got, want := fro.Search(q, k), mut.Search(q, k)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Search(%q, %d):\nfrozen  %v\nmutable %v", q, k, got, want)
			}
		}
	}
	if got, want := fro.NumHitsBatch(queries), mut.NumHitsBatch(queries); !reflect.DeepEqual(got, want) {
		t.Errorf("NumHitsBatch:\nfrozen  %v\nmutable %v", got, want)
	}
	if got, want := fro.QueryCount(), mut.QueryCount(); got != want {
		t.Errorf("QueryCount: frozen %d, mutable %d", got, want)
	}
	if got, want := fro.VirtualTime(), mut.VirtualTime(); got != want {
		t.Errorf("VirtualTime: frozen %v, mutable %v", got, want)
	}
}

// TestFrozenEngineEquivalenceCorpus repeats the equivalence check on a
// generated corpus — realistic page mix, larger posting lists — with
// queries the validator actually issues.
func TestFrozenEngineEquivalenceCorpus(t *testing.T) {
	cfg := DefaultCorpusConfig().Scaled(0.2)
	mut := NewEngine()
	BuildCorpus(mut, kb.Domains(), cfg)
	base := NewEngine()
	BuildCorpus(base, kb.Domains(), cfg)
	fro := freezeEngine(t, base, -1)

	var queries []string
	for _, d := range kb.Domains() {
		for _, c := range d.Concepts {
			name := strings.ToLower(c.Name)
			queries = append(queries,
				fmt.Sprintf("%q", name+"s such as"),
				fmt.Sprintf("%q +%s", name, d.DomainKeyword),
				"+"+name,
			)
			for _, inst := range c.AllInstances()[:min(2, len(c.AllInstances()))] {
				queries = append(queries, fmt.Sprintf("%q", strings.ToLower(inst)))
			}
		}
	}
	for _, q := range queries {
		if got, want := fro.NumHits(q), mut.NumHits(q); got != want {
			t.Errorf("NumHits(%q): frozen %d, mutable %d", q, got, want)
		}
		got, want := fro.Search(q, 5), mut.Search(q, 5)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Search(%q):\nfrozen  %v\nmutable %v", q, got, want)
		}
	}
	if got, want := fro.NumHitsBatch(queries), mut.NumHitsBatch(queries); !reflect.DeepEqual(got, want) {
		t.Errorf("NumHitsBatch disagrees:\nfrozen  %v\nmutable %v", got, want)
	}
}

// TestFrozenVocabLimit pins the snapshot-critical property: extracting
// with the vocabulary size captured before any query was compiled
// excludes query-interned terms, so the frozen table matches a freshly
// built engine's.
func TestFrozenVocabLimit(t *testing.T) {
	e := batchTestEngine()
	v0 := e.Terms().Len()
	// Compiling interns query-only terms past v0.
	e.NumHits(`"totally unseen phrase"`)
	if e.Terms().Len() <= v0 {
		t.Fatalf("compile did not grow the table (%d <= %d)", e.Terms().Len(), v0)
	}
	fro := freezeEngine(t, e, v0)
	if got := fro.Terms().Len(); got != v0 {
		t.Errorf("frozen table has %d terms, want %d", got, v0)
	}
	if id := fro.Terms().Intern("unseen"); id != nlp.NoTerm {
		t.Errorf("query-only term survived the vocabulary limit: id %d", id)
	}
	// A limit that would drop an indexed term must be refused.
	if _, err := e.ExtractFrozen(1); err == nil {
		t.Error("ExtractFrozen accepted a limit excluding indexed terms")
	}
}

// TestFrozenEngineConcurrent runs the full read battery from many
// goroutines under -race: the frozen path must be lock-free safe.
func TestFrozenEngineConcurrent(t *testing.T) {
	fro := freezeEngine(t, batchTestEngine(), -1)
	queries := batchTestQueries()
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = fro.NumHits(q)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				for i, q := range queries {
					if got := fro.NumHits(q); got != want[i] {
						t.Errorf("NumHits(%q) = %d, want %d", q, got, want[i])
						return
					}
					fro.Search(q, 3)
				}
				got := fro.NumHitsBatch(queries)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("NumHitsBatch = %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestFrozenAddPanics pins the API contract: a frozen engine refuses
// growth loudly (misuse), unlike snapshot corruption (errors).
func TestFrozenAddPanics(t *testing.T) {
	fro := freezeEngine(t, batchTestEngine(), -1)
	defer func() {
		if recover() == nil {
			t.Error("Add on a frozen engine did not panic")
		}
	}()
	fro.Add("t", "text")
}

// TestFrozenGobSnapshot checks the legacy corpus snapshot is
// byte-identical whether written from the mutable or frozen engine.
func TestFrozenGobSnapshot(t *testing.T) {
	mut := batchTestEngine()
	fro := freezeEngine(t, batchTestEngine(), -1)
	var a, b bytes.Buffer
	if err := mut.WriteSnapshot(&a); err != nil {
		t.Fatalf("mutable WriteSnapshot: %v", err)
	}
	if err := fro.WriteSnapshot(&b); err != nil {
		t.Fatalf("frozen WriteSnapshot: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("gob snapshots differ between mutable and frozen engines")
	}
}

// TestExtractFrozenRoundTrip checks Data() survives a reconstruction
// through NewFrozenIndex — the path a snapshot load takes.
func TestExtractFrozenRoundTrip(t *testing.T) {
	fi, err := batchTestEngine().ExtractFrozen(-1)
	if err != nil {
		t.Fatalf("ExtractFrozen: %v", err)
	}
	fi2, err := NewFrozenIndex(fi.Terms(), fi.Data())
	if err != nil {
		t.Fatalf("NewFrozenIndex: %v", err)
	}
	a, b := NewFrozenEngine(fi), NewFrozenEngine(fi2)
	for _, q := range batchTestQueries() {
		if x, y := a.NumHits(q), b.NumHits(q); x != y {
			t.Errorf("NumHits(%q): %d vs %d after round trip", q, x, y)
		}
	}
	fro := NewFrozenEngine(fi)
	fi3, err := fro.ExtractFrozen(-1)
	if err != nil {
		t.Fatalf("ExtractFrozen on frozen engine: %v", err)
	}
	if fi3 != fi {
		t.Error("ExtractFrozen on a frozen engine did not return its index")
	}
}

// TestNewFrozenIndexRejectsMalformed corrupts each structural invariant
// in turn: construction must fail with an error, never panic.
func TestNewFrozenIndexRejectsMalformed(t *testing.T) {
	base, err := batchTestEngine().ExtractFrozen(-1)
	if err != nil {
		t.Fatalf("ExtractFrozen: %v", err)
	}
	terms := base.Terms()
	cases := []struct {
		name    string
		mutate  func(d *FrozenData)
		noTerms bool
	}{
		{"unfrozen terms", func(d *FrozenData) {}, true},
		{"empty term offsets", func(d *FrozenData) { d.TermOff = nil }, false},
		{"term count mismatch", func(d *FrozenData) { d.TermOff = d.TermOff[:len(d.TermOff)-1] }, false},
		{"term offsets nonzero start", func(d *FrozenData) {
			d.TermOff = append([]uint64{1}, d.TermOff[1:]...)
		}, false},
		{"term offsets overflow", func(d *FrozenData) {
			o := append([]uint64(nil), d.TermOff...)
			o[len(o)-1] += 7
			d.TermOff = o
		}, false},
		{"position offsets truncated", func(d *FrozenData) { d.PostPosOff = d.PostPosOff[:2] }, false},
		{"positions truncated", func(d *FrozenData) { d.Positions = d.Positions[:3] }, false},
		{"posting doc out of range", func(d *FrozenData) {
			p := append([]uint32(nil), d.PostDoc...)
			p[0] = 1 << 30
			d.PostDoc = p
		}, false},
		{"posting docs not ascending", func(d *FrozenData) {
			// Duplicate a doc inside the first multi-entry term.
			p := append([]uint32(nil), d.PostDoc...)
			for t := 0; t < len(d.TermOff)-1; t++ {
				if d.TermOff[t+1]-d.TermOff[t] >= 2 {
					p[d.TermOff[t]+1] = p[d.TermOff[t]]
					break
				}
			}
			d.PostDoc = p
		}, false},
		{"token arrays disagree", func(d *FrozenData) { d.TokEnd = d.TokEnd[:1] }, false},
		{"token offsets truncated", func(d *FrozenData) { d.DocTokOff = d.DocTokOff[:2] }, false},
		{"token span outside text", func(d *FrozenData) {
			e := append([]uint32(nil), d.TokEnd...)
			e[0] = 1 << 30
			d.TokEnd = e
		}, false},
		{"token spans overlap", func(d *FrozenData) {
			s := append([]uint32(nil), d.TokStart...)
			s[1] = 0
			d.TokStart = s
		}, false},
		{"text blob truncated", func(d *FrozenData) { d.TextBlob = d.TextBlob[:len(d.TextBlob)-1] }, false},
		{"title offsets mismatch", func(d *FrozenData) { d.TitleOff = d.TitleOff[:len(d.TitleOff)-1] }, false},
	}
	for _, tc := range cases {
		d := base.Data()
		tc.mutate(&d)
		tt := terms
		if tc.noTerms {
			tt = nlp.NewTermTable()
		}
		if _, err := NewFrozenIndex(tt, d); err == nil {
			t.Errorf("%s: NewFrozenIndex accepted corrupt data", tc.name)
		} else if !strings.Contains(err.Error(), "frozen index") {
			t.Errorf("%s: unhelpful error %v", tc.name, err)
		}
	}
}
