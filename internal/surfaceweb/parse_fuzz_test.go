package surfaceweb

import (
	"reflect"
	"strings"
	"testing"

	"webiq/internal/nlp"
)

// parseQueryReference is the original splice-based parser, kept
// verbatim as the oracle for the single-scan rewrite.
func parseQueryReference(q string) Query {
	var out Query
	rest := q
	for {
		start := strings.IndexByte(rest, '"')
		if start < 0 {
			break
		}
		end := strings.IndexByte(rest[start+1:], '"')
		if end < 0 {
			break
		}
		phrase := rest[start+1 : start+1+end]
		if len(out.Phrase) == 0 {
			out.Phrase = nlp.Words(phrase)
		} else {
			out.Required = append(out.Required, nlp.Words(phrase)...)
		}
		rest = rest[:start] + " " + rest[start+1+end+1:]
	}
	for _, f := range strings.Fields(rest) {
		f = strings.TrimPrefix(f, "+")
		out.Required = append(out.Required, nlp.Words(f)...)
	}
	return out
}

var parseCases = []string{
	``,
	`   `,
	`"authors such as" +book +title +isbn`,
	`"unbalanced`,
	`unbalanced"`,
	`""`,
	`"" ""`,
	`""""`,
	`"a""b"`,
	`+`,
	`+ + +`,
	`++double`,
	`"phrase one" middle "phrase two" tail`,
	`pre"a b"post`,
	`" leading space phrase "`,
	`+"quoted plus"`,
	`a  b`,
	`"»unicode«" +café`,
	"tab\tand\nnewline",
	`"$15,200 or 3.5"`,
	`"`,
	`"""`,
}

func TestParseQueryMatchesReference(t *testing.T) {
	for _, q := range parseCases {
		got, want := ParseQuery(q), parseQueryReference(q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ParseQuery(%q) = %+v, reference %+v", q, got, want)
		}
	}
}

// FuzzParseQuery checks that the parser never panics, agrees with the
// reference implementation, and that the compiled term-ID form answers
// every query exactly like the string form.
func FuzzParseQuery(f *testing.F) {
	for _, q := range parseCases {
		f.Add(q)
	}
	e := NewEngine()
	e.MinLatency, e.MaxLatency = 0, 0
	e.Add("a", "authors such as Jane Austen, Mark Twain, and Leo Tolstoy wrote books")
	e.Add("b", "book title isbn price publisher format")
	e.Add("c", "such as a b a b repeated phrase material such as")

	f.Fuzz(func(t *testing.T, q string) {
		got := ParseQuery(q)
		want := parseQueryReference(q)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ParseQuery(%q) = %+v, reference %+v", q, got, want)
		}
		for _, w := range got.Phrase {
			if w == "" {
				t.Fatalf("empty phrase word from %q", q)
			}
		}
		for _, w := range got.Required {
			if w == "" {
				t.Fatalf("empty required term from %q", q)
			}
		}

		// Round-trip: the compiled query must preserve the parsed
		// terms and the string/compiled execution paths must agree.
		cq := e.Compile(q)
		if len(cq.Phrase) != len(want.Phrase) || len(cq.Required) != len(want.Required) {
			t.Fatalf("Compile(%q) shape %d/%d, parsed %d/%d",
				q, len(cq.Phrase), len(cq.Required), len(want.Phrase), len(want.Required))
		}
		for i, id := range cq.Phrase {
			if e.Terms().Term(id) != want.Phrase[i] {
				t.Fatalf("phrase term %d = %q, want %q", i, e.Terms().Term(id), want.Phrase[i])
			}
		}
		for i, id := range cq.Required {
			if e.Terms().Term(id) != want.Required[i] {
				t.Fatalf("required term %d = %q, want %q", i, e.Terms().Term(id), want.Required[i])
			}
		}
		if nh, nc := e.NumHits(q), e.NumHitsCompiled(cq, q); nh != nc {
			t.Fatalf("NumHits(%q) = %d, compiled = %d", q, nh, nc)
		}
		if sh, scm := e.Search(q, 5), e.SearchCompiled(cq, q, 5); !reflect.DeepEqual(sh, scm) {
			t.Fatalf("Search(%q) = %+v, compiled = %+v", q, sh, scm)
		}

		// Key canonicalization must be stable under recompilation.
		if k1, k2 := cq.Key(), e.Compile(q).Key(); k1 != k2 {
			t.Fatalf("Key not stable for %q: %q vs %q", q, k1, k2)
		}
	})
}

func TestCompiledKeyCanonicalizes(t *testing.T) {
	e := NewEngine()
	same := [][]string{
		{`a b`, `a  b`, ` a b `, `+a +b`, `b a`, "a\tb"},
		{`"a b" c`, `"a b"  +c`},
	}
	for _, group := range same {
		want := e.Compile(group[0]).Key()
		for _, q := range group[1:] {
			if got := e.Compile(q).Key(); got != want {
				t.Errorf("Key(%q) = %q, want %q (same as %q)", q, got, want, group[0])
			}
		}
	}
	diff := [][2]string{
		{`"a b"`, `"b a"`},   // phrase order matters
		{`a b`, `a b b`},     // required duplicates matter
		{`"a b" c`, `a b c`}, // phrase vs bare terms
		{`a`, `b`},
	}
	for _, p := range diff {
		if e.Compile(p[0]).Key() == e.Compile(p[1]).Key() {
			t.Errorf("Key(%q) == Key(%q), want distinct", p[0], p[1])
		}
	}
}
