package surfaceweb

import "testing"

func FuzzParseQuery(f *testing.F) {
	f.Add(`"authors such as" +book +title`)
	f.Add(`""`)
	f.Add(`"unterminated`)
	f.Add(`+++`)
	f.Add(`"a" "b" c`)
	f.Fuzz(func(t *testing.T, q string) {
		parsed := ParseQuery(q)
		for _, w := range parsed.Phrase {
			if w == "" {
				t.Fatalf("empty phrase word from %q", q)
			}
		}
		for _, w := range parsed.Required {
			if w == "" {
				t.Fatalf("empty required term from %q", q)
			}
		}
	})
}

func FuzzEngineQueries(f *testing.F) {
	f.Add(`"airlines such as" +delta`)
	f.Add("boston")
	f.Add(`"`)
	f.Fuzz(func(t *testing.T, q string) {
		e := NewEngine()
		e.Add("t", "Airlines such as Delta fly from Boston to Chicago daily.")
		n := e.NumHits(q)
		if n < 0 || n > e.NumDocs() {
			t.Fatalf("NumHits(%q) = %d out of range", q, n)
		}
		snips := e.Search(q, 5)
		if len(snips) > n {
			t.Fatalf("more snippets (%d) than hits (%d) for %q", len(snips), n, q)
		}
	})
}
