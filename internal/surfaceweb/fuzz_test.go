package surfaceweb

import "testing"

// FuzzParseQuery lives in parse_fuzz_test.go, where it checks the
// parser against the reference implementation and the compiled form.

func FuzzEngineQueries(f *testing.F) {
	f.Add(`"airlines such as" +delta`)
	f.Add("boston")
	f.Add(`"`)
	f.Fuzz(func(t *testing.T, q string) {
		e := NewEngine()
		e.Add("t", "Airlines such as Delta fly from Boston to Chicago daily.")
		n := e.NumHits(q)
		if n < 0 || n > e.NumDocs() {
			t.Fatalf("NumHits(%q) = %d out of range", q, n)
		}
		snips := e.Search(q, 5)
		if len(snips) > n {
			t.Fatalf("more snippets (%d) than hits (%d) for %q", len(snips), n, q)
		}
	})
}
