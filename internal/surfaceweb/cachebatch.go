package surfaceweb

import "sync"

// Batched cache front-end. NumHitsBatch preserves the scalar path's
// semantics exactly — same canonical keys, same raw/deduped accounting,
// same singleflight discipline — while collapsing a whole validation
// burst into at most one engine pass:
//
//   - Within the batch, the first occurrence of an uncached key is the
//     miss and every later occurrence is a hit, which is precisely what
//     a sequential scalar caller would record.
//   - All batch misses execute on the inner engine as one
//     NumHitsBatchCompiled call, sharing the read lock and the roll-up
//     phrase frames.
//   - Keys already in flight from OTHER callers are waited on only
//     after our own misses have executed and been committed, so two
//     overlapping batches never deadlock on each other.

// cbState is the resolution state of one deduplicated batch key.
type cbState uint8

const (
	cbCached cbState = iota // value known from the cache
	cbMiss                  // ours to execute; fl is our registered flight
	cbWait                  // foreign in-flight execution; fl is theirs
)

// cbEntry is one deduplicated key of a cache batch.
type cbEntry struct {
	key   string // canonical cache key, materialized once
	cq    CompiledQuery
	query string // raw string charged on execution (first occurrence's)
	state cbState
	val   int
	fl    *flight
}

// cacheBatchScratch is the pooled working set of one NumHitsBatch call.
type cacheBatchScratch struct {
	keyBuf  []byte
	seen    map[string]int // canonical key -> index into entries
	entries []cbEntry
	dedup   []int // per input query: index into entries
	qs      []BatchQuery
}

var cacheBatchPool = sync.Pool{New: func() any {
	return &cacheBatchScratch{seen: map[string]int{}}
}}

// NumHitsBatch answers many queries in one pass, returning the hit
// count of each in input order. Results, cache contents, and raw/hit/
// miss accounting are identical to calling NumHits sequentially for the
// same queries; the engine work for all batch misses is done in a
// single batched execution.
func (c *CachedEngine) NumHitsBatch(queries []string) []int {
	out := make([]int, len(queries))
	if len(queries) == 0 {
		return out
	}
	sc := cacheBatchPool.Get().(*cacheBatchScratch)
	entries := sc.entries[:0]
	dedup := sc.dedup[:0]
	clear(sc.seen)

	// Pass 1: compile, dedupe within the batch, and classify each
	// distinct key against the cache. Accounting happens per logical
	// query, in input order, exactly as the scalar path would.
	for _, q := range queries {
		cq := c.inner.Compile(q)
		buf := append(sc.keyBuf[:0], 'h', 0)
		buf = cq.AppendKey(buf)
		sc.keyBuf = buf

		if at, ok := sc.seen[string(buf)]; ok { // zero-copy probe
			dedup = append(dedup, at)
			c.account(q, "numhits", true)
			continue
		}
		key := string(buf)
		e := cbEntry{key: key, cq: cq, query: q}
		sh := c.shard(key)
		sh.mu.Lock()
		if v, ok := sh.vals[key]; ok {
			e.state, e.val = cbCached, v.hits
			sh.mu.Unlock()
			c.account(q, "numhits", true)
		} else if f, ok := sh.inflight[key]; ok {
			e.state, e.fl = cbWait, f
			sh.mu.Unlock()
			c.account(q, "numhits", true)
		} else {
			e.state = cbMiss
			e.fl = &flight{done: make(chan struct{})}
			sh.inflight[key] = e.fl
			sh.mu.Unlock()
			c.account(q, "numhits", false)
		}
		sc.seen[key] = len(entries)
		dedup = append(dedup, len(entries))
		entries = append(entries, e)
	}

	// Pass 2: execute all our misses as one engine batch, then commit
	// each result and release its flight.
	qs := sc.qs[:0]
	for i := range entries {
		if entries[i].state == cbMiss {
			qs = append(qs, BatchQuery{CQ: entries[i].cq, Charged: entries[i].query})
		}
	}
	sc.qs = qs
	if len(qs) > 0 {
		counts := c.inner.NumHitsBatchCompiled(qs)
		at := 0
		for i := range entries {
			e := &entries[i]
			if e.state != cbMiss {
				continue
			}
			e.val = counts[at]
			at++
			e.fl.val = cacheValue{hits: e.val}
			sh := c.shard(e.key)
			sh.mu.Lock()
			sh.vals[e.key] = e.fl.val
			delete(sh.inflight, e.key)
			sh.mu.Unlock()
			close(e.fl.done)
			c.mEntries.Inc()
		}
	}

	// Pass 3: wait on foreign executions (ours are already committed,
	// so an overlapping batch blocked on us is unblocked by now).
	for i := range entries {
		e := &entries[i]
		if e.state == cbWait {
			<-e.fl.done
			e.val = e.fl.val.hits
		}
	}

	for i, at := range dedup {
		out[i] = entries[at].val
	}
	sc.entries, sc.dedup = entries, dedup
	cacheBatchPool.Put(sc)
	return out
}
