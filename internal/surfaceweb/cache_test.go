package surfaceweb

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"webiq/internal/obs"
)

// cacheFixture builds a small engine with a few pages.
func cacheFixture() *Engine {
	e := NewEngine()
	e.Add("cars", "Popular makes such as Honda, Toyota, and Ford are in stock at our dealership.")
	e.Add("books", "Bestselling authors such as King and Rowling top the charts this week.")
	e.Add("more cars", "We sell makes such as Honda and Nissan at fair prices every day.")
	return e
}

func TestCachedEngineSameResults(t *testing.T) {
	e := cacheFixture()
	c := NewCachedEngine(e, 4)
	queries := []string{`"makes such as"`, `"authors such as"`, `"honda"`, `"no such phrase"`}
	for _, q := range queries {
		want := e.NumHits(q)
		if got := c.NumHits(q); got != want {
			t.Errorf("NumHits(%q) = %d via cache, %d direct", q, got, want)
		}
		// Second lookup must hit the cache and still agree.
		if got := c.NumHits(q); got != want {
			t.Errorf("cached NumHits(%q) = %d, want %d", q, got, want)
		}
		wantSnips := e.Search(q, 5)
		if got := c.Search(q, 5); !reflect.DeepEqual(got, wantSnips) && !(len(got) == 0 && len(wantSnips) == 0) {
			t.Errorf("Search(%q) mismatch: %v vs %v", q, got, wantSnips)
		}
	}
}

func TestCachedEngineDedupAccounting(t *testing.T) {
	e := cacheFixture()
	c := NewCachedEngine(e, 0)
	e.ResetAccounting()

	const repeats = 5
	q := `"makes such as"`
	var want int
	for i := 0; i < repeats; i++ {
		want = c.NumHits(q)
	}
	if want == 0 {
		t.Fatalf("fixture query matched nothing")
	}
	if got := e.QueryCount(); got != 1 {
		t.Errorf("engine executed %d queries, want 1 (deduped)", got)
	}
	if got := c.RawQueryCount(); got != repeats {
		t.Errorf("raw query count = %d, want %d", got, repeats)
	}
	if c.Hits() != repeats-1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want %d and 1", c.Hits(), c.Misses(), repeats-1)
	}
	// Raw virtual time is the per-query latency times the repeat count;
	// the engine was only charged once.
	if got, want := c.RawVirtualTime(), time.Duration(repeats)*e.QueryLatency(q); got != want {
		t.Errorf("raw virtual time = %v, want %v", got, want)
	}
	if got := e.VirtualTime(); got != e.QueryLatency(q) {
		t.Errorf("engine virtual time = %v, want one query's %v", got, e.QueryLatency(q))
	}
}

func TestCachedEngineSearchCopies(t *testing.T) {
	c := NewCachedEngine(cacheFixture(), 2)
	got1 := c.Search(`"makes such as"`, 5)
	if len(got1) == 0 {
		t.Fatal("no results")
	}
	got1[0].Text = "CORRUPTED"
	got2 := c.Search(`"makes such as"`, 5)
	if got2[0].Text == "CORRUPTED" {
		t.Error("cache shares snippet slice with callers")
	}
}

func TestCachedEngineSearchKeyedByLimit(t *testing.T) {
	e := cacheFixture()
	c := NewCachedEngine(e, 2)
	if got, want := len(c.Search(`"makes such as"`, 1)), len(e.Search(`"makes such as"`, 1)); got != want {
		t.Fatalf("k=1: got %d snippets, want %d", got, want)
	}
	if got, want := len(c.Search(`"makes such as"`, 5)), len(e.Search(`"makes such as"`, 5)); got != want {
		t.Fatalf("k=5: got %d snippets, want %d", got, want)
	}
}

func TestCachedEngineSingleflight(t *testing.T) {
	e := cacheFixture()
	c := NewCachedEngine(e, 8)
	e.ResetAccounting()

	const goroutines = 32
	queries := []string{`"makes such as"`, `"authors such as"`, `"honda"`}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				c.NumHits(queries[(g+i)%len(queries)])
			}
		}(g)
	}
	close(start)
	wg.Wait()
	// However the goroutines interleave, each distinct query reaches the
	// engine exactly once.
	if got := e.QueryCount(); got != len(queries) {
		t.Errorf("engine executed %d queries, want %d (singleflight)", got, len(queries))
	}
	if got := c.RawQueryCount(); got != goroutines*20 {
		t.Errorf("raw count = %d, want %d", got, goroutines*20)
	}
}

func TestCachedEngineMetrics(t *testing.T) {
	c := NewCachedEngine(cacheFixture(), 2)
	r := obs.NewRegistry()
	c.Instrument(r)
	c.NumHits(`"makes such as"`)
	c.NumHits(`"makes such as"`)
	c.Search(`"honda"`, 3)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`webiq_engine_cache_hits_total{op="numhits"} 1`,
		`webiq_engine_cache_misses_total{op="numhits"} 1`,
		`webiq_engine_cache_misses_total{op="search"} 1`,
		"webiq_engine_cache_entries 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestCachedEngineReset(t *testing.T) {
	e := cacheFixture()
	c := NewCachedEngine(e, 2)
	c.NumHits(`"makes such as"`)
	c.NumHits(`"makes such as"`)
	c.Reset()
	if c.Len() != 0 || c.Hits() != 0 || c.Misses() != 0 || c.RawQueryCount() != 0 {
		t.Errorf("Reset left state: len=%d hits=%d misses=%d raw=%d",
			c.Len(), c.Hits(), c.Misses(), c.RawQueryCount())
	}
	before := e.QueryCount()
	c.NumHits(`"makes such as"`)
	if e.QueryCount() != before+1 {
		t.Error("query not re-executed after Reset")
	}
}

func BenchmarkCachedNumHits(b *testing.B) {
	e := cacheFixture()
	for i := 0; i < 200; i++ {
		e.Add(fmt.Sprintf("page %d", i), "makes such as Honda and Toyota appear in page body text here")
	}
	c := NewCachedEngine(e, 0)
	q := `"makes such as" +honda`
	c.NumHits(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NumHits(q)
	}
}
