package surfaceweb

import (
	"fmt"
	"sync"
	"testing"

	"webiq/internal/kb"
)

// batchTestEngine builds a small hand-crafted corpus exercising every
// query shape: repeated phrases, shared phrase prefixes, rare and
// missing terms, and multi-occurrence documents.
func batchTestEngine() *Engine {
	e := NewEngine()
	e.Add("a", "authors such as hemingway and updike write novels")
	e.Add("b", "authors such as hemingway are classic authors such as updike")
	e.Add("c", "painters such as monet, not authors, paint")
	e.Add("d", "hemingway wrote novels and novellas")
	e.Add("e", "such books as these are rare; authors write them")
	e.Add("f", "updike and hemingway; novels by authors such as both")
	return e
}

// batchTestQueries covers the shapes the validator issues plus the
// degenerate ones: single word, quoted multi-word phrases with shared
// prefixes, phrase+required, required-only, duplicates, unknown terms,
// and the empty query.
func batchTestQueries() []string {
	return []string{
		`"authors such as hemingway"`,
		`"authors such as updike"`,
		`"authors such as monet"`,
		`"authors"`,
		`"hemingway"`,
		`"such books as"`,
		`"painters such as monet"`,
		`"authors such as" +novels`,
		`"authors such as hemingway"`, // duplicate
		`+authors +novels`,
		`+zzz`,
		`"zzz yyy"`,
		``,
		`"authors such"`,
		`"such as"`,
	}
}

// TestNumHitsBatchMatchesScalar pins the core equivalence: the batch
// answers every query with exactly the scalar count, and charges the
// engine identically.
func TestNumHitsBatchMatchesScalar(t *testing.T) {
	scalarEng, batchEng := batchTestEngine(), batchTestEngine()
	queries := batchTestQueries()

	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = scalarEng.NumHits(q)
	}
	got := batchEng.NumHitsBatch(queries)
	for i := range queries {
		if got[i] != want[i] {
			t.Errorf("query %q: batch %d, scalar %d", queries[i], got[i], want[i])
		}
	}
	if got, want := batchEng.QueryCount(), scalarEng.QueryCount(); got != want {
		t.Errorf("QueryCount: batch %d, scalar %d", got, want)
	}
	if got, want := batchEng.VirtualTime(), scalarEng.VirtualTime(); got != want {
		t.Errorf("VirtualTime: batch %v, scalar %v", got, want)
	}
}

// TestNumHitsBatchOnGeneratedCorpus cross-checks batch and scalar
// counts over the full synthetic corpus with validator-shaped queries,
// so generated-text tokenization quirks are covered too.
func TestNumHitsBatchOnGeneratedCorpus(t *testing.T) {
	e := NewEngine()
	BuildCorpus(e, kb.Domains(), DefaultCorpusConfig())

	var queries []string
	for _, x := range []string{"hemingway", "toyota", "chicago", "software engineer", "zzz missing"} {
		for _, v := range []string{"authors such as", "such titles as", "cities"} {
			queries = append(queries, fmt.Sprintf("%q", v+" "+x))
		}
		queries = append(queries, fmt.Sprintf("%q", x))
	}
	got := e.NumHitsBatch(queries)
	for i, q := range queries {
		if want := e.NumHits(q); got[i] != want {
			t.Errorf("query %q: batch %d, scalar %d", q, got[i], want)
		}
	}
}

// TestCachedNumHitsBatchMatchesScalar demands the cached batch be
// indistinguishable from sequential scalar calls: same values, same
// hit/miss split, same raw and deduped accounting, same cache size.
func TestCachedNumHitsBatchMatchesScalar(t *testing.T) {
	scalar := NewCachedEngine(batchTestEngine(), 0)
	batched := NewCachedEngine(batchTestEngine(), 0)
	queries := batchTestQueries()

	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = scalar.NumHits(q)
	}
	// Split into two batches so the second exercises cross-batch cache
	// hits, exactly like a second attribute reusing phrase counts.
	half := len(queries) / 2
	got := batched.NumHitsBatch(queries[:half])
	got = append(got, batched.NumHitsBatch(queries[half:])...)

	for i := range queries {
		if got[i] != want[i] {
			t.Errorf("query %q: batch %d, scalar %d", queries[i], got[i], want[i])
		}
	}
	type acct struct {
		hits, misses, raw, deduped, entries int
		rawVirtual, virtual                 int64
	}
	snap := func(c *CachedEngine) acct {
		return acct{c.Hits(), c.Misses(), c.RawQueryCount(), c.QueryCount(), c.Len(),
			int64(c.RawVirtualTime()), int64(c.VirtualTime())}
	}
	if s, b := snap(scalar), snap(batched); s != b {
		t.Errorf("accounting diverged: scalar %+v, batched %+v", s, b)
	}
}

// TestCachedNumHitsBatchConcurrent hammers one cached engine with
// overlapping batches and scalar probes from many goroutines (run under
// -race). Every answer must be correct and the raw accounting must add
// up: each logical query is exactly one hit or one miss.
func TestCachedNumHitsBatchConcurrent(t *testing.T) {
	c := NewCachedEngine(batchTestEngine(), 0)
	queries := batchTestQueries()
	want := make([]int, len(queries))
	ref := batchTestEngine()
	for i, q := range queries {
		want[i] = ref.NumHits(q)
	}

	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan string, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				if (w+iter)%2 == 0 {
					got := c.NumHitsBatch(queries)
					for i := range queries {
						if got[i] != want[i] {
							errc <- fmt.Sprintf("batch query %q: got %d want %d", queries[i], got[i], want[i])
							return
						}
					}
				} else {
					for i, q := range queries {
						if got := c.NumHits(q); got != want[i] {
							errc <- fmt.Sprintf("scalar query %q: got %d want %d", q, got, want[i])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Error(msg)
	}
	if c.Hits()+c.Misses() != c.RawQueryCount() {
		t.Errorf("accounting leak: hits %d + misses %d != raw %d", c.Hits(), c.Misses(), c.RawQueryCount())
	}
	// Every distinct canonical key executed exactly once despite the
	// concurrency: the deduped count equals the cache size.
	if c.QueryCount() != c.Len() {
		t.Errorf("deduped query count %d != cache entries %d", c.QueryCount(), c.Len())
	}
}

// TestAppendKeyMatchesKey pins the AppendKey refactor against the
// string-returning Key.
func TestAppendKeyMatchesKey(t *testing.T) {
	e := batchTestEngine()
	for _, q := range batchTestQueries() {
		cq := e.Compile(q)
		if got, want := string(cq.AppendKey(nil)), cq.Key(); got != want {
			t.Errorf("query %q: AppendKey %q, Key %q", q, got, want)
		}
	}
	// Required-term count past the stack-buffer size still sorts.
	cq := CompiledQuery{Required: []uint32{20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}}
	if got, want := string(cq.AppendKey(nil)), cq.Key(); got != want {
		t.Errorf("long required list: AppendKey %q, Key %q", got, want)
	}
}
