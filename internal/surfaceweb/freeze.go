package surfaceweb

// Frozen read-only engine storage.
//
// A built engine's maps (docs, index) are ideal for incremental
// indexing but expensive to persist: rebuilding them on process start
// re-tokenizes the whole corpus. FrozenIndex is the same data in
// CSR-style flat arrays — per-term posting spans into one contiguous
// document array, per-entry position spans into one contiguous position
// array, per-document token/text/title spans into contiguous blobs.
// Every array is a plain []uint32/[]uint64 or string, so a snapshot
// file can serve them directly from an mmap with zero parse work.
//
// An Engine wrapping a FrozenIndex (see NewFrozenEngine) answers every
// read — NumHits, Search, batched hit counts, vocabulary statistics —
// with results identical to the mutable engine it was extracted from;
// Add panics. Construction from untrusted bytes goes through
// NewFrozenIndex, which validates the structural invariants the read
// path relies on and refuses malformed data with an error, never a
// panic. (Content integrity — bit flips inside structurally valid
// arrays — is the snapshot checksum's job.)

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"webiq/internal/nlp"
)

// FrozenData is the flattened wire form of a frozen index: the raw
// arrays a FrozenIndex serves from. The snapshot layer reads and writes
// this struct; NewFrozenIndex validates it.
//
// Layout invariants (validated):
//
//	TermOff[t]..TermOff[t+1]        entries of term t in PostDoc (docs ascending)
//	PostPosOff[e]..PostPosOff[e+1]  token positions of entry e in Positions
//	DocTokOff[d]..DocTokOff[d+1]    tokens of document d in TokTerm/TokStart/TokEnd
//	TextOff[d]..TextOff[d+1]        text of document d in TextBlob
//	TitleOff[d]..TitleOff[d+1]      title of document d in TitleBlob
//
// Token start/end are byte offsets into the document's own text (not
// the blob), matching the spans the mutable engine records at indexing
// time.
type FrozenData struct {
	TermOff    []uint64
	PostDoc    []uint32
	PostPosOff []uint64
	Positions  []uint32

	DocTokOff []uint64
	TokTerm   []uint32
	TokStart  []uint32
	TokEnd    []uint32

	TextOff  []uint64
	TextBlob string

	TitleOff  []uint64
	TitleBlob string
}

// FrozenIndex is a validated read-only index over FrozenData arrays.
type FrozenIndex struct {
	terms   *nlp.TermTable
	d       FrozenData
	numDocs int
	vocab   int // terms with at least one posting == mutable Vocabulary()
}

// Terms returns the frozen term table the index was built against.
func (f *FrozenIndex) Terms() *nlp.TermTable { return f.terms }

// Data returns the underlying flat arrays (shared, not copied) for
// serialization.
func (f *FrozenIndex) Data() FrozenData { return f.d }

// NumDocs returns the number of documents in the frozen corpus.
func (f *FrozenIndex) NumDocs() int { return f.numDocs }

func frozenErr(format string, args ...any) error {
	return fmt.Errorf("surfaceweb: frozen index: "+format, args...)
}

// checkOffsets validates one offset table: n+1 entries spanning a
// backing array of length total, starting at 0, non-decreasing.
func checkOffsets(name string, off []uint64, n int, total int) error {
	if len(off) != n+1 {
		return frozenErr("%s has %d offsets, want %d", name, len(off), n+1)
	}
	if off[0] != 0 {
		return frozenErr("%s starts at %d, want 0", name, off[0])
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return frozenErr("%s not monotonic at %d", name, i)
		}
	}
	if off[n] != uint64(total) {
		return frozenErr("%s ends at %d, want backing length %d", name, off[n], total)
	}
	return nil
}

// NewFrozenIndex validates d against terms and wraps it. All structural
// invariants the lock-free read path indexes by are checked here, so a
// malformed or truncated flattening is refused with an error rather
// than panicking later under a query.
func NewFrozenIndex(terms *nlp.TermTable, d FrozenData) (*FrozenIndex, error) {
	if terms == nil || !terms.Frozen() {
		return nil, frozenErr("term table must be frozen")
	}
	if len(d.TermOff) == 0 {
		return nil, frozenErr("empty term offset table")
	}
	v := len(d.TermOff) - 1
	if v != terms.Len() {
		return nil, frozenErr("%d posting spans, want one per term (%d)", v, terms.Len())
	}
	if err := checkOffsets("term offsets", d.TermOff, v, len(d.PostDoc)); err != nil {
		return nil, err
	}
	if err := checkOffsets("position offsets", d.PostPosOff, len(d.PostDoc), len(d.Positions)); err != nil {
		return nil, err
	}
	if len(d.TextOff) == 0 {
		return nil, frozenErr("empty text offset table")
	}
	n := len(d.TextOff) - 1
	if err := checkOffsets("text offsets", d.TextOff, n, len(d.TextBlob)); err != nil {
		return nil, err
	}
	if err := checkOffsets("title offsets", d.TitleOff, n, len(d.TitleBlob)); err != nil {
		return nil, err
	}
	if len(d.TokStart) != len(d.TokTerm) || len(d.TokEnd) != len(d.TokTerm) {
		return nil, frozenErr("token arrays disagree: %d terms, %d starts, %d ends",
			len(d.TokTerm), len(d.TokStart), len(d.TokEnd))
	}
	if err := checkOffsets("token offsets", d.DocTokOff, n, len(d.TokTerm)); err != nil {
		return nil, err
	}
	// Token byte spans must be ordered and inside their document's text:
	// the snippet path slices text[TokStart[a]:TokEnd[b]] for a <= b.
	for doc := 0; doc < n; doc++ {
		textLen := d.TextOff[doc+1] - d.TextOff[doc]
		prevEnd := uint32(0)
		for k := d.DocTokOff[doc]; k < d.DocTokOff[doc+1]; k++ {
			s, e := d.TokStart[k], d.TokEnd[k]
			if s < prevEnd || e < s || uint64(e) > textLen {
				return nil, frozenErr("document %d token %d span [%d,%d) outside text of %d bytes",
					doc, k-d.DocTokOff[doc], s, e, textLen)
			}
			prevEnd = e
		}
	}
	// Posting docs must be in range and strictly ascending per term —
	// the read path binary-searches them and treats doc transitions as
	// distinct-document boundaries.
	vocab := 0
	for t := 0; t < v; t++ {
		lo, hi := d.TermOff[t], d.TermOff[t+1]
		if lo < hi {
			vocab++
		}
		for e := lo; e < hi; e++ {
			doc := d.PostDoc[e]
			if uint64(doc) >= uint64(n) {
				return nil, frozenErr("term %d posts document %d, corpus has %d", t, doc, n)
			}
			if e > lo && doc <= d.PostDoc[e-1] {
				return nil, frozenErr("term %d posting documents not ascending at entry %d", t, e-lo)
			}
		}
	}
	return &FrozenIndex{terms: terms, d: d, numDocs: n, vocab: vocab}, nil
}

// NewFrozenEngine wraps a frozen index in an Engine with the standard
// latency and snippet settings. The engine serves every read lock-free
// from the flat arrays; Add panics.
func NewFrozenEngine(fi *FrozenIndex) *Engine {
	return &Engine{
		terms:         fi.terms,
		ro:            fi,
		MinLatency:    100 * time.Millisecond,
		MaxLatency:    500 * time.Millisecond,
		SnippetRadius: 10,
	}
}

// Frozen reports whether the engine serves from a frozen index.
func (e *Engine) Frozen() bool { return e.ro != nil }

// ExtractFrozen flattens a built engine into a FrozenIndex. vocabLimit
// caps the persisted vocabulary: passing the table length captured
// right after the corpus was built excludes query-only terms interned
// later (they have no postings and no tokens), so a snapshot-loaded
// table matches a freshly built one. vocabLimit < 0 keeps every term.
// Document IDs must be dense (no gaps); the corpus builder always
// produces that. Extracting an already-frozen engine returns its index.
func (e *Engine) ExtractFrozen(vocabLimit int) (*FrozenIndex, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.ro != nil {
		return e.ro, nil
	}
	n := e.next
	if len(e.docs) != n {
		return nil, frozenErr("corpus has %d documents but %d IDs assigned", len(e.docs), n)
	}
	v := e.terms.Len()
	if vocabLimit >= 0 && vocabLimit < v {
		v = vocabLimit
	}
	offsets, blob := e.terms.Flatten(v)
	terms, err := nlp.NewFrozenTermTable(offsets, string(blob))
	if err != nil {
		return nil, err
	}

	var d FrozenData
	totalToks := 0
	for id := 0; id < n; id++ {
		doc, ok := e.docs[id]
		if !ok {
			return nil, frozenErr("document IDs not dense: %d missing", id)
		}
		totalToks += len(doc.tokens)
	}
	d.DocTokOff = make([]uint64, n+1)
	d.TextOff = make([]uint64, n+1)
	d.TitleOff = make([]uint64, n+1)
	d.TokTerm = make([]uint32, 0, totalToks)
	d.TokStart = make([]uint32, 0, totalToks)
	d.TokEnd = make([]uint32, 0, totalToks)
	var text, title strings.Builder
	for id := 0; id < n; id++ {
		doc := e.docs[id]
		d.DocTokOff[id] = uint64(len(d.TokTerm))
		d.TextOff[id] = uint64(text.Len())
		d.TitleOff[id] = uint64(title.Len())
		for _, t := range doc.tokens {
			if uint64(t.term) >= uint64(v) {
				return nil, frozenErr("vocabulary limit %d excludes indexed term %d", v, t.term)
			}
			d.TokTerm = append(d.TokTerm, t.term)
			d.TokStart = append(d.TokStart, t.start)
			d.TokEnd = append(d.TokEnd, t.end)
		}
		text.WriteString(doc.doc.Text)
		title.WriteString(doc.doc.Title)
	}
	d.DocTokOff[n] = uint64(len(d.TokTerm))
	d.TextOff[n] = uint64(text.Len())
	d.TitleOff[n] = uint64(title.Len())
	d.TextBlob = text.String()
	d.TitleBlob = title.String()

	d.TermOff = make([]uint64, v+1)
	d.PostPosOff = append(d.PostPosOff, 0)
	var docIDs []int
	for t := 0; t < v; t++ {
		d.TermOff[t] = uint64(len(d.PostDoc))
		p := e.index[uint32(t)]
		if len(p) == 0 {
			continue
		}
		docIDs = docIDs[:0]
		for id := range p {
			docIDs = append(docIDs, id)
		}
		sort.Ints(docIDs)
		for _, id := range docIDs {
			d.PostDoc = append(d.PostDoc, uint32(id))
			for _, pos := range p[id] {
				d.Positions = append(d.Positions, uint32(pos))
			}
			d.PostPosOff = append(d.PostPosOff, uint64(len(d.Positions)))
		}
	}
	d.TermOff[v] = uint64(len(d.PostDoc))
	return NewFrozenIndex(terms, d)
}

// termRange returns the posting-entry span of a term. Unknown terms —
// including nlp.NoTerm from a frozen table miss — get the empty span,
// which every caller treats as "matches nothing".
func (f *FrozenIndex) termRange(term uint32) (lo, hi uint64) {
	if uint64(term) >= uint64(len(f.d.TermOff)-1) {
		return 0, 0
	}
	return f.d.TermOff[term], f.d.TermOff[term+1]
}

// docCount returns how many documents contain the term — the frozen
// len(e.index[term]).
func (f *FrozenIndex) docCount(term uint32) int {
	lo, hi := f.termRange(term)
	return int(hi - lo)
}

// findEntry binary-searches the term's posting span for a document.
func (f *FrozenIndex) findEntry(term uint32, doc int) (uint64, bool) {
	lo, hi := f.termRange(term)
	i := lo + uint64(sort.Search(int(hi-lo), func(k int) bool {
		return f.d.PostDoc[lo+uint64(k)] >= uint32(doc)
	}))
	if i < hi && f.d.PostDoc[i] == uint32(doc) {
		return i, true
	}
	return 0, false
}

// posSpan returns the token positions of posting entry e.
func (f *FrozenIndex) posSpan(e uint64) []uint32 {
	return f.d.Positions[f.d.PostPosOff[e]:f.d.PostPosOff[e+1]]
}

// docTokens returns the token span of a document: base index into the
// token arrays and token count.
func (f *FrozenIndex) docTokens(doc int) (base, count uint64) {
	base = f.d.DocTokOff[doc]
	return base, f.d.DocTokOff[doc+1] - base
}

// text returns a document's text (a substring of the blob, no copy).
func (f *FrozenIndex) text(doc int) string {
	return f.d.TextBlob[f.d.TextOff[doc]:f.d.TextOff[doc+1]]
}

// title returns a document's title.
func (f *FrozenIndex) title(doc int) string {
	return f.d.TitleBlob[f.d.TitleOff[doc]:f.d.TitleOff[doc+1]]
}

// phraseAt is the frozen phraseAt: does the phrase occur in doc at any
// of the given start positions?
func (f *FrozenIndex) phraseAt(doc int, positions []uint32, phrase []uint32) bool {
	base, count := f.docTokens(doc)
starts:
	for _, pos := range positions {
		if uint64(pos)+uint64(len(phrase)) > count {
			continue
		}
		for j := 1; j < len(phrase); j++ {
			if f.d.TokTerm[base+uint64(pos)+uint64(j)] != phrase[j] {
				continue starts
			}
		}
		return true
	}
	return false
}

// match is the frozen matchLocked: documents matching the compiled
// query, collected into sc.ids. Required spans are intersected from the
// smallest, and docs come out in ascending order (callers count or
// re-rank, so order differences from the map-based matcher are
// invisible).
func (f *FrozenIndex) match(cq CompiledQuery, sc *searchScratch) []int {
	spans := sc.spans[:0]
	sc.ids = sc.ids[:0]
	for _, term := range cq.Required {
		lo, hi := f.termRange(term)
		if lo == hi {
			sc.spans = spans
			return nil
		}
		spans = append(spans, termSpan{lo: lo, hi: hi})
	}
	sc.spans = spans
	sort.Slice(spans, func(i, j int) bool { return spans[i].hi-spans[i].lo < spans[j].hi-spans[j].lo })

	inAll := func(doc uint32, from int) bool {
		for _, s := range spans[from:] {
			i := s.lo + uint64(sort.Search(int(s.hi-s.lo), func(k int) bool {
				return f.d.PostDoc[s.lo+uint64(k)] >= doc
			}))
			if i >= s.hi || f.d.PostDoc[i] != doc {
				return false
			}
		}
		return true
	}

	ids := sc.ids
	switch {
	case len(cq.Phrase) > 0:
		lo, hi := f.termRange(cq.Phrase[0])
		for e := lo; e < hi; e++ {
			doc := f.d.PostDoc[e]
			if !f.phraseAt(int(doc), f.posSpan(e), cq.Phrase) {
				continue
			}
			if inAll(doc, 0) {
				ids = append(ids, int(doc))
			}
		}
	case len(spans) > 0:
		s := spans[0]
		for e := s.lo; e < s.hi; e++ {
			doc := f.d.PostDoc[e]
			if inAll(doc, 1) {
				ids = append(ids, int(doc))
			}
		}
	}
	sc.ids = ids
	return ids
}

// relevance is the frozen relevanceLocked: phrase occurrences weigh 3,
// required-term occurrences weigh 1.
func (f *FrozenIndex) relevance(id int, cq CompiledQuery) int {
	score := 0
	if len(cq.Phrase) > 0 {
		if e, ok := f.findEntry(cq.Phrase[0], id); ok {
			base, count := f.docTokens(id)
		starts:
			for _, pos := range f.posSpan(e) {
				if uint64(pos)+uint64(len(cq.Phrase)) > count {
					continue
				}
				for j := 1; j < len(cq.Phrase); j++ {
					if f.d.TokTerm[base+uint64(pos)+uint64(j)] != cq.Phrase[j] {
						continue starts
					}
				}
				score += 3
			}
		}
	}
	for _, term := range cq.Required {
		if e, ok := f.findEntry(term, id); ok {
			score += int(f.d.PostPosOff[e+1] - f.d.PostPosOff[e])
		}
	}
	return score
}

// snippet is the frozen snippetLocked: the token window around the
// first phrase match, sliced straight out of the text blob.
func (f *FrozenIndex) snippet(id int, cq CompiledQuery, radius int) string {
	base, count := f.docTokens(id)
	n := int(count)
	start, end := 0, min(n, 2*radius)
	if len(cq.Phrase) > 0 {
		if pos, ok := f.firstPhrasePos(id, cq.Phrase); ok {
			start = max(0, pos-radius)
			end = min(n, pos+len(cq.Phrase)+radius)
		}
	}
	if start >= end {
		return ""
	}
	text := f.text(id)
	return text[f.d.TokStart[base+uint64(start)]:f.d.TokEnd[base+uint64(end-1)]]
}

func (f *FrozenIndex) firstPhrasePos(id int, phrase []uint32) (int, bool) {
	e, ok := f.findEntry(phrase[0], id)
	if !ok {
		return 0, false
	}
	base, count := f.docTokens(id)
starts:
	for _, pos := range f.posSpan(e) {
		if uint64(pos)+uint64(len(phrase)) > count {
			continue
		}
		for j := 1; j < len(phrase); j++ {
			if f.d.TokTerm[base+uint64(pos)+uint64(j)] != phrase[j] {
				continue starts
			}
		}
		return int(pos), true
	}
	return 0, false
}

// countScalar is the frozen countScalarLocked.
func (f *FrozenIndex) countScalar(cq *CompiledQuery) int {
	sc := searchPool.Get().(*searchScratch)
	n := len(f.match(*cq, sc))
	searchPool.Put(sc)
	return n
}

// countFrame is the frozen countFrameLocked: distinct documents of a
// fully-extended phrase frame that also carry every required term.
func (f *FrozenIndex) countFrame(frame []tokenHit, required []uint32) int {
	if len(frame) == 0 {
		return 0
	}
	var spans []termSpan
	for _, term := range required {
		lo, hi := f.termRange(term)
		if lo == hi {
			return 0
		}
		spans = append(spans, termSpan{lo: lo, hi: hi})
	}
	n := 0
	curDoc := int32(-1)
docs:
	for _, h := range frame {
		if h.doc == curDoc {
			continue
		}
		curDoc = h.doc
		doc := uint32(h.doc)
		for _, s := range spans {
			i := s.lo + uint64(sort.Search(int(s.hi-s.lo), func(k int) bool {
				return f.d.PostDoc[s.lo+uint64(k)] >= doc
			}))
			if i >= s.hi || f.d.PostDoc[i] != doc {
				continue docs
			}
		}
		n++
	}
	return n
}

// numHitsBatchFrozen answers a pre-charged batch against the frozen
// index with the same roll-up frame algorithm as the mutable path (see
// batch.go); results land in out by input index.
func (f *FrozenIndex) numHitsBatchFrozen(qs []BatchQuery, out []int) {
	sc := batchPool.Get().(*batchScratch)
	order := batchOrder(sc, qs)

	var prev []uint32
	depth := 0
	for oi, qi := range order {
		cq := &qs[qi].CQ
		p := cq.Phrase
		switch {
		case len(p) == 0:
			out[qi] = f.countScalar(cq)
			continue
		case len(p) == 1 && len(cq.Required) == 0:
			out[qi] = f.docCount(p[0])
			continue
		}
		common := 0
		for common < depth && common < len(p) && common < len(prev) && prev[common] == p[common] {
			common++
		}
		if common == 0 {
			// Same isolated-phrase fallback as the mutable path: frames
			// that no neighbor would reuse cost more than a scalar walk.
			shared := false
			if oi+1 < len(order) {
				np := qs[order[oi+1]].CQ.Phrase
				shared = len(np) > 0 && np[0] == p[0]
			}
			if !shared {
				out[qi] = f.countScalar(cq)
				continue
			}
		}
		for d := common; d < len(p); d++ {
			for len(sc.frames) <= d {
				sc.frames = append(sc.frames, nil)
			}
			if d == 0 {
				frame := sc.frames[0][:0]
				lo, hi := f.termRange(p[0])
				for e := lo; e < hi; e++ {
					doc := int32(f.d.PostDoc[e])
					for _, pos := range f.posSpan(e) {
						frame = append(frame, tokenHit{doc: doc, pos: int32(pos)})
					}
				}
				sc.frames[0] = frame
				continue
			}
			term := p[d]
			dst := sc.frames[d][:0]
			curDoc := int32(-1)
			var base, count uint64
			for _, h := range sc.frames[d-1] {
				if h.doc != curDoc {
					curDoc = h.doc
					base, count = f.docTokens(int(h.doc))
				}
				if at := uint64(h.pos) + uint64(d); at < count && f.d.TokTerm[base+at] == term {
					dst = append(dst, h)
				}
			}
			sc.frames[d] = dst
		}
		prev, depth = p, len(p)
		out[qi] = f.countFrame(sc.frames[len(p)-1], cq.Required)
	}
	batchPool.Put(sc)
}
