package surfaceweb

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webiq/internal/obs"
)

// CachedEngine wraps an Engine with a sharded, singleflight-deduplicated
// query cache. The corpus behind the engine is immutable during
// acquisition, so a query's hit count and snippet list never change and
// repeated queries — which dominate WebIQ's cost, because PMI validation
// re-issues NumHits(V) and NumHits(x) for the same phrases and
// candidates across attributes and components — can be answered from
// the cache without touching the engine at all. Concurrent requests for
// the same uncached query are collapsed into a single engine execution
// (singleflight), so a burst of identical queries from parallel workers
// charges the engine exactly once.
//
// Accounting policy: the wrapper keeps two views of the workload.
//
//   - Raw: every logical query, cache hit or not, counted by
//     RawQueryCount and charged its deterministic simulated latency into
//     RawVirtualTime — what a cacheless client (the paper's setup) would
//     have spent. The Figure-8 reproduction must see these numbers, which
//     is why the paper-reproduction benches run with the cache disabled
//     (equivalently, straight against the Engine).
//   - Deduped: only cache misses reach the inner engine and increment
//     its QueryCount/VirtualTime — what the optimized pipeline actually
//     spends. QueryCount and VirtualTime on the wrapper expose this view
//     so a CachedEngine is a drop-in replacement for an Engine in
//     accounting probes.
//
// CachedEngine implements the same Search/NumHits surface as Engine and
// is safe for concurrent use.
type CachedEngine struct {
	inner  *Engine
	shards []cacheShard

	rawQueries atomic.Int64
	rawVirtual atomic.Int64 // nanoseconds
	hits       atomic.Int64
	misses     atomic.Int64

	// Optional metrics; nil-safe no-ops when Instrument was not called.
	mHits    *obs.CounterVec // op: numhits, search
	mMisses  *obs.CounterVec // op: numhits, search
	mEntries *obs.Gauge
}

// cacheShard is one lock-striped slice of the cache. Each key is owned
// by exactly one shard, chosen by hash, so concurrent queries for
// different keys rarely contend on the same mutex.
type cacheShard struct {
	mu       sync.Mutex
	vals     map[string]cacheValue
	inflight map[string]*flight
}

// cacheValue is a completed query result.
type cacheValue struct {
	hits  int
	snips []Snippet
}

// flight is an in-progress engine execution other callers wait on.
type flight struct {
	done chan struct{}
	val  cacheValue
}

// DefaultCacheShards is the shard count used by NewCachedEngine when
// shards <= 0.
const DefaultCacheShards = 32

// NewCachedEngine wraps e with a query cache of the given shard count
// (<= 0 uses DefaultCacheShards).
func NewCachedEngine(e *Engine, shards int) *CachedEngine {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	c := &CachedEngine{inner: e, shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{vals: map[string]cacheValue{}, inflight: map[string]*flight{}}
	}
	return c
}

// Inner returns the wrapped engine.
func (c *CachedEngine) Inner() *Engine { return c.inner }

// Instrument registers the cache's metrics on r:
//
//	webiq_engine_cache_hits_total{op}    queries answered from the cache
//	webiq_engine_cache_misses_total{op}  queries executed on the engine
//	webiq_engine_cache_entries           cached results held
//
// op is "numhits" or "search". Passing nil leaves the cache
// uninstrumented (the default).
func (c *CachedEngine) Instrument(r *obs.Registry) {
	c.mHits = r.CounterVec("webiq_engine_cache_hits_total", "Search-engine queries answered from the query cache, by operation.", "op")
	c.mMisses = r.CounterVec("webiq_engine_cache_misses_total", "Search-engine queries executed on the engine after a cache miss, by operation.", "op")
	c.mEntries = r.Gauge("webiq_engine_cache_entries", "Query results held in the cache.")
}

// shard returns the shard owning key.
func (c *CachedEngine) shard(key string) *cacheShard {
	return &c.shards[hash32(key)%uint32(len(c.shards))]
}

// lookup serves key from the cache, collapsing concurrent misses into
// one call to exec. It reports whether the value came from the cache
// (including waiting on another caller's in-flight execution). The key
// is passed as bytes and probed zero-copy; it is materialized to a
// string only when this caller has to register the miss.
func (c *CachedEngine) lookup(keyb []byte, exec func() cacheValue) (cacheValue, bool) {
	sh := &c.shards[hash32b(keyb)%uint32(len(c.shards))]
	sh.mu.Lock()
	if v, ok := sh.vals[string(keyb)]; ok {
		sh.mu.Unlock()
		return v, true
	}
	if f, ok := sh.inflight[string(keyb)]; ok {
		sh.mu.Unlock()
		<-f.done
		return f.val, true
	}
	key := string(keyb)
	f := &flight{done: make(chan struct{})}
	sh.inflight[key] = f
	sh.mu.Unlock()

	f.val = exec()

	sh.mu.Lock()
	sh.vals[key] = f.val
	delete(sh.inflight, key)
	sh.mu.Unlock()
	close(f.done)
	c.mEntries.Inc()
	return f.val, false
}

// keyScratch is the pooled key-construction buffer of the scalar
// NumHits/Search probes.
type keyScratch struct{ buf []byte }

var keyPool = sync.Pool{New: func() any { return new(keyScratch) }}

// account records one logical query in the raw view and the hit/miss
// outcome.
func (c *CachedEngine) account(query, op string, hit bool) {
	c.rawQueries.Add(1)
	c.rawVirtual.Add(int64(c.inner.QueryLatency(query)))
	if hit {
		c.hits.Add(1)
		c.mHits.With(op).Inc()
	} else {
		c.misses.Add(1)
		c.mMisses.With(op).Inc()
	}
}

// NumHits returns the number of documents matching the query, answering
// from the cache when possible.
//
// Cache keys are the canonical compiled form of the query, not the raw
// string, so queries differing only in whitespace, '+' markers, or
// required-term order share one entry and one engine execution. The raw
// view still accounts each logical query by its raw string — the
// simulated latency a cacheless client would have paid for exactly that
// request.
func (c *CachedEngine) NumHits(query string) int {
	cq := c.inner.Compile(query)
	ks := keyPool.Get().(*keyScratch)
	ks.buf = cq.AppendKey(append(ks.buf[:0], 'h', 0))
	v, hit := c.lookup(ks.buf, func() cacheValue {
		return cacheValue{hits: c.inner.NumHitsCompiled(cq, query)}
	})
	keyPool.Put(ks)
	c.account(query, "numhits", hit)
	return v.hits
}

// Search returns up to k result snippets for the query, answering from
// the cache when possible. Results are cached per (compiled query, k)
// and the returned slice is the caller's to keep.
func (c *CachedEngine) Search(query string, k int) []Snippet {
	cq := c.inner.Compile(query)
	ks := keyPool.Get().(*keyScratch)
	buf := append(ks.buf[:0], 's', 0)
	buf = strconv.AppendInt(buf, int64(k), 10)
	buf = append(buf, 0)
	ks.buf = cq.AppendKey(buf)
	v, hit := c.lookup(ks.buf, func() cacheValue {
		return cacheValue{snips: c.inner.SearchCompiled(cq, query, k)}
	})
	keyPool.Put(ks)
	c.account(query, "search", hit)
	out := make([]Snippet, len(v.snips))
	copy(out, v.snips)
	return out
}

// QueryCount returns the deduplicated query count — the queries that
// actually reached the engine (plus any issued on the engine directly).
func (c *CachedEngine) QueryCount() int { return c.inner.QueryCount() }

// VirtualTime returns the deduplicated simulated retrieval time — the
// virtual time actually charged by the engine.
func (c *CachedEngine) VirtualTime() time.Duration { return c.inner.VirtualTime() }

// RawQueryCount returns the number of logical queries served, hits
// included — the query count a cacheless client would have issued.
func (c *CachedEngine) RawQueryCount() int { return int(c.rawQueries.Load()) }

// RawVirtualTime returns the simulated time a cacheless client would
// have spent on the queries served, hits included.
func (c *CachedEngine) RawVirtualTime() time.Duration {
	return time.Duration(c.rawVirtual.Load())
}

// Hits returns how many queries were answered from the cache.
func (c *CachedEngine) Hits() int { return int(c.hits.Load()) }

// Misses returns how many queries were executed on the engine.
func (c *CachedEngine) Misses() int { return int(c.misses.Load()) }

// Len returns the number of cached results.
func (c *CachedEngine) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.vals)
		sh.mu.Unlock()
	}
	return n
}

// Reset drops every cached result and zeroes the cache's raw/hit/miss
// accounting (the inner engine's accounting is left alone).
func (c *CachedEngine) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.vals = map[string]cacheValue{}
		sh.mu.Unlock()
	}
	c.rawQueries.Store(0)
	c.rawVirtual.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.mEntries.Set(0)
}
