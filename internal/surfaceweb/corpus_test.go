package surfaceweb

import (
	"strings"
	"testing"

	"webiq/internal/kb"
)

func buildTestCorpus(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	BuildCorpus(e, kb.Domains(), DefaultCorpusConfig())
	return e
}

func TestBuildCorpusSize(t *testing.T) {
	e := buildTestCorpus(t)
	if e.NumDocs() < 1000 {
		t.Errorf("corpus has only %d docs", e.NumDocs())
	}
}

func TestCorpusSupportsHearstQueries(t *testing.T) {
	e := buildTestCorpus(t)
	// Cue phrases formed from benign labels must have substantial hits.
	for _, q := range []string{
		`"airlines such as"`,
		`"departure cities such as"`,
		`"authors such as"`,
		`"makes such as"`,
		`"job categories such as"`,
	} {
		if got := e.NumHits(q); got < 2 {
			t.Errorf("NumHits(%s) = %d, want >= 2", q, got)
		}
	}
}

func TestCorpusSnippetsYieldInstances(t *testing.T) {
	e := buildTestCorpus(t)
	snips := e.Search(`"airlines such as"`, 10)
	if len(snips) == 0 {
		t.Fatal("no snippets for airline cue phrase")
	}
	all := map[string]bool{}
	for _, a := range kb.AirlinesNA {
		all[a] = true
	}
	for _, a := range kb.AirlinesEU {
		all[a] = true
	}
	found := false
	for _, s := range snips {
		for a := range all {
			if strings.Contains(s.Text, a) {
				found = true
			}
		}
	}
	if !found {
		t.Error("no airline instance appears in airline snippets")
	}
}

func TestCorpusProximityValidation(t *testing.T) {
	e := buildTestCorpus(t)
	// True instance + label co-occurrence must beat non-instance + label.
	trueHits := e.NumHits(`"airline delta"`) + e.NumHits(`"airlines such as delta"`)
	falseHits := e.NumHits(`"airline economy"`) + e.NumHits(`"airlines such as economy"`)
	if trueHits <= falseHits {
		t.Errorf("validation signal inverted: true=%d false=%d", trueHits, falseHits)
	}
}

func TestCorpusNarrowedQueriesMatch(t *testing.T) {
	e := buildTestCorpus(t)
	if got := e.NumHits(`"authors such as" +book`); got < 1 {
		t.Errorf("narrowed author query hits = %d", got)
	}
}

func TestCorpusWeakForHardConcepts(t *testing.T) {
	e := buildTestCorpus(t)
	// "zip" is ambiguous (WebPresence 0.15): far fewer pattern pages than
	// a strong concept like make.
	zip := e.NumHits(`"zips such as"`)
	mk := e.NumHits(`"makes such as"`)
	if zip >= mk {
		t.Errorf("zip (%d) should have fewer pattern hits than make (%d)", zip, mk)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	BuildCorpus(a, kb.Domains(), DefaultCorpusConfig())
	BuildCorpus(b, kb.Domains(), DefaultCorpusConfig())
	if a.NumDocs() != b.NumDocs() {
		t.Fatalf("doc counts differ: %d vs %d", a.NumDocs(), b.NumDocs())
	}
	for _, q := range []string{`"airlines such as"`, `"make honda"`, `boston`} {
		if a.NumHits(q) != b.NumHits(q) {
			t.Errorf("hit counts differ for %s", q)
		}
	}
}

func TestConceptPhrasesSkipsBadForms(t *testing.T) {
	d := kb.DomainByKey("airfare")
	c := d.ConceptByName("origin city")
	phrases := conceptPhrases(c)
	for _, np := range phrases {
		if np.Text() == "from" || np.Text() == "" {
			t.Errorf("bad phrase %q from label analysis", np.Text())
		}
	}
	// The NP-bearing variants ("departure city", "city") must be present.
	var texts []string
	for _, np := range phrases {
		texts = append(texts, np.Text())
	}
	joined := strings.Join(texts, "|")
	if !strings.Contains(joined, "departure city") {
		t.Errorf("phrases = %v, missing departure city", texts)
	}
}
