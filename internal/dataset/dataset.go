// Package dataset deterministically reconstructs an ICQ-style evaluation
// dataset from the domain knowledge bases: five domains, a configurable
// number of query interfaces per domain, label variants spanning the
// syntactic forms the paper discusses, and instance-presence rates
// calibrated toward Table 1.
//
// The original ICQ dataset (100 hand-collected interfaces from 2003) is
// not available; this generator is the documented substitution. Because
// interfaces and gold matches derive from the same concept layer, the
// gold standard is exact by construction.
package dataset

import (
	"fmt"
	"math/rand"

	"webiq/internal/kb"
	"webiq/internal/schema"
)

// Config controls dataset generation.
type Config struct {
	// Interfaces is the number of query interfaces per domain (the paper
	// uses 20).
	Interfaces int
	// Seed drives all random choices; equal seeds give byte-identical
	// datasets.
	Seed int64
	// MinAttrs is the minimum number of attributes per interface.
	MinAttrs int
	// PredefMin/PredefMax bound how many predefined instances a
	// selection-list attribute exposes.
	PredefMin, PredefMax int
	// CrossRegionRate is the probability a predefined value is drawn
	// from outside the interface's regional group. The default of zero
	// keeps regional instance sets disjoint, reproducing the paper's
	// observation that matching attributes often have dissimilar
	// instances (NA vs EU airlines).
	CrossRegionRate float64
}

// DefaultConfig mirrors the paper's dataset scale.
func DefaultConfig() Config {
	return Config{Interfaces: 20, Seed: 1, MinAttrs: 2, PredefMin: 6, PredefMax: 12}
}

// Generate builds the dataset for one domain.
func Generate(d *kb.Domain, cfg Config) *schema.Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(hash(d.Key))))
	ds := &schema.Dataset{
		Domain:        d.Key,
		EntityName:    d.EntityName,
		DomainKeyword: d.DomainKeyword,
	}
	for i := 0; i < cfg.Interfaces; i++ {
		ifc := generateInterface(d, cfg, rng, i)
		ds.Interfaces = append(ds.Interfaces, ifc)
	}
	return ds
}

// GenerateAll builds datasets for all five domains.
func GenerateAll(cfg Config) []*schema.Dataset {
	var out []*schema.Dataset
	for _, d := range kb.Domains() {
		out = append(out, Generate(d, cfg))
	}
	return out
}

func generateInterface(d *kb.Domain, cfg Config, rng *rand.Rand, idx int) *schema.Interface {
	ifcID := fmt.Sprintf("%s/if%02d", d.Key, idx)
	ifc := &schema.Interface{
		ID:     ifcID,
		Domain: d.Key,
		Source: fmt.Sprintf("%s-source-%02d", d.Key, idx),
	}
	// Each interface has a regional bias: predefined lists draw mostly
	// from one instance group. This reproduces the "Airline lists North
	// American carriers, Carrier lists European ones" phenomenon.
	region := idx % 2

	for {
		ifc.Attributes = ifc.Attributes[:0]
		attrIdx := 0
		for _, c := range d.Concepts {
			if rng.Float64() > c.Presence {
				continue
			}
			labels := c.Labels
			if c.GroupLabels != nil {
				labels = c.GroupLabels[region%len(c.GroupLabels)]
			}
			a := &schema.Attribute{
				ID:          fmt.Sprintf("%s/a%d", ifcID, attrIdx),
				InterfaceID: ifcID,
				Label:       pickLabel(labels, rng),
				ConceptID:   c.ID,
			}
			if rng.Float64() < c.PredefProb {
				a.Instances = pickInstances(c, cfg, rng, region)
			}
			ifc.Attributes = append(ifc.Attributes, a)
			attrIdx++
		}
		if len(ifc.Attributes) >= cfg.MinAttrs {
			break
		}
	}
	return ifc
}

// pickLabel samples a label variant by weight.
func pickLabel(labels []kb.LabelVariant, rng *rand.Rand) string {
	var total float64
	for _, l := range labels {
		total += l.Weight
	}
	r := rng.Float64() * total
	for _, l := range labels {
		r -= l.Weight
		if r <= 0 {
			return l.Text
		}
	}
	return labels[len(labels)-1].Text
}

// pickInstances samples the predefined instance list for an attribute.
// String concepts draw ~90% from the interface's regional group; numeric
// concepts sample from the numeric spec.
func pickInstances(c *kb.Concept, cfg Config, rng *rand.Rand, region int) []string {
	n := cfg.PredefMin
	if cfg.PredefMax > cfg.PredefMin {
		n += rng.Intn(cfg.PredefMax - cfg.PredefMin + 1)
	}
	if c.Numeric != nil {
		return c.Numeric.Sample(rng, n)
	}
	primary := c.Groups[region%len(c.Groups)]
	var pool, alt []string
	pool = append(pool, primary...)
	for gi, g := range c.Groups {
		if gi != region%len(c.Groups) {
			alt = append(alt, g...)
		}
	}
	// The list draws from the primary regional pool; without this clamp a
	// small pool would force spilling into other regions' vocabulary and
	// destroy the regional dissimilarity the dataset is built to exhibit.
	if n > len(pool) {
		n = len(pool)
	}
	seen := map[string]bool{}
	out := make([]string, 0, n)
	for len(out) < n {
		var cand string
		if len(alt) > 0 && cfg.CrossRegionRate > 0 && rng.Float64() < cfg.CrossRegionRate {
			cand = alt[rng.Intn(len(alt))]
		} else {
			cand = pool[rng.Intn(len(pool))]
		}
		if seen[cand] {
			continue
		}
		seen[cand] = true
		out = append(out, cand)
	}
	return out
}

func hash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
