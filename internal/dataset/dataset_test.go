package dataset

import (
	"bytes"
	"reflect"
	"testing"

	"webiq/internal/kb"
	"webiq/internal/schema"
)

func TestGenerateBasics(t *testing.T) {
	cfg := DefaultConfig()
	ds := Generate(kb.DomainByKey("airfare"), cfg)
	if len(ds.Interfaces) != 20 {
		t.Fatalf("interfaces = %d, want 20", len(ds.Interfaces))
	}
	if ds.EntityName != "flight" || ds.DomainKeyword != "airfare" {
		t.Errorf("metadata = %q/%q", ds.EntityName, ds.DomainKeyword)
	}
	for _, ifc := range ds.Interfaces {
		if len(ifc.Attributes) < cfg.MinAttrs {
			t.Errorf("interface %s has %d attrs", ifc.ID, len(ifc.Attributes))
		}
		for _, a := range ifc.Attributes {
			if a.Label == "" || a.ConceptID == "" || a.InterfaceID != ifc.ID {
				t.Errorf("bad attribute %+v", a)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := Generate(kb.DomainByKey("book"), cfg)
	b := Generate(kb.DomainByKey("book"), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed should give identical datasets")
	}
	cfg.Seed = 99
	c := Generate(kb.DomainByKey("book"), cfg)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should give different datasets")
	}
}

func TestGenerateUniqueIDs(t *testing.T) {
	for _, ds := range GenerateAll(DefaultConfig()) {
		seen := map[string]bool{}
		for _, a := range ds.AllAttributes() {
			if seen[a.ID] {
				t.Errorf("duplicate attribute ID %q", a.ID)
			}
			seen[a.ID] = true
		}
	}
}

func TestGenerateNoDuplicateConceptsPerInterface(t *testing.T) {
	for _, ds := range GenerateAll(DefaultConfig()) {
		for _, ifc := range ds.Interfaces {
			seen := map[string]bool{}
			for _, a := range ifc.Attributes {
				if seen[a.ConceptID] {
					t.Errorf("interface %s repeats concept %s", ifc.ID, a.ConceptID)
				}
				seen[a.ConceptID] = true
			}
		}
	}
}

func TestAttrCountsNearTable1(t *testing.T) {
	want := map[string]float64{
		"airfare": 10.7, "auto": 5.1, "book": 5.4, "job": 4.6, "realestate": 6.5,
	}
	for _, ds := range GenerateAll(DefaultConfig()) {
		st := ds.ComputeStats()
		w := want[ds.Domain]
		if st.AvgAttrs < w-1.5 || st.AvgAttrs > w+1.5 {
			t.Errorf("domain %s avg attrs = %.2f, want near %.1f", ds.Domain, st.AvgAttrs, w)
		}
	}
}

func TestInstanceLessAttributesPervasive(t *testing.T) {
	// The core premise: a large share of interfaces contain attributes
	// without instances.
	for _, ds := range GenerateAll(DefaultConfig()) {
		st := ds.ComputeStats()
		if st.PctInterfacesNoInst < 60 {
			t.Errorf("domain %s: only %.0f%% interfaces have instance-less attrs",
				ds.Domain, st.PctInterfacesNoInst)
		}
		if st.PctAttrsNoInst < 15 || st.PctAttrsNoInst > 90 {
			t.Errorf("domain %s: %.1f%% attrs without instances out of plausible range",
				ds.Domain, st.PctAttrsNoInst)
		}
	}
}

func TestJobDomainMostInstanceLess(t *testing.T) {
	// Table 1: the job domain has by far the highest share of attributes
	// without instances (74.6%).
	stats := map[string]schema.Stats{}
	for _, ds := range GenerateAll(DefaultConfig()) {
		stats[ds.Domain] = ds.ComputeStats()
	}
	job := stats["job"].PctAttrsNoInst
	for dom, st := range stats {
		if dom == "job" {
			continue
		}
		if st.PctAttrsNoInst >= job {
			t.Errorf("domain %s (%.1f%%) >= job (%.1f%%) instance-less attrs",
				dom, st.PctAttrsNoInst, job)
		}
	}
}

func TestPredefinedListsRegionalSkew(t *testing.T) {
	ds := Generate(kb.DomainByKey("airfare"), DefaultConfig())
	naSet := map[string]bool{}
	for _, a := range kb.AirlinesNA {
		naSet[a] = true
	}
	// For interfaces with predefined airline lists, the majority of
	// values must come from a single regional group.
	for _, ifc := range ds.Interfaces {
		for _, a := range ifc.Attributes {
			if a.ConceptID != "airfare.airline" || !a.HasInstances() {
				continue
			}
			na := 0
			for _, v := range a.Instances {
				if naSet[v] {
					na++
				}
			}
			frac := float64(na) / float64(len(a.Instances))
			if frac > 0.34 && frac < 0.66 {
				t.Errorf("interface %s airline list not regionally skewed: %v", ifc.ID, a.Instances)
			}
		}
	}
}

func TestGoldPairsConsistent(t *testing.T) {
	ds := Generate(kb.DomainByKey("auto"), DefaultConfig())
	pairs := ds.GoldPairs()
	if len(pairs) == 0 {
		t.Fatal("no gold pairs")
	}
	byID := map[string]*schema.Attribute{}
	for _, a := range ds.AllAttributes() {
		byID[a.ID] = a
	}
	for p := range pairs {
		if byID[p.A].ConceptID != byID[p.B].ConceptID {
			t.Errorf("gold pair %v crosses concepts", p)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ds := Generate(kb.DomainByKey("job"), DefaultConfig())
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := schema.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Error("JSON round trip mismatch")
	}
}

func TestPredefInstancesUnique(t *testing.T) {
	for _, ds := range GenerateAll(DefaultConfig()) {
		for _, a := range ds.AllAttributes() {
			seen := map[string]bool{}
			for _, v := range a.Instances {
				if seen[v] {
					t.Errorf("attribute %s lists duplicate instance %q", a.ID, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestGenerateCustomInterfaceCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interfaces = 7
	ds := Generate(kb.DomainByKey("auto"), cfg)
	if len(ds.Interfaces) != 7 {
		t.Errorf("interfaces = %d, want 7", len(ds.Interfaces))
	}
}

func TestGenerateCrossRegionRate(t *testing.T) {
	// With a positive cross-region rate, some predefined airline lists
	// mix regions; with zero they never do.
	naSet := map[string]bool{}
	for _, a := range kb.AirlinesNA {
		naSet[a] = true
	}
	mixed := func(cfg Config) int {
		ds := Generate(kb.DomainByKey("airfare"), cfg)
		n := 0
		for _, a := range ds.AllAttributes() {
			if a.ConceptID != "airfare.airline" || !a.HasInstances() {
				continue
			}
			na, eu := 0, 0
			for _, v := range a.Instances {
				if naSet[v] {
					na++
				} else {
					eu++
				}
			}
			if na > 0 && eu > 0 {
				n++
			}
		}
		return n
	}
	strict := DefaultConfig()
	if got := mixed(strict); got != 0 {
		t.Errorf("zero cross-region rate produced %d mixed lists", got)
	}
	loose := DefaultConfig()
	loose.CrossRegionRate = 0.5
	if got := mixed(loose); got == 0 {
		t.Error("high cross-region rate produced no mixed lists")
	}
}

func TestGenerateMovieExtension(t *testing.T) {
	for _, d := range kb.ExtendedDomains() {
		if d.Key != "movie" {
			continue
		}
		ds := Generate(d, DefaultConfig())
		st := ds.ComputeStats()
		if st.Interfaces != 20 || st.AvgAttrs < 3 {
			t.Errorf("movie dataset stats = %+v", st)
		}
		if len(ds.GoldPairs()) == 0 {
			t.Error("movie dataset has no gold pairs")
		}
	}
}
