package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"webiq/internal/cluster"
	"webiq/internal/resilience"
	"webiq/internal/snapshot"
)

// The cluster tests boot several snapshot-backed servers (instant
// replica warm-up, every domain ready) behind real HTTP listeners; the
// world is built once per test binary and shared read-only.
var (
	clusterWorldOnce sync.Once
	clusterWorld     *snapshot.World
	clusterWorldErr  error
)

func testWorld(t *testing.T) *snapshot.World {
	t.Helper()
	clusterWorldOnce.Do(func() {
		world, err := snapshot.BuildWorld(snapshot.BuildConfig{Seed: snapSeed})
		if err != nil {
			clusterWorldErr = err
			return
		}
		raw, err := world.Bytes()
		if err != nil {
			clusterWorldErr = err
			return
		}
		clusterWorld, clusterWorldErr = snapshot.LoadBytes(raw)
	})
	if clusterWorldErr != nil {
		t.Fatalf("build cluster test world: %v", clusterWorldErr)
	}
	return clusterWorld
}

// swapHandler lets the listener exist before the server it fronts:
// member base URLs are needed to construct each node's cluster config.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testCluster is a running multi-node cluster.
type testCluster struct {
	ids     []string
	servers map[string]*Server
	http    map[string]*httptest.Server
}

// startTestCluster boots n snapshot-backed nodes (n1..nN) wired into
// one cluster with replication 2 and fast forwarding retries. Probing
// is driven by the background prober (interval 50ms) AND available
// synchronously via ProbeNow for deterministic assertions.
func startTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	world := testWorld(t)

	tc := &testCluster{servers: map[string]*Server{}, http: map[string]*httptest.Server{}}
	handlers := map[string]*swapHandler{}
	var members []cluster.Member
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("n%d", i)
		tc.ids = append(tc.ids, id)
		sh := &swapHandler{}
		handlers[id] = sh
		ts := httptest.NewServer(sh)
		t.Cleanup(ts.Close)
		tc.http[id] = ts
		members = append(members, cluster.Member{ID: id, BaseURL: ts.URL})
	}
	for _, id := range tc.ids {
		srv, err := NewFromSnapshot(world, WithCluster(cluster.Config{
			Self:          id,
			Members:       members,
			Replication:   2,
			ProbeInterval: 50 * time.Millisecond,
			ProbeTimeout:  time.Second,
			DeadAfter:     3,
			Forward: cluster.ForwarderOptions{
				Retry: resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
				Seed:  1,
			},
		}))
		if err != nil {
			t.Fatalf("boot node %s: %v", id, err)
		}
		t.Cleanup(srv.Close)
		tc.servers[id] = srv
		handlers[id].set(srv)
	}
	// Nodes boot one after another, so the first node's prober may have
	// seen 503s from handlers not yet installed. Settle every membership
	// view to alive before handing the cluster to the test.
	for _, id := range tc.ids {
		tc.servers[id].Cluster().ProbeNow(context.Background())
	}
	return tc
}

// get fetches a path from one node over real HTTP.
func (tc *testCluster) get(t *testing.T, id, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(tc.http[id].URL + path)
	if err != nil {
		t.Fatalf("GET %s on %s: %v", path, id, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s on %s: %v", path, id, err)
	}
	return resp, string(body)
}

// nonOwnerOf returns a node that does not own the domain, plus the
// domain's owner list.
func (tc *testCluster) nonOwnerOf(t *testing.T, domain string) (string, []string) {
	t.Helper()
	owners := tc.servers[tc.ids[0]].Cluster().Owners(domain)
	owned := map[string]bool{}
	for _, id := range owners {
		owned[id] = true
	}
	for _, id := range tc.ids {
		if !owned[id] {
			return id, owners
		}
	}
	t.Fatalf("every node owns %s (owners %v)", domain, owners)
	return "", nil
}

// TestClusterForwardsToOwnerAndHopGuards: a request for a non-owned
// domain is forwarded to the primary (X-WebIQ-Served-By names it); a
// request already carrying the hop-guard header is served locally,
// never re-forwarded.
func TestClusterForwardsToOwnerAndHopGuards(t *testing.T) {
	tc := startTestCluster(t, 3)
	domain := "airfare"
	requester, owners := tc.nonOwnerOf(t, domain)

	resp, body := tc.get(t, requester, "/unified/"+domain)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded /unified/%s = %d", domain, resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.ServedByHeader); got != owners[0] {
		t.Fatalf("served by %q, want primary %q", got, owners[0])
	}
	if !strings.Contains(body, "<form") {
		t.Fatalf("forwarded body is not the unified form: %.100s", body)
	}

	// Hop guard: stamped requests serve locally.
	req, _ := http.NewRequest("GET", tc.http[requester].URL+"/unified/"+domain, nil)
	req.Header.Set(cluster.ForwardedHeader, "n99")
	hopResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hopResp.Body.Close()
	if hopResp.StatusCode != http.StatusOK {
		t.Fatalf("hop-guarded request = %d", hopResp.StatusCode)
	}
	if got := hopResp.Header.Get(cluster.ServedByHeader); got != "" {
		t.Fatalf("hop-guarded request was re-forwarded to %q", got)
	}

	// The requester's routing counters saw both modes.
	served := tc.servers[requester].Cluster().Served()
	if served["forwarded"] != 1 || served["hop"] != 1 {
		t.Fatalf("served = %v, want forwarded=1 hop=1", served)
	}
}

// TestClusterFailoverOnDeadPrimary kills a domain's primary and
// requires the replica to take over: the domain stays servable through
// any surviving node, which is the chaos-gate availability contract.
func TestClusterFailoverOnDeadPrimary(t *testing.T) {
	tc := startTestCluster(t, 3)
	domain := "airfare"
	requester, owners := tc.nonOwnerOf(t, domain)

	tc.http[owners[0]].Close() // the primary dies

	resp, _ := tc.get(t, requester, "/unified/"+domain)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/unified/%s after primary death = %d", domain, resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.ServedByHeader); got != owners[1] {
		t.Fatalf("served by %q, want replica %q", got, owners[1])
	}
	if tc.servers[requester].Cluster().Served()["failover"] != 1 {
		t.Fatalf("served = %v, want failover=1", tc.servers[requester].Cluster().Served())
	}

	// Once probes mark the primary dead, it leaves the forward order
	// entirely and requests go straight to the replica.
	deadline := time.Now().Add(5 * time.Second)
	for tc.servers[requester].Cluster().Membership().State(owners[0]) != cluster.StateDead {
		if time.Now().After(deadline) {
			t.Fatalf("primary %s never marked dead", owners[0])
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, _ = tc.get(t, requester, "/unified/"+domain)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(cluster.ServedByHeader) != owners[1] {
		t.Fatalf("post-death request: %d served by %q, want 200 from %s",
			resp.StatusCode, resp.Header.Get(cluster.ServedByHeader), owners[1])
	}
}

// TestClusterSourceRouteForwards: the /source/{ifc} routes shard by
// the interface's domain prefix, like /unified.
func TestClusterSourceRouteForwards(t *testing.T) {
	tc := startTestCluster(t, 3)
	domain := "book"
	requester, owners := tc.nonOwnerOf(t, domain)
	resp, body := tc.get(t, requester, "/source/"+domain+"/if00")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/source/%s/if00 = %d", domain, resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.ServedByHeader); got != owners[0] {
		t.Fatalf("served by %q, want primary %q", got, owners[0])
	}
	if !strings.Contains(body, "<form") {
		t.Fatalf("forwarded source page has no form: %.100s", body)
	}
}

// TestClusterStatsAggregation: /cluster/stats on any node carries the
// ring view plus every node's /stats document.
func TestClusterStatsAggregation(t *testing.T) {
	tc := startTestCluster(t, 3)
	resp, body := tc.get(t, "n1", "/cluster/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cluster/stats = %d", resp.StatusCode)
	}
	var info struct {
		Cluster struct {
			Self        string              `json:"self"`
			Replication int                 `json:"replication"`
			Nodes       []string            `json:"nodes"`
			Owners      map[string][]string `json:"owners"`
		} `json:"cluster"`
		Nodes  map[string]json.RawMessage `json:"nodes"`
		Errors map[string]string          `json:"node_errors"`
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("bad /cluster/stats JSON: %v", err)
	}
	if info.Cluster.Self != "n1" || info.Cluster.Replication != 2 || len(info.Cluster.Nodes) != 3 {
		t.Fatalf("cluster block = %+v", info.Cluster)
	}
	if len(info.Cluster.Owners) != 5 {
		t.Fatalf("owners cover %d domains, want 5", len(info.Cluster.Owners))
	}
	for d, o := range info.Cluster.Owners {
		if len(o) != 2 {
			t.Fatalf("domain %s owners = %v, want 2", d, o)
		}
	}
	if len(info.Nodes) != 3 {
		t.Fatalf("aggregated %d node stats (errors %v), want 3", len(info.Nodes), info.Errors)
	}
	// Each embedded node document is a full /stats body.
	for id, raw := range info.Nodes {
		var st struct {
			CorpusPages int `json:"corpus_pages"`
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("node %s stats invalid: %v", id, err)
		}
		if st.CorpusPages == 0 {
			t.Fatalf("node %s stats has no corpus_pages", id)
		}
	}
}

// TestClusterStatsBlockOnNodeStats: /stats on a cluster node carries
// the cluster block (peer health, breakers, forward counts).
func TestClusterStatsBlockOnNodeStats(t *testing.T) {
	tc := startTestCluster(t, 3)
	resp, body := tc.get(t, "n2", "/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats = %d", resp.StatusCode)
	}
	var st struct {
		Cluster *struct {
			Self     string            `json:"self"`
			Members  []json.RawMessage `json:"members"`
			Breakers map[string]string `json:"peer_breakers"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || st.Cluster.Self != "n2" {
		t.Fatalf("stats cluster block = %+v", st.Cluster)
	}
	if len(st.Cluster.Members) != 2 || len(st.Cluster.Breakers) != 2 {
		t.Fatalf("cluster block members/breakers = %d/%d, want 2/2",
			len(st.Cluster.Members), len(st.Cluster.Breakers))
	}
}

// TestSingleNodeStatsUnchanged pins the compatibility contract: with
// no -peers, /stats has no cluster key and /cluster/stats answers 404
// — a single-node deployment is byte-identical to the pre-cluster
// server.
func TestSingleNodeStatsUnchanged(t *testing.T) {
	snap, _ := snapshotPair(t)
	rec := httptest.NewRecorder()
	snap.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, present := doc["cluster"]; present {
		t.Fatal("single-node /stats contains a cluster block")
	}
	rec = httptest.NewRecorder()
	snap.ServeHTTP(rec, httptest.NewRequest("GET", "/cluster/stats", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("single-node /cluster/stats = %d, want 404", rec.Code)
	}
}

// TestClusterDrainStopsForwarding is the drain integration contract:
// BeginDrain flips the node's /readyz, peers mark it suspect within
// one probe round, and forwarded traffic routes to the replica instead
// — the draining node sees no new forwards.
func TestClusterDrainStopsForwarding(t *testing.T) {
	tc := startTestCluster(t, 3)
	domain := "airfare"
	requester, owners := tc.nonOwnerOf(t, domain)
	primary := owners[0]

	// Sanity: pre-drain traffic lands on the primary.
	resp, _ := tc.get(t, requester, "/unified/"+domain)
	if got := resp.Header.Get(cluster.ServedByHeader); got != primary {
		t.Fatalf("pre-drain served by %q, want %q", got, primary)
	}

	tc.servers[primary].BeginDrain()
	// The draining node's own /readyz flips immediately...
	resp, _ = tc.get(t, primary, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}
	// ...and one probe round is all a peer needs to demote it.
	tc.servers[requester].Cluster().ProbeNow(context.Background())
	if got := tc.servers[requester].Cluster().Membership().State(primary); got != cluster.StateSuspect {
		t.Fatalf("draining node state = %v after one probe, want suspect", got)
	}

	// Forwarded traffic now prefers the alive replica.
	resp, _ = tc.get(t, requester, "/unified/"+domain)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/unified/%s during drain = %d", domain, resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.ServedByHeader); got != owners[1] {
		t.Fatalf("during drain served by %q, want replica %q", got, owners[1])
	}
}
