package server

// Slab-allocated request scratch. Every response the server renders —
// JSON encodings and the HTML pages — is built in a pooled fixed-size
// buffer and flushed with a single Write, instead of issuing one
// ResponseWriter write (and its allocation) per fmt.Fprintf fragment.
// The pool holds the buffers across requests, so a steady request
// stream renders with no per-request buffer allocation; a response that
// outgrows its slab grows the slice normally and the oversized backing
// array is dropped on release rather than pinned in the pool.

import (
	"bytes"
	"net/http"
	"sync"
)

// slabSize is the initial capacity of a pooled render buffer — large
// enough for every steady-state response (interface forms, stats JSON,
// unified-search result lists) to render without growing.
const slabSize = 32 << 10

// slabMax is the largest backing array the pool retains. Responses
// bigger than this (full trace dumps, explain payloads over large
// domains) hand their one-off buffer to the collector instead of
// bloating the pool.
const slabMax = 4 * slabSize

type slab struct {
	buf bytes.Buffer
}

var slabPool = sync.Pool{New: func() any {
	s := new(slab)
	s.buf.Grow(slabSize)
	return s
}}

// getSlab returns an empty render buffer from the pool.
func getSlab() *slab {
	s := slabPool.Get().(*slab)
	s.buf.Reset()
	return s
}

// flush writes the rendered response in one Write and returns the slab
// to the pool (unless it grew past slabMax).
func (s *slab) flush(w http.ResponseWriter) {
	w.Write(s.buf.Bytes())
	if s.buf.Cap() <= slabMax {
		slabPool.Put(s)
	}
}
