package server

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

var (
	srvOnce sync.Once
	srv     *Server
)

func testServer(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() { srv = New(1) })
	return srv
}

func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestIndex(t *testing.T) {
	s := testServer(t)
	code, body := get(t, s, "/")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"airfare", "book", "unified"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestSourcesJSON(t *testing.T) {
	s := testServer(t)
	code, body := get(t, s, "/sources")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var out []sourceInfo
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 { // 5 domains × 20 interfaces
		t.Errorf("sources = %d, want 100", len(out))
	}
	for _, si := range out[:3] {
		if si.ID == "" || si.Attributes == 0 {
			t.Errorf("bad source %+v", si)
		}
	}
}

func TestSourceFormPage(t *testing.T) {
	s := testServer(t)
	code, body := get(t, s, "/source/airfare/if00")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "<form") || !strings.Contains(body, "label") {
		t.Errorf("form page malformed: %.200s", body)
	}
}

func TestSourceNotFound(t *testing.T) {
	s := testServer(t)
	if code, _ := get(t, s, "/source/airfare/if99"); code != 404 {
		t.Errorf("status = %d, want 404", code)
	}
	if code, _ := get(t, s, "/source/nodomain/if00"); code != 404 {
		t.Errorf("status = %d, want 404", code)
	}
}

func TestSearchSubmission(t *testing.T) {
	s := testServer(t)
	// Find a source and a field index we can probe with a city.
	_, bodyJSON := get(t, s, "/sources")
	var sources []sourceInfo
	if err := json.Unmarshal([]byte(bodyJSON), &sources); err != nil {
		t.Fatal(err)
	}
	// Probe the first airfare source's fields with a common city until a
	// response comes back; we only assert the endpoint serves pages.
	code, body := get(t, s, "/source/airfare/if00/search?f0=Boston")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "<html") {
		t.Errorf("search response not a page: %.120s", body)
	}
	if len(sources) == 0 {
		t.Error("no sources listed")
	}
}

func TestSearchEmptySubmission(t *testing.T) {
	s := testServer(t)
	code, body := get(t, s, "/source/airfare/if00/search")
	if code != 200 || !strings.Contains(strings.ToLower(body), "fill in") {
		t.Errorf("empty submission: code=%d body=%.120s", code, body)
	}
}

func TestStats(t *testing.T) {
	s := testServer(t)
	// Issue at least one search and one probe so the virtual clocks
	// have something to report.
	get(t, s, "/source/airfare/if00/search?f0=Boston")
	s.engine.NumHits(`"boston"`)
	code, body := get(t, s, "/stats")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var info statsInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.CorpusPages == 0 {
		t.Error("no corpus pages reported")
	}
	if len(info.ProbesByPool) != 5 {
		t.Errorf("pools = %d", len(info.ProbesByPool))
	}
	if len(info.ProbeVirtualByPool) != 5 {
		t.Errorf("probe virtual pools = %d", len(info.ProbeVirtualByPool))
	}
	if info.SearchVirtualSeconds <= 0 {
		t.Errorf("search virtual seconds = %v, want > 0", info.SearchVirtualSeconds)
	}
	if info.ProbeVirtualByPool["airfare"] <= 0 {
		t.Errorf("airfare probe virtual seconds = %v, want > 0", info.ProbeVirtualByPool["airfare"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	// Generate some traffic first so HTTP and substrate series exist.
	get(t, s, "/")
	get(t, s, "/sources")
	get(t, s, "/source/airfare/if00/search?f0=Boston")
	get(t, s, "/source/airfare/if99") // 404: exercises the status classes
	code, body := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	// Valid Prometheus text exposition: every non-comment line is
	// "name{labels} value" and every family has a TYPE line.
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("bad TYPE line: %q", line)
				continue
			}
			types[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Errorf("bad sample line: %q", line)
		}
	}
	for _, fam := range []string{
		"webiq_http_requests_total",
		"webiq_http_request_seconds",
		"webiq_http_in_flight",
		"webiq_engine_queries_total",
		"webiq_engine_corpus_docs",
		"webiq_pool_probes_total",
	} {
		if !types[fam] {
			t.Errorf("metrics missing family %q:\n%.400s", fam, body)
		}
	}
	for _, want := range []string{
		`webiq_http_requests_total{route="source",class="4xx"}`,
		`webiq_pool_probes_total{source="airfare/if00"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing series %q", want)
		}
	}
}

// TestMetricsCoverAcquisition asserts the acquirer and matcher families
// appear after a unified-interface build (the full pipeline run).
func TestMetricsCoverAcquisition(t *testing.T) {
	if testing.Short() {
		t.Skip("unified endpoint runs acquisition; skipped with -short")
	}
	s := testServer(t)
	get(t, s, "/unified/book")
	_, body := get(t, s, "/metrics")
	for _, fam := range []string{
		"webiq_acquire_attributes_total",
		"webiq_acquire_component_queries_total",
		"webiq_matcher_pairs_scored_total",
		"webiq_matcher_match_seconds",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("metrics missing family %q after acquisition", fam)
		}
	}
}

func TestUnifiedInterface(t *testing.T) {
	if testing.Short() {
		t.Skip("unified endpoint runs acquisition; skipped with -short")
	}
	s := testServer(t)
	code, body := get(t, s, "/unified/book")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"<form", "Title", "Author"} {
		if !strings.Contains(body, want) {
			t.Errorf("unified page missing %q", want)
		}
	}
	// Second hit is served from cache and identical.
	_, body2 := get(t, s, "/unified/book")
	if body != body2 {
		t.Error("unified page not cached deterministically")
	}
}

func TestUnifiedUnknownDomain(t *testing.T) {
	s := testServer(t)
	if code, _ := get(t, s, "/unified/nope"); code != 404 {
		t.Errorf("status = %d, want 404", code)
	}
}

func TestUnifiedSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("unified search runs acquisition; skipped with -short")
	}
	s := testServer(t)
	// Discover a queryable attribute from the unified form.
	_, form := get(t, s, "/unified/book")
	attr := "Author"
	if !strings.Contains(form, attr) {
		t.Skipf("unified form lacks %q", attr)
	}
	code, body := get(t, s, "/unified/book/search?attr=Author&value=Mark+Twain")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "sources answered") {
		t.Errorf("summary missing: %.200s", body)
	}
	// Unknown attribute is a 400.
	code, _ = get(t, s, "/unified/book/search?attr=Nope&value=x")
	if code != 400 {
		t.Errorf("status = %d, want 400", code)
	}
}
