package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHealthz(t *testing.T) {
	s := testServer(t)
	code, body := get(t, s, "/healthz")
	if code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz: code=%d body=%q", code, body)
	}
}

// TestReadyzStates runs before any unified build in this package (file
// order puts it ahead of the /unified tests), so the cold answers are
// pinned here and the warm answer inside TestExplainProvenance.
func TestReadyzStates(t *testing.T) {
	s := testServer(t)
	if code, _ := get(t, s, "/readyz?domain=nope"); code != 404 {
		t.Errorf("unknown domain: code=%d, want 404", code)
	}
	// The suite never builds the auto domain, so it is always pending.
	code, body := get(t, s, "/readyz?domain=auto")
	if code != 503 {
		t.Errorf("pending domain: code=%d, want 503", code)
	}
	var info readyzInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Ready || info.Domains["auto"] {
		t.Errorf("pending domain reported ready: %+v", info)
	}
	code, body = get(t, s, "/readyz")
	if code != 503 {
		t.Errorf("overall readiness with pending domains: code=%d, want 503", code)
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Ready || len(info.Domains) != 5 {
		t.Errorf("overall readiness = %+v, want 5 domains, not ready", info)
	}
}

func TestTraceUnknown(t *testing.T) {
	s := testServer(t)
	if code, _ := get(t, s, "/trace/deadbeef"); code != 404 {
		t.Errorf("unknown trace: code=%d, want 404", code)
	}
	if code, _ := get(t, s, "/trace/"); code != 404 {
		t.Errorf("empty trace id: code=%d, want 404", code)
	}
}

// TestExplainProvenance is the acceptance criterion end to end: every
// instance of the unified interface must be attributable to a component
// with numeric evidence, linked by trace ID to a resolvable span tree.
func TestExplainProvenance(t *testing.T) {
	if testing.Short() {
		t.Skip("explain builds the unified interface; skipped in -short")
	}
	s := testServer(t)
	req := httptest.NewRequest("GET", "/unified/book/explain", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %.300s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Trace-ID") == "" {
		t.Error("no X-Trace-ID response header")
	}
	var p ExplainPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Attributes) == 0 || p.Instances == 0 {
		t.Fatalf("empty provenance payload: %d attributes, %d instances", len(p.Attributes), p.Instances)
	}
	if p.Attributed != p.Instances {
		for _, ea := range p.Attributes {
			for _, inst := range ea.Instances {
				if inst.Verdict == "unattributed" {
					t.Errorf("unattributed: %q (attr %q, from %s)", inst.Value, ea.Label, inst.SourceAttr)
				}
			}
		}
		t.Fatalf("provenance incomplete: %d of %d instances attributed", p.Attributed, p.Instances)
	}
	for _, ea := range p.Attributes {
		for _, inst := range ea.Instances {
			if inst.Component == "" || inst.Verdict == "" || inst.SourceAttr == "" {
				t.Fatalf("instance missing provenance fields: %+v", inst)
			}
		}
	}

	// The build trace resolves to a span tree containing the
	// unified-build span.
	if p.TraceID == "" {
		t.Fatal("payload carries no build trace ID")
	}
	code, body := get(t, s, "/trace/"+p.TraceID)
	if code != 200 {
		t.Fatalf("GET /trace/%s: code=%d", p.TraceID, code)
	}
	if !strings.Contains(body, `"unified-build"`) {
		t.Errorf("span tree missing unified-build span: %.300s", body)
	}

	// Once built, the domain reports ready.
	if code, _ := get(t, s, "/readyz?domain=book"); code != 200 {
		t.Errorf("built domain readiness: code=%d, want 200", code)
	}
	_, metrics := get(t, s, "/metrics")
	if !strings.Contains(metrics, `webiq_unified_ready{domain="book"} 1`) {
		t.Error("metrics missing webiq_unified_ready{domain=\"book\"} 1")
	}
}

// TestUnifiedSingleflight issues concurrent requests for one cold
// domain and asserts the build ran exactly once (the per-domain
// singleflight) with identical responses.
func TestUnifiedSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("unified endpoint runs acquisition; skipped in -short")
	}
	s := testServer(t)
	const n = 4
	codes := make([]int, n)
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/unified/job", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			codes[i] = rec.Code
			bodies[i] = rec.Body.String()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("request %d body differs from request 0", i)
		}
	}
	_, metrics := get(t, s, "/metrics")
	if !strings.Contains(metrics, `webiq_unified_builds_total{domain="job"} 1`) {
		t.Error("singleflight violated: builds counter for job is not 1")
	}
}

// TestTraceRetentionBounds pins the WithTraceRetention option: the
// per-trace store keeps exactly the n most recent traces, older ones
// evict FIFO, and n <= 0 disables /trace/{id} resolution entirely.
func TestTraceRetentionBounds(t *testing.T) {
	s := New(1, WithTraceRetention(2))
	var ids []string
	for i := 0; i < 4; i++ {
		req := httptest.NewRequest("GET", "/sources", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		id := rec.Header().Get("X-Trace-ID")
		if id == "" {
			t.Fatal("request minted no trace ID")
		}
		ids = append(ids, id)
	}
	// The store holds the 2 most recent traces. Check the newest first:
	// every /trace lookup mints a trace of its own, so each check evicts
	// one more of the originals.
	if code, _ := get(t, s, "/trace/"+ids[3]); code != 200 {
		t.Errorf("most recent trace %s: code=%d, want 200", ids[3], code)
	}
	for _, id := range ids[:2] {
		if code, _ := get(t, s, "/trace/"+id); code != 404 {
			t.Errorf("evicted trace %s: code=%d, want 404", id, code)
		}
	}

	// The default capacity (DefTraceRetention=512) keeps all four plus
	// the lookup traces around.
	def := testServer(t)
	var defIDs []string
	for i := 0; i < 4; i++ {
		req := httptest.NewRequest("GET", "/sources", nil)
		rec := httptest.NewRecorder()
		def.ServeHTTP(rec, req)
		defIDs = append(defIDs, rec.Header().Get("X-Trace-ID"))
	}
	for _, id := range defIDs {
		if code, _ := get(t, def, "/trace/"+id); code != 200 {
			t.Errorf("default retention lost trace %s: code=%d, want 200", id, code)
		}
	}

	off := New(1, WithTraceRetention(0))
	req := httptest.NewRequest("GET", "/sources", nil)
	rec := httptest.NewRecorder()
	off.ServeHTTP(rec, req)
	id := rec.Header().Get("X-Trace-ID")
	if id == "" {
		t.Fatal("disabled retention still mints trace IDs for headers")
	}
	if code, _ := get(t, off, "/trace/"+id); code != 404 {
		t.Errorf("retention disabled: /trace/%s code=%d, want 404", id, code)
	}
}
