package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// blockingHandler parks until released, so tests control exactly how
// many requests are in flight.
type blockingHandler struct {
	entered chan struct{} // one receive per request that got a slot
	release chan struct{} // close to let every parked request finish
}

func newBlockingHandler() *blockingHandler {
	return &blockingHandler{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *blockingHandler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	b.entered <- struct{}{}
	<-b.release
	w.WriteHeader(http.StatusOK)
}

func TestAdmissionShedsWhenFull(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueued: 0})
	bh := newBlockingHandler()
	h := a.wrap(bh)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("in-flight request got %d, want 200", rec.Code)
		}
	}()
	<-bh.entered // the slot is now held

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overload request got %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}
	if !strings.Contains(rec.Body.String(), "queue-full") {
		t.Errorf("shed body %q does not name the reason", rec.Body.String())
	}

	close(bh.release)
	wg.Wait()
}

// TestAdmissionRetryAfterScalesWithQueue pins the derived Retry-After:
// an empty queue sheds with the base hint, a deep queue tells clients
// to back off proportionally longer, the cap bounds the hint no matter
// how deep the queue gets, and a draining node answers with the cap
// outright (it will never admit again).
func TestAdmissionRetryAfterScalesWithQueue(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInFlight: 2, MaxQueued: 100})

	if got := a.retryAfterHint("queue-full"); got != 1 {
		t.Fatalf("empty-queue hint = %d, want base 1", got)
	}
	a.queued.Store(6) // three service generations ahead of this client
	if got := a.retryAfterHint("queue-full"); got != 4 {
		t.Fatalf("queued=6 maxInFlight=2 hint = %d, want 1+6/2 = 4", got)
	}
	a.queued.Store(1000)
	if got := a.retryAfterHint("queue-full"); got != retryAfterCapFactor {
		t.Fatalf("deep-queue hint = %d, want cap %d", got, retryAfterCapFactor)
	}
	a.queued.Store(0)
	if got := a.retryAfterHint("draining"); got != retryAfterCapFactor {
		t.Fatalf("draining hint = %d, want cap %d", got, retryAfterCapFactor)
	}
	if got := a.retryAfterHint("canceled"); got != 1 {
		t.Fatalf("canceled hint = %d, want base 1", got)
	}
}

// TestAdmissionRetryAfterHeaderReflectsDepth drives the hint through
// the HTTP surface: with the only slot held and the queue holding
// waiters, a shed response's Retry-After must exceed the base hint.
func TestAdmissionRetryAfterHeaderReflectsDepth(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueued: 2})
	bh := newBlockingHandler()
	h := a.wrap(bh)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	}()
	<-bh.entered // slot held

	// Fill the queue: two waiters, each one service generation.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		}()
	}
	waitFor(t, func() bool { return a.queued.Load() == 2 })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow request got %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q with 2 queued on 1 slot, want \"3\"", got)
	}

	close(bh.release)
	wg.Wait()
}

// waitFor polls cond until true or the test deadline closes in.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueued: 1})
	bh := newBlockingHandler()
	h := a.wrap(bh)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
			if rec.Code != http.StatusOK {
				t.Errorf("request got %d, want 200", rec.Code)
			}
		}()
	}
	<-bh.entered // first holds the slot; second is queued or about to be

	// Releasing lets the first finish, which frees the slot for the
	// queued second; both must complete 200.
	close(bh.release)
	wg.Wait()
}

func TestAdmissionDrainShedsNewKeepsInFlight(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInFlight: 2, MaxQueued: 2})
	bh := newBlockingHandler()
	h := a.wrap(bh)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("in-flight request got %d during drain, want 200", rec.Code)
		}
	}()
	<-bh.entered

	a.beginDrain()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain arrival got %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("shed body %q does not say draining", rec.Body.String())
	}

	close(bh.release) // the pre-drain request still completes
	wg.Wait()
}

func TestServerDrainFlipsReadyz(t *testing.T) {
	s := New(1, WithAdmission(AdmissionConfig{MaxInFlight: 4, MaxQueued: 4}))

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	// Sanity: healthz is fine and a normal route is admitted pre-drain.
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d pre-drain", rec.Code)
	}
	if rec := get("/sources"); rec.Code != http.StatusOK {
		t.Fatalf("/sources = %d pre-drain", rec.Code)
	}

	s.BeginDrain()

	rec := get("/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d after BeginDrain, want 503", rec.Code)
	}
	var info struct {
		Ready    bool `json:"ready"`
		Draining bool `json:"draining"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatalf("bad /readyz JSON: %v", err)
	}
	if info.Ready || !info.Draining {
		t.Fatalf("/readyz = %+v after BeginDrain, want not-ready + draining", info)
	}

	// New work is shed, while operational endpoints stay reachable so
	// the drain itself remains observable.
	if rec := get("/sources"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/sources = %d after BeginDrain, want 503", rec.Code)
	}
	for _, path := range []string{"/healthz", "/metrics", "/stats"} {
		if rec := get(path); rec.Code != http.StatusOK {
			t.Fatalf("%s = %d after BeginDrain, want 200", path, rec.Code)
		}
	}
}
