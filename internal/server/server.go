// Package server exposes the simulated Deep Web over HTTP: every
// generated source serves its query-interface form page and answers
// form submissions from its backing table, and the integrator's output
// — the unified query interface per domain — is served alongside. It
// turns the in-process simulation into something a browser (or the
// paper's crawler) could actually visit.
//
// Routes:
//
//	GET /                     index of sources
//	GET /sources              JSON source list
//	GET /source/{ifc}         the source's query interface (HTML form)
//	GET /source/{ifc}/search  form submission (query parameters f0..fN)
//	GET /unified/{domain}     unified interface over the domain (HTML)
//	GET /unified/{domain}/search?attr=L&value=V
//	                          translated query fan-out to all sources
//	GET /unified/{domain}/explain
//	                          per-attribute decision provenance (JSON)
//	GET /trace/{id}           span tree of one trace (JSON)
//	GET /healthz              liveness (always 200 once serving)
//	GET /readyz[?domain=d]    readiness; 503 while a domain is unbuilt
//	GET /stats                substrate usage + route latency (JSON)
//	GET /metrics              Prometheus text-format metrics
//
// Every route is instrumented (request counters by status class, a
// latency histogram, an in-flight gauge) and minted a root trace span
// (X-Trace-ID response header); the substrate and pipeline metrics of
// internal/obs are exposed on /metrics. Unified interfaces are built
// lazily under per-domain singleflight: concurrent requests for one
// domain share a single acquisition+matching run, and requests for
// other routes are never blocked behind it.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webiq/internal/cluster"
	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/htmlform"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/obs"
	"webiq/internal/resilience"
	"webiq/internal/schema"
	"webiq/internal/snapshot"
	"webiq/internal/surfaceweb"
	"webiq/internal/translate"
	"webiq/internal/unify"
	iq "webiq/internal/webiq"
)

// Server is the HTTP facade over the simulated Deep Web.
type Server struct {
	mux     *http.ServeMux
	domains []*kb.Domain
	engine  *surfaceweb.Engine
	reg     *obs.Registry
	tracer  *obs.Tracer
	httpm   *obs.HTTPMetrics
	ready   *obs.GaugeVec   // webiq_unified_ready{domain}
	builds  *obs.CounterVec // webiq_unified_builds_total{domain}
	startup *obs.Gauge      // webiq_startup_seconds

	// startupNs mirrors the startup gauge for /stats (gauges are
	// write-only); set once by RecordStartup.
	startupNs atomic.Int64

	// Admission control and fault injection (see Options); nil/zero
	// when the corresponding option is absent.
	adm       *admission
	faults    resilience.Profile
	faultSeed int64
	engClient *resilience.EngineClient
	srcClient *resilience.SourceClient
	draining  atomic.Bool

	// Trace retention override (WithTraceRetention). Options run before
	// the tracer exists, so the value is held until New applies it; the
	// set flag distinguishes "unset" from an explicit 0 (disable).
	traceRetention    int
	traceRetentionSet bool

	// Flight recorder (WithFlightRecorder); the config is held until
	// finish so the recorder can see the resilient clients. The runtime
	// sampler exists unconditionally — /stats serves its on-demand
	// sample — but only samples in the background when the recorder is
	// on. snapInfo identifies the snapshot world, when booted from one.
	flightCfg *FlightConfig
	flight    *obs.FlightRecorder
	sampler   *obs.RuntimeSampler
	snapInfo  *snapshotInfo

	// Cluster membership (WithCluster); nil in single-node mode, which
	// keeps every response and /stats byte-identical to a build without
	// the cluster layer.
	clusterCfg *cluster.Config
	cluster    *cluster.Cluster

	mu           sync.Mutex
	datasets     map[string]*schema.Dataset
	pools        map[string]*deepweb.Pool
	unified      map[string]*unify.UnifiedInterface
	translators  map[string]*translate.Translator
	ledgers      map[string]*obs.Ledger
	buildTrace   map[string]string
	building     map[string]*unifiedBuild
	degradations map[string][]iq.Degradation
}

// Option configures optional server subsystems.
type Option func(*Server)

// WithAdmission enables the bounded admission queue: up to
// cfg.MaxInFlight requests run concurrently, up to cfg.MaxQueued wait,
// and the rest are shed with 503 + Retry-After. Operational endpoints
// (/healthz, /readyz, /metrics) bypass the queue.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(s *Server) { s.adm = newAdmission(cfg) }
}

// WithFaultProfile injects the named fault profile into the pipeline's
// backends, wrapped in the resilient clients (retry + circuit breaker):
// unified-interface builds then exercise the full degradation path. The
// seed drives the deterministic fault stream.
func WithFaultProfile(prof resilience.Profile, seed int64) Option {
	return func(s *Server) {
		s.faults = prof
		s.faultSeed = seed
	}
}

// WithTraceRetention bounds the tracer's per-trace FIFO store to the n
// most recent traces instead of the default obs.DefTraceRetention.
// n <= 0 disables per-trace retention: /trace/{id} then always 404s,
// while span streaming and totals keep working.
func WithTraceRetention(n int) Option {
	return func(s *Server) {
		s.traceRetention = n
		s.traceRetentionSet = true
	}
}

// unifiedBuild is one in-flight lazy build; waiters block on done
// without holding the server lock.
type unifiedBuild struct {
	done chan struct{}
	u    *unify.UnifiedInterface
	err  error
}

// newServer does the construction shared by New and NewFromSnapshot:
// options, tracer, metric families, and the provided search engine
// (mutable and empty, or snapshot-backed and frozen). The caller
// populates datasets/pools/pipeline state and then calls finish.
func newServer(engine *surfaceweb.Engine, opts ...Option) *Server {
	s := &Server{
		mux:          http.NewServeMux(),
		domains:      kb.Domains(),
		engine:       engine,
		reg:          obs.NewRegistry(),
		datasets:     map[string]*schema.Dataset{},
		pools:        map[string]*deepweb.Pool{},
		unified:      map[string]*unify.UnifiedInterface{},
		translators:  map[string]*translate.Translator{},
		ledgers:      map[string]*obs.Ledger{},
		buildTrace:   map[string]string{},
		building:     map[string]*unifiedBuild{},
		degradations: map[string][]iq.Degradation{},
	}
	for _, opt := range opts {
		opt(s)
	}
	s.tracer = obs.NewTracer(nil)
	if s.traceRetentionSet {
		s.tracer.SetTraceRetention(s.traceRetention)
	}
	s.sampler = obs.NewRuntimeSampler(0, time.Second)
	s.engine.Instrument(s.reg)
	s.ready = s.reg.GaugeVec("webiq_unified_ready", "1 when the domain's unified interface has been built, 0 while pending.", "domain")
	s.builds = s.reg.CounterVec("webiq_unified_builds_total", "Unified-interface builds performed, by domain.", "domain")
	s.startup = s.reg.Gauge("webiq_startup_seconds", "Wall-clock seconds from process start until the server was constructed and ready to listen.")
	return s
}

// New builds the server: datasets and sources for every domain, plus
// the Surface-Web corpus used when a unified interface is requested
// (acquisition runs lazily, once per domain, under per-domain
// singleflight).
func New(seed int64, opts ...Option) *Server {
	s := newServer(surfaceweb.NewEngine(), opts...)
	corpusCfg := surfaceweb.DefaultCorpusConfig()
	corpusCfg.Seed = seed
	surfaceweb.BuildCorpus(s.engine, s.domains, corpusCfg)

	dataCfg := dataset.DefaultConfig()
	dataCfg.Seed = seed
	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = seed
	for _, dom := range s.domains {
		ds := dataset.Generate(dom, dataCfg)
		s.datasets[dom.Key] = ds
		pool := deepweb.BuildPool(ds, dom, deepCfg)
		pool.Instrument(s.reg)
		s.pools[dom.Key] = pool
		s.ready.With(dom.Key).Set(0)
	}
	s.finish()
	return s
}

// NewFromSnapshot builds the server from a pre-built world: the frozen
// snapshot index serves as the search engine, datasets come from the
// file, deep-web pools are rebuilt deterministically from them, and the
// stored unified interfaces, ledgers, and degradations are installed so
// every domain is ready before the first request — no corpus build, no
// lazy acquisition. Responses are byte-identical to a fresh server with
// the snapshot's seed after its lazy builds finish, except that
// restored build ledgers carry no trace IDs (the offline build has no
// tracer).
//
// The world must stay open (not Closed) for the server's lifetime.
func NewFromSnapshot(world *snapshot.World, opts ...Option) (*Server, error) {
	if world == nil || world.Index == nil {
		return nil, fmt.Errorf("server: nil snapshot world")
	}
	s := newServer(world.NewEngine(), opts...)
	s.snapInfo = &snapshotInfo{
		Fingerprint: fmt.Sprintf("%016x", world.Fingerprint),
		Seed:        world.Meta.Seed,
		Scale:       world.Meta.Scale,
	}
	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = world.Meta.Seed
	for _, dom := range s.domains {
		ds := world.Dataset(dom.Key)
		if ds == nil {
			return nil, fmt.Errorf("server: snapshot has no dataset for domain %q", dom.Key)
		}
		s.datasets[dom.Key] = ds
		pool := deepweb.BuildPool(ds, dom, deepCfg)
		pool.Instrument(s.reg)
		s.pools[dom.Key] = pool
	}
	for _, dw := range world.Domains {
		ds := s.datasets[dw.Domain]
		if ds == nil {
			return nil, fmt.Errorf("server: snapshot world for unknown domain %q", dw.Domain)
		}
		// Replay after Instrument so webiq_decisions_total matches a
		// server that ran the builds itself.
		ledger := obs.NewLedger(nil)
		ledger.Instrument(s.reg)
		for _, d := range dw.Decisions {
			ledger.Record(d)
		}
		s.unified[dw.Domain] = dw.Unified
		s.translators[dw.Domain] = translate.New(dw.Unified, ds, s.pools[dw.Domain])
		s.ledgers[dw.Domain] = ledger
		s.degradations[dw.Domain] = dw.Degradations
		s.ready.With(dw.Domain).Set(1)
	}
	for _, dom := range s.domains {
		if s.unified[dom.Key] == nil {
			return nil, fmt.Errorf("server: snapshot has no unified interface for domain %q", dom.Key)
		}
	}
	s.finish()
	return s, nil
}

// finish wires the optional fault clients and the HTTP surface; it runs
// after the pipeline substrate is in place.
func (s *Server) finish() {
	if s.faults.Enabled() {
		inj := resilience.NewInjector(s.faults, s.faultSeed)
		s.engClient = resilience.NewEngineClient(
			resilience.FaultyEngine(resilience.AdaptEngine(s.engine), inj),
			resilience.ClientOptions{Seed: s.faultSeed})
		s.engClient.Instrument(s.reg)
		s.srcClient = resilience.NewSourceClient(
			resilience.FaultySource(resilience.ProbeFunc(s.probePool), inj),
			resilience.ClientOptions{Seed: s.faultSeed})
		s.srcClient.Instrument(s.reg)
	}
	s.adm.instrument(s.reg)
	s.setupCluster()
	s.setupFlight()

	s.httpm = obs.NewHTTPMetrics(s.reg)
	s.httpm.SetTracer(s.tracer)
	// Operational endpoints (health, readiness, stats, metrics) bypass
	// the admission queue: they must stay reachable exactly when the
	// queue is full or draining. The flight middleware sits outermost so
	// shed requests — which never reach the metrics middleware — still
	// leave a wide event; with the recorder off it is the identity.
	adm := func(route string, h http.Handler) http.Handler {
		return s.flightWrap(route, s.adm.wrap(h))
	}
	s.mux.Handle("/", adm("index", s.httpm.WrapFunc("index", s.handleIndex)))
	s.mux.Handle("/sources", adm("sources", s.httpm.WrapFunc("sources", s.handleSources)))
	// The ownership check sits between admission and the local metrics
	// middleware: a forwarded request holds a local admission slot
	// (bounded fan-out) but is measured by the node that serves it.
	s.mux.Handle("/source/", adm("source", s.clusterWrap(domainFromSourcePath, s.httpm.WrapFunc("source", s.handleSource))))
	s.mux.Handle("/unified/", adm("unified", s.clusterWrap(domainFromUnifiedPath, s.httpm.WrapFunc("unified", s.handleUnified))))
	s.mux.Handle("/trace/", adm("trace", s.httpm.WrapFunc("trace", s.handleTrace)))
	s.mux.Handle("/healthz", s.httpm.WrapFunc("healthz", s.handleHealthz))
	s.mux.Handle("/readyz", s.httpm.WrapFunc("readyz", s.handleReadyz))
	s.mux.Handle("/stats", s.httpm.WrapFunc("stats", s.handleStats))
	// Like /stats, /cluster/stats bypasses admission: a cluster under
	// load-shed is exactly when the aggregate view matters.
	s.mux.Handle("/cluster/stats", s.httpm.WrapFunc("cluster-stats", s.handleClusterStats))
	s.mux.Handle("/metrics", s.httpm.Wrap("metrics", s.reg.Handler()))
	s.mux.Handle("/debug/flight", s.httpm.WrapFunc("debug-flight", s.handleFlight))
	s.mux.Handle("/debug/flight/", s.httpm.WrapFunc("debug-flight", s.handleFlight))
}

// RecordStartup publishes how long process startup took, as the
// webiq_startup_seconds gauge and the startup_seconds field of /stats.
// Call it once, after construction, with the time since process start —
// the number a snapshot-backed server exists to shrink.
func (s *Server) RecordStartup(d time.Duration) {
	s.startupNs.Store(int64(d))
	s.startup.Set(d.Seconds())
}

// probePool routes a deep-web probe to the owning domain's pool; it is
// the infallible bottom of the resilient source-client chain.
func (s *Server) probePool(ifcID, attrID, value string) (string, error) {
	domain := ifcID
	if i := strings.IndexByte(ifcID, '/'); i >= 0 {
		domain = ifcID[:i]
	}
	s.mu.Lock()
	pool := s.pools[domain]
	s.mu.Unlock()
	if pool == nil {
		return "", resilience.ErrUnknownSource
	}
	src := pool.Source(ifcID)
	if src == nil {
		return "", resilience.ErrUnknownSource
	}
	return src.Probe(attrID, value), nil
}

// BeginDrain flips the server into draining: /readyz answers 503, new
// requests are shed with 503 + Retry-After (when admission control is
// on), and queued plus in-flight requests run to completion. Call it
// before http.Server.Shutdown so load balancers stop sending traffic
// while the drain window runs.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.adm.beginDrain()
}

// Registry exposes the server's metric registry (e.g. for tests or for
// mounting extra instruments).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer exposes the server's request tracer (e.g. for tests or for
// wiring NDJSON export).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SetSlowLog logs requests taking at least threshold as NDJSON lines
// (with trace IDs) on w; nil w disables it.
func (s *Server) SetSlowLog(w io.Writer, threshold time.Duration) {
	s.httpm.SetSlowLog(w, threshold)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// sourceFor resolves an interface ID like "airfare/if03" to its dataset,
// interface, and source.
func (s *Server) sourceFor(ifcID string) (*schema.Dataset, *schema.Interface, *deepweb.Source) {
	domain := ifcID
	if i := strings.IndexByte(ifcID, '/'); i >= 0 {
		domain = ifcID[:i]
	}
	s.mu.Lock()
	ds := s.datasets[domain]
	pool := s.pools[domain]
	s.mu.Unlock()
	if ds == nil || pool == nil {
		return nil, nil, nil
	}
	for _, ifc := range ds.Interfaces {
		if ifc.ID == ifcID {
			return ds, ifc, pool.Source(ifcID)
		}
	}
	return nil, nil, nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	sl := getSlab()
	fmt.Fprintln(&sl.buf, "<html><body><h1>Simulated Deep Web</h1>")
	keys := make([]string, 0, len(s.datasets))
	s.mu.Lock()
	for k := range s.datasets {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sl.buf, "<h2>%s</h2><ul>", k)
		s.mu.Lock()
		ds := s.datasets[k]
		s.mu.Unlock()
		for _, ifc := range ds.Interfaces {
			fmt.Fprintf(&sl.buf, `<li><a href="/source/%s">%s</a></li>`, ifc.ID, ifc.Source)
		}
		fmt.Fprintf(&sl.buf, `</ul><p><a href="/unified/%s">unified interface</a></p>`, k)
	}
	fmt.Fprintln(&sl.buf, "</body></html>")
	sl.flush(w)
}

// sourceInfo is the JSON shape of one source in /sources.
type sourceInfo struct {
	ID         string `json:"id"`
	Domain     string `json:"domain"`
	Name       string `json:"name"`
	Attributes int    `json:"attributes"`
}

func (s *Server) handleSources(w http.ResponseWriter, _ *http.Request) {
	var out []sourceInfo
	s.mu.Lock()
	for _, ds := range s.datasets {
		for _, ifc := range ds.Interfaces {
			out = append(out, sourceInfo{
				ID: ifc.ID, Domain: ifc.Domain, Name: ifc.Source,
				Attributes: len(ifc.Attributes),
			})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, out)
}

func (s *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/source/")
	if ifcID, ok := strings.CutSuffix(rest, "/search"); ok {
		s.handleSearch(w, r, ifcID)
		return
	}
	_, ifc, _ := s.sourceFor(rest)
	if ifc == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, htmlform.Render(ifc))
}

// handleSearch simulates a form submission: the first filled field f<i>
// becomes the probe (the simulator's sources evaluate one attribute at a
// time, like Attr-Deep's probing queries).
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, ifcID string) {
	_, ifc, src := s.sourceFor(ifcID)
	if ifc == nil || src == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	for i, a := range ifc.Attributes {
		v := r.URL.Query().Get(fmt.Sprintf("f%d", i))
		if strings.TrimSpace(v) == "" {
			continue
		}
		io.WriteString(w, src.Probe(a.ID, v))
		return
	}
	io.WriteString(w, "<html><body><p>Error: please fill in at least one field.</p></body></html>")
}

func (s *Server) handleUnified(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/unified/")
	if domain, ok := strings.CutSuffix(rest, "/search"); ok {
		s.handleUnifiedSearch(w, r, domain)
		return
	}
	if domain, ok := strings.CutSuffix(rest, "/explain"); ok {
		s.handleExplain(w, r, domain)
		return
	}
	u, err := s.unifiedFor(r.Context(), rest)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, htmlform.Render(u.AsInterface("unified-"+rest)))
}

// handleUnifiedSearch translates a unified query to every source and
// reports which answered.
func (s *Server) handleUnifiedSearch(w http.ResponseWriter, r *http.Request, domain string) {
	if _, err := s.unifiedFor(r.Context(), domain); err != nil {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	tr := s.translators[domain]
	s.mu.Unlock()
	attr := r.URL.Query().Get("attr")
	value := r.URL.Query().Get("value")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	results, err := tr.Query(attr, value)
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintf(w, "<html><body><p>Error: %s</p></body></html>", err)
		return
	}
	ok, total := translate.Coverage(results)
	sl := getSlab()
	fmt.Fprintf(&sl.buf, "<html><body><h1>%s = %q</h1><p>%d of %d sources answered.</p><ul>",
		attr, value, ok, total)
	for _, res := range results {
		status := "no results"
		if res.OK {
			status = "results found"
		}
		fmt.Fprintf(&sl.buf, `<li><a href="/source/%s">%s</a>: %s</li>`, res.InterfaceID, res.InterfaceID, status)
	}
	fmt.Fprint(&sl.buf, "</ul></body></html>")
	sl.flush(w)
}

// unifiedFor lazily runs acquisition + matching + unification for a
// domain under per-domain singleflight: the global lock is held only
// for map access, concurrent requests for one domain share a single
// build, and requests for other routes (or other domains) are never
// blocked behind it.
func (s *Server) unifiedFor(ctx context.Context, domain string) (*unify.UnifiedInterface, error) {
	s.mu.Lock()
	if u, ok := s.unified[domain]; ok {
		s.mu.Unlock()
		return u, nil
	}
	if s.datasets[domain] == nil || s.pools[domain] == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("unknown domain %q", domain)
	}
	if b, ok := s.building[domain]; ok {
		s.mu.Unlock()
		<-b.done
		return b.u, b.err
	}
	b := &unifiedBuild{done: make(chan struct{})}
	s.building[domain] = b
	s.mu.Unlock()

	b.u, b.err = s.buildUnified(ctx, domain)

	s.mu.Lock()
	delete(s.building, domain)
	s.mu.Unlock()
	close(b.done)
	return b.u, b.err
}

// buildUnified runs the full pipeline for one domain under a
// "unified-build" span (a child of the requesting trace) with a
// per-domain decision-provenance ledger, and caches the results.
func (s *Server) buildUnified(ctx context.Context, domain string) (*unify.UnifiedInterface, error) {
	s.mu.Lock()
	ds := s.datasets[domain]
	pool := s.pools[domain]
	s.mu.Unlock()

	ctx, span := s.tracer.StartSpan(ctx, "unified-build")
	span.Label("domain", domain)
	defer span.End()
	traceID := obs.TraceIDFrom(ctx)

	ledger := obs.NewLedger(nil)
	ledger.Instrument(s.reg)

	cfg := iq.DefaultConfig()
	v := iq.NewValidator(s.engine, cfg)
	acq := iq.NewAcquirer(
		iq.NewSurface(s.engine, v, cfg),
		iq.NewAttrDeep(pool, cfg),
		iq.NewAttrSurface(v, cfg),
		iq.AllComponents(), cfg)
	acq.SetObserver(s.reg)
	acq.SetSpanTracer(s.tracer)
	acq.SetLedger(ledger)
	acq.SetAccounting(
		func() (time.Duration, int) { return s.engine.VirtualTime(), s.engine.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	if s.engClient != nil {
		acq.SetFallible(s.engClient, s.srcClient)
	}
	rep := acq.AcquireAllCtx(ctx, ds)
	m := matcher.New(matcher.DefaultConfig())
	m.Instrument(s.reg)
	m.SetSpanTracer(s.tracer)
	m.SetLedger(ledger)
	res := m.MatchCtx(ctx, ds)
	u := unify.Build(ds, res)

	s.mu.Lock()
	s.unified[domain] = u
	s.translators[domain] = translate.New(u, ds, pool)
	s.ledgers[domain] = ledger
	s.buildTrace[domain] = traceID
	s.degradations[domain] = rep.Degradations
	s.mu.Unlock()
	s.builds.With(domain).Inc()
	s.ready.With(domain).Set(1)
	return u, nil
}

// handleTrace serves the reconstructed span tree of one trace:
// GET /trace/{id}.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/trace/")
	if id == "" {
		http.NotFound(w, r)
		return
	}
	tree := s.tracer.Tree(id)
	if tree == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, map[string]any{"trace_id": id, "spans": tree})
}

// healthzInfo is the /healthz JSON shape.
type healthzInfo struct {
	Status string `json:"status"`
	// Snapshot identifies the world when booted via -snapshot, so probes
	// (and incident bundles) can pin exactly what build was serving.
	Snapshot *snapshotInfo `json:"snapshot,omitempty"`
}

// handleHealthz is the liveness probe: the process is serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, healthzInfo{Status: "ok", Snapshot: s.snapInfo})
}

// readyzInfo is the /readyz JSON shape.
type readyzInfo struct {
	Ready    bool            `json:"ready"`
	Draining bool            `json:"draining,omitempty"`
	Domains  map[string]bool `json:"domains"`
}

// handleReadyz reports per-domain acquisition state: with ?domain=d it
// answers 200 once d's unified interface is built and 503 while it is
// pending (404 for an unknown domain), so a load balancer can hold
// traffic instead of timing out on a cold /unified/{domain}. Without a
// domain parameter it reports every domain and is ready only when all
// are built.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	s.mu.Lock()
	info := readyzInfo{Ready: !draining, Draining: draining, Domains: make(map[string]bool, len(s.datasets))}
	for k := range s.datasets {
		_, built := s.unified[k]
		info.Domains[k] = built
		if !built {
			info.Ready = false
		}
	}
	s.mu.Unlock()
	if d := r.URL.Query().Get("domain"); d != "" {
		built, known := info.Domains[d]
		if !known {
			http.NotFound(w, r)
			return
		}
		ready := built && !draining
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, readyzInfo{Ready: ready, Draining: draining, Domains: map[string]bool{d: built}})
		return
	}
	if !info.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, info)
}

// statsInfo is the /stats JSON shape. Virtual seconds are the simulated
// substrate time of the Figure-8 overhead accounting — the other half
// of the signal next to raw query counts. Routes carries the
// precomputed p50/p95/p99 latency summaries per route.
type statsInfo struct {
	// StartupSeconds is how long the process took to construct the
	// server (see RecordStartup); 0 until recorded.
	StartupSeconds       float64                     `json:"startup_seconds"`
	CorpusPages          int                         `json:"corpus_pages"`
	SearchQueries        int                         `json:"search_queries"`
	SearchVirtualSeconds float64                     `json:"search_virtual_seconds"`
	ProbesByPool         map[string]int              `json:"probes_by_domain"`
	ProbeVirtualByPool   map[string]float64          `json:"probe_virtual_seconds_by_domain"`
	Routes               map[string]obs.RouteSummary `json:"routes"`
	// Admission is present when the bounded admission queue is on.
	Admission *admissionInfo `json:"admission,omitempty"`
	// Breakers maps backend name to circuit-breaker state when fault
	// injection (and hence the resilient clients) is on.
	Breakers map[string]string `json:"breakers,omitempty"`
	// DegradationsByDomain counts the graceful-degradation events
	// absorbed while building each domain's unified interface.
	DegradationsByDomain map[string]int `json:"degradations_by_domain,omitempty"`
	// Runtime is the current Go-runtime sample (goroutines, heap, GC
	// pause p99), refreshed at most once per second.
	Runtime obs.RuntimeSample `json:"runtime"`
	// Snapshot identifies the snapshot world, when booted via -snapshot.
	Snapshot *snapshotInfo `json:"snapshot,omitempty"`
	// Cluster is this node's routing view (ring owners, peer health,
	// per-peer breakers, forward counts) when cluster mode is on; absent
	// in single-node mode so the JSON stays byte-identical.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// admissionInfo is the /stats view of the admission queue.
type admissionInfo struct {
	InFlight    int  `json:"in_flight"`
	Queued      int  `json:"queued"`
	MaxInFlight int  `json:"max_in_flight"`
	MaxQueued   int  `json:"max_queued"`
	Draining    bool `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.buildStats())
}

// buildStats assembles the /stats document (also embedded per node in
// /cluster/stats).
func (s *Server) buildStats() statsInfo {
	info := statsInfo{
		StartupSeconds:       time.Duration(s.startupNs.Load()).Seconds(),
		CorpusPages:          s.engine.NumDocs(),
		SearchQueries:        s.engine.QueryCount(),
		SearchVirtualSeconds: s.engine.VirtualTime().Seconds(),
		ProbesByPool:         map[string]int{},
		ProbeVirtualByPool:   map[string]float64{},
		Routes:               s.httpm.RouteSummaries(),
		Runtime:              s.sampler.Sample(),
		Snapshot:             s.snapInfo,
	}
	if s.adm != nil {
		inFlight, queued, capacity, queueCap, draining := s.adm.stats()
		info.Admission = &admissionInfo{
			InFlight: inFlight, Queued: queued,
			MaxInFlight: capacity, MaxQueued: queueCap,
			Draining: draining,
		}
	}
	if s.engClient != nil {
		info.Breakers = map[string]string{
			"search": s.engClient.BreakerState().String(),
			"deep":   s.srcClient.BreakerState().String(),
		}
	}
	if s.cluster != nil {
		cs := s.cluster.Stats(s.domainKeys())
		info.Cluster = &cs
	}
	s.mu.Lock()
	for k, p := range s.pools {
		info.ProbesByPool[k] = p.QueryCount()
		info.ProbeVirtualByPool[k] = p.VirtualTime().Seconds()
	}
	if len(s.degradations) > 0 {
		info.DegradationsByDomain = make(map[string]int, len(s.degradations))
		for k, d := range s.degradations {
			info.DegradationsByDomain[k] = len(d)
		}
	}
	s.mu.Unlock()
	return info
}

func writeJSON(w http.ResponseWriter, v any) {
	// Encode into a pooled slab and flush with a single Write, instead
	// of letting the encoder issue a ResponseWriter write per chunk.
	// Encoding before touching the ResponseWriter also means an encode
	// failure can still produce a clean 500 — nothing partial was sent.
	sl := getSlab()
	enc := json.NewEncoder(&sl.buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		slabPool.Put(sl)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	sl.flush(w)
}
