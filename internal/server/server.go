// Package server exposes the simulated Deep Web over HTTP: every
// generated source serves its query-interface form page and answers
// form submissions from its backing table, and the integrator's output
// — the unified query interface per domain — is served alongside. It
// turns the in-process simulation into something a browser (or the
// paper's crawler) could actually visit.
//
// Routes:
//
//	GET /                     index of sources
//	GET /sources              JSON source list
//	GET /source/{ifc}         the source's query interface (HTML form)
//	GET /source/{ifc}/search  form submission (query parameters f0..fN)
//	GET /unified/{domain}     unified interface over the domain (HTML)
//	GET /unified/{domain}/search?attr=L&value=V
//	                          translated query fan-out to all sources
//	GET /stats                substrate usage counters (JSON)
//	GET /metrics              Prometheus text-format metrics
//
// Every route is instrumented (request counters by status class, a
// latency histogram, an in-flight gauge), and the substrate and
// pipeline metrics of internal/obs are exposed on /metrics.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/htmlform"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/obs"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
	"webiq/internal/translate"
	"webiq/internal/unify"
	iq "webiq/internal/webiq"
)

// Server is the HTTP facade over the simulated Deep Web.
type Server struct {
	mux     *http.ServeMux
	domains []*kb.Domain
	engine  *surfaceweb.Engine
	reg     *obs.Registry

	mu          sync.Mutex
	datasets    map[string]*schema.Dataset
	pools       map[string]*deepweb.Pool
	unified     map[string]*unify.UnifiedInterface
	translators map[string]*translate.Translator
}

// New builds the server: datasets and sources for every domain, plus
// the Surface-Web corpus used when a unified interface is requested
// (acquisition runs lazily, once per domain).
func New(seed int64) *Server {
	s := &Server{
		mux:         http.NewServeMux(),
		domains:     kb.Domains(),
		engine:      surfaceweb.NewEngine(),
		reg:         obs.NewRegistry(),
		datasets:    map[string]*schema.Dataset{},
		pools:       map[string]*deepweb.Pool{},
		unified:     map[string]*unify.UnifiedInterface{},
		translators: map[string]*translate.Translator{},
	}
	s.engine.Instrument(s.reg)
	corpusCfg := surfaceweb.DefaultCorpusConfig()
	corpusCfg.Seed = seed
	surfaceweb.BuildCorpus(s.engine, s.domains, corpusCfg)

	dataCfg := dataset.DefaultConfig()
	dataCfg.Seed = seed
	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = seed
	for _, dom := range s.domains {
		ds := dataset.Generate(dom, dataCfg)
		s.datasets[dom.Key] = ds
		pool := deepweb.BuildPool(ds, dom, deepCfg)
		pool.Instrument(s.reg)
		s.pools[dom.Key] = pool
	}

	httpm := obs.NewHTTPMetrics(s.reg)
	s.mux.Handle("/", httpm.WrapFunc("index", s.handleIndex))
	s.mux.Handle("/sources", httpm.WrapFunc("sources", s.handleSources))
	s.mux.Handle("/source/", httpm.WrapFunc("source", s.handleSource))
	s.mux.Handle("/unified/", httpm.WrapFunc("unified", s.handleUnified))
	s.mux.Handle("/stats", httpm.WrapFunc("stats", s.handleStats))
	s.mux.Handle("/metrics", httpm.Wrap("metrics", s.reg.Handler()))
	return s
}

// Registry exposes the server's metric registry (e.g. for tests or for
// mounting extra instruments).
func (s *Server) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// sourceFor resolves an interface ID like "airfare/if03" to its dataset,
// interface, and source.
func (s *Server) sourceFor(ifcID string) (*schema.Dataset, *schema.Interface, *deepweb.Source) {
	domain := ifcID
	if i := strings.IndexByte(ifcID, '/'); i >= 0 {
		domain = ifcID[:i]
	}
	s.mu.Lock()
	ds := s.datasets[domain]
	pool := s.pools[domain]
	s.mu.Unlock()
	if ds == nil || pool == nil {
		return nil, nil, nil
	}
	for _, ifc := range ds.Interfaces {
		if ifc.ID == ifcID {
			return ds, ifc, pool.Source(ifcID)
		}
	}
	return nil, nil, nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintln(w, "<html><body><h1>Simulated Deep Web</h1>")
	keys := make([]string, 0, len(s.datasets))
	s.mu.Lock()
	for k := range s.datasets {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "<h2>%s</h2><ul>", k)
		s.mu.Lock()
		ds := s.datasets[k]
		s.mu.Unlock()
		for _, ifc := range ds.Interfaces {
			fmt.Fprintf(w, `<li><a href="/source/%s">%s</a></li>`, ifc.ID, ifc.Source)
		}
		fmt.Fprintf(w, `</ul><p><a href="/unified/%s">unified interface</a></p>`, k)
	}
	fmt.Fprintln(w, "</body></html>")
}

// sourceInfo is the JSON shape of one source in /sources.
type sourceInfo struct {
	ID         string `json:"id"`
	Domain     string `json:"domain"`
	Name       string `json:"name"`
	Attributes int    `json:"attributes"`
}

func (s *Server) handleSources(w http.ResponseWriter, _ *http.Request) {
	var out []sourceInfo
	s.mu.Lock()
	for _, ds := range s.datasets {
		for _, ifc := range ds.Interfaces {
			out = append(out, sourceInfo{
				ID: ifc.ID, Domain: ifc.Domain, Name: ifc.Source,
				Attributes: len(ifc.Attributes),
			})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, out)
}

func (s *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/source/")
	if ifcID, ok := strings.CutSuffix(rest, "/search"); ok {
		s.handleSearch(w, r, ifcID)
		return
	}
	_, ifc, _ := s.sourceFor(rest)
	if ifc == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, htmlform.Render(ifc))
}

// handleSearch simulates a form submission: the first filled field f<i>
// becomes the probe (the simulator's sources evaluate one attribute at a
// time, like Attr-Deep's probing queries).
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, ifcID string) {
	_, ifc, src := s.sourceFor(ifcID)
	if ifc == nil || src == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	for i, a := range ifc.Attributes {
		v := r.URL.Query().Get(fmt.Sprintf("f%d", i))
		if strings.TrimSpace(v) == "" {
			continue
		}
		fmt.Fprint(w, src.Probe(a.ID, v))
		return
	}
	fmt.Fprint(w, "<html><body><p>Error: please fill in at least one field.</p></body></html>")
}

func (s *Server) handleUnified(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/unified/")
	if domain, ok := strings.CutSuffix(rest, "/search"); ok {
		s.handleUnifiedSearch(w, r, domain)
		return
	}
	u, err := s.unifiedFor(rest)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, htmlform.Render(u.AsInterface("unified-"+rest)))
}

// handleUnifiedSearch translates a unified query to every source and
// reports which answered.
func (s *Server) handleUnifiedSearch(w http.ResponseWriter, r *http.Request, domain string) {
	if _, err := s.unifiedFor(domain); err != nil {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	tr := s.translators[domain]
	s.mu.Unlock()
	attr := r.URL.Query().Get("attr")
	value := r.URL.Query().Get("value")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	results, err := tr.Query(attr, value)
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintf(w, "<html><body><p>Error: %s</p></body></html>", err)
		return
	}
	ok, total := translate.Coverage(results)
	fmt.Fprintf(w, "<html><body><h1>%s = %q</h1><p>%d of %d sources answered.</p><ul>",
		attr, value, ok, total)
	for _, res := range results {
		status := "no results"
		if res.OK {
			status = "results found"
		}
		fmt.Fprintf(w, `<li><a href="/source/%s">%s</a>: %s</li>`, res.InterfaceID, res.InterfaceID, status)
	}
	fmt.Fprint(w, "</ul></body></html>")
}

// unifiedFor lazily runs acquisition + matching + unification for a
// domain, caching the result.
func (s *Server) unifiedFor(domain string) (*unify.UnifiedInterface, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u, ok := s.unified[domain]; ok {
		return u, nil
	}
	ds := s.datasets[domain]
	pool := s.pools[domain]
	if ds == nil || pool == nil {
		return nil, fmt.Errorf("unknown domain %q", domain)
	}
	cfg := iq.DefaultConfig()
	v := iq.NewValidator(s.engine, cfg)
	acq := iq.NewAcquirer(
		iq.NewSurface(s.engine, v, cfg),
		iq.NewAttrDeep(pool, cfg),
		iq.NewAttrSurface(v, cfg),
		iq.AllComponents(), cfg)
	acq.SetObserver(s.reg)
	acq.SetAccounting(
		func() (time.Duration, int) { return s.engine.VirtualTime(), s.engine.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	acq.AcquireAll(ds)
	m := matcher.New(matcher.DefaultConfig())
	m.Instrument(s.reg)
	res := m.Match(ds)
	u := unify.Build(ds, res)
	s.unified[domain] = u
	s.translators[domain] = translate.New(u, ds, pool)
	return u, nil
}

// statsInfo is the /stats JSON shape. Virtual seconds are the simulated
// substrate time of the Figure-8 overhead accounting — the other half
// of the signal next to raw query counts.
type statsInfo struct {
	CorpusPages          int                `json:"corpus_pages"`
	SearchQueries        int                `json:"search_queries"`
	SearchVirtualSeconds float64            `json:"search_virtual_seconds"`
	ProbesByPool         map[string]int     `json:"probes_by_domain"`
	ProbeVirtualByPool   map[string]float64 `json:"probe_virtual_seconds_by_domain"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	info := statsInfo{
		CorpusPages:          s.engine.NumDocs(),
		SearchQueries:        s.engine.QueryCount(),
		SearchVirtualSeconds: s.engine.VirtualTime().Seconds(),
		ProbesByPool:         map[string]int{},
		ProbeVirtualByPool:   map[string]float64{},
	}
	s.mu.Lock()
	for k, p := range s.pools {
		info.ProbesByPool[k] = p.QueryCount()
		info.ProbeVirtualByPool[k] = p.VirtualTime().Seconds()
	}
	s.mu.Unlock()
	writeJSON(w, info)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
