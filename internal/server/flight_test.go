package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"webiq/internal/obs"
)

// TestStatsRuntimeBlock pins the /stats runtime block: it is present on
// every server (recorder or not) and its figures are within sane bounds.
func TestStatsRuntimeBlock(t *testing.T) {
	s := testServer(t)
	code, body := get(t, s, "/stats")
	if code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	var info struct {
		Runtime obs.RuntimeSample `json:"runtime"`
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("bad /stats JSON: %v", err)
	}
	rt := info.Runtime
	if rt.Goroutines < 1 || rt.Goroutines > 1_000_000 {
		t.Errorf("goroutines = %d", rt.Goroutines)
	}
	if rt.HeapInuseBytes == 0 || rt.HeapInuseBytes > 1<<40 {
		t.Errorf("heap_inuse_bytes = %d", rt.HeapInuseBytes)
	}
	if rt.GCPauseP99NS < 0 || rt.GCPauseP99NS > int64(time.Minute) {
		t.Errorf("gc_pause_p99_ns = %d", rt.GCPauseP99NS)
	}
	if rt.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d", rt.GOMAXPROCS)
	}
	if rt.TimeNS <= 0 {
		t.Errorf("time_ns = %d", rt.TimeNS)
	}
}

// TestFlightDisabled pins the off state: /debug/flight 404s with a
// JSON hint and no wide events exist anywhere.
func TestFlightDisabled(t *testing.T) {
	s := testServer(t)
	code, body := get(t, s, "/debug/flight")
	if code != 404 || !strings.Contains(body, "flight recorder disabled") {
		t.Fatalf("/debug/flight on plain server = %d %q", code, body)
	}
	if s.Flight() != nil {
		t.Error("plain server has a recorder")
	}
}

// TestFlightEndpoints exercises the full debug surface on a live
// recorder: status, manual snapshot, bundle list, bundle download —
// and checks wide events carry trace IDs resolvable via /trace/{id}.
func TestFlightEndpoints(t *testing.T) {
	dir := t.TempDir()
	s := New(1, WithFlightRecorder(FlightConfig{
		Dir:                dir,
		Triggers:           obs.TriggerConfig{On5xx: true, Debounce: time.Hour},
		CPUProfileDuration: -1,
		SampleInterval:     -1,
	}))
	defer s.Close()

	// Traffic: one healthy page and one 404 (no trigger configured for
	// 4xx, so no automatic bundle).
	if code, _ := get(t, s, "/sources"); code != 200 {
		t.Fatalf("/sources = %d", code)
	}
	get(t, s, "/source/nope")

	code, body := get(t, s, "/debug/flight")
	if code != 200 {
		t.Fatalf("/debug/flight = %d %s", code, body)
	}
	var status struct {
		Enabled bool   `json:"enabled"`
		Events  uint64 `json:"events_recorded"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	if !status.Enabled || status.Events < 2 {
		t.Fatalf("status = %+v, want enabled with >= 2 events", status)
	}

	// Every wide event must carry a resolvable trace ID.
	for _, ev := range s.Flight().EventsSince(0) {
		if ev.TraceID == "" {
			t.Fatalf("wide event without trace ID: %+v", ev)
		}
		if code, _ := get(t, s, "/trace/"+ev.TraceID); code != 200 {
			t.Errorf("trace %s of route %s not resolvable: %d", ev.TraceID, ev.Route, code)
		}
	}

	// Manual snapshot, then list + download.
	code, body = get(t, s, "/debug/flight/snapshot")
	if code != 200 {
		t.Fatalf("/debug/flight/snapshot = %d %s", code, body)
	}
	code, body = get(t, s, "/debug/flight/bundles")
	if code != 200 {
		t.Fatalf("/debug/flight/bundles = %d", code)
	}
	var bundles []obs.BundleInfo
	if err := json.Unmarshal([]byte(body), &bundles); err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("bundles = %+v, want exactly the manual snapshot", bundles)
	}
	code, body = get(t, s, "/debug/flight/bundle/"+bundles[0].Name)
	if code != 200 {
		t.Fatalf("bundle download = %d", code)
	}
	var b obs.Bundle
	if err := json.Unmarshal([]byte(body), &b); err != nil {
		t.Fatalf("downloaded bundle is not JSON: %v", err)
	}
	if b.Reason != "manual" || len(b.WideEvents) < 2 {
		t.Errorf("bundle reason=%q events=%d", b.Reason, len(b.WideEvents))
	}
	// Traversal attempts must not leave the bundle dir.
	if code, _ := get(t, s, "/debug/flight/bundle/..%2f..%2fetc%2fpasswd"); code == 200 {
		t.Error("path traversal served a file")
	}
}

// TestFlightShedWideEvents pins the reason the flight middleware sits
// outside admission: a shed request still produces a wide event (with
// the shed reason) and fires the shed trigger.
func TestFlightShedWideEvents(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	s := New(1,
		WithAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueued: 0}),
		WithFlightRecorder(FlightConfig{
			Dir:                dir,
			Triggers:           obs.TriggerConfig{OnShed: true, Debounce: -1},
			CPUProfileDuration: -1,
			SampleInterval:     -1,
		}))
	defer s.Close()

	// Occupy the only slot with a request that blocks in the handler.
	s.mux.Handle("/block", s.flightWrap("block", s.adm.wrap(
		s.httpm.WrapFunc("block", func(_ http.ResponseWriter, _ *http.Request) { <-block }))))
	release := make(chan struct{})
	go func() {
		get(t, s, "/block")
		close(release)
	}()
	// Wait until the blocker holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		inFlight, _, _, _, _ := s.adm.stats()
		if inFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never acquired the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	code, _ := get(t, s, "/sources")
	if code != 503 {
		t.Fatalf("expected shed 503, got %d", code)
	}
	close(block)
	<-release

	var shed *obs.WideEvent
	for _, ev := range s.Flight().EventsSince(0) {
		if ev.ShedReason != "" {
			ev := ev
			shed = &ev
		}
	}
	if shed == nil {
		t.Fatal("no wide event for the shed request")
	}
	if shed.Status != 503 || shed.ShedReason != "queue-full" || shed.Trigger != "shed" {
		t.Errorf("shed wide event = %+v", shed)
	}
	if shed.TraceID != "" {
		t.Errorf("shed event has a trace ID %q; sheds never reach the tracer", shed.TraceID)
	}

	// The shed trigger dumped a bundle whose events include the shed.
	waitBundle := time.Now().Add(5 * time.Second)
	for {
		infos, err := s.Flight().Bundles()
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) > 0 {
			break
		}
		if time.Now().After(waitBundle) {
			t.Fatal("shed trigger never produced a bundle")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSnapshotIdentityOnHealthzAndStats pins satellite 1: a
// snapshot-booted server reports fingerprint/seed/scale on /healthz and
// /stats; a fresh server reports neither.
func TestSnapshotIdentityOnHealthzAndStats(t *testing.T) {
	snap, fresh := snapshotPair(t)

	type snapBlock struct {
		Fingerprint string  `json:"fingerprint"`
		Seed        int64   `json:"seed"`
		Scale       float64 `json:"scale"`
	}
	var health struct {
		Status   string     `json:"status"`
		Snapshot *snapBlock `json:"snapshot"`
	}
	code, body := get(t, snap, "/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("status = %q", health.Status)
	}
	if health.Snapshot == nil || health.Snapshot.Seed != snapSeed ||
		len(health.Snapshot.Fingerprint) != 16 || health.Snapshot.Fingerprint == strings.Repeat("0", 16) {
		t.Errorf("snapshot identity on /healthz = %+v", health.Snapshot)
	}

	var stats struct {
		Snapshot *snapBlock `json:"snapshot"`
	}
	if _, body := get(t, snap, "/stats"); true {
		if err := json.Unmarshal([]byte(body), &stats); err != nil {
			t.Fatal(err)
		}
	}
	if stats.Snapshot == nil || stats.Snapshot.Fingerprint != health.Snapshot.Fingerprint {
		t.Errorf("/stats snapshot identity = %+v, want %+v", stats.Snapshot, health.Snapshot)
	}

	// Fresh server: no snapshot block, /healthz still ok.
	code, body = get(t, fresh, "/healthz")
	if code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("fresh /healthz = %d %q", code, body)
	}
	if strings.Contains(body, "fingerprint") {
		t.Error("fresh server claims a snapshot fingerprint")
	}
}

// TestFlightP99TraceExemplar pins the /stats -> /trace link: route
// summaries expose a p99 trace exemplar that resolves via /trace/{id}.
func TestFlightP99TraceExemplar(t *testing.T) {
	s := testServer(t)
	// Ensure the route has traffic.
	for i := 0; i < 3; i++ {
		if code, _ := get(t, s, "/sources"); code != 200 {
			t.Fatal("seed traffic failed")
		}
	}
	_, body := get(t, s, "/stats")
	var info struct {
		Routes map[string]obs.RouteSummary `json:"routes"`
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	sum, ok := info.Routes["sources"]
	if !ok || sum.Count == 0 {
		t.Fatalf("no summary for route sources: %+v", info.Routes)
	}
	if sum.P99TraceID == "" {
		t.Fatal("route summary has no p99 trace exemplar")
	}
	if code, _ := get(t, s, "/trace/"+sum.P99TraceID); code != 200 {
		t.Errorf("p99 exemplar trace %s not resolvable: %d", sum.P99TraceID, code)
	}
}
