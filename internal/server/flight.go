package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"webiq/internal/obs"
	"webiq/internal/resilience"
)

// FlightConfig enables the flight recorder: a ring of wide events (one
// per request), periodic runtime sampling, and anomaly-triggered
// diagnostic bundles written under Dir. See obs.FlightRecorder.
type FlightConfig struct {
	// Dir is where diagnostic bundles are written (required).
	Dir string
	// Capacity is the wide-event ring size (obs.DefFlightCapacity when 0).
	Capacity int
	// Window is how much recent history a bundle includes
	// (obs.DefFlightWindow when 0).
	Window time.Duration
	// Triggers are the anomaly rules firing automatic dumps.
	Triggers obs.TriggerConfig
	// MaxBundles caps retained bundle files (16 when 0).
	MaxBundles int
	// CPUProfileDuration is the auto-captured CPU profile length
	// (500ms when 0, disabled when < 0).
	CPUProfileDuration time.Duration
	// SampleInterval is the background runtime-sampling period
	// (2s when 0, no background sampling when < 0).
	SampleInterval time.Duration
}

// WithFlightRecorder enables the flight recorder. With this option
// absent the server records nothing and every flight hook is free, so
// experiment outputs are byte-identical to a recorder-less build.
func WithFlightRecorder(cfg FlightConfig) Option {
	return func(s *Server) { s.flightCfg = &cfg }
}

// snapshotInfo is the world identity reported on /healthz, /stats, and
// in bundle identity labels when the server was booted from a snapshot.
type snapshotInfo struct {
	Fingerprint string  `json:"fingerprint"`
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
}

// setupFlight builds the recorder and wires the breaker-open trigger;
// it runs inside finish, after the resilient clients exist.
func (s *Server) setupFlight() {
	if s.flightCfg == nil {
		return
	}
	cfg := *s.flightCfg
	identity := map[string]string{}
	if s.snapInfo != nil {
		identity["snapshot_fingerprint"] = s.snapInfo.Fingerprint
		identity["seed"] = fmt.Sprintf("%d", s.snapInfo.Seed)
		identity["scale"] = fmt.Sprintf("%g", s.snapInfo.Scale)
	}
	s.flight = obs.NewFlightRecorder(obs.FlightOptions{
		Dir:                cfg.Dir,
		Capacity:           cfg.Capacity,
		Window:             cfg.Window,
		Triggers:           cfg.Triggers,
		MaxBundles:         cfg.MaxBundles,
		CPUProfileDuration: cfg.CPUProfileDuration,
		Identity:           identity,
		Registry:           s.reg,
		Tracer:             s.tracer,
		Sampler:            s.sampler,
	})
	interval := cfg.SampleInterval
	if interval == 0 {
		interval = 2 * time.Second
	}
	s.flight.Start(interval)

	if s.flight.Triggers().OnBreakerOpen && s.engClient != nil {
		hook := func(backend string) func(from, to resilience.BreakerState) {
			return func(_, to resilience.BreakerState) {
				if to == resilience.BreakerOpen {
					s.flight.Trigger("breaker-open-"+backend, "")
				}
			}
		}
		s.engClient.OnBreakerTransition(hook("search"))
		s.srcClient.OnBreakerTransition(hook("deep"))
	}
	// Per-peer forwarding breakers dump a bundle too: a peer going dark
	// is the incident the cluster chaos harness exists to diagnose.
	if s.flight.Triggers().OnBreakerOpen && s.cluster != nil {
		s.cluster.Forwarder().OnBreakerTransition(func(peer string, _, to resilience.BreakerState) {
			if to == resilience.BreakerOpen {
				s.flight.Trigger("breaker-open-peer-"+peer, "")
			}
		})
	}
}

// statusCapture records the status code written by the inner handler
// chain (the flight middleware sits outside obs.HTTPMetrics.Wrap, so it
// cannot see that layer's recorder).
type statusCapture struct {
	http.ResponseWriter
	code int
}

func (w *statusCapture) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// probeCount sums the deep-web probes served across every pool.
func (s *Server) probeCount() int {
	n := 0
	s.mu.Lock()
	for _, p := range s.pools {
		n += p.QueryCount()
	}
	s.mu.Unlock()
	return n
}

// degradationCount sums recorded degradations across every domain.
func (s *Server) degradationCount() int {
	n := 0
	s.mu.Lock()
	for _, d := range s.degradations {
		n += len(d)
	}
	s.mu.Unlock()
	return n
}

// flightWrap is the outermost middleware: it observes the whole
// request — including admission sheds, which never reach the metrics
// middleware — as one wide event, and evaluates the trigger rules.
// With the recorder disabled it is the identity function.
func (s *Server) flightWrap(route string, next http.Handler) http.Handler {
	if s.flight == nil {
		return next
	}
	tc := s.flight.Triggers()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		engBefore := s.engine.QueryCount()
		probeBefore := s.probeCount()
		sw := &statusCapture{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)

		ev := obs.WideEvent{
			TimeNS:        time.Now().UnixNano(),
			Route:         route,
			Method:        r.Method,
			Path:          r.URL.Path,
			Status:        sw.code,
			Seconds:       time.Since(start).Seconds(),
			TraceID:       w.Header().Get("X-Trace-ID"),
			ShedReason:    w.Header().Get("X-Shed-Reason"),
			EngineQueries: s.engine.QueryCount() - engBefore,
			ProbeQueries:  s.probeCount() - probeBefore,
			Degradations:  s.degradationCount(),
		}
		if s.engClient != nil {
			ev.BreakerSearch = s.engClient.BreakerState().String()
			ev.BreakerDeep = s.srcClient.BreakerState().String()
		}
		if s.adm != nil {
			inFlight, queued, _, _, _ := s.adm.stats()
			ev.AdmInFlight, ev.AdmQueued = inFlight, queued
		}
		ev.Trigger = tc.Match(ev)
		if ev.Trigger == "" && tc.P99Budget > 0 {
			if p99, n := s.httpm.RouteP99(route); n >= tc.P99MinCount && p99 > tc.P99Budget.Seconds() {
				ev.Trigger = "p99-budget"
			}
		}
		s.flight.Record(ev)
		if ev.Trigger != "" {
			s.flight.Trigger(ev.Trigger, ev.TraceID)
		}
	})
}

// flightStatus is the GET /debug/flight JSON shape.
type flightStatus struct {
	Enabled    bool             `json:"enabled"`
	Dir        string           `json:"dir,omitempty"`
	Triggers   string           `json:"triggers,omitempty"`
	WindowSecs float64          `json:"window_seconds,omitempty"`
	Events     uint64           `json:"events_recorded"`
	Bundles    []obs.BundleInfo `json:"bundles,omitempty"`
}

// handleFlight serves the flight-recorder debug surface:
//
//	GET /debug/flight                  status + bundle list
//	GET /debug/flight/snapshot         dump a bundle now, return its info
//	GET /debug/flight/bundles          bundle list (newest first)
//	GET /debug/flight/bundle/{name}    download one bundle
//
// These endpoints bypass the admission queue: an overloaded server is
// exactly when the recorder must stay reachable.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":"flight recorder disabled; start the server with -flight-dir"}`)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/flight")
	rest = strings.TrimPrefix(rest, "/")
	switch {
	case rest == "":
		bundles, _ := s.flight.Bundles()
		writeJSON(w, flightStatus{
			Enabled:    true,
			Dir:        s.flightCfg.Dir,
			Triggers:   s.flight.Triggers().String(),
			WindowSecs: s.flight.Window().Seconds(),
			Events:     s.flight.EventCount(),
			Bundles:    bundles,
		})
	case rest == "snapshot":
		b, path, err := s.flight.Snapshot("manual", obs.TraceIDFrom(r.Context()))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{
			"file":        path,
			"reason":      b.Reason,
			"wide_events": len(b.WideEvents),
			"in_flight":   len(b.InFlight),
		})
	case rest == "bundles":
		bundles, err := s.flight.Bundles()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, bundles)
	case strings.HasPrefix(rest, "bundle/"):
		path, err := s.flight.BundlePath(strings.TrimPrefix(rest, "bundle/"))
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		http.ServeFile(w, r, path)
	default:
		http.NotFound(w, r)
	}
}

// Flight exposes the server's flight recorder (nil when disabled).
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Close releases background resources: the flight recorder's runtime
// sampler and the cluster health prober. Safe to call on a server
// without either, and idempotent.
func (s *Server) Close() {
	s.flight.Close()
	s.sampler.Stop()
	if s.cluster != nil {
		s.cluster.Stop()
	}
}
