package server

import (
	"net/http"
	"strings"

	"webiq/internal/obs"
	"webiq/internal/schema"
	"webiq/internal/unify"
)

// Decision provenance for the unified interface: GET
// /unified/{domain}/explain reports, for every attribute of the
// domain's unified interface, where each instance came from (the
// acquiring component) and the numeric evidence behind its acceptance
// (PMI confidence, classifier posterior, or probe-success fraction),
// plus the matcher merges that formed the attribute with their
// LabelSim/DomSim breakdowns — all linked by trace ID to the build
// request's span tree (GET /trace/{id}).

// ExplainInstance attributes one unified-interface instance.
type ExplainInstance struct {
	Value string `json:"value"`
	// SourceAttr is the member attribute the instance came from.
	SourceAttr string `json:"source_attr"`
	// Component is "native" for predefined values, else the acquiring
	// component: "surface", "attr-surface", or "attr-deep".
	Component string `json:"component"`
	// Verdict is "predefined" for native values, "accept" otherwise.
	Verdict string `json:"verdict"`
	// Score/Threshold carry the acceptance evidence: PMI confidence vs
	// MinScore (surface), posterior vs 0.5 (attr-surface), or probe
	// success fraction vs 1/3 (attr-deep). Zero for native values.
	Score     float64 `json:"score,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Evidence is the human-readable detail of the accepting decision.
	Evidence string `json:"evidence,omitempty"`
}

// ExplainAttribute is the provenance of one unified attribute.
type ExplainAttribute struct {
	Label     string            `json:"label"`
	Members   []string          `json:"members"`
	Merges    []obs.Decision    `json:"merges,omitempty"`
	Instances []ExplainInstance `json:"instances"`
}

// ExplainPayload is the /unified/{domain}/explain response.
type ExplainPayload struct {
	Domain string `json:"domain"`
	// TraceID identifies the build's trace; GET /trace/{TraceID}
	// returns the span tree the ledger decisions link into.
	TraceID    string             `json:"trace_id,omitempty"`
	Attributes []ExplainAttribute `json:"attributes"`
	// Instances / Attributed count the unified instances and how many
	// could be tied to a recorded decision (or a predefined value);
	// they are equal when provenance is complete.
	Instances  int `json:"instances"`
	Attributed int `json:"attributed"`
}

// handleExplain serves GET /unified/{domain}/explain, building the
// unified interface first if needed (sharing the singleflight build).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, domain string) {
	u, err := s.unifiedFor(r.Context(), domain)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	ds := s.datasets[domain]
	ledger := s.ledgers[domain]
	traceID := s.buildTrace[domain]
	s.mu.Unlock()
	writeJSON(w, explainUnified(domain, u, ds, ledger, traceID))
}

// explainUnified resolves the provenance of every instance of the
// unified interface. It replays unify.Build's member walk exactly
// (predefined values first, then acquired, case-folded dedup), so each
// unified instance maps back to the member attribute that contributed
// it; predefined values are attributed as "native", acquired values to
// the ledger's accept decision recorded by the acquiring component.
func explainUnified(domain string, u *unify.UnifiedInterface, ds *schema.Dataset, ledger *obs.Ledger, traceID string) *ExplainPayload {
	byID := map[string]*schema.Attribute{}
	if ds != nil {
		for _, ifc := range ds.Interfaces {
			for _, a := range ifc.Attributes {
				byID[a.ID] = a
			}
		}
	}
	out := &ExplainPayload{Domain: domain, TraceID: traceID}
	for _, ua := range u.Attributes {
		ea := ExplainAttribute{
			Label:   ua.Label,
			Members: append([]string(nil), ua.Members...),
			Merges:  mergesAmong(ledger, ua.Members),
		}
		seen := map[string]bool{}
		for pass := 0; pass < 2; pass++ {
			for _, id := range ua.Members {
				a := byID[id]
				if a == nil {
					continue
				}
				vals := a.Instances
				if pass == 1 {
					vals = a.Acquired
				}
				for _, v := range vals {
					f := strings.ToLower(v)
					if seen[f] {
						continue
					}
					seen[f] = true
					inst := ExplainInstance{Value: v, SourceAttr: id}
					if pass == 0 {
						inst.Component = "native"
						inst.Verdict = "predefined"
						inst.Evidence = "predefined on the source interface"
						out.Attributed++
					} else if d, ok := acceptDecision(ledger, id, v); ok {
						inst.Component = d.Component
						inst.Verdict = d.Verdict
						inst.Score = d.Score
						inst.Threshold = d.Threshold
						inst.Evidence = d.Detail
						out.Attributed++
					} else {
						inst.Component = "unknown"
						inst.Verdict = "unattributed"
					}
					out.Instances++
					ea.Instances = append(ea.Instances, inst)
				}
			}
		}
		out.Attributes = append(out.Attributes, ea)
	}
	return out
}

// acceptDecision finds the ledger decision that accepted value v into
// attribute attrID — exact value match first, case-folded as a
// fallback. The first accept wins: it is the decision that actually
// added the value (later duplicates were deduplicated away).
func acceptDecision(ledger *obs.Ledger, attrID, v string) (obs.Decision, bool) {
	decisions := ledger.ByAttr(attrID)
	for _, d := range decisions {
		if d.Verdict == "accept" && d.Value == v {
			return d, true
		}
	}
	f := strings.ToLower(v)
	for _, d := range decisions {
		if d.Verdict == "accept" && strings.ToLower(d.Value) == f {
			return d, true
		}
	}
	return obs.Decision{}, false
}

// mergesAmong collects the matcher merge decisions whose supporting
// pair lies within the member set, in merge order.
func mergesAmong(ledger *obs.Ledger, members []string) []obs.Decision {
	if ledger == nil || len(members) < 2 {
		return nil
	}
	in := make(map[string]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	var out []obs.Decision
	for _, d := range ledger.Decisions() {
		if d.Component == "matcher" && d.Verdict == "merge" && in[d.AttrID] && in[d.OtherID] {
			out = append(out, d)
		}
	}
	return out
}
