package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"webiq/internal/cluster"
)

// WithCluster joins the server to a multi-node cluster: a consistent-
// hash ring assigns every domain a primary and replicas, peer health is
// probed periodically over /readyz, and requests for domains this node
// does not own are forwarded to the primary with failover down the
// owner list (and a local serve as the last resort — every node holds
// the full world, so placement is a routing contract, not a data
// constraint). Without this option the server is byte-identical to a
// cluster-less build: no ring, no probes, no extra /stats fields.
func WithCluster(cfg cluster.Config) Option {
	return func(s *Server) { s.clusterCfg = &cfg }
}

// setupCluster constructs the cluster view and starts the health
// prober; it runs inside finish, before setupFlight so the flight
// recorder can hook the per-peer breakers.
func (s *Server) setupCluster() {
	if s.clusterCfg == nil {
		return
	}
	s.cluster = cluster.New(*s.clusterCfg)
	s.cluster.Instrument(s.reg)
	s.cluster.Start()
}

// Cluster exposes the node's cluster view (nil without WithCluster).
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// domainFromUnifiedPath extracts the domain of /unified/{domain}[/...].
func domainFromUnifiedPath(r *http.Request) string {
	rest := strings.TrimPrefix(r.URL.Path, "/unified/")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// domainFromSourcePath extracts the domain of /source/{ifc}[/search],
// where interface IDs are "{domain}/{name}".
func domainFromSourcePath(r *http.Request) string {
	rest := strings.TrimPrefix(r.URL.Path, "/source/")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// clusterWrap inserts the ownership check in front of a domain-scoped
// handler: requests for domains this node does not own are forwarded
// to the owning peers (primary first, replicas on failure) before the
// local handler ever runs. Hop-guarded requests, owned domains, and
// unknown domains (404 here is 404 everywhere — every node holds the
// same domain set) fall through to next. With no cluster configured
// the wrapper is the identity.
func (s *Server) clusterWrap(extract func(*http.Request) string, next http.Handler) http.Handler {
	if s.clusterCfg == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		domain := extract(r)
		if domain != "" {
			s.mu.Lock()
			known := s.datasets[domain] != nil
			s.mu.Unlock()
			if known && s.cluster.Serve(w, r, domain) {
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// clusterStatsInfo is the /cluster/stats JSON shape: this node's
// routing view plus every reachable node's /stats, aggregated in one
// round of concurrent peer fetches.
type clusterStatsInfo struct {
	Cluster cluster.Stats              `json:"cluster"`
	Nodes   map[string]json.RawMessage `json:"nodes"`
	Errors  map[string]string          `json:"node_errors,omitempty"`
}

// handleClusterStats aggregates cluster-wide state: 404 without a
// cluster, otherwise this node's ring/membership/forward view plus the
// /stats body of every peer (fetched concurrently, each bounded by the
// probe timeout so one hung peer cannot stall the page).
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, `{"error":"cluster mode disabled; start the server with -peers"}`+"\n")
		return
	}
	info := clusterStatsInfo{
		Cluster: s.cluster.Stats(s.domainKeys()),
		Nodes:   map[string]json.RawMessage{},
		Errors:  map[string]string{},
	}
	// This node answers for itself without a self-request.
	self, err := json.Marshal(s.buildStats())
	if err == nil {
		info.Nodes[s.cluster.Self()] = self
	}

	type peerStats struct {
		id   string
		body []byte
		err  error
	}
	statuses := s.cluster.Membership().Statuses()
	results := make(chan peerStats, len(statuses))
	var wg sync.WaitGroup
	for _, m := range statuses {
		wg.Add(1)
		go func(id, base string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
			defer cancel()
			body, err := fetchPeerStats(ctx, base)
			results <- peerStats{id: id, body: body, err: err}
		}(m.ID, m.BaseURL)
	}
	wg.Wait()
	close(results)
	for res := range results {
		if res.err != nil {
			info.Errors[res.id] = res.err.Error()
			continue
		}
		info.Nodes[res.id] = res.body
	}
	if len(info.Errors) == 0 {
		info.Errors = nil
	}
	writeJSON(w, info)
}

// fetchPeerStats GETs one peer's /stats and returns the raw JSON.
func fetchPeerStats(ctx context.Context, base string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/stats answered %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if !json.Valid(body) {
		return nil, fmt.Errorf("/stats returned invalid JSON")
	}
	return body, nil
}

// domainKeys returns the served domain keys, sorted.
func (s *Server) domainKeys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.datasets))
	for k := range s.datasets {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}
