package server

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"webiq/internal/obs"
)

// AdmissionConfig bounds how much concurrent work the server accepts.
// Requests beyond MaxInFlight wait in a bounded queue; requests beyond
// the queue are shed immediately with 503 + Retry-After, so an
// overloaded (or fault-degraded, hence slow) pipeline turns excess load
// into fast, explicit rejections instead of piling up goroutines.
type AdmissionConfig struct {
	// MaxInFlight is the number of requests served concurrently;
	// <= 0 disables admission control entirely.
	MaxInFlight int
	// MaxQueued is how many requests may wait for a slot; <= 0 sheds
	// as soon as every slot is busy.
	MaxQueued int
	// RetryAfter is the base Retry-After hint attached to shed
	// responses (default 1s). The actual hint scales with the live
	// queue depth — see retryAfterHint.
	RetryAfter time.Duration
}

// retryAfterCapFactor bounds the derived Retry-After hint at this
// multiple of the configured base, so a deep queue never tells clients
// to disappear for minutes.
const retryAfterCapFactor = 10

// admission is the bounded admission queue. A nil *admission admits
// everything.
type admission struct {
	cfg   AdmissionConfig
	slots chan struct{}

	queued   atomic.Int64
	draining atomic.Bool

	// Metrics (nil-safe).
	mShed     *obs.CounterVec // reason: queue-full, draining
	gInFlight *obs.Gauge
	gQueued   *obs.Gauge
}

// newAdmission returns an admission queue, or nil when cfg disables it.
func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.MaxInFlight <= 0 {
		return nil
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	return &admission{cfg: cfg, slots: make(chan struct{}, cfg.MaxInFlight)}
}

// instrument registers the admission metrics on r (nil-safe).
func (a *admission) instrument(r *obs.Registry) {
	if a == nil {
		return
	}
	a.mShed = r.CounterVec("webiq_admission_shed_total", "Requests shed by the admission queue, by reason.", "reason")
	a.gInFlight = r.Gauge("webiq_admission_in_flight", "Requests currently holding an admission slot.")
	a.gQueued = r.Gauge("webiq_admission_queued", "Requests currently waiting for an admission slot.")
}

// beginDrain stops admitting new requests: arrivals are shed with 503
// while already-queued and in-flight requests run to completion.
func (a *admission) beginDrain() {
	if a == nil {
		return
	}
	a.draining.Store(true)
}

// isDraining reports whether beginDrain was called.
func (a *admission) isDraining() bool { return a != nil && a.draining.Load() }

// stats snapshots the queue state for /stats.
func (a *admission) stats() (inFlight, queued, capacity, queueCap int, draining bool) {
	if a == nil {
		return 0, 0, 0, 0, false
	}
	return len(a.slots), int(a.queued.Load()), a.cfg.MaxInFlight, a.cfg.MaxQueued, a.draining.Load()
}

// retryAfterHint derives the Retry-After seconds from the shed reason
// and the live queue state, instead of handing every client the same
// static hint (which synchronizes their retries into the next wave of
// overload). Queue-full sheds scale with how much work already waits
// ahead of the client — base × (1 + queued/maxInFlight), i.e. roughly
// how many service generations must drain first — capped at
// retryAfterCapFactor × base. A draining node will never admit again,
// so it answers with the cap outright: come back late, and to a load
// balancer that has moved on.
func (a *admission) retryAfterHint(reason string) int {
	base := int((a.cfg.RetryAfter + time.Second - 1) / time.Second)
	if base < 1 {
		base = 1
	}
	switch reason {
	case "draining":
		return base * retryAfterCapFactor
	case "queue-full":
		hint := base * (1 + int(a.queued.Load())/a.cfg.MaxInFlight)
		if limit := base * retryAfterCapFactor; hint > limit {
			return limit
		}
		return hint
	default:
		return base
	}
}

// shed writes the 503 + Retry-After rejection. X-Shed-Reason is how the
// flight middleware (sitting outside this layer) learns the request was
// shed rather than served slowly.
func (a *admission) shed(w http.ResponseWriter, reason string) {
	a.mShed.With(reason).Inc()
	w.Header().Set("X-Shed-Reason", reason)
	w.Header().Set("Retry-After", strconv.Itoa(a.retryAfterHint(reason)))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte(`{"error":"server overloaded, retry later","reason":"` + reason + `"}` + "\n"))
}

// wrap applies admission control to h. Operational endpoints (health,
// readiness, metrics) bypass the queue in the caller, so they stay
// observable exactly when the queue is the interesting signal.
func (a *admission) wrap(h http.Handler) http.Handler {
	if a == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a.draining.Load() {
			a.shed(w, "draining")
			return
		}
		select {
		case a.slots <- struct{}{}:
			// Fast path: a slot is free.
		default:
			// Reserve a queue place atomically; overshoot backs out.
			if q := a.queued.Add(1); int(q) > a.cfg.MaxQueued {
				a.queued.Add(-1)
				a.shed(w, "queue-full")
				return
			}
			a.gQueued.Set(float64(a.queued.Load()))
			select {
			case a.slots <- struct{}{}:
				a.queued.Add(-1)
				a.gQueued.Set(float64(a.queued.Load()))
			case <-r.Context().Done():
				a.queued.Add(-1)
				a.gQueued.Set(float64(a.queued.Load()))
				// The client is gone; 503 is the least-wrong status
				// for whoever is still listening.
				a.shed(w, "canceled")
				return
			}
		}
		a.gInFlight.Set(float64(len(a.slots)))
		defer func() {
			<-a.slots
			a.gInFlight.Set(float64(len(a.slots)))
		}()
		h.ServeHTTP(w, r)
	})
}
