package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"webiq/internal/kb"
	"webiq/internal/snapshot"
)

// Fresh and snapshot-backed servers are built once per test binary
// (both run the full pipeline for every domain) and shared read-only.
var (
	snapPairOnce sync.Once
	snapSrv      *Server
	freshSrv     *Server
	snapPairErr  error
)

const snapSeed = 1

func snapshotPair(t *testing.T) (snap, fresh *Server) {
	t.Helper()
	snapPairOnce.Do(func() {
		world, err := snapshot.BuildWorld(snapshot.BuildConfig{Seed: snapSeed})
		if err != nil {
			snapPairErr = fmt.Errorf("build world: %w", err)
			return
		}
		raw, err := world.Bytes()
		if err != nil {
			snapPairErr = fmt.Errorf("serialize world: %w", err)
			return
		}
		// Go through the serialized form so the test covers the
		// snapshot server as deployed: zero-copy arrays, JSON-restored
		// interfaces.
		loaded, err := snapshot.LoadBytes(raw)
		if err != nil {
			snapPairErr = fmt.Errorf("load world: %w", err)
			return
		}
		snapSrv, snapPairErr = NewFromSnapshot(loaded)
		if snapPairErr != nil {
			return
		}
		freshSrv = New(snapSeed)
	})
	if snapPairErr != nil {
		t.Fatalf("build snapshot/fresh server pair: %v", snapPairErr)
	}
	return snapSrv, freshSrv
}

// TestSnapshotServerReadyImmediately pins the cold-start payoff: every
// domain reports ready before any request has triggered a build, while
// a fresh server starts entirely unready.
func TestSnapshotServerReadyImmediately(t *testing.T) {
	snap, _ := snapshotPair(t)
	code, body := get(t, snap, "/readyz")
	if code != 200 {
		t.Fatalf("/readyz on a snapshot server = %d, want 200; body %s", code, body)
	}
	var info struct {
		Ready   bool            `json:"ready"`
		Domains map[string]bool `json:"domains"`
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("bad /readyz JSON: %v", err)
	}
	if !info.Ready {
		t.Error("snapshot server not ready at boot")
	}
	for _, dom := range kb.Domains() {
		if !info.Domains[dom.Key] {
			t.Errorf("domain %s not ready at boot", dom.Key)
		}
	}

	// A brand-new fresh server (no requests yet) must be the opposite.
	cold := New(snapSeed + 1)
	if code, _ := get(t, cold, "/readyz"); code != 503 {
		t.Errorf("/readyz on a cold fresh server = %d, want 503", code)
	}
}

// TestSnapshotServerUnifiedBytes is the tentpole equivalence at the
// HTTP boundary: the rendered /unified/{domain} HTML must be
// byte-identical between the snapshot-backed server and a fresh server
// that built the same seed lazily.
func TestSnapshotServerUnifiedBytes(t *testing.T) {
	snap, fresh := snapshotPair(t)
	for _, dom := range kb.Domains() {
		path := "/unified/" + dom.Key
		sc, sb := get(t, snap, path)
		fc, fb := get(t, fresh, path)
		if sc != 200 || fc != 200 {
			t.Fatalf("%s: status snapshot=%d fresh=%d", path, sc, fc)
		}
		if sb != fb {
			t.Errorf("%s: HTML differs between snapshot and fresh servers", path)
		}
	}
}

// TestSnapshotServerSourcesBytes extends byte-equivalence to the
// dataset-backed routes: the source index and every rendered interface
// form.
func TestSnapshotServerSourcesBytes(t *testing.T) {
	snap, fresh := snapshotPair(t)
	sc, sb := get(t, snap, "/sources")
	fc, fb := get(t, fresh, "/sources")
	if sc != 200 || fc != 200 || sb != fb {
		t.Fatalf("/sources differs: status snapshot=%d fresh=%d", sc, fc)
	}
	var sources []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(sb), &sources); err != nil {
		t.Fatalf("bad /sources JSON: %v", err)
	}
	if len(sources) == 0 {
		t.Fatal("no sources listed")
	}
	for _, src := range sources[:min(len(sources), 10)] {
		path := "/source/" + src.ID
		sc, sb := get(t, snap, path)
		fc, fb := get(t, fresh, path)
		if sc != 200 || fc != 200 {
			t.Fatalf("%s: status snapshot=%d fresh=%d", path, sc, fc)
		}
		if sb != fb {
			t.Errorf("%s: form HTML differs between snapshot and fresh servers", path)
		}
	}
}

// TestSnapshotServerExplain compares build provenance: identical except
// the trace ID, which only a live traced build has.
func TestSnapshotServerExplain(t *testing.T) {
	snap, fresh := snapshotPair(t)
	for _, dom := range kb.Domains() {
		path := "/unified/" + dom.Key + "/explain"
		sc, sb := get(t, snap, path)
		fc, fb := get(t, fresh, path)
		if sc != 200 || fc != 200 {
			t.Fatalf("%s: status snapshot=%d fresh=%d", path, sc, fc)
		}
		var sm, fm map[string]any
		if err := json.Unmarshal([]byte(sb), &sm); err != nil {
			t.Fatalf("%s: bad snapshot JSON: %v", path, err)
		}
		if err := json.Unmarshal([]byte(fb), &fm); err != nil {
			t.Fatalf("%s: bad fresh JSON: %v", path, err)
		}
		if sm["trace_id"] != nil {
			t.Errorf("%s: snapshot explain has a trace ID %v, offline builds have no tracer", path, sm["trace_id"])
		}
		// Trace and span IDs are the documented difference: offline
		// builds run without a tracer, so embedded decisions carry
		// empty IDs. Everything else must match.
		stripTraceIDs(sm)
		stripTraceIDs(fm)
		ss, _ := json.Marshal(sm)
		fs, _ := json.Marshal(fm)
		if string(ss) != string(fs) {
			t.Errorf("%s: provenance differs beyond the trace ID", path)
		}
	}
}

// stripTraceIDs removes trace_id/span_id keys recursively, the one
// field family where offline and traced builds legitimately differ.
func stripTraceIDs(v any) {
	switch x := v.(type) {
	case map[string]any:
		delete(x, "trace_id")
		delete(x, "span_id")
		for _, child := range x {
			stripTraceIDs(child)
		}
	case []any:
		for _, child := range x {
			stripTraceIDs(child)
		}
	}
}

// TestSnapshotServerUnifiedSearch drives a probe through the restored
// translators and pools.
func TestSnapshotServerUnifiedSearch(t *testing.T) {
	snap, fresh := snapshotPair(t)
	for _, path := range []string{
		"/unified/book/search?attr=Author&value=Mark+Twain",
		"/unified/book/search?attr=Nope&value=x",
	} {
		sc, sb := get(t, snap, path)
		fc, fb := get(t, fresh, path)
		if sc != fc {
			t.Fatalf("%s: status snapshot=%d fresh=%d", path, sc, fc)
		}
		if sb != fb {
			t.Errorf("%s: search results differ between snapshot and fresh servers", path)
		}
	}
}

// TestSnapshotServerStartupMetric covers RecordStartup: the /stats
// field and the gauge both expose it.
func TestSnapshotServerStartupMetric(t *testing.T) {
	snap, _ := snapshotPair(t)
	snap.RecordStartup(1500 * time.Millisecond)
	_, body := get(t, snap, "/stats")
	var info struct {
		StartupSeconds float64 `json:"startup_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("bad /stats JSON: %v", err)
	}
	if info.StartupSeconds != 1.5 {
		t.Errorf("startup_seconds = %g, want 1.5", info.StartupSeconds)
	}
	_, metrics := get(t, snap, "/metrics")
	if !strings.Contains(metrics, "webiq_startup_seconds 1.5") {
		t.Error("/metrics missing webiq_startup_seconds gauge")
	}
}

// TestSnapshotServerDecisionCounters checks ledger replay restored the
// decision metrics a fresh server accumulates while building.
func TestSnapshotServerDecisionCounters(t *testing.T) {
	snap, fresh := snapshotPair(t)
	// Fresh server has built every domain by now (earlier tests hit
	// all /unified routes); counters must agree.
	_, sm := get(t, snap, "/metrics")
	_, fm := get(t, fresh, "/metrics")
	want := grepMetric(fm, "webiq_decisions_total")
	got := grepMetric(sm, "webiq_decisions_total")
	if len(want) == 0 {
		t.Fatal("fresh server exposes no decision counters")
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("decision counter %s: snapshot %q, fresh %q", k, got[k], v)
		}
	}
}

func grepMetric(metrics, name string) map[string]string {
	out := map[string]string{}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, name) {
			if k, v, ok := strings.Cut(line, " "); ok {
				out[k] = v
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
