package snapshot

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/obs"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
	"webiq/internal/unify"
	iq "webiq/internal/webiq"
)

// Meta is the snapshot's build metadata, stored as the meta section and
// cross-checked against the fixed-width header on load.
type Meta struct {
	GoVersion string   `json:"go_version"`
	Seed      int64    `json:"seed"`
	Scale     float64  `json:"scale"`
	Domains   []string `json:"domains"`
	Docs      int      `json:"docs"`
	Terms     int      `json:"terms"`
	Postings  int      `json:"postings"`
	Decisions int      `json:"decisions"`
}

// DomainWorld is everything the pipeline produced for one domain: the
// built unified interface, the acquisition report (kept as raw JSON so
// stored bytes round-trip exactly), the provenance ledger's decisions,
// and any degradations.
//
// Offline builds run without a tracer, so restored decisions carry
// empty trace IDs — /explain output differs from a fresh server build
// in exactly that field.
type DomainWorld struct {
	Domain       string                  `json:"domain"`
	Unified      *unify.UnifiedInterface `json:"unified"`
	ReportJSON   json.RawMessage         `json:"report"`
	Decisions    []obs.Decision          `json:"decisions"`
	Degradations []iq.Degradation        `json:"degradations,omitempty"`
}

// World is a fully built WebIQ universe: the frozen surface-web index,
// the generated (post-acquisition) datasets, and the per-domain
// pipeline outputs, in kb.Domains() order throughout.
type World struct {
	Meta     Meta
	Index    *surfaceweb.FrozenIndex
	Datasets []*schema.Dataset
	Domains  []DomainWorld
	// Fingerprint is the build fingerprint over (go version, seed,
	// scale) — the identity a snapshot-backed server reports on
	// /healthz and /stats so an incident bundle pins which world the
	// process was serving.
	Fingerprint uint64

	closer func() error
}

// Close releases the snapshot's backing mapping, if any. The world and
// every structure built from it (engine, datasets) must not be used
// afterwards. Worlds built in memory by BuildWorld close as a no-op.
func (w *World) Close() error {
	if w == nil || w.closer == nil {
		return nil
	}
	c := w.closer
	w.closer = nil
	return c()
}

// NewEngine wraps the world's frozen index in a read-only search
// engine. Each call returns a fresh engine with its own accounting
// clock; all of them share the immutable index.
func (w *World) NewEngine() *surfaceweb.Engine {
	return surfaceweb.NewFrozenEngine(w.Index)
}

// Dataset returns the stored dataset for a domain key, or nil.
func (w *World) Dataset(domain string) *schema.Dataset {
	for _, ds := range w.Datasets {
		if ds.Domain == domain {
			return ds
		}
	}
	return nil
}

// RestoreLedger rebuilds a provenance ledger from stored decisions.
// Record stamps Seq = current length, so replaying in order reproduces
// the stored sequence numbers and per-attribute indexes exactly.
func RestoreLedger(decisions []obs.Decision) *obs.Ledger {
	l := obs.NewLedger(nil)
	for _, d := range decisions {
		l.Record(d)
	}
	return l
}

// BuildConfig parameterizes an offline world build.
type BuildConfig struct {
	Seed  int64
	Scale float64 // corpus size multiplier; 0 means 1 (the server's size)
}

// BuildWorld runs the full WebIQ pipeline offline — corpus, datasets,
// deep-web pools, acquisition, matching, unification for every domain —
// and returns the result with the index frozen at the pre-pipeline
// vocabulary. At Scale 1 the outputs are byte-identical (report JSON,
// ledger NDJSON, unified interfaces) to what a fresh server with the
// same seed builds lazily per request.
//
// All domains are always built: the corpus generator draws from one
// sequential stream across domains, so a subset would change every
// document after the first omitted domain.
func BuildWorld(cfg BuildConfig) (*World, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.Scale < 0 {
		return nil, errf("negative corpus scale %g", cfg.Scale)
	}
	domains := kb.Domains()
	engine := surfaceweb.NewEngine()
	ccfg := surfaceweb.DefaultCorpusConfig()
	ccfg.Seed = cfg.Seed
	if cfg.Scale != 1 {
		ccfg = ccfg.Scaled(cfg.Scale)
	}
	surfaceweb.BuildCorpus(engine, domains, ccfg)
	// Vocabulary before any query compiles: query-only terms interned
	// during the pipeline must not leak into the frozen table, or a
	// fresh engine and a snapshot-loaded one would disagree on term IDs.
	v0 := engine.Terms().Len()

	dataCfg := dataset.DefaultConfig()
	dataCfg.Seed = cfg.Seed
	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = cfg.Seed

	w := &World{Meta: Meta{GoVersion: runtime.Version(), Seed: cfg.Seed, Scale: cfg.Scale}}
	w.Fingerprint = fingerprint(w.Meta.GoVersion, w.Meta.Seed, w.Meta.Scale)
	for _, dom := range domains {
		ds := dataset.Generate(dom, dataCfg)
		pool := deepweb.BuildPool(ds, dom, deepCfg)

		// Mirror server.buildUnified's wiring exactly, minus
		// observability (tracer, registry, fault clients) — none of
		// which changes pipeline outputs.
		ledger := obs.NewLedger(nil)
		icfg := iq.DefaultConfig()
		val := iq.NewValidator(engine, icfg)
		acq := iq.NewAcquirer(
			iq.NewSurface(engine, val, icfg),
			iq.NewAttrDeep(pool, icfg),
			iq.NewAttrSurface(val, icfg),
			iq.AllComponents(), icfg)
		acq.SetLedger(ledger)
		acq.SetAccounting(
			func() (time.Duration, int) { return engine.VirtualTime(), engine.QueryCount() },
			func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
		)
		rep := acq.AcquireAll(ds)

		m := matcher.New(matcher.DefaultConfig())
		m.SetLedger(ledger)
		res := m.Match(ds)
		u := unify.Build(ds, res)

		repJSON, err := json.Marshal(rep)
		if err != nil {
			return nil, errf("marshal report for %s: %v", dom.Key, err)
		}
		w.Datasets = append(w.Datasets, ds)
		w.Domains = append(w.Domains, DomainWorld{
			Domain:       dom.Key,
			Unified:      u,
			ReportJSON:   repJSON,
			Decisions:    ledger.Decisions(),
			Degradations: rep.Degradations,
		})
		w.Meta.Domains = append(w.Meta.Domains, dom.Key)
		w.Meta.Decisions += ledger.Len()
	}

	fi, err := engine.ExtractFrozen(v0)
	if err != nil {
		return nil, fmt.Errorf("snapshot: freeze index: %w", err)
	}
	w.Index = fi
	w.Meta.Docs = fi.NumDocs()
	w.Meta.Terms = fi.Terms().Len()
	w.Meta.Postings = len(fi.Data().PostDoc)
	return w, nil
}
