package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// The writer favors portability over speed: arrays are encoded with
// explicit little-endian stores (snapshot builds are offline), while
// the loader gets the zero-copy fast path. Output is deterministic:
// the same world always produces the same bytes.

func encodeU32(v []uint32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], x)
	}
	return b
}

func encodeU64(v []uint64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], x)
	}
	return b
}

type sectionPayload struct {
	id   uint32
	data []byte
}

// payloads assembles every section body in file order.
func (w *World) payloads() ([]sectionPayload, error) {
	if w.Index == nil {
		return nil, errf("world has no frozen index")
	}
	metaJSON, err := json.Marshal(w.Meta)
	if err != nil {
		return nil, errf("marshal meta: %v", err)
	}
	dsJSON, err := json.Marshal(w.Datasets)
	if err != nil {
		return nil, errf("marshal datasets: %v", err)
	}
	worldJSON, err := json.Marshal(w.Domains)
	if err != nil {
		return nil, errf("marshal world: %v", err)
	}
	termOff, termBlob := w.Index.Terms().Flatten(-1)
	d := w.Index.Data()
	return []sectionPayload{
		{secMeta, metaJSON},
		{secTermOff, encodeU32(termOff)},
		{secTermBlob, termBlob},
		{secPostOff, encodeU64(d.TermOff)},
		{secPostDoc, encodeU32(d.PostDoc)},
		{secPostPosOff, encodeU64(d.PostPosOff)},
		{secPositions, encodeU32(d.Positions)},
		{secDocTokOff, encodeU64(d.DocTokOff)},
		{secTokTerm, encodeU32(d.TokTerm)},
		{secTokStart, encodeU32(d.TokStart)},
		{secTokEnd, encodeU32(d.TokEnd)},
		{secTextOff, encodeU64(d.TextOff)},
		{secTextBlob, []byte(d.TextBlob)},
		{secTitleOff, encodeU64(d.TitleOff)},
		{secTitleBlob, []byte(d.TitleBlob)},
		{secDatasets, dsJSON},
		{secWorld, worldJSON},
	}, nil
}

func pad8(n uint64) uint64 { return (n + 7) &^ 7 }

// WriteTo serializes the world in snapshot format.
func (w *World) WriteTo(out io.Writer) (int64, error) {
	secs, err := w.payloads()
	if err != nil {
		return 0, err
	}
	h := header{
		version:     FormatVersion,
		sections:    uint32(len(secs)),
		seed:        w.Meta.Seed,
		scale:       w.Meta.Scale,
		fingerprint: fingerprint(w.Meta.GoVersion, w.Meta.Seed, w.Meta.Scale),
		tableOff:    headerSize,
	}
	tableEnd := h.tableOff + uint64(len(secs))*entrySize + 8

	// Lay out payloads: each starts at the next 8-aligned offset.
	entries := make([]byte, uint64(len(secs))*entrySize)
	cur := pad8(tableEnd)
	for i, s := range secs {
		e := entries[i*entrySize:]
		binary.LittleEndian.PutUint32(e[0:4], s.id)
		binary.LittleEndian.PutUint32(e[4:8], 0)
		binary.LittleEndian.PutUint64(e[8:16], cur)
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(s.data)))
		binary.LittleEndian.PutUint64(e[24:32], checksum(s.data))
		cur = pad8(cur + uint64(len(s.data)))
	}

	var n int64
	emit := func(b []byte) error {
		if err != nil {
			return err
		}
		var m int
		m, err = out.Write(b)
		n += int64(m)
		return err
	}
	var zeros [8]byte
	padTo := func(target uint64) error {
		return emit(zeros[:target-uint64(n)])
	}
	if err := emit(encodeHeader(h)); err != nil {
		return n, err
	}
	if err := emit(entries); err != nil {
		return n, err
	}
	var crc [8]byte
	binary.LittleEndian.PutUint64(crc[:], checksum(entries))
	if err := emit(crc[:]); err != nil {
		return n, err
	}
	for i, s := range secs {
		off := binary.LittleEndian.Uint64(entries[i*entrySize+8:])
		if err := padTo(off); err != nil {
			return n, err
		}
		if err := emit(s.data); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Bytes serializes the world into memory — handy for tests and fuzz
// seeding.
func (w *World) Bytes() ([]byte, error) {
	secs, err := w.payloads()
	if err != nil {
		return nil, err
	}
	total := pad8(headerSize + uint64(len(secs))*entrySize + 8)
	for _, s := range secs {
		total = pad8(total + uint64(len(s.data)))
	}
	buf := &sliceWriter{b: make([]byte, 0, total)}
	if _, err := w.WriteTo(buf); err != nil {
		return nil, err
	}
	return buf.b, nil
}

type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// Write atomically persists the world to path: the bytes land in a
// temporary file in the same directory, are synced, and replace any
// existing snapshot with a rename — a crash never leaves a torn file
// under the final name.
func (w *World) Write(path string) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return errf("create temp: %v", err)
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if _, err := w.WriteTo(f); err != nil {
		cleanup()
		return errf("write %s: %v", tmp, err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return errf("sync %s: %v", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return errf("close %s: %v", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return errf("rename %s -> %s: %v", tmp, path, err)
	}
	return nil
}
