//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mapFile maps the snapshot read-only. The returned buffer is
// page-aligned (so all section casts are aligned) and backed by the
// page cache: loading a warm snapshot touches no payload bytes beyond
// checksumming. Falls back to a plain read if mmap fails.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, errf("open %s: %v", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, errf("stat %s: %v", path, err)
	}
	size := st.Size()
	if size < headerSize {
		return nil, nil, errf("file truncated: %d bytes, header needs %d", size, headerSize)
	}
	if int64(int(size)) != size {
		return nil, nil, errf("file of %d bytes does not fit in memory on this platform", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return readFileFallback(path)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
