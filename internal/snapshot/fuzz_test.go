package snapshot

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzLoadBytes throws arbitrary bytes at the loader. The contract
// under fuzzing is absolute: any input either loads as a structurally
// valid world or fails with an error — never a panic, never an
// out-of-range access, never silently wrong data. The corpus is seeded
// from a real snapshot plus systematic mutations of it, so coverage
// starts deep inside the parser rather than at the magic check.
func FuzzLoadBytes(f *testing.F) {
	w, err := BuildWorld(BuildConfig{Seed: 3, Scale: 0.05})
	if err != nil {
		f.Fatalf("build seed world: %v", err)
	}
	raw, err := w.Bytes()
	if err != nil {
		f.Fatalf("serialize seed world: %v", err)
	}
	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(make([]byte, headerSize))
	f.Add(raw[:headerSize])
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:len(raw)-1])
	for _, off := range []int{8, 12, 40, 60, headerSize, headerSize + 8, headerSize + 16, len(raw) - 9} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	// Shifted copy: exercises the aligned-copy path.
	f.Add(append([]byte{0}, raw...))

	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := LoadBytes(data)
		if err != nil {
			if w != nil {
				t.Fatal("loader returned both a world and an error")
			}
			return
		}
		// Accepted input: the world must hold together well enough to
		// serve queries and re-serialize.
		if w.Index == nil {
			t.Fatal("loaded world has nil index")
		}
		e := w.NewEngine()
		e.NumHits(`"books such as"`)
		e.Search("+title", 3)
		if w.Meta.Docs != w.Index.NumDocs() {
			t.Fatalf("meta/docs mismatch slipped through: %d vs %d", w.Meta.Docs, w.Index.NumDocs())
		}
		if _, err := json.Marshal(w.Domains); err != nil {
			t.Fatalf("loaded world does not re-marshal: %v", err)
		}
		// A loaded world must serialize back to a loadable snapshot.
		out, err := w.Bytes()
		if err != nil {
			t.Fatalf("re-serialize accepted world: %v", err)
		}
		w2, err := LoadBytes(out)
		if err != nil {
			t.Fatalf("re-serialized world does not load: %v", err)
		}
		if !bytes.Equal(ledgerNDJSONBytes(w2), ledgerNDJSONBytes(w)) {
			t.Fatal("ledger bytes changed across re-serialization")
		}
	})
}

func ledgerNDJSONBytes(w *World) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, dw := range w.Domains {
		for _, d := range dw.Decisions {
			_ = enc.Encode(d)
		}
	}
	return buf.Bytes()
}
