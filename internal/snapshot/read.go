package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"unsafe"

	"webiq/internal/nlp"
	"webiq/internal/surfaceweb"
)

// The loader never trusts a byte: header, section table, and every
// payload are checksummed, then the reconstructed structures are
// re-validated by NewFrozenTermTable/NewFrozenIndex. Corruption of any
// kind — truncation, bit flips, hostile garbage — yields a descriptive
// error, never a panic and never silently wrong data.

// FileInfo summarizes a snapshot file for webiq-snapshot info/verify.
type FileInfo struct {
	Path          string        `json:"path"`
	Size          int64         `json:"size"`
	FormatVersion uint32        `json:"format_version"`
	Fingerprint   uint64        `json:"fingerprint"`
	Meta          Meta          `json:"meta"`
	Sections      []SectionInfo `json:"sections"`
}

// Load maps the snapshot at path and reconstructs the world from it.
// The index and document text serve directly from the mapping — no
// copies, no parsing — so load time is dominated by checksum
// verification. Call Close on the returned world when done; until
// then the file must not be modified.
func Load(path string) (*World, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	w, _, err := parse(data)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	w.closer = closer
	return w, nil
}

// LoadBytes reconstructs a world from an in-memory snapshot image.
// If the buffer is not 8-byte aligned it is copied into an aligned
// one, so any []byte works (fuzzing, network transfer).
func LoadBytes(b []byte) (*World, error) {
	w, _, err := parse(alignUp(b))
	return w, err
}

// Verify fully loads the snapshot — every checksum, every structural
// invariant — and reports what it found.
func Verify(path string) (*FileInfo, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	if closer != nil {
		defer closer()
	}
	w, sections, err := parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	h, _ := decodeHeader(data)
	return &FileInfo{
		Path:          path,
		Size:          int64(len(data)),
		FormatVersion: h.version,
		Fingerprint:   h.fingerprint,
		Meta:          w.Meta,
		Sections:      sections,
	}, nil
}

// Info reads only the header, section table, and meta section — enough
// to describe the file without touching the bulk payloads.
func Info(path string) (*FileInfo, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	if closer != nil {
		defer closer()
	}
	h, err := decodeHeader(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	sections, err := decodeTable(data, h)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	tableEnd := h.tableOff + uint64(h.sections)*entrySize + 8
	info := &FileInfo{
		Path:          path,
		Size:          int64(len(data)),
		FormatVersion: h.version,
		Fingerprint:   h.fingerprint,
		Sections:      sections,
	}
	for _, s := range sections {
		if s.ID != secMeta {
			continue
		}
		payload, err := sectionBytes(data, s, tableEnd)
		if err != nil {
			return nil, err
		}
		if err := verifySection(payload, s); err != nil {
			return nil, err
		}
		if err := json.Unmarshal(payload, &info.Meta); err != nil {
			return nil, errf("meta section: %v", err)
		}
		return info, nil
	}
	return nil, errf("missing section %s", SectionName(secMeta))
}

// alignUp returns b itself when 8-byte aligned, else an aligned copy.
func alignUp(b []byte) []byte {
	if len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return b
	}
	buf := make([]uint64, (len(b)+7)/8)
	dst := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(b))
	copy(dst, b)
	return dst
}

// parse validates a complete snapshot image and reconstructs the world.
// data must be 8-byte aligned and immutable for the world's lifetime.
func parse(data []byte) (*World, []SectionInfo, error) {
	if !hostLittleEndian() {
		return nil, nil, errf("big-endian host: the zero-copy format stores native little-endian words")
	}
	h, err := decodeHeader(data)
	if err != nil {
		return nil, nil, err
	}
	sections, err := decodeTable(data, h)
	if err != nil {
		return nil, nil, err
	}
	tableEnd := h.tableOff + uint64(h.sections)*entrySize + 8
	byID := make(map[uint32][]byte, len(sections))
	for _, s := range sections {
		if _, dup := byID[s.ID]; dup {
			return nil, nil, errf("duplicate section %s", s.Name)
		}
		payload, err := sectionBytes(data, s, tableEnd)
		if err != nil {
			return nil, nil, err
		}
		if err := verifySection(payload, s); err != nil {
			return nil, nil, err
		}
		byID[s.ID] = payload
	}
	for _, id := range requiredSections {
		if _, ok := byID[id]; !ok {
			return nil, nil, errf("missing section %s", SectionName(id))
		}
	}

	w := &World{}
	if err := json.Unmarshal(byID[secMeta], &w.Meta); err != nil {
		return nil, nil, errf("meta section: %v", err)
	}
	if w.Meta.Seed != h.seed || w.Meta.Scale != h.scale {
		return nil, nil, errf("header (seed %d, scale %g) disagrees with meta (seed %d, scale %g)",
			h.seed, h.scale, w.Meta.Seed, w.Meta.Scale)
	}
	if fp := fingerprint(w.Meta.GoVersion, w.Meta.Seed, w.Meta.Scale); fp != h.fingerprint {
		return nil, nil, errf("fingerprint mismatch: header %#x, recomputed %#x", h.fingerprint, fp)
	}
	w.Fingerprint = h.fingerprint

	termOff, err := castU32("term-offsets", byID[secTermOff])
	if err != nil {
		return nil, nil, err
	}
	terms, err := nlp.NewFrozenTermTable(termOff, asString(byID[secTermBlob]))
	if err != nil {
		return nil, nil, errf("%v", err)
	}
	var d surfaceweb.FrozenData
	u64s := []struct {
		dst  *[]uint64
		name string
		id   uint32
	}{
		{&d.TermOff, "posting-offsets", secPostOff},
		{&d.PostPosOff, "position-offsets", secPostPosOff},
		{&d.DocTokOff, "doc-token-offsets", secDocTokOff},
		{&d.TextOff, "text-offsets", secTextOff},
		{&d.TitleOff, "title-offsets", secTitleOff},
	}
	for _, f := range u64s {
		if *f.dst, err = castU64(f.name, byID[f.id]); err != nil {
			return nil, nil, err
		}
	}
	u32s := []struct {
		dst  *[]uint32
		name string
		id   uint32
	}{
		{&d.PostDoc, "posting-docs", secPostDoc},
		{&d.Positions, "positions", secPositions},
		{&d.TokTerm, "token-terms", secTokTerm},
		{&d.TokStart, "token-starts", secTokStart},
		{&d.TokEnd, "token-ends", secTokEnd},
	}
	for _, f := range u32s {
		if *f.dst, err = castU32(f.name, byID[f.id]); err != nil {
			return nil, nil, err
		}
	}
	d.TextBlob = asString(byID[secTextBlob])
	d.TitleBlob = asString(byID[secTitleBlob])
	fi, err := surfaceweb.NewFrozenIndex(terms, d)
	if err != nil {
		return nil, nil, errf("%v", err)
	}
	w.Index = fi

	if err := json.Unmarshal(byID[secDatasets], &w.Datasets); err != nil {
		return nil, nil, errf("datasets section: %v", err)
	}
	if err := json.Unmarshal(byID[secWorld], &w.Domains); err != nil {
		return nil, nil, errf("world section: %v", err)
	}
	if err := w.checkConsistent(); err != nil {
		return nil, nil, err
	}
	return w, sections, nil
}

// checkConsistent cross-checks the JSON payloads against the meta
// section and the index, so a snapshot whose sections were swapped in
// from different builds cannot pass as valid.
func (w *World) checkConsistent() error {
	if got, want := w.Index.Terms().Len(), w.Meta.Terms; got != want {
		return errf("meta says %d terms, index has %d", want, got)
	}
	if got, want := w.Index.NumDocs(), w.Meta.Docs; got != want {
		return errf("meta says %d documents, index has %d", want, got)
	}
	if got, want := len(w.Index.Data().PostDoc), w.Meta.Postings; got != want {
		return errf("meta says %d postings, index has %d", want, got)
	}
	if len(w.Datasets) != len(w.Meta.Domains) || len(w.Domains) != len(w.Meta.Domains) {
		return errf("meta lists %d domains, snapshot has %d datasets and %d worlds",
			len(w.Meta.Domains), len(w.Datasets), len(w.Domains))
	}
	decisions := 0
	for i, key := range w.Meta.Domains {
		if w.Datasets[i] == nil || w.Datasets[i].Domain != key {
			return errf("dataset %d is not for domain %s", i, key)
		}
		if w.Domains[i].Domain != key {
			return errf("world %d is for domain %q, meta says %q", i, w.Domains[i].Domain, key)
		}
		if w.Domains[i].Unified == nil {
			return errf("domain %s has no unified interface", key)
		}
		decisions += len(w.Domains[i].Decisions)
	}
	if decisions != w.Meta.Decisions {
		return errf("meta says %d decisions, snapshot has %d", w.Meta.Decisions, decisions)
	}
	return nil
}

// readFileFallback loads the snapshot with a plain read when mmap is
// unavailable; the returned buffer is aligned by the allocator.
func readFileFallback(path string) ([]byte, func() error, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, errf("read %s: %v", path, err)
	}
	return alignUp(b), nil, nil
}
