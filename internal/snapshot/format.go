// Package snapshot persists a fully built WebIQ world — interned term
// table, frozen inverted index, document text, generated datasets, and
// built unified interfaces — in a versioned, checksum-gated binary file
// laid out for instant cold start: every large array is stored as raw
// little-endian machine words at an 8-byte-aligned offset, so loading a
// snapshot is an mmap plus structural validation, with zero parse work
// on the index and corpus payloads.
//
// File layout (all integers little-endian, fixed width):
//
//	offset  size  field
//	0       8     magic "WIQSNAP\x00"
//	8       4     format version (uint32)
//	12      4     section count (uint32)
//	16      8     build seed (int64)
//	24      8     corpus scale (float64 bits)
//	32      8     build fingerprint (uint64; see fingerprint)
//	40      8     section table offset (uint64; 64 in version 1)
//	48      8     reserved (0)
//	56      8     CRC64-ECMA of header bytes [0,56)
//
// The section table is an array of 32-byte entries
//
//	{id uint32, reserved uint32, off uint64, len uint64, crc uint64}
//
// followed by one trailing CRC64 over all entry bytes. Every section
// payload starts at an 8-byte-aligned file offset (zero padding between
// sections) and carries its own CRC64, verified in full on every load.
// Any mismatch — magic, version, bounds, alignment, checksum — is a
// hard refusal with a descriptive error, never a panic.
//
// Versioning policy: readers require an exact format-version match and
// the presence of every section they know; unknown section IDs are
// ignored, so additive extensions need no version bump. Any change to
// the header, an existing section's layout, or the meaning of its
// contents bumps FormatVersion.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"unsafe"
)

// Magic identifies a WebIQ snapshot file.
const Magic = "WIQSNAP\x00"

// FormatVersion is the snapshot format this build reads and writes.
const FormatVersion = 1

const (
	headerSize  = 64
	entrySize   = 32
	maxSections = 1024 // sanity bound against corrupt counts
)

// Section IDs of format version 1, in file order.
const (
	secMeta       uint32 = 1  // build metadata (JSON)
	secTermOff    uint32 = 2  // term string offsets (uint32)
	secTermBlob   uint32 = 3  // term string blob (bytes)
	secPostOff    uint32 = 4  // per-term posting offsets (uint64)
	secPostDoc    uint32 = 5  // posting documents (uint32)
	secPostPosOff uint32 = 6  // per-posting position offsets (uint64)
	secPositions  uint32 = 7  // token positions (uint32)
	secDocTokOff  uint32 = 8  // per-document token offsets (uint64)
	secTokTerm    uint32 = 9  // token terms (uint32)
	secTokStart   uint32 = 10 // token start bytes (uint32)
	secTokEnd     uint32 = 11 // token end bytes (uint32)
	secTextOff    uint32 = 12 // per-document text offsets (uint64)
	secTextBlob   uint32 = 13 // document text blob (bytes)
	secTitleOff   uint32 = 14 // per-document title offsets (uint64)
	secTitleBlob  uint32 = 15 // document title blob (bytes)
	secDatasets   uint32 = 16 // post-acquisition datasets (JSON)
	secWorld      uint32 = 17 // unified interfaces + ledgers + reports (JSON)
)

// sectionNames maps IDs to the names webiq-snapshot info prints.
var sectionNames = map[uint32]string{
	secMeta: "meta", secTermOff: "term-offsets", secTermBlob: "term-blob",
	secPostOff: "posting-offsets", secPostDoc: "posting-docs",
	secPostPosOff: "position-offsets", secPositions: "positions",
	secDocTokOff: "doc-token-offsets", secTokTerm: "token-terms",
	secTokStart: "token-starts", secTokEnd: "token-ends",
	secTextOff: "text-offsets", secTextBlob: "text-blob",
	secTitleOff: "title-offsets", secTitleBlob: "title-blob",
	secDatasets: "datasets", secWorld: "world",
}

// requiredSections lists every section a version-1 reader needs, in the
// order the writer emits them.
var requiredSections = []uint32{
	secMeta, secTermOff, secTermBlob, secPostOff, secPostDoc,
	secPostPosOff, secPositions, secDocTokOff, secTokTerm, secTokStart,
	secTokEnd, secTextOff, secTextBlob, secTitleOff, secTitleBlob,
	secDatasets, secWorld,
}

// SectionName returns the human-readable name of a section ID.
func SectionName(id uint32) string {
	if n, ok := sectionNames[id]; ok {
		return n
	}
	return fmt.Sprintf("unknown-%d", id)
}

var crcTable = crc64.MakeTable(crc64.ECMA)

func checksum(b []byte) uint64 { return crc64.Checksum(b, crcTable) }

// header is the decoded fixed-width file header.
type header struct {
	version     uint32
	sections    uint32
	seed        int64
	scale       float64
	fingerprint uint64
	tableOff    uint64
}

func errf(format string, args ...any) error {
	return fmt.Errorf("snapshot: "+format, args...)
}

// hostLittleEndian reports whether the running machine is little-endian.
// The zero-parse load path reinterprets file bytes as native integers,
// so big-endian hosts must refuse snapshots rather than misread them.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

func encodeHeader(h header) []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:8], Magic)
	binary.LittleEndian.PutUint32(buf[8:12], h.version)
	binary.LittleEndian.PutUint32(buf[12:16], h.sections)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(h.seed))
	binary.LittleEndian.PutUint64(buf[24:32], math.Float64bits(h.scale))
	binary.LittleEndian.PutUint64(buf[32:40], h.fingerprint)
	binary.LittleEndian.PutUint64(buf[40:48], h.tableOff)
	binary.LittleEndian.PutUint64(buf[48:56], 0)
	binary.LittleEndian.PutUint64(buf[56:64], checksum(buf[:56]))
	return buf
}

func decodeHeader(data []byte) (header, error) {
	var h header
	if len(data) < headerSize {
		return h, errf("file truncated: %d bytes, header needs %d", len(data), headerSize)
	}
	if string(data[0:8]) != Magic {
		return h, errf("bad magic %q: not a WebIQ snapshot", data[0:8])
	}
	if got, want := binary.LittleEndian.Uint64(data[56:64]), checksum(data[:56]); got != want {
		return h, errf("header checksum mismatch: file %#x, computed %#x", got, want)
	}
	h.version = binary.LittleEndian.Uint32(data[8:12])
	if h.version != FormatVersion {
		return h, errf("format version %d, this build reads %d", h.version, FormatVersion)
	}
	h.sections = binary.LittleEndian.Uint32(data[12:16])
	if h.sections == 0 || h.sections > maxSections {
		return h, errf("implausible section count %d", h.sections)
	}
	h.seed = int64(binary.LittleEndian.Uint64(data[16:24]))
	h.scale = math.Float64frombits(binary.LittleEndian.Uint64(data[24:32]))
	h.fingerprint = binary.LittleEndian.Uint64(data[32:40])
	h.tableOff = binary.LittleEndian.Uint64(data[40:48])
	return h, nil
}

// SectionInfo describes one section-table entry.
type SectionInfo struct {
	ID   uint32 `json:"id"`
	Name string `json:"name"`
	Off  uint64 `json:"off"`
	Len  uint64 `json:"len"`
	CRC  uint64 `json:"crc"`
}

// decodeTable parses and checksums the section table.
func decodeTable(data []byte, h header) ([]SectionInfo, error) {
	n := uint64(h.sections)
	end := h.tableOff + n*entrySize + 8
	if h.tableOff < headerSize || end < h.tableOff || end > uint64(len(data)) {
		return nil, errf("section table [%d,%d) outside file of %d bytes", h.tableOff, end, len(data))
	}
	entries := data[h.tableOff : h.tableOff+n*entrySize]
	if got, want := binary.LittleEndian.Uint64(data[end-8:end]), checksum(entries); got != want {
		return nil, errf("section table checksum mismatch: file %#x, computed %#x", got, want)
	}
	out := make([]SectionInfo, n)
	for i := range out {
		e := entries[i*entrySize:]
		out[i] = SectionInfo{
			ID:  binary.LittleEndian.Uint32(e[0:4]),
			Off: binary.LittleEndian.Uint64(e[8:16]),
			Len: binary.LittleEndian.Uint64(e[16:24]),
			CRC: binary.LittleEndian.Uint64(e[24:32]),
		}
		out[i].Name = SectionName(out[i].ID)
	}
	return out, nil
}

// sectionBytes bounds-checks one entry against the file and returns its
// payload (without verifying the CRC; see verifySection).
func sectionBytes(data []byte, s SectionInfo, tableEnd uint64) ([]byte, error) {
	if s.Off%8 != 0 {
		return nil, errf("section %s at offset %d: not 8-byte aligned", s.Name, s.Off)
	}
	if s.Off < tableEnd || s.Off > uint64(len(data)) || s.Len > uint64(len(data))-s.Off {
		return nil, errf("section %s [%d,+%d) outside file of %d bytes", s.Name, s.Off, s.Len, len(data))
	}
	return data[s.Off : s.Off+s.Len], nil
}

func verifySection(payload []byte, s SectionInfo) error {
	if got := checksum(payload); got != s.CRC {
		return errf("section %s checksum mismatch: file %#x, computed %#x", s.Name, s.CRC, got)
	}
	return nil
}

// castU32 reinterprets a payload as a []uint32 without copying. The
// base must be 4-byte aligned (guaranteed: sections start 8-aligned in
// an mmap or aligned buffer) and the length a multiple of 4.
func castU32(name string, b []byte) ([]uint32, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b)%4 != 0 {
		return nil, errf("section %s: %d bytes is not a whole number of uint32s", name, len(b))
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, errf("section %s: payload not 4-byte aligned in memory", name)
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4), nil
}

// castU64 reinterprets a payload as a []uint64 without copying.
func castU64(name string, b []byte) ([]uint64, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b)%8 != 0 {
		return nil, errf("section %s: %d bytes is not a whole number of uint64s", name, len(b))
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, errf("section %s: payload not 8-byte aligned in memory", name)
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8), nil
}

// asString views a payload as a string without copying. The bytes are
// never mutated after load (read-only mapping), so the aliasing is safe.
func asString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// fingerprint derives the build fingerprint from the generator
// identity: Go toolchain version, seed, corpus scale, and format
// version. Info surfaces it so operators can tell two snapshots apart
// at a glance.
func fingerprint(goVersion string, seed int64, scale float64) uint64 {
	return checksum([]byte(fmt.Sprintf("%s|seed=%d|scale=%g|v%d", goVersion, seed, scale, FormatVersion)))
}
