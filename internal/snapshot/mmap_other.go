//go:build !unix

package snapshot

// mapFile reads the snapshot into an aligned buffer on platforms
// without a usable mmap.
func mapFile(path string) ([]byte, func() error, error) {
	return readFileFallback(path)
}
