package snapshot

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/obs"
	"webiq/internal/surfaceweb"
	"webiq/internal/unify"
	iq "webiq/internal/webiq"
)

// testWorld builds one small world per test binary; every test reads it
// and none mutates it.
var (
	testWorldOnce  sync.Once
	testWorldValue *World
	testWorldBytes []byte
	testWorldErr   error
)

const (
	testSeed  = 7
	testScale = 0.2
)

func testWorld(t *testing.T) (*World, []byte) {
	t.Helper()
	testWorldOnce.Do(func() {
		testWorldValue, testWorldErr = BuildWorld(BuildConfig{Seed: testSeed, Scale: testScale})
		if testWorldErr == nil {
			testWorldBytes, testWorldErr = testWorldValue.Bytes()
		}
	})
	if testWorldErr != nil {
		t.Fatalf("build test world: %v", testWorldErr)
	}
	return testWorldValue, testWorldBytes
}

// probeQueries returns searches a pipeline actually issues, plus
// unknown-term shapes.
func probeQueries() []string {
	var qs []string
	for _, d := range kb.Domains() {
		for _, c := range d.Concepts {
			name := strings.ToLower(c.Name)
			qs = append(qs,
				fmt.Sprintf("%q", name+"s such as"),
				fmt.Sprintf("%q +%s", name, d.DomainKeyword),
			)
		}
	}
	return append(qs, `"no such phrase anywhere"`, "+unknownterm", "")
}

// ledgerNDJSON renders decisions the way a ledger streams them.
func ledgerNDJSON(t *testing.T, decisions []obs.Decision) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, d := range decisions {
		if err := enc.Encode(d); err != nil {
			t.Fatalf("encode decision: %v", err)
		}
	}
	return buf.Bytes()
}

func TestWriteDeterministic(t *testing.T) {
	_, want := testWorld(t)
	w2, err := BuildWorld(BuildConfig{Seed: testSeed, Scale: testScale})
	if err != nil {
		t.Fatalf("second build: %v", err)
	}
	got, err := w2.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("two builds of the same world produced different snapshot bytes")
	}
}

// requireEqualWorlds compares every stored artifact between a loaded
// and a freshly built world, byte-for-byte where bytes are the
// contract.
func requireEqualWorlds(t *testing.T, got, want *World) {
	t.Helper()
	if !reflect.DeepEqual(got.Meta, want.Meta) {
		t.Errorf("meta differs:\nloaded %+v\nbuilt  %+v", got.Meta, want.Meta)
	}
	gd, _ := json.Marshal(got.Datasets)
	wd, _ := json.Marshal(want.Datasets)
	if !bytes.Equal(gd, wd) {
		t.Error("datasets differ after round trip")
	}
	if len(got.Domains) != len(want.Domains) {
		t.Fatalf("domain count: loaded %d, built %d", len(got.Domains), len(want.Domains))
	}
	for i := range want.Domains {
		g, w := got.Domains[i], want.Domains[i]
		if !bytes.Equal(g.ReportJSON, w.ReportJSON) {
			t.Errorf("%s: report JSON differs after round trip", w.Domain)
		}
		if !bytes.Equal(ledgerNDJSON(t, g.Decisions), ledgerNDJSON(t, w.Decisions)) {
			t.Errorf("%s: ledger NDJSON differs after round trip", w.Domain)
		}
		gu, _ := json.Marshal(g.Unified)
		wu, _ := json.Marshal(w.Unified)
		if !bytes.Equal(gu, wu) {
			t.Errorf("%s: unified interface differs after round trip", w.Domain)
		}
		if !reflect.DeepEqual(g.Degradations, w.Degradations) {
			t.Errorf("%s: degradations differ after round trip", w.Domain)
		}
	}
	ge, we := got.NewEngine(), want.NewEngine()
	qs := probeQueries()
	if !reflect.DeepEqual(ge.NumHitsBatch(qs), we.NumHitsBatch(qs)) {
		t.Error("batched hit counts differ after round trip")
	}
	for _, q := range qs {
		if !reflect.DeepEqual(ge.Search(q, 5), we.Search(q, 5)) {
			t.Errorf("Search(%q) differs after round trip", q)
		}
	}
}

func TestRoundTripBytes(t *testing.T) {
	want, raw := testWorld(t)
	got, err := LoadBytes(raw)
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	requireEqualWorlds(t, got, want)
}

// TestLoadBytesMisaligned feeds the loader deliberately misaligned
// buffers: the aligned-copy fallback must kick in.
func TestLoadBytesMisaligned(t *testing.T) {
	want, raw := testWorld(t)
	for shift := 1; shift < 8; shift++ {
		buf := make([]byte, len(raw)+shift)
		copy(buf[shift:], raw)
		got, err := LoadBytes(buf[shift:])
		if err != nil {
			t.Fatalf("shift %d: LoadBytes: %v", shift, err)
		}
		if !reflect.DeepEqual(got.Meta, want.Meta) {
			t.Fatalf("shift %d: meta differs", shift)
		}
	}
}

func TestRoundTripFile(t *testing.T) {
	want, raw := testWorld(t)
	path := filepath.Join(t.TempDir(), "world.snap")
	if err := want.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(onDisk, raw) {
		t.Error("Write and Bytes disagree")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	requireEqualWorlds(t, got, want)
	if err := got.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := got.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	info, err := Verify(path)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !reflect.DeepEqual(info.Meta, want.Meta) {
		t.Errorf("Verify meta: got %+v, want %+v", info.Meta, want.Meta)
	}
	if len(info.Sections) != len(requiredSections) {
		t.Errorf("Verify found %d sections, want %d", len(info.Sections), len(requiredSections))
	}
	light, err := Info(path)
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if !reflect.DeepEqual(light.Meta, want.Meta) {
		t.Errorf("Info meta: got %+v, want %+v", light.Meta, want.Meta)
	}
	if light.Fingerprint != info.Fingerprint || light.Fingerprint == 0 {
		t.Errorf("fingerprints disagree: info %#x, verify %#x", light.Fingerprint, info.Fingerprint)
	}
}

// TestPipelineEquivalenceOnFrozenEngine is the tentpole guarantee:
// running the acquisition + matching + unification pipeline against a
// snapshot-loaded frozen engine produces byte-identical reports,
// ledgers, and unified interfaces to the mutable-engine run that built
// the snapshot.
func TestPipelineEquivalenceOnFrozenEngine(t *testing.T) {
	want, raw := testWorld(t)
	loaded, err := LoadBytes(raw)
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	engine := loaded.NewEngine()

	dataCfg := dataset.DefaultConfig()
	dataCfg.Seed = testSeed
	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = testSeed
	for i, dom := range kb.Domains() {
		ds := dataset.Generate(dom, dataCfg)
		pool := deepweb.BuildPool(ds, dom, deepCfg)
		ledger := obs.NewLedger(nil)
		icfg := iq.DefaultConfig()
		val := iq.NewValidator(engine, icfg)
		acq := iq.NewAcquirer(
			iq.NewSurface(engine, val, icfg),
			iq.NewAttrDeep(pool, icfg),
			iq.NewAttrSurface(val, icfg),
			iq.AllComponents(), icfg)
		acq.SetLedger(ledger)
		acq.SetAccounting(
			func() (time.Duration, int) { return engine.VirtualTime(), engine.QueryCount() },
			func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
		)
		rep := acq.AcquireAll(ds)
		m := matcher.New(matcher.DefaultConfig())
		m.SetLedger(ledger)
		res := m.Match(ds)
		u := unify.Build(ds, res)

		repJSON, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("%s: marshal report: %v", dom.Key, err)
		}
		if !bytes.Equal(repJSON, want.Domains[i].ReportJSON) {
			t.Errorf("%s: report JSON differs between frozen and mutable pipelines", dom.Key)
		}
		if !bytes.Equal(ledgerNDJSON(t, ledger.Decisions()), ledgerNDJSON(t, want.Domains[i].Decisions)) {
			t.Errorf("%s: ledger NDJSON differs between frozen and mutable pipelines", dom.Key)
		}
		gu, _ := json.Marshal(u)
		wu, _ := json.Marshal(want.Domains[i].Unified)
		if !bytes.Equal(gu, wu) {
			t.Errorf("%s: unified interface differs between frozen and mutable pipelines", dom.Key)
		}
		dsJSON, _ := json.Marshal(ds)
		wantDS, _ := json.Marshal(want.Datasets[i])
		if !bytes.Equal(dsJSON, wantDS) {
			t.Errorf("%s: post-acquisition dataset differs between frozen and mutable pipelines", dom.Key)
		}
	}
}

// TestRestoreLedger pins the replay contract: sequence numbers and
// per-attribute lookups survive a store/restore cycle.
func TestRestoreLedger(t *testing.T) {
	want, _ := testWorld(t)
	dw := want.Domains[0]
	l := RestoreLedger(dw.Decisions)
	if l.Len() != len(dw.Decisions) {
		t.Fatalf("restored ledger has %d decisions, want %d", l.Len(), len(dw.Decisions))
	}
	if !bytes.Equal(ledgerNDJSON(t, l.Decisions()), ledgerNDJSON(t, dw.Decisions)) {
		t.Error("restored ledger decisions differ from stored")
	}
	var attr string
	for _, d := range dw.Decisions {
		if d.AttrID != "" {
			attr = d.AttrID
			break
		}
	}
	if attr != "" && len(l.ByAttr(attr)) == 0 {
		t.Errorf("restored ledger lost per-attribute index for %q", attr)
	}
}

// mustNotPanic wraps a loader call so any panic fails with the
// corruption context attached.
func mustNotPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: loader panicked: %v", what, r)
		}
	}()
	fn()
}

func TestCorruptTruncations(t *testing.T) {
	_, raw := testWorld(t)
	cuts := []int{0, 1, 8, headerSize - 1, headerSize, headerSize + 5,
		headerSize + len(requiredSections)*entrySize + 7, len(raw) / 3, len(raw) / 2, len(raw) - 1}
	for _, n := range cuts {
		what := fmt.Sprintf("truncate to %d", n)
		mustNotPanic(t, what, func() {
			if _, err := LoadBytes(raw[:n]); err == nil {
				t.Errorf("%s: loader accepted a truncated snapshot", what)
			} else if !strings.Contains(err.Error(), "snapshot:") {
				t.Errorf("%s: unhelpful error %v", what, err)
			}
		})
	}
}

func TestCorruptBitFlips(t *testing.T) {
	want, raw := testWorld(t)
	// Every header and table byte, then a spread of payload offsets in
	// every section (first, middle, last byte).
	var offsets []int
	tableEnd := headerSize + len(requiredSections)*entrySize + 8
	for i := 0; i < tableEnd; i++ {
		offsets = append(offsets, i)
	}
	info, err := Verify(writeTemp(t, raw))
	if err != nil {
		t.Fatalf("Verify pristine: %v", err)
	}
	for _, s := range info.Sections {
		if s.Len == 0 {
			continue
		}
		offsets = append(offsets, int(s.Off), int(s.Off+s.Len/2), int(s.Off+s.Len-1))
	}
	for _, off := range offsets {
		for _, bit := range []byte{0x01, 0x80} {
			what := fmt.Sprintf("flip bit %#x at offset %d", bit, off)
			mut := append([]byte(nil), raw...)
			mut[off] ^= bit
			mustNotPanic(t, what, func() {
				if _, err := LoadBytes(mut); err == nil {
					t.Errorf("%s: loader accepted a corrupted snapshot", what)
				}
			})
		}
	}
	// Padding bytes are the one uncovered region: flipping them must
	// either refuse or load the identical world — never wrong data.
	pad := -1
	for i := 1; i < len(info.Sections); i++ {
		gap := int(info.Sections[i].Off) - int(info.Sections[i-1].Off+info.Sections[i-1].Len)
		if gap > 0 {
			pad = int(info.Sections[i-1].Off + info.Sections[i-1].Len)
			break
		}
	}
	if pad >= 0 {
		mut := append([]byte(nil), raw...)
		mut[pad] ^= 0xff
		mustNotPanic(t, "flip padding", func() {
			if w, err := LoadBytes(mut); err == nil {
				if !reflect.DeepEqual(w.Meta, want.Meta) {
					t.Error("padding flip changed loaded metadata")
				}
			}
		})
	}
}

func TestCorruptGarbage(t *testing.T) {
	_, raw := testWorld(t)
	cases := map[string][]byte{
		"empty":        {},
		"not a file":   []byte("this is not a snapshot at all, just text"),
		"magic only":   []byte(Magic),
		"zero header":  make([]byte, headerSize),
		"random words": bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22, 0x33}, 64),
	}
	// A header claiming a huge section count must be refused, not
	// allocated for.
	huge := append([]byte(nil), raw[:headerSize]...)
	huge[12], huge[13], huge[14], huge[15] = 0xff, 0xff, 0xff, 0x7f
	cases["huge section count"] = huge
	// A version from the future must be refused by name.
	future := append([]byte(nil), raw...)
	future[8] = FormatVersion + 1
	cases["future version"] = future
	for what, b := range cases {
		mustNotPanic(t, what, func() {
			if _, err := LoadBytes(b); err == nil {
				t.Errorf("%s: loader accepted garbage", what)
			}
		})
	}
}

// TestCorruptSectionSwap rebuilds a snapshot whose meta disagrees with
// its payloads: the cross-checks must catch it even though every CRC is
// valid.
func TestCorruptSectionSwap(t *testing.T) {
	w, _ := testWorld(t)
	mutant := *w
	mutant.Meta.Docs++
	b, err := mutant.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	if _, err := LoadBytes(b); err == nil {
		t.Error("loader accepted a snapshot whose meta disagrees with its index")
	} else if !strings.Contains(err.Error(), "documents") {
		t.Errorf("unhelpful error %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Error("Load accepted a missing file")
	}
	if _, err := Info(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Error("Info accepted a missing file")
	}
}

func writeTemp(t *testing.T, b []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFrozenEngineIsReadOnly pins that engines handed out by a loaded
// world refuse growth.
func TestFrozenEngineIsReadOnly(t *testing.T) {
	_, raw := testWorld(t)
	w, err := LoadBytes(raw)
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	e := w.NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("Add on a snapshot-backed engine did not panic")
		}
	}()
	e.Add("title", "text")
}

// TestConcurrentLoadedReaders hammers one loaded world from many
// goroutines under -race: shared immutable state, per-engine clocks.
func TestConcurrentLoadedReaders(t *testing.T) {
	_, raw := testWorld(t)
	w, err := LoadBytes(raw)
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	qs := probeQueries()
	base := w.NewEngine()
	want := base.NumHitsBatch(qs)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := w.NewEngine()
			for r := 0; r < 5; r++ {
				if got := e.NumHitsBatch(qs); !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent batch hit counts diverged")
					return
				}
				for _, ds := range w.Datasets {
					_ = ds.Domain
				}
			}
		}()
	}
	wg.Wait()
}

// TestSurfacewebGobUnchanged guards the legacy gob corpus snapshot: a
// loaded binary snapshot writes the same gob bytes as the engine that
// built it.
func TestSurfacewebGobUnchanged(t *testing.T) {
	want, raw := testWorld(t)
	loaded, err := LoadBytes(raw)
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	var a, b bytes.Buffer
	if err := want.NewEngine().WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := loaded.NewEngine().WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("gob corpus snapshot differs after binary round trip")
	}
	if _, err := surfaceweb.ReadSnapshot(&b); err != nil {
		t.Errorf("gob snapshot from loaded engine unreadable: %v", err)
	}
}
