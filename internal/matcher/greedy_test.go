package matcher

import (
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
	"webiq/internal/schema"
)

func TestGreedyPairwiseBasics(t *testing.T) {
	ds := tinyDataset()
	res := NewGreedyPairwise(DefaultConfig()).Match(ds)
	want := []schema.MatchPair{
		schema.NewMatchPair("if0/city", "if1/city"),
		schema.NewMatchPair("if0/airline", "if1/airline"),
		schema.NewMatchPair("if0/class", "if1/class"),
	}
	for _, p := range want {
		if !res.Pairs[p] {
			t.Errorf("missing pair %v", p)
		}
	}
}

func TestGreedyPairwiseOneToOne(t *testing.T) {
	for _, dom := range kb.Domains() {
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		res := NewGreedyPairwise(DefaultConfig()).Match(ds)
		// Per interface pair, each attribute participates in at most one
		// match.
		type key struct{ ifcA, ifcB, attr string }
		used := map[key]bool{}
		byID := map[string]*schema.Attribute{}
		for _, a := range ds.AllAttributes() {
			byID[a.ID] = a
		}
		for p := range res.Pairs {
			a, b := byID[p.A], byID[p.B]
			ka := key{a.InterfaceID, b.InterfaceID, p.A}
			kb2 := key{a.InterfaceID, b.InterfaceID, p.B}
			if used[ka] || used[kb2] {
				t.Fatalf("%s: attribute matched twice within one interface pair", dom.Key)
			}
			used[ka] = true
			used[kb2] = true
		}
	}
}

func TestGreedyVsClusteringAggregation(t *testing.T) {
	// The clustering matcher aggregates evidence across interfaces and
	// should beat (or at least equal) per-pair greedy matching overall —
	// the motivation for clustering aggregation in the paper's lineage.
	var greedySum, clusterSum float64
	for _, dom := range kb.Domains() {
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		gold := ds.GoldPairs()
		greedySum += Evaluate(NewGreedyPairwise(DefaultConfig()).Match(ds).Pairs, gold).F1
		clusterSum += Evaluate(New(DefaultConfig()).Match(ds).Pairs, gold).F1
	}
	if clusterSum < greedySum-0.01 {
		t.Errorf("clustering aggregation (%.3f total F1) below greedy pairwise (%.3f)",
			clusterSum, greedySum)
	}
}

func TestGreedyComponentsPartition(t *testing.T) {
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	res := NewGreedyPairwise(DefaultConfig()).Match(ds)
	seen := map[string]int{}
	for _, c := range res.Clusters {
		for _, id := range c {
			seen[id]++
		}
	}
	for _, a := range ds.AllAttributes() {
		if seen[a.ID] != 1 {
			t.Errorf("attribute %s in %d components", a.ID, seen[a.ID])
		}
	}
}

func TestGreedyEmptyDataset(t *testing.T) {
	res := NewGreedyPairwise(DefaultConfig()).Match(&schema.Dataset{})
	if len(res.Pairs) != 0 || len(res.Clusters) != 0 {
		t.Errorf("empty dataset gave %+v", res)
	}
}
