package matcher

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
	"webiq/internal/schema"
)

// referenceMatch is the original O(n³) Match: it rescans every cluster
// pair to find the best merge. It is kept verbatim (modulo the extracted
// matrix build) as the executable specification the heap-based Match
// must reproduce byte for byte.
func (m *Matcher) referenceMatch(ds *schema.Dataset) *Result {
	attrs := ds.AllAttributes()
	n := len(attrs)

	simMat := make([][]float64, n)
	for i := range simMat {
		simMat[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := m.AttrSim(attrs[i], attrs[j])
			simMat[i][j] = s
			simMat[j][i] = s
		}
	}

	type cluster struct {
		members []int
		ifaces  map[string]bool
		alive   bool
	}
	clusters := make([]*cluster, n)
	cs := make([][]float64, n)
	for i := range clusters {
		clusters[i] = &cluster{
			members: []int{i},
			ifaces:  map[string]bool{attrs[i].InterfaceID: true},
			alive:   true,
		}
		cs[i] = make([]float64, n)
		copy(cs[i], simMat[i])
	}

	var mergeSims []float64
	conflict := func(a, b *cluster) bool {
		for ifc := range b.ifaces {
			if a.ifaces[ifc] {
				return true
			}
		}
		return false
	}

	for {
		bi, bj, best := -1, -1, m.cfg.Threshold
		for i := 0; i < n; i++ {
			if !clusters[i].alive {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !clusters[j].alive || cs[i][j] <= best {
					continue
				}
				if conflict(clusters[i], clusters[j]) {
					continue
				}
				bi, bj, best = i, j, cs[i][j]
			}
		}
		if bi < 0 {
			break
		}
		mergeSims = append(mergeSims, best)
		ni := float64(len(clusters[bi].members))
		nj := float64(len(clusters[bj].members))
		for k := 0; k < n; k++ {
			if k == bi || k == bj || !clusters[k].alive {
				continue
			}
			var v float64
			switch m.cfg.Linkage {
			case AverageLink:
				v = (ni*cs[bi][k] + nj*cs[bj][k]) / (ni + nj)
			case CompleteLink:
				v = cs[bi][k]
				if cs[bj][k] < v {
					v = cs[bj][k]
				}
			default: // SingleLink
				v = cs[bi][k]
				if cs[bj][k] > v {
					v = cs[bj][k]
				}
			}
			cs[bi][k] = v
			cs[k][bi] = v
		}
		clusters[bi].members = append(clusters[bi].members, clusters[bj].members...)
		for ifc := range clusters[bj].ifaces {
			clusters[bi].ifaces[ifc] = true
		}
		clusters[bj].alive = false
	}

	res := &Result{Pairs: map[schema.MatchPair]bool{}, MergeSims: mergeSims}
	for _, c := range clusters {
		if !c.alive {
			continue
		}
		ids := make([]string, len(c.members))
		for k, idx := range c.members {
			ids[k] = attrs[idx].ID
		}
		sort.Strings(ids)
		res.Clusters = append(res.Clusters, ids)
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				res.Pairs[schema.NewMatchPair(ids[x], ids[y])] = true
			}
		}
	}
	sort.Slice(res.Clusters, func(i, j int) bool {
		return res.Clusters[i][0] < res.Clusters[j][0]
	})
	return res
}

// TestMatchEquivalentToReference pins the heap-based Match against the
// O(n³) reference over every domain, linkage, and both paper thresholds,
// on datasets whose predefined values exercise real merge cascades.
func TestMatchEquivalentToReference(t *testing.T) {
	for _, dom := range kb.Domains() {
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		for _, linkage := range []Linkage{SingleLink, AverageLink, CompleteLink} {
			for _, tau := range []float64{0, 0.1} {
				cfg := DefaultConfig()
				cfg.Linkage = linkage
				cfg.Threshold = tau
				m := New(cfg)
				want := m.referenceMatch(ds)
				got := m.Match(ds)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s linkage=%s tau=%v: heap Match diverges from reference\nwant clusters: %v\ngot clusters:  %v\nwant sims: %v\ngot sims:  %v",
						dom.Key, linkage, tau, want.Clusters, got.Clusters, want.MergeSims, got.MergeSims)
				}
			}
		}
	}
}

// TestMatchEquivalenceAcrossSeeds varies the dataset seed so cluster
// sizes, interface conflicts, and tie patterns differ from the default
// fixture.
func TestMatchEquivalenceAcrossSeeds(t *testing.T) {
	dom := kb.DomainByKey("airfare")
	for _, seed := range []int64{7, 21, 99} {
		cfg := dataset.DefaultConfig()
		cfg.Seed = seed
		ds := dataset.Generate(dom, cfg)
		m := New(DefaultConfig())
		want := m.referenceMatch(ds)
		got := m.Match(ds)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d: heap Match diverges from reference", seed)
		}
	}
}

// BenchmarkReferenceMatch is the O(n³) reference on the synthetic
// merge-cascade dataset; compare with BenchmarkMatchMergeLoop to see
// the heap's effect isolated from the shared matrix-build cost.
func BenchmarkReferenceMatch(b *testing.B) {
	for _, size := range []struct{ ifaces, attrs int }{
		{20, 8}, {40, 8}, {80, 8},
	} {
		n := size.ifaces * size.attrs
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := syntheticDataset(size.ifaces, size.attrs)
			m := New(DefaultConfig())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.referenceMatch(ds)
			}
		})
	}
}

// TestMatchWorkerCountInvariant pins that the worker count only affects
// wall clock, never the Result.
func TestMatchWorkerCountInvariant(t *testing.T) {
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	base := New(DefaultConfig()).Match(ds)
	for _, workers := range []int{1, 2, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		got := New(cfg).Match(ds)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: Result differs", workers)
		}
	}
}
