package matcher

import "webiq/internal/schema"

// Metrics are the matching-accuracy measures of Section 6: precision is
// the fraction of predicted matches that are correct, recall the
// fraction of gold matches predicted, and F-1 their harmonic mean
// 2PR/(P+R).
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
	// Correct, Predicted, and Gold are the underlying counts.
	Correct, Predicted, Gold int
}

// Evaluate scores predicted match pairs against the gold pairs.
func Evaluate(pred, gold map[schema.MatchPair]bool) Metrics {
	m := Metrics{Predicted: len(pred), Gold: len(gold)}
	for p := range pred {
		if gold[p] {
			m.Correct++
		}
	}
	if m.Predicted > 0 {
		m.Precision = float64(m.Correct) / float64(m.Predicted)
	}
	if m.Gold > 0 {
		m.Recall = float64(m.Correct) / float64(m.Gold)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}
