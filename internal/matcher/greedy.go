package matcher

import (
	"sort"

	"webiq/internal/schema"
)

// GreedyPairwise is a Wise-Integrator-style comparison matcher (the
// related-work family of [12] in the paper): instead of clustering all
// attributes globally, it matches each pair of interfaces independently
// with greedy 1:1 assignment by attribute similarity, then unions the
// per-pair matches. It shares the Sim measure with the clustering
// matcher, so the comparison isolates the aggregation strategy — the
// motivation for the authors' clustering-aggregation work [27].
type GreedyPairwise struct {
	cfg Config
}

// NewGreedyPairwise returns the greedy matcher with the given weights;
// Threshold is the minimum similarity for a pair to be kept.
func NewGreedyPairwise(cfg Config) *GreedyPairwise {
	return &GreedyPairwise{cfg: cfg}
}

// Match runs greedy 1:1 matching over every pair of interfaces and
// returns the union of matched pairs. Clusters are the connected
// components of the resulting match graph (for comparability with the
// clustering matcher's output shape).
func (g *GreedyPairwise) Match(ds *schema.Dataset) *Result {
	m := New(g.cfg)
	res := &Result{Pairs: map[schema.MatchPair]bool{}}

	for i := 0; i < len(ds.Interfaces); i++ {
		for j := i + 1; j < len(ds.Interfaces); j++ {
			g.matchPair(m, ds.Interfaces[i], ds.Interfaces[j], res)
		}
	}
	res.Clusters = connectedComponents(ds, res.Pairs)
	return res
}

// matchPair greedily assigns attributes of a to attributes of b in
// decreasing similarity order, each attribute used at most once.
func (g *GreedyPairwise) matchPair(m *Matcher, a, b *schema.Interface, res *Result) {
	type cand struct {
		ai, bi int
		sim    float64
	}
	var cands []cand
	for ai, x := range a.Attributes {
		for bi, y := range b.Attributes {
			if s := m.AttrSim(x, y); s > g.cfg.Threshold {
				cands = append(cands, cand{ai, bi, s})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		if cands[i].ai != cands[j].ai {
			return cands[i].ai < cands[j].ai
		}
		return cands[i].bi < cands[j].bi
	})
	usedA := map[int]bool{}
	usedB := map[int]bool{}
	for _, c := range cands {
		if usedA[c.ai] || usedB[c.bi] {
			continue
		}
		usedA[c.ai] = true
		usedB[c.bi] = true
		res.Pairs[schema.NewMatchPair(a.Attributes[c.ai].ID, b.Attributes[c.bi].ID)] = true
	}
}

// connectedComponents groups attribute IDs into the components of the
// match graph.
func connectedComponents(ds *schema.Dataset, pairs map[schema.MatchPair]bool) [][]string {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, attr := range ds.AllAttributes() {
		parent[attr.ID] = attr.ID
	}
	for p := range pairs {
		ra, rb := find(p.A), find(p.B)
		if ra != rb {
			parent[ra] = rb
		}
	}
	groups := map[string][]string{}
	for _, attr := range ds.AllAttributes() {
		r := find(attr.ID)
		groups[r] = append(groups[r], attr.ID)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out [][]string
	for _, k := range keys {
		ids := groups[k]
		sort.Strings(ids)
		out = append(out, ids)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
