package matcher

import (
	"context"
	"math"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
	"webiq/internal/obs"
)

// TestMergeDecisionsMatchMergeSims pins the matcher's provenance
// contract: every cluster merge is recorded as one ledger decision, in
// merge order, whose Score is the cluster similarity from
// Result.MergeSims and whose α·LabelSim + β·DomSim breakdown recomputes
// that similarity (exact for single link, where the cluster similarity
// is realized by the strongest attribute pair).
func TestMergeDecisionsMatchMergeSims(t *testing.T) {
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	cfg := DefaultConfig()
	m := New(cfg)
	ledger := obs.NewLedger(nil)
	m.SetLedger(ledger)
	tr := obs.NewTracer(nil)
	m.SetSpanTracer(tr)

	ctx, root := tr.StartSpan(context.Background(), "test")
	traceID := root.TraceID()
	res := m.MatchCtx(ctx, ds)
	root.End()

	var merges []obs.Decision
	for _, d := range ledger.Decisions() {
		if d.Component == "matcher" && d.Verdict == "merge" {
			merges = append(merges, d)
		}
	}
	if len(res.MergeSims) == 0 {
		t.Fatal("no merges performed; contract check vacuous")
	}
	if len(merges) != len(res.MergeSims) {
		t.Fatalf("merge decisions = %d, MergeSims = %d", len(merges), len(res.MergeSims))
	}

	clusterOf := map[string]int{}
	for ci, c := range res.Clusters {
		for _, id := range c {
			clusterOf[id] = ci
		}
	}
	for i, d := range merges {
		if d.MergeOrder != i+1 {
			t.Errorf("merge %d has order %d", i, d.MergeOrder)
		}
		if d.Score != res.MergeSims[i] {
			t.Errorf("merge %d score = %v, MergeSims says %v", i, d.Score, res.MergeSims[i])
		}
		if d.AttrID == "" || d.OtherID == "" || d.AttrID == d.OtherID {
			t.Errorf("merge %d endpoints = %q/%q", i, d.AttrID, d.OtherID)
		}
		if clusterOf[d.AttrID] != clusterOf[d.OtherID] {
			t.Errorf("merge %d endpoints %q and %q landed in different clusters",
				i, d.AttrID, d.OtherID)
		}
		if got := cfg.Alpha*d.LabelSim + cfg.Beta*d.DomSim; math.Abs(got-d.Score) > 1e-9 {
			t.Errorf("merge %d breakdown %.1f·%v + %.1f·%v = %v, score says %v",
				i, cfg.Alpha, d.LabelSim, cfg.Beta, d.DomSim, got, d.Score)
		}
		if d.TraceID != traceID {
			t.Errorf("merge %d trace = %q, want %q", i, d.TraceID, traceID)
		}
	}

	// The run emitted a "match" span joined to the caller's trace.
	foundMatch := false
	for _, r := range tr.TraceRecords(traceID) {
		if r.Name == "match" {
			foundMatch = true
		}
	}
	if !foundMatch {
		t.Error("no match span recorded under the caller's trace")
	}
}

// TestMatchLedgerDoesNotPerturbResult pins that installing the ledger
// leaves the matcher output identical.
func TestMatchLedgerDoesNotPerturbResult(t *testing.T) {
	ds := tinyDataset()
	plain := New(DefaultConfig()).Match(ds)
	m := New(DefaultConfig())
	m.SetLedger(obs.NewLedger(nil))
	led := m.Match(ds)
	if len(plain.Pairs) != len(led.Pairs) {
		t.Fatalf("pairs = %d vs %d with ledger", len(plain.Pairs), len(led.Pairs))
	}
	for p := range plain.Pairs {
		if !led.Pairs[p] {
			t.Errorf("ledger run missing pair %v", p)
		}
	}
	if len(plain.MergeSims) != len(led.MergeSims) {
		t.Fatal("merge sequences differ with ledger")
	}
	for i := range plain.MergeSims {
		if plain.MergeSims[i] != led.MergeSims[i] {
			t.Errorf("merge %d sim %v vs %v with ledger", i, plain.MergeSims[i], led.MergeSims[i])
		}
	}
}
