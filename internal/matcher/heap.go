package matcher

import (
	"runtime"
	"sync"
)

// defaultWorkers is the worker count used when Config.Workers is 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// pairEntry is a candidate cluster pair in the merge heap, keyed by the
// cluster-similarity value it was pushed with; a popped entry whose
// value no longer matches the live matrix is a stale duplicate.
type pairEntry struct {
	sim  float64
	i, j int // cluster indices, i < j
}

// pairHeap is a max-heap of candidate pairs ordered (sim desc, i asc,
// j asc) — the selection order of a full best-pair rescan that accepts
// only strictly greater similarities.
type pairHeap []pairEntry

func (h pairHeap) Len() int { return len(h) }

func (h pairHeap) Less(a, b int) bool {
	if h[a].sim != h[b].sim {
		return h[a].sim > h[b].sim
	}
	if h[a].i != h[b].i {
		return h[a].i < h[b].i
	}
	return h[a].j < h[b].j
}

func (h pairHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

func (h *pairHeap) Push(x any) { *h = append(*h, x.(pairEntry)) }

func (h *pairHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// parallelRows runs f(i) for every row i in [0, n) on up to workers
// goroutines (workers <= 0 means GOMAXPROCS), blocking until all rows
// are done. Rows are handed out dynamically, which balances the
// triangular row costs of a pairwise matrix build.
func parallelRows(n, workers int, f func(int)) {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next struct {
		sync.Mutex
		i int
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := next.i
				next.i++
				next.Unlock()
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
