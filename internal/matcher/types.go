// Package matcher implements an IceQ-style interface matcher (the
// paper's reference matching system): attribute similarity combines
// label similarity and instance-domain similarity
// (Sim = α·LabelSim + β·DomSim), and attributes are grouped with
// constrained agglomerative clustering. Each cluster yields the matches
// between its members.
package matcher

import (
	"regexp"
	"strconv"
	"strings"

	"webiq/internal/sim"
)

// ValueType is a type inferred from an attribute's instance values —
// the inventory IceQ's domain similarity distinguishes (integer, real,
// monetary values, date, string).
type ValueType int

// Inferred value types.
const (
	TypeString ValueType = iota
	TypeInteger
	TypeReal
	TypeMonetary
	TypeDate
)

// String returns the type name.
func (t ValueType) String() string {
	switch t {
	case TypeInteger:
		return "integer"
	case TypeReal:
		return "real"
	case TypeMonetary:
		return "monetary"
	case TypeDate:
		return "date"
	default:
		return "string"
	}
}

var (
	monetaryRe = regexp.MustCompile(`^\$\s?\d{1,3}(,\d{3})*(\.\d+)?$|^\$\s?\d+(\.\d+)?$`)
	integerRe  = regexp.MustCompile(`^\d{1,3}(,\d{3})+$|^\d+$`)
	realValRe  = regexp.MustCompile(`^\d+\.\d+$`)
)

var monthNames = map[string]string{
	"january": "jan", "february": "feb", "march": "mar", "april": "apr",
	"may": "may", "june": "jun", "july": "jul", "august": "aug",
	"september": "sep", "october": "oct", "november": "nov",
	"december": "dec",
	"jan":      "jan", "feb": "feb", "mar": "mar", "apr": "apr",
	"jun": "jun", "jul": "jul", "aug": "aug", "sep": "sep",
	"oct": "oct", "nov": "nov", "dec": "dec",
}

// classifyValue types a single value.
func classifyValue(v string) ValueType {
	v = strings.TrimSpace(v)
	switch {
	case monetaryRe.MatchString(v):
		return TypeMonetary
	case realValRe.MatchString(v):
		return TypeReal
	case integerRe.MatchString(v):
		return TypeInteger
	}
	if _, ok := monthNames[strings.ToLower(v)]; ok {
		return TypeDate
	}
	// "Jan 15"-style values.
	fields := strings.Fields(strings.ToLower(v))
	if len(fields) == 2 {
		if _, ok := monthNames[fields[0]]; ok && integerRe.MatchString(fields[1]) {
			return TypeDate
		}
	}
	return TypeString
}

// InferType infers an attribute domain's type by majority vote (>= 60%)
// over its values; ties and mixed domains default to string.
func InferType(values []string) ValueType {
	if len(values) == 0 {
		return TypeString
	}
	counts := map[ValueType]int{}
	for _, v := range values {
		counts[classifyValue(v)]++
	}
	best, bestN := TypeString, 0
	for t, n := range counts {
		if n > bestN {
			best, bestN = t, n
		}
	}
	if float64(bestN) >= 0.6*float64(len(values)) {
		return best
	}
	return TypeString
}

// numericValue parses a numeric or monetary value.
func numericValue(v string) (float64, bool) {
	v = strings.TrimSpace(v)
	v = strings.TrimPrefix(v, "$")
	v = strings.TrimSpace(v)
	v = strings.ReplaceAll(v, ",", "")
	f, err := strconv.ParseFloat(v, 64)
	return f, err == nil
}

// DomSim is the domain similarity of two value sets, following IceQ:
// it compares the inferred types and the values. Different types give
// zero; numeric types compare range overlap; dates and strings compare
// value overlap (dates after month normalization).
func DomSim(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ta, tb := InferType(a), InferType(b)
	if ta != tb {
		return 0
	}
	switch ta {
	case TypeInteger, TypeReal, TypeMonetary:
		return rangeOverlap(a, b)
	case TypeDate:
		return sim.ValueOverlap(normalizeMonths(a), normalizeMonths(b))
	default:
		return sim.ValueOverlap(a, b)
	}
}

// rangeOverlap is the Jaccard overlap of the [min,max] intervals of two
// numeric value sets.
func rangeOverlap(a, b []string) float64 {
	loA, hiA, okA := valueRange(a)
	loB, hiB, okB := valueRange(b)
	return boundsOverlap(loA, hiA, okA, loB, hiB, okB)
}

// boundsOverlap is rangeOverlap over already-extracted value ranges.
func boundsOverlap(loA, hiA float64, okA bool, loB, hiB float64, okB bool) float64 {
	if !okA || !okB {
		return 0
	}
	lo := loA
	if loB > lo {
		lo = loB
	}
	hi := hiA
	if hiB < hi {
		hi = hiB
	}
	if hi < lo {
		return 0
	}
	unionLo := loA
	if loB < unionLo {
		unionLo = loB
	}
	unionHi := hiA
	if hiB > unionHi {
		unionHi = hiB
	}
	if unionHi == unionLo {
		return 1 // both ranges are the same single point
	}
	return (hi - lo) / (unionHi - unionLo)
}

func valueRange(values []string) (lo, hi float64, ok bool) {
	first := true
	for _, v := range values {
		f, good := numericValue(v)
		if !good {
			continue
		}
		if first {
			lo, hi, first = f, f, false
			continue
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return lo, hi, !first
}

func normalizeMonths(values []string) []string {
	out := make([]string, len(values))
	for i, v := range values {
		fields := strings.Fields(strings.ToLower(v))
		if len(fields) >= 1 {
			if m, ok := monthNames[fields[0]]; ok {
				out[i] = m
				continue
			}
		}
		out[i] = strings.ToLower(v)
	}
	return out
}
