package matcher

import (
	"webiq/internal/nlp"
	"webiq/internal/schema"
	"webiq/internal/sim"
)

// attrProfile caches the pure per-attribute facts AttrSim derives from
// an attribute before comparing it to another: the inferred value type,
// the interned folded value set (month-normalized for dates), and the
// numeric range. Profiling each attribute once turns the matrix build's
// per-pair type inference and set folding — the regexp-heavy part —
// into a linear precomputation with bitwise-identical similarities.
// Values are folded once into term IDs of a table shared across the
// Match call, so the O(n²) pairwise overlaps compare integers.
type attrProfile struct {
	labelID int
	typ     ValueType
	empty   bool                // no instances at all
	foldSet map[uint32]struct{} // interned folded values; month-normalized when typ is date
	lo, hi  float64
	rangeOK bool
}

// buildProfiles profiles every attribute and returns the profiles plus
// the distinct-label similarity matrix; profile i's labelID indexes it.
// The per-attribute work runs on the matcher's worker pool.
func buildProfiles(attrs []*schema.Attribute, workers int) ([]attrProfile, [][]float64) {
	n := len(attrs)
	profiles := make([]attrProfile, n)
	labelIDs := map[string]int{}
	var labels []string
	for i, a := range attrs {
		id, ok := labelIDs[a.Label]
		if !ok {
			id = len(labels)
			labelIDs[a.Label] = id
			labels = append(labels, a.Label)
		}
		profiles[i].labelID = id
	}

	// One term table per Match call: value IDs are only compared within
	// this profile set, and the table (with its interned strings) is
	// released when the profiles are.
	terms := nlp.NewTermTable()
	parallelRows(n, workers, func(i int) {
		values := attrs[i].AllInstances()
		p := &profiles[i]
		if len(values) == 0 {
			p.empty = true
			return
		}
		p.typ = InferType(values)
		switch p.typ {
		case TypeInteger, TypeReal, TypeMonetary:
			p.lo, p.hi, p.rangeOK = valueRange(values)
		case TypeDate:
			p.foldSet = sim.FoldSetIDs(normalizeMonths(values), terms)
		default:
			p.foldSet = sim.FoldSetIDs(values, terms)
		}
	})

	vecs := make([]sim.Vector, len(labels))
	parallelRows(len(labels), workers, func(i int) {
		vecs[i] = sim.LabelVector(labels[i])
	})
	labelSims := make([][]float64, len(labels))
	parallelRows(len(labels), workers, func(i int) {
		labelSims[i] = make([]float64, len(labels))
		for j := range labels {
			labelSims[i][j] = vecs[i].Cosine(vecs[j])
		}
	})
	return profiles, labelSims
}

// domSim is DomSim over precomputed profiles: identical output, with
// the per-attribute derivations already done.
func domSim(a, b *attrProfile) float64 {
	if a.empty || b.empty || a.typ != b.typ {
		return 0
	}
	switch a.typ {
	case TypeInteger, TypeReal, TypeMonetary:
		return boundsOverlap(a.lo, a.hi, a.rangeOK, b.lo, b.hi, b.rangeOK)
	default: // TypeDate and TypeString share the set-overlap measure.
		return sim.OverlapIDSets(a.foldSet, b.foldSet)
	}
}
