package matcher

import (
	"sort"

	"webiq/internal/schema"
)

// Interactive threshold learning, after IceQ: "during the clustering
// process IceQ can also interact with the user to automatically learn a
// thresholding value". The paper runs IceQ in its automatic mode and
// sets τ manually; this file supplies the interactive mode with a
// simulated user (an Oracle), so the "+ threshold" condition can use a
// learned value instead of a hand-set one.

// Oracle answers whether two attributes (by ID) truly match. Tests and
// experiments back it with the gold standard; a deployment would ask a
// person.
type Oracle func(a, b string) bool

// GoldOracle builds an Oracle from a dataset's gold pairs.
func GoldOracle(ds *schema.Dataset) Oracle {
	gold := ds.GoldPairs()
	return func(a, b string) bool { return gold[schema.NewMatchPair(a, b)] }
}

// LearnThreshold picks a clustering threshold by limited interaction:
// it enumerates candidate thresholds from the merge similarities of a
// τ=0 run, asks the oracle about up to budget pairs that distinguish
// the candidates, and returns the candidate scoring the best F-1 on the
// answered sample (ties go to the smaller threshold). The second return
// is the number of questions actually asked.
func (m *Matcher) LearnThreshold(ds *schema.Dataset, oracle Oracle, budget int) (float64, int) {
	base := m.Match(ds)
	if len(base.MergeSims) == 0 || budget <= 0 {
		return m.cfg.Threshold, 0
	}

	// Candidate thresholds: 0 plus midpoints below each distinct merge
	// similarity (capped to keep the match reruns bounded).
	sims := append([]float64(nil), base.MergeSims...)
	sort.Float64s(sims)
	var candidates []float64
	prev := 0.0
	for _, s := range sims {
		if s > prev {
			candidates = append(candidates, prev/2+s/2)
			prev = s
		}
	}
	candidates = append([]float64{0}, candidates...)
	if len(candidates) > 12 {
		// Thin evenly, keeping the extremes.
		step := float64(len(candidates)-1) / 11
		var thinned []float64
		for i := 0; i < 12; i++ {
			thinned = append(thinned, candidates[int(float64(i)*step+0.5)])
		}
		candidates = thinned
	}

	// Predicted pair sets per candidate.
	results := make([]map[schema.MatchPair]bool, len(candidates))
	for i, tau := range candidates {
		cfg := m.cfg
		cfg.Threshold = tau
		results[i] = New(cfg).Match(ds).Pairs
	}

	// Informative pairs: those on which candidates disagree (present in
	// some result, absent in another). The loosest candidate's pairs are
	// the superset under nested thresholds.
	union := map[schema.MatchPair]bool{}
	for _, r := range results {
		for p := range r {
			union[p] = true
		}
	}
	var informative []schema.MatchPair
	for p := range union {
		inAll := true
		for _, r := range results {
			if !r[p] {
				inAll = false
				break
			}
		}
		if !inAll {
			informative = append(informative, p)
		}
	}
	sort.Slice(informative, func(i, j int) bool {
		if informative[i].A != informative[j].A {
			return informative[i].A < informative[j].A
		}
		return informative[i].B < informative[j].B
	})
	if len(informative) > budget {
		// Spread the questions evenly over the informative pairs.
		step := float64(len(informative)) / float64(budget)
		var sampled []schema.MatchPair
		for i := 0; i < budget; i++ {
			sampled = append(sampled, informative[int(float64(i)*step)])
		}
		informative = sampled
	}

	// Ask the oracle and score each candidate on the answered sample.
	answers := map[schema.MatchPair]bool{}
	for _, p := range informative {
		answers[p] = oracle(p.A, p.B)
	}
	bestTau, bestF1 := m.cfg.Threshold, -1.0
	for i, tau := range candidates {
		var tp, fp, fn int
		for p, truth := range answers {
			pred := results[i][p]
			switch {
			case pred && truth:
				tp++
			case pred && !truth:
				fp++
			case !pred && truth:
				fn++
			}
		}
		f1 := 0.0
		if 2*tp+fp+fn > 0 {
			f1 = float64(2*tp) / float64(2*tp+fp+fn)
		}
		if f1 > bestF1 || (f1 == bestF1 && tau < bestTau) {
			bestF1, bestTau = f1, tau
		}
	}
	return bestTau, len(answers)
}
