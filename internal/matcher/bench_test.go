package matcher

import (
	"fmt"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
	"webiq/internal/schema"
)

// syntheticDataset builds a dataset of ifaces interfaces with attrsPer
// attributes each, with overlapping label vocabulary so the merge loop
// performs long merge cascades — the regime where the O(n³) rescan
// dominated.
func syntheticDataset(ifaces, attrsPer int) *schema.Dataset {
	labels := []string{
		"Title", "Author", "Publisher", "Price", "Format", "Subject",
		"Keyword", "Category", "Year", "Edition", "Language", "ISBN",
	}
	ds := &schema.Dataset{Domain: "synthetic"}
	for i := 0; i < ifaces; i++ {
		ifc := &schema.Interface{ID: fmt.Sprintf("syn/if%03d", i)}
		for j := 0; j < attrsPer; j++ {
			l := labels[(i+j)%len(labels)]
			ifc.Attributes = append(ifc.Attributes, &schema.Attribute{
				ID:          fmt.Sprintf("%s/a%d", ifc.ID, j),
				InterfaceID: ifc.ID,
				Label:       l,
				Instances:   []string{l + " one", l + " two", l + " three"},
			})
		}
		ds.Interfaces = append(ds.Interfaces, ifc)
	}
	return ds
}

// BenchmarkMatchMergeLoop isolates the clustering loop's asymptotics:
// synthetic datasets keep AttrSim cheap, so the heap-vs-rescan
// difference in the merge phase dominates as n grows.
func BenchmarkMatchMergeLoop(b *testing.B) {
	for _, size := range []struct{ ifaces, attrs int }{
		{20, 8}, {40, 8}, {80, 8},
	} {
		n := size.ifaces * size.attrs
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := syntheticDataset(size.ifaces, size.attrs)
			m := New(DefaultConfig())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Match(ds)
			}
		})
	}
}

// BenchmarkMatchDomains is the end-to-end matcher cost on the five
// paper domains with predefined values only (no acquisition).
func BenchmarkMatchDomains(b *testing.B) {
	for _, dom := range kb.Domains() {
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		b.Run(dom.Key, func(b *testing.B) {
			m := New(DefaultConfig())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Match(ds)
			}
		})
	}
}
