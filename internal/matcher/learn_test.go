package matcher

import (
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
)

func TestLearnThresholdImprovesOrMatches(t *testing.T) {
	for _, key := range []string{"auto", "job"} {
		dom := kb.DomainByKey(key)
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		m := New(DefaultConfig())
		gold := ds.GoldPairs()
		baseF1 := Evaluate(m.Match(ds).Pairs, gold).F1

		tau, asked := m.LearnThreshold(ds, GoldOracle(ds), 40)
		if asked > 40 {
			t.Errorf("%s: asked %d questions, budget 40", key, asked)
		}
		cfg := DefaultConfig()
		cfg.Threshold = tau
		learnedF1 := Evaluate(New(cfg).Match(ds).Pairs, gold).F1
		if learnedF1 < baseF1-0.02 {
			t.Errorf("%s: learned tau %.3f gives F1 %.3f, notably below tau=0 (%.3f)",
				key, tau, learnedF1, baseF1)
		}
	}
}

func TestLearnThresholdDeterministic(t *testing.T) {
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	m := New(DefaultConfig())
	t1, n1 := m.LearnThreshold(ds, GoldOracle(ds), 25)
	t2, n2 := m.LearnThreshold(ds, GoldOracle(ds), 25)
	if t1 != t2 || n1 != n2 {
		t.Errorf("nondeterministic learning: (%v,%d) vs (%v,%d)", t1, n1, t2, n2)
	}
}

func TestLearnThresholdZeroBudget(t *testing.T) {
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	m := New(DefaultConfig())
	tau, asked := m.LearnThreshold(ds, GoldOracle(ds), 0)
	if asked != 0 {
		t.Errorf("asked %d questions with zero budget", asked)
	}
	if tau != m.cfg.Threshold {
		t.Errorf("tau = %v, want the configured default", tau)
	}
}

func TestGoldOracle(t *testing.T) {
	dom := kb.DomainByKey("auto")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	oracle := GoldOracle(ds)
	var pair [2]string
	for p := range ds.GoldPairs() {
		pair = [2]string{p.A, p.B}
		break
	}
	if !oracle(pair[0], pair[1]) || !oracle(pair[1], pair[0]) {
		t.Error("oracle should confirm gold pairs in either order")
	}
	if oracle(pair[0], pair[0]+"x") {
		t.Error("oracle confirmed a non-pair")
	}
}

func TestMergeSimsRecorded(t *testing.T) {
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	res := New(DefaultConfig()).Match(ds)
	if len(res.MergeSims) == 0 {
		t.Fatal("no merge similarities recorded")
	}
	nSingletons := 0
	for _, c := range res.Clusters {
		if len(c) == 1 {
			nSingletons++
		}
	}
	// Every merge reduces the cluster count by one.
	if got := len(ds.AllAttributes()) - len(res.Clusters); got != len(res.MergeSims) {
		t.Errorf("merges = %d, want %d", len(res.MergeSims), got)
	}
	for _, s := range res.MergeSims {
		if s <= 0 {
			t.Errorf("merge sim %v not above the τ=0 threshold", s)
		}
	}
}
