package matcher

import (
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
	"webiq/internal/schema"
)

// Property tests over real generated datasets: structural invariants of
// the clustering output.

func matchAllDomains(t *testing.T, tau float64) map[string]*Result {
	t.Helper()
	out := map[string]*Result{}
	for _, dom := range kb.Domains() {
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		out[dom.Key] = New(Config{Alpha: .6, Beta: .4, Threshold: tau}).Match(ds)
	}
	return out
}

func TestClustersPartitionAttributes(t *testing.T) {
	for _, dom := range kb.Domains() {
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		res := New(DefaultConfig()).Match(ds)
		seen := map[string]int{}
		for _, c := range res.Clusters {
			for _, id := range c {
				seen[id]++
			}
		}
		for _, a := range ds.AllAttributes() {
			if seen[a.ID] != 1 {
				t.Errorf("%s: attribute %s appears %d times in clusters", dom.Key, a.ID, seen[a.ID])
			}
		}
		total := 0
		for _, c := range res.Clusters {
			total += len(c)
		}
		if total != len(ds.AllAttributes()) {
			t.Errorf("%s: clusters cover %d of %d attributes", dom.Key, total, len(ds.AllAttributes()))
		}
	}
}

func TestNoSameInterfacePairs(t *testing.T) {
	for _, dom := range kb.Domains() {
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		byID := map[string]*schema.Attribute{}
		for _, a := range ds.AllAttributes() {
			byID[a.ID] = a
		}
		res := New(DefaultConfig()).Match(ds)
		for p := range res.Pairs {
			if byID[p.A].InterfaceID == byID[p.B].InterfaceID {
				t.Errorf("%s: pair %v within one interface", dom.Key, p)
			}
		}
	}
}

func TestPairsAreClusterClosure(t *testing.T) {
	dom := kb.DomainByKey("auto")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	res := New(DefaultConfig()).Match(ds)
	want := 0
	for _, c := range res.Clusters {
		want += len(c) * (len(c) - 1) / 2
	}
	if len(res.Pairs) != want {
		t.Errorf("pairs = %d, want %d (full closure of clusters)", len(res.Pairs), want)
	}
	for p := range res.Pairs {
		if p.A >= p.B {
			t.Errorf("pair %v not normalized", p)
		}
	}
}

func TestHigherThresholdNeverAddsPairs(t *testing.T) {
	loose := matchAllDomains(t, 0)
	strict := matchAllDomains(t, 0.2)
	for key, l := range loose {
		s := strict[key]
		for p := range s.Pairs {
			if !l.Pairs[p] {
				// Single-link with constraints is order-dependent, so a
				// strictly nested result is not guaranteed in theory —
				// but a large violation indicates a bug.
				t.Logf("%s: pair %v at tau=.2 but not tau=0", key, p)
			}
		}
		if len(s.Pairs) > len(l.Pairs) {
			t.Errorf("%s: more pairs at tau=.2 (%d) than tau=0 (%d)", key, len(s.Pairs), len(l.Pairs))
		}
	}
}

func TestAttrSimRange(t *testing.T) {
	dom := kb.DomainByKey("realestate")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	m := New(DefaultConfig())
	attrs := ds.AllAttributes()
	for i := 0; i < len(attrs) && i < 40; i++ {
		for j := i + 1; j < len(attrs) && j < 40; j++ {
			s := m.AttrSim(attrs[i], attrs[j])
			if s < 0 || s > 1.0000001 {
				t.Fatalf("sim(%s,%s) = %v out of [0,1]", attrs[i].ID, attrs[j].ID, s)
			}
			if s2 := m.AttrSim(attrs[j], attrs[i]); s2 != s {
				t.Fatalf("sim not symmetric for %s,%s", attrs[i].ID, attrs[j].ID)
			}
		}
	}
}

func TestMatchSingleInterface(t *testing.T) {
	// One interface: no pairs possible, every attribute a singleton.
	ds := &schema.Dataset{
		Domain: "t",
		Interfaces: []*schema.Interface{{
			ID: "only",
			Attributes: []*schema.Attribute{
				{ID: "only/a", InterfaceID: "only", Label: "X", Instances: []string{"1"}},
				{ID: "only/b", InterfaceID: "only", Label: "X", Instances: []string{"1"}},
			},
		}},
	}
	res := New(DefaultConfig()).Match(ds)
	if len(res.Pairs) != 0 {
		t.Errorf("pairs = %v, want none", res.Pairs)
	}
	if len(res.Clusters) != 2 {
		t.Errorf("clusters = %v, want 2 singletons", res.Clusters)
	}
}

func TestMatchEmptyDataset(t *testing.T) {
	res := New(DefaultConfig()).Match(&schema.Dataset{})
	if len(res.Pairs) != 0 || len(res.Clusters) != 0 {
		t.Errorf("empty dataset gave %+v", res)
	}
}

func TestLinkageVariants(t *testing.T) {
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	gold := ds.GoldPairs()
	results := map[Linkage]Metrics{}
	for _, l := range []Linkage{SingleLink, AverageLink, CompleteLink} {
		res := New(Config{Alpha: .6, Beta: .4, Threshold: 0, Linkage: l}).Match(ds)
		results[l] = Evaluate(res.Pairs, gold)
	}
	// All linkages should produce sane results; complete-link is the
	// most conservative and must not out-recall single-link.
	for l, m := range results {
		if m.F1 <= 0.3 {
			t.Errorf("linkage %v: implausible F1 %.3f", l, m.F1)
		}
	}
	if results[CompleteLink].Recall > results[SingleLink].Recall+1e-9 {
		t.Errorf("complete-link recall (%.3f) exceeds single-link (%.3f)",
			results[CompleteLink].Recall, results[SingleLink].Recall)
	}
}

func TestLinkageString(t *testing.T) {
	names := map[Linkage]string{SingleLink: "single", AverageLink: "average", CompleteLink: "complete"}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("Linkage(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
}
