package matcher_test

import (
	"fmt"

	"webiq/internal/matcher"
	"webiq/internal/schema"
)

func ExampleMatcher_Match() {
	ds := &schema.Dataset{
		Domain: "airfare",
		Interfaces: []*schema.Interface{
			{ID: "a", Attributes: []*schema.Attribute{
				{ID: "a/1", InterfaceID: "a", Label: "Airline",
					Instances: []string{"Delta", "United"}},
			}},
			{ID: "b", Attributes: []*schema.Attribute{
				{ID: "b/1", InterfaceID: "b", Label: "Carrier",
					Instances: []string{"Delta", "United", "American"}},
			}},
		},
	}
	res := matcher.New(matcher.DefaultConfig()).Match(ds)
	for _, c := range res.Clusters {
		fmt.Println(c)
	}
	// Output:
	// [a/1 b/1]
}

func ExampleEvaluate() {
	gold := map[schema.MatchPair]bool{schema.NewMatchPair("x", "y"): true}
	pred := map[schema.MatchPair]bool{
		schema.NewMatchPair("x", "y"): true,
		schema.NewMatchPair("x", "z"): true,
	}
	m := matcher.Evaluate(pred, gold)
	fmt.Printf("P=%.1f R=%.1f F1=%.2f\n", m.Precision, m.Recall, m.F1)
	// Output:
	// P=0.5 R=1.0 F1=0.67
}
