package matcher

import (
	"math"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
	"webiq/internal/schema"
)

func TestClassifyValue(t *testing.T) {
	cases := map[string]ValueType{
		"$15,200":  TypeMonetary,
		"$9.99":    TypeMonetary,
		"1995":     TypeInteger,
		"10,000":   TypeInteger,
		"3.5":      TypeReal,
		"January":  TypeDate,
		"Jan":      TypeDate,
		"Jan 15":   TypeDate,
		"Honda":    TypeString,
		"Economy":  TypeString,
		"New York": TypeString,
	}
	for in, want := range cases {
		if got := classifyValue(in); got != want {
			t.Errorf("classifyValue(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestInferType(t *testing.T) {
	if got := InferType([]string{"$5", "$10", "$15", "Honda"}); got != TypeMonetary {
		t.Errorf("mostly monetary = %v", got)
	}
	if got := InferType([]string{"1", "Honda", "$5"}); got != TypeString {
		t.Errorf("mixed should default to string, got %v", got)
	}
	if got := InferType(nil); got != TypeString {
		t.Errorf("empty = %v", got)
	}
	if got := InferType([]string{"January", "March", "July"}); got != TypeDate {
		t.Errorf("months = %v", got)
	}
}

func TestDomSimTypeMismatch(t *testing.T) {
	if got := DomSim([]string{"$5", "$10"}, []string{"Honda", "Toyota"}); got != 0 {
		t.Errorf("cross-type DomSim = %v, want 0", got)
	}
}

func TestDomSimRangeOverlap(t *testing.T) {
	a := []string{"$10,000", "$20,000"}
	b := []string{"$15,000", "$25,000"}
	got := DomSim(a, b)
	want := 5000.0 / 15000.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("range overlap = %v, want %v", got, want)
	}
	c := []string{"$50,000", "$60,000"}
	if DomSim(a, c) != 0 {
		t.Error("disjoint ranges should have zero DomSim")
	}
}

func TestDomSimIdenticalPoint(t *testing.T) {
	if got := DomSim([]string{"5"}, []string{"5"}); got != 1 {
		t.Errorf("identical single-point ranges = %v, want 1", got)
	}
}

func TestDomSimDatesNormalizeMonths(t *testing.T) {
	a := []string{"January", "February", "March"}
	b := []string{"Jan", "Feb", "Dec"}
	got := DomSim(a, b)
	if got < 0.6 || got > 0.7 {
		t.Errorf("month-normalized DomSim = %v, want 2/3", got)
	}
}

func TestDomSimStrings(t *testing.T) {
	a := []string{"Economy", "Business", "First Class"}
	b := []string{"economy", "business", "first class", "premium"}
	if got := DomSim(a, b); got != 1 {
		t.Errorf("string overlap = %v, want 1 (all of smaller set shared)", got)
	}
}

func TestDomSimEmpty(t *testing.T) {
	if got := DomSim(nil, []string{"x"}); got != 0 {
		t.Errorf("empty DomSim = %v", got)
	}
}

func TestAttrSimWeights(t *testing.T) {
	m := New(Config{Alpha: 0.6, Beta: 0.4})
	a := &schema.Attribute{Label: "Airline", Instances: []string{"Delta", "United"}}
	b := &schema.Attribute{Label: "Airline", Instances: []string{"Delta", "United"}}
	if got := m.AttrSim(a, b); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("identical attrs sim = %v, want 1", got)
	}
	c := &schema.Attribute{Label: "Carrier", Instances: []string{"Delta", "United"}}
	if got := m.AttrSim(a, c); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("label-disjoint value-identical sim = %v, want 0.4", got)
	}
}

// tinyDataset builds a two-interface dataset with known structure.
func tinyDataset() *schema.Dataset {
	mk := func(ifcID, id, label string, inst ...string) *schema.Attribute {
		return &schema.Attribute{
			ID: ifcID + "/" + id, InterfaceID: ifcID, Label: label,
			Instances: inst, ConceptID: id,
		}
	}
	return &schema.Dataset{
		Domain: "test",
		Interfaces: []*schema.Interface{
			{ID: "if0", Domain: "test", Attributes: []*schema.Attribute{
				mk("if0", "city", "Departure city"),
				mk("if0", "airline", "Airline", "Delta", "United", "American"),
				mk("if0", "class", "Class of service", "Economy", "Business"),
			}},
			{ID: "if1", Domain: "test", Attributes: []*schema.Attribute{
				mk("if1", "city", "Departure city"),
				mk("if1", "airline", "Carrier", "Delta", "United"),
				mk("if1", "class", "Class", "Economy", "First Class"),
			}},
		},
	}
}

func TestMatchLabelsAndValues(t *testing.T) {
	ds := tinyDataset()
	m := New(DefaultConfig())
	res := m.Match(ds)

	want := []schema.MatchPair{
		schema.NewMatchPair("if0/city", "if1/city"),       // identical labels
		schema.NewMatchPair("if0/airline", "if1/airline"), // values only
		schema.NewMatchPair("if0/class", "if1/class"),     // label + values
	}
	for _, p := range want {
		if !res.Pairs[p] {
			t.Errorf("missing expected match %v; got %v", p, res.Clusters)
		}
	}
}

func TestMatchRespectsSameInterfaceConstraint(t *testing.T) {
	ds := tinyDataset()
	m := New(DefaultConfig())
	res := m.Match(ds)
	for _, c := range res.Clusters {
		seen := map[string]bool{}
		for _, id := range c {
			ifc := id[:3]
			if seen[ifc] {
				t.Errorf("cluster %v contains two attributes of %s", c, ifc)
			}
			seen[ifc] = true
		}
	}
}

func TestMatchThresholdPrunes(t *testing.T) {
	ds := tinyDataset()
	// Add a weakly-similar distractor: "Departure date" shares one word
	// with "Departure city".
	ds.Interfaces[0].Attributes = append(ds.Interfaces[0].Attributes,
		&schema.Attribute{ID: "if0/date", InterfaceID: "if0", Label: "Departure date", ConceptID: "date"})
	loose := New(Config{Alpha: 0.6, Beta: 0.4, Threshold: 0}).Match(ds)
	strict := New(Config{Alpha: 0.6, Beta: 0.4, Threshold: 0.5}).Match(ds)
	if len(strict.Pairs) > len(loose.Pairs) {
		t.Error("higher threshold should not produce more pairs")
	}
}

func TestEvaluate(t *testing.T) {
	gold := map[schema.MatchPair]bool{
		schema.NewMatchPair("a", "b"): true,
		schema.NewMatchPair("c", "d"): true,
	}
	pred := map[schema.MatchPair]bool{
		schema.NewMatchPair("a", "b"): true,
		schema.NewMatchPair("a", "c"): true,
	}
	m := Evaluate(pred, gold)
	if m.Precision != 0.5 || m.Recall != 0.5 {
		t.Errorf("P/R = %v/%v, want .5/.5", m.Precision, m.Recall)
	}
	if math.Abs(m.F1-0.5) > 1e-9 {
		t.Errorf("F1 = %v, want .5", m.F1)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := Evaluate(nil, nil)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
}

func TestMatchGeneratedDatasetReasonable(t *testing.T) {
	// Baseline matching on the auto domain should already be decent —
	// the paper's baseline averages 89.5% across domains.
	dom := kb.DomainByKey("auto")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	res := New(DefaultConfig()).Match(ds)
	m := Evaluate(res.Pairs, ds.GoldPairs())
	if m.F1 < 0.5 {
		t.Errorf("baseline auto F1 = %.3f, implausibly low (P=%.3f R=%.3f)", m.F1, m.Precision, m.Recall)
	}
	if m.F1 >= 0.995 {
		t.Errorf("baseline auto F1 = %.3f, implausibly perfect — no headroom for WebIQ", m.F1)
	}
}

func TestMatchDeterministic(t *testing.T) {
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	a := New(DefaultConfig()).Match(ds)
	b := New(DefaultConfig()).Match(ds)
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatal("match results differ across runs")
	}
	for p := range a.Pairs {
		if !b.Pairs[p] {
			t.Fatalf("pair %v missing in second run", p)
		}
	}
}
