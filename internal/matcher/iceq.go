package matcher

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"time"

	"webiq/internal/obs"
	"webiq/internal/schema"
	"webiq/internal/sim"
)

// Linkage selects how cluster-to-cluster similarity is updated when two
// clusters merge.
type Linkage int

// Linkage strategies.
const (
	// SingleLink uses the maximum pairwise similarity — the default,
	// matching the τ=0 reading "any two attributes with positive
	// similarity may potentially be matched".
	SingleLink Linkage = iota
	// AverageLink uses the size-weighted mean pairwise similarity.
	AverageLink
	// CompleteLink uses the minimum pairwise similarity.
	CompleteLink
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case AverageLink:
		return "average"
	case CompleteLink:
		return "complete"
	default:
		return "single"
	}
}

// Config holds the matcher parameters. The paper sets α = .6, β = .4
// (following IceQ) and evaluates thresholds τ = 0 ("no thresholding":
// any positive similarity is a potential match) and τ = .1.
type Config struct {
	// Alpha weights label similarity; Beta weights domain similarity.
	Alpha, Beta float64
	// Threshold is the clustering threshold τ: cluster pairs with
	// similarity at or below it are not merged.
	Threshold float64
	// Linkage selects the agglomerative linkage (default SingleLink).
	Linkage Linkage
	// Workers bounds the goroutines used to build the pairwise
	// similarity matrix; 0 means GOMAXPROCS. The matrix is identical for
	// any worker count — each pair is scored once into its own slot.
	Workers int
}

// DefaultConfig mirrors the paper's parameters with no thresholding.
func DefaultConfig() Config {
	return Config{Alpha: 0.6, Beta: 0.4, Threshold: 0}
}

// Matcher is an IceQ-style interface matcher.
type Matcher struct {
	cfg Config

	// Optional metrics; nil-safe no-ops when Instrument was not called.
	mPairs    *obs.Counter
	mMerges   *obs.Counter
	mDuration *obs.Histogram

	// Optional span tracer and decision-provenance ledger (see
	// SetSpanTracer / SetLedger); both nil-safe.
	spans  *obs.Tracer
	ledger *obs.Ledger
}

// New returns a Matcher with the given configuration.
func New(cfg Config) *Matcher {
	return &Matcher{cfg: cfg}
}

// Instrument registers the matcher's metrics on r:
//
//	webiq_matcher_pairs_scored_total  attribute pairs scored with Sim
//	webiq_matcher_merges_total        cluster merges performed
//	webiq_matcher_match_seconds       wall-clock duration of Match runs
//
// Passing nil leaves the matcher uninstrumented (the default).
func (m *Matcher) Instrument(r *obs.Registry) {
	m.mPairs = r.Counter("webiq_matcher_pairs_scored_total", "Attribute pairs scored by the similarity measure.")
	m.mMerges = r.Counter("webiq_matcher_merges_total", "Agglomerative cluster merges performed.")
	m.mDuration = r.Histogram("webiq_matcher_match_seconds", "Wall-clock duration of full Match runs in seconds.", nil)
}

// SetSpanTracer installs a span tracer: MatchCtx emits one "match" span
// per run, joined to the trace carried by its context. nil disables it.
func (m *Matcher) SetSpanTracer(t *obs.Tracer) { m.spans = t }

// SetLedger installs the decision-provenance ledger: every cluster
// merge is recorded as a "matcher"/"merge" decision carrying the merge
// order, the cluster similarity that triggered it, and the
// α·LabelSim + β·DomSim breakdown of the strongest supporting attribute
// pair. nil disables recording.
func (m *Matcher) SetLedger(l *obs.Ledger) { m.ledger = l }

// AttrSim computes Sim(A,B) = α·LabelSim + β·DomSim over labels and all
// (predefined + acquired) instances.
func (m *Matcher) AttrSim(a, b *schema.Attribute) float64 {
	m.mPairs.Inc()
	ls := sim.LabelSim(a.Label, b.Label)
	dsim := DomSim(a.AllInstances(), b.AllInstances())
	return m.cfg.Alpha*ls + m.cfg.Beta*dsim
}

// Result is the matcher output: clusters of attribute IDs and the
// implied match pairs (pairs of attributes from different interfaces in
// one cluster). MergeSims records the cluster similarity at each merge,
// in merge order — the raw material for threshold learning.
type Result struct {
	Clusters  [][]string
	Pairs     map[schema.MatchPair]bool
	MergeSims []float64
}

// Match clusters the dataset's attributes with constrained single-link
// agglomerative clustering: repeatedly merge the most similar pair of
// clusters whose union contains no two attributes from the same
// interface, while the best similarity exceeds the threshold. With the
// paper's τ = 0 setting, any two attributes with positive similarity may
// end up matched; τ = .1 prunes the weak links.
//
// The similarity matrix is built in parallel (Config.Workers) and the
// merge loop selects each best pair from a lazy-deletion max-heap, so a
// full run costs O(n² log n) instead of the naive O(n³) rescan; the
// Result is identical either way (the heap reproduces the scan's
// strictly-greater, lowest-(i,j)-wins tie-break exactly).
func (m *Matcher) Match(ds *schema.Dataset) *Result {
	return m.MatchCtx(context.Background(), ds)
}

// MatchCtx is Match with the caller's trace context: the run's "match"
// span joins the trace carried by ctx and merge decisions recorded in
// the ledger carry the trace identity.
func (m *Matcher) MatchCtx(ctx context.Context, ds *schema.Dataset) *Result {
	if m.mDuration != nil {
		start := time.Now()
		defer func() { m.mDuration.Observe(time.Since(start).Seconds()) }()
	}
	attrs := ds.AllAttributes()
	n := len(attrs)
	spanCtx, span := m.spans.StartSpan(ctx, "match")
	span.Label("domain", ds.Domain).Label("linkage", m.cfg.Linkage.String())
	defer span.End()
	ctx = spanCtx

	// Pairwise attribute similarities, one row per worker at a time.
	// Per-attribute derivations (type inference, value folding, label
	// vectors) are profiled once up front instead of per pair, and every
	// pair is scored exactly once into its own slot, so the matrix (and
	// the pairs-scored counter, which is atomic) is bitwise identical to
	// a sequential build of AttrSim calls.
	profiles, labelSims := buildProfiles(attrs, m.cfg.Workers)
	simMat := make([][]float64, n)
	for i := range simMat {
		simMat[i] = make([]float64, n)
	}
	parallelRows(n, m.cfg.Workers, func(i int) {
		for j := i + 1; j < n; j++ {
			m.mPairs.Inc()
			ls := labelSims[profiles[i].labelID][profiles[j].labelID]
			simMat[i][j] = m.cfg.Alpha*ls + m.cfg.Beta*domSim(&profiles[i], &profiles[j])
		}
	})
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			simMat[j][i] = simMat[i][j]
		}
	}

	// Cluster state: each cluster tracks its member indices, the
	// interfaces covered, and single-link similarities to other
	// clusters (maintained with Lance–Williams updates).
	type cluster struct {
		members []int
		ifaces  map[string]bool
		alive   bool
	}
	clusters := make([]*cluster, n)
	cs := make([][]float64, n) // cluster-to-cluster average-link sims
	for i := range clusters {
		clusters[i] = &cluster{
			members: []int{i},
			ifaces:  map[string]bool{attrs[i].InterfaceID: true},
			alive:   true,
		}
		cs[i] = make([]float64, n)
		copy(cs[i], simMat[i])
	}

	var mergeSims []float64
	conflict := func(a, b *cluster) bool {
		for ifc := range b.ifaces {
			if a.ifaces[ifc] {
				return true
			}
		}
		return false
	}

	// Candidate pairs live in a max-heap keyed (sim desc, i asc, j asc) —
	// exactly the order the former full rescan selected them in (it took
	// strictly greater similarities only, so among ties the earliest
	// (i,j) won). Entries are deleted lazily: a popped entry is acted on
	// only if both clusters are alive and cs still holds the entry's
	// value; anything else is a superseded duplicate. Conflicting pairs
	// are dropped for good — interface sets only grow, so a conflict
	// never clears.
	h := make(pairHeap, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cs[i][j] > m.cfg.Threshold && attrs[i].InterfaceID != attrs[j].InterfaceID {
				h = append(h, pairEntry{sim: cs[i][j], i: i, j: j})
			}
		}
	}
	heap.Init(&h)

	for h.Len() > 0 {
		e := heap.Pop(&h).(pairEntry)
		if !clusters[e.i].alive || !clusters[e.j].alive || cs[e.i][e.j] != e.sim {
			continue
		}
		if conflict(clusters[e.i], clusters[e.j]) {
			continue
		}
		bi, bj, best := e.i, e.j, e.sim
		if m.ledger != nil {
			m.recordMerge(ctx, attrs, profiles, labelSims, simMat,
				clusters[bi].members, clusters[bj].members, best, len(mergeSims)+1)
		}
		mergeSims = append(mergeSims, best)
		m.mMerges.Inc()
		// Merge bj into bi; update cluster similarities per the linkage
		// (Lance–Williams updates) and push the refreshed pairs.
		ni := float64(len(clusters[bi].members))
		nj := float64(len(clusters[bj].members))
		clusters[bi].members = append(clusters[bi].members, clusters[bj].members...)
		for ifc := range clusters[bj].ifaces {
			clusters[bi].ifaces[ifc] = true
		}
		clusters[bj].alive = false
		for k := 0; k < n; k++ {
			if k == bi || k == bj || !clusters[k].alive {
				continue
			}
			var v float64
			switch m.cfg.Linkage {
			case AverageLink:
				v = (ni*cs[bi][k] + nj*cs[bj][k]) / (ni + nj)
			case CompleteLink:
				v = cs[bi][k]
				if cs[bj][k] < v {
					v = cs[bj][k]
				}
			default: // SingleLink
				v = cs[bi][k]
				if cs[bj][k] > v {
					v = cs[bj][k]
				}
			}
			cs[bi][k] = v
			cs[k][bi] = v
			if v > m.cfg.Threshold && !conflict(clusters[bi], clusters[k]) {
				lo, hi := bi, k
				if k < bi {
					lo, hi = k, bi
				}
				heap.Push(&h, pairEntry{sim: v, i: lo, j: hi})
			}
		}
	}

	res := &Result{Pairs: map[schema.MatchPair]bool{}, MergeSims: mergeSims}
	for _, c := range clusters {
		if !c.alive {
			continue
		}
		ids := make([]string, len(c.members))
		for k, idx := range c.members {
			ids[k] = attrs[idx].ID
		}
		sort.Strings(ids)
		res.Clusters = append(res.Clusters, ids)
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				res.Pairs[schema.NewMatchPair(ids[x], ids[y])] = true
			}
		}
	}
	sort.Slice(res.Clusters, func(i, j int) bool {
		return res.Clusters[i][0] < res.Clusters[j][0]
	})
	return res
}

// recordMerge writes one ledger decision for a cluster merge: the
// strongest supporting attribute pair across the two clusters (the pair
// whose Sim realizes a single-link merge; the best evidence pair under
// the other linkages), with its α·LabelSim + β·DomSim breakdown. Ties
// resolve to the lowest attribute indices, so the record is
// deterministic.
func (m *Matcher) recordMerge(ctx context.Context, attrs []*schema.Attribute, profiles []attrProfile, labelSims [][]float64, simMat [][]float64, membersA, membersB []int, clusterSim float64, order int) {
	bx, by, best := -1, -1, -1.0
	for _, x := range membersA {
		for _, y := range membersB {
			if simMat[x][y] > best {
				bx, by, best = x, y, simMat[x][y]
			}
		}
	}
	if bx < 0 {
		return
	}
	if by < bx {
		bx, by = by, bx
	}
	ls := labelSims[profiles[bx].labelID][profiles[by].labelID]
	dsim := domSim(&profiles[bx], &profiles[by])
	m.ledger.RecordCtx(ctx, obs.Decision{
		Component: "matcher", Verdict: "merge",
		AttrID: attrs[bx].ID, OtherID: attrs[by].ID,
		Label: attrs[bx].Label,
		Score: clusterSim, Threshold: m.cfg.Threshold,
		LabelSim: ls, DomSim: dsim,
		MergeOrder: order,
		Count:      len(membersA) + len(membersB),
		Detail: fmt.Sprintf("strongest pair %q~%q: %.3f = %.1f·%.3f + %.1f·%.3f",
			attrs[bx].Label, attrs[by].Label, best, m.cfg.Alpha, ls, m.cfg.Beta, dsim),
	})
}
