package htmlform

import (
	"reflect"
	"strings"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/kb"
	"webiq/internal/schema"
)

func TestRenderExtractRoundTrip(t *testing.T) {
	ifc := &schema.Interface{
		ID: "rt", Source: "round-trip-source",
		Attributes: []*schema.Attribute{
			{ID: "rt/a0", InterfaceID: "rt", Label: "Departure city"},
			{ID: "rt/a1", InterfaceID: "rt", Label: "Class of service",
				Instances: []string{"Economy", "Business", "First Class"}},
			{ID: "rt/a2", InterfaceID: "rt", Label: "Airline",
				Instances: []string{"Delta", "United"}},
		},
	}
	html := Render(ifc)
	got, err := Extract(html, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "round-trip-source" {
		t.Errorf("source = %q", got.Source)
	}
	if len(got.Attributes) != 3 {
		t.Fatalf("attributes = %d: %+v", len(got.Attributes), got.Attributes)
	}
	for i, want := range ifc.Attributes {
		g := got.Attributes[i]
		if g.Label != want.Label {
			t.Errorf("attr %d label = %q, want %q", i, g.Label, want.Label)
		}
		if !reflect.DeepEqual(g.Instances, want.Instances) {
			t.Errorf("attr %d instances = %v, want %v", i, g.Instances, want.Instances)
		}
	}
}

func TestRenderExtractAllGeneratedInterfaces(t *testing.T) {
	// Property over the whole dataset: every generated interface
	// round-trips with labels and instances intact.
	for _, dom := range kb.Domains() {
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		for _, ifc := range ds.Interfaces[:5] {
			got, err := Extract(Render(ifc), ifc.ID)
			if err != nil {
				t.Fatalf("%s: %v", ifc.ID, err)
			}
			if len(got.Attributes) != len(ifc.Attributes) {
				t.Fatalf("%s: got %d attrs, want %d", ifc.ID, len(got.Attributes), len(ifc.Attributes))
			}
			for i := range got.Attributes {
				if got.Attributes[i].Label != ifc.Attributes[i].Label {
					t.Errorf("%s attr %d: label %q != %q", ifc.ID, i,
						got.Attributes[i].Label, ifc.Attributes[i].Label)
				}
				if !reflect.DeepEqual(got.Attributes[i].Instances, ifc.Attributes[i].Instances) {
					t.Errorf("%s attr %d: instances differ", ifc.ID, i)
				}
			}
		}
	}
}

func TestExtractHandWrittenForm(t *testing.T) {
	// A table-layout form in the style of 2004 travel sites: labels in
	// table cells, no <label> elements, placeholder options.
	html := `
<html><head><title>Acme Travel</title></head><body>
<!-- navigation -->
<form method="post" action="search.cgi">
<table>
<tr><td>From:</td><td><input type="text" name="orig"></td></tr>
<tr><td>Going to</td><td><input type="text" name="dest"></td></tr>
<tr><td>Cabin</td><td>
  <select name="cabin">
    <option value="">Please select</option>
    <option>Economy</option>
    <option>Business</option>
  </select>
</td></tr>
<tr><td></td><td><input type="submit" value="Find Flights"></td></tr>
</table>
</form>
</body></html>`
	got, err := Extract(html, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "Acme Travel" {
		t.Errorf("source = %q", got.Source)
	}
	if len(got.Attributes) != 3 {
		t.Fatalf("attributes: %+v", got.Attributes)
	}
	wantLabels := []string{"From", "Going to", "Cabin"}
	for i, w := range wantLabels {
		if got.Attributes[i].Label != w {
			t.Errorf("attr %d label = %q, want %q", i, got.Attributes[i].Label, w)
		}
	}
	if !reflect.DeepEqual(got.Attributes[2].Instances, []string{"Economy", "Business"}) {
		t.Errorf("cabin instances = %v", got.Attributes[2].Instances)
	}
}

func TestExtractSkipsNonDataFields(t *testing.T) {
	html := `<form>
<input type="hidden" name="sid" value="123">
Name: <input type="text" name="n">
<input type="checkbox" name="promo"> Subscribe
<input type="submit">
</form>`
	got, err := Extract(html, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Attributes) != 1 {
		t.Fatalf("attributes = %+v", got.Attributes)
	}
	if got.Attributes[0].Label != "Name" {
		t.Errorf("label = %q", got.Attributes[0].Label)
	}
}

func TestExtractNoForm(t *testing.T) {
	if _, err := Extract("<html><body>hello</body></html>", "x"); err == nil {
		t.Error("want error when no form present")
	}
}

func TestExtractMalformedHTML(t *testing.T) {
	// Unclosed tags and stray brackets must not panic.
	html := `<form><label>Broken <input type=text id=f1 name=f1><select name=s1><option>A<option>B</form`
	got, err := Extract(html, "m")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Attributes) == 0 {
		t.Error("no attributes recovered from malformed form")
	}
}

func TestExtractEntityDecoding(t *testing.T) {
	html := `<form><label for="f0">Price &amp; fees:</label><input type="text" id="f0"></form>`
	got, err := Extract(html, "e")
	if err != nil {
		t.Fatal(err)
	}
	if got.Attributes[0].Label != "Price & fees" {
		t.Errorf("label = %q", got.Attributes[0].Label)
	}
}

func TestRenderEscapes(t *testing.T) {
	ifc := &schema.Interface{
		ID: "esc", Source: `A<B & "C"`,
		Attributes: []*schema.Attribute{
			{ID: "esc/a0", InterfaceID: "esc", Label: "X<Y"},
		},
	}
	html := Render(ifc)
	if strings.Contains(html, "X<Y") {
		t.Error("unescaped label in output")
	}
	got, err := Extract(html, "esc")
	if err != nil {
		t.Fatal(err)
	}
	if got.Attributes[0].Label != "X<Y" {
		t.Errorf("label = %q, want X<Y back", got.Attributes[0].Label)
	}
}

func TestTokenizeBasics(t *testing.T) {
	toks := tokenize(`<p class="x">Hello <b>world</b></p>`)
	if len(toks) != 6 {
		t.Fatalf("tokens = %+v", toks)
	}
	if toks[0].kind != startTag || toks[0].name != "p" || toks[0].attrs["class"] != "x" {
		t.Errorf("token 0 = %+v", toks[0])
	}
	if toks[1].kind != textNode || toks[1].text != "Hello" {
		t.Errorf("token 1 = %+v", toks[1])
	}
	if toks[5].kind != endTag || toks[5].name != "p" {
		t.Errorf("token 5 = %+v", toks[5])
	}
}

func TestTokenizeComments(t *testing.T) {
	toks := tokenize(`a<!-- <input type=text> -->b`)
	if len(toks) != 2 || toks[0].text != "a" || toks[1].text != "b" {
		t.Errorf("tokens = %+v", toks)
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := tokenize(`<br/><input type="text"/>`)
	if len(toks) != 2 || !toks[0].self || toks[1].attrs["type"] != "text" {
		t.Errorf("tokens = %+v", toks)
	}
}

func TestTokenizeBareAttributes(t *testing.T) {
	toks := tokenize(`<option selected>X</option>`)
	if _, ok := toks[0].attrs["selected"]; !ok {
		t.Errorf("bare attribute lost: %+v", toks[0])
	}
}

func TestIsPlaceholder(t *testing.T) {
	for _, s := range []string{"", "-- Select --", "Any", "Please select", "ALL"} {
		if !isPlaceholder(s) {
			t.Errorf("isPlaceholder(%q) = false", s)
		}
	}
	for _, s := range []string{"Economy", "Honda", "New York"} {
		if isPlaceholder(s) {
			t.Errorf("isPlaceholder(%q) = true", s)
		}
	}
}

func TestCleanLabel(t *testing.T) {
	cases := map[string]string{
		"  From city: ": "From city",
		"Price *":       "Price",
		"Multi\n  word": "Multi word",
		":":             "",
	}
	for in, want := range cases {
		if got := cleanLabel(in); got != want {
			t.Errorf("cleanLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
