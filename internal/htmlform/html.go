// Package htmlform renders query interfaces as HTML forms and extracts
// query interfaces back out of form HTML. The paper assumes interfaces
// have already been extracted from source pages; this package supplies
// that pipeline step so the system can be driven from raw HTML, and
// gives the Deep-Web simulator a concrete page format.
//
// The parser is a small, forgiving HTML tokenizer (standard library
// only): it understands tags, attributes, text, comments, and enough
// structure to associate labels with form fields.
package htmlform

import (
	"strings"
	"unicode"
)

// tokenKind distinguishes tokenizer output.
type tokenKind int

const (
	startTag tokenKind = iota
	endTag
	textNode
)

// token is one HTML token.
type token struct {
	kind  tokenKind
	name  string            // tag name, lower-cased (startTag/endTag)
	attrs map[string]string // attribute map (startTag)
	text  string            // text content (textNode)
	self  bool              // self-closing tag
}

// tokenize scans HTML into tokens. It never fails: malformed input
// degrades to text.
func tokenize(html string) []token {
	var out []token
	i := 0
	n := len(html)
	flushText := func(from, to int) {
		t := strings.TrimSpace(html[from:to])
		if t != "" {
			out = append(out, token{kind: textNode, text: decodeEntities(t)})
		}
	}
	textStart := 0
	for i < n {
		if html[i] != '<' {
			i++
			continue
		}
		// Comment?
		if strings.HasPrefix(html[i:], "<!--") {
			flushText(textStart, i)
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				return out
			}
			i += 4 + end + 3
			textStart = i
			continue
		}
		// Declaration (<!DOCTYPE ...>)?
		if strings.HasPrefix(html[i:], "<!") {
			flushText(textStart, i)
			end := strings.IndexByte(html[i:], '>')
			if end < 0 {
				return out
			}
			i += end + 1
			textStart = i
			continue
		}
		close := strings.IndexByte(html[i:], '>')
		if close < 0 {
			break // unterminated tag: treat the rest as text
		}
		flushText(textStart, i)
		raw := html[i+1 : i+close]
		i += close + 1
		textStart = i

		tok, ok := parseTag(raw)
		if ok {
			out = append(out, tok)
		}
	}
	flushText(textStart, n)
	return out
}

// parseTag parses the inside of <...>.
func parseTag(raw string) (token, bool) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return token{}, false
	}
	isEnd := false
	if raw[0] == '/' {
		isEnd = true
		raw = strings.TrimSpace(raw[1:])
	}
	self := false
	if strings.HasSuffix(raw, "/") {
		self = true
		raw = strings.TrimSpace(raw[:len(raw)-1])
	}
	// Tag name.
	j := 0
	for j < len(raw) && !unicode.IsSpace(rune(raw[j])) {
		j++
	}
	name := strings.ToLower(raw[:j])
	if name == "" {
		return token{}, false
	}
	if isEnd {
		return token{kind: endTag, name: name}, true
	}
	tok := token{kind: startTag, name: name, attrs: map[string]string{}, self: self}
	rest := raw[j:]
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		// Attribute name.
		k := 0
		for k < len(rest) && rest[k] != '=' && !unicode.IsSpace(rune(rest[k])) {
			k++
		}
		aname := strings.ToLower(rest[:k])
		rest = strings.TrimSpace(rest[k:])
		if aname == "" {
			break
		}
		if !strings.HasPrefix(rest, "=") {
			tok.attrs[aname] = "" // bare attribute (e.g. "selected")
			continue
		}
		rest = strings.TrimSpace(rest[1:])
		var aval string
		if len(rest) > 0 && (rest[0] == '"' || rest[0] == '\'') {
			q := rest[0]
			end := strings.IndexByte(rest[1:], q)
			if end < 0 {
				aval, rest = rest[1:], ""
			} else {
				aval, rest = rest[1:1+end], rest[1+end+1:]
			}
		} else {
			k = 0
			for k < len(rest) && !unicode.IsSpace(rune(rest[k])) {
				k++
			}
			aval, rest = rest[:k], rest[k:]
		}
		tok.attrs[aname] = decodeEntities(aval)
	}
	return tok, true
}

// decodeEntities handles the handful of entities our pages use.
var entityReplacer = strings.NewReplacer(
	"&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`,
	"&#39;", "'", "&nbsp;", " ",
)

func decodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	return entityReplacer.Replace(s)
}

// escape escapes text for safe embedding in HTML.
var escapeReplacer = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;",
)

func escape(s string) string { return escapeReplacer.Replace(s) }
