package htmlform

import (
	"strings"
	"testing"
)

func FuzzExtract(f *testing.F) {
	f.Add(`<form><label for="a">X:</label><input type="text" id="a"></form>`)
	f.Add(`<form><select name="s"><option>A</option></select></form>`)
	f.Add(`<form><input`)
	f.Add(`no html at all`)
	f.Add(`<!-- <form> --><form>text<input type=text id=q></form>`)
	f.Add(`<form>` + strings.Repeat(`<option>`, 50))
	f.Fuzz(func(t *testing.T, html string) {
		ifc, err := Extract(html, "fuzz")
		if err != nil {
			return
		}
		// Extracted interfaces must be internally consistent.
		seen := map[string]bool{}
		for _, a := range ifc.Attributes {
			if a.ID == "" || seen[a.ID] {
				t.Fatalf("bad or duplicate attribute ID in %q", html)
			}
			seen[a.ID] = true
			if a.InterfaceID != "fuzz" {
				t.Fatalf("attribute with wrong interface ID in %q", html)
			}
		}
	})
}

func FuzzTokenizeHTML(f *testing.F) {
	f.Add(`<p class="x">hi</p>`)
	f.Add(`<<<>>>`)
	f.Add(`<a href='y`)
	f.Add(`&amp;&lt;&bogus;`)
	f.Fuzz(func(t *testing.T, html string) {
		toks := tokenize(html)
		for _, tok := range toks {
			if tok.kind == startTag && tok.name == "" {
				t.Fatalf("empty tag name from %q", html)
			}
			if tok.kind == textNode && tok.text == "" {
				t.Fatalf("empty text node from %q", html)
			}
		}
	})
}
