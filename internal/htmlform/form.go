package htmlform

import (
	"fmt"
	"strings"

	"webiq/internal/schema"
)

// Render renders a query interface as an HTML page with a search form:
// free-text attributes become labeled <input type="text"> fields,
// predefined-value attributes become <select> boxes listing their
// instances. Output is deterministic and round-trips through Extract.
func Render(ifc *schema.Interface) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n", escape(ifc.Source))
	fmt.Fprintf(&b, "<h1>%s</h1>\n", escape(ifc.Source))
	fmt.Fprintf(&b, "<form action=\"/search\" method=\"get\">\n")
	for i, a := range ifc.Attributes {
		name := fmt.Sprintf("f%d", i)
		fmt.Fprintf(&b, "  <label for=%q>%s:</label>\n", name, escape(a.Label))
		if a.HasInstances() {
			fmt.Fprintf(&b, "  <select name=%q id=%q>\n", name, name)
			b.WriteString("    <option value=\"\">-- Select --</option>\n")
			for _, v := range a.Instances {
				fmt.Fprintf(&b, "    <option>%s</option>\n", escape(v))
			}
			b.WriteString("  </select><br>\n")
		} else {
			fmt.Fprintf(&b, "  <input type=\"text\" name=%q id=%q><br>\n", name, name)
		}
	}
	b.WriteString("  <input type=\"submit\" value=\"Search\">\n")
	b.WriteString("</form>\n</body></html>\n")
	return b.String()
}

// placeholderOptions are select entries that are prompts, not instances.
var placeholderOptions = map[string]bool{
	"": true, "--": true, "---": true, "select": true, "-- select --": true,
	"select one": true, "any": true, "all": true, "choose": true,
	"please select": true, "choose one": true, "no preference": true,
}

func isPlaceholder(option string) bool {
	return placeholderOptions[strings.ToLower(strings.TrimSpace(strings.Trim(option, "-– ")))] ||
		placeholderOptions[strings.ToLower(strings.TrimSpace(option))]
}

// Extract parses an HTML page and recovers the query interface embedded
// in its first form: one attribute per text input or select box, with
// the associated label text. Association heuristics, in priority order:
//
//  1. a <label for="..."> matching the field's id;
//  2. the nearest preceding <label> without a for attribute;
//  3. the nearest preceding text node (common in table layouts).
//
// Fields with type submit/hidden/button/checkbox/radio are skipped, as
// are selects whose only options are placeholders.
func Extract(html, interfaceID string) (*schema.Interface, error) {
	toks := tokenize(html)

	// First pass: collect label-for associations and the page title.
	labelFor := map[string]string{}
	title := ""
	{
		var inLabel bool
		var labelTarget string
		var labelText strings.Builder
		var inTitle bool
		for _, t := range toks {
			switch t.kind {
			case startTag:
				switch t.name {
				case "label":
					inLabel = true
					labelTarget = t.attrs["for"]
					labelText.Reset()
				case "title":
					inTitle = true
				}
			case endTag:
				switch t.name {
				case "label":
					if inLabel && labelTarget != "" {
						labelFor[labelTarget] = cleanLabel(labelText.String())
					}
					inLabel = false
				case "title":
					inTitle = false
				}
			case textNode:
				if inLabel {
					labelText.WriteString(t.text + " ")
				}
				if inTitle && title == "" {
					title = t.text
				}
			}
		}
	}

	// Second pass: walk the form and build attributes.
	ifc := &schema.Interface{ID: interfaceID, Source: title}
	inForm := false
	sawForm := false
	var pendingLabel string    // nearest preceding label/text
	var selectName string      // inside a <select>
	var selectOptions []string //
	var inOption bool          //
	var optionText strings.Builder
	attrIdx := 0

	addAttr := func(fieldID, label string, instances []string) {
		if byID, ok := labelFor[fieldID]; ok && byID != "" {
			label = byID
		}
		label = cleanLabel(label)
		if label == "" {
			label = fieldID
		}
		a := &schema.Attribute{
			ID:          fmt.Sprintf("%s/a%d", interfaceID, attrIdx),
			InterfaceID: interfaceID,
			Label:       label,
			Instances:   instances,
		}
		ifc.Attributes = append(ifc.Attributes, a)
		attrIdx++
		pendingLabel = ""
	}

	flushOption := func() {
		if !inOption {
			return
		}
		inOption = false
		if o := strings.TrimSpace(optionText.String()); !isPlaceholder(o) {
			selectOptions = append(selectOptions, o)
		}
	}

	for _, t := range toks {
		switch t.kind {
		case startTag:
			switch t.name {
			case "form":
				inForm = true
				sawForm = true
			case "input":
				if !inForm {
					continue
				}
				switch strings.ToLower(t.attrs["type"]) {
				case "submit", "hidden", "button", "image", "reset", "checkbox", "radio":
					continue
				}
				addAttr(t.attrs["id"], pendingLabel, nil)
			case "select":
				if !inForm {
					continue
				}
				selectName = t.attrs["id"]
				if selectName == "" {
					selectName = t.attrs["name"]
				}
				selectOptions = nil
			case "option":
				flushOption()
				inOption = true
				optionText.Reset()
			case "label":
				pendingLabel = "" // captured via label passes below
			}
		case endTag:
			switch t.name {
			case "form":
				inForm = false
			case "option":
				flushOption()
			case "select":
				flushOption()
				if inForm {
					addAttr(selectName, pendingLabel, selectOptions)
				}
				selectName, selectOptions = "", nil
			}
		case textNode:
			if inOption {
				optionText.WriteString(t.text)
				continue
			}
			if inForm || !sawForm {
				// Remember the nearest text as a label candidate
				// (heuristic 3: table layouts put the label in the
				// preceding cell).
				if l := cleanLabel(t.text); l != "" {
					pendingLabel = l
				}
			}
		}
	}

	if !sawForm {
		return nil, fmt.Errorf("htmlform: no form found in page")
	}
	return ifc, nil
}

// cleanLabel normalizes extracted label text: trim whitespace, trailing
// colons and asterisks (required-field markers).
func cleanLabel(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimRight(s, ":*† ")
	return strings.Join(strings.Fields(s), " ")
}
