package htmlform_test

import (
	"fmt"

	"webiq/internal/htmlform"
)

func ExampleExtract() {
	page := `<html><head><title>Acme Books</title></head><body>
	<form action="/q">
	  Title: <input type="text" name="t">
	  Format:
	  <select name="f">
	    <option value="">-- Select --</option>
	    <option>Hardcover</option>
	    <option>Paperback</option>
	  </select>
	  <input type="submit">
	</form></body></html>`

	ifc, err := htmlform.Extract(page, "acme")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(ifc.Source)
	for _, a := range ifc.Attributes {
		fmt.Printf("%s %v\n", a.Label, a.Instances)
	}
	// Output:
	// Acme Books
	// Title []
	// Format [Hardcover Paperback]
}
