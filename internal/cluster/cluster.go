package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"

	"webiq/internal/obs"
	"webiq/internal/resilience"
)

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's ID; it must appear in Members.
	Self string
	// Members is the full node set, self included. Every node is given
	// the same set, in any order, and computes the same ring.
	Members []Member
	// Replication is how many distinct nodes own each domain (primary +
	// R-1 replicas); <= 0 takes 2, and R is clamped to the node count.
	Replication int
	// VirtualNodes per member on the ring (DefVirtualNodes when <= 0).
	VirtualNodes int
	// ProbeInterval is the health-probe period (1s when <= 0).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each peer probe (500ms when <= 0).
	ProbeTimeout time.Duration
	// DeadAfter is how many consecutive failed probes mark a peer dead
	// (3 when <= 0); the first failure already marks it suspect.
	DeadAfter int
	// Probe overrides the default /readyz HTTP probe (tests).
	Probe ProbeFunc
	// Forward tunes the peer-forwarding clients.
	Forward ForwarderOptions
}

// Stats is the cluster block served on /stats and /cluster/stats.
type Stats struct {
	Self        string              `json:"self"`
	Replication int                 `json:"replication"`
	Nodes       []string            `json:"nodes"`
	Owners      map[string][]string `json:"owners"`
	Members     []MemberStatus      `json:"members"`
	Breakers    map[string]string   `json:"peer_breakers"`
	Forwards    map[string]int64    `json:"forwards"`
}

// Cluster is one node's routing brain: the ring says who should serve
// a domain, membership says who currently can, and the forwarder gets
// the request there. It holds no domain data itself — every node
// serves from its own snapshot/build — so "ownership" is purely a
// routing contract, and the worst a stale view can cause is an extra
// hop or a locally-served request, never a wrong answer.
type Cluster struct {
	cfg        Config
	ring       *Ring
	membership *Membership
	forwarder  *Forwarder
	self       Member

	stop     chan struct{}
	stopOnce sync.Once
	started  bool
	done     chan struct{}

	// Served-request accounting by routing mode (owner-local, hop,
	// forwarded, failover, local-fallback); mirrored to a metric and
	// reported in Stats.
	mu     sync.Mutex
	served map[string]int64
	cServe *obs.CounterVec // webiq_cluster_requests_total{mode}
}

// New builds the node's cluster view. It does not start probing; call
// Start (and eventually Stop).
func New(cfg Config) *Cluster {
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	ids := make([]string, 0, len(cfg.Members))
	peers := make([]Member, 0, len(cfg.Members))
	var self Member
	for _, m := range cfg.Members {
		ids = append(ids, m.ID)
		if m.ID == cfg.Self {
			self = m
			continue
		}
		peers = append(peers, m)
	}
	if cfg.Forward.Client == nil {
		cfg.Forward.Client = &http.Client{Timeout: 10 * time.Second}
	}
	// Peer breakers trip faster than the backend default of 5: every
	// peer has replicas holding the same data, so failing over is cheap
	// and a dead peer should stop eating retry budgets within a couple
	// of requests — before the membership probes even demote it.
	if cfg.Forward.Breaker.FailureThreshold <= 0 {
		cfg.Forward.Breaker = resilience.BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         2 * time.Second,
			HalfOpenProbes:   1,
		}
	}
	return &Cluster{
		cfg:        cfg,
		ring:       NewRing(ids, cfg.VirtualNodes),
		membership: NewMembership(peers, cfg.DeadAfter, cfg.ProbeTimeout, cfg.Probe),
		forwarder:  NewForwarder(cfg.Self, peers, cfg.Forward),
		self:       self,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		served:     make(map[string]int64, 5),
	}
}

// Instrument registers the cluster metric families on r.
func (c *Cluster) Instrument(r *obs.Registry) {
	c.membership.Instrument(r)
	c.forwarder.Instrument(r)
	c.mu.Lock()
	c.cServe = r.CounterVec("webiq_cluster_requests_total",
		"Domain requests served, by routing mode (owner-local, hop, forwarded, failover, local-fallback).", "mode")
	c.mu.Unlock()
}

// Start launches the background health prober.
func (c *Cluster) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(),
					c.cfg.ProbeInterval+time.Duration(len(c.cfg.Members))*c.cfg.ProbeTimeout)
				c.membership.ProbeNow(ctx)
				cancel()
			}
		}
	}()
}

// Stop halts the prober; idempotent, and safe without Start.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
}

// Self reports this node's ID.
func (c *Cluster) Self() string { return c.cfg.Self }

// Replication reports the effective replication factor.
func (c *Cluster) Replication() int { return c.cfg.Replication }

// Ring exposes the placement ring (read-only).
func (c *Cluster) Ring() *Ring { return c.ring }

// Membership exposes the health table.
func (c *Cluster) Membership() *Membership { return c.membership }

// Forwarder exposes the peer-forwarding client.
func (c *Cluster) Forwarder() *Forwarder { return c.forwarder }

// ProbeNow runs one synchronous probe round (tests, and the drain
// integration path where waiting a full interval would be flaky).
func (c *Cluster) ProbeNow(ctx context.Context) { c.membership.ProbeNow(ctx) }

// Owners returns the domain's owner set, primary first.
func (c *Cluster) Owners(domain string) []string {
	return c.ring.Owners(domain, c.cfg.Replication)
}

// IsOwner reports whether this node is among the domain's owners.
func (c *Cluster) IsOwner(domain string) bool {
	for _, id := range c.Owners(domain) {
		if id == c.cfg.Self {
			return true
		}
	}
	return false
}

// countServe records one served request's routing mode.
func (c *Cluster) countServe(mode string) {
	c.mu.Lock()
	c.served[mode]++
	cv := c.cServe
	c.mu.Unlock()
	if cv != nil {
		cv.With(mode).Inc()
	}
}

// CountLocal records a request served by this node's own handlers:
// mode "owner-local" when the ring agrees, "hop" when it arrived via a
// peer forward (the hop guard), "local-fallback" when every owning
// peer was unavailable and the node served anyway.
func (c *Cluster) CountLocal(mode string) { c.countServe(mode) }

// ForwardOrder returns the peers to try, in order, for a domain this
// node does not own: alive owners first (ring order), then suspect
// owners as a last resort before local fallback. Dead peers and peers
// whose breaker is open are excluded outright — an open breaker means
// recent forwards failed, and failover exists to route around exactly
// that.
func (c *Cluster) ForwardOrder(domain string) []Member {
	owners := c.Owners(domain)
	var alive, suspect []Member
	for _, id := range owners {
		if id == c.cfg.Self {
			continue
		}
		m, ok := c.membership.Member(id)
		if !ok {
			continue
		}
		if c.forwarder.BreakerState(id) == resilience.BreakerOpen {
			continue
		}
		switch c.membership.State(id) {
		case StateAlive:
			alive = append(alive, m)
		case StateSuspect:
			suspect = append(suspect, m)
		}
	}
	return append(alive, suspect...)
}

// Serve routes one domain request: serve locally when this node owns
// the domain or the request already hopped; otherwise forward to the
// primary and fail over down the owner list, landing on a local serve
// when every owner is unreachable. It returns true when the response
// was written (a successful forward); false means the caller should
// run its local handler, after which the routing mode has already been
// counted.
func (c *Cluster) Serve(w http.ResponseWriter, r *http.Request, domain string) bool {
	if r.Header.Get(ForwardedHeader) != "" {
		c.countServe("hop")
		return false
	}
	if c.IsOwner(domain) {
		c.countServe("owner-local")
		return false
	}
	order := c.ForwardOrder(domain)
	for i, peer := range order {
		res, err := c.forwarder.Forward(r.Context(), peer, r)
		if err != nil {
			continue
		}
		if i == 0 {
			c.countServe("forwarded")
		} else {
			c.countServe("failover")
		}
		for k, vs := range res.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Set(ServedByHeader, peer.ID)
		w.WriteHeader(res.Status)
		w.Write(res.Body)
		return true
	}
	c.countServe("local-fallback")
	return false
}

// Served snapshots the routing-mode counters.
func (c *Cluster) Served() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.served))
	for k, v := range c.served {
		out[k] = v
	}
	return out
}

// Stats assembles the cluster block for /stats, with per-domain owner
// sets for the provided domain keys.
func (c *Cluster) Stats(domains []string) Stats {
	owners := make(map[string][]string, len(domains))
	for _, d := range domains {
		owners[d] = c.Owners(d)
	}
	return Stats{
		Self:        c.cfg.Self,
		Replication: c.cfg.Replication,
		Nodes:       c.ring.Nodes(),
		Owners:      owners,
		Members:     c.membership.Statuses(),
		Breakers:    c.forwarder.BreakerStates(),
		Forwards:    c.Served(),
	}
}
