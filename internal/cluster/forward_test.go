package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"webiq/internal/obs"
	"webiq/internal/resilience"
)

// fastForwardOpts keeps tests quick: no backoff sleeps to speak of,
// one-failure breaker where wanted.
func fastForwardOpts(client *http.Client) ForwarderOptions {
	return ForwarderOptions{
		Retry:  resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		Client: client,
		Seed:   1,
	}
}

// TestForwardStampsHopGuard: a forwarded request carries the sender's
// node ID in X-WebIQ-Forwarded and relays the peer's body and
// content type.
func TestForwardStampsHopGuard(t *testing.T) {
	var gotHop atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHop.Store(r.Header.Get(ForwardedHeader))
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<html>peer answer</html>")
	}))
	defer ts.Close()

	peer := Member{ID: "p1", BaseURL: ts.URL}
	f := NewForwarder("self-node", []Member{peer}, fastForwardOpts(ts.Client()))
	req := httptest.NewRequest("GET", "/unified/airfare?x=1", nil)
	res, err := f.Forward(context.Background(), peer, req)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	if hop, _ := gotHop.Load().(string); hop != "self-node" {
		t.Fatalf("hop header = %q, want self-node", hop)
	}
	if res.Status != 200 || !strings.Contains(string(res.Body), "peer answer") {
		t.Fatalf("res = %d %q", res.Status, res.Body)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q not relayed", ct)
	}
}

// TestForwardRetriesTransientThenSucceeds: one 500 then a 200 succeeds
// within the retry budget, and the metrics count both attempts.
func TestForwardRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()

	peer := Member{ID: "p1", BaseURL: ts.URL}
	f := NewForwarder("self", []Member{peer}, fastForwardOpts(ts.Client()))
	reg := obs.NewRegistry()
	f.Instrument(reg)

	res, err := f.Forward(context.Background(), peer, httptest.NewRequest("GET", "/unified/book", nil))
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	if res.Status != 200 {
		t.Fatalf("status = %d", res.Status)
	}
	forwards := reg.CounterVec("webiq_cluster_forwards_total", "", "peer", "outcome")
	if got := forwards.With("p1", "error").Value(); got != 1 {
		t.Fatalf("error count = %v, want 1", got)
	}
	if got := forwards.With("p1", "ok").Value(); got != 1 {
		t.Fatalf("ok count = %v, want 1", got)
	}
}

// TestForwardBreakerOpensAndReports: persistent peer failure trips the
// per-peer breaker; further forwards fail fast with ErrBreakerOpen,
// the state shows on BreakerStates, and the transition hook fires with
// the peer ID.
func TestForwardBreakerOpensAndReports(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	peer := Member{ID: "p1", BaseURL: ts.URL}
	opts := fastForwardOpts(ts.Client())
	opts.Breaker = resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour, HalfOpenProbes: 1}
	f := NewForwarder("self", []Member{peer}, opts)
	reg := obs.NewRegistry()
	f.Instrument(reg)

	type flip struct {
		peer     string
		from, to resilience.BreakerState
	}
	flips := make(chan flip, 8)
	f.OnBreakerTransition(func(p string, from, to resilience.BreakerState) {
		flips <- flip{p, from, to}
	})

	// Each Forward makes 2 attempts; one call trips the 2-failure
	// breaker.
	if _, err := f.Forward(context.Background(), peer, httptest.NewRequest("GET", "/unified/job", nil)); err == nil {
		t.Fatal("forward to failing peer succeeded")
	}
	select {
	case fl := <-flips:
		if fl.peer != "p1" || fl.to != resilience.BreakerOpen {
			t.Fatalf("transition = %+v, want p1 -> open", fl)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("breaker transition hook never fired")
	}
	if st := f.BreakerStates()["p1"]; st != "open" {
		t.Fatalf("breaker state = %q, want open", st)
	}
	if f.BreakerState("p1") != resilience.BreakerOpen {
		t.Fatal("BreakerState(p1) != open")
	}
	// Fast-fail path: no backend call, ErrBreakerOpen surfaces.
	if _, err := f.Forward(context.Background(), peer, httptest.NewRequest("GET", "/unified/job", nil)); err == nil {
		t.Fatal("forward with open breaker succeeded")
	}
	// Gauge followed the hook.
	if got := reg.GaugeVec("webiq_cluster_peer_breaker_state", "", "peer").With("p1").Value(); got != float64(resilience.BreakerOpen) {
		t.Fatalf("breaker gauge = %v, want open(2)", got)
	}
}

// TestClusterForwardOrderSkipsUnhealthy: dead peers and open breakers
// leave the forward order; suspect peers rank after alive ones.
func TestClusterForwardOrderSkipsUnhealthy(t *testing.T) {
	probe := &scriptedProbe{}
	probe.set(map[string]bool{})
	members := []Member{
		{ID: "n1", BaseURL: "http://n1"},
		{ID: "n2", BaseURL: "http://n2"},
		{ID: "n3", BaseURL: "http://n3"},
	}
	c := New(Config{
		Self: "n0", Members: append([]Member{{ID: "n0", BaseURL: "http://n0"}}, members...),
		Replication: 3, DeadAfter: 2, Probe: probe.fn,
	})
	defer c.Stop()

	// Find a domain whose owner set excludes self so the order includes
	// three peers.
	domain := ""
	for i := 0; i < 200; i++ {
		d := fmt.Sprintf("dom-%d", i)
		if !c.IsOwner(d) {
			domain = d
			break
		}
	}
	if domain == "" {
		t.Skip("no domain with 3 non-self owners found (unlucky ring)")
	}
	base := c.ForwardOrder(domain)
	if len(base) != 3 {
		t.Fatalf("forward order = %v, want 3 peers", base)
	}

	// Mark the first suspect: it must drop behind the others.
	probe.set(map[string]bool{base[0].ID: true})
	c.ProbeNow(context.Background())
	order := c.ForwardOrder(domain)
	if len(order) != 3 || order[len(order)-1].ID != base[0].ID {
		t.Fatalf("suspect peer not demoted: %v (was %v)", order, base)
	}

	// A second failed probe kills it (DeadAfter=2): it must vanish.
	c.ProbeNow(context.Background())
	order = c.ForwardOrder(domain)
	if len(order) != 2 {
		t.Fatalf("dead peer still in forward order: %v", order)
	}
	for _, m := range order {
		if m.ID == base[0].ID {
			t.Fatalf("dead peer %s still present", m.ID)
		}
	}
}
