package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"webiq/internal/obs"
)

// NodeState is a peer's position in the health state machine. The
// numeric values are exported on the webiq_cluster_peer_state gauge:
// 0 alive, 1 suspect, 2 dead.
type NodeState int

// Health states. One failed (or not-ready) probe moves a peer from
// alive to suspect — forwarding stops immediately, which is what makes
// a draining node leave the rotation within one probe interval — and
// DeadAfter consecutive failures move it to dead. A single successful
// probe restores alive from either state.
const (
	StateAlive NodeState = iota
	StateSuspect
	StateDead
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "alive"
	}
}

// Member is one node of the cluster.
type Member struct {
	ID      string
	BaseURL string
}

// MemberStatus is a point-in-time view of one peer's health, as served
// on /stats and /cluster/stats.
type MemberStatus struct {
	ID       string    `json:"id"`
	BaseURL  string    `json:"base_url"`
	State    string    `json:"state"`
	Failures int       `json:"consecutive_failures,omitempty"`
	LastErr  string    `json:"last_error,omitempty"`
	Probes   int       `json:"probes"`
	state    NodeState // typed state for callers inside the package
}

// ProbeFunc checks one peer's readiness; returning a non-nil error
// marks the probe failed. The default implementation GETs
// {BaseURL}/readyz and fails on transport errors and on any non-2xx
// status — a draining node answers /readyz with 503, so drain and
// death look the same to membership, which is the point.
type ProbeFunc func(ctx context.Context, m Member) error

// HTTPProbe returns the default ProbeFunc over client (http.DefaultClient
// when nil).
func HTTPProbe(client *http.Client) ProbeFunc {
	if client == nil {
		client = http.DefaultClient
	}
	return func(ctx context.Context, m Member) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.BaseURL+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return fmt.Errorf("cluster: probe %s: /readyz answered %d", m.ID, resp.StatusCode)
		}
		return nil
	}
}

// memberInfo is one peer's mutable health record.
type memberInfo struct {
	member  Member
	state   NodeState
	fails   int
	probes  int
	lastErr string
}

// Membership tracks peer health. Probing runs on the caller's schedule
// (Cluster's prober goroutine, or ProbeNow in tests); the table itself
// is just a guarded map.
type Membership struct {
	deadAfter int
	probe     ProbeFunc
	timeout   time.Duration

	mu      sync.Mutex
	members map[string]*memberInfo

	// Metrics (nil-safe).
	gState *obs.GaugeVec   // webiq_cluster_peer_state{peer}
	cFlips *obs.CounterVec // webiq_cluster_peer_transitions_total{peer,state}
}

// NewMembership builds the table over peers (self excluded by the
// caller). deadAfter <= 0 takes 3; timeout <= 0 takes 500ms; a nil
// probe takes HTTPProbe(nil). Every peer starts alive: a cluster boots
// optimistic and demotes on evidence, rather than refusing to forward
// until the first probe round lands.
func NewMembership(peers []Member, deadAfter int, timeout time.Duration, probe ProbeFunc) *Membership {
	if deadAfter <= 0 {
		deadAfter = 3
	}
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	if probe == nil {
		probe = HTTPProbe(nil)
	}
	m := &Membership{
		deadAfter: deadAfter,
		probe:     probe,
		timeout:   timeout,
		members:   make(map[string]*memberInfo, len(peers)),
	}
	for _, p := range peers {
		m.members[p.ID] = &memberInfo{member: p, state: StateAlive}
	}
	return m
}

// Instrument registers the membership metrics on r.
func (m *Membership) Instrument(r *obs.Registry) {
	m.gState = r.GaugeVec("webiq_cluster_peer_state",
		"Peer health state: 0 alive, 1 suspect, 2 dead.", "peer")
	m.cFlips = r.CounterVec("webiq_cluster_peer_transitions_total",
		"Peer health-state transitions, by peer and new state.", "peer", "state")
	m.mu.Lock()
	for id, info := range m.members {
		m.gState.With(id).Set(float64(info.state))
	}
	m.mu.Unlock()
}

// State returns the peer's health (StateDead for an unknown peer, so a
// misconfigured ID is never forwarded to).
func (m *Membership) State(id string) NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.members[id]
	if !ok {
		return StateDead
	}
	return info.state
}

// Member resolves a peer by ID.
func (m *Membership) Member(id string) (Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.members[id]
	if !ok {
		return Member{}, false
	}
	return info.member, true
}

// Statuses snapshots every peer, sorted by ID.
func (m *Membership) Statuses() []MemberStatus {
	m.mu.Lock()
	out := make([]MemberStatus, 0, len(m.members))
	for _, info := range m.members {
		out = append(out, MemberStatus{
			ID:       info.member.ID,
			BaseURL:  info.member.BaseURL,
			State:    info.state.String(),
			Failures: info.fails,
			LastErr:  info.lastErr,
			Probes:   info.probes,
			state:    info.state,
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ProbeNow probes every peer once, sequentially, and applies the state
// machine. The per-peer timeout bounds each probe; a hung peer costs
// one timeout, not a stuck prober.
func (m *Membership) ProbeNow(ctx context.Context) {
	m.mu.Lock()
	ids := make([]string, 0, len(m.members))
	for id := range m.members {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		member, ok := m.Member(id)
		if !ok {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, m.timeout)
		err := m.probe(pctx, member)
		cancel()
		m.record(id, err)
		if ctx.Err() != nil {
			return
		}
	}
}

// record applies one probe outcome to the state machine.
func (m *Membership) record(id string, err error) {
	m.mu.Lock()
	info, ok := m.members[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	info.probes++
	prev := info.state
	if err == nil {
		info.fails = 0
		info.state = StateAlive
		info.lastErr = ""
	} else {
		info.fails++
		info.lastErr = err.Error()
		if info.fails >= m.deadAfter {
			info.state = StateDead
		} else {
			info.state = StateSuspect
		}
	}
	next := info.state
	m.mu.Unlock()
	if next != prev {
		if m.gState != nil {
			m.gState.With(id).Set(float64(next))
		}
		if m.cFlips != nil {
			m.cFlips.With(id, next.String()).Inc()
		}
	}
}
