package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"webiq/internal/resilience"
)

// newTestTrio builds a 3-node cluster view from n1's perspective, with
// n2 and n3 backed by real httptest servers.
func newTestTrio(t *testing.T, handler func(node string) http.Handler) (*Cluster, map[string]*httptest.Server) {
	t.Helper()
	servers := map[string]*httptest.Server{}
	members := []Member{{ID: "n1", BaseURL: "http://unused-self"}}
	for _, id := range []string{"n2", "n3"} {
		ts := httptest.NewServer(handler(id))
		t.Cleanup(ts.Close)
		servers[id] = ts
		members = append(members, Member{ID: id, BaseURL: ts.URL})
	}
	c := New(Config{
		Self:        "n1",
		Members:     members,
		Replication: 2,
		DeadAfter:   2,
		Forward: ForwarderOptions{
			Retry: resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
			Seed:  7,
		},
	})
	t.Cleanup(c.Stop)
	return c, servers
}

// TestClusterServeRouting pins Serve's decision table: hop-guarded
// requests and owned domains serve locally, a non-owned domain
// forwards to an owner and relays its response with ServedByHeader.
func TestClusterServeRouting(t *testing.T) {
	c, _ := newTestTrio(t, func(node string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "answer from %s", node)
		})
	})

	// A domain this node owns: local serve, counted owner-local.
	owned, foreign := "", ""
	for i := 0; i < 500 && (owned == "" || foreign == ""); i++ {
		d := fmt.Sprintf("dom-%d", i)
		if c.IsOwner(d) {
			if owned == "" {
				owned = d
			}
		} else if foreign == "" {
			foreign = d
		}
	}
	if owned == "" || foreign == "" {
		t.Fatalf("could not find owned+foreign domains (owned=%q foreign=%q)", owned, foreign)
	}

	rec := httptest.NewRecorder()
	if done := c.Serve(rec, httptest.NewRequest("GET", "/unified/"+owned, nil), owned); done {
		t.Fatal("owned domain was forwarded, want local serve")
	}

	// Hop guard: forwarded requests never re-forward, even for foreign
	// domains.
	req := httptest.NewRequest("GET", "/unified/"+foreign, nil)
	req.Header.Set(ForwardedHeader, "n9")
	if done := c.Serve(httptest.NewRecorder(), req, foreign); done {
		t.Fatal("hop-guarded request was re-forwarded")
	}

	// Foreign domain: forwarded to an owner, response relayed.
	rec = httptest.NewRecorder()
	if done := c.Serve(rec, httptest.NewRequest("GET", "/unified/"+foreign, nil), foreign); !done {
		t.Fatal("foreign domain served locally, want forward")
	}
	if rec.Code != 200 {
		t.Fatalf("forwarded status = %d", rec.Code)
	}
	served := rec.Header().Get(ServedByHeader)
	if served != c.Owners(foreign)[0] {
		t.Fatalf("served by %q, want primary %q", served, c.Owners(foreign)[0])
	}

	counts := c.Served()
	for _, mode := range []string{"owner-local", "hop", "forwarded"} {
		if counts[mode] != 1 {
			t.Fatalf("served[%s] = %d, want 1 (all: %v)", mode, counts[mode], counts)
		}
	}
}

// TestClusterFailoverToReplica: the primary's server is down, so Serve
// must fail over to the replica, and after probes mark the primary
// dead the failover is breaker/probe-free.
func TestClusterFailoverToReplica(t *testing.T) {
	c, servers := newTestTrio(t, func(node string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "answer from %s", node)
		})
	})

	// A domain owned by [n2, n3] or [n3, n2] — both non-self.
	foreign := ""
	for i := 0; i < 500; i++ {
		d := fmt.Sprintf("dom-%d", i)
		if !c.IsOwner(d) {
			foreign = d
			break
		}
	}
	if foreign == "" {
		t.Fatal("no foreign domain found")
	}
	owners := c.Owners(foreign)
	servers[owners[0]].Close() // kill the primary

	rec := httptest.NewRecorder()
	if done := c.Serve(rec, httptest.NewRequest("GET", "/unified/"+foreign, nil), foreign); !done {
		t.Fatal("foreign domain served locally, want replica failover")
	}
	if rec.Code != 200 || rec.Header().Get(ServedByHeader) != owners[1] {
		t.Fatalf("failover: status %d served-by %q, want 200 from %s",
			rec.Code, rec.Header().Get(ServedByHeader), owners[1])
	}
	if c.Served()["failover"] != 1 {
		t.Fatalf("served = %v, want failover=1", c.Served())
	}

	// Kill the replica too: with no owner reachable, Serve falls back
	// to the local handler — every domain stays servable.
	servers[owners[1]].Close()
	rec = httptest.NewRecorder()
	if done := c.Serve(rec, httptest.NewRequest("GET", "/unified/"+foreign, nil), foreign); done {
		t.Fatal("all owners dead: want local fallback, got forward")
	}
	if c.Served()["local-fallback"] != 1 {
		t.Fatalf("served = %v, want local-fallback=1", c.Served())
	}
}

// TestClusterStatsShape: the Stats block carries ring, membership,
// breakers, and routing counters.
func TestClusterStatsShape(t *testing.T) {
	c, _ := newTestTrio(t, func(string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {})
	})
	c.ProbeNow(context.Background())
	st := c.Stats([]string{"airfare", "book"})
	if st.Self != "n1" || st.Replication != 2 {
		t.Fatalf("stats identity = %+v", st)
	}
	if len(st.Nodes) != 3 {
		t.Fatalf("nodes = %v", st.Nodes)
	}
	if len(st.Owners["airfare"]) != 2 || len(st.Owners["book"]) != 2 {
		t.Fatalf("owners = %v", st.Owners)
	}
	if len(st.Members) != 2 {
		t.Fatalf("members = %+v", st.Members)
	}
	for _, m := range st.Members {
		if m.State != "alive" {
			t.Fatalf("member %s state = %s after successful probe", m.ID, m.State)
		}
	}
	if len(st.Breakers) != 2 {
		t.Fatalf("breakers = %v", st.Breakers)
	}
}

// TestClusterProberLifecycle: Start probes on the interval; Stop is
// idempotent and safe without Start.
func TestClusterProberLifecycle(t *testing.T) {
	probe := &scriptedProbe{}
	probe.set(map[string]bool{"p1": true})
	c := New(Config{
		Self:          "self",
		Members:       []Member{{ID: "self"}, {ID: "p1", BaseURL: "http://p1"}},
		ProbeInterval: 10 * time.Millisecond,
		DeadAfter:     2,
		Probe:         probe.fn,
	})
	c.Start()
	c.Start() // second Start is a no-op, not a second prober
	deadline := time.Now().Add(5 * time.Second)
	for c.Membership().State("p1") != StateDead {
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the failing peer dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent

	unstarted := New(Config{Self: "a", Members: []Member{{ID: "a"}}})
	unstarted.Stop() // must not hang
}
