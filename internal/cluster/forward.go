package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"

	"webiq/internal/obs"
	"webiq/internal/resilience"
)

// ForwardedHeader is the hop guard: a node forwarding a request stamps
// it with its own node ID, and a node receiving a stamped request
// serves it locally no matter what the ring says. Every request
// therefore crosses at most one peer hop — a stale or disagreeing ring
// can misplace a request, but can never orbit it.
const ForwardedHeader = "X-WebIQ-Forwarded"

// ServedByHeader names the node whose handler produced the response,
// so clients (and the chaos harness) can see failover happen.
const ServedByHeader = "X-WebIQ-Served-By"

// maxForwardBody bounds how much of a peer response the forwarder will
// buffer. Responses are buffered in full before any byte is written to
// the client so a mid-body peer failure can still fail over cleanly.
const maxForwardBody = 8 << 20

// ForwardResult is one buffered peer response.
type ForwardResult struct {
	Status int
	Header http.Header
	Body   []byte
}

// peerClient is the per-peer resilient call chain:
// bulkhead -> retry+backoff -> breaker -> HTTP.
type peerClient struct {
	id   string
	retr *resilience.Retrier
	br   *resilience.Breaker
	bh   *resilience.Bulkhead
}

// ForwarderOptions tune the forwarder. Zero values take the resilience
// layer defaults.
type ForwarderOptions struct {
	Retry   resilience.RetryPolicy
	Breaker resilience.BreakerConfig
	// MaxConcurrentPerPeer bounds in-flight forwards per peer (the
	// bulkhead); <= 0 means 32.
	MaxConcurrentPerPeer int
	Clock                resilience.Clock
	// Seed drives the retry jitter streams (deterministic tests).
	Seed int64
	// Client is the HTTP client used for forwards (http.DefaultClient
	// when nil); give it a timeout in production wiring.
	Client *http.Client
}

// Forwarder sends misrouted requests to owning peers. One peerClient
// per peer keeps the failure domains apart: a dead peer trips only its
// own breaker, and forwards to healthy peers never queue behind it.
type Forwarder struct {
	self  string
	httpc *http.Client

	mu    sync.Mutex
	peers map[string]*peerClient
	opts  ForwarderOptions

	// Metrics (nil-safe).
	cForwards *obs.CounterVec // webiq_cluster_forwards_total{peer,outcome}
	gBreaker  *obs.GaugeVec   // webiq_cluster_peer_breaker_state{peer}
}

// NewForwarder builds the forwarder for self, creating one resilient
// client per peer.
func NewForwarder(self string, peers []Member, opts ForwarderOptions) *Forwarder {
	if opts.MaxConcurrentPerPeer <= 0 {
		opts.MaxConcurrentPerPeer = 32
	}
	httpc := opts.Client
	if httpc == nil {
		httpc = http.DefaultClient
	}
	f := &Forwarder{
		self:  self,
		httpc: httpc,
		peers: make(map[string]*peerClient, len(peers)),
		opts:  opts,
	}
	for _, p := range peers {
		f.peers[p.ID] = &peerClient{
			id:   p.ID,
			retr: resilience.NewRetrier(opts.Retry, opts.Clock, opts.Seed^int64(fnv1a64(p.ID))),
			br:   resilience.NewBreaker(opts.Breaker, opts.Clock),
			bh:   resilience.NewBulkhead(opts.MaxConcurrentPerPeer),
		}
	}
	return f
}

// Instrument registers the forward metrics on r and wires the per-peer
// breaker gauges.
func (f *Forwarder) Instrument(r *obs.Registry) {
	f.cForwards = r.CounterVec("webiq_cluster_forwards_total",
		"Peer-forward attempts, by peer and outcome (ok, error, breaker-open).", "peer", "outcome")
	f.gBreaker = r.GaugeVec("webiq_cluster_peer_breaker_state",
		"Per-peer forwarding circuit breaker: 0 closed, 1 half-open, 2 open.", "peer")
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, pc := range f.peers {
		gauge := f.gBreaker.With(id)
		gauge.Set(float64(pc.br.State()))
		pc.br.SetTransitionHook(func(_, to resilience.BreakerState) {
			gauge.Set(float64(to))
		})
	}
}

// OnBreakerTransition chains fn onto every peer breaker's transition
// hook (after Instrument's gauge update), tagged with the peer ID —
// the flight recorder's breaker-open-peer trigger hooks here.
func (f *Forwarder) OnBreakerTransition(fn func(peer string, from, to resilience.BreakerState)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, pc := range f.peers {
		gauge := (*obs.Gauge)(nil)
		if f.gBreaker != nil {
			gauge = f.gBreaker.With(id)
		}
		pc.br.SetTransitionHook(func(from, to resilience.BreakerState) {
			if gauge != nil {
				gauge.Set(float64(to))
			}
			fn(id, from, to)
		})
	}
}

// BreakerStates snapshots every peer breaker (for /stats).
func (f *Forwarder) BreakerStates() map[string]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]string, len(f.peers))
	for id, pc := range f.peers {
		out[id] = pc.br.State().String()
	}
	return out
}

// BreakerState reports one peer's breaker position (closed for an
// unknown peer).
func (f *Forwarder) BreakerState(peer string) resilience.BreakerState {
	f.mu.Lock()
	pc := f.peers[peer]
	f.mu.Unlock()
	if pc == nil {
		return resilience.BreakerClosed
	}
	return pc.br.State()
}

// count bumps the forwards metric (nil-safe).
func (f *Forwarder) count(peer, outcome string) {
	if f.cForwards != nil {
		f.cForwards.With(peer, outcome).Inc()
	}
}

// Forward sends r to the named peer and returns the buffered response.
// The request is stamped with the hop-guard header; transport errors
// and 5xx peer responses count as failures (they trip the breaker and
// trigger failover in the caller), every other status is a valid
// answer to relay.
func (f *Forwarder) Forward(ctx context.Context, peer Member, r *http.Request) (*ForwardResult, error) {
	f.mu.Lock()
	pc := f.peers[peer.ID]
	f.mu.Unlock()
	if pc == nil {
		return nil, fmt.Errorf("cluster: no client for peer %q", peer.ID)
	}
	if err := pc.bh.Acquire(ctx); err != nil {
		return nil, err
	}
	defer pc.bh.Release()

	var out *ForwardResult
	err := pc.retr.Do(ctx, func(ctx context.Context) error {
		if err := pc.br.Allow(); err != nil {
			f.count(peer.ID, "breaker-open")
			return err
		}
		res, err := f.roundTrip(ctx, peer, r)
		pc.br.Record(err)
		if err != nil {
			f.count(peer.ID, "error")
			return err
		}
		out = res
		f.count(peer.ID, "ok")
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// roundTrip performs one forwarded HTTP call and buffers the response.
func (f *Forwarder) roundTrip(ctx context.Context, peer Member, r *http.Request) (*ForwardResult, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, peer.BaseURL+r.URL.RequestURI(), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(ForwardedHeader, f.self)
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := f.httpc.Do(req)
	if err != nil {
		// Transport failures are the transient class: retry within the
		// policy, then fail over.
		return nil, fmt.Errorf("%w: forward to %s: %v", resilience.ErrTransient, peer.ID, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		return nil, fmt.Errorf("%w: forward to %s: read: %v", resilience.ErrTransient, peer.ID, err)
	}
	if resp.StatusCode >= 500 {
		return nil, fmt.Errorf("%w: forward to %s: status %d", resilience.ErrTransient, peer.ID, resp.StatusCode)
	}
	hdr := make(http.Header, 2)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		hdr.Set("Content-Type", ct)
	}
	if tid := resp.Header.Get("X-Trace-ID"); tid != "" {
		hdr.Set("X-Trace-ID", tid)
	}
	return &ForwardResult{Status: resp.StatusCode, Header: hdr, Body: body}, nil
}
