// Package cluster turns a set of webiq-serve processes into one
// fault-tolerant service. Three pieces compose:
//
//   - Ring: a consistent-hash ring with virtual nodes assigning every
//     domain a primary plus R-1 replica owners, deterministic across
//     processes so each node computes the same placement locally;
//   - Membership: a health table (alive / suspect / dead) driven by
//     periodic peer probes of /readyz with timeouts, so a draining or
//     dead node leaves the forwarding set within one probe interval;
//   - Forwarder: a peer-forwarding HTTP client wrapped in the
//     internal/resilience retry + full-jitter backoff, a per-peer
//     circuit breaker, and a per-peer bulkhead, so a node receiving a
//     request for a domain it does not own forwards to the primary and
//     fails over to replicas when the primary is open, suspect, or
//     dead.
//
// A node with no peers configured never constructs this package:
// single-node serving is byte-identical to a build without it.
package cluster

import (
	"fmt"
	"sort"
)

// DefVirtualNodes is the number of ring points each node projects;
// 128 keeps both the per-node key share and the keys moved by a
// join/leave within a factor of ~2 of the ideal 1/N while leaving
// ring construction trivially cheap.
const DefVirtualNodes = 128

// fnv1a64 is the ring's hash. It is implemented inline (rather than
// through hash/fnv) so the placement function is auditably fixed: the
// ring must be deterministic across processes, architectures, and Go
// releases, because every node computes ownership locally and they
// must all agree.
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a node set. Keys
// (domains) are owned by the first distinct nodes clockwise from the
// key's hash; adding or removing one node moves only the keys whose
// arc it gained or lost (~1/N of them), which is what lets a cluster
// resize without a full reshuffle.
type Ring struct {
	vnodes int
	nodes  []string // sorted, distinct
	points []ringPoint
}

// NewRing builds a ring over nodes with the given virtual-node count
// (DefVirtualNodes when vnodes <= 0). Node order does not matter and
// duplicates are dropped: two processes given the same node set in any
// order build identical rings.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	distinct := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		distinct = append(distinct, n)
	}
	sort.Strings(distinct)
	r := &Ring{vnodes: vnodes, nodes: distinct}
	r.points = make([]ringPoint, 0, len(distinct)*vnodes)
	for _, n := range distinct {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: fnv1a64(fmt.Sprintf("%s#%d", n, i)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on node ID so the order
		// stays total and deterministic.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's node IDs, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Size reports the number of distinct nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// Owners returns the n distinct nodes owning key, primary first,
// walking clockwise from the key's hash. Fewer than n nodes on the
// ring returns all of them; an empty ring returns nil.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := fnv1a64(key)
	// First point at or after h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// Primary returns the first owner of key ("" on an empty ring).
func (r *Ring) Primary(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}
