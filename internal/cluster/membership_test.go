package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"webiq/internal/obs"
)

// scriptedProbe fails peers listed in the failing set.
type scriptedProbe struct {
	failing atomic.Value // map[string]bool
}

func (p *scriptedProbe) set(failing map[string]bool) { p.failing.Store(failing) }

func (p *scriptedProbe) fn(_ context.Context, m Member) error {
	f, _ := p.failing.Load().(map[string]bool)
	if f[m.ID] {
		return errors.New("probe failed")
	}
	return nil
}

// TestMembershipStateMachine walks one peer through
// alive -> suspect -> dead -> alive: the first failed probe demotes it
// immediately (one probe interval is all a draining node needs to
// leave the forwarding set), deadAfter consecutive failures kill it,
// one success fully restores it.
func TestMembershipStateMachine(t *testing.T) {
	probe := &scriptedProbe{}
	probe.set(map[string]bool{})
	m := NewMembership([]Member{{ID: "p1", BaseURL: "http://p1"}}, 3, time.Second, probe.fn)

	if got := m.State("p1"); got != StateAlive {
		t.Fatalf("initial state = %v, want alive", got)
	}

	probe.set(map[string]bool{"p1": true})
	m.ProbeNow(context.Background())
	if got := m.State("p1"); got != StateSuspect {
		t.Fatalf("after 1 failure state = %v, want suspect", got)
	}

	m.ProbeNow(context.Background())
	if got := m.State("p1"); got != StateSuspect {
		t.Fatalf("after 2 failures state = %v, want suspect (deadAfter=3)", got)
	}

	m.ProbeNow(context.Background())
	if got := m.State("p1"); got != StateDead {
		t.Fatalf("after 3 failures state = %v, want dead", got)
	}

	probe.set(map[string]bool{})
	m.ProbeNow(context.Background())
	if got := m.State("p1"); got != StateAlive {
		t.Fatalf("after recovery state = %v, want alive", got)
	}

	st := m.Statuses()
	if len(st) != 1 || st[0].ID != "p1" || st[0].State != "alive" || st[0].Probes != 4 {
		t.Fatalf("statuses = %+v", st)
	}
}

// TestMembershipUnknownPeerIsDead: forwarding must never target a peer
// the table does not know.
func TestMembershipUnknownPeerIsDead(t *testing.T) {
	m := NewMembership(nil, 0, 0, func(context.Context, Member) error { return nil })
	if got := m.State("ghost"); got != StateDead {
		t.Fatalf("unknown peer state = %v, want dead", got)
	}
}

// TestHTTPProbeReadyz pins the default probe semantics: 200 /readyz is
// alive, 503 (draining or unbuilt domains) and transport errors fail.
func TestHTTPProbeReadyz(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	probe := HTTPProbe(ts.Client())
	m := Member{ID: "p", BaseURL: ts.URL}
	if err := probe(context.Background(), m); err != nil {
		t.Fatalf("ready peer probe failed: %v", err)
	}
	ready.Store(false)
	if err := probe(context.Background(), m); err == nil {
		t.Fatal("503 /readyz probe succeeded, want failure")
	}
	ts.Close()
	if err := probe(context.Background(), m); err == nil {
		t.Fatal("probe of closed server succeeded, want transport error")
	}
}

// TestMembershipMetrics: state flips land on the peer-state gauge and
// the transition counter.
func TestMembershipMetrics(t *testing.T) {
	probe := &scriptedProbe{}
	probe.set(map[string]bool{"p1": true})
	m := NewMembership([]Member{{ID: "p1", BaseURL: "http://p1"}}, 2, time.Second, probe.fn)
	reg := obs.NewRegistry()
	m.Instrument(reg)

	m.ProbeNow(context.Background()) // alive -> suspect
	m.ProbeNow(context.Background()) // suspect -> dead
	if got := reg.GaugeVec("webiq_cluster_peer_state", "", "peer").With("p1").Value(); got != float64(StateDead) {
		t.Fatalf("peer-state gauge = %v, want %v", got, float64(StateDead))
	}
	flips := reg.CounterVec("webiq_cluster_peer_transitions_total", "", "peer", "state")
	if got := flips.With("p1", "suspect").Value(); got != 1 {
		t.Fatalf("suspect transitions = %v, want 1", got)
	}
	if got := flips.With("p1", "dead").Value(); got != 1 {
		t.Fatalf("dead transitions = %v, want 1", got)
	}
}
