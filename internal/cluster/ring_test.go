package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestRingDeterministicAcrossBuildOrder pins the cross-process
// contract: every node computes placement locally, so two rings built
// from the same node set — in any order, with duplicates — must agree
// on every owner list.
func TestRingDeterministicAcrossBuildOrder(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	a := NewRing(nodes, 0)
	shuffled := []string{"n4", "n2", "n5", "n1", "n3", "n2", "n1", ""}
	b := NewRing(shuffled, 0)

	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatalf("node sets differ: %v vs %v", a.Nodes(), b.Nodes())
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("domain-%d", i)
		oa, ob := a.Owners(key, 2), b.Owners(key, 2)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("owners(%q) differ: %v vs %v", key, oa, ob)
		}
	}
}

// TestRingGoldenPlacement pins the exact owner assignment of the five
// paper domains on a canonical 3-node ring. This is a tripwire: any
// change to the hash function, virtual-node labeling, or tie-breaking
// silently remaps every deployed cluster, and must show up as a
// deliberate golden update here.
func TestRingGoldenPlacement(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, DefVirtualNodes)
	got := map[string][]string{}
	for _, d := range []string{"airfare", "auto", "book", "job", "realestate"} {
		got[d] = r.Owners(d, 2)
	}
	// Golden values computed from FNV-1a 64 over "node#i" points (see
	// fnv1a64) at DefVirtualNodes=128. Regenerate deliberately if the
	// placement function ever changes:
	// for d, o := range got { t.Logf("%q: %v", d, o) }.
	want := map[string][]string{
		"airfare":    {"n3", "n1"},
		"auto":       {"n1", "n3"},
		"book":       {"n3", "n2"},
		"job":        {"n3", "n1"},
		"realestate": {"n2", "n3"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("placement changed:\n got %v\nwant %v", got, want)
	}
}

// TestRingOwnersBounds covers the edges: more replicas than nodes,
// empty ring, zero n.
func TestRingOwnersBounds(t *testing.T) {
	r := NewRing([]string{"a", "b"}, 8)
	if got := r.Owners("k", 5); len(got) != 2 {
		t.Fatalf("Owners(n>size) = %v, want both nodes", got)
	}
	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("Owners(0) = %v, want nil", got)
	}
	empty := NewRing(nil, 8)
	if got := empty.Owners("k", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	if p := empty.Primary("k"); p != "" {
		t.Fatalf("empty ring Primary = %q, want empty", p)
	}
}

// TestRingBoundedMovementOnJoinLeave is the consistent-hashing
// property the ring exists for: when one node joins or leaves an
// N-node ring, fewer than 2/N of the keys change primary. A modulo
// assignment would move ~(N-1)/N of them.
func TestRingBoundedMovementOnJoinLeave(t *testing.T) {
	const numKeys = 10_000
	nodes := make([]string, 10)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node-%02d", i)
	}
	base := NewRing(nodes, DefVirtualNodes)
	keys := make([]string, numKeys)
	rng := rand.New(rand.NewSource(42))
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d-%d", i, rng.Int63())
	}

	moved := func(a, b *Ring) int {
		n := 0
		for _, k := range keys {
			if a.Primary(k) != b.Primary(k) {
				n++
			}
		}
		return n
	}

	// Leave: drop one node; only its keys may move.
	smaller := NewRing(nodes[:9], DefVirtualNodes)
	bound := 2 * numKeys / 10 // 2/N of the keys
	if m := moved(base, smaller); m >= bound {
		t.Errorf("leave moved %d/%d keys, want < %d (2/N)", m, numKeys, bound)
	}
	// Every key that moved off the removed node must still be owned.
	for _, k := range keys {
		if smaller.Primary(k) == nodes[9] {
			t.Fatalf("key %q still assigned to removed node", k)
		}
	}

	// Join: add an 11th node; it may only take ~1/(N+1) of the keys.
	joined := NewRing(append(append([]string{}, nodes...), "node-10"), DefVirtualNodes)
	bound = 2 * numKeys / 11
	if m := moved(base, joined); m >= bound {
		t.Errorf("join moved %d/%d keys, want < %d (2/N)", m, numKeys, bound)
	}
	// And every moved key moved TO the new node, not between old ones.
	for _, k := range keys {
		if p := joined.Primary(k); p != base.Primary(k) && p != "node-10" {
			t.Fatalf("key %q moved between existing nodes: %s -> %s", k, base.Primary(k), p)
		}
	}
}

// TestRingReplicasShiftDown checks the failover contract: when a
// domain's primary leaves, the old first replica becomes primary for
// most keys (successor semantics), so replica warm-up from the same
// snapshot means the data is already there.
func TestRingReplicasShiftDown(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r := NewRing(nodes, DefVirtualNodes)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("dom-%d", i)
		owners := r.Owners(key, 2)
		// Remove the primary; the old replica must now be an owner.
		var rest []string
		for _, n := range nodes {
			if n != owners[0] {
				rest = append(rest, n)
			}
		}
		after := NewRing(rest, DefVirtualNodes).Owners(key, 2)
		if after[0] != owners[1] {
			t.Fatalf("key %q: owners %v, after removing %s got %v — old replica must take over",
				key, owners, owners[0], after)
		}
	}
}
