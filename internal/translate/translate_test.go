package translate

import (
	"strings"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/unify"
)

func setup(t *testing.T) (*Translator, int) {
	t.Helper()
	dom := kb.DomainByKey("airfare")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	cfg := deepweb.DefaultConfig()
	cfg.PartialQueryProb = 1
	pool := deepweb.BuildPool(ds, dom, cfg)
	res := matcher.New(matcher.DefaultConfig()).Match(ds)
	u := unify.Build(ds, res)
	return New(u, ds, pool), len(ds.Interfaces)
}

func TestAttributesListed(t *testing.T) {
	tr, _ := setup(t)
	attrs := tr.Attributes()
	if len(attrs) < 5 {
		t.Fatalf("unified attributes = %v", attrs)
	}
	joined := strings.Join(attrs, "|")
	if !strings.Contains(joined, "Class") && !strings.Contains(joined, "Cabin") {
		t.Errorf("no cabin-class attribute among %v", attrs)
	}
}

func TestQueryFansOut(t *testing.T) {
	tr, nIfcs := setup(t)
	// The origin-city cluster covers most interfaces; querying it with a
	// popular city must reach many sources and succeed on several.
	var label string
	for _, l := range tr.Attributes() {
		ll := strings.ToLower(l)
		if strings.Contains(ll, "from") || strings.Contains(ll, "city") || ll == "to" {
			label = l
			break
		}
	}
	if label == "" {
		t.Skip("no city-like unified attribute")
	}
	results, err := tr.Query(label, "Boston")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < nIfcs/3 {
		t.Errorf("query reached only %d of %d sources", len(results), nIfcs)
	}
	ok, total := Coverage(results)
	if ok == 0 {
		t.Errorf("no source answered Boston successfully (of %d)", total)
	}
}

func TestQueryRejectsBadValue(t *testing.T) {
	tr, _ := setup(t)
	var label string
	for _, l := range tr.Attributes() {
		if strings.Contains(strings.ToLower(l), "from") {
			label = l
			break
		}
	}
	if label == "" {
		t.Skip("no from attribute")
	}
	results, err := tr.Query(label, "NotACityAnywhere")
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := Coverage(results)
	if ok != 0 {
		t.Errorf("%d sources accepted a nonsense value", ok)
	}
}

func TestQueryUnknownAttribute(t *testing.T) {
	tr, _ := setup(t)
	if _, err := tr.Query("No Such Attribute", "x"); err == nil {
		t.Error("want error for unknown unified attribute")
	}
}

func TestCoverageEmpty(t *testing.T) {
	ok, total := Coverage(nil)
	if ok != 0 || total != 0 {
		t.Errorf("coverage = %d/%d", ok, total)
	}
}
