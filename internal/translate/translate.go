// Package translate executes queries posed against the unified interface
// by translating them to per-source form submissions — the final layer
// of the Deep-Web integration stack the paper motivates ("thereby making
// access to the individual sources transparent to users").
//
// A unified attribute carries the member attributes it was merged from;
// a query setting that attribute to a value fans out to every source
// owning a member, sets the member field to the value, and gathers the
// response pages.
package translate

import (
	"fmt"
	"sort"

	"webiq/internal/deepweb"
	"webiq/internal/schema"
	"webiq/internal/unify"
)

// Translator fans queries on a unified interface out to the sources.
type Translator struct {
	unified *unify.UnifiedInterface
	ds      *schema.Dataset
	pool    *deepweb.Pool
	// byLabel resolves unified attribute labels.
	byLabel map[string]*unify.UnifiedAttribute
	// owner maps member attribute ID to its interface ID.
	owner map[string]string
}

// New builds a Translator over the unified interface, the source
// dataset it was built from, and the sources' pool.
func New(u *unify.UnifiedInterface, ds *schema.Dataset, pool *deepweb.Pool) *Translator {
	t := &Translator{
		unified: u,
		ds:      ds,
		pool:    pool,
		byLabel: map[string]*unify.UnifiedAttribute{},
		owner:   map[string]string{},
	}
	for _, ua := range u.Attributes {
		t.byLabel[ua.Label] = ua
	}
	for _, ifc := range ds.Interfaces {
		for _, a := range ifc.Attributes {
			t.owner[a.ID] = ifc.ID
		}
	}
	return t
}

// Attributes lists the queryable unified attribute labels.
func (t *Translator) Attributes() []string {
	out := make([]string, 0, len(t.byLabel))
	for l := range t.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// SourceResult is one source's answer to a translated query.
type SourceResult struct {
	// InterfaceID identifies the source.
	InterfaceID string
	// AttrID is the member attribute the value was submitted through.
	AttrID string
	// OK reports whether the response-analysis heuristics classified
	// the submission as successful.
	OK bool
	// Page is the raw response page.
	Page string
}

// Query sets the unified attribute with the given label to value and
// submits the translated query to every source owning a member
// attribute. Results come back in interface-ID order.
func (t *Translator) Query(unifiedLabel, value string) ([]SourceResult, error) {
	ua, ok := t.byLabel[unifiedLabel]
	if !ok {
		return nil, fmt.Errorf("translate: unified interface has no attribute %q", unifiedLabel)
	}
	var out []SourceResult
	for _, member := range ua.Members {
		ifcID := t.owner[member]
		src := t.pool.Source(ifcID)
		if src == nil {
			continue
		}
		page := src.Probe(member, value)
		out = append(out, SourceResult{
			InterfaceID: ifcID,
			AttrID:      member,
			OK:          deepweb.AnalyzeResponse(page),
			Page:        page,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].InterfaceID < out[j].InterfaceID })
	return out, nil
}

// Coverage summarizes a result set: how many sources answered
// successfully out of those probed.
func Coverage(results []SourceResult) (ok, total int) {
	for _, r := range results {
		total++
		if r.OK {
			ok++
		}
	}
	return ok, total
}
