package webiq

import (
	"math"
	"sync"
	"testing"

	"webiq/internal/surfaceweb"
)

// stubEngine is a SearchEngine with scripted hit counts, counting the
// queries actually issued.
type stubEngine struct {
	mu      sync.Mutex
	hits    map[string]int
	queries int
}

func (s *stubEngine) Search(string, int) []surfaceweb.Snippet { return nil }

func (s *stubEngine) NumHits(q string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	return s.hits[q]
}

func TestValidatorPhrases(t *testing.T) {
	v := NewValidator(&stubEngine{}, DefaultConfig())
	got := v.Phrases("Make")
	want := map[string]bool{"make": true, "makes such as": true, "such makes as": true}
	if len(got) != 3 {
		t.Fatalf("phrases = %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected phrase %q", p)
		}
	}
}

func TestValidatorPhrasesBarePreposition(t *testing.T) {
	v := NewValidator(&stubEngine{}, DefaultConfig())
	got := v.Phrases("From")
	// Only the proximity phrase survives; no cue phrases without an NP.
	if len(got) != 1 || got[0] != "from" {
		t.Errorf("phrases = %v", got)
	}
}

func TestPMI(t *testing.T) {
	eng := &stubEngine{hits: map[string]int{
		`"make honda"`: 10,
		`"make"`:       100,
		`"honda"`:      50,
	}}
	v := NewValidator(eng, DefaultConfig())
	got := v.PMI("make", "Honda")
	want := 10.0 / (100 * 50)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PMI = %v, want %v", got, want)
	}
}

func TestPMIZeroJoint(t *testing.T) {
	eng := &stubEngine{hits: map[string]int{`"make"`: 100, `"january"`: 80}}
	v := NewValidator(eng, DefaultConfig())
	if got := v.PMI("make", "January"); got != 0 {
		t.Errorf("PMI = %v, want 0", got)
	}
	// Zero joint must short-circuit: no V/x queries issued.
	if eng.queries != 1 {
		t.Errorf("queries = %d, want 1 (joint only)", eng.queries)
	}
}

func TestPMICorrectsPopularityBias(t *testing.T) {
	// "January" co-occurs with "departure date" often because January is
	// everywhere; PMI must rank the rarer true instance higher when its
	// dependence is stronger.
	eng := &stubEngine{hits: map[string]int{
		`"month aug"`:     8,
		`"month"`:         100,
		`"aug"`:           20,
		`"month january"`: 12,
		`"january"`:       1000,
	}}
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	rare := v.PMI("month", "Aug")
	popular := v.PMI("month", "January")
	if rare <= popular {
		t.Errorf("PMI: rare=%v popular=%v; PMI should discount popularity", rare, popular)
	}

	// With raw hit counts (the ablation), the popular value wins —
	// demonstrating the bias PMI corrects.
	cfg.UseRawHitCounts = true
	vr := NewValidator(eng, cfg)
	if vr.PMI("month", "Aug") >= vr.PMI("month", "January") {
		t.Error("raw hit counts should prefer the popular value")
	}
}

func TestValidatorCaching(t *testing.T) {
	eng := &stubEngine{hits: map[string]int{
		`"make honda"`:  10,
		`"make toyota"`: 8,
		`"make"`:        100,
		`"honda"`:       50,
		`"toyota"`:      40,
	}}
	v := NewValidator(eng, DefaultConfig())
	v.PMI("make", "Honda")
	v.PMI("make", "Toyota")
	v.PMI("make", "Honda") // fully cached
	// Unique queries: make honda, make, honda, make toyota, toyota = 5.
	if eng.queries != 5 {
		t.Errorf("engine queries = %d, want 5 (caching)", eng.queries)
	}
}

func TestConfidenceAveragesPhrases(t *testing.T) {
	eng := &stubEngine{hits: map[string]int{
		`"make honda"`:          10,
		`"makes such as honda"`: 5,
		`"make"`:                100,
		`"makes such as"`:       50,
		`"honda"`:               50,
	}}
	v := NewValidator(eng, DefaultConfig())
	phrases := []string{"make", "makes such as"}
	got := v.Confidence(phrases, "Honda")
	want := (10.0/(100*50) + 5.0/(50*50)) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("confidence = %v, want %v", got, want)
	}
}

func TestConfidenceNoPhrases(t *testing.T) {
	v := NewValidator(&stubEngine{}, DefaultConfig())
	if got := v.Confidence(nil, "x"); got != 0 {
		t.Errorf("confidence = %v, want 0", got)
	}
}

func TestScoresVector(t *testing.T) {
	eng := &stubEngine{hits: map[string]int{
		`"a x"`: 2, `"a"`: 10, `"x"`: 5,
	}}
	v := NewValidator(eng, DefaultConfig())
	got := v.Scores([]string{"a", "b"}, "x")
	if len(got) != 2 {
		t.Fatalf("scores = %v", got)
	}
	if got[0] <= 0 || got[1] != 0 {
		t.Errorf("scores = %v", got)
	}
}
