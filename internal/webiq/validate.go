package webiq

import (
	"context"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"webiq/internal/nlp"
	"webiq/internal/resilience"
)

// Validator scores the semantic connection between an attribute label
// and an instance candidate from their co-occurrence statistics on the
// Surface Web, per Section 2.2: validation queries are formed from
// validation patterns, and co-occurrence is measured with pointwise
// mutual information to avoid popularity bias.
//
// Hit counts are memoized so that repeated sub-queries (NumHits(V),
// NumHits(x)) are charged to the search engine only once, mirroring how
// a careful client would cache Google hit counts. The memo is
// singleflight: when parallel validation workers miss on the same query
// simultaneously, one goroutine queries the engine and the rest wait,
// so the engine is charged exactly as often as in a sequential run.
type Validator struct {
	engine SearchEngine
	cfg    Config

	// fallible, when set, replaces engine for hit counting with an
	// error-aware backend (fault injection / resilient client). nil
	// keeps the infallible path byte-identical.
	fallible resilience.FallibleEngine

	mu       sync.Mutex
	cache    map[string]int
	inflight map[string]*hitsCall
}

// hitsCall is an in-progress engine query other workers wait on.
type hitsCall struct {
	done chan struct{}
	n    int
	err  error
}

// NewValidator returns a Validator over the given engine.
func NewValidator(engine SearchEngine, cfg Config) *Validator {
	return &Validator{engine: engine, cfg: cfg,
		cache: map[string]int{}, inflight: map[string]*hitsCall{}}
}

// SetFallible installs an error-aware engine for hit counting; nil
// restores the infallible pass-through.
func (v *Validator) SetFallible(e resilience.FallibleEngine) { v.fallible = e }

// numHits is the caching, singleflight hit counter.
func (v *Validator) numHits(query string) int {
	n, _ := v.numHitsKeyCtx(context.Background(), []byte(query))
	return n
}

// numHitsKey is numHits keyed by a byte buffer: the cache probe is
// zero-copy, and the query string is materialized only on a miss —
// where it doubles as the memo key and the raw engine query, keeping
// the engine's deterministic per-query latency identical to the
// string path.
func (v *Validator) numHitsKey(key []byte) int {
	n, _ := v.numHitsKeyCtx(context.Background(), key)
	return n
}

// numHitsKeyCtx is the error-aware core of the memo. Failed queries are
// never cached — a later retry of the same query hits the backend again
// — but concurrent waiters on the same in-flight call do share the
// failure (and may bail out early on their own context).
func (v *Validator) numHitsKeyCtx(ctx context.Context, key []byte) (int, error) {
	v.mu.Lock()
	if n, ok := v.cache[string(key)]; ok {
		v.mu.Unlock()
		return n, nil
	}
	if c, ok := v.inflight[string(key)]; ok {
		v.mu.Unlock()
		select {
		case <-c.done:
			return c.n, c.err
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	query := string(key)
	c := &hitsCall{done: make(chan struct{})}
	v.inflight[query] = c
	v.mu.Unlock()

	if v.fallible != nil {
		c.n, c.err = v.fallible.NumHits(ctx, query)
	} else {
		c.n = v.engine.NumHits(query)
	}

	v.mu.Lock()
	if c.err == nil {
		v.cache[query] = c.n
	}
	delete(v.inflight, query)
	v.mu.Unlock()
	close(c.done)
	return c.n, c.err
}

// Phrases returns the validation phrases for an attribute label: the
// proximity-based phrase (the label itself) and the cue-phrase-based
// phrases built from the label's noun phrase ("makes such as",
// "such makes as").
func (v *Validator) Phrases(label string) []string {
	var out []string
	lw := strings.Join(nlp.Words(label), " ")
	if lw != "" {
		out = append(out, lw)
	}
	ls := nlp.AnalyzeLabel(label)
	if len(ls.NPs) > 0 {
		plural := ls.NPs[0].Plural()
		out = append(out, plural+" such as", "such "+plural+" as")
	}
	return out
}

// PMI computes the paper's adapted pointwise mutual information between
// a validation phrase V and a candidate x:
//
//	PMI(V, x) = NumHits(V + x) / (NumHits(V) · NumHits(x))
//
// With Config.UseRawHitCounts (ablation), it returns NumHits(V + x)
// directly, exhibiting the popularity bias PMI corrects.
func (v *Validator) PMI(phrase, x string) float64 {
	val, _ := v.PMICtx(context.Background(), phrase, x)
	return val
}

// PMICtx is PMI with error propagation from a fallible engine: when a
// hit-count query fails terminally the score is unusable and the error
// is returned for the caller's degradation policy. With no fallible
// engine installed it never errors and is byte-identical to PMI.
func (v *Validator) PMICtx(ctx context.Context, phrase, x string) (float64, error) {
	// Build the three query keys in one pooled buffer; each is
	// byte-identical to the string concatenation it replaces, so hit
	// counts and simulated latencies are unchanged.
	bp := foldBuf()
	buf := (*bp)[:0]
	buf = append(buf, '"')
	buf = append(buf, phrase...)
	buf = append(buf, ' ')
	buf = appendLower(buf, x)
	buf = append(buf, '"')
	joint, err := v.numHitsKeyCtx(ctx, buf)

	ret := func(val float64, err error) (float64, error) {
		*bp = buf
		putFoldBuf(bp)
		return val, err
	}
	if err != nil {
		return ret(0, err)
	}
	if v.cfg.UseRawHitCounts {
		return ret(float64(joint), nil)
	}
	if joint == 0 {
		return ret(0, nil)
	}
	buf = append(buf[:0], '"')
	buf = append(buf, phrase...)
	buf = append(buf, '"')
	hv, err := v.numHitsKeyCtx(ctx, buf)
	if err != nil {
		return ret(0, err)
	}
	buf = append(buf[:0], '"')
	buf = appendLower(buf, x)
	buf = append(buf, '"')
	hx, err := v.numHitsKeyCtx(ctx, buf)
	if err != nil {
		return ret(0, err)
	}
	if hv == 0 || hx == 0 {
		return ret(0, nil)
	}
	return ret(float64(joint)/(float64(hv)*float64(hx)), nil)
}

// appendLower appends the lower-cased s to dst, byte-for-byte identical
// to strings.ToLower(s) — including U+FFFD replacement of invalid
// UTF-8 — because the result feeds engine queries whose simulated
// latency is deterministic in the exact bytes.
func appendLower(dst []byte, s string) []byte {
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			dst = append(dst, c)
			i++
			continue
		}
		r, w := utf8.DecodeRuneInString(s[i:])
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
		i += w
	}
	return dst
}

// Scores returns the per-phrase validation scores of candidate x for
// the given phrases — the validation vector M of Section 3.1.
func (v *Validator) Scores(phrases []string, x string) []float64 {
	out := make([]float64, len(phrases))
	for i, p := range phrases {
		out[i] = v.PMI(p, x)
	}
	return out
}

// ScoresCtx is Scores with error propagation: it fails on the first
// phrase whose hit counts are unavailable, since a partially scored
// vector cannot feed the classifier.
func (v *Validator) ScoresCtx(ctx context.Context, phrases []string, x string) ([]float64, error) {
	out := make([]float64, len(phrases))
	for i, p := range phrases {
		var err error
		if out[i], err = v.PMICtx(ctx, p, x); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Confidence is the confidence score of x being an instance of the
// attribute with the given validation phrases: the average PMI across
// phrases.
func (v *Validator) Confidence(phrases []string, x string) float64 {
	c, _ := v.ConfidenceCtx(context.Background(), phrases, x)
	return c
}

// ConfidenceCtx is Confidence with error propagation: it fails on the
// first phrase whose hit counts are unavailable. It delegates to
// ScoresCtx — the single scoring path, scalar or batched, that every
// confidence computation goes through.
func (v *Validator) ConfidenceCtx(ctx context.Context, phrases []string, x string) (float64, error) {
	if len(phrases) == 0 {
		return 0, nil
	}
	scores, err := v.ScoresCtx(ctx, phrases, x)
	if err != nil {
		return 0, err
	}
	return mean(scores), nil
}

// mean averages a non-empty score vector.
func mean(scores []float64) float64 {
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores))
}
