package webiq

import (
	"reflect"
	"testing"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/schema"
)

// runAcquisition acquires a fresh job-domain dataset with the given
// config and returns the per-attribute acquired instances.
func runAcquisition(t *testing.T, cfg Config) (map[string][]string, *Report) {
	t.Helper()
	eng, _, _ := fixture(t)
	dom := kb.DomainByKey("job")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(
		NewSurface(eng, v, cfg),
		NewAttrDeep(pool, cfg),
		NewAttrSurface(v, cfg),
		AllComponents(), cfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return 0, 0 },
		func() (time.Duration, int) { return 0, 0 },
	)
	rep := acq.AcquireAll(ds)
	got := map[string][]string{}
	for _, a := range ds.AllAttributes() {
		got[a.ID] = a.Acquired
	}
	return got, rep
}

func TestParallelMatchesSequential(t *testing.T) {
	seq, _ := runAcquisition(t, DefaultConfig())
	cfgPar := DefaultConfig()
	cfgPar.Parallelism = 8
	par, _ := runAcquisition(t, cfgPar)
	if !reflect.DeepEqual(seq, par) {
		for id := range seq {
			if !reflect.DeepEqual(seq[id], par[id]) {
				t.Errorf("attr %s: sequential %v vs parallel %v", id, seq[id], par[id])
			}
		}
	}
}

func TestParallelSurfaceAccounting(t *testing.T) {
	eng, _, _ := fixture(t)
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(NewSurface(eng, v, cfg), NewAttrDeep(pool, cfg),
		NewAttrSurface(v, cfg), AllComponents(), cfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return eng.VirtualTime(), eng.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	rep := acq.AcquireAll(ds)
	if rep.SurfaceQueries == 0 || rep.SurfaceTime <= 0 {
		t.Errorf("parallel phase not accounted: %d queries, %v", rep.SurfaceQueries, rep.SurfaceTime)
	}
}

func TestCacheDiscoveryReturnsCopies(t *testing.T) {
	eng, data, _ := fixture(t)
	ds := data["book"]
	cfg := DefaultConfig()
	cfg.CacheDiscovery = true
	v := NewValidator(eng, cfg)
	s := NewSurface(eng, v, cfg)
	a1 := &schema.Attribute{ID: "x1", InterfaceID: ds.Interfaces[0].ID, Label: "Publisher"}
	a2 := &schema.Attribute{ID: "x2", InterfaceID: ds.Interfaces[1].ID, Label: "Publisher"}
	got1 := s.DiscoverInstances(a1, ds.Interfaces[0], ds)
	if len(got1) == 0 {
		t.Skip("no publisher instances discovered")
	}
	got2 := s.DiscoverInstances(a2, ds.Interfaces[1], ds)
	if !reflect.DeepEqual(got1, got2) {
		t.Error("cache miss on identical label")
	}
	// Mutating one caller's slice must not corrupt the cache.
	got1[0] = "CORRUPTED"
	got3 := s.DiscoverInstances(a2, ds.Interfaces[1], ds)
	if got3[0] == "CORRUPTED" {
		t.Error("cache shares backing array with callers")
	}
}

func TestCacheDiscoverySavesQueries(t *testing.T) {
	eng, data, _ := fixture(t)
	ds := data["book"]
	run := func(cache bool) int {
		cfg := DefaultConfig()
		cfg.CacheDiscovery = cache
		v := NewValidator(eng, cfg)
		s := NewSurface(eng, v, cfg)
		q0 := eng.QueryCount()
		for i := 0; i < 3; i++ {
			a := &schema.Attribute{ID: "y", InterfaceID: ds.Interfaces[0].ID, Label: "Author"}
			s.DiscoverInstances(a, ds.Interfaces[0], ds)
		}
		return eng.QueryCount() - q0
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Errorf("cache did not save queries: with=%d without=%d", with, without)
	}
}
