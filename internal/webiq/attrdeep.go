package webiq

import (
	"context"
	"fmt"

	"webiq/internal/deepweb"
	"webiq/internal/obs"
	"webiq/internal/resilience"
)

// AttrDeep validates borrowed instances by probing the attribute's own
// Deep-Web source, implementing Section 4: formulate a probing query
// with A set to the borrowed value and other attributes at defaults,
// submit, and analyze the response page with heuristics. To reduce the
// number of queries, if the submission succeeds for at least one third
// of the probed instances of the donor attribute B, all instances of B
// are assumed to be instances of A.
type AttrDeep struct {
	pool   *deepweb.Pool
	cfg    Config
	ledger *obs.Ledger

	// fallible, when set, replaces direct pool probing with an
	// error-aware backend; failed probes are excluded from the one-third
	// rule's sample instead of counting as rejections.
	fallible resilience.FallibleSource
}

// NewAttrDeep returns the Attr-Deep component over the source pool.
func NewAttrDeep(pool *deepweb.Pool, cfg Config) *AttrDeep {
	return &AttrDeep{pool: pool, cfg: cfg}
}

// SetLedger installs the decision-provenance ledger; nil disables
// recording.
func (ad *AttrDeep) SetLedger(l *obs.Ledger) { ad.ledger = l }

// ValidateBorrowed probes the source behind interfaceID with attribute
// attrID set to a sample of the donor's values. If at least one third of
// the probes succeed, all donor values are accepted (the one-third
// rule); otherwise none are.
//
// With Config.Parallelism > 1 the probes run on a bounded worker pool.
// Every probe is issued either way (the one-third rule needs the full
// sample), so the probe count, the pool's virtual-time charge, and the
// accept/reject decision are identical to the sequential run.
func (ad *AttrDeep) ValidateBorrowed(interfaceID, attrID string, donorValues []string) ([]string, bool) {
	return ad.ValidateBorrowedCtx(context.Background(), interfaceID, attrID, "", "", donorValues)
}

// ValidateBorrowedCtx is ValidateBorrowed with the caller's trace
// context plus the attribute and donor labels for the provenance
// ledger: the batch verdict (probe success fraction against the
// one-third rule) and each accepted value are recorded as "attr-deep"
// decisions.
func (ad *AttrDeep) ValidateBorrowedCtx(ctx context.Context, interfaceID, attrID, attrLabel, donorLabel string, donorValues []string) ([]string, bool) {
	if len(donorValues) == 0 {
		return nil, false
	}
	src := ad.pool.Source(interfaceID)
	if src == nil {
		return nil, false
	}
	probes := donorValues
	if ad.cfg.MaxBorrowProbes > 0 && len(probes) > ad.cfg.MaxBorrowProbes {
		probes = probes[:ad.cfg.MaxBorrowProbes]
	}
	oks := make([]bool, len(probes))
	answered := len(probes)
	if ad.fallible != nil {
		failed := make([]error, len(probes))
		parallelForCtx(ctx, len(probes), ad.cfg.Parallelism, func(i int) {
			page, err := ad.fallible.Probe(ctx, interfaceID, attrID, probes[i])
			if err != nil {
				failed[i] = err
				return
			}
			oks[i] = deepweb.AnalyzeResponse(page)
		})
		answered = 0
		for i := range probes {
			switch {
			case failed[i] != nil:
				degrade(ctx, Degradation{
					Stage: "attr-deep", Reason: resilience.Reason(failed[i]),
					AttrID: attrID, Label: attrLabel,
					Detail: "probe failed: " + probes[i],
				})
			case ctx.Err() != nil && !oks[i]:
				// The slot may have been skipped by cancellation; an
				// unanswered probe must not count as a rejection.
			default:
				answered++
			}
		}
		if answered == 0 {
			// Deep validation is entirely unavailable for this donor:
			// skip it (no evidence either way) rather than reject.
			degrade(ctx, Degradation{
				Stage: "attr-deep", Reason: "no-probes-answered",
				AttrID: attrID, Label: attrLabel,
				Detail: fmt.Sprintf("donor %q: deep validation skipped", donorLabel),
			})
			if ad.ledger != nil {
				ad.ledger.RecordCtx(ctx, obs.Decision{
					Component: "attr-deep", Verdict: "skip",
					AttrID: attrID, Label: attrLabel, Count: len(probes),
					Detail: fmt.Sprintf("donor %q: 0/%d probes answered", donorLabel, len(probes)),
				})
			}
			return nil, false
		}
	} else {
		parallelFor(len(probes), ad.cfg.Parallelism, func(i int) {
			oks[i] = deepweb.AnalyzeResponse(src.Probe(attrID, probes[i]))
		})
	}
	success := 0
	for _, ok := range oks {
		if ok {
			success++
		}
	}
	// The one-third rule runs over the probes that actually got an
	// answer; a backend failure shrinks the sample, it does not vote.
	frac := float64(success) / float64(answered)
	accepted := 3*success >= answered
	if ad.ledger != nil {
		verdict := "reject"
		if accepted {
			verdict = "accept"
		}
		ad.ledger.RecordCtx(ctx, obs.Decision{
			Component: "attr-deep", Verdict: verdict,
			AttrID: attrID, Label: attrLabel,
			Score: frac, Threshold: 1.0 / 3.0, Count: len(probes),
			Detail: fmt.Sprintf("donor %q: %d/%d probes succeeded", donorLabel, success, answered),
		})
		if accepted {
			for _, v := range donorValues {
				ad.ledger.RecordCtx(ctx, obs.Decision{
					Component: "attr-deep", Verdict: "accept",
					AttrID: attrID, Label: attrLabel, Value: v,
					Score: frac, Threshold: 1.0 / 3.0,
					Detail: fmt.Sprintf("one-third rule via donor %q", donorLabel),
				})
			}
		}
	}
	if accepted {
		return donorValues, true
	}
	return nil, false
}
