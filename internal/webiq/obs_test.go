package webiq

import (
	"strings"
	"testing"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/obs"
	"webiq/internal/schema"
)

// instrumentedAcquirer builds a fully-wired acquirer over the shared
// fixture with a fresh registry and collect-only span tracer installed.
func instrumentedAcquirer(t *testing.T, domain string, cfg Config) (*Acquirer, *schema.Dataset, *obs.Registry, *obs.Tracer) {
	t.Helper()
	eng, _, _ := fixture(t)
	dom := kb.DomainByKey(domain)
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(NewSurface(eng, v, cfg), NewAttrDeep(pool, cfg),
		NewAttrSurface(v, cfg), AllComponents(), cfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return eng.VirtualTime(), eng.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	reg := obs.NewRegistry()
	acq.SetObserver(reg)
	tr := obs.NewTracer(nil)
	acq.SetSpanTracer(tr)
	return acq, ds, reg, tr
}

// TestAcquirerMetricsReconcileWithReport asserts the acceptance
// criterion that the metrics, the span log, and the Report's Figure-8
// overhead fields agree on the same numbers.
func TestAcquirerMetricsReconcileWithReport(t *testing.T) {
	acq, ds, reg, tr := instrumentedAcquirer(t, "book", DefaultConfig())
	rep := acq.AcquireAll(ds)

	// Component query counters must equal the Report fields exactly.
	queries := map[string]int{
		"surface":      rep.SurfaceQueries,
		"attr-deep":    rep.AttrDeepQueries,
		"attr-surface": rep.AttrSurfaceQueries,
	}
	virtual := map[string]time.Duration{
		"surface":      rep.SurfaceTime,
		"attr-deep":    rep.AttrDeepTime,
		"attr-surface": rep.AttrSurfaceTime,
	}
	for comp, want := range queries {
		got := acq.mCompQueries.With(comp).Value()
		if got != float64(want) {
			t.Errorf("metric queries[%s] = %v, Report says %d", comp, got, want)
		}
	}
	// Virtual-seconds counters accumulate float seconds; allow for
	// rounding across many small additions.
	for comp, want := range virtual {
		got := acq.mCompVirtual.With(comp).Value()
		if diff := got - want.Seconds(); diff > 1e-6 || diff < -1e-6 {
			t.Errorf("metric virtual[%s] = %vs, Report says %vs", comp, got, want.Seconds())
		}
	}

	// Span totals per component must reproduce the same Report fields.
	totals := map[string]obs.Totals{}
	for _, tot := range tr.TotalsByName() {
		totals[tot.Name] = tot
	}
	for comp, want := range queries {
		if got := totals[comp].Queries; got != want {
			t.Errorf("span queries[%s] = %d, Report says %d", comp, got, want)
		}
	}
	for comp, want := range virtual {
		if got := totals[comp].Virtual; got != want {
			t.Errorf("span virtual[%s] = %v, Report says %v", comp, got, want)
		}
	}
	// The run-level span carries the grand totals.
	all := totals["acquire-all"]
	if all.Spans != 1 {
		t.Fatalf("acquire-all spans = %d, want 1", all.Spans)
	}
	if want := rep.SurfaceQueries + rep.AttrSurfaceQueries + rep.AttrDeepQueries; all.Queries != want {
		t.Errorf("acquire-all queries = %d, want %d", all.Queries, want)
	}

	// The attribute-result counters must cover every outcome.
	var nPre, nSucc, nFail int
	for _, o := range rep.Outcomes {
		switch {
		case o.HadInstances:
			nPre++
		case o.Success:
			nSucc++
		default:
			nFail++
		}
	}
	if got := acq.mAttrs.With("predefined").Value(); got != float64(nPre) {
		t.Errorf("attrs{predefined} = %v, want %d", got, nPre)
	}
	if got := acq.mAttrs.With("success").Value(); got != float64(nSucc) {
		t.Errorf("attrs{success} = %v, want %d", got, nSucc)
	}
	if got := acq.mAttrs.With("failed").Value(); got != float64(nFail) {
		t.Errorf("attrs{failed} = %v, want %d", got, nFail)
	}

	// The exposition must carry the acquirer families.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, fam := range []string{
		"webiq_acquire_attributes_total",
		"webiq_acquire_component_queries_total",
		"webiq_acquire_component_virtual_seconds_total",
		"webiq_classifier_decisions_total",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing family %q", fam)
		}
	}
}

// TestAcquirerMetricsReconcileParallel repeats the reconciliation under
// the concurrent Surface phase, where the whole phase is charged to the
// surface component by one span.
func TestAcquirerMetricsReconcileParallel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	acq, ds, _, tr := instrumentedAcquirer(t, "job", cfg)
	rep := acq.AcquireAll(ds)
	totals := map[string]obs.Totals{}
	for _, tot := range tr.TotalsByName() {
		totals[tot.Name] = tot
	}
	if got := totals["surface"].Queries; got != rep.SurfaceQueries {
		t.Errorf("span queries[surface] = %d, Report says %d", got, rep.SurfaceQueries)
	}
	if got := totals["surface"].Virtual; got != rep.SurfaceTime {
		t.Errorf("span virtual[surface] = %v, Report says %v", got, rep.SurfaceTime)
	}
	if got := acq.mCompQueries.With("surface").Value(); got != float64(rep.SurfaceQueries) {
		t.Errorf("metric queries[surface] = %v, Report says %d", got, rep.SurfaceQueries)
	}
}

// TestBorrowDeepEventEmitted asserts the documented "borrow-deep" kind
// is emitted when step 1.b is entered.
func TestBorrowDeepEventEmitted(t *testing.T) {
	eng, _, _ := fixture(t)
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(NewSurface(eng, v, cfg), NewAttrDeep(pool, cfg),
		NewAttrSurface(v, cfg), AllComponents(), cfg)
	var ct CollectTracer
	acq.SetTracer(&ct)
	acq.AcquireAll(ds)
	kinds := map[string]int{}
	for _, e := range ct.Events() {
		kinds[e.Kind]++
	}
	if kinds["borrow-deep"] == 0 {
		t.Error("no borrow-deep events despite Attr-Deep running")
	}
	if kinds["borrow-deep"] < kinds["borrow-deep-donor"] && kinds["borrow-deep-donor"] > 0 && kinds["borrow-deep"] == 0 {
		t.Error("borrow-deep-donor without borrow-deep")
	}
}

// TestClassifierSkipEventEmitted builds the minimal situation where the
// validation-based classifier cannot be trained (a single positive
// example) and asserts the documented "classifier-skip" kind fires.
func TestClassifierSkipEventEmitted(t *testing.T) {
	eng, _, _ := fixture(t)
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	ds := &schema.Dataset{
		Domain:        "book",
		EntityName:    "book",
		DomainKeyword: "book",
		Interfaces: []*schema.Interface{
			{
				ID: "book/t0", Domain: "book", Source: "t0",
				Attributes: []*schema.Attribute{
					// One predefined instance: too few positives to
					// split into T1/T2, so training must fail.
					{ID: "book/t0/a0", InterfaceID: "book/t0", Label: "Author",
						Instances: []string{"Mark Twain"}},
				},
			},
			{
				ID: "book/t1", Domain: "book", Source: "t1",
				Attributes: []*schema.Attribute{
					// Donor with enough very similar values to borrow.
					{ID: "book/t1/a0", InterfaceID: "book/t1", Label: "Author",
						Instances: []string{"Mark Twain", "Jane Austen", "Leo Tolstoy", "Toni Morrison"}},
				},
			},
		},
	}
	acq := NewAcquirer(nil, nil, NewAttrSurface(v, cfg),
		Components{AttrSurface: true}, cfg)
	var ct CollectTracer
	acq.SetTracer(&ct)
	acq.AcquireAll(ds)
	found := false
	for _, e := range ct.Events() {
		if e.Kind == "classifier-skip" && e.AttrID == "book/t0/a0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no classifier-skip event; events: %+v", ct.Events())
	}
}

// TestObsEventTracerBridgesEvents checks the adapter that lands
// acquisition events in the NDJSON span log.
func TestObsEventTracerBridgesEvents(t *testing.T) {
	tr := obs.NewTracer(nil)
	et := NewObsEventTracer(tr)
	et.Trace(Event{Kind: "surface", AttrID: "d/if0/a1", Label: "Author", Count: 3})
	recs := tr.Records()
	if len(recs) != 1 || recs[0].Name != "surface" || recs[0].Count != 3 {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Labels["attr"] != "d/if0/a1" || recs[0].Labels["label"] != "Author" {
		t.Errorf("labels = %v", recs[0].Labels)
	}
}

// TestMultiTracer checks fan-out including nil members.
func TestMultiTracer(t *testing.T) {
	var a, b CollectTracer
	mt := MultiTracer(&a, nil, &b)
	mt.Trace(Event{Kind: "surface"})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi tracer did not fan out")
	}
}
