package webiq

import (
	"fmt"
	"io"
	"sync"
)

// Event is one step of the acquisition policy, for observability: which
// component ran for which attribute and what it produced. Events are
// best-effort diagnostics; no control flow depends on them.
type Event struct {
	// Kind is the step: "syntax-skip" (no usable label / no Surface
	// results), "surface" (instances gathered from the Surface Web),
	// "borrow-deep" (step 1.b entered; Count is the donor count),
	// "borrow-deep-donor" (one donor probed via the Deep Web),
	// "borrow-surface" (borrowed values validated via the Surface Web),
	// "classifier-skip" (the validation-based classifier could not be
	// trained, so the borrowed values were dropped).
	Kind string
	// AttrID and Label identify the attribute being processed.
	AttrID string
	Label  string
	// Detail carries step-specific context (donor label, failure
	// reason).
	Detail string
	// Count is the number of instances involved (gathered, borrowed,
	// accepted), when meaningful.
	Count int
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("%-18s %-24s %q", e.Kind, e.AttrID, e.Label)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	if e.Count > 0 {
		s += fmt.Sprintf(" n=%d", e.Count)
	}
	return s
}

// Tracer receives acquisition events. Implementations must be safe for
// concurrent use when Config.Parallelism > 1.
type Tracer interface {
	Trace(Event)
}

// SetTracer installs a tracer on the acquirer; nil disables tracing.
func (a *Acquirer) SetTracer(t Tracer) { a.tracer = t }

// trace emits an event if a tracer is installed.
func (a *Acquirer) trace(e Event) {
	if a.tracer != nil {
		a.tracer.Trace(e)
	}
}

// LogTracer writes one line per event to an io.Writer.
type LogTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogTracer returns a Tracer printing to w.
func NewLogTracer(w io.Writer) *LogTracer { return &LogTracer{w: w} }

// Trace implements Tracer.
func (lt *LogTracer) Trace(e Event) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	fmt.Fprintln(lt.w, e.String())
}

// MultiTracer fans every event out to several tracers (e.g. a LogTracer
// on stderr plus an NDJSON span log). nil elements are skipped.
func MultiTracer(ts ...Tracer) Tracer { return multiTracer(ts) }

type multiTracer []Tracer

// Trace implements Tracer.
func (m multiTracer) Trace(e Event) {
	for _, t := range m {
		if t != nil {
			t.Trace(e)
		}
	}
}

// CollectTracer accumulates events in memory (useful in tests).
type CollectTracer struct {
	mu     sync.Mutex
	events []Event
}

// Trace implements Tracer.
func (ct *CollectTracer) Trace(e Event) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.events = append(ct.events, e)
}

// Events returns a copy of the collected events.
func (ct *CollectTracer) Events() []Event {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	out := make([]Event, len(ct.events))
	copy(out, ct.events)
	return out
}
