package webiq

import (
	"strings"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
)

func TestTracerReceivesEvents(t *testing.T) {
	eng, _, _ := fixture(t)
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(NewSurface(eng, v, cfg), NewAttrDeep(pool, cfg),
		NewAttrSurface(v, cfg), AllComponents(), cfg)
	var ct CollectTracer
	acq.SetTracer(&ct)
	acq.AcquireAll(ds)

	events := ct.Events()
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.AttrID == "" || e.Label == "" {
			t.Errorf("event missing identity: %+v", e)
		}
	}
	if kinds["surface"] == 0 {
		t.Error("no surface events")
	}
	if kinds["borrow-surface"] == 0 {
		t.Error("no borrow-surface events")
	}
}

func TestTracerNilSafe(t *testing.T) {
	a := &Acquirer{}
	a.trace(Event{Kind: "x"}) // must not panic with no tracer
}

func TestLogTracerFormat(t *testing.T) {
	var sb strings.Builder
	lt := NewLogTracer(&sb)
	lt.Trace(Event{Kind: "surface", AttrID: "d/if0/a1", Label: "Author", Count: 12})
	lt.Trace(Event{Kind: "syntax-skip", AttrID: "d/if0/a2", Label: "From", Detail: "no NP"})
	out := sb.String()
	if !strings.Contains(out, "surface") || !strings.Contains(out, "Author") ||
		!strings.Contains(out, "n=12") || !strings.Contains(out, "no NP") {
		t.Errorf("log output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("want 2 lines:\n%s", out)
	}
}

func TestTracerWithParallelism(t *testing.T) {
	eng, _, _ := fixture(t)
	dom := kb.DomainByKey("job")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(NewSurface(eng, v, cfg), NewAttrDeep(pool, cfg),
		NewAttrSurface(v, cfg), AllComponents(), cfg)
	var ct CollectTracer
	acq.SetTracer(&ct)
	acq.AcquireAll(ds)
	if len(ct.Events()) == 0 {
		t.Error("no events under parallel acquisition")
	}
}
