package webiq

import (
	"bytes"
	"context"
	"testing"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/obs"
	"webiq/internal/resilience"
	"webiq/internal/schema"
)

// buildChaosAcquirer assembles the full pipeline over a fresh
// job-domain dataset with fault-injecting resilient clients installed:
// the injector wraps both the search engine and the probe pool, and the
// clients add retry + breaker on top, exactly as the CLI -faults flag
// wires it.
func buildChaosAcquirer(t *testing.T, cfg Config, prof resilience.Profile, seed int64, opts resilience.ClientOptions) (*Acquirer, *schema.Dataset) {
	t.Helper()
	eng, _, _ := fixture(t)
	dom := kb.DomainByKey("job")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(NewSurface(eng, v, cfg), NewAttrDeep(pool, cfg),
		NewAttrSurface(v, cfg), AllComponents(), cfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return 0, 0 },
		func() (time.Duration, int) { return 0, 0 },
	)

	inj := resilience.NewInjector(prof, seed)
	opts.Seed = seed
	fe := resilience.NewEngineClient(
		resilience.FaultyEngine(resilience.AdaptEngine(eng), inj), opts)
	fs := resilience.NewSourceClient(
		resilience.FaultySource(resilience.ProbeFunc(func(ifcID, attrID, value string) (string, error) {
			src := pool.Source(ifcID)
			if src == nil {
				return "", resilience.ErrUnknownSource
			}
			return src.Probe(attrID, value), nil
		}), inj), opts)
	acq.SetFallible(fe, fs)
	return acq, ds
}

// TestChaosProfilesTerminate drives the full acquisition pipeline
// through every named fault profile and asserts the contract of
// graceful degradation: the run always terminates, never reports a
// spurious interruption, and every absorbed fault surfaces as a
// structured Degradation rather than vanishing silently.
func TestChaosProfilesTerminate(t *testing.T) {
	for _, name := range []string{"p10", "p30", "latency2x", "burst", "malformed"} {
		t.Run(name, func(t *testing.T) {
			prof, err := resilience.ProfileByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Parallelism = 4
			acq, ds := buildChaosAcquirer(t, cfg, prof, 7, resilience.ClientOptions{})

			done := make(chan *Report, 1)
			go func() { done <- acq.AcquireAllCtx(context.Background(), ds) }()
			var rep *Report
			select {
			case rep = <-done:
			case <-time.After(2 * time.Minute):
				t.Fatal("chaos run did not terminate")
			}

			if rep.Interrupted != nil {
				t.Fatalf("uncanceled chaos run reported Interrupted: %v", rep.Interrupted)
			}
			for _, d := range rep.Degradations {
				if d.Stage == "" || d.Reason == "" {
					t.Errorf("unstructured degradation: %+v", d)
				}
			}
			if name == "p30" && len(rep.Degradations) == 0 {
				t.Error("the 30-percent-error profile produced zero degradation events")
			}
			t.Logf("%s: %d degradations, success rate %.1f%%",
				name, len(rep.Degradations), rep.SuccessRate())
		})
	}
}

// TestChaosLedgerDeterministic runs the same fault profile with the
// same seed twice, sequentially, and demands byte-identical ledger
// NDJSON: fault decisions depend only on (seed, backend, key, attempt),
// never on wall time or interleaving. Retry delays are zeroed and the
// breaker threshold raised out of reach so the real clock cannot leak
// into control flow.
func TestChaosLedgerDeterministic(t *testing.T) {
	prof, err := resilience.ProfileByName("p30")
	if err != nil {
		t.Fatal(err)
	}
	opts := resilience.ClientOptions{
		Retry:   resilience.RetryPolicy{MaxAttempts: 3},
		Breaker: resilience.BreakerConfig{FailureThreshold: 1 << 30, Cooldown: time.Hour, HalfOpenProbes: 1},
	}
	run := func() []byte {
		cfg := DefaultConfig() // Parallelism 0: sequential, ordered ledger
		acq, ds := buildChaosAcquirer(t, cfg, prof, 42, opts)
		var buf bytes.Buffer
		acq.SetLedger(obs.NewLedger(&buf))
		rep := acq.AcquireAllCtx(context.Background(), ds)
		if rep.Interrupted != nil {
			t.Fatalf("run interrupted: %v", rep.Interrupted)
		}
		if len(rep.Degradations) == 0 {
			t.Fatal("p30 run absorbed no degradations; the test is vacuous")
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := 0; i < len(la) && i < len(lb); i++ {
			if !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("ledgers diverge at line %d:\n  run1: %s\n  run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("ledgers differ in length: %d vs %d lines", len(la), len(lb))
	}
}

// TestChaosDifferentSeedsDiffer guards the determinism test against a
// stuck injector: a different seed must fault differently.
func TestChaosDifferentSeedsDiffer(t *testing.T) {
	prof, err := resilience.ProfileByName("p30")
	if err != nil {
		t.Fatal(err)
	}
	opts := resilience.ClientOptions{
		Retry:   resilience.RetryPolicy{MaxAttempts: 3},
		Breaker: resilience.BreakerConfig{FailureThreshold: 1 << 30, Cooldown: time.Hour, HalfOpenProbes: 1},
	}
	run := func(seed int64) []byte {
		cfg := DefaultConfig()
		acq, ds := buildChaosAcquirer(t, cfg, prof, seed, opts)
		var buf bytes.Buffer
		acq.SetLedger(obs.NewLedger(&buf))
		acq.AcquireAllCtx(context.Background(), ds)
		return buf.Bytes()
	}
	if bytes.Equal(run(1), run(2)) {
		t.Error("seeds 1 and 2 produced identical ledgers; injector ignores its seed")
	}
}
