package webiq

import (
	"context"
	"time"

	"webiq/internal/obs"
)

// This file wires the Acquirer into the obs layer: metric counters for
// the acquisition policy and per-component spans carrying the same
// wall/virtual durations and query counts as the Report's Figure-8
// overhead fields. Everything is nil-safe: without SetObserver /
// SetSpanTracer the hot path pays only nil-check branches.

// SetObserver registers the acquirer's metrics on r and cascades to the
// Attr-Surface component's classifier counters:
//
//	webiq_acquire_attributes_total{result}            attributes processed
//	webiq_acquire_instances_total{component}          instances accepted
//	webiq_acquire_borrowed_total{component}           candidates borrowed
//	webiq_acquire_component_virtual_seconds_total{component}
//	webiq_acquire_component_queries_total{component}  substrate queries
//	webiq_classifier_decisions_total{decision}        accept/reject/skip
//
// The component label matches the Method names ("surface", "attr-deep",
// "attr-surface"); the per-component virtual seconds and queries
// reconcile exactly with the Report's SurfaceTime/SurfaceQueries (etc.)
// fields for a single AcquireAll run. Passing nil uninstalls nothing
// and leaves the acquirer uninstrumented.
func (a *Acquirer) SetObserver(r *obs.Registry) {
	a.mAttrs = r.CounterVec("webiq_acquire_attributes_total", "Attributes processed by the acquisition policy, by result.", "result")
	a.mInstances = r.CounterVec("webiq_acquire_instances_total", "Instances accepted into attributes, by acquisition component.", "component")
	a.mBorrowed = r.CounterVec("webiq_acquire_borrowed_total", "Candidate instances borrowed for validation, by component.", "component")
	a.mCompVirtual = r.CounterVec("webiq_acquire_component_virtual_seconds_total", "Simulated substrate time attributed to each component, in seconds.", "component")
	a.mCompQueries = r.CounterVec("webiq_acquire_component_queries_total", "Substrate queries attributed to each component.", "component")
	a.mDegraded = r.CounterVec("webiq_degraded_total", "Graceful-degradation events absorbed by the pipeline, by stage and error reason.", "stage", "reason")
	if a.attrSurface != nil {
		a.attrSurface.Instrument(r)
	}
}

// SetSpanTracer installs a span tracer: AcquireAll emits one
// "acquire-all" span per run and one span per component invocation
// ("surface", "attr-deep", "attr-surface"), each carrying the wall
// time, the virtual substrate time, and the query count attributed to
// that invocation. Summing a component's spans reproduces the Report's
// overhead fields. nil disables span tracing.
func (a *Acquirer) SetSpanTracer(t *obs.Tracer) { a.spans = t }

// SetLedger installs the decision-provenance ledger on every enabled
// component: Surface verification (PMI accept/reject and outlier
// removals), Attr-Surface classification (training, posterior
// accept/reject), and Attr-Deep probing (one-third-rule verdicts).
// nil disables recording everywhere.
func (a *Acquirer) SetLedger(l *obs.Ledger) {
	a.ledger = l
	if a.surface != nil {
		a.surface.SetLedger(l)
	}
	if a.attrSurface != nil {
		a.attrSurface.SetLedger(l)
	}
	if a.attrDeep != nil {
		a.attrDeep.SetLedger(l)
	}
}

// chargeComponent accounts one component invocation in the metrics.
func (a *Acquirer) chargeComponent(component string, virtual time.Duration, queries int) {
	a.mCompVirtual.With(component).Add(virtual.Seconds())
	a.mCompQueries.With(component).Add(float64(queries))
}

// componentSpanCtx starts a span for one component invocation on an
// attribute as a child of the span carried by ctx, returning the
// derived context alongside. With no tracer installed the span is nil
// (safely) and ctx comes back unchanged.
func (a *Acquirer) componentSpanCtx(ctx context.Context, component, attrID, label string) (context.Context, *obs.Span) {
	spCtx, sp := a.spans.StartSpan(ctx, component)
	sp.Label("attr", attrID).Label("label", label)
	return spCtx, sp
}

// endComponent finishes a component invocation: closes the span with
// its virtual/query attribution and bumps the component counters.
func (a *Acquirer) endComponent(sp *obs.Span, component string, virtual time.Duration, queries int) {
	sp.AddVirtual(virtual)
	sp.AddQueries(queries)
	sp.End()
	a.chargeComponent(component, virtual, queries)
}

// NewObsEventTracer adapts an obs.Tracer into a webiq.Tracer, so the
// acquisition events (surface, borrow-deep, classifier-skip, ...) land
// in the same NDJSON log as the component spans.
func NewObsEventTracer(t *obs.Tracer) Tracer { return obsEventTracer{t} }

type obsEventTracer struct{ t *obs.Tracer }

// Trace implements Tracer.
func (o obsEventTracer) Trace(e Event) {
	labels := map[string]string{"attr": e.AttrID, "label": e.Label}
	if e.Detail != "" {
		labels["detail"] = e.Detail
	}
	o.t.Event(e.Kind, labels, e.Count)
}
