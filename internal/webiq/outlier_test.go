package webiq

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestIsNumericValue(t *testing.T) {
	for _, s := range []string{"$15,200", "42", "3.14", "$9.99", "10,000", "1995"} {
		if !IsNumericValue(s) {
			t.Errorf("IsNumericValue(%q) = false", s)
		}
	}
	for _, s := range []string{"Honda", "First Class", "a1b2", "", "12ab", "$x"} {
		if IsNumericValue(s) {
			t.Errorf("IsNumericValue(%q) = true", s)
		}
	}
}

func TestDetectDomainType(t *testing.T) {
	num := []string{"$5,000", "$7,500", "$10,000", "$12,000", "Honda"}
	if DetectDomainType(num, 0.8) != NumericDomain {
		t.Error("80% numeric should be numeric domain")
	}
	str := []string{"Honda", "Toyota", "Ford", "$5,000"}
	if DetectDomainType(str, 0.8) != StringDomain {
		t.Error("mostly string should be string domain")
	}
	if DetectDomainType(nil, 0.8) != StringDomain {
		t.Error("empty defaults to string")
	}
}

func TestRemoveOutliersNumeric(t *testing.T) {
	cfg := DefaultConfig()
	// A $10,000 book among ordinary prices is the paper's example.
	cands := []string{"$12", "$15", "$18", "$20", "$14", "$16", "$13", "$17", "$19", "$10,000"}
	got := RemoveOutliers(cands, cfg)
	for _, v := range got {
		if v == "$10,000" {
			t.Error("absurd price survived outlier removal")
		}
	}
	if len(got) != len(cands)-1 {
		t.Errorf("kept %d of %d; want all but one", len(got), len(cands))
	}
}

func TestRemoveOutliersTypeMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cands := []string{"Honda", "Toyota", "Ford", "Nissan", "Mazda", "12345"}
	got := RemoveOutliers(cands, cfg)
	for _, v := range got {
		if v == "12345" {
			t.Error("numeric candidate survived in string domain")
		}
	}
}

func TestRemoveOutliersLongPhrase(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OutlierSigma = 2 // small sample, tighten the test
	cands := []string{
		"Honda", "Toyota", "Ford", "Nissan", "Mazda", "Subaru", "Kia",
		"BMW", "Audi", "Volvo", "Lexus", "Jeep",
		"information service online customer support center directory",
	}
	got := RemoveOutliers(cands, cfg)
	for _, v := range got {
		if len(v) > 20 {
			t.Errorf("junk phrase %q survived", v)
		}
	}
}

func TestRemoveOutliersSmallSets(t *testing.T) {
	cfg := DefaultConfig()
	got := RemoveOutliers([]string{"Honda", "Toyota"}, cfg)
	if !reflect.DeepEqual(got, []string{"Honda", "Toyota"}) {
		t.Errorf("small sets pass through: got %v", got)
	}
	if got := RemoveOutliers(nil, cfg); got != nil {
		t.Errorf("nil in, nil out: got %v", got)
	}
}

func TestRemoveOutliersHomogeneous(t *testing.T) {
	cfg := DefaultConfig()
	cands := []string{"Honda", "Honda", "Honda", "Honda"}
	got := RemoveOutliers(cands, cfg)
	if len(got) != 4 {
		t.Errorf("identical candidates: kept %d of 4", len(got))
	}
}

func TestStringStats(t *testing.T) {
	st := stringStats("Air Canada 1")
	if st[0] != 3 { // words
		t.Errorf("words = %v", st[0])
	}
	if st[1] != 2 { // capitals
		t.Errorf("caps = %v", st[1])
	}
	if st[2] != 12 { // chars
		t.Errorf("len = %v", st[2])
	}
	if st[3] <= 0 || st[3] >= 0.2 { // 1 digit of 12 chars
		t.Errorf("pct digits = %v", st[3])
	}
}

// Property: RemoveOutliers output is a subsequence of its input.
func TestRemoveOutliersSubsequence(t *testing.T) {
	cfg := DefaultConfig()
	f := func(in []string) bool {
		out := RemoveOutliers(in, cfg)
		i := 0
		for _, v := range out {
			found := false
			for i < len(in) {
				if in[i] == v {
					found = true
					i++
					break
				}
				i++
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNumeric(t *testing.T) {
	cases := map[string]float64{
		"$15,200": 15200, "42": 42, "3.5": 3.5, "$9.99": 9.99,
	}
	for in, want := range cases {
		got, ok := parseNumeric(in)
		if !ok || got != want {
			t.Errorf("parseNumeric(%q) = %v,%v", in, got, ok)
		}
	}
	if _, ok := parseNumeric("Honda"); ok {
		t.Error("parseNumeric(Honda) should fail")
	}
}
