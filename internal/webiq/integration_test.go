package webiq

import (
	"strings"
	"sync"
	"testing"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
)

// Shared fixture: building the corpus is the expensive part, so tests
// share one engine, dataset, and source pool per domain.
var (
	fixtureOnce sync.Once
	fixEngine   *surfaceweb.Engine
	fixData     map[string]*schema.Dataset
	fixPools    map[string]*deepweb.Pool
)

func fixture(t *testing.T) (*surfaceweb.Engine, map[string]*schema.Dataset, map[string]*deepweb.Pool) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixEngine = surfaceweb.NewEngine()
		surfaceweb.BuildCorpus(fixEngine, kb.Domains(), surfaceweb.DefaultCorpusConfig())
		fixData = map[string]*schema.Dataset{}
		fixPools = map[string]*deepweb.Pool{}
		for _, dom := range kb.Domains() {
			ds := dataset.Generate(dom, dataset.DefaultConfig())
			fixData[dom.Key] = ds
			fixPools[dom.Key] = deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())
		}
	})
	return fixEngine, fixData, fixPools
}

func attrWithLabelPrefix(ds *schema.Dataset, prefix string, predef bool) (*schema.Attribute, *schema.Interface) {
	for _, ifc := range ds.Interfaces {
		for _, a := range ifc.Attributes {
			if strings.HasPrefix(a.Label, prefix) && a.HasInstances() == predef {
				return a, ifc
			}
		}
	}
	return nil, nil
}

func TestSurfaceDiscoversAirlines(t *testing.T) {
	eng, data, _ := fixture(t)
	ds := data["airfare"]
	a, ifc := attrWithLabelPrefix(ds, "Airline", false)
	if a == nil {
		a, ifc = attrWithLabelPrefix(ds, "Carrier", false)
	}
	if a == nil {
		t.Skip("no free-text airline attribute in this draw")
	}
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	s := NewSurface(eng, v, cfg)
	got := s.DiscoverInstances(a, ifc, ds)
	if len(got) < cfg.K {
		t.Fatalf("discovered %d instances for %q, want >= %d: %v", len(got), a.Label, cfg.K, got)
	}
	known := map[string]bool{}
	for _, x := range append(append([]string{}, kb.AirlinesNA...), kb.AirlinesEU...) {
		known[strings.ToLower(x)] = true
	}
	correct := 0
	for _, g := range got {
		if known[strings.ToLower(g)] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(got)); frac < 0.8 {
		t.Errorf("only %.0f%% of discovered instances are real airlines: %v", 100*frac, got)
	}
}

func TestSurfaceDiscoversAuthors(t *testing.T) {
	eng, data, _ := fixture(t)
	ds := data["book"]
	a, ifc := attrWithLabelPrefix(ds, "Author", false)
	if a == nil {
		t.Skip("no free-text author attribute")
	}
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	s := NewSurface(eng, v, cfg)
	got := s.DiscoverInstances(a, ifc, ds)
	if len(got) < 5 {
		t.Fatalf("discovered %d author instances: %v", len(got), got)
	}
}

func TestSurfaceFailsOnBarePreposition(t *testing.T) {
	eng, data, _ := fixture(t)
	ds := data["airfare"]
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	s := NewSurface(eng, v, cfg)
	a := &schema.Attribute{ID: "x", InterfaceID: ds.Interfaces[0].ID, Label: "From"}
	if got := s.DiscoverInstances(a, ds.Interfaces[0], ds); len(got) != 0 {
		t.Errorf("bare preposition should yield nothing, got %v", got)
	}
	a.Label = "Depart from"
	if got := s.DiscoverInstances(a, ds.Interfaces[0], ds); len(got) != 0 {
		t.Errorf("verb phrase should yield nothing, got %v", got)
	}
}

func TestSurfaceRejectsNonInstances(t *testing.T) {
	eng, data, _ := fixture(t)
	ds := data["airfare"]
	a, ifc := attrWithLabelPrefix(ds, "Departure city", false)
	if a == nil {
		t.Skip("no free-text departure city attribute")
	}
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	s := NewSurface(eng, v, cfg)
	got := s.DiscoverInstances(a, ifc, ds)
	if len(got) == 0 {
		t.Fatal("no instances for departure city")
	}
	badSet := map[string]bool{}
	for _, x := range kb.CabinClasses {
		badSet[strings.ToLower(x)] = true
	}
	for _, m := range kb.Months {
		badSet[strings.ToLower(m)] = true
	}
	for _, g := range got {
		if badSet[strings.ToLower(g)] {
			t.Errorf("non-city %q among discovered cities %v", g, got)
		}
	}
}

func TestAttrSurfaceBorrowsAirlines(t *testing.T) {
	eng, _, _ := fixture(t)
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	as := NewAttrSurface(v, cfg)
	positives := []string{"Air Canada", "American", "Delta", "United"}
	negatives := []string{"Economy", "First Class", "January", "Sedan"}
	borrowed := []string{"Aer Lingus", "Lufthansa", "Economy", "March"}
	got := as.ValidateBorrowed("Airline", positives, negatives, borrowed)
	gotSet := map[string]bool{}
	for _, g := range got {
		gotSet[g] = true
	}
	if !gotSet["Aer Lingus"] || !gotSet["Lufthansa"] {
		t.Errorf("true airlines rejected: %v", got)
	}
	if gotSet["Economy"] || gotSet["March"] {
		t.Errorf("non-airlines accepted: %v", got)
	}
}

func TestAttrDeepOneThirdRule(t *testing.T) {
	_, data, pools := fixture(t)
	ds := data["airfare"]
	pool := pools["airfare"]
	var a *schema.Attribute
	for _, cand := range ds.AllAttributes() {
		if cand.ConceptID == "airfare.origin_city" && !cand.HasInstances() &&
			pool.Source(cand.InterfaceID).AcceptsPartialQueries() {
			a = cand
			break
		}
	}
	if a == nil {
		t.Skip("no suitable origin-city attribute")
	}
	ad := NewAttrDeep(pool, DefaultConfig())

	cities := []string{"Boston", "Chicago", "New York", "Seattle", "Denver", "Miami"}
	got, ok := ad.ValidateBorrowed(a.InterfaceID, a.ID, cities)
	if !ok || len(got) != len(cities) {
		t.Errorf("true cities rejected by deep validation: ok=%v got=%v", ok, got)
	}

	months := []string{"January", "February", "March", "April", "May", "June"}
	if _, ok := ad.ValidateBorrowed(a.InterfaceID, a.ID, months); ok {
		t.Error("months accepted as origin cities by deep validation")
	}
}

func TestAcquirerFillsInstanceLessAttributes(t *testing.T) {
	eng, data, pools := fixture(t)
	dom := kb.DomainByKey("book")
	ds := dataset.Generate(dom, dataset.DefaultConfig()) // fresh copy to mutate
	_ = data
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(
		NewSurface(eng, v, cfg),
		NewAttrDeep(pools["book"], cfg),
		NewAttrSurface(v, cfg),
		AllComponents(), cfg)
	rep := acq.AcquireAll(ds)
	if rep.SuccessRate() < 50 {
		t.Errorf("book acquisition success = %.1f%%, want >= 50%%", rep.SuccessRate())
	}
	// Acquired instances must not duplicate predefined ones.
	for _, a := range ds.AllAttributes() {
		seen := map[string]bool{}
		for _, x := range a.AllInstances() {
			f := strings.ToLower(x)
			if seen[f] {
				t.Errorf("attribute %s has duplicate instance %q", a.ID, x)
			}
			seen[f] = true
		}
	}
}

func TestAcquirerComponentsDisabled(t *testing.T) {
	eng, _, pools := fixture(t)
	dom := kb.DomainByKey("job")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(
		NewSurface(eng, v, cfg),
		NewAttrDeep(pools["job"], cfg),
		NewAttrSurface(v, cfg),
		Components{}, cfg) // everything off
	rep := acq.AcquireAll(ds)
	for _, o := range rep.Outcomes {
		if o.Acquired != 0 {
			t.Errorf("attribute %s acquired %d instances with all components off", o.AttrID, o.Acquired)
		}
	}
	if rep.SuccessRate() != 0 {
		t.Errorf("success rate = %v with all components off", rep.SuccessRate())
	}
}

func TestReportSuccessRateEmpty(t *testing.T) {
	r := &Report{}
	if r.SuccessRate() != 0 {
		t.Error("empty report success rate should be 0")
	}
}
