package webiq

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/obs"
	"webiq/internal/surfaceweb"
)

// TestLedgerCoversAcquiredInstances pins the provenance contract behind
// /unified/{domain}/explain: after a full acquisition with the ledger
// installed, every acquired instance of every attribute must have an
// "accept" decision recorded under that attribute, and every decision
// must carry the run's trace identity.
func TestLedgerCoversAcquiredInstances(t *testing.T) {
	acq, ds, reg, tr := instrumentedAcquirer(t, "book", DefaultConfig())
	ledger := obs.NewLedger(nil)
	ledger.Instrument(reg)
	acq.SetLedger(ledger)

	ctx, root := tr.StartSpan(context.Background(), "test-run")
	traceID := root.TraceID()
	acq.AcquireAllCtx(ctx, ds)
	root.End()

	if ledger.Len() == 0 {
		t.Fatal("no decisions recorded")
	}
	total := 0
	for _, a := range ds.AllAttributes() {
		decs := ledger.ByAttr(a.ID)
		for _, v := range a.Acquired {
			total++
			found := false
			for _, d := range decs {
				if d.Verdict == "accept" && strings.EqualFold(d.Value, v) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("attr %s: acquired %q has no accept decision", a.ID, v)
			}
		}
	}
	if total == 0 {
		t.Fatal("acquisition produced no instances; coverage check vacuous")
	}
	for _, d := range ledger.Decisions() {
		if d.TraceID != traceID {
			t.Fatalf("decision %d (%s/%s) trace = %q, want %q",
				d.Seq, d.Component, d.Verdict, d.TraceID, traceID)
		}
		if d.Component == "" || d.Verdict == "" {
			t.Fatalf("decision %d missing component/verdict: %+v", d.Seq, d)
		}
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `webiq_decisions_total{component="surface",verdict="accept"}`) {
		t.Error("exposition missing the surface accept counter")
	}
}

// ledgerRun mirrors acquisitionRun with the span tracer and decision
// ledger installed, on fresh substrates at the given seed.
func ledgerRun(t *testing.T, domain string, seed int64) (*Report, map[string][]string, int, int) {
	t.Helper()
	eng := surfaceweb.NewEngine()
	corpusCfg := surfaceweb.DefaultCorpusConfig()
	corpusCfg.Seed = seed
	surfaceweb.BuildCorpus(eng, kb.Domains(), corpusCfg)

	dom := kb.DomainByKey(domain)
	dataCfg := dataset.DefaultConfig()
	dataCfg.Seed = seed
	ds := dataset.Generate(dom, dataCfg)
	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = seed
	pool := deepweb.BuildPool(ds, dom, deepCfg)

	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(NewSurface(eng, v, cfg), NewAttrDeep(pool, cfg),
		NewAttrSurface(v, cfg), AllComponents(), cfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return eng.VirtualTime(), eng.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	tr := obs.NewTracer(nil)
	acq.SetSpanTracer(tr)
	acq.SetLedger(obs.NewLedger(nil))

	ctx, root := tr.StartSpan(context.Background(), "ledger-run")
	rep := acq.AcquireAllCtx(ctx, ds)
	root.End()
	got := map[string][]string{}
	for _, a := range ds.AllAttributes() {
		got[a.ID] = a.Acquired
	}
	return rep, got, eng.QueryCount(), pool.QueryCount()
}

// TestLedgerRunByteIdentical pins the zero-interference contract: the
// Report, every attribute's acquired instances, and the substrate query
// counts must be byte-for-byte identical whether or not the tracer and
// ledger are installed.
func TestLedgerRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full acquisition runs; skipped in -short")
	}
	cfg := DefaultConfig()
	plainRep, plainGot, plainQ, plainP := acquisitionRun(t, "book", 1, cfg, cfg)
	ledRep, ledGot, ledQ, ledP := ledgerRun(t, "book", 1)

	plainJSON, err := json.Marshal(plainRep)
	if err != nil {
		t.Fatal(err)
	}
	ledJSON, err := json.Marshal(ledRep)
	if err != nil {
		t.Fatal(err)
	}
	if string(plainJSON) != string(ledJSON) {
		t.Errorf("ledger-instrumented Report differs from plain run:\nplain: %s\nled:   %s",
			plainJSON, ledJSON)
	}
	if !reflect.DeepEqual(plainGot, ledGot) {
		for id := range plainGot {
			if !reflect.DeepEqual(plainGot[id], ledGot[id]) {
				t.Errorf("attr %s: plain %v vs ledger %v", id, plainGot[id], ledGot[id])
			}
		}
	}
	if plainQ != ledQ || plainP != ledP {
		t.Errorf("query counts differ: plain %d/%d, ledger %d/%d", plainQ, plainP, ledQ, ledP)
	}
}
