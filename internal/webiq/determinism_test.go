package webiq

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/surfaceweb"
)

// acquisitionRun does a full acquisition of one domain at one seed and
// returns the Report, the acquired instances per attribute, and the
// substrate query counts consumed by the run. compCfg configures the
// components (validator, Surface, Attr-Deep, Attr-Surface); acqCfg
// configures the Acquirer, whose Parallelism field additionally controls
// the cross-attribute up-front Surface phase.
func acquisitionRun(t *testing.T, domain string, seed int64, compCfg, acqCfg Config) (*Report, map[string][]string, int, int) {
	t.Helper()
	eng := surfaceweb.NewEngine()
	corpusCfg := surfaceweb.DefaultCorpusConfig()
	corpusCfg.Seed = seed
	surfaceweb.BuildCorpus(eng, kb.Domains(), corpusCfg)

	dom := kb.DomainByKey(domain)
	dataCfg := dataset.DefaultConfig()
	dataCfg.Seed = seed
	ds := dataset.Generate(dom, dataCfg)
	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = seed
	pool := deepweb.BuildPool(ds, dom, deepCfg)

	v := NewValidator(eng, compCfg)
	acq := NewAcquirer(NewSurface(eng, v, compCfg), NewAttrDeep(pool, compCfg),
		NewAttrSurface(v, compCfg), AllComponents(), acqCfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return eng.VirtualTime(), eng.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	rep := acq.AcquireAll(ds)
	got := map[string][]string{}
	for _, a := range ds.AllAttributes() {
		got[a.ID] = a.Acquired
	}
	return rep, got, eng.QueryCount(), pool.QueryCount()
}

// TestParallelValidationReportsByteIdentical pins the determinism
// contract of the parallel validation paths added to Attr-Surface
// (classifier training and borrowed-value scoring) and Attr-Deep
// (probing): with the components running 8 workers but the acquisition
// policy visiting attributes in the usual order, the Report — outcomes,
// per-component virtual times, and query counts — must be byte-for-byte
// the sequential run's across seeds, and so must every attribute's
// acquired instances and the total substrate query counts.
func TestParallelValidationReportsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full acquisition runs; skipped in -short")
	}
	for _, seed := range []int64{1, 2, 3} {
		seqCfg := DefaultConfig()
		parCfg := DefaultConfig()
		parCfg.Parallelism = 8

		seqRep, seqGot, seqQ, seqP := acquisitionRun(t, "job", seed, seqCfg, seqCfg)
		parRep, parGot, parQ, parP := acquisitionRun(t, "job", seed, parCfg, seqCfg)

		seqJSON, err := json.Marshal(seqRep)
		if err != nil {
			t.Fatal(err)
		}
		parJSON, err := json.Marshal(parRep)
		if err != nil {
			t.Fatal(err)
		}
		if string(seqJSON) != string(parJSON) {
			t.Errorf("seed %d: parallel-validation Report differs from sequential:\nseq: %s\npar: %s",
				seed, seqJSON, parJSON)
		}
		if !reflect.DeepEqual(seqGot, parGot) {
			for id := range seqGot {
				if !reflect.DeepEqual(seqGot[id], parGot[id]) {
					t.Errorf("seed %d attr %s: sequential %v vs parallel %v",
						seed, id, seqGot[id], parGot[id])
				}
			}
		}
		if seqQ != parQ || seqP != parP {
			t.Errorf("seed %d: query counts differ: sequential %d/%d, parallel %d/%d",
				seed, seqQ, seqP, parQ, parP)
		}
	}
}

// TestFullParallelOutcomesAndTotals runs the fully parallel
// configuration — within-attribute validation workers plus the
// Acquirer's cross-attribute up-front Surface phase — and checks it
// against the sequential run. Outcomes, acquired instances, total
// engine/pool consumption, and the Attr-Deep component charges must be
// identical. The split between Surface and Attr-Surface charges is NOT
// compared: the up-front phase issues all discovery queries before any
// Attr-Surface validation, so a validation query shared by both phases
// is charged to whichever runs first (the validator memoizes it), and
// that is the Surface phase here but an interleaved phase sequentially.
func TestFullParallelOutcomesAndTotals(t *testing.T) {
	if testing.Short() {
		t.Skip("full acquisition runs; skipped in -short")
	}
	seqCfg := DefaultConfig()
	parCfg := DefaultConfig()
	parCfg.Parallelism = 8

	seqRep, seqGot, seqQ, seqP := acquisitionRun(t, "job", 1, seqCfg, seqCfg)
	parRep, parGot, parQ, parP := acquisitionRun(t, "job", 1, parCfg, parCfg)

	seqOut, err := json.Marshal(seqRep.Outcomes)
	if err != nil {
		t.Fatal(err)
	}
	parOut, err := json.Marshal(parRep.Outcomes)
	if err != nil {
		t.Fatal(err)
	}
	if string(seqOut) != string(parOut) {
		t.Errorf("fully parallel outcomes differ from sequential:\nseq: %s\npar: %s", seqOut, parOut)
	}
	if !reflect.DeepEqual(seqGot, parGot) {
		t.Error("fully parallel acquired instances differ from sequential")
	}
	if seqQ != parQ || seqP != parP {
		t.Errorf("total query counts differ: sequential %d/%d, parallel %d/%d", seqQ, seqP, parQ, parP)
	}
	if st, pt := seqRep.SurfaceTime+seqRep.AttrSurfaceTime, parRep.SurfaceTime+parRep.AttrSurfaceTime; st != pt {
		t.Errorf("combined engine time differs: sequential %v, parallel %v", st, pt)
	}
	if sq, pq := seqRep.SurfaceQueries+seqRep.AttrSurfaceQueries, parRep.SurfaceQueries+parRep.AttrSurfaceQueries; sq != pq {
		t.Errorf("combined engine queries differ: sequential %d, parallel %d", sq, pq)
	}
	if seqRep.AttrDeepTime != parRep.AttrDeepTime || seqRep.AttrDeepQueries != parRep.AttrDeepQueries {
		t.Errorf("attr-deep charges differ: sequential %v/%d, parallel %v/%d",
			seqRep.AttrDeepTime, seqRep.AttrDeepQueries, parRep.AttrDeepTime, parRep.AttrDeepQueries)
	}
}

// TestParallelValidationStress drives the parallel Attr-Surface and
// Attr-Deep paths with many workers; under -race it pins the worker-pool
// and singleflight synchronization.
func TestParallelValidationStress(t *testing.T) {
	eng, data, pools := fixture(t)
	ds := data["airfare"]
	cfg := DefaultConfig()
	cfg.Parallelism = 16
	v := NewValidator(eng, cfg)
	as := NewAttrSurface(v, cfg)
	ad := NewAttrDeep(pools["airfare"], cfg)

	var attr *attrCase
	for _, ifc := range ds.Interfaces {
		for _, a := range ifc.Attributes {
			if a.HasInstances() && len(a.Instances) >= 4 {
				attr = &attrCase{label: a.Label, pos: a.Instances, ifcID: ifc.ID, attrID: a.ID}
				break
			}
		}
		if attr != nil {
			break
		}
	}
	if attr == nil {
		t.Fatal("no predefined-value attribute in fixture")
	}
	borrowed := []string{"Delta", "United", "Lufthansa", "Aer Lingus", "Quantum Air", "Nonexistent Co"}
	negatives := []string{"Boston", "Chicago", "May", "June"}
	for i := 0; i < 4; i++ {
		as.ValidateBorrowedChecked(attr.label, attr.pos, negatives, borrowed)
		ad.ValidateBorrowed(attr.ifcID, attr.attrID, borrowed)
	}
}

type attrCase struct {
	label, ifcID, attrID string
	pos                  []string
}
