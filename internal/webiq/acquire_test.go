package webiq

import (
	"reflect"
	"testing"

	"webiq/internal/schema"
)

// Unit tests for the Section-5 policy helpers that the integration tests
// exercise only indirectly.

func mkAttr(ifcID, id, label string, inst ...string) *schema.Attribute {
	return &schema.Attribute{
		ID: ifcID + "/" + id, InterfaceID: ifcID, Label: label, Instances: inst,
	}
}

func twoInterfaceDataset() *schema.Dataset {
	return &schema.Dataset{
		Domain: "airfare",
		Interfaces: []*schema.Interface{
			{ID: "x", Attributes: []*schema.Attribute{
				mkAttr("x", "from", "From"),
				mkAttr("x", "class", "Class", "Economy", "Business"),
			}},
			{ID: "y", Attributes: []*schema.Attribute{
				mkAttr("y", "from", "From city", "Boston", "Chicago", "Denver"),
				mkAttr("y", "class", "Cabin", "Economy", "First Class"),
			}},
			{ID: "z", Attributes: []*schema.Attribute{
				mkAttr("z", "date", "Departure date", "January", "March"),
			}},
		},
	}
}

func testAcquirer(cfg Config) *Acquirer {
	return NewAcquirer(nil, nil, nil, Components{}, cfg)
}

func TestBorrowDonorsFreeTextLabelFilter(t *testing.T) {
	ds := twoInterfaceDataset()
	a := testAcquirer(DefaultConfig())
	attr := ds.Interfaces[0].Attributes[0] // "From", no instances
	donors := a.borrowDonorsFreeText(ds, ds.Interfaces[0], attr)
	if len(donors) != 1 {
		t.Fatalf("donors = %v", donors)
	}
	if donors[0].Label != "From city" {
		t.Errorf("donor = %q, want From city", donors[0].Label)
	}
}

func TestBorrowDonorsExcludeSameInterface(t *testing.T) {
	ds := twoInterfaceDataset()
	a := testAcquirer(DefaultConfig())
	attr := ds.Interfaces[1].Attributes[0] // y/from, has instances but eligible as target
	donors := a.borrowDonorsFreeText(ds, ds.Interfaces[1], attr)
	for _, d := range donors {
		if d.InterfaceID == "y" {
			t.Errorf("donor %s from the target's own interface", d.ID)
		}
	}
}

func TestBorrowDonorsDomainConflict(t *testing.T) {
	// A donor whose values overlap a predefined sibling of the target is
	// excluded (Section 5, case 1).
	ds := twoInterfaceDataset()
	// Give x a predefined sibling with city values.
	ds.Interfaces[0].Attributes = append(ds.Interfaces[0].Attributes,
		mkAttr("x", "near", "Nearby city", "Boston", "Chicago", "Denver"))
	a := testAcquirer(DefaultConfig())
	attr := ds.Interfaces[0].Attributes[0] // "From"
	donors := a.borrowDonorsFreeText(ds, ds.Interfaces[0], attr)
	if len(donors) != 0 {
		t.Errorf("donor with sibling-overlapping domain not excluded: %v", donors)
	}
}

func TestBorrowValuesPredefRequiresSharedValues(t *testing.T) {
	ds := twoInterfaceDataset()
	a := testAcquirer(DefaultConfig())
	attr := ds.Interfaces[0].Attributes[1] // Class {Economy, Business}
	got := a.borrowValuesPredef(ds, ds.Interfaces[0], attr)
	// "Cabin" shares Economy (1 value) — below BorrowValueMatches=2 — so
	// the strict pass fails; the fallback borrows from everything.
	if len(got) == 0 {
		t.Fatal("fallback did not borrow anything")
	}
	for _, v := range got {
		if v == "Economy" || v == "Business" {
			t.Errorf("borrowed value %q already predefined on target", v)
		}
	}
}

func TestBorrowValuesPredefStrictPass(t *testing.T) {
	ds := twoInterfaceDataset()
	// Make Cabin share two values with Class.
	ds.Interfaces[1].Attributes[1].Instances = []string{"Economy", "Business", "First Class"}
	a := testAcquirer(DefaultConfig())
	attr := ds.Interfaces[0].Attributes[1]
	got := a.borrowValuesPredef(ds, ds.Interfaces[0], attr)
	want := []string{"First Class"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("borrowed = %v, want %v (strict donors only)", got, want)
	}
}

func TestDomainsVerySimilar(t *testing.T) {
	if !domainsVerySimilar([]string{"a", "b"}, []string{"A", "B", "c"}, 2) {
		t.Error("two exact folds should qualify")
	}
	if domainsVerySimilar([]string{"a"}, []string{"b"}, 2) {
		t.Error("disjoint singletons should not qualify")
	}
	// Near-identical pairs count (edit similarity >= 0.9).
	if !domainsVerySimilar([]string{"Chevrolet", "Mitsubishi"}, []string{"Chevrolets", "Mitsubishis"}, 2) {
		t.Error("edit-similar pairs should qualify")
	}
	// Short words don't reach the 0.9 bar with one edit.
	if domainsVerySimilar([]string{"Kia"}, []string{"Ki"}, 1) {
		t.Error("short near-pairs should not qualify")
	}
}

func TestAddAcquiredDedupAndCap(t *testing.T) {
	attr := &schema.Attribute{Instances: []string{"X"}}
	n := addAcquired(attr, []string{"x", "Y", "y", "Z"}, 2)
	if n != 2 {
		t.Errorf("added = %d, want 2 (cap)", n)
	}
	if !reflect.DeepEqual(attr.Acquired, []string{"Y", "Z"}) {
		t.Errorf("acquired = %v", attr.Acquired)
	}
	// A second call respects existing acquisitions.
	n = addAcquired(attr, []string{"y", "W"}, 3)
	if n != 1 || attr.Acquired[2] != "W" {
		t.Errorf("second add: n=%d acquired=%v", n, attr.Acquired)
	}
}

func TestNonInstancesCap(t *testing.T) {
	ds := twoInterfaceDataset()
	ifc := ds.Interfaces[1]
	got := nonInstances(ifc, ifc.Attributes[0], 2)
	if len(got) != 2 {
		t.Errorf("nonInstances = %v, want 2 values", got)
	}
	for _, v := range got {
		for _, own := range ifc.Attributes[0].Instances {
			if v == own {
				t.Errorf("non-instance %q is the attribute's own value", v)
			}
		}
	}
}

func TestReportSuccessRateCounting(t *testing.T) {
	r := &Report{Outcomes: []Outcome{
		{HadInstances: true, Success: false},
		{HadInstances: false, Success: true},
		{HadInstances: false, Success: false},
	}}
	if got := r.SuccessRate(); got != 50 {
		t.Errorf("success rate = %v, want 50", got)
	}
}

func TestHasMethodAndCap(t *testing.T) {
	if !hasMethod([]Method{MethodSurface, MethodAttrDeep}, MethodAttrDeep) {
		t.Error("hasMethod missed present method")
	}
	if hasMethod(nil, MethodSurface) {
		t.Error("hasMethod found method in empty slice")
	}
	if got := capSlice([]string{"a", "b", "c"}, 2); len(got) != 2 {
		t.Errorf("capSlice = %v", got)
	}
	if got := capSlice([]string{"a"}, 5); len(got) != 1 {
		t.Errorf("capSlice = %v", got)
	}
}

func TestFoldValue(t *testing.T) {
	if foldValue("Air Canada") != "air canada" {
		t.Errorf("foldValue = %q", foldValue("Air Canada"))
	}
	if foldValue("") != "" {
		t.Error("empty fold")
	}
}
