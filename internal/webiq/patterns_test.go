package webiq

import (
	"reflect"
	"strings"
	"testing"

	"webiq/internal/nlp"
)

func npOf(t *testing.T, label string) nlp.NounPhrase {
	t.Helper()
	ls := nlp.AnalyzeLabel(label)
	if len(ls.NPs) == 0 {
		t.Fatalf("no NP in %q", label)
	}
	return ls.NPs[0]
}

func TestFormulateQueriesAuthors(t *testing.T) {
	cfg := DefaultConfig()
	qs := FormulateQueries(npOf(t, "Author"), "book", "book", []string{"Title", "ISBN"}, cfg)
	if len(qs) != 8 {
		t.Fatalf("got %d queries, want 8", len(qs))
	}
	// The paper's example query: "authors such as" +book +title +isbn.
	found := false
	for _, q := range qs {
		if q.Pattern == "s1" {
			if q.Query != `"authors such as" +book +title +isbn` {
				t.Errorf("s1 query = %q", q.Query)
			}
			found = true
		}
	}
	if !found {
		t.Error("no s1 query")
	}
}

func TestFormulateQueriesSingleton(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseDomainKeywords = false
	qs := FormulateQueries(npOf(t, "Author"), "book", "book", nil, cfg)
	var g1 *ExtractionQuery
	for i := range qs {
		if qs[i].Pattern == "g1" {
			g1 = &qs[i]
		}
	}
	if g1 == nil {
		t.Fatal("no g1 query")
	}
	if g1.Cue != "the author of the book is" {
		t.Errorf("g1 cue = %q", g1.Cue)
	}
	if g1.Kind != SingletonPattern || g1.Dir != After {
		t.Errorf("g1 kind/dir = %v/%v", g1.Kind, g1.Dir)
	}
}

func TestFormulateQueriesPluralHead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseDomainKeywords = false
	qs := FormulateQueries(npOf(t, "Class of service"), "flight", "airfare", nil, cfg)
	for _, q := range qs {
		if q.Pattern == "s1" && q.Cue != "classes of service such as" {
			t.Errorf("s1 cue = %q, want head-pluralized phrase", q.Cue)
		}
	}
}

func TestFormulateQueriesNoSiblingOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSiblingKeywords = 1
	qs := FormulateQueries(npOf(t, "Make"), "car", "used cars", []string{"Model", "Year", "Price"}, cfg)
	if got := strings.Count(qs[0].Query, "+"); got != 3 {
		// "used cars" contributes 2 (+used +cars? "used" is a stopword? no) ...
		// Count: domain keyword words + 1 sibling.
		t.Logf("query = %q", qs[0].Query)
		if got > 4 {
			t.Errorf("too many required terms: %d", got)
		}
	}
}

func TestExtractFromSnippetSetAfter(t *testing.T) {
	q := ExtractionQuery{Pattern: "s1", Kind: SetPattern, Dir: After, Cue: "departure cities such as"}
	got := ExtractFromSnippet(q, "Departure cities such as Boston, Chicago, and LAX are served.")
	want := []string{"Boston", "Chicago", "LAX"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestExtractFromSnippetSetBefore(t *testing.T) {
	q := ExtractionQuery{Pattern: "s4", Kind: SetPattern, Dir: Before, Cue: "and other airlines"}
	got := ExtractFromSnippet(q, "Cheap fares. Delta, United, Air Canada, and other airlines can be found.")
	want := []string{"Delta", "United", "Air Canada"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestExtractFromSnippetSingletonAfter(t *testing.T) {
	q := ExtractionQuery{Pattern: "g1", Kind: SingletonPattern, Dir: After, Cue: "the author of the book is"}
	got := ExtractFromSnippet(q, "We know the author of the book is Mark Twain, a famous writer.")
	if !reflect.DeepEqual(got, []string{"Mark Twain"}) {
		t.Errorf("got %v", got)
	}
}

func TestExtractFromSnippetSingletonBefore(t *testing.T) {
	q := ExtractionQuery{Pattern: "g3", Kind: SingletonPattern, Dir: Before, Cue: "is the airline of the flight"}
	got := ExtractFromSnippet(q, "Delta is the airline of the flight.")
	if !reflect.DeepEqual(got, []string{"Delta"}) {
		t.Errorf("got %v", got)
	}
}

func TestExtractFromSnippetNoCue(t *testing.T) {
	q := ExtractionQuery{Pattern: "s1", Kind: SetPattern, Dir: After, Cue: "makes such as"}
	if got := ExtractFromSnippet(q, "Nothing relevant here."); got != nil {
		t.Errorf("got %v, want nil", got)
	}
}

func TestExtractFromSnippetSkipsStopwordCandidates(t *testing.T) {
	q := ExtractionQuery{Pattern: "g2", Kind: SingletonPattern, Dir: After, Cue: "the color is"}
	got := ExtractFromSnippet(q, "the color is the same")
	for _, c := range got {
		if strings.ToLower(c) == "the" || strings.ToLower(c) == "the same" {
			t.Errorf("stopword-only candidate %q survived", c)
		}
	}
}

func TestQuerySuffixDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseDomainKeywords = false
	qs := FormulateQueries(npOf(t, "Author"), "book", "book", []string{"Title"}, cfg)
	if strings.Contains(qs[0].Query, "+") {
		t.Errorf("query %q should have no required terms", qs[0].Query)
	}
}
