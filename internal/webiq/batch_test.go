package webiq

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/obs"
	"webiq/internal/resilience"
	"webiq/internal/surfaceweb"
)

// TestScoresBatchMatchesScalar compares the batched scoring entry
// points against fresh scalar validators on twin engines: values must
// match exactly and the engines must be charged identically.
func TestScoresBatchMatchesScalar(t *testing.T) {
	xs := []string{"Hemingway", "updike", "Toyota", "zzz-unknown", "Hemingway", "software engineer"}
	for _, raw := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.UseRawHitCounts = raw

		scalarCfg := cfg
		scalarCfg.ScalarValidation = true
		mkEngine := func() *surfaceweb.Engine {
			e := surfaceweb.NewEngine()
			surfaceweb.BuildCorpus(e, kb.Domains(), surfaceweb.DefaultCorpusConfig())
			return e
		}
		scalarEng, batchEng := mkEngine(), mkEngine()
		scalar := NewValidator(scalarEng, scalarCfg)
		batched := NewValidator(batchEng, cfg)
		phrases := scalar.Phrases("author")

		var wantScores [][]float64
		var wantConfs []float64
		for _, x := range xs {
			wantScores = append(wantScores, scalar.Scores(phrases, x))
			wantConfs = append(wantConfs, scalar.Confidence(phrases, x))
		}
		gotScores := batched.ScoresBatch(phrases, xs)
		if !reflect.DeepEqual(gotScores, wantScores) {
			t.Errorf("raw=%v: ScoresBatch %v, scalar %v", raw, gotScores, wantScores)
		}
		// Confidence on the same validator replays from the memo, as
		// the scalar sequence does.
		gotConfs := batched.ConfidenceBatch(phrases, xs)
		if !reflect.DeepEqual(gotConfs, wantConfs) {
			t.Errorf("raw=%v: ConfidenceBatch %v, scalar %v", raw, gotConfs, wantConfs)
		}
		if g, w := batchEng.QueryCount(), scalarEng.QueryCount(); g != w {
			t.Errorf("raw=%v: engine charged %d queries batched, %d scalar", raw, g, w)
		}
		if g, w := batchEng.VirtualTime(), scalarEng.VirtualTime(); g != w {
			t.Errorf("raw=%v: engine virtual time %v batched, %v scalar", raw, g, w)
		}
	}
}

// TestConfidenceDelegatesToScores pins the satellite fix: Confidence
// and ConfidenceCtx are the mean of Scores/ScoresCtx, bit for bit.
func TestConfidenceDelegatesToScores(t *testing.T) {
	eng, _, _ := fixture(t)
	v := NewValidator(eng, DefaultConfig())
	phrases := v.Phrases("author")
	for _, x := range []string{"Hemingway", "zzz"} {
		scores := v.Scores(phrases, x)
		var sum float64
		for _, s := range scores {
			sum += s
		}
		if got, want := v.Confidence(phrases, x), sum/float64(len(scores)); got != want {
			t.Errorf("Confidence(%q) = %v, mean of Scores = %v", x, got, want)
		}
	}
	if got := v.Confidence(nil, "x"); got != 0 {
		t.Errorf("Confidence with no phrases = %v, want 0", got)
	}
}

// ledgeredRun is acquisitionRun plus a decision ledger, for byte-level
// comparison of the provenance stream.
func ledgeredRun(t *testing.T, domain string, seed int64, compCfg, acqCfg Config) (*Report, map[string][]string, int, []byte) {
	t.Helper()
	eng := surfaceweb.NewEngine()
	corpusCfg := surfaceweb.DefaultCorpusConfig()
	corpusCfg.Seed = seed
	surfaceweb.BuildCorpus(eng, kb.Domains(), corpusCfg)

	dom := kb.DomainByKey(domain)
	dataCfg := dataset.DefaultConfig()
	dataCfg.Seed = seed
	ds := dataset.Generate(dom, dataCfg)
	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = seed
	pool := deepweb.BuildPool(ds, dom, deepCfg)

	v := NewValidator(eng, compCfg)
	acq := NewAcquirer(NewSurface(eng, v, compCfg), NewAttrDeep(pool, compCfg),
		NewAttrSurface(v, compCfg), AllComponents(), acqCfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return eng.VirtualTime(), eng.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	var buf bytes.Buffer
	acq.SetLedger(obs.NewLedger(&buf))
	rep := acq.AcquireAll(ds)
	got := map[string][]string{}
	for _, a := range ds.AllAttributes() {
		got[a.ID] = a.Acquired
	}
	return rep, got, eng.QueryCount(), buf.Bytes()
}

// TestBatchedAcquisitionByteIdentical is the end-to-end equivalence
// gate: a full acquisition with batched validation must produce a
// byte-identical Report, identical acquired instances, identical engine
// query accounting, and byte-identical ledger NDJSON versus the forced
// scalar path — sequentially and with the worker pool on.
func TestBatchedAcquisitionByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full acquisition runs; skipped in -short")
	}
	for _, parallelism := range []int{0, 8} {
		scalarCfg := DefaultConfig()
		scalarCfg.ScalarValidation = true
		scalarCfg.Parallelism = parallelism
		batchCfg := DefaultConfig()
		batchCfg.Parallelism = parallelism

		sRep, sGot, sQ, sLedger := ledgeredRun(t, "book", 1, scalarCfg, scalarCfg)
		bRep, bGot, bQ, bLedger := ledgeredRun(t, "book", 1, batchCfg, batchCfg)

		sJSON, err := json.Marshal(sRep)
		if err != nil {
			t.Fatal(err)
		}
		bJSON, err := json.Marshal(bRep)
		if err != nil {
			t.Fatal(err)
		}
		if string(sJSON) != string(bJSON) {
			t.Errorf("parallelism %d: batched Report differs from scalar:\nscalar: %s\nbatched: %s",
				parallelism, sJSON, bJSON)
		}
		if !reflect.DeepEqual(sGot, bGot) {
			t.Errorf("parallelism %d: acquired instances differ", parallelism)
		}
		if sQ != bQ {
			t.Errorf("parallelism %d: engine query counts differ: scalar %d, batched %d", parallelism, sQ, bQ)
		}
		// The ledger is ordered only in the sequential run; with workers
		// the scalar path itself is order-nondeterministic, so compare
		// bytes sequentially and entry counts in parallel.
		if parallelism == 0 {
			if !bytes.Equal(sLedger, bLedger) {
				sl, bl := bytes.Split(sLedger, []byte("\n")), bytes.Split(bLedger, []byte("\n"))
				for i := 0; i < len(sl) && i < len(bl); i++ {
					if !bytes.Equal(sl[i], bl[i]) {
						t.Fatalf("ledgers diverge at line %d:\nscalar:  %s\nbatched: %s", i+1, sl[i], bl[i])
					}
				}
				t.Fatalf("ledgers differ in length: scalar %d lines, batched %d", len(sl), len(bl))
			}
		} else if bytes.Count(sLedger, []byte("\n")) != bytes.Count(bLedger, []byte("\n")) {
			t.Errorf("parallelism %d: ledger entry counts differ: scalar %d, batched %d",
				parallelism, bytes.Count(sLedger, []byte("\n")), bytes.Count(bLedger, []byte("\n")))
		}
	}
}

// TestBatchedCachedAcquisitionAccounting runs the batched and scalar
// paths over a CachedEngine — the benchmark's configuration — and
// demands identical cache accounting on top of identical outputs.
func TestBatchedCachedAcquisitionAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("full acquisition runs; skipped in -short")
	}
	run := func(scalar bool) (*Report, [5]int) {
		cfg := DefaultConfig()
		cfg.ScalarValidation = scalar
		cfg.Parallelism = 8
		eng := surfaceweb.NewEngine()
		surfaceweb.BuildCorpus(eng, kb.Domains(), surfaceweb.DefaultCorpusConfig())
		cache := surfaceweb.NewCachedEngine(eng, 0)

		dom := kb.DomainByKey("book")
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())

		v := NewValidator(cache, cfg)
		acq := NewAcquirer(NewSurface(cache, v, cfg), NewAttrDeep(pool, cfg),
			NewAttrSurface(v, cfg), AllComponents(), cfg)
		acq.SetAccounting(
			func() (time.Duration, int) { return cache.VirtualTime(), cache.QueryCount() },
			func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
		)
		rep := acq.AcquireAll(ds)
		return rep, [5]int{cache.Hits(), cache.Misses(), cache.RawQueryCount(), cache.QueryCount(), cache.Len()}
	}
	sRep, sAcct := run(true)
	bRep, bAcct := run(false)
	sJSON, _ := json.Marshal(sRep)
	bJSON, _ := json.Marshal(bRep)
	if string(sJSON) != string(bJSON) {
		t.Errorf("cached batched Report differs from scalar:\nscalar: %s\nbatched: %s", sJSON, bJSON)
	}
	if sAcct != bAcct {
		t.Errorf("cache accounting differs (hits, misses, raw, deduped, entries): scalar %v, batched %v", sAcct, bAcct)
	}
}

// TestBatchedChaosLedgerIdentical pins the fault-profile contract: with
// the p30 profile injecting errors, the batched configuration falls
// back to scalar scoring order, so its ledger NDJSON is byte-identical
// to the forced-scalar run.
func TestBatchedChaosLedgerIdentical(t *testing.T) {
	prof, err := resilience.ProfileByName("p30")
	if err != nil {
		t.Fatal(err)
	}
	opts := resilience.ClientOptions{
		Retry:   resilience.RetryPolicy{MaxAttempts: 3},
		Breaker: resilience.BreakerConfig{FailureThreshold: 1 << 30, Cooldown: time.Hour, HalfOpenProbes: 1},
	}
	run := func(scalar bool) []byte {
		cfg := DefaultConfig() // sequential: ordered ledger
		cfg.ScalarValidation = scalar
		acq, ds := buildChaosAcquirer(t, cfg, prof, 42, opts)
		var buf bytes.Buffer
		acq.SetLedger(obs.NewLedger(&buf))
		rep := acq.AcquireAllCtx(context.Background(), ds)
		if rep.Interrupted != nil {
			t.Fatalf("run interrupted: %v", rep.Interrupted)
		}
		if len(rep.Degradations) == 0 {
			t.Fatal("p30 run absorbed no degradations; the test is vacuous")
		}
		return buf.Bytes()
	}
	s, b := run(true), run(false)
	if !bytes.Equal(s, b) {
		sl, bl := bytes.Split(s, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := 0; i < len(sl) && i < len(bl); i++ {
			if !bytes.Equal(sl[i], bl[i]) {
				t.Fatalf("p30 ledgers diverge at line %d:\nscalar:  %s\nbatched: %s", i+1, sl[i], bl[i])
			}
		}
		t.Fatalf("p30 ledgers differ in length: %d vs %d lines", len(sl), len(bl))
	}
}
