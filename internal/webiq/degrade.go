package webiq

import (
	"context"
	"sync"

	"webiq/internal/obs"
)

// This file implements graceful degradation: when a fault-injected (or
// genuinely flaky) backend fails terminally — retries exhausted, breaker
// open, hard timeout — the pipeline does not abort. Each component falls
// back along the paper's trust hierarchy and records what it gave up:
//
//	Surface search failure      -> skip the query; borrowing still runs
//	PMI validation failure      -> accept-with-flag (recorded, never silent)
//	Attr-Surface scoring failure-> skip the value / skip the classifier
//	Attr-Deep probe failure     -> one-third rule over answered probes;
//	                               skip deep validation if none answered
//
// Every event lands in three places at once: the run's
// Report.Degradations, the webiq_degraded_total{stage,reason} metric,
// and the provenance ledger (component "resilience", verdict
// "degraded"). Without fault injection no event ever fires and the only
// cost is nil checks.

// Degradation records one graceful-degradation event of an acquisition
// run.
type Degradation struct {
	// Stage is the pipeline stage that degraded: "surface" (extraction
	// search), "pmi" (Web validation), "attr-surface" (classifier), or
	// "attr-deep" (source probing).
	Stage string `json:"stage"`
	// Reason classifies the terminal error (see resilience.Reason):
	// "transient", "timeout", "breaker-open", "canceled", ...
	Reason string `json:"reason"`
	AttrID string `json:"attr_id,omitempty"`
	Label  string `json:"label,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// degradeSink collects the degradation events of one acquisition run.
// It travels via the context so the components need no new parameters,
// and it carries the acquirer's metric vec and ledger so one call fans
// out to all three records.
type degradeSink struct {
	vec    *obs.CounterVec // stage, reason (nil-safe)
	ledger *obs.Ledger

	mu     sync.Mutex
	events []Degradation
}

type degradeCtxKey struct{}

// newDegradeCtx installs a fresh sink for one acquisition run.
func (a *Acquirer) newDegradeCtx(ctx context.Context) (context.Context, *degradeSink) {
	s := &degradeSink{vec: a.mDegraded, ledger: a.ledger}
	return context.WithValue(ctx, degradeCtxKey{}, s), s
}

// degrade records one degradation event on the run's sink: appended to
// the report, counted in webiq_degraded_total{stage,reason}, and
// recorded in the ledger. A context without a sink drops the event
// (components called outside AcquireAll).
func degrade(ctx context.Context, d Degradation) {
	s, _ := ctx.Value(degradeCtxKey{}).(*degradeSink)
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, d)
	s.mu.Unlock()
	s.vec.With(d.Stage, d.Reason).Inc()
	if s.ledger != nil {
		s.ledger.RecordCtx(ctx, obs.Decision{
			Component: "resilience", Verdict: "degraded",
			AttrID: d.AttrID, Label: d.Label,
			Detail: d.Stage + "/" + d.Reason + ": " + d.Detail,
		})
	}
}

// take drains the collected events.
func (s *degradeSink) take() []Degradation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}
