package webiq

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/resilience"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
)

func TestParallelForCtxStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	parallelForCtx(ctx, 100000, 4, func(i int) {
		if ran.Add(1) == 8 {
			cancel()
		}
	})
	if n := ran.Load(); n >= 100000 {
		t.Fatalf("all %d iterations ran despite cancellation", n)
	}
}

func TestParallelForCtxSequentialStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	parallelForCtx(ctx, 1000, 1, func(i int) {
		ran++
		if ran == 5 {
			cancel()
		}
	})
	if ran != 5 {
		t.Fatalf("sequential path ran %d iterations after cancel at 5", ran)
	}
}

func TestParallelForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	parallelForCtx(ctx, 100, 4, func(i int) { ran.Add(1) })
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d iterations ran on a pre-canceled context", n)
	}
}

// cancelAfterEngine passes calls through to a real fallible engine and
// cancels the acquisition's context after a fixed number of them,
// simulating a caller abandoning the run mid-flight.
type cancelAfterEngine struct {
	eng    resilience.FallibleEngine
	calls  *atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (c cancelAfterEngine) tick() {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
}

func (c cancelAfterEngine) Search(ctx context.Context, q string, limit int) ([]surfaceweb.Snippet, error) {
	c.tick()
	return c.eng.Search(ctx, q, limit)
}

func (c cancelAfterEngine) NumHits(ctx context.Context, q string) (int, error) {
	c.tick()
	return c.eng.NumHits(ctx, q)
}

// buildJobAcquirer assembles a full pipeline over a fresh job-domain
// dataset (the smallest domain), for the cancellation tests.
func buildJobAcquirer(t *testing.T, cfg Config) (*Acquirer, *schema.Dataset) {
	t.Helper()
	eng, _, _ := fixture(t)
	dom := kb.DomainByKey("job")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())
	v := NewValidator(eng, cfg)
	acq := NewAcquirer(NewSurface(eng, v, cfg), NewAttrDeep(pool, cfg),
		NewAttrSurface(v, cfg), AllComponents(), cfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return 0, 0 },
		func() (time.Duration, int) { return 0, 0 },
	)
	return acq, ds
}

func TestAcquireAllCtxCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 4

	// Control: a complete run on an identical fresh dataset, for the
	// expected outcome count.
	control, controlDS := buildJobAcquirer(t, cfg)
	full := control.AcquireAll(controlDS)
	if full.Interrupted != nil {
		t.Fatalf("control run interrupted: %v", full.Interrupted)
	}

	acq, ds := buildJobAcquirer(t, cfg)
	eng, _, _ := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	acq.SetFallible(cancelAfterEngine{
		eng:    resilience.AdaptEngine(eng),
		calls:  &calls,
		after:  10,
		cancel: cancel,
	}, nil)

	before := runtime.NumGoroutine()
	rep := acq.AcquireAllCtx(ctx, ds)

	if rep.Interrupted == nil {
		t.Fatal("canceled run reported no interruption")
	}
	if !errors.Is(rep.Interrupted, context.Canceled) {
		t.Fatalf("Interrupted = %v, want context.Canceled", rep.Interrupted)
	}
	// Partial results: the run stopped before covering every attribute,
	// but what it did finish is reported normally.
	if len(rep.Outcomes) >= len(full.Outcomes) {
		t.Fatalf("canceled run produced %d outcomes, control %d; expected fewer",
			len(rep.Outcomes), len(full.Outcomes))
	}

	// No goroutine leaks: the worker pools must wind down once the
	// canceled run returns.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutine leak after cancellation: %d before, %d after", before, n)
	}
}

func TestAcquireAllCtxPreCanceled(t *testing.T) {
	acq, ds := buildJobAcquirer(t, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := acq.AcquireAllCtx(ctx, ds)
	if !errors.Is(rep.Interrupted, context.Canceled) {
		t.Fatalf("Interrupted = %v, want context.Canceled", rep.Interrupted)
	}
	if len(rep.Outcomes) != 0 {
		t.Fatalf("pre-canceled run produced %d outcomes", len(rep.Outcomes))
	}
}
