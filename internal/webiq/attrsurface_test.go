package webiq

import (
	"math"
	"testing"
)

// TestFigure5WorkedExample replays the paper's Figure 5 end to end: the
// Airline classifier trained from the validation vectors shown in
// Figure 5.c must reproduce the thresholds of 5.f and the smoothed
// probabilities of 5.h.
func TestFigure5WorkedExample(t *testing.T) {
	phrases := []string{"airlines such as", "airline is"}
	pos := [][]float64{
		{.5, .3}, // Air Canada
		{.8, .1}, // American
		{.6, .3}, // Delta
		{.9, .4}, // United
	}
	neg := [][]float64{
		{.4, .03}, // Economy
		{.2, .05}, // First Class
		{.1, .06}, // Jan
		{.3, .09}, // 1
	}
	c := trainFromScores(phrases, pos, neg)

	// Figure 5.f: t1 = .45, t2 = .075.
	if math.Abs(c.Thresholds[0]-0.45) > 1e-9 {
		t.Errorf("t1 = %v, want .45", c.Thresholds[0])
	}
	if math.Abs(c.Thresholds[1]-0.075) > 1e-9 {
		t.Errorf("t2 = %v, want .075", c.Thresholds[1])
	}

	// Figure 5.h: priors and class conditionals.
	if c.PPos != 0.5 || c.PNeg != 0.5 {
		t.Errorf("priors = %v/%v, want 1/2 each", c.PPos, c.PNeg)
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("P(f1=1|+)", c.PF[0][1][1], 3.0/4)
	check("P(f1=0|+)", c.PF[0][0][1], 1.0/4)
	check("P(f1=1|-)", c.PF[0][1][0], 1.0/4)
	check("P(f1=0|-)", c.PF[0][0][0], 3.0/4)
	check("P(f2=1|+)", c.PF[1][1][1], 3.0/4)
	check("P(f2=0|+)", c.PF[1][0][1], 1.0/4)
	check("P(f2=1|-)", c.PF[1][1][0], 1.0/2)
	check("P(f2=0|-)", c.PF[1][0][0], 1.0/2)
}

func TestClassifierPredicts(t *testing.T) {
	phrases := []string{"p1", "p2"}
	pos := [][]float64{{.5, .3}, {.8, .1}, {.6, .3}, {.9, .4}}
	neg := [][]float64{{.4, .03}, {.2, .05}, {.1, .06}, {.3, .09}}
	c := trainFromScores(phrases, pos, neg)

	// An instance-like vector (high scores on both phrases).
	if p := c.ProbPositive([]float64{.7, .2}); p <= 0.5 {
		t.Errorf("instance-like P(+) = %v, want > .5", p)
	}
	// A non-instance-like vector.
	if p := c.ProbPositive([]float64{.05, .01}); p >= 0.5 {
		t.Errorf("non-instance-like P(+) = %v, want < .5", p)
	}
}

func TestClassifierFeatures(t *testing.T) {
	c := &Classifier{Thresholds: []float64{0.45, 0.075}}
	got := c.Features([]float64{0.5, 0.05})
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("features = %v, want [1 0]", got)
	}
	// Equal to threshold is not above it.
	got = c.Features([]float64{0.45, 0.075})
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("boundary features = %v, want [0 0]", got)
	}
}

func TestBestThresholdSeparable(t *testing.T) {
	vals := []float64{.2, .4, .5, .8}
	labels := []bool{false, false, true, true}
	if got := bestThreshold(vals, labels); math.Abs(got-0.45) > 1e-9 {
		t.Errorf("threshold = %v, want .45", got)
	}
}

func TestBestThresholdAllEqual(t *testing.T) {
	vals := []float64{.3, .3, .3}
	labels := []bool{true, false, true}
	got := bestThreshold(vals, labels)
	if got != .3 {
		t.Errorf("degenerate threshold = %v", got)
	}
}

func TestTrainClassifierTooFewExamples(t *testing.T) {
	v := NewValidator(&stubEngine{}, DefaultConfig())
	if _, err := TrainClassifier(v, "airline", []string{"Delta"}, []string{"Economy", "Jan"}); err == nil {
		t.Error("want error with a single positive example")
	}
}
