package webiq

import (
	"context"
	"sync"
)

// Batched PMI validation. One attribute's validation burst scores every
// candidate x against every validation phrase V — |xs|·|phrases| joint
// probes plus the phrase and candidate hit counts the non-zero joints
// need. ScoresBatchCtx collects the whole burst, dedupes it against the
// memoized hit-count cache, issues the residue as one batched engine
// request, and fans the results back out.
//
// The batch is observationally identical to the scalar loop:
//
//   - Probe order is the scalar order (x-major, phrase-minor; joint
//     first, then NumHits(V), then NumHits(x) only when the joint is
//     non-zero), so the set of queries that reach the engine — first
//     need of each distinct key — is exactly the scalar set.
//   - Resolution goes through the same singleflight memo; concurrent
//     scalar callers and other batches interoperate with it.
//   - Fault injection (a fallible engine) and Config.ScalarValidation
//     fall back to the per-x scalar loop, preserving the scalar path's
//     per-x short-circuit error semantics exactly.

// batchable reports whether the validator may resolve a burst through
// the batched path: no fault injection (whose per-attempt decisions are
// order-sensitive) and no forced-scalar configuration.
func (v *Validator) batchable() bool {
	return v.fallible == nil && !v.cfg.ScalarValidation
}

// ScoresBatch returns the per-phrase validation score vectors for many
// candidates at once: out[i] corresponds to xs[i] and equals
// Scores(phrases, xs[i]).
func (v *Validator) ScoresBatch(phrases []string, xs []string) [][]float64 {
	out, _ := v.ScoresBatchCtx(context.Background(), phrases, xs)
	return out
}

// ConfidenceBatch returns the confidence score of each candidate in
// xs: out[i] equals Confidence(phrases, xs[i]).
func (v *Validator) ConfidenceBatch(phrases []string, xs []string) []float64 {
	confs, _ := v.ConfidenceBatchCtx(context.Background(), phrases, xs)
	return confs
}

// ConfidenceBatchCtx returns the confidence score of each candidate in
// xs — confs[i] and errs[i] equal what ConfidenceCtx(ctx, phrases,
// xs[i]) returns — resolving the whole burst through one batched
// engine request where possible.
func (v *Validator) ConfidenceBatchCtx(ctx context.Context, phrases []string, xs []string) (confs []float64, errs []error) {
	confs = make([]float64, len(xs))
	if len(phrases) == 0 {
		return confs, make([]error, len(xs))
	}
	scores, errs := v.ScoresBatchCtx(ctx, phrases, xs)
	for i := range xs {
		if errs[i] == nil {
			confs[i] = mean(scores[i])
		}
	}
	return confs, errs
}

// ScoresBatchCtx is the batched core: out[i], errs[i] equal what
// ScoresCtx(ctx, phrases, xs[i]) returns when called sequentially.
func (v *Validator) ScoresBatchCtx(ctx context.Context, phrases []string, xs []string) ([][]float64, []error) {
	out := make([][]float64, len(xs))
	errs := make([]error, len(xs))
	if len(xs) == 0 || len(phrases) == 0 {
		for i := range out {
			out[i] = make([]float64, len(phrases))
		}
		return out, errs
	}
	if v.fallible != nil || v.cfg.ScalarValidation {
		// Fault injection decides per (query, attempt); batching would
		// reorder attempts and change which probes fail. Keep the
		// scalar path so error behavior is bit-for-bit the same.
		for i, x := range xs {
			out[i], errs[i] = v.ScoresCtx(ctx, phrases, x)
		}
		return out, errs
	}

	np := len(phrases)
	sc := scoresBatchPool.Get().(*scoresBatchScratch)
	defer scoresBatchPool.Put(sc)
	keys := &sc.keys
	keys.reset()

	// One flat backing array for all score vectors: out[i] is its own
	// full-capacity window, so the batch allocates once instead of once
	// per candidate.
	flat := make([]float64, len(xs)*np)

	// Stage 1: every joint key "V x", in scalar probe order.
	for _, x := range xs {
		for _, p := range phrases {
			keys.begin()
			keys.arena = append(keys.arena, '"')
			keys.arena = append(keys.arena, p...)
			keys.arena = append(keys.arena, ' ')
			keys.arena = appendLower(keys.arena, x)
			keys.arena = append(keys.arena, '"')
			keys.end()
		}
	}
	sc.joints = growInts(sc.joints, keys.n)
	joints := sc.joints
	if err := v.numHitsManyCtx(ctx, keys, joints, sc); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return out, errs
	}
	if v.cfg.UseRawHitCounts {
		for i := range xs {
			s := flat[i*np : (i+1)*np : (i+1)*np]
			for j := range phrases {
				s[j] = float64(joints[i*np+j])
			}
			out[i] = s
		}
		return out, errs
	}

	// Stage 2: NumHits(V) and NumHits(x) for the non-zero joints, again
	// in scalar probe order. hvAt/hxAt map each needed (i,j) pair to
	// its position in the stage-2 key list; -1 means the joint was zero
	// and the scalar path would not have asked.
	keys.reset()
	sc.hvAt = growInts(sc.hvAt, len(xs)*np)
	sc.hxAt = growInts(sc.hxAt, len(xs)*np)
	hvAt, hxAt := sc.hvAt, sc.hxAt
	for i, x := range xs {
		for j, p := range phrases {
			at := i*np + j
			hvAt[at], hxAt[at] = -1, -1
			if joints[at] == 0 {
				continue
			}
			hvAt[at] = keys.n
			keys.begin()
			keys.arena = append(keys.arena, '"')
			keys.arena = append(keys.arena, p...)
			keys.arena = append(keys.arena, '"')
			keys.end()
			hxAt[at] = keys.n
			keys.begin()
			keys.arena = append(keys.arena, '"')
			keys.arena = appendLower(keys.arena, x)
			keys.arena = append(keys.arena, '"')
			keys.end()
		}
	}
	sc.singles = growInts(sc.singles, keys.n)
	singles := sc.singles
	if err := v.numHitsManyCtx(ctx, keys, singles, sc); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return out, errs
	}

	for i := range xs {
		s := flat[i*np : (i+1)*np : (i+1)*np]
		for j := range phrases {
			at := i*np + j
			joint := joints[at]
			if joint == 0 {
				continue
			}
			hv, hx := singles[hvAt[at]], singles[hxAt[at]]
			if hv == 0 || hx == 0 {
				continue
			}
			s[j] = float64(joint) / (float64(hv) * float64(hx))
		}
		out[i] = s
	}
	return out, errs
}

// scoresBatchScratch pools the working set of one batched burst: the
// key arena, the stage-2 position maps, the two hit-count result
// slices, and numHitsManyCtx's miss-tracking slices. Steady-state
// bursts allocate only the returned score vectors.
type scoresBatchScratch struct {
	keys        batchKeyArena
	hvAt, hxAt  []int
	joints      []int
	singles     []int
	waits, mine []hitsRef
	mineQueries []string
}

var scoresBatchPool = sync.Pool{New: func() any { return new(scoresBatchScratch) }}

// growInts returns s resized to length n, reusing its capacity.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// scoresBatchChunkedCtx scores xs into per-index slots of scores/errs,
// splitting the list into contiguous chunks — one batched engine pass
// per chunk — spread over the validator's worker pool. Chunks only
// partition the work: the memo's singleflight keeps every distinct
// query issued exactly once regardless of which chunk needs it first,
// so results and engine accounting match the unchunked batch and the
// scalar loop alike. Slots of indices never scored (cancellation) stay
// nil, as with parallelForCtx.
func (v *Validator) scoresBatchChunkedCtx(ctx context.Context, phrases []string, xs []string, scores [][]float64, errs []error) {
	workers := clampWorkers(v.cfg.Parallelism)
	if workers < 1 {
		workers = 1
	}
	nchunks := workers
	if nchunks > len(xs) {
		nchunks = len(xs)
	}
	if nchunks <= 1 {
		s, e := v.ScoresBatchCtx(ctx, phrases, xs)
		copy(scores, s)
		copy(errs, e)
		return
	}
	parallelForCtx(ctx, nchunks, workers, func(c int) {
		lo, hi := c*len(xs)/nchunks, (c+1)*len(xs)/nchunks
		s, e := v.ScoresBatchCtx(ctx, phrases, xs[lo:hi])
		copy(scores[lo:hi], s)
		copy(errs[lo:hi], e)
	})
}

// batchKeyArena builds many query keys back to back in one growable
// buffer. Offsets survive arena growth, so keys are sliced out only
// after building finishes.
type batchKeyArena struct {
	arena []byte
	offs  []int
	n     int
}

func (b *batchKeyArena) begin() {
	if len(b.offs) == 0 {
		b.offs = append(b.offs, 0)
	}
}
func (b *batchKeyArena) end() {
	b.offs = append(b.offs, len(b.arena))
	b.n++
}
func (b *batchKeyArena) reset() { b.arena, b.offs, b.n = b.arena[:0], b.offs[:0], 0 }
func (b *batchKeyArena) key(i int) []byte {
	return b.arena[b.offs[i]:b.offs[i+1]]
}

// hitsRef ties one batch key position to the in-flight call resolving
// it.
type hitsRef struct {
	idx int // position in out
	c   *hitsCall
}

// numHitsManyCtx resolves many memo keys at once into out[:keys.n].
// Keys already cached are served from the memo; keys in flight from
// other goroutines are waited on (after our own work, so overlapping
// batches cannot deadlock); the rest are registered as in-flight by
// this call and executed — through the engine's batched entry point
// when it has one — then committed and released. Duplicate keys within
// the call resolve to one engine query, exactly as the scalar memo
// would.
func (v *Validator) numHitsManyCtx(ctx context.Context, keys *batchKeyArena, out []int, sc *scoresBatchScratch) error {
	if keys.n == 0 {
		return nil
	}
	waits := sc.waits[:0]
	mine := sc.mine[:0]
	mineQueries := sc.mineQueries[:0]

	v.mu.Lock()
	for i := 0; i < keys.n; i++ {
		k := keys.key(i)
		if n, ok := v.cache[string(k)]; ok {
			out[i] = n
			continue
		}
		if c, ok := v.inflight[string(k)]; ok {
			// Foreign call — or an earlier duplicate within this very
			// batch; either way the result arrives on c.done.
			waits = append(waits, hitsRef{idx: i, c: c})
			continue
		}
		query := string(k)
		c := &hitsCall{done: make(chan struct{})}
		v.inflight[query] = c
		mine = append(mine, hitsRef{idx: i, c: c})
		mineQueries = append(mineQueries, query)
	}
	v.mu.Unlock()
	sc.waits, sc.mine, sc.mineQueries = waits, mine, mineQueries

	// Execute our misses — one engine pass when the engine batches.
	if len(mine) > 0 {
		var counts []int
		if be, ok := v.engine.(BatchSearchEngine); ok {
			counts = be.NumHitsBatch(mineQueries)
		} else {
			counts = make([]int, len(mineQueries))
			for i, q := range mineQueries {
				counts[i] = v.engine.NumHits(q)
			}
		}
		v.mu.Lock()
		for i, m := range mine {
			m.c.n = counts[i]
			v.cache[mineQueries[i]] = counts[i]
			delete(v.inflight, mineQueries[i])
			out[m.idx] = counts[i]
		}
		v.mu.Unlock()
		for _, m := range mine {
			close(m.c.done)
		}
	}

	for _, w := range waits {
		select {
		case <-w.c.done:
			if w.c.err != nil {
				return w.c.err
			}
			out[w.idx] = w.c.n
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
