package webiq

import (
	"strings"
	"sync"

	"webiq/internal/nlp"
)

// tagBufPool recycles the tagged-token buffers of snippet extraction:
// the extracted candidate strings reference the snippet text, never
// the buffer, so it can be reused across snippets.
var tagBufPool = sync.Pool{New: func() any {
	b := make([]nlp.TaggedToken, 0, 64)
	return &b
}}

// PatternKind distinguishes set patterns (which extract instance lists)
// from singleton patterns (one instance at a time), per Figure 4.
type PatternKind int

const (
	// SetPattern extracts a list of noun phrases.
	SetPattern PatternKind = iota
	// SingletonPattern extracts a single noun phrase.
	SingletonPattern
)

// Direction says whether the completion follows or precedes the cue
// phrase in text.
type Direction int

const (
	// After: "Ls such as NP1, ..., NPn".
	After Direction = iota
	// Before: "NP1, ..., NPn, and other Ls".
	Before
)

// ExtractionQuery is a materialized extraction query: the cue phrase
// (used both as the quoted search phrase and as the anchor of the
// extraction rule) plus metadata for the extraction rule.
type ExtractionQuery struct {
	// Pattern names the generating pattern (s1..s4, g1..g4).
	Pattern string
	Kind    PatternKind
	Dir     Direction
	// Cue is the cue phrase, already lower-cased.
	Cue string
	// CueWords is Cue pre-tokenized; ExtractFromSnippet falls back to
	// tokenizing Cue when it is nil (hand-built queries).
	CueWords []string
	// Query is the full search-engine query, cue phrase quoted and
	// domain keywords appended.
	Query string
}

// FormulateQueries materializes the extraction patterns of Figure 4 for
// a noun phrase obtained from the attribute label, narrowing with the
// domain information per Section 2.1: the entity name of the domain, the
// domain keyword, and up to MaxSiblingKeywords labels of other
// attributes on the schema.
func FormulateQueries(np nlp.NounPhrase, entity, domainKeyword string, siblingLabels []string, cfg Config) []ExtractionQuery {
	plural := np.Plural()
	singular := np.Text()
	if singular == "" {
		return nil
	}

	type protoPattern struct {
		name string
		kind PatternKind
		dir  Direction
		cue  string
	}
	protos := []protoPattern{
		{"s1", SetPattern, After, plural + " such as"},
		{"s2", SetPattern, After, "such " + plural + " as"},
		{"s3", SetPattern, After, plural + " including"},
		{"s4", SetPattern, Before, "and other " + plural},
		{"g1", SingletonPattern, After, "the " + singular + " of the " + entity + " is"},
		{"g2", SingletonPattern, After, "the " + singular + " is"},
		{"g3", SingletonPattern, Before, "is the " + singular + " of the " + entity},
		{"g4", SingletonPattern, Before, "is the " + singular},
	}

	suffix := querySuffix(domainKeyword, siblingLabels, cfg)
	out := make([]ExtractionQuery, 0, len(protos))
	for _, p := range protos {
		out = append(out, ExtractionQuery{
			Pattern:  p.name,
			Kind:     p.kind,
			Dir:      p.dir,
			Cue:      p.cue,
			CueWords: nlp.Words(p.cue),
			Query:    `"` + p.cue + `"` + suffix,
		})
	}
	return out
}

// querySuffix renders the domain-information keywords in the Google
// syntax of the paper's example: `"authors such as" +book +title +isbn`.
func querySuffix(domainKeyword string, siblingLabels []string, cfg Config) string {
	if !cfg.UseDomainKeywords {
		return ""
	}
	var b strings.Builder
	for _, w := range nlp.ContentWords(domainKeyword) {
		b.WriteString(" +" + w)
	}
	added := 0
	for _, l := range siblingLabels {
		if added >= cfg.MaxSiblingKeywords {
			break
		}
		words := nlp.ContentWords(l)
		if len(words) == 0 {
			continue
		}
		// Use the label's head word only; full multiword labels
		// over-constrain the query.
		b.WriteString(" +" + words[len(words)-1])
		added++
	}
	return b.String()
}

// ExtractFromSnippet applies the extraction rule of a query to one
// result snippet: locate the cue phrase, then extract the completion —
// the NP list after the cue for After-direction patterns, or the NP list
// between the preceding sentence boundary and the cue for
// Before-direction patterns. Singleton patterns keep only the first NP.
func ExtractFromSnippet(q ExtractionQuery, snippet string) []string {
	cueWords := q.CueWords
	if cueWords == nil {
		cueWords = nlp.Words(q.Cue)
	}
	if len(cueWords) == 0 {
		return nil
	}
	var tg nlp.Tagger
	bp := tagBufPool.Get().(*[]nlp.TaggedToken)
	tagged := tg.TagAppend((*bp)[:0], snippet)
	defer func() {
		*bp = tagged
		tagBufPool.Put(bp)
	}()
	start, end, ok := findCue(tagged, cueWords)
	if !ok {
		return nil
	}

	var nps []string
	switch q.Dir {
	case After:
		nps = nlp.ExtractNPList(tagged, end)
	case Before:
		// Walk back to the sentence boundary, then read the list forward
		// up to the cue.
		from := start
		for from > 0 {
			t := tagged[from-1]
			if t.Kind == nlp.Punct && (t.Norm == "." || t.Norm == "!" || t.Norm == "?") {
				break
			}
			from--
		}
		all := nlp.ExtractNPList(tagged[:start], from)
		nps = all
	}
	if q.Kind == SingletonPattern && len(nps) > 1 {
		if q.Dir == After {
			nps = nps[:1]
		} else {
			nps = nps[len(nps)-1:]
		}
	}
	return cleanCandidates(nps)
}

// findCue locates the first occurrence of the cue word sequence among
// the word tokens of the tagged snippet, returning the tagged-token
// index range [start, end).
func findCue(tagged []nlp.TaggedToken, cue []string) (int, int, bool) {
outer:
	for i := 0; i < len(tagged); i++ {
		if tagged[i].Kind == nlp.Punct || tagged[i].Norm != cue[0] {
			continue
		}
		ti := i
		for _, w := range cue {
			// Skip punctuation between cue words.
			for ti < len(tagged) && tagged[ti].Kind == nlp.Punct {
				ti++
			}
			if ti >= len(tagged) || tagged[ti].Norm != w {
				continue outer
			}
			ti++
		}
		return i, ti, true
	}
	return 0, 0, false
}

// cleanCandidates normalizes extracted candidates: trims, collapses
// whitespace, and drops empties and pure stopwords.
func cleanCandidates(raw []string) []string {
	var out []string
	var sc nlp.TokenScanner
	for _, c := range raw {
		c = normalizeSpace(c)
		if c == "" {
			continue
		}
		// All-stopword check over the scanned word norms; stops at the
		// first non-stopword without materializing the word list.
		allStop := true
		for sc.Reset(c); sc.Scan(); {
			t := sc.Token()
			if t.Kind == nlp.Punct {
				continue
			}
			if !nlp.IsStopword(t.Norm) {
				allStop = false
				break
			}
		}
		if allStop {
			continue
		}
		out = append(out, c)
	}
	return out
}

// normalizeSpace returns strings.Join(strings.Fields(s), " ") without
// allocating when s is already normalized: no leading, trailing, or
// doubled spaces and no whitespace byte other than ' '. Any non-ASCII
// byte falls back to the allocating path, since multi-byte encodings
// can hide Unicode whitespace.
func normalizeSpace(s string) string {
	if s == "" {
		return ""
	}
	if s[0] == ' ' || s[len(s)-1] == ' ' {
		return strings.Join(strings.Fields(s), " ")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' {
			return strings.Join(strings.Fields(s), " ")
		}
		// i+1 is in range: the last byte is known not to be a space.
		if c == ' ' && s[i+1] == ' ' {
			return strings.Join(strings.Fields(s), " ")
		}
	}
	return s
}
