package webiq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests of the validation-based naive Bayes classifier.

// TestClassifierPosteriorBounds: for any trained classifier and any
// score vector, the posterior is a probability.
func TestClassifierPosteriorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nPhrases := 1 + rng.Intn(4)
		phrases := make([]string, nPhrases)
		for i := range phrases {
			phrases[i] = "p"
		}
		mkScores := func(n int) [][]float64 {
			out := make([][]float64, n)
			for i := range out {
				out[i] = make([]float64, nPhrases)
				for j := range out[i] {
					out[i][j] = rng.Float64()
				}
			}
			return out
		}
		c := trainFromScores(phrases, mkScores(2+rng.Intn(4)), mkScores(2+rng.Intn(4)))
		probe := make([]float64, nPhrases)
		for j := range probe {
			probe[j] = rng.Float64() * 2
		}
		p := c.ProbPositive(probe)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("posterior %v out of [0,1]", p)
		}
	}
}

// TestClassifierSeparableData: with perfectly separable training scores,
// the classifier must classify held-out points on the right side.
func TestClassifierSeparableData(t *testing.T) {
	phrases := []string{"a", "b"}
	pos := [][]float64{{.9, .8}, {.85, .9}, {.95, .85}, {.8, .95}}
	neg := [][]float64{{.1, .05}, {.05, .1}, {.12, .08}, {.02, .03}}
	c := trainFromScores(phrases, pos, neg)
	if p := c.ProbPositive([]float64{.9, .9}); p <= 0.5 {
		t.Errorf("clear positive scored %v", p)
	}
	if p := c.ProbPositive([]float64{.01, .01}); p >= 0.5 {
		t.Errorf("clear negative scored %v", p)
	}
}

// TestClassifierThresholdWithinRange: learned thresholds lie within the
// observed score range of T1.
func TestClassifierThresholdWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phrases := []string{"x"}
		mk := func(n int, lo float64) [][]float64 {
			out := make([][]float64, n)
			for i := range out {
				out[i] = []float64{lo + rng.Float64()}
			}
			return out
		}
		pos := mk(3, 0.5)
		neg := mk(3, 0)
		c := trainFromScores(phrases, pos, neg)
		th := c.Thresholds[0]
		lo, hi := math.Inf(1), math.Inf(-1)
		// T1 = first 2 positives + first 2 negatives.
		for _, s := range [][]float64{pos[0], pos[1], neg[0], neg[1]} {
			if s[0] < lo {
				lo = s[0]
			}
			if s[0] > hi {
				hi = s[0]
			}
		}
		return th >= lo-1e-9 && th <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClassifierSmoothingNeverZero: Laplacean smoothing keeps every
// class-conditional probability strictly inside (0,1).
func TestClassifierSmoothingNeverZero(t *testing.T) {
	phrases := []string{"a", "b", "c"}
	pos := [][]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}, {1, 1, 1}}
	neg := [][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	c := trainFromScores(phrases, pos, neg)
	for i := range phrases {
		for f := 0; f < 2; f++ {
			for cls := 0; cls < 2; cls++ {
				p := c.PF[i][f][cls]
				if p <= 0 || p >= 1 {
					t.Fatalf("PF[%d][%d][%d] = %v not in (0,1)", i, f, cls, p)
				}
			}
		}
	}
	if c.PPos <= 0 || c.PNeg <= 0 {
		t.Error("smoothed priors must be positive")
	}
}
