package webiq

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"webiq/internal/obs"
	"webiq/internal/resilience"
	"webiq/internal/stats"
)

// This file implements Section 3: the validation-based naive Bayes
// classifier that decides whether an instance borrowed from another
// attribute belongs to attribute A. Features are thresholded validation
// (PMI) scores; training is fully automatic — positives are A's own
// instances, negatives are instances of A's interface siblings.

// Classifier is a trained validation-based naive Bayes classifier for
// one attribute.
type Classifier struct {
	// Phrases are the validation phrases; feature i is the thresholded
	// score on phrase i.
	Phrases []string
	// Thresholds are the per-feature thresholds t_i estimated by
	// information gain over T1.
	Thresholds []float64
	// Priors and class-conditional probabilities estimated from T2 with
	// Laplacean smoothing.
	PPos, PNeg float64
	// PF[i][f][c]: probability of feature i having value f (0/1) given
	// class c (0 = negative, 1 = positive).
	PF [][2][2]float64
}

// errTooFewExamples is returned when there are not enough training
// examples to split into T1 and T2.
var errTooFewExamples = errors.New("webiq: too few training examples for classifier")

// TrainClassifier builds the classifier for an attribute with the given
// label, using its existing instances as positive examples and the
// non-instances (values of sibling attributes) as negatives. It follows
// the three steps of Section 3.2: training-set preparation (validation
// scores via the Surface Web), threshold estimation on T1 by information
// gain, and probability estimation on T2 with Laplacean smoothing.
func TrainClassifier(v *Validator, label string, positives, negatives []string) (*Classifier, error) {
	return trainClassifierCtx(context.Background(), v, label, positives, negatives)
}

// trainClassifierCtx is TrainClassifier with error propagation from a
// fallible validation backend: any training example whose validation
// vector is unavailable makes the whole classifier untrainable (a
// partially scored matrix would bias the thresholds), and the first
// such error is returned for the caller's degradation policy.
func trainClassifierCtx(ctx context.Context, v *Validator, label string, positives, negatives []string) (*Classifier, error) {
	phrases := v.Phrases(label)
	if len(phrases) == 0 {
		return nil, errors.New("webiq: no validation phrases for label " + label)
	}
	if len(positives) < 2 || len(negatives) < 2 {
		return nil, errTooFewExamples
	}
	// Score every training example's validation vector (the expensive,
	// query-issuing part) on a bounded worker pool; each example writes
	// its own slot, so the training matrix is identical to a sequential
	// build and the validator's singleflight memo keeps the query count
	// identical too.
	posScores := make([][]float64, len(positives))
	negScores := make([][]float64, len(negatives))
	var firstErr error
	if v.batchable() {
		// Batched scoring: the examples are scored in contiguous chunks,
		// each a single engine pass, spread over the worker pool.
		n := len(positives) + len(negatives)
		scores := make([][]float64, n)
		errs := make([]error, n)
		xs := make([]string, 0, n)
		xs = append(xs, positives...)
		xs = append(xs, negatives...)
		v.scoresBatchChunkedCtx(ctx, phrases, xs, scores, errs)
		copy(posScores, scores[:len(positives)])
		copy(negScores, scores[len(positives):])
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	} else {
		var errMu sync.Mutex
		parallelForCtx(ctx, len(positives)+len(negatives), v.cfg.Parallelism, func(i int) {
			var sc []float64
			var err error
			if i < len(positives) {
				sc, err = v.ScoresCtx(ctx, phrases, positives[i])
				posScores[i] = sc
			} else {
				sc, err = v.ScoresCtx(ctx, phrases, negatives[i-len(positives)])
				negScores[i-len(positives)] = sc
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		})
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return trainFromScores(phrases, posScores, negScores), nil
}

// trainFromScores runs threshold and probability estimation over
// already-computed validation vectors (the M columns of Figure 5.c).
func trainFromScores(phrases []string, posScores, negScores [][]float64) *Classifier {
	type example struct {
		scores []float64
		pos    bool
	}
	var all []example
	for _, s := range posScores {
		all = append(all, example{scores: s, pos: true})
	}
	for _, s := range negScores {
		all = append(all, example{scores: s, pos: false})
	}

	// Split each class in half: first halves form T1 (threshold
	// estimation), second halves form T2 (probability estimation),
	// mirroring Figure 5.d/5.e.
	var t1, t2 []example
	half := func(n int) int { return (n + 1) / 2 }
	np, nn := len(posScores), len(negScores)
	for i, ex := range all {
		var inT1 bool
		if i < np {
			inT1 = i < half(np)
		} else {
			inT1 = (i - np) < half(nn)
		}
		if inT1 {
			t1 = append(t1, ex)
		} else {
			t2 = append(t2, ex)
		}
	}

	c := &Classifier{Phrases: phrases}
	// Step 2: estimate thresholds by information gain over T1.
	c.Thresholds = make([]float64, len(phrases))
	for i := range phrases {
		var vals []float64
		var labels []bool
		for _, ex := range t1 {
			vals = append(vals, ex.scores[i])
			labels = append(labels, ex.pos)
		}
		c.Thresholds[i] = bestThreshold(vals, labels)
	}

	// Step 3: estimate probabilities from T2 with Laplacean smoothing.
	c.PF = make([][2][2]float64, len(phrases))
	var cnt [2]int // examples per class in T2
	fcnt := make([][2][2]int, len(phrases))
	for _, ex := range t2 {
		cls := 0
		if ex.pos {
			cls = 1
		}
		cnt[cls]++
		for i := range phrases {
			f := 0
			if ex.scores[i] > c.Thresholds[i] {
				f = 1
			}
			fcnt[i][f][cls]++
		}
	}
	total := cnt[0] + cnt[1]
	c.PPos = float64(cnt[1]+1) / float64(total+2)
	c.PNeg = float64(cnt[0]+1) / float64(total+2)
	for i := range phrases {
		for f := 0; f < 2; f++ {
			for cls := 0; cls < 2; cls++ {
				c.PF[i][f][cls] = float64(fcnt[i][f][cls]+1) / float64(cnt[cls]+2)
			}
		}
	}
	return c
}

// bestThreshold chooses the threshold maximizing information gain: the
// split of the values that most reduces class entropy (Section 3.2,
// step 2). Candidate thresholds are midpoints between adjacent sorted
// values.
func bestThreshold(values []float64, positive []bool) float64 {
	th, _ := stats.InfoGainSplit(values, positive)
	return th
}

// Features converts a validation-score vector into the binary feature
// vector using the learned thresholds.
func (c *Classifier) Features(scores []float64) []int {
	out := make([]int, len(scores))
	for i, s := range scores {
		if s > c.Thresholds[i] {
			out[i] = 1
		}
	}
	return out
}

// ProbPositive evaluates Formula 1: the posterior probability that an
// object with the given validation scores is an instance of the
// attribute.
func (c *Classifier) ProbPositive(scores []float64) float64 {
	f := c.Features(scores)
	pPos, pNeg := c.PPos, c.PNeg
	for i, fi := range f {
		pPos *= c.PF[i][fi][1]
		pNeg *= c.PF[i][fi][0]
	}
	if pPos+pNeg == 0 {
		return 0.5
	}
	return pPos / (pPos + pNeg)
}

// AttrSurface borrows instances for an attribute and validates them via
// the Surface Web using the validation-based classifier.
type AttrSurface struct {
	validator *Validator
	cfg       Config
	ledger    *obs.Ledger

	// Optional classifier-decision metrics; nil-safe no-ops when
	// Instrument was not called.
	mDecisions *obs.CounterVec // decision: accept, reject, skip
}

// NewAttrSurface returns the Attr-Surface component.
func NewAttrSurface(validator *Validator, cfg Config) *AttrSurface {
	return &AttrSurface{validator: validator, cfg: cfg}
}

// Instrument registers the classifier decision counter on r:
//
//	webiq_classifier_decisions_total{decision}
//
// decision is "accept" or "reject" per borrowed value classified, and
// "skip" per borrowed value dropped because training was impossible.
func (as *AttrSurface) Instrument(r *obs.Registry) {
	as.mDecisions = r.CounterVec("webiq_classifier_decisions_total", "Validation-based classifier decisions on borrowed values.", "decision")
}

// ValidateBorrowed trains a classifier for the attribute with the given
// label (positives = its instances, negatives = sibling values), then
// returns the subset of borrowed values classified as instances. It
// returns nil (and no error) when training is impossible.
func (as *AttrSurface) ValidateBorrowed(label string, positives, negatives, borrowed []string) []string {
	out, _ := as.ValidateBorrowedChecked(label, positives, negatives, borrowed)
	return out
}

// SetLedger installs the decision-provenance ledger; nil disables
// recording.
func (as *AttrSurface) SetLedger(l *obs.Ledger) { as.ledger = l }

// ValidateBorrowedChecked is ValidateBorrowed plus a report of whether
// the classifier could be trained at all: trained is false when there
// were too few examples or no validation phrases, which callers surface
// as a "classifier-skip" event rather than a unanimous rejection.
func (as *AttrSurface) ValidateBorrowedChecked(label string, positives, negatives, borrowed []string) (accepted []string, trained bool) {
	return as.ValidateBorrowedCheckedCtx(context.Background(), "", label, positives, negatives, borrowed)
}

// ValidateBorrowedCheckedCtx is ValidateBorrowedChecked with the
// caller's trace context and attribute ID for the provenance ledger: it
// records a "trained" decision carrying the information-gain thresholds
// (or a "skip" when training was impossible) and one accept/reject per
// borrowed value with its posterior against the 0.5 cutoff.
func (as *AttrSurface) ValidateBorrowedCheckedCtx(ctx context.Context, attrID, label string, positives, negatives, borrowed []string) (accepted []string, trained bool) {
	clf, err := trainClassifierCtx(ctx, as.validator, label, positives, negatives)
	if err != nil {
		if r := resilience.Reason(err); r != "other" && r != "none" {
			// Backend failure, not a data property: the classifier skip
			// is a degradation, recorded as such.
			degrade(ctx, Degradation{
				Stage: "attr-surface", Reason: r,
				AttrID: attrID, Label: label,
				Detail: "classifier training degraded; borrowed values skipped",
			})
		}
		as.mDecisions.With("skip").Add(float64(len(borrowed)))
		if as.ledger != nil {
			as.ledger.RecordCtx(ctx, obs.Decision{
				Component: "attr-surface", Verdict: "skip",
				AttrID: attrID, Label: label, Count: len(borrowed),
				Detail: "classifier untrainable: " + err.Error(),
			})
		}
		return nil, false
	}
	if as.ledger != nil {
		as.ledger.RecordCtx(ctx, obs.Decision{
			Component: "attr-surface", Verdict: "trained",
			AttrID: attrID, Label: label,
			Count:  len(clf.Phrases),
			Detail: fmt.Sprintf("info-gain thresholds %.4g (priors +%.3f/-%.3f)", clf.Thresholds, clf.PPos, clf.PNeg),
		})
	}
	phrases := clf.Phrases
	// Scoring each borrowed value is independent; run it on a bounded
	// worker pool and decide in index order, so accepted preserves the
	// borrowed order exactly as the sequential loop did.
	scores := make([][]float64, len(borrowed))
	errs := make([]error, len(borrowed))
	if as.validator.batchable() {
		as.validator.scoresBatchChunkedCtx(ctx, phrases, borrowed, scores, errs)
	} else {
		parallelForCtx(ctx, len(borrowed), as.cfg.Parallelism, func(i int) {
			scores[i], errs[i] = as.validator.ScoresCtx(ctx, phrases, borrowed[i])
		})
	}
	for i, b := range borrowed {
		if errs[i] != nil || scores[i] == nil {
			// The value could not be scored (backend failure, or the
			// run was canceled before its slot ran): skip just this
			// value rather than rejecting it with fabricated evidence.
			reason := "canceled"
			if errs[i] != nil {
				reason = resilience.Reason(errs[i])
			}
			degrade(ctx, Degradation{
				Stage: "attr-surface", Reason: reason,
				AttrID: attrID, Label: label,
				Detail: "borrowed value skipped: " + b,
			})
			as.mDecisions.With("skip").Inc()
			continue
		}
		p := clf.ProbPositive(scores[i])
		if p > 0.5 {
			accepted = append(accepted, b)
			as.mDecisions.With("accept").Inc()
		} else {
			as.mDecisions.With("reject").Inc()
		}
		if as.ledger != nil {
			verdict := "reject"
			if p > 0.5 {
				verdict = "accept"
			}
			as.ledger.RecordCtx(ctx, obs.Decision{
				Component: "attr-surface", Verdict: verdict,
				AttrID: attrID, Label: label, Value: b,
				Score: p, Threshold: 0.5,
				Detail: "validation-based naive Bayes posterior",
			})
		}
	}
	return accepted, true
}
