package webiq

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"webiq/internal/obs"
	"webiq/internal/resilience"
	"webiq/internal/schema"
	"webiq/internal/sim"
)

// Components selects which WebIQ components the Acquirer applies; the
// Figure-7 ablation toggles these.
type Components struct {
	Surface     bool
	AttrDeep    bool
	AttrSurface bool
}

// AllComponents enables the full system.
func AllComponents() Components {
	return Components{Surface: true, AttrDeep: true, AttrSurface: true}
}

// Acquirer implements the instance-acquisition policy of Section 5.
type Acquirer struct {
	surface     *Surface
	attrSurface *AttrSurface
	attrDeep    *AttrDeep
	enabled     Components
	cfg         Config

	// Optional accounting probes for the overhead analysis (Figure 8):
	// surfaceClock reads the search engine's accumulated virtual time
	// and query count; deepClock reads the source pool's.
	surfaceClock func() (time.Duration, int)
	deepClock    func() (time.Duration, int)

	// tracer receives acquisition events when set (see trace.go).
	tracer Tracer

	// Optional observability (see obs.go): metric handles are nil-safe
	// no-ops until SetObserver installs them; spans is nil until
	// SetSpanTracer installs a tracer.
	mAttrs       *obs.CounterVec // result: success, failed, predefined
	mInstances   *obs.CounterVec // component
	mBorrowed    *obs.CounterVec // component
	mCompVirtual *obs.CounterVec // component
	mCompQueries *obs.CounterVec // component
	mDegraded    *obs.CounterVec // stage, reason
	spans        *obs.Tracer

	// ledger backs the degradation sink's provenance records (SetLedger).
	ledger *obs.Ledger
}

// SetFallible installs error-aware backends on every enabled component:
// engine replaces the search engine for extraction and hit counting,
// source replaces the probe pool for deep validation. Terminal backend
// failures then degrade gracefully (see degrade.go) instead of being
// impossible. Passing nils restores the infallible pass-through, whose
// outputs are byte-identical to a build without this call.
func (a *Acquirer) SetFallible(engine resilience.FallibleEngine, source resilience.FallibleSource) {
	if a.surface != nil {
		a.surface.fallible = engine
		a.surface.validator.SetFallible(engine)
	}
	if a.attrSurface != nil {
		a.attrSurface.validator.SetFallible(engine)
	}
	if a.attrDeep != nil {
		a.attrDeep.fallible = source
	}
}

// SetAccounting installs clock probes used to attribute simulated query
// time to individual components in the acquisition report. Either probe
// may be nil.
func (a *Acquirer) SetAccounting(surfaceClock, deepClock func() (time.Duration, int)) {
	a.surfaceClock = surfaceClock
	a.deepClock = deepClock
}

// NewAcquirer wires the three components. Any component may be nil if
// its flag in enabled is false.
func NewAcquirer(surface *Surface, attrDeep *AttrDeep, attrSurface *AttrSurface, enabled Components, cfg Config) *Acquirer {
	return &Acquirer{
		surface:     surface,
		attrSurface: attrSurface,
		attrDeep:    attrDeep,
		enabled:     enabled,
		cfg:         cfg,
	}
}

// Method names the acquisition path that produced an attribute's
// instances.
type Method string

// Acquisition methods.
const (
	MethodNone        Method = "none"
	MethodSurface     Method = "surface"
	MethodAttrDeep    Method = "attr-deep"
	MethodAttrSurface Method = "attr-surface"
)

// Outcome records the acquisition result for one attribute.
type Outcome struct {
	AttrID       string
	Label        string
	HadInstances bool
	// Acquired is the number of instances added to the attribute.
	Acquired int
	// Methods lists the paths that contributed instances.
	Methods []Method
	// Success is true for an initially instance-less attribute that
	// ended with at least K instances.
	Success bool
}

// Report aggregates acquisition outcomes over a dataset, including the
// per-component simulated overhead for the Figure-8 analysis.
type Report struct {
	Outcomes []Outcome

	// SurfaceTime/SurfaceQueries: search-engine time and queries spent
	// gathering instances from the Web (the Surface component).
	SurfaceTime    time.Duration
	SurfaceQueries int
	// AttrSurfaceTime/AttrSurfaceQueries: search-engine time and queries
	// spent validating borrowed instances via the Surface Web.
	AttrSurfaceTime    time.Duration
	AttrSurfaceQueries int
	// AttrDeepTime/AttrDeepQueries: source probing time and probes spent
	// validating borrowed instances via the Deep Web.
	AttrDeepTime    time.Duration
	AttrDeepQueries int

	// Degradations lists every graceful-degradation event of the run:
	// backend failures the pipeline absorbed by skipping a query,
	// accepting without validation, or shrinking a probe sample. Empty
	// without fault injection.
	Degradations []Degradation
	// Interrupted is non-nil when the run stopped early because the
	// context was canceled; Outcomes then holds only the attributes
	// finished before the stop (partial results, with the error).
	Interrupted error
}

// SuccessRate returns the percentage of initially instance-less
// attributes for which acquisition succeeded (gathered >= K instances) —
// the quantity of Table 1's columns 6–7.
func (r *Report) SuccessRate() float64 {
	total, ok := 0, 0
	for _, o := range r.Outcomes {
		if o.HadInstances {
			continue
		}
		total++
		if o.Success {
			ok++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(ok) / float64(total)
}

// AcquireAll gathers instances for every attribute of the dataset,
// mutating the attributes' Acquired fields, and returns the report.
//
// With Config.Parallelism > 1 the Surface discovery phase runs
// concurrently up front; the result is identical to the sequential run
// because Surface discovery depends only on labels and dataset metadata,
// never on other attributes' acquired instances. Outcomes, acquired
// instances, and the run's total engine consumption are all identical;
// only the Report's split between Surface and Attr-Surface charges can
// shift, because a validation query needed by both phases is charged to
// whichever issues it first (the validator memoizes it), and the
// up-front phase runs all discovery before any Attr-Surface validation.
func (a *Acquirer) AcquireAll(ds *schema.Dataset) *Report {
	return a.AcquireAllCtx(context.Background(), ds)
}

// AcquireAllCtx is AcquireAll with the caller's trace context: the
// "acquire-all" span joins the trace carried by ctx (a server request,
// typically) as a child, component spans nest under it, and every
// ledger decision recorded during the run carries the trace identity.
func (a *Acquirer) AcquireAllCtx(ctx context.Context, ds *schema.Dataset) *Report {
	ctx, all := a.spans.StartSpan(ctx, "acquire-all")
	all.Label("domain", ds.Domain)
	ctx, sink := a.newDegradeCtx(ctx)
	rep := &Report{}
	var pre map[string][]string
	if a.cfg.Parallelism > 1 && a.enabled.Surface && a.surface != nil {
		pre = a.parallelSurface(ctx, ds, rep)
	}
loop:
	for _, ifc := range ds.Interfaces {
		for _, attr := range ifc.Attributes {
			if err := ctx.Err(); err != nil {
				rep.Interrupted = err
				break loop
			}
			out := a.acquireOne(ctx, rep, ds, ifc, attr, pre)
			rep.Outcomes = append(rep.Outcomes, out)
			switch {
			case out.HadInstances:
				a.mAttrs.With("predefined").Inc()
			case out.Success:
				a.mAttrs.With("success").Inc()
			default:
				a.mAttrs.With("failed").Inc()
			}
		}
	}
	if rep.Interrupted == nil {
		rep.Interrupted = ctx.Err()
	}
	rep.Degradations = sink.take()
	all.AddVirtual(rep.SurfaceTime + rep.AttrSurfaceTime + rep.AttrDeepTime)
	all.AddQueries(rep.SurfaceQueries + rep.AttrSurfaceQueries + rep.AttrDeepQueries)
	all.End()
	return rep
}

// parallelSurface runs Surface discovery for every instance-less
// attribute with a bounded worker pool and returns the per-attribute
// results. The whole phase's engine time and query count are charged to
// the Surface component.
func (a *Acquirer) parallelSurface(ctx context.Context, ds *schema.Dataset, rep *Report) map[string][]string {
	type job struct {
		attr *schema.Attribute
		ifc  *schema.Interface
	}
	var jobs []job
	for _, ifc := range ds.Interfaces {
		for _, attr := range ifc.Attributes {
			if !attr.HasInstances() {
				jobs = append(jobs, job{attr, ifc})
			}
		}
	}
	spCtx, sp := a.spans.StartSpan(ctx, "surface")
	sp.Label("phase", "parallel")
	t0, q0 := readClock(a.surfaceClock)
	results := make([][]string, len(jobs))
	sem := make(chan struct{}, a.cfg.Parallelism)
	var wg sync.WaitGroup
	for i, j := range jobs {
		// On cancellation, stop dispatching; in-flight workers finish
		// (they observe the context themselves) and undispatched
		// attributes surface as Interrupted partial results.
		if spCtx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, j job) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = a.surface.DiscoverInstancesCtx(spCtx, j.attr, j.ifc, ds)
		}(i, j)
	}
	wg.Wait()
	t1, q1 := readClock(a.surfaceClock)
	rep.SurfaceTime += t1 - t0
	rep.SurfaceQueries += q1 - q0
	a.endComponent(sp, "surface", t1-t0, q1-q0)
	pre := make(map[string][]string, len(jobs))
	for i, j := range jobs {
		pre[j.attr.ID] = results[i]
	}
	return pre
}

// readClock samples an accounting probe, tolerating a nil probe.
func readClock(probe func() (time.Duration, int)) (time.Duration, int) {
	if probe == nil {
		return 0, 0
	}
	return probe()
}

// acquireOne applies the Section-5 policy to a single attribute. When
// pre is non-nil it holds precomputed Surface discovery results (from
// the parallel phase) keyed by attribute ID.
func (a *Acquirer) acquireOne(ctx context.Context, rep *Report, ds *schema.Dataset, ifc *schema.Interface, attr *schema.Attribute, pre map[string][]string) Outcome {
	out := Outcome{AttrID: attr.ID, Label: attr.Label, HadInstances: attr.HasInstances()}

	if !attr.HasInstances() {
		// Step 1.a: gather instances via the Surface Web.
		if a.enabled.Surface && a.surface != nil {
			var got []string
			if pre != nil {
				got = pre[attr.ID]
			} else {
				spCtx, sp := a.componentSpanCtx(ctx, "surface", attr.ID, attr.Label)
				t0, q0 := readClock(a.surfaceClock)
				got = a.surface.DiscoverInstancesCtx(spCtx, attr, ifc, ds)
				t1, q1 := readClock(a.surfaceClock)
				rep.SurfaceTime += t1 - t0
				rep.SurfaceQueries += q1 - q0
				a.endComponent(sp, "surface", t1-t0, q1-q0)
			}
			added := addAcquired(attr, got, a.cfg.MaxAcquired)
			if len(got) > 0 {
				out.Methods = append(out.Methods, MethodSurface)
				a.mInstances.With("surface").Add(float64(added))
				a.trace(Event{Kind: "surface", AttrID: attr.ID, Label: attr.Label, Count: len(got)})
			} else {
				a.trace(Event{Kind: "syntax-skip", AttrID: attr.ID, Label: attr.Label,
					Detail: "no instances from the Surface Web"})
			}
		}
		// Step 1.b: if unsuccessful, borrow and validate via the Deep
		// Web. (Surface validation would be unlikely to succeed given
		// 1.a failed, so it is not attempted — per the paper.)
		if len(attr.Acquired) < a.cfg.K && a.enabled.AttrDeep && a.attrDeep != nil {
			spCtx, sp := a.componentSpanCtx(ctx, "attr-deep", attr.ID, attr.Label)
			t0, q0 := readClock(a.deepClock)
			donors := a.borrowDonorsFreeText(ds, ifc, attr)
			a.trace(Event{Kind: "borrow-deep", AttrID: attr.ID, Label: attr.Label,
				Detail: fmt.Sprintf("%d candidate donors", len(donors)), Count: len(donors)})
			for _, donor := range donors {
				borrowed := donor.AllInstances()
				a.mBorrowed.With("attr-deep").Add(float64(len(borrowed)))
				vals, ok := a.attrDeep.ValidateBorrowedCtx(spCtx, ifc.ID, attr.ID, attr.Label, donor.Label, borrowed)
				a.trace(Event{Kind: "borrow-deep-donor", AttrID: attr.ID, Label: attr.Label,
					Detail: fmt.Sprintf("donor %q accepted=%v", donor.Label, ok), Count: len(vals)})
				if !ok {
					continue
				}
				added := addAcquired(attr, vals, a.cfg.MaxAcquired)
				a.mInstances.With("attr-deep").Add(float64(added))
				if added > 0 && !hasMethod(out.Methods, MethodAttrDeep) {
					out.Methods = append(out.Methods, MethodAttrDeep)
				}
				// Stop once the acquisition target is met — further
				// donors only cost probes.
				if len(attr.Acquired) >= a.cfg.K {
					break
				}
			}
			t1, q1 := readClock(a.deepClock)
			rep.AttrDeepTime += t1 - t0
			rep.AttrDeepQueries += q1 - q0
			a.endComponent(sp, "attr-deep", t1-t0, q1-q0)
		}
		out.Acquired = len(attr.Acquired)
		out.Success = len(attr.Acquired) >= a.cfg.K
		if len(out.Methods) == 0 {
			out.Methods = []Method{MethodNone}
		}
		return out
	}

	// Extension (off in the paper's scheme): gather additional instances
	// from the Surface Web even for predefined-value attributes.
	if a.cfg.SurfaceForPredef && a.enabled.Surface && a.surface != nil {
		spCtx, sp := a.componentSpanCtx(ctx, "surface", attr.ID, attr.Label)
		t0, q0 := readClock(a.surfaceClock)
		got := a.surface.DiscoverInstancesCtx(spCtx, attr, ifc, ds)
		t1, q1 := readClock(a.surfaceClock)
		rep.SurfaceTime += t1 - t0
		rep.SurfaceQueries += q1 - q0
		a.endComponent(sp, "surface", t1-t0, q1-q0)
		if added := addAcquired(attr, got, a.cfg.MaxAcquired); added > 0 {
			out.Methods = append(out.Methods, MethodSurface)
			a.mInstances.With("surface").Add(float64(added))
		}
	}

	// Step 2: the attribute has predefined instances. Borrow from
	// value-compatible attributes and validate via the Surface Web —
	// the source would reject values outside the predefined list, so
	// Attr-Deep is not applicable.
	if a.enabled.AttrSurface && a.attrSurface != nil {
		borrowed := a.borrowValuesPredef(ds, ifc, attr)
		if len(borrowed) > 0 {
			a.mBorrowed.With("attr-surface").Add(float64(len(borrowed)))
			spCtx, sp := a.componentSpanCtx(ctx, "attr-surface", attr.ID, attr.Label)
			t0, q0 := readClock(a.surfaceClock)
			negatives := nonInstances(ifc, attr, 8)
			positives := capSlice(attr.Instances, 8)
			accepted, trained := a.attrSurface.ValidateBorrowedCheckedCtx(spCtx, attr.ID, attr.Label, positives, negatives, borrowed)
			t1, q1 := readClock(a.surfaceClock)
			rep.AttrSurfaceTime += t1 - t0
			rep.AttrSurfaceQueries += q1 - q0
			a.endComponent(sp, "attr-surface", t1-t0, q1-q0)
			added := addAcquired(attr, accepted, a.cfg.MaxAcquired)
			a.mInstances.With("attr-surface").Add(float64(added))
			if added > 0 {
				out.Methods = append(out.Methods, MethodAttrSurface)
			}
			if !trained {
				a.trace(Event{Kind: "classifier-skip", AttrID: attr.ID, Label: attr.Label,
					Detail: "validation-based classifier could not be trained", Count: len(borrowed)})
			} else {
				a.trace(Event{Kind: "borrow-surface", AttrID: attr.ID, Label: attr.Label,
					Detail: fmt.Sprintf("borrowed %d, accepted %d", len(borrowed), len(accepted)),
					Count:  added})
			}
		}
	}
	out.Acquired = len(attr.Acquired)
	if len(out.Methods) == 0 {
		out.Methods = []Method{MethodNone}
	}
	return out
}

// borrowDonorsFreeText selects donor attributes for Step 1.b: attributes
// on other interfaces that carry instances, whose labels are similar to
// X1's, and whose domains differ from every predefined-value attribute Y
// on X1's interface (if Y had a similar domain, X1 would likely have
// been predefined too). Donors are ordered by label similarity.
func (a *Acquirer) borrowDonorsFreeText(ds *schema.Dataset, ifc *schema.Interface, attr *schema.Attribute) []*schema.Attribute {
	type scored struct {
		attr *schema.Attribute
		sim  float64
	}
	var donors []scored
	for _, other := range ds.Interfaces {
		if other.ID == ifc.ID {
			continue
		}
		for _, cand := range other.Attributes {
			if len(cand.AllInstances()) == 0 {
				continue
			}
			ls := sim.LabelSim(attr.Label, cand.Label)
			if ls < a.cfg.BorrowLabelSim {
				continue
			}
			if a.domainMatchesSibling(ifc, attr, cand) {
				continue
			}
			donors = append(donors, scored{cand, ls})
		}
	}
	sort.Slice(donors, func(i, j int) bool {
		if donors[i].sim != donors[j].sim {
			return donors[i].sim > donors[j].sim
		}
		return donors[i].attr.ID < donors[j].attr.ID
	})
	out := make([]*schema.Attribute, len(donors))
	for i, d := range donors {
		out[i] = d.attr
	}
	return out
}

// domainMatchesSibling reports whether the candidate donor's domain
// overlaps the domain of some predefined-value sibling of attr — the
// exclusion condition of Section 5, case 1.
func (a *Acquirer) domainMatchesSibling(ifc *schema.Interface, attr *schema.Attribute, cand *schema.Attribute) bool {
	for _, y := range ifc.Attributes {
		if y.ID == attr.ID || !y.HasInstances() {
			continue
		}
		if sim.ValueOverlap(cand.AllInstances(), y.Instances) >= 0.3 {
			return true
		}
	}
	return false
}

// borrowValuesPredef collects values to borrow for a predefined-value
// attribute (Step 2): from attributes on other interfaces sharing at
// least BorrowValueMatches very similar values, take the values X1 does
// not already list.
func (a *Acquirer) borrowValuesPredef(ds *schema.Dataset, ifc *schema.Interface, attr *schema.Attribute) []string {
	out := a.collectBorrowValues(ds, ifc, attr, true)
	if len(out) == 0 {
		// No value-compatible donor exists (the Figure-1 situation:
		// Airline's NA list shares nothing with Carrier's EU list). Fall
		// back to borrowing from every attribute and let the
		// validation-based classifier decide membership — Section 3's
		// example borrows Aer Lingus from Carrier for Airline exactly
		// this way.
		out = a.collectBorrowValues(ds, ifc, attr, false)
	}
	if len(out) > a.cfg.MaxAcquired {
		out = out[:a.cfg.MaxAcquired]
	}
	return out
}

// collectBorrowValues gathers candidate values from other interfaces'
// attributes, optionally restricted to donors sharing at least
// BorrowValueMatches very similar values with attr.
func (a *Acquirer) collectBorrowValues(ds *schema.Dataset, ifc *schema.Interface, attr *schema.Attribute, requireSimilar bool) []string {
	buf := foldBuf()
	fv := *buf
	have := map[string]bool{}
	for _, v := range attr.Instances {
		have[foldValue(v)] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, other := range ds.Interfaces {
		if other.ID == ifc.ID {
			continue
		}
		for _, cand := range other.Attributes {
			vals := cand.AllInstances()
			if len(vals) == 0 {
				continue
			}
			if requireSimilar && !domainsVerySimilar(attr.Instances, vals, a.cfg.BorrowValueMatches) {
				continue
			}
			for _, v := range vals {
				// Zero-copy map probes against the folded form; a string
				// is only allocated when the value is genuinely new.
				fv = appendFoldValue(fv[:0], v)
				if have[string(fv)] || seen[string(fv)] {
					continue
				}
				seen[string(fv)] = true
				out = append(out, v)
			}
		}
	}
	*buf = fv
	putFoldBuf(buf)
	return out
}

// donorSimScratch holds the pre-folded forms both similarity tests of
// domainsVerySimilar consume: sim's fold (trim + Unicode lower) for the
// exact-match count and the edit comparisons, and the ASCII foldValue
// form for the distinct-fold guard. Folding each list once replaces the
// per-pair folding that dominated borrow-donor selection.
type donorSimScratch struct {
	fa, fb sim.FoldedList
	wa, wb asciiFoldList
	ia, ib []int
}

var donorSimPool = sync.Pool{New: func() any { return new(donorSimScratch) }}

// asciiFoldList is the appendFoldValue analogue of sim.FoldedList: the
// ASCII-lowered forms of a value list in one reusable arena.
type asciiFoldList struct {
	arena []byte
	offs  []int
}

func (fl *asciiFoldList) reset(vs []string) {
	fl.arena = fl.arena[:0]
	fl.offs = append(fl.offs[:0], 0)
	for _, v := range vs {
		fl.arena = appendFoldValue(fl.arena, v)
		fl.offs = append(fl.offs, len(fl.arena))
	}
}

func (fl *asciiFoldList) at(i int) []byte { return fl.arena[fl.offs[i]:fl.offs[i+1]] }

// domainsVerySimilar reports whether at least minMatches pairs of
// values, one from each domain, are very similar (exact fold match or
// high edit similarity).
func domainsVerySimilar(a, b []string, minMatches int) bool {
	sc := donorSimPool.Get().(*donorSimScratch)
	defer donorSimPool.Put(sc)
	sc.fa.Reset(a)
	sc.fb.Reset(b)

	// Distinct folded values present in both lists — sim.SharedValues
	// over the pre-folded forms, via sort-merge instead of per-call maps.
	matches := sc.sharedFolded()
	if matches >= minMatches {
		return true
	}
	// Look for near-identical pairs beyond the exact matches. The O(n²)
	// scan uses the thresholded comparison, which rejects dissimilar
	// pairs (the overwhelming majority) by the precomputed rune-count
	// cut without a full edit-distance computation or any allocation.
	sc.wa.reset(a)
	sc.wb.reset(b)
	for i := range a {
		if matches >= minMatches {
			return true
		}
		for j := range b {
			if sim.EditSimAtLeastFolded(sc.fa.At(i), sc.fa.Runes(i), sc.fb.At(j), sc.fb.Runes(j), 0.9) &&
				!bytes.Equal(sc.wa.at(i), sc.wb.at(j)) {
				matches++
				break
			}
		}
	}
	return matches >= minMatches
}

// sortFoldedIdx orders idx by the folded values it indexes.
func sortFoldedIdx(fl *sim.FoldedList, idx []int) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && bytes.Compare(fl.At(idx[j]), fl.At(idx[j-1])) < 0; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// sharedFolded counts distinct folded values present in both lists by
// sorting index slices over the arenas and merging.
func (sc *donorSimScratch) sharedFolded() int {
	ia, ib := sc.ia[:0], sc.ib[:0]
	for i := 0; i < sc.fa.Len(); i++ {
		ia = append(ia, i)
	}
	for j := 0; j < sc.fb.Len(); j++ {
		ib = append(ib, j)
	}
	// Insertion sort: value lists are short, and sort.Slice would
	// allocate its reflection swapper on every call.
	sortFoldedIdx(&sc.fa, ia)
	sortFoldedIdx(&sc.fb, ib)
	sc.ia, sc.ib = ia, ib
	n := 0
	for i, j := 0, 0; i < len(ia) && j < len(ib); {
		va, vb := sc.fa.At(ia[i]), sc.fb.At(ib[j])
		switch c := bytes.Compare(va, vb); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			n++
			for i++; i < len(ia) && bytes.Equal(sc.fa.At(ia[i]), va); i++ {
			}
			for j++; j < len(ib) && bytes.Equal(sc.fb.At(ib[j]), va); j++ {
			}
		}
	}
	return n
}

// nonInstances gathers values of the other attributes on the interface —
// the automatically obtained negative examples of Section 3.
func nonInstances(ifc *schema.Interface, attr *schema.Attribute, cap int) []string {
	var out []string
	for _, o := range ifc.Attributes {
		if o.ID == attr.ID {
			continue
		}
		for _, v := range o.AllInstances() {
			out = append(out, v)
			if len(out) >= cap {
				return out
			}
		}
	}
	return out
}

// addAcquired appends values to attr.Acquired, deduplicating against
// both predefined and already-acquired values, up to the cap. It
// returns the number added.
func addAcquired(attr *schema.Attribute, values []string, maxTotal int) int {
	buf := foldBuf()
	fv := *buf
	have := map[string]bool{}
	for _, v := range attr.Instances {
		have[foldValue(v)] = true
	}
	for _, v := range attr.Acquired {
		have[foldValue(v)] = true
	}
	added := 0
	for _, v := range values {
		if len(attr.Acquired) >= maxTotal {
			break
		}
		fv = appendFoldValue(fv[:0], v)
		if have[string(fv)] {
			continue
		}
		have[string(fv)] = true
		attr.Acquired = append(attr.Acquired, v)
		added++
	}
	*buf = fv
	putFoldBuf(buf)
	return added
}

func capSlice(s []string, n int) []string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func hasMethod(ms []Method, m Method) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

func foldValue(s string) string {
	out := make([]byte, 0, len(s))
	return string(appendFoldValue(out, s))
}

// appendFoldValue appends the ASCII-lowered s to buf — foldValue
// without the string allocation, for zero-copy map probes.
func appendFoldValue(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf = append(buf, c)
	}
	return buf
}

// foldBufPool recycles the fold buffers of the acquisition loops.
var foldBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func foldBuf() *[]byte     { return foldBufPool.Get().(*[]byte) }
func putFoldBuf(b *[]byte) { foldBufPool.Put(b) }
