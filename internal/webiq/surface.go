package webiq

import (
	"context"
	"sort"
	"strings"
	"sync"

	"webiq/internal/nlp"
	"webiq/internal/obs"
	"webiq/internal/resilience"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
)

// Surface discovers instances for an attribute from the Surface Web,
// implementing Section 2: instance extraction (label syntax analysis,
// extraction-query formulation, snippet extraction) followed by instance
// verification (outlier removal, Web validation).
type Surface struct {
	engine    SearchEngine
	validator *Validator
	cfg       Config

	// ledger, when set, records every verification decision (outlier
	// removals, PMI accept/reject) for the provenance ledger. nil-safe.
	ledger *obs.Ledger

	// fallible, when set, replaces engine for extraction searches with
	// an error-aware backend; failed searches degrade (the query is
	// skipped, the failure recorded) instead of aborting discovery.
	fallible resilience.FallibleEngine

	mu    sync.Mutex
	cache map[string][]Candidate // label -> verified candidates (opt-in)
}

// NewSurface returns a Surface component sharing the given validator's
// hit-count cache.
func NewSurface(engine SearchEngine, validator *Validator, cfg Config) *Surface {
	return &Surface{engine: engine, validator: validator, cfg: cfg, cache: map[string][]Candidate{}}
}

// SetLedger installs the decision-provenance ledger; nil disables
// recording.
func (s *Surface) SetLedger(l *obs.Ledger) { s.ledger = l }

// Candidate is an extracted instance candidate with bookkeeping for
// reports and tests.
type Candidate struct {
	Value string
	// Freq is how many snippets yielded the candidate.
	Freq int
	// Score is the validation confidence (average PMI).
	Score float64
	// Degraded marks a candidate accepted without validation because
	// the validation backend failed terminally (accept-with-flag).
	Degraded bool
}

// DiscoverInstances runs the full extraction + verification pipeline and
// returns up to cfg.K instances ranked by validation score. The
// interface and dataset provide the domain information used to narrow
// queries.
func (s *Surface) DiscoverInstances(a *schema.Attribute, ifc *schema.Interface, ds *schema.Dataset) []string {
	return s.DiscoverInstancesCtx(context.Background(), a, ifc, ds)
}

// DiscoverInstancesCtx is DiscoverInstances with the caller's trace
// context: ledger decisions recorded during verification carry the
// context's trace/span identity.
func (s *Surface) DiscoverInstancesCtx(ctx context.Context, a *schema.Attribute, ifc *schema.Interface, ds *schema.Dataset) []string {
	if s.cfg.CacheDiscovery {
		key := strings.ToLower(a.Label)
		s.mu.Lock()
		cached, ok := s.cache[key]
		s.mu.Unlock()
		if !ok {
			cached = s.verifyScored(ctx, a, s.extractCtx(ctx, a, ifc, ds))
			s.mu.Lock()
			s.cache[key] = cached
			s.mu.Unlock()
		} else if s.ledger != nil {
			// The work was done under another attribute with the same
			// label; replay the accepts so this attribute's instances
			// stay attributable.
			for _, c := range cached {
				s.ledger.RecordCtx(ctx, obs.Decision{
					Component: "surface", Verdict: "accept",
					AttrID: a.ID, Label: a.Label, Value: c.Value,
					Score: c.Score, Threshold: s.cfg.MinScore,
					Detail: "cached discovery",
				})
			}
		}
		return candidateValues(cached)
	}
	return candidateValues(s.verifyScored(ctx, a, s.extractCtx(ctx, a, ifc, ds)))
}

// candidateValues copies out the candidate values, preserving nil for
// an empty verification result (callers distinguish nil from empty).
func candidateValues(cands []Candidate) []string {
	if len(cands) == 0 {
		return nil
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Value
	}
	return out
}

// Extract implements the instance-extraction phase (Figure 3.a) and
// returns raw candidates with frequencies.
func (s *Surface) Extract(a *schema.Attribute, ifc *schema.Interface, ds *schema.Dataset) []Candidate {
	return s.extractCtx(context.Background(), a, ifc, ds)
}

// extractCtx is Extract with the degradation path: with a fallible
// engine installed, a search that fails terminally skips just that
// query — the remaining queries still run and borrowing still follows —
// and the failure is recorded on the run's degradation sink.
func (s *Surface) extractCtx(ctx context.Context, a *schema.Attribute, ifc *schema.Interface, ds *schema.Dataset) []Candidate {
	ls := nlp.AnalyzeLabel(a.Label)
	if len(ls.NPs) == 0 {
		// Bare prepositions, verb phrases without embedded NPs, etc.:
		// the extraction phase terminates with no instances.
		return nil
	}

	siblings := siblingLabels(a, ifc)
	rej := labelRejectSet(a.Label)
	freq := map[string]int{}
	var order []string
	for _, np := range ls.NPs {
		for _, q := range FormulateQueries(np, ds.EntityName, ds.DomainKeyword, siblings, s.cfg) {
			var snips []surfaceweb.Snippet
			if s.fallible != nil {
				var err error
				snips, err = s.fallible.Search(ctx, q.Query, s.cfg.SnippetsPerQuery)
				if err != nil {
					degrade(ctx, Degradation{
						Stage: "surface", Reason: resilience.Reason(err),
						AttrID: a.ID, Label: a.Label,
						Detail: "extraction search skipped: " + q.Query,
					})
					if ctx.Err() != nil {
						return candidateList(order, freq)
					}
					continue
				}
			} else {
				snips = s.engine.Search(q.Query, s.cfg.SnippetsPerQuery)
			}
			for _, snip := range snips {
				for _, c := range ExtractFromSnippet(q, snip.Text) {
					if rejectWith(rej, c) {
						continue
					}
					if _, seen := freq[c]; !seen {
						order = append(order, c)
					}
					freq[c]++
				}
			}
		}
	}
	return candidateList(order, freq)
}

// candidateList materializes the extraction candidates in first-seen
// order.
func candidateList(order []string, freq map[string]int) []Candidate {
	out := make([]Candidate, 0, len(order))
	for _, c := range order {
		out = append(out, Candidate{Value: c, Freq: freq[c]})
	}
	return out
}

// Verify implements the instance-verification phase (Figure 3.b):
// outlier removal followed by Web validation, returning the top-K
// values.
func (s *Surface) Verify(a *schema.Attribute, cands []Candidate) []string {
	return candidateValues(s.verifyScored(context.Background(), a, cands))
}

// verifyScored is the verification phase returning the surviving
// candidates with their validation scores, recording each decision in
// the ledger when one is installed. The returned values are identical
// to the pre-ledger Verify in content and order.
func (s *Surface) verifyScored(ctx context.Context, a *schema.Attribute, cands []Candidate) []Candidate {
	if len(cands) == 0 {
		return nil
	}
	values := make([]string, len(cands))
	for i, c := range cands {
		values[i] = c.Value
	}
	if !s.cfg.SkipOutlierRemoval {
		if s.ledger != nil {
			var removed []string
			values, removed = RemoveOutliersExplain(values, s.cfg)
			for _, v := range removed {
				s.ledger.RecordCtx(ctx, obs.Decision{
					Component: "outlier", Verdict: "removed",
					AttrID: a.ID, Label: a.Label, Value: v,
					Threshold: s.cfg.OutlierSigma,
					Detail:    "type filter / discordancy test",
				})
			}
		} else {
			values = RemoveOutliers(values, s.cfg)
		}
	}
	if len(values) == 0 {
		return nil
	}

	phrases := s.validator.Phrases(a.Label)
	// Batchable validators score the whole candidate list in one engine
	// pass up front; the decision loop below then consumes the
	// precomputed scores. The fault-injection and forced-scalar paths
	// keep per-value scoring so error ordering is untouched.
	var confs []float64
	var confErrs []error
	if s.validator.batchable() {
		confs, confErrs = s.validator.ConfidenceBatchCtx(ctx, phrases, values)
	}
	scored := make([]Candidate, 0, len(values))
	for i, v := range values {
		var sc float64
		var err error
		if confs != nil {
			sc, err = confs[i], confErrs[i]
		} else {
			sc, err = s.validator.ConfidenceCtx(ctx, phrases, v)
		}
		if err != nil {
			// Web validation is unavailable for this candidate: accept
			// it with the degradation recorded rather than silently
			// dropping an extracted instance (the paper's validation is
			// a precision filter; losing it costs precision, not
			// soundness). The zero score sorts flagged values last.
			degrade(ctx, Degradation{
				Stage: "pmi", Reason: resilience.Reason(err),
				AttrID: a.ID, Label: a.Label,
				Detail: "accept-with-flag: " + v,
			})
			if s.ledger != nil {
				s.ledger.RecordCtx(ctx, obs.Decision{
					Component: "surface", Verdict: "degraded-accept",
					AttrID: a.ID, Label: a.Label, Value: v,
					Threshold: s.cfg.MinScore,
					Detail:    "validation backend unavailable: " + err.Error(),
				})
			}
			scored = append(scored, Candidate{Value: v, Degraded: true})
			if ctx.Err() != nil {
				break
			}
			continue
		}
		if sc <= s.cfg.MinScore {
			if s.ledger != nil {
				s.ledger.RecordCtx(ctx, obs.Decision{
					Component: "surface", Verdict: "reject",
					AttrID: a.ID, Label: a.Label, Value: v,
					Score: sc, Threshold: s.cfg.MinScore,
					Detail: "PMI confidence below threshold",
				})
			}
			continue
		}
		scored = append(scored, Candidate{Value: v, Score: sc})
	}
	sort.SliceStable(scored, func(i, j int) bool { return scored[i].Score > scored[j].Score })
	// The success criterion of Section 5 is reaching K instances, but
	// all validated instances (up to the acquisition cap) are retained:
	// larger instance sets give the matcher more value-overlap evidence.
	limit := s.cfg.MaxAcquired
	if limit < s.cfg.K {
		limit = s.cfg.K
	}
	if len(scored) > limit {
		if s.ledger != nil {
			for _, c := range scored[limit:] {
				s.ledger.RecordCtx(ctx, obs.Decision{
					Component: "surface", Verdict: "reject",
					AttrID: a.ID, Label: a.Label, Value: c.Value,
					Score: c.Score, Threshold: s.cfg.MinScore,
					Detail: "validated but over the acquisition cap",
				})
			}
		}
		scored = scored[:limit]
	}
	if s.ledger != nil {
		for _, c := range scored {
			s.ledger.RecordCtx(ctx, obs.Decision{
				Component: "surface", Verdict: "accept",
				AttrID: a.ID, Label: a.Label, Value: c.Value,
				Score: c.Score, Threshold: s.cfg.MinScore,
			})
		}
	}
	return scored
}

// rejectCandidate drops degenerate candidates: the label itself, label
// words, or single characters.
func (s *Surface) rejectCandidate(label, c string) bool {
	return rejectWith(labelRejectSet(label), c)
}

// labelRejectSet precomputes the degenerate forms rejected for a label:
// the lowered label itself plus every label word with its plural and
// singular. extractCtx builds it once per attribute instead of
// re-deriving the words for every extracted candidate.
func labelRejectSet(label string) map[string]bool {
	rej := map[string]bool{strings.ToLower(label): true}
	for _, w := range nlp.Words(label) {
		rej[w] = true
		rej[nlp.Pluralize(w)] = true
		rej[nlp.Singularize(w)] = true
	}
	return rej
}

// rejectWith is rejectCandidate against a precomputed reject set; the
// pooled buffer keeps the lowered-candidate probe allocation-free.
func rejectWith(rej map[string]bool, c string) bool {
	if len(c) <= 1 {
		return true
	}
	bp := foldBuf()
	buf := appendLower((*bp)[:0], c)
	ok := rej[string(buf)]
	*bp = buf
	putFoldBuf(bp)
	return ok
}

// siblingLabels lists the labels of the other attributes on the same
// interface, in display order.
func siblingLabels(a *schema.Attribute, ifc *schema.Interface) []string {
	if ifc == nil {
		return nil
	}
	var out []string
	for _, o := range ifc.Attributes {
		if o.ID != a.ID {
			out = append(out, o.Label)
		}
	}
	return out
}
