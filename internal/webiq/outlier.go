package webiq

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"unicode"

	"webiq/internal/stats"
)

// Instance-domain typing and outlier removal, per Section 2.2 of the
// paper: a pre-processing step determines whether the candidate domain
// is numeric or string (majority vote with type-recognizing regular
// expressions) and removes type mismatches; then type-specific
// discordancy tests remove candidates whose test statistics lie more
// than OutlierSigma standard deviations from the mean.

// DomainType is the inferred type of an instance domain.
type DomainType int

const (
	// StringDomain means the candidates are predominantly textual.
	StringDomain DomainType = iota
	// NumericDomain means the candidates are predominantly monetary
	// values, integers, or reals.
	NumericDomain
)

var (
	moneyRe = regexp.MustCompile(`^\$\s?\d{1,3}(,\d{3})*(\.\d+)?$|^\$\s?\d+(\.\d+)?$`)
	intRe   = regexp.MustCompile(`^\d{1,3}(,\d{3})+$|^\d+$`)
	realRe  = regexp.MustCompile(`^\d+\.\d+$`)
)

// IsNumericValue reports whether a single candidate is a monetary value,
// integer, or real number.
func IsNumericValue(s string) bool {
	s = strings.TrimSpace(s)
	return moneyRe.MatchString(s) || intRe.MatchString(s) || realRe.MatchString(s)
}

// parseNumeric extracts the numeric value of a candidate.
func parseNumeric(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "$")
	s = strings.TrimSpace(s)
	s = strings.ReplaceAll(s, ",", "")
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// DetectDomainType types the candidate domain: numeric when at least
// majority (e.g. 0.8) of candidates are numeric values.
func DetectDomainType(candidates []string, majority float64) DomainType {
	if len(candidates) == 0 {
		return StringDomain
	}
	n := 0
	for _, c := range candidates {
		if IsNumericValue(c) {
			n++
		}
	}
	if float64(n) >= majority*float64(len(candidates)) {
		return NumericDomain
	}
	return StringDomain
}

// RemoveOutliers performs the two-step pruning: type-based filtering
// then discordancy tests. It returns the surviving candidates in input
// order.
func RemoveOutliers(candidates []string, cfg Config) []string {
	if len(candidates) == 0 {
		return nil
	}
	dt := DetectDomainType(candidates, cfg.NumericMajority)

	// Pre-processing: drop candidates that are not of the determined
	// type.
	var typed []string
	for _, c := range candidates {
		if (dt == NumericDomain) == IsNumericValue(c) {
			typed = append(typed, c)
		}
	}
	if len(typed) < 3 {
		// Too few values for meaningful statistics.
		return typed
	}

	if dt == NumericDomain {
		return removeNumericOutliers(typed, cfg.OutlierSigma)
	}
	return removeStringOutliers(typed, cfg.OutlierSigma)
}

// RemoveOutliersExplain is RemoveOutliers plus the complementary list
// of candidates it removed (type mismatches and discordant values), in
// input order — the provenance ledger records each removal as an
// "outlier"/"removed" decision.
func RemoveOutliersExplain(candidates []string, cfg Config) (kept, removed []string) {
	kept = RemoveOutliers(candidates, cfg)
	// kept is a subsequence of candidates, so a greedy two-pointer walk
	// recovers the removed complement even with duplicate values.
	j := 0
	for _, c := range candidates {
		if j < len(kept) && kept[j] == c {
			j++
			continue
		}
		removed = append(removed, c)
	}
	return kept, removed
}

// removeNumericOutliers drops values > sigma standard deviations from
// the mean (e.g. a $10,000 book price).
func removeNumericOutliers(cands []string, sigma float64) []string {
	values := make([]float64, len(cands))
	for i, c := range cands {
		v, _ := parseNumeric(c)
		values[i] = v
	}
	keep := discordancy(values, sigma)
	return filterByMask(cands, keep)
}

// stringStats computes the four test statistics of the paper for one
// candidate: word count, capital-letter count, character length, and
// percentage of numerical characters.
func stringStats(c string) [4]float64 {
	words := strings.Fields(c)
	caps, digits, letters := 0, 0, 0
	for _, r := range c {
		switch {
		case unicode.IsUpper(r):
			caps++
			letters++
		case unicode.IsLetter(r):
			letters++
		case unicode.IsDigit(r):
			digits++
		}
	}
	total := len([]rune(c))
	pctDigits := 0.0
	if total > 0 {
		pctDigits = float64(digits) / float64(total)
	}
	return [4]float64{float64(len(words)), float64(caps), float64(total), pctDigits}
}

// removeStringOutliers drops candidates for which any of the four test
// statistics deviates more than sigma standard deviations from the mean
// over all candidates.
func removeStringOutliers(cands []string, sigma float64) []string {
	perCand := make([][4]float64, len(cands))
	for i, c := range cands {
		perCand[i] = stringStats(c)
	}
	keep := make([]bool, len(cands))
	for i := range keep {
		keep[i] = true
	}
	for s := 0; s < 4; s++ {
		col := make([]float64, len(cands))
		for i := range cands {
			col[i] = perCand[i][s]
		}
		mask := discordancy(col, sigma)
		for i := range keep {
			keep[i] = keep[i] && mask[i]
		}
	}
	return filterByMask(cands, keep)
}

// discordancy returns a keep-mask: false where the value lies more than
// sigma standard deviations from the mean. The test statistics are
// assumed normally distributed, per the paper. Mean and deviation are
// computed leave-one-out (excluding the value under test) so a single
// extreme outlier cannot mask itself by inflating the deviation.
func discordancy(values []float64, sigma float64) []bool {
	n := len(values)
	keep := make([]bool, n)
	loo := stats.NewLeaveOneOut(values)
	for i, v := range values {
		if n < 2 {
			keep[i] = true
			continue
		}
		m, sd := loo.At(i)
		if sd == 0 {
			// All other values agree exactly; v must match them.
			keep[i] = math.Abs(v-m) < 1e-9
			continue
		}
		keep[i] = math.Abs(v-m) <= sigma*sd
	}
	return keep
}

func filterByMask(cands []string, keep []bool) []string {
	var out []string
	for i, c := range cands {
		if keep[i] {
			out = append(out, c)
		}
	}
	return out
}
