// Package webiq implements the paper's primary contribution: automatic
// instance acquisition for Deep-Web query-interface attributes. It has
// three components —
//
//   - Surface (Section 2): question-answering-style instance discovery
//     from the Surface Web, with label syntax analysis, Hearst-pattern
//     extraction queries, statistical outlier removal, and PMI-based Web
//     validation;
//   - AttrSurface (Section 3): borrowing instances from other attributes
//     and validating them with a fully automatically trained
//     validation-based naive Bayes classifier;
//   - AttrDeep (Section 4): validating borrowed instances by probing the
//     attribute's own Deep-Web source;
//
// plus the Acquirer (Section 5), the policy that decides which component
// to apply to which attribute before handing the enriched interfaces to
// a matcher.
package webiq

import "webiq/internal/surfaceweb"

// SearchEngine is the slice of a Web search engine WebIQ consumes:
// result snippets for extraction queries and hit counts for validation
// queries. *surfaceweb.Engine satisfies it.
type SearchEngine interface {
	Search(query string, limit int) []surfaceweb.Snippet
	NumHits(query string) int
}

// BatchSearchEngine is implemented by engines that can answer many
// hit-count queries in one pass (*surfaceweb.Engine and
// *surfaceweb.CachedEngine both do). The Validator's batched scoring
// uses it when available; results and accounting must be identical to
// issuing the queries one by one.
type BatchSearchEngine interface {
	NumHitsBatch(queries []string) []int
}

// Config bundles the tunables of all WebIQ components.
type Config struct {
	// K is the target number of instances per attribute; acquiring at
	// least K counts as success (the paper uses 10).
	K int
	// SnippetsPerQuery is how many result snippets are downloaded per
	// extraction query.
	SnippetsPerQuery int
	// MaxSiblingKeywords is how many labels of sibling attributes are
	// added as required keywords to narrow extraction queries.
	MaxSiblingKeywords int
	// UseDomainKeywords enables narrowing extraction queries with the
	// domain keyword and sibling labels (on in the paper; off in the
	// ablation bench).
	UseDomainKeywords bool
	// OutlierSigma is the discordancy-test cutoff in standard
	// deviations (the paper uses 3).
	OutlierSigma float64
	// NumericMajority is the fraction of candidates that must look
	// numeric for the instance domain to be typed numeric (0.8 in the
	// paper).
	NumericMajority float64
	// SkipOutlierRemoval disables the outlier-detection phase (ablation
	// only; the paper's two-phase design keeps it on).
	SkipOutlierRemoval bool
	// UseRawHitCounts scores validation queries by raw co-occurrence
	// hits instead of PMI (ablation only).
	UseRawHitCounts bool
	// MinScore is the minimum average validation score for a candidate
	// to survive Web validation.
	MinScore float64
	// MaxBorrowProbes caps how many of a donor attribute's instances
	// Attr-Deep probes before applying the one-third rule.
	MaxBorrowProbes int
	// BorrowLabelSim is the minimum label similarity for a borrowing
	// donor in Step 1.b of Section 5.
	BorrowLabelSim float64
	// BorrowValueMatches is the minimum number of very similar value
	// pairs for a borrowing donor in Step 2 of Section 5.
	BorrowValueMatches int
	// MaxAcquired caps the instances stored per attribute.
	MaxAcquired int
	// Parallelism > 1 runs the query-heavy phases concurrently with that
	// many workers: the Surface discovery phase across attributes, and —
	// within each attribute — Attr-Surface classifier training and
	// borrowed-value scoring, and Attr-Deep probing. Results and
	// substrate query counts are identical to the sequential run:
	// Surface discovery depends only on labels and dataset metadata, the
	// per-attribute validations are independent per value and merged in
	// index order, and the validator's singleflight memo keeps every
	// engine query issued exactly once.
	Parallelism int
	// SurfaceForPredef also runs Surface discovery for attributes that
	// already have predefined instances. The paper's Section-5 scheme
	// skips this "to minimize the overhead caused by querying the search
	// engine"; the flag implements the possibility the paper notes and
	// the corresponding bench quantifies its cost/benefit.
	SurfaceForPredef bool
	// ScalarValidation forces the one-(V,x)-pair-at-a-time validation
	// path even when the engine supports batched hit counting. The
	// batched path is specified to be observationally identical —
	// scores, ledger decisions, and query accounting — so this exists
	// for the A/B equivalence tests and as an escape hatch, not as a
	// tuning knob.
	ScalarValidation bool
	// CacheDiscovery memoizes Surface discovery per attribute label.
	// This is an approximation: two same-labeled attributes on different
	// interfaces narrow their queries with different sibling keywords,
	// so cached results can differ slightly from fresh ones. Off by
	// default; the cache ablation bench quantifies the query savings.
	CacheDiscovery bool
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		K:                  10,
		SnippetsPerQuery:   8,
		MaxSiblingKeywords: 2,
		UseDomainKeywords:  true,
		OutlierSigma:       3,
		NumericMajority:    0.8,
		MinScore:           0,
		MaxBorrowProbes:    6,
		BorrowLabelSim:     0.4,
		BorrowValueMatches: 2,
		MaxAcquired:        20,
	}
}
