package webiq

import (
	"context"
	"runtime"
	"sync"
)

// clampWorkers bounds a configured worker count by the CPUs the
// scheduler can actually run simultaneously (the smaller of NumCPU and
// GOMAXPROCS): the work sent to these pools is CPU-bound, so workers
// beyond that only preempt each other. Results are identical for any
// worker count — callers write into per-index slots — so the clamp
// changes scheduling, never output.
func clampWorkers(workers int) int {
	limit := runtime.NumCPU()
	if p := runtime.GOMAXPROCS(0); p < limit {
		limit = p
	}
	if workers > limit {
		return limit
	}
	return workers
}

// parallelFor runs f(i) for every i in [0, n) on up to workers
// goroutines, blocking until all calls return. With workers <= 1 (or a
// trivial n) it degenerates to a plain loop on the calling goroutine.
//
// Callers write results into per-index slots, so the merge order is the
// index order and the outcome is identical to the sequential loop
// whenever each f(i) is independent of the others.
func parallelFor(n, workers int, f func(int)) {
	workers = clampWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next struct {
		sync.Mutex
		i int
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := next.i
				next.i++
				next.Unlock()
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// parallelForCtx is parallelFor with prompt cancellation: once ctx is
// done no new index is claimed, so the loop stops after at most one
// in-flight f per worker. It always waits for the in-flight calls —
// no goroutine outlives the return — and callers detect the partial
// result via ctx.Err() plus whichever per-index slots were never
// written. With a background context it behaves exactly like
// parallelFor.
func parallelForCtx(ctx context.Context, n, workers int, f func(int)) {
	workers = clampWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			f(i)
		}
		return
	}
	var next struct {
		sync.Mutex
		i int
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				next.Lock()
				i := next.i
				next.i++
				next.Unlock()
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
