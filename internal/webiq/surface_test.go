package webiq

import (
	"reflect"
	"strings"
	"testing"

	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
)

// cannedEngine serves scripted snippets and hit counts, isolating the
// Surface pipeline from the corpus generator.
type cannedEngine struct {
	snippets map[string][]string // substring of query -> snippet texts
	hits     map[string]int
}

func (c *cannedEngine) Search(query string, limit int) []surfaceweb.Snippet {
	for key, texts := range c.snippets {
		if strings.Contains(query, key) {
			out := make([]surfaceweb.Snippet, 0, len(texts))
			for i, t := range texts {
				if limit > 0 && i >= limit {
					break
				}
				out = append(out, surfaceweb.Snippet{DocID: i, Text: t})
			}
			return out
		}
	}
	return nil
}

func (c *cannedEngine) NumHits(query string) int { return c.hits[query] }

func TestSurfaceExtractPipeline(t *testing.T) {
	eng := &cannedEngine{
		snippets: map[string][]string{
			`"makes such as"`: {
				"Popular makes such as Honda, Toyota, and Ford are in stock.",
				"We sell makes such as Honda and Nissan.",
			},
		},
		hits: map[string]int{},
	}
	cfg := DefaultConfig()
	cfg.UseDomainKeywords = false
	v := NewValidator(eng, cfg)
	s := NewSurface(eng, v, cfg)

	ifc := &schema.Interface{ID: "i", Attributes: []*schema.Attribute{
		{ID: "i/a", InterfaceID: "i", Label: "Make"},
	}}
	ds := &schema.Dataset{Domain: "auto", EntityName: "car", DomainKeyword: "used cars",
		Interfaces: []*schema.Interface{ifc}}

	cands := s.Extract(ifc.Attributes[0], ifc, ds)
	got := map[string]int{}
	for _, c := range cands {
		got[c.Value] = c.Freq
	}
	if got["Honda"] != 2 {
		t.Errorf("Honda freq = %d, want 2 (two snippets)", got["Honda"])
	}
	for _, want := range []string{"Toyota", "Ford", "Nissan"} {
		if got[want] == 0 {
			t.Errorf("missing candidate %q in %v", want, got)
		}
	}
}

func TestSurfaceVerifyRanksByScore(t *testing.T) {
	eng := &cannedEngine{
		snippets: map[string][]string{},
		hits: map[string]int{
			`"make honda"`:  20,
			`"make toyota"`: 5,
			`"make"`:        100,
			`"honda"`:       50,
			`"toyota"`:      50,
		},
	}
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	s := NewSurface(eng, v, cfg)
	attr := &schema.Attribute{ID: "x", Label: "Make"}
	got := s.Verify(attr, []Candidate{{Value: "Toyota"}, {Value: "Honda"}})
	want := []string{"Honda", "Toyota"} // Honda has the higher PMI
	if !reflect.DeepEqual(got, want) {
		t.Errorf("verified order = %v, want %v", got, want)
	}
}

func TestSurfaceVerifyDropsZeroScore(t *testing.T) {
	eng := &cannedEngine{
		snippets: map[string][]string{},
		hits: map[string]int{
			`"make honda"`: 10, `"make"`: 100, `"honda"`: 50,
			// "January" has no joint hits with "make".
			`"january"`: 1000,
		},
	}
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	s := NewSurface(eng, v, cfg)
	attr := &schema.Attribute{ID: "x", Label: "Make"}
	got := s.Verify(attr, []Candidate{{Value: "Honda"}, {Value: "January"}})
	for _, g := range got {
		if g == "January" {
			t.Error("zero-score candidate survived validation")
		}
	}
}

func TestSurfaceRejectCandidateRules(t *testing.T) {
	s := &Surface{cfg: DefaultConfig()}
	cases := map[string]bool{
		"Honda":          false,
		"h":              true, // single character
		"Make":           true, // the label itself
		"makes":          true, // label word inflection
		"Departure city": false,
	}
	for c, want := range cases {
		if got := s.rejectCandidate("Make", c); got != want {
			t.Errorf("rejectCandidate(Make, %q) = %v, want %v", c, got, want)
		}
	}
}

func TestSiblingLabels(t *testing.T) {
	ifc := &schema.Interface{ID: "i", Attributes: []*schema.Attribute{
		{ID: "i/a", Label: "Make"},
		{ID: "i/b", Label: "Model"},
		{ID: "i/c", Label: "Year"},
	}}
	got := siblingLabels(ifc.Attributes[1], ifc)
	want := []string{"Make", "Year"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("siblings = %v, want %v", got, want)
	}
	if siblingLabels(ifc.Attributes[0], nil) != nil {
		t.Error("nil interface should give nil siblings")
	}
}

func TestSurfaceEmptyLabelNoQueries(t *testing.T) {
	eng := &cannedEngine{snippets: map[string][]string{}, hits: map[string]int{}}
	cfg := DefaultConfig()
	v := NewValidator(eng, cfg)
	s := NewSurface(eng, v, cfg)
	attr := &schema.Attribute{ID: "x", Label: ""}
	ds := &schema.Dataset{Domain: "auto"}
	if got := s.DiscoverInstances(attr, nil, ds); got != nil {
		t.Errorf("empty label discovered %v", got)
	}
}
