package experiments

import (
	"fmt"
	"strings"

	"webiq/internal/kb"
	"webiq/internal/schema"
	"webiq/internal/webiq"
)

// Table1Row reproduces one row of Table 1: dataset characteristics
// (columns 2–5) and instance-acquisition success rates (columns 6–7).
type Table1Row struct {
	Domain string
	// AvgAttrs is the average number of attributes per interface.
	AvgAttrs float64
	// PctIntNoInst is the percentage of interfaces containing attributes
	// without instances.
	PctIntNoInst float64
	// PctAttrNoInst is, among those interfaces, the percentage of
	// attributes without instances.
	PctAttrNoInst float64
	// ExpInst is the percentage of instance-less attributes whose
	// instances can reasonably be expected on the Surface Web (a manual
	// judgment in the paper; derived from the concepts' Findable flags
	// here).
	ExpInst float64
	// Surface is the acquisition success rate using only the Surface
	// component (success = at least K instances gathered).
	Surface float64
	// SurfaceDeep is the success rate when instance borrowing with
	// Deep-Web validation is added.
	SurfaceDeep float64
}

// Table1 runs the acquisition experiments and returns one row per
// domain.
func (e *Env) Table1() []Table1Row {
	var rows []Table1Row
	for _, dom := range e.Domains {
		row := Table1Row{Domain: dom.DisplayName}

		base := e.freshDataset(dom)
		st := base.ComputeStats()
		row.AvgAttrs = st.AvgAttrs
		row.PctIntNoInst = st.PctInterfacesNoInst
		row.PctAttrNoInst = st.PctAttrsNoInst
		row.ExpInst = expectedFindable(dom, base)

		// Column 6: Surface only.
		ds := e.freshDataset(dom)
		acq, _ := e.acquirer(ds, dom, webiq.Components{Surface: true})
		row.Surface = acq.AcquireAll(ds).SuccessRate()

		// Column 7: Surface + borrowing validated via the Deep Web.
		ds = e.freshDataset(dom)
		acq, _ = e.acquirer(ds, dom, webiq.Components{Surface: true, AttrDeep: true})
		row.SurfaceDeep = acq.AcquireAll(ds).SuccessRate()

		rows = append(rows, row)
	}
	return rows
}

// expectedFindable computes the ExpInst column: among attributes with no
// instances, the percentage whose generating concept is Findable.
func expectedFindable(dom *kb.Domain, ds *schema.Dataset) float64 {
	findable := map[string]bool{}
	for _, c := range dom.Concepts {
		findable[c.ID] = c.Findable
	}
	total, ok := 0, 0
	for _, a := range ds.AllAttributes() {
		if a.HasInstances() {
			continue
		}
		total++
		if findable[a.ConceptID] {
			ok++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(ok) / float64(total)
}

// RenderTable1 formats the rows as the paper's Table 1, appending the
// cross-domain average row.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %6s %10s %11s %8s %9s %13s\n",
		"Domain", "#Attr", "IntNoInst%", "AttrNoInst%", "ExpInst%", "Surface%", "Surface+Deep%")
	var sum Table1Row
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %6.1f %10.0f %11.1f %8.1f %9.1f %13.1f\n",
			r.Domain, r.AvgAttrs, r.PctIntNoInst, r.PctAttrNoInst,
			r.ExpInst, r.Surface, r.SurfaceDeep)
		sum.AvgAttrs += r.AvgAttrs
		sum.PctIntNoInst += r.PctIntNoInst
		sum.PctAttrNoInst += r.PctAttrNoInst
		sum.ExpInst += r.ExpInst
		sum.Surface += r.Surface
		sum.SurfaceDeep += r.SurfaceDeep
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-9s %6.1f %10.0f %11.1f %8.1f %9.1f %13.1f\n",
			"Average", sum.AvgAttrs/n, sum.PctIntNoInst/n, sum.PctAttrNoInst/n,
			sum.ExpInst/n, sum.Surface/n, sum.SurfaceDeep/n)
	}
	return b.String()
}
