package experiments

import (
	"fmt"
	"strings"
	"time"

	"webiq/internal/webiq"
)

// Fig6Row is one domain's bars in Figure 6: F-1 accuracy (percent) of
// the baseline matcher (IceQ), baseline + WebIQ, and baseline + WebIQ
// with thresholding.
type Fig6Row struct {
	Domain        string
	Baseline      float64
	WithWebIQ     float64
	WithThreshold float64
}

// Figure6 runs the matching-accuracy experiment for each domain.
func (e *Env) Figure6() []Fig6Row {
	var rows []Fig6Row
	for _, dom := range e.Domains {
		row := Fig6Row{Domain: dom.DisplayName}

		// Baseline: IceQ alone, no thresholding (τ = 0).
		base := e.freshDataset(dom)
		row.Baseline = 100 * e.matchF1(base, 0).F1

		// Baseline + WebIQ: acquire with all components, then match.
		ds := e.freshDataset(dom)
		acq, _ := e.acquirer(ds, dom, webiq.AllComponents())
		acq.AcquireAll(ds)
		row.WithWebIQ = 100 * e.matchF1(ds, 0).F1

		// Baseline + WebIQ + thresholding (τ = .1) on the same acquired
		// dataset.
		row.WithThreshold = 100 * e.matchF1(ds, e.Thresholded).F1

		rows = append(rows, row)
	}
	return rows
}

// RenderFigure6 formats the Figure 6 series with an average row.
func RenderFigure6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %9s %11s %18s\n", "Domain", "Baseline", "Base+WebIQ", "Base+WebIQ+Thresh")
	var s Fig6Row
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %9.1f %11.1f %18.1f\n", r.Domain, r.Baseline, r.WithWebIQ, r.WithThreshold)
		s.Baseline += r.Baseline
		s.WithWebIQ += r.WithWebIQ
		s.WithThreshold += r.WithThreshold
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&b, "%-9s %9.1f %11.1f %18.1f\n", "Average", s.Baseline/n, s.WithWebIQ/n, s.WithThreshold/n)
	}
	return b.String()
}

// Fig7Row is one domain's bars in Figure 7: F-1 accuracy as WebIQ
// components are consecutively incorporated into the baseline.
type Fig7Row struct {
	Domain       string
	Baseline     float64
	PlusSurface  float64
	PlusAttrDeep float64
	PlusAll      float64
}

// Figure7 runs the component-contribution ablation.
func (e *Env) Figure7() []Fig7Row {
	configs := []webiq.Components{
		{},
		{Surface: true},
		{Surface: true, AttrDeep: true},
		{Surface: true, AttrDeep: true, AttrSurface: true},
	}
	var rows []Fig7Row
	for _, dom := range e.Domains {
		var f1s [4]float64
		for i, comps := range configs {
			ds := e.freshDataset(dom)
			if comps != (webiq.Components{}) {
				acq, _ := e.acquirer(ds, dom, comps)
				acq.AcquireAll(ds)
			}
			f1s[i] = 100 * e.matchF1(ds, 0).F1
		}
		rows = append(rows, Fig7Row{
			Domain:       dom.DisplayName,
			Baseline:     f1s[0],
			PlusSurface:  f1s[1],
			PlusAttrDeep: f1s[2],
			PlusAll:      f1s[3],
		})
	}
	return rows
}

// RenderFigure7 formats the Figure 7 series.
func RenderFigure7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %9s %9s %10s %9s\n", "Domain", "Baseline", "+Surface", "+AttrDeep", "+AttrSurf")
	var s Fig7Row
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %9.1f %9.1f %10.1f %9.1f\n",
			r.Domain, r.Baseline, r.PlusSurface, r.PlusAttrDeep, r.PlusAll)
		s.Baseline += r.Baseline
		s.PlusSurface += r.PlusSurface
		s.PlusAttrDeep += r.PlusAttrDeep
		s.PlusAll += r.PlusAll
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&b, "%-9s %9.1f %9.1f %10.1f %9.1f\n",
			"Average", s.Baseline/n, s.PlusSurface/n, s.PlusAttrDeep/n, s.PlusAll/n)
	}
	return b.String()
}

// Fig8Row is one domain's bars in Figure 8: simulated minutes spent
// matching and in each WebIQ component, plus the query counts behind
// them.
type Fig8Row struct {
	Domain          string
	MatchTime       time.Duration
	SurfaceTime     time.Duration
	AttrSurfaceTime time.Duration
	AttrDeepTime    time.Duration
	SurfaceQueries  int
	AttrSurfQueries int
	AttrDeepProbes  int
}

// Total is the overall overhead (everything except matching).
func (r Fig8Row) Total() time.Duration {
	return r.SurfaceTime + r.AttrSurfaceTime + r.AttrDeepTime
}

// Figure8 runs the overhead analysis: a full acquisition + matching run
// per domain with component-attributed virtual time. It always queries
// the raw engine — the experiment measures what acquisition costs when
// every query pays the search engine's price, so the query cache must
// not absorb repeats here (and the paper's numbers are reproduced
// exactly, whatever UseQueryCache says).
func (e *Env) Figure8() []Fig8Row {
	var rows []Fig8Row
	for _, dom := range e.Domains {
		ds := e.freshDataset(dom)
		acq, _ := e.acquirerUncached(ds, dom, webiq.AllComponents())
		rep := acq.AcquireAll(ds)

		// Matching cost: simulated per-pair cost over all attribute
		// pairs, calibrated to the paper's hardware (see Env).
		n := len(ds.AllAttributes())
		matchTime := time.Duration(n*(n-1)/2) * e.MatchCostPerPair
		e.matchF1(ds, 0)

		rows = append(rows, Fig8Row{
			Domain:          dom.DisplayName,
			MatchTime:       matchTime,
			SurfaceTime:     rep.SurfaceTime,
			AttrSurfaceTime: rep.AttrSurfaceTime,
			AttrDeepTime:    rep.AttrDeepTime,
			SurfaceQueries:  rep.SurfaceQueries,
			AttrSurfQueries: rep.AttrSurfaceQueries,
			AttrDeepProbes:  rep.AttrDeepQueries,
		})
	}
	return rows
}

// RenderFigure8 formats the overhead rows in minutes, as the paper does.
func RenderFigure8(rows []Fig8Row) string {
	min := func(d time.Duration) float64 { return d.Minutes() }
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %9s %9s %10s %9s %9s\n",
		"Domain", "Match(m)", "Surf(m)", "AttrSf(m)", "AttrDp(m)", "Total(m)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %9.1f %9.1f %10.1f %9.1f %9.1f\n",
			r.Domain, min(r.MatchTime), min(r.SurfaceTime),
			min(r.AttrSurfaceTime), min(r.AttrDeepTime), min(r.Total()))
	}
	fmt.Fprintf(&b, "\n%-9s %9s %10s %9s\n", "Domain", "SurfQrys", "AttrSfQrys", "Probes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %9d %10d %9d\n",
			r.Domain, r.SurfaceQueries, r.AttrSurfQueries, r.AttrDeepProbes)
	}
	return b.String()
}
