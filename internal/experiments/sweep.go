package experiments

import (
	"fmt"
	"strings"

	"webiq/internal/schema"
	"webiq/internal/stats"
	"webiq/internal/webiq"
)

// TauPoint is the F-1 accuracy (averaged over domains) at one clustering
// threshold, before and after acquisition.
type TauPoint struct {
	Tau      float64
	Baseline float64
	WithIQ   float64
}

// TauSweep measures matcher sensitivity to the clustering threshold τ —
// the knob the paper sets to .1 ("about the average of the thresholds
// learned for the five domains" by IceQ). It returns one point per
// threshold, each averaged over the five domains.
func (e *Env) TauSweep(taus []float64) []TauPoint {
	if len(taus) == 0 {
		taus = []float64{0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5}
	}
	// Acquire once per domain, evaluate at every τ.
	baseSets := make([]dsHolder, 0, len(e.Domains))
	for _, dom := range e.Domains {
		base := e.freshDataset(dom)
		acq := e.freshDataset(dom)
		acquirer, _ := e.acquirer(acq, dom, webiq.AllComponents())
		acquirer.AcquireAll(acq)
		baseSets = append(baseSets, dsHolder{base: base, acq: acq})
	}
	out := make([]TauPoint, 0, len(taus))
	for _, tau := range taus {
		p := TauPoint{Tau: tau}
		for _, h := range baseSets {
			p.Baseline += 100 * e.matchF1(h.base, tau).F1
			p.WithIQ += 100 * e.matchF1(h.acq, tau).F1
		}
		n := float64(len(baseSets))
		p.Baseline /= n
		p.WithIQ /= n
		out = append(out, p)
	}
	return out
}

// dsHolder pairs a domain's baseline dataset with its acquired copy.
type dsHolder struct{ base, acq *schema.Dataset }

// RenderTauSweep formats the τ-sensitivity curve.
func RenderTauSweep(points []TauPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %10s %10s\n", "tau", "Baseline", "Base+WebIQ")
	for _, p := range points {
		fmt.Fprintf(&b, "%6.2f %10.1f %10.1f\n", p.Tau, p.Baseline, p.WithIQ)
	}
	return b.String()
}

// SeedStats summarizes cross-seed variability of the headline result.
type SeedStats struct {
	Seeds int
	// Per-seed averages across domains.
	BaselineMean, BaselineStd float64
	WithIQMean, WithIQStd     float64
	SuccessMean, SuccessStd   float64
}

// SeedSweep reruns the headline experiment (baseline F-1, enriched F-1,
// acquisition success) across n seeds, rebuilding corpus, dataset, and
// sources each time, and reports means and standard deviations. It
// answers "is the reproduction an artifact of one lucky seed?".
func SeedSweep(n int) SeedStats {
	var base, withIQ, success []float64
	for seed := int64(1); seed <= int64(n); seed++ {
		env := NewEnvWithSeed(seed)
		var b, w, s float64
		for _, dom := range env.Domains {
			ds := env.freshDataset(dom)
			b += 100 * env.matchF1(ds, 0).F1

			acqDS := env.freshDataset(dom)
			acq, _ := env.acquirer(acqDS, dom, webiq.AllComponents())
			rep := acq.AcquireAll(acqDS)
			s += rep.SuccessRate()
			w += 100 * env.matchF1(acqDS, 0).F1
		}
		k := float64(len(env.Domains))
		base = append(base, b/k)
		withIQ = append(withIQ, w/k)
		success = append(success, s/k)
	}
	st := SeedStats{Seeds: n}
	st.BaselineMean, st.BaselineStd = stats.MeanStd(base)
	st.WithIQMean, st.WithIQStd = stats.MeanStd(withIQ)
	st.SuccessMean, st.SuccessStd = stats.MeanStd(success)
	return st
}

// RenderSeedSweep formats the robustness summary.
func RenderSeedSweep(st SeedStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Across %d seeds (mean ± std over per-seed domain averages):\n", st.Seeds)
	fmt.Fprintf(&b, "  Baseline F1:          %5.1f ± %.1f\n", st.BaselineMean, st.BaselineStd)
	fmt.Fprintf(&b, "  Baseline+WebIQ F1:    %5.1f ± %.1f\n", st.WithIQMean, st.WithIQStd)
	fmt.Fprintf(&b, "  Acquisition success:  %5.1f ± %.1f\n", st.SuccessMean, st.SuccessStd)
	return b.String()
}
